#include "src/monitor/mediation_ring.h"

#include <chrono>

#include "src/base/failpoint.h"
#include "src/base/strings.h"

namespace xsec {

MediationRing::MediationRing(ReferenceMonitor* monitor, MediationRingOptions options)
    : monitor_(monitor), options_(options) {
  if (options_.shards == 0) {
    options_.shards = 1;
  }
  if (options_.ring_capacity == 0) {
    options_.ring_capacity = 1;
  }
  if (options_.batch_max == 0) {
    options_.batch_max = 1;
  }
  if (options_.completion_capacity == 0) {
    options_.completion_capacity = 1;
  }
  shards_.reserve(options_.shards);
  for (size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.ring_capacity));
    // Per-shard stall site so tests and benches can wedge one worker and
    // watch the others keep serving (the macros cache one name per call
    // site, so the registry is consulted directly here, once).
    shards_[s]->stall_point = FailpointRegistry::Instance().GetOrCreate(
        StrFormat("ring.worker.%zu.batch", s));
  }
  for (size_t s = 0; s < options_.shards; ++s) {
    Shard* shard = shards_[s].get();
    shard->worker = std::thread([this, shard] { WorkerLoop(shard); });
  }
}

MediationRing::~MediationRing() {
  for (auto& shard : shards_) {
    shard->ring.Stop();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

std::unique_ptr<MediationRing::Client> MediationRing::NewClient() {
  size_t shard = next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  // Not make_unique: the constructor is private to this friend.
  return std::unique_ptr<Client>(new Client(this, shard, options_.completion_capacity));
}

MediationRing::Client::~Client() {
  // Wait out in-flight work: the worker's completion post (under mu_) is
  // its final touch of this client, so once posted_ has caught up with
  // submitted_ no thread can reach these members again.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return posted_.load(std::memory_order_acquire) >=
           submitted_.load(std::memory_order_acquire);
  });
}

StatusOr<uint64_t> MediationRing::SubmitCheck(Client& client, const Subject& subject,
                                              NodeId node, AccessModeSet modes) {
  return Submit(client, subject, node, modes, nullptr);
}

StatusOr<uint64_t> MediationRing::SubmitInvoke(Client& client, const Subject& subject,
                                               NodeId node, InvokeFn fn) {
  return Submit(client, subject, node, AccessModeSet(AccessMode::kExecute), std::move(fn));
}

StatusOr<uint64_t> MediationRing::Submit(Client& client, const Subject& subject, NodeId node,
                                         AccessModeSet modes, InvokeFn fn) {
  XSEC_FAILPOINT("ring.submit");
  // Supervision gate first, before ANY credit is touched: a quarantined
  // target must fail fast without consuming transport capacity.
  if (options_.admission_gate) {
    Status gated = options_.admission_gate(subject, node);
    if (!gated.ok()) {
      gate_rejections_.fetch_add(1, std::memory_order_relaxed);
      return gated;
    }
  }
  // Shard-affinity and the cross-shard gate both key on the target node's
  // monitor shard, resolved once here (a lock-free array read).
  ShardId node_shard = monitor_->DomainOf(node);
  if (options_.grants != nullptr && IsConcreteShard(node_shard) &&
      ShardOfPrincipal(subject.principal.value) != node_shard) {
    // Cross-shard invocation: the subject's home shard differs from the
    // node's, so the submission needs an explicit grant (or transfer) in
    // the target shard. Rejection is pre-batch and consumes no credits.
    if (!options_.grants->Admit(subject.principal, node, node_shard)) {
      grant_rejections_.fetch_add(1, std::memory_order_relaxed);
      return PermissionDeniedError("cross-shard submission without a grant");
    }
  }
  size_t target_shard = client.shard_;
  if (options_.route_by_monitor_shard && IsConcreteShard(node_shard)) {
    target_shard = node_shard % shards_.size();
  }
  // Completion-credit gate first: reserving at submit time is what lets the
  // worker always post without blocking — a caller that stops draining
  // starves only itself.
  int64_t credit = client.credits_.load(std::memory_order_relaxed);
  for (;;) {
    if (credit <= 0) {
      client.credit_rejections_.fetch_add(1, std::memory_order_relaxed);
      completion_stalls_.fetch_add(1, std::memory_order_relaxed);
      return ResourceExhaustedError(
          "mediation completion queue full (caller not draining)");
    }
    if (client.credits_.compare_exchange_weak(credit, credit - 1, std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
      break;
    }
  }
  uint64_t ticket = client.next_ticket_.fetch_add(1, std::memory_order_relaxed);
  Request request;
  request.client = &client;
  request.ticket = ticket;
  request.subject = subject;
  request.node = node;
  request.modes = modes;
  request.invoke = std::move(fn);
  // submitted_ goes up BEFORE the push so posted_ can never overtake it
  // (the destructor's wait condition); a rejected push undoes it.
  client.submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!shards_[target_shard]->ring.TryPush(std::move(request))) {
    client.submitted_.fetch_sub(1, std::memory_order_relaxed);
    client.credits_.fetch_add(1, std::memory_order_relaxed);
    return ResourceExhaustedError("mediation ring full (worker backlogged)");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

StatusOr<MediationRing::Completion> MediationRing::Wait(Client& client, uint64_t ticket,
                                                        const CallOptions& options) {
  std::unique_lock<std::mutex> lock(client.mu_);
  for (;;) {
    for (auto it = client.ready_.begin(); it != client.ready_.end(); ++it) {
      if (it->ticket == ticket) {
        Completion completion = std::move(*it);
        client.ready_.erase(it);
        client.credits_.fetch_add(1, std::memory_order_relaxed);
        return completion;
      }
    }
    // CallContext contract: cancellation wins over an expired deadline.
    if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
      return CancelledError("mediation wait cancelled");
    }
    uint64_t now = MonotonicNowNs();
    if (options.deadline_ns != 0 && now >= options.deadline_ns) {
      return DeadlineExceededError("mediation completion wait deadline exceeded");
    }
    if (options.cancel == nullptr && options.deadline_ns == 0) {
      client.cv_.wait(lock);
      continue;
    }
    uint64_t wait_ns = options_.cancel_poll_interval_ns != 0
                           ? options_.cancel_poll_interval_ns
                           : uint64_t{5'000'000};
    if (options.deadline_ns != 0 && options.deadline_ns - now < wait_ns) {
      wait_ns = options.deadline_ns - now;
    }
    client.cv_.wait_for(lock, std::chrono::nanoseconds(wait_ns));
  }
}

void MediationRing::Post(Client* client, Completion completion) {
  {
    std::lock_guard<std::mutex> lock(client->mu_);
    client->ready_.push_back(std::move(completion));
    client->posted_.fetch_add(1, std::memory_order_release);
    client->cv_.notify_all();
  }
}

void MediationRing::WorkerLoop(Shard* shard) {
  std::vector<Request> batch;
  std::vector<ReferenceMonitor::BatchCheckRequest> checks;
  std::vector<Decision> decisions;
  for (;;) {
    batch.clear();
    size_t n = shard->ring.DrainBatch(&batch, options_.batch_max);
    if (n == 0) {
      return;  // stopped, fully drained
    }
    // Heartbeat: stamp-then-busy at the batch's start, so the watchdog's
    // "busy for longer than stuck_after" reading always measures THIS
    // batch's age, never a stale stamp from an idle period.
    shard->heartbeat_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
    shard->busy.store(true, std::memory_order_release);
    // Stall-injection site (arm "ring.worker.<shard>.batch" with sleep=...):
    // the sleep happens with the batch's credits held, which is exactly how
    // a genuinely stuck consumer starves its shard of admissions.
    if (shard->stall_point->armed()) {
      (void)shard->stall_point->Evaluate();
    }
    checks.clear();
    checks.reserve(n);
    for (const Request& request : batch) {
      checks.push_back(ReferenceMonitor::BatchCheckRequest{request.subject, request.node,
                                                           request.modes});
    }
    decisions.assign(n, Decision{});
    monitor_->CheckBatch(checks.data(), n, decisions.data());
    // Counted before posting so that by the time any waiter observes a
    // completion, completed() already covers it.
    completed_.fetch_add(n, std::memory_order_relaxed);
    // Pass 1: build every completion — including running invoke() — with no
    // client lock held, so a slow invoked body never extends a lock hold.
    std::vector<Completion> completions(n);
    for (size_t i = 0; i < n; ++i) {
      completions[i].ticket = batch[i].ticket;
      completions[i].decision = decisions[i];
      if (batch[i].invoke) {
        completions[i].invoke_status =
            decisions[i].allowed ? batch[i].invoke() : decisions[i].ToStatus();
      }
    }
    // Pass 2: flush results per client run. Batches drained from one shard
    // are usually dominated by a few hot submitters, so posting each
    // consecutive same-client run under ONE lock acquisition with ONE
    // notify_all replaces per-completion lock/notify churn — the batch
    // stats-flush analogue of the monitor's batched check above.
    for (size_t i = 0; i < n;) {
      Client* client = batch[i].client;
      size_t j = i;
      while (j < n && batch[j].client == client) {
        ++j;
      }
      {
        std::lock_guard<std::mutex> lock(client->mu_);
        for (size_t k = i; k < j; ++k) {
          client->ready_.push_back(std::move(completions[k]));
        }
        client->posted_.fetch_add(j - i, std::memory_order_release);
        client->cv_.notify_all();
      }
      i = j;
    }
    shard->batches.fetch_add(1, std::memory_order_relaxed);
    shard->heartbeat_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
    shard->busy.store(false, std::memory_order_release);
    // Credits return only now, after every result is posted: the pool
    // bounds work in flight, so a worker stuck above starves admissions
    // instead of letting the queue churn.
    shard->ring.ReleaseCredits(n);
  }
}

MediationRing::ShardHealth MediationRing::shard_health(size_t shard) const {
  ShardHealth health;
  if (shard >= shards_.size()) {
    return health;
  }
  const Shard& s = *shards_[shard];
  // busy (acquire) before the heartbeat: if we observe busy==true the stamp
  // we read is the running batch's start stamp or newer, so the computed age
  // can overstate a wedge only transiently, never fabricate one for an idle
  // shard.
  health.busy = s.busy.load(std::memory_order_acquire);
  health.heartbeat_ns = s.heartbeat_ns.load(std::memory_order_relaxed);
  health.batches = s.batches.load(std::memory_order_relaxed);
  return health;
}

size_t MediationRing::depth() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->ring.depth();
  }
  return total;
}

uint64_t MediationRing::batches() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->batches.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t MediationRing::stalls() const {
  uint64_t total = completion_stalls_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    total += shard->ring.rejected();
  }
  return total;
}

}  // namespace xsec
