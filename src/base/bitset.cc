#include "src/base/bitset.h"

#include <algorithm>
#include <bit>

namespace xsec {

void DynamicBitset::Resize(size_t bit_count) {
  if (bit_count <= bit_count_) {
    return;
  }
  bit_count_ = bit_count;
  words_.resize((bit_count + kBitsPerWord - 1) / kBitsPerWord, 0);
}

void DynamicBitset::Set(size_t index) {
  if (index >= bit_count_) {
    Resize(index + 1);
  }
  words_[index / kBitsPerWord] |= uint64_t{1} << (index % kBitsPerWord);
}

void DynamicBitset::Clear(size_t index) {
  if (index >= bit_count_) {
    return;
  }
  words_[index / kBitsPerWord] &= ~(uint64_t{1} << (index % kBitsPerWord));
}

bool DynamicBitset::Test(size_t index) const {
  if (index >= bit_count_) {
    return false;
  }
  return (words_[index / kBitsPerWord] >> (index % kBitsPerWord)) & 1;
}

void DynamicBitset::ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

void DynamicBitset::SetAll() {
  if (bit_count_ == 0) {
    return;
  }
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  // Mask off bits past the logical size so Count() stays correct.
  size_t tail = bit_count_ % kBitsPerWord;
  if (tail != 0) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

size_t DynamicBitset::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) {
    total += static_cast<size_t>(std::popcount(w));
  }
  return total;
}

size_t DynamicBitset::SignificantWords() const {
  size_t n = words_.size();
  while (n > 0 && words_[n - 1] == 0) {
    --n;
  }
  return n;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  size_t mine = SignificantWords();
  for (size_t i = 0; i < mine; ++i) {
    uint64_t theirs = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ~theirs) != 0) {
      return false;
    }
  }
  return true;
}

bool DynamicBitset::IsDisjointFrom(const DynamicBitset& other) const {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) {
      return false;
    }
  }
  return true;
}

DynamicBitset DynamicBitset::Union(const DynamicBitset& other) const {
  DynamicBitset out(std::max(bit_count_, other.bit_count_));
  for (size_t i = 0; i < out.words_.size(); ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    out.words_[i] = a | b;
  }
  return out;
}

DynamicBitset DynamicBitset::Intersection(const DynamicBitset& other) const {
  DynamicBitset out(std::max(bit_count_, other.bit_count_));
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  return out;
}

DynamicBitset DynamicBitset::Difference(const DynamicBitset& other) const {
  DynamicBitset out(bit_count_);
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    out.words_[i] = words_[i] & ~b;
  }
  return out;
}

void DynamicBitset::UnionInPlace(const DynamicBitset& other) {
  Resize(other.bit_count_);
  for (size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

bool DynamicBitset::operator==(const DynamicBitset& other) const {
  size_t a = SignificantWords();
  size_t b = other.SignificantWords();
  if (a != b) {
    return false;
  }
  return std::equal(words_.begin(), words_.begin() + a, other.words_.begin());
}

uint64_t DynamicBitset::Hash() const {
  // FNV-1a over significant words.
  uint64_t h = 14695981039346656037ULL;
  size_t n = SignificantWords();
  for (size_t i = 0; i < n; ++i) {
    h ^= words_[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<size_t> DynamicBitset::ToIndices() const {
  std::vector<size_t> out;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out.push_back(w * kBitsPerWord + static_cast<size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

std::string DynamicBitset::ToString() const {
  std::string out = "{";
  bool first = true;
  for (size_t index : ToIndices()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += std::to_string(index);
  }
  out += "}";
  return out;
}

}  // namespace xsec
