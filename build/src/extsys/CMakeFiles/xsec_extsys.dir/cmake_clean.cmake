file(REMOVE_RECURSE
  "CMakeFiles/xsec_extsys.dir/dispatcher.cc.o"
  "CMakeFiles/xsec_extsys.dir/dispatcher.cc.o.d"
  "CMakeFiles/xsec_extsys.dir/kernel.cc.o"
  "CMakeFiles/xsec_extsys.dir/kernel.cc.o.d"
  "CMakeFiles/xsec_extsys.dir/value.cc.o"
  "CMakeFiles/xsec_extsys.dir/value.cc.o.d"
  "libxsec_extsys.a"
  "libxsec_extsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_extsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
