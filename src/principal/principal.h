// Principals: the subjects of discretionary access control.
//
// The paper builds its DAC on "individuals and groups in combination with
// fully featured access control lists" (§2.1). This module provides both
// kinds of principal plus the transitive membership closure that ACL
// evaluation needs: an ACL entry naming a group matches a user iff the user
// is (transitively) a member of that group.

#ifndef XSEC_SRC_PRINCIPAL_PRINCIPAL_H_
#define XSEC_SRC_PRINCIPAL_PRINCIPAL_H_

#include <cstdint>
#include <string>

namespace xsec {

enum class PrincipalKind : uint8_t {
  kUser = 0,
  kGroup = 1,
};

// A dense, registry-scoped identifier. Dense ids let membership closures be
// bitsets, which keeps ACL evaluation branch-free per entry.
struct PrincipalId {
  uint32_t value = kInvalid;

  static constexpr uint32_t kInvalid = 0xffffffff;

  bool valid() const { return value != kInvalid; }

  friend bool operator==(PrincipalId a, PrincipalId b) { return a.value == b.value; }
  friend bool operator!=(PrincipalId a, PrincipalId b) { return a.value != b.value; }
  friend bool operator<(PrincipalId a, PrincipalId b) { return a.value < b.value; }
};

struct Principal {
  PrincipalId id;
  PrincipalKind kind;
  std::string name;
};

}  // namespace xsec

#endif  // XSEC_SRC_PRINCIPAL_PRINCIPAL_H_
