// A fixed-capacity multi-producer ring with credit-based admission and one
// batching consumer — the submission side of the mediation ring transport
// (src/monitor/mediation_ring.h, MODEL.md §14), modeled on the exception-less
// shared-ring syscall designs (XSC/FlexSC): producers spend a credit to
// enqueue, the consumer drains in batches and returns the credits only after
// the batch is fully processed, so the credit pool bounds work *in flight*,
// not merely work queued.
//
// The admission decision is a lock-free compare-exchange on the credit
// counter and FAILS FAST: a ring whose consumer has stalled rejects new work
// (TryPush returns false, counted in rejected()) instead of blocking the
// producer — back-pressure is an error the caller can see and retry, never a
// wedge. Only the slot copy itself takes the ring mutex, briefly.
//
// Thread safety: TryPush from any number of threads; DrainBatch and
// ReleaseCredits from the single consumer; Stop/telemetry from anywhere.

#ifndef XSEC_SRC_BASE_CREDIT_RING_H_
#define XSEC_SRC_BASE_CREDIT_RING_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace xsec {

template <typename T>
class CreditRing {
 public:
  explicit CreditRing(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        credits_(static_cast<int64_t>(capacity_)) {
    slots_.resize(capacity_);
  }

  CreditRing(const CreditRing&) = delete;
  CreditRing& operator=(const CreditRing&) = delete;

  // Producer side. False when no credit is available (consumer backlogged:
  // capacity_ items are queued or still being processed) or the ring is
  // stopped; the item is not consumed in that case. Never blocks beyond the
  // brief slot-copy critical section.
  bool TryPush(T item) {
    if (!TryAcquireCredit()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        credits_.fetch_add(1, std::memory_order_relaxed);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      slots_[(head_ + size_) % capacity_] = std::move(item);
      ++size_;
    }
    pushed_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
    return true;
  }

  // Consumer side: blocks until at least one item is queued or Stop() was
  // called, then appends up to `max` items to *out. Returns the number
  // drained; 0 means stopped with nothing left (the consumer should exit).
  // A Stop with items still queued drains them first — stop is drain-then-
  // exit, never drop.
  size_t DrainBatch(std::vector<T>* out, size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stopped_ || size_ != 0; });
    size_t n = max < size_ ? max : size_;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(slots_[head_]));
      head_ = (head_ + 1) % capacity_;
    }
    size_ -= n;
    return n;
  }

  // Returns `n` credits to the admission pool. The consumer calls this after
  // a drained batch has been fully processed (results posted), which is what
  // makes the credit pool a bound on in-flight work: a consumer stuck
  // mid-batch starves producers of credits rather than letting the queue
  // churn behind its back.
  void ReleaseCredits(size_t n) {
    credits_.fetch_add(static_cast<int64_t>(n), std::memory_order_release);
  }

  // Wakes the consumer for a final drain-then-exit pass and makes every
  // further TryPush fail. Idempotent.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  // Items currently queued (not yet drained). Telemetry; racy by nature.
  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  // Admissions refused for lack of a credit (or after Stop). This is the
  // ring's back-pressure signal made visible.
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  bool TryAcquireCredit() {
    int64_t credit = credits_.load(std::memory_order_relaxed);
    while (credit > 0) {
      if (credits_.compare_exchange_weak(credit, credit - 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  const size_t capacity_;
  std::atomic<int64_t> credits_;
  std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> rejected_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> slots_;
  size_t head_ = 0;  // oldest queued item
  size_t size_ = 0;  // queued items
  bool stopped_ = false;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASE_CREDIT_RING_H_
