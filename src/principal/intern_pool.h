// Shard-local interning of principal names (docs/MODEL.md §15).
//
// A million-subject policy repeats the same principal names across ACL
// entries, grant tables, and telemetry. NameArena packs interned names into
// large flat chunks (no per-name heap node, no capacity slack), and
// PrincipalInternPool deduplicates them into dense local ids, so a shard's
// working set of principal metadata stays contiguous and cache-resident
// instead of scattered across a heap of small strings.
//
// Thread safety: none. Each monitor shard owns its own pool and accesses it
// under the owning structure's lock (see ShardGrantTable); that is the point
// of shard-local pools — no cross-shard synchronisation on the hot path.

#ifndef XSEC_SRC_PRINCIPAL_INTERN_POOL_H_
#define XSEC_SRC_PRINCIPAL_INTERN_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xsec {

// Append-only string storage with stable views. Interned views stay valid
// for the arena's lifetime.
class NameArena {
 public:
  std::string_view Store(std::string_view s);

  size_t bytes_used() const { return bytes_used_; }

 private:
  static constexpr size_t kChunkSize = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cur_ = nullptr;  // current chunk; names pack tail-to-head
  size_t cur_used_ = 0;
  size_t cur_cap_ = 0;
  size_t bytes_used_ = 0;
};

// Deduplicating name → dense-local-id pool over a NameArena.
class PrincipalInternPool {
 public:
  // Interns `name`, returning its dense local id (stable across repeats).
  uint32_t Intern(std::string_view name);

  // The interned name for a local id; empty view when out of range.
  std::string_view NameOf(uint32_t local_id) const;

  // Local id of an already-interned name, or UINT32_MAX.
  uint32_t Find(std::string_view name) const;

  size_t size() const { return names_.size(); }
  size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  NameArena arena_;
  std::vector<std::string_view> names_;              // local id → name
  std::unordered_map<std::string_view, uint32_t> ids_;  // views into arena_
};

}  // namespace xsec

#endif  // XSEC_SRC_PRINCIPAL_INTERN_POOL_H_
