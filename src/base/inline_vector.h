// A tiny vector with inline storage for the first N elements.
//
// NameSpace::LookupWithAncestors runs on every mediated check; paths are
// almost always shallower than the inline capacity, so the ancestor walk
// should not touch the heap at all. This is deliberately minimal — trivially
// copyable element types only, no erase/insert — because the hot paths that
// use it only push_back and iterate.

#ifndef XSEC_SRC_BASE_INLINE_VECTOR_H_
#define XSEC_SRC_BASE_INLINE_VECTOR_H_

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <vector>

namespace xsec {

template <typename T, size_t N>
class InlineVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVector is restricted to trivially copyable elements");

 public:
  InlineVector() = default;
  InlineVector(const InlineVector&) = delete;
  InlineVector& operator=(const InlineVector&) = delete;

  void push_back(const T& v) {
    if (size_ < N) {
      inline_[size_++] = v;
      return;
    }
    overflow_.push_back(v);
    ++size_;
  }

  void clear() {
    size_ = 0;
    overflow_.clear();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const {
    return i < N ? inline_[i] : overflow_[i - N];
  }
  T& operator[](size_t i) { return i < N ? inline_[i] : overflow_[i - N]; }

  const T& back() const { return (*this)[size_ - 1]; }

  // True if any push_back spilled to the heap (telemetry for the F1 gate).
  bool spilled() const { return !overflow_.empty(); }

 private:
  T inline_[N];
  size_t size_ = 0;
  std::vector<T> overflow_;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASE_INLINE_VECTOR_H_
