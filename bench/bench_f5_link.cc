// Experiment F5 — secure linking cost vs import count (DESIGN.md §5).
//
// xsec checks `execute` per imported procedure and `extend` per specialized
// interface at link time (§1.1's two mechanisms); SPIN links whole domains
// at once. The figure compares:
//
//   XsecLink/<n>         full LoadExtension with n imports (per-import
//                        monitor checks + capability construction)
//   XsecLinkCached/<n>   same, with the decision cache warm
//   SpinStyleLink/<n>    all-or-nothing domain membership (one set probe per
//                        domain plus one per import symbol resolution)
//
// Expected shape: both linear in n; SPIN's constant is smaller per import —
// the price xsec pays for per-procedure granularity (which T1 shows SPIN
// cannot express). The cached variant closes most of the gap.

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_set>

#include "src/extsys/kernel.h"

namespace xsec {
namespace {

struct LinkFixture {
  explicit LinkFixture(int imports) {
    MonitorOptions options;
    options.check_traversal = false;
    options.audit_policy = AuditPolicy::kOff;
    kernel = std::make_unique<Kernel>(options);
    user = *kernel->principals().CreateUser("dev");
    (void)*kernel->RegisterService("/svc/s", kernel->system_principal());
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user, AccessMode::kExecute | AccessMode::kList});
    NodeId svc = *kernel->name_space().Lookup("/svc/s");
    (void)kernel->name_space().SetAclRef(svc, kernel->acls().Create(std::move(acl)));
    for (int i = 0; i < imports; ++i) {
      std::string path = "/svc/s/p" + std::to_string(i);
      (void)*kernel->RegisterProcedure(path, kernel->system_principal(),
                                       [](CallContext&) -> StatusOr<Value> {
                                         return Value{int64_t{0}};
                                       });
      manifest.imports.push_back(path);
    }
    manifest.name = "bench-ext";
    subject = kernel->CreateSubject(user, kernel->labels().Bottom());
  }

  std::unique_ptr<Kernel> kernel;
  PrincipalId user;
  ExtensionManifest manifest;
  Subject subject;
};

void XsecLink(benchmark::State& state, bool cached) {
  LinkFixture fixture(static_cast<int>(state.range(0)));
  if (!cached) {
    // Defeat the decision cache by clearing it every iteration.
  }
  for (auto _ : state) {
    if (!cached) {
      state.PauseTiming();
      fixture.kernel->monitor().cache().Clear();
      state.ResumeTiming();
    }
    auto id = fixture.kernel->LoadExtension(fixture.manifest, fixture.subject);
    benchmark::DoNotOptimize(id);
    state.PauseTiming();
    (void)fixture.kernel->UnloadExtension(fixture.subject, *id);
    state.ResumeTiming();
  }
  state.SetComplexityN(state.range(0));
}

void BM_XsecLink(benchmark::State& state) { XsecLink(state, /*cached=*/false); }
void BM_XsecLinkCached(benchmark::State& state) { XsecLink(state, /*cached=*/true); }
BENCHMARK(BM_XsecLink)->RangeMultiplier(4)->Range(1, 256)->Complexity(benchmark::oN);
BENCHMARK(BM_XsecLinkCached)->RangeMultiplier(4)->Range(1, 256);

void BM_SpinStyleLink(benchmark::State& state) {
  // SPIN resolves symbols against linked domains: one membership probe for
  // the domain, one symbol-table probe per import, no per-import policy.
  int imports = static_cast<int>(state.range(0));
  std::unordered_set<std::string> linked_domains = {"s"};
  std::unordered_set<std::string> domain_symbols;
  std::vector<std::string> wanted;
  for (int i = 0; i < imports; ++i) {
    std::string sym = "/svc/s/p" + std::to_string(i);
    domain_symbols.insert(sym);
    wanted.push_back(sym);
  }
  for (auto _ : state) {
    bool ok = linked_domains.count("s") != 0;
    size_t resolved = 0;
    for (const std::string& sym : wanted) {
      resolved += domain_symbols.count(sym);
    }
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(resolved);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpinStyleLink)->RangeMultiplier(4)->Range(1, 256)->Complexity(benchmark::oN);

void BM_XsecLinkWithExports(benchmark::State& state) {
  // Link cost when the extension also specializes n interfaces.
  int exports = static_cast<int>(state.range(0));
  MonitorOptions options;
  options.check_traversal = false;
  options.audit_policy = AuditPolicy::kOff;
  Kernel kernel(options);
  PrincipalId user = *kernel.principals().CreateUser("dev");
  (void)*kernel.RegisterService("/svc/s", kernel.system_principal());
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, user,
                AccessMode::kExecute | AccessMode::kExtend | AccessMode::kList});
  (void)kernel.name_space().SetAclRef(*kernel.name_space().Lookup("/svc/s"),
                                      kernel.acls().Create(std::move(acl)));
  ExtensionManifest manifest;
  manifest.name = "bench-ext";
  for (int i = 0; i < exports; ++i) {
    std::string path = "/svc/s/i" + std::to_string(i);
    (void)*kernel.RegisterInterface(path, kernel.system_principal());
    manifest.exports.push_back(
        {path, [](CallContext&) -> StatusOr<Value> { return Value{}; }});
  }
  Subject subject = kernel.CreateSubject(user, kernel.labels().Bottom());
  for (auto _ : state) {
    auto id = kernel.LoadExtension(manifest, subject);
    benchmark::DoNotOptimize(id);
    state.PauseTiming();
    (void)kernel.UnloadExtension(subject, *id);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_XsecLinkWithExports)->RangeMultiplier(4)->Range(1, 64);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
