// The Unix (4.4BSD) baseline: one owner, one group, nine permission bits.
//
// Paper §2: "The access control in Unix, which associates an individual and
// a group owner with each file, is primitive and barely sufficient for
// controlling file access, let alone for controlling an extensible system."
//
// Approximations (documented, deliberate — they are the *point* of the
// baseline): no append-only bit (write-append collapses to write); execute
// and extend both collapse to the x bit; delete is approximated by write on
// the object; administrate is owner-only (chmod/chown semantics); no
// negative rights; no MAC.

#ifndef XSEC_SRC_BASELINES_UNIX_MODEL_H_
#define XSEC_SRC_BASELINES_UNIX_MODEL_H_

#include "src/baselines/model.h"

namespace xsec {

class UnixModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "unix"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_UNIX_MODEL_H_
