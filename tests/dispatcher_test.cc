#include "src/extsys/dispatcher.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

SecurityClass Cls(TrustLevel level, std::initializer_list<size_t> cats = {}) {
  CategorySet set(4);
  for (size_t c : cats) {
    set.Set(c);
  }
  return SecurityClass(level, std::move(set));
}

HandlerFn Handler(int64_t tag) {
  return [tag](CallContext&) -> StatusOr<Value> { return Value{tag}; };
}

int64_t TagOf(const EventDispatcher::HandlerRecord* record) {
  CallContext ctx;
  return std::get<int64_t>(*record->handler(ctx));
}

class DispatcherTest : public ::testing::Test {
 protected:
  EventDispatcher dispatcher_;
  NodeId iface_{7};
};

TEST_F(DispatcherTest, NoHandlersIsNotFound) {
  auto selected = dispatcher_.Select(iface_, Cls(2), DispatchMode::kClassSelected);
  EXPECT_EQ(selected.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dispatcher_.HandlerCount(iface_), 0u);
}

TEST_F(DispatcherTest, ClassSelectedPicksMostTrustedEligible) {
  dispatcher_.Register(iface_, ExtensionId{0}, Cls(0), Handler(100));
  dispatcher_.Register(iface_, ExtensionId{1}, Cls(1), Handler(200));
  dispatcher_.Register(iface_, ExtensionId{2}, Cls(2), Handler(300));

  // A top caller gets the level-2 handler; a mid caller the level-1; a bottom
  // caller the level-0.
  auto top = dispatcher_.Select(iface_, Cls(2), DispatchMode::kClassSelected);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(TagOf(top->front()), 300);
  auto mid = dispatcher_.Select(iface_, Cls(1), DispatchMode::kClassSelected);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(TagOf(mid->front()), 200);
  auto low = dispatcher_.Select(iface_, Cls(0), DispatchMode::kClassSelected);
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(TagOf(low->front()), 100);
}

TEST_F(DispatcherTest, CallerBelowEveryHandlerIsDenied) {
  dispatcher_.Register(iface_, ExtensionId{0}, Cls(1, {1}), Handler(1));
  auto selected = dispatcher_.Select(iface_, Cls(0), DispatchMode::kClassSelected);
  EXPECT_EQ(selected.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(DispatcherTest, CategorySeparationInSelection) {
  // Handlers installed by department-1 and department-2 extensions.
  dispatcher_.Register(iface_, ExtensionId{0}, Cls(1, {1}), Handler(10));
  dispatcher_.Register(iface_, ExtensionId{1}, Cls(1, {2}), Handler(20));
  // A department-1 caller only reaches the department-1 handler.
  auto dep1 = dispatcher_.Select(iface_, Cls(1, {1}), DispatchMode::kClassSelected);
  ASSERT_TRUE(dep1.ok());
  EXPECT_EQ(TagOf(dep1->front()), 10);
  auto dep2 = dispatcher_.Select(iface_, Cls(1, {2}), DispatchMode::kClassSelected);
  ASSERT_TRUE(dep2.ok());
  EXPECT_EQ(TagOf(dep2->front()), 20);
  // A dual-category caller reaches both; ties between incomparable handler
  // classes break by registration order.
  auto both = dispatcher_.Select(iface_, Cls(1, {1, 2}), DispatchMode::kClassSelected);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(TagOf(both->front()), 10);
}

TEST_F(DispatcherTest, FirstRegisteredIgnoresClasses) {
  dispatcher_.Register(iface_, ExtensionId{0}, Cls(2), Handler(1));
  dispatcher_.Register(iface_, ExtensionId{1}, Cls(0), Handler(2));
  auto selected = dispatcher_.Select(iface_, Cls(0), DispatchMode::kFirstRegistered);
  ASSERT_TRUE(selected.ok());
  // Plain dispatch hands a bottom caller the level-2 handler — exactly the
  // hole class-selected dispatch closes.
  EXPECT_EQ(TagOf(selected->front()), 1);
}

TEST_F(DispatcherTest, BroadcastReturnsAllEligibleInOrder) {
  dispatcher_.Register(iface_, ExtensionId{0}, Cls(0), Handler(1));
  dispatcher_.Register(iface_, ExtensionId{1}, Cls(1), Handler(2));
  dispatcher_.Register(iface_, ExtensionId{2}, Cls(2), Handler(3));
  auto selected = dispatcher_.Select(iface_, Cls(1), DispatchMode::kBroadcast);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 2u);
  EXPECT_EQ(TagOf((*selected)[0]), 1);
  EXPECT_EQ(TagOf((*selected)[1]), 2);
}

TEST_F(DispatcherTest, UnregisterExtensionRemovesItsHandlers) {
  dispatcher_.Register(iface_, ExtensionId{0}, Cls(0), Handler(1));
  dispatcher_.Register(iface_, ExtensionId{1}, Cls(0), Handler(2));
  dispatcher_.Register(NodeId{8}, ExtensionId{0}, Cls(0), Handler(3));
  EXPECT_EQ(dispatcher_.total_handlers(), 3u);
  EXPECT_EQ(dispatcher_.UnregisterExtension(ExtensionId{0}), 2u);
  EXPECT_EQ(dispatcher_.total_handlers(), 1u);
  EXPECT_EQ(dispatcher_.HandlerCount(iface_), 1u);
  auto selected = dispatcher_.Select(iface_, Cls(2), DispatchMode::kClassSelected);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(TagOf(selected->front()), 2);
}

TEST_F(DispatcherTest, HandlersOnDifferentInterfacesAreIndependent) {
  dispatcher_.Register(NodeId{1}, ExtensionId{0}, Cls(0), Handler(1));
  dispatcher_.Register(NodeId{2}, ExtensionId{1}, Cls(0), Handler(2));
  auto a = dispatcher_.Select(NodeId{1}, Cls(2), DispatchMode::kClassSelected);
  auto b = dispatcher_.Select(NodeId{2}, Cls(2), DispatchMode::kClassSelected);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(TagOf(a->front()), 1);
  EXPECT_EQ(TagOf(b->front()), 2);
}

}  // namespace
}  // namespace xsec
