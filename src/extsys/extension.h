// Extensions: dynamically loaded units of code (paper §1.1).
//
// An extension interacts with the system in exactly two ways:
//   - it *calls* already-supported services (its `imports`, checked against
//     the `execute` access mode at link time and on every call);
//   - it *extends* the base system by specializing existing interfaces (its
//     `exports`, checked against the `extend` access mode and registered with
//     the event dispatcher).
//
// A manifest may carry a *static* security class: "it may be necessary to
// statically associate extensions with a certain security class to avoid
// security breaches (for example, applets that originate outside the local
// organization … might always run at the least level of trust)" (§2.2).

#ifndef XSEC_SRC_EXTSYS_EXTENSION_H_
#define XSEC_SRC_EXTSYS_EXTENSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/extsys/value.h"
#include "src/mac/security_class.h"
#include "src/monitor/subject.h"
#include "src/naming/namespace.h"
#include "src/principal/principal.h"

namespace xsec {

class Kernel;

// Where the code came from; drives default trust assignment in the scenario
// library (mirrors Java's local-disk vs network distinction, §1.2).
enum class Origin : uint8_t {
  kLocal = 0,
  kOrganization,
  kRemote,
};

std::string_view OriginName(Origin origin);

// The execution context a handler receives. Handlers reach other services
// only through `kernel` with the *caller's* subject — the class-propagation
// rule ("the security class is passed on when another system service is
// invoked", §2.2) falls out of this plumbing.
struct CallContext {
  Kernel* kernel = nullptr;
  Subject* subject = nullptr;
  Args args;
  // Absolute deadline (MonotonicNowNs clock) after which a blocking handler
  // must give up with kDeadlineExceeded; 0 means unbounded. Plumbed from
  // CallOptions so long-poll procedures (e.g. /svc/stats watch) can honor a
  // caller-imposed bound.
  uint64_t deadline_ns = 0;
  // Optional caller-owned cancellation flag (CallOptions::cancel); the caller
  // sets it to withdraw the request mid-call. Must outlive the call.
  const std::atomic<bool>* cancel = nullptr;

  // Cooperative-cancellation point. Long-running handlers are expected to
  // call CheckDeadline() at least once per bounded unit of work (one filter,
  // one simulation batch, one wait interval) and propagate a non-OK result;
  // that contract — not preemption — is what makes deadline_ns bound a
  // call's worst-case in-handler latency (docs/MODEL.md §11).
  bool Cancelled() const;
  // kCancelled if the cancel flag is set, kDeadlineExceeded if deadline_ns
  // has passed, OK otherwise. Flag wins: an explicit withdrawal is reported
  // as such even after the deadline.
  Status CheckDeadline() const;
};

using HandlerFn = std::function<StatusOr<Value>(CallContext&)>;

// One specialization an extension installs on an existing interface.
struct ExportSpec {
  std::string interface_path;  // the extension point, e.g. "/svc/vfs/read"
  HandlerFn handler;
};

struct ExtensionManifest {
  std::string name;
  Origin origin = Origin::kRemote;
  std::vector<std::string> imports;  // procedure paths this extension calls
  std::vector<ExportSpec> exports;   // interfaces this extension specializes
  // Statically assigned class; if unset the extension's handlers are
  // registered at the loading subject's class.
  std::optional<SecurityClass> static_class;
};

struct ExtensionId {
  uint32_t value = 0xffffffff;
  bool valid() const { return value != 0xffffffff; }
  friend bool operator==(ExtensionId a, ExtensionId b) { return a.value == b.value; }
};

// A capability to call one imported procedure: the link-time grant plus the
// resolved node. Calls through a capability skip path traversal but are still
// re-checked against the node (so revocation takes effect), which is the
// fast path experiment F1 measures.
struct Capability {
  NodeId node;
  std::string path;  // for diagnostics
};

// The result of successfully linking a manifest.
struct LinkedExtension {
  ExtensionId id;
  std::string name;
  PrincipalId principal;        // who the extension was loaded for
  SecurityClass handler_class;  // class its handlers are registered at
  NodeId node;                  // the extension's own node under /ext
  std::vector<Capability> imports;      // index-parallel with manifest.imports
  std::vector<NodeId> export_points;    // interfaces it specialized
};

}  // namespace xsec

#endif  // XSEC_SRC_EXTSYS_EXTENSION_H_
