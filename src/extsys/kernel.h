// The kernel of the simulated extensible system: the "base system" of the
// paper's §1.1 into which extensions are dynamically loaded and linked.
//
// The kernel owns the four policy stores, the reference monitor, the
// procedure table and the event dispatcher. Services register procedures and
// extension-point interfaces at boot (trusted, unmediated); afterwards every
// interaction — an application invoking a procedure, an extension being
// linked, an event being raised — is mediated by the reference monitor.
//
// The two interaction mechanisms of §1.1 map to:
//   calls:        Kernel::Invoke / Kernel::CallCapability  (execute mode)
//   extensions:   Kernel::LoadExtension + EventDispatcher  (extend mode)

#ifndef XSEC_SRC_EXTSYS_KERNEL_H_
#define XSEC_SRC_EXTSYS_KERNEL_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/call_options.h"
#include "src/dac/acl.h"
#include "src/extsys/dispatcher.h"
#include "src/extsys/extension.h"
#include "src/extsys/value.h"
#include "src/mac/label_authority.h"
#include "src/monitor/reference_monitor.h"
#include "src/naming/namespace.h"
#include "src/principal/registry.h"

namespace xsec {

// CallOptions (deadline + cancellation flag) now lives in
// src/base/call_options.h so the monitor's mediation ring can accept the
// same per-call options the kernel plumbs into handlers via CallContext.

class ExtensionSupervisor;

class Kernel {
 public:
  explicit Kernel(MonitorOptions options = {});

  // Non-copyable, non-movable: handlers capture `this`.
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // -- Store access ----------------------------------------------------------
  NameSpace& name_space() { return name_space_; }
  AclStore& acls() { return acls_; }
  PrincipalRegistry& principals() { return principals_; }
  LabelAuthority& labels() { return labels_; }
  ReferenceMonitor& monitor() { return *monitor_; }
  EventDispatcher& dispatcher() { return dispatcher_; }

  // The built-in most-privileged principal (owner of the namespace root).
  PrincipalId system_principal() const { return system_; }
  // A subject for the system principal at the lattice top.
  Subject SystemSubject();

  // Creates a fresh thread subject for a principal at a class.
  Subject CreateSubject(PrincipalId principal, const SecurityClass& security_class);

  // -- Boot-time (trusted) service registration ------------------------------
  // These create name-space nodes directly; the base system is trusted code
  // and is not subject to its own mediation (the monitor governs everything
  // that happens *through* the kernel afterwards).
  StatusOr<NodeId> RegisterService(std::string_view path, PrincipalId owner);
  StatusOr<NodeId> RegisterInterface(std::string_view path, PrincipalId owner);
  StatusOr<NodeId> RegisterProcedure(std::string_view path, PrincipalId owner, HandlerFn handler);

  // Rebinds the implementation of an existing procedure node (service-side).
  Status SetProcedureHandler(NodeId node, HandlerFn handler);

  // -- Mediated operations ----------------------------------------------------

  // Full-path call: resolve (with traversal checks), check `execute`, invoke.
  // Invoking an interface node dispatches class-selected to a handler.
  StatusOr<Value> Invoke(Subject& subject, std::string_view path, Args args,
                         const CallOptions& options = {});

  // Capability call: node-level `execute` re-check only (no traversal). The
  // fast path for linked extensions; revocation still takes effect because
  // the node check re-runs (cached) on every call.
  StatusOr<Value> CallCapability(Subject& subject, const Capability& capability, Args args,
                                 const CallOptions& options = {});

  // Raises an event on an extension-point interface: `execute` check on the
  // interface, then dispatch per `mode`. kBroadcast returns the last
  // handler's value. The deadline/cancel in `options` is forwarded to every
  // handler and re-checked between broadcast handlers, so a long chain is
  // cancellable at handler granularity.
  StatusOr<Value> RaiseEvent(Subject& subject, std::string_view interface_path, Args args,
                             DispatchMode mode = DispatchMode::kClassSelected,
                             const CallOptions& options = {});

  // -- Extension lifecycle ----------------------------------------------------

  // Links `manifest` on behalf of `loader`. The extension's handlers run at
  // manifest.static_class if set, else at the loader's class; link-time
  // import (`execute`) and export (`extend`) checks run at that class.
  StatusOr<ExtensionId> LoadExtension(const ExtensionManifest& manifest, const Subject& loader);

  // Unloads; requires the unloader to be the loading principal or to hold
  // administrate on the extension's node.
  Status UnloadExtension(const Subject& subject, ExtensionId id);

  const LinkedExtension* GetExtension(ExtensionId id) const;
  size_t loaded_extension_count() const { return loaded_count_; }

  // -- Supervision (docs/MODEL.md §16) ----------------------------------------
  // Optional: when set, every extension invocation (interface dispatch,
  // supervised procedures, broadcast handlers) runs under the supervisor's
  // budget/breaker admission, loaded extensions auto-register by name, and
  // dispatch skips quarantined handlers. The supervisor must outlive the
  // calls that use it. Null (the default) keeps the pre-supervision
  // behavior bit-for-bit.
  void set_supervisor(ExtensionSupervisor* supervisor) { supervisor_ = supervisor; }
  ExtensionSupervisor* supervisor() const { return supervisor_; }

  // The CallContext of the handler currently executing on THIS thread, or
  // null outside any handler. Nested Invoke/CallCapability/RaiseEvent cap
  // their deadline to it (a child can tighten but never outlive its
  // parent's bound) and inherit its cancel flag when none is given.
  static const CallContext* CurrentCallContext();

 private:
  StatusOr<Value> InvokeNode(Subject& subject, NodeId node, Args args,
                             const CallOptions& options);
  // Runs one handler under a CallContext scoped to this thread, admitting
  // through the supervisor first when `supervised_name` is non-null.
  StatusOr<Value> RunHandler(Subject& subject, const std::string* supervised_name,
                             const HandlerFn& handler, Args args, const CallOptions& options);
  // Caps options.deadline_ns / cancel to the enclosing handler's context.
  static CallOptions CapToParent(const CallOptions& options);

  NameSpace name_space_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  EventDispatcher dispatcher_;

  std::unordered_map<uint32_t, HandlerFn> procedures_;
  ExtensionSupervisor* supervisor_ = nullptr;
  std::vector<std::optional<LinkedExtension>> extensions_;
  size_t loaded_count_ = 0;
  PrincipalId system_;
  // Atomic: subjects are minted from concurrent threads (watchers, pollers,
  // test harnesses) and ids must stay unique.
  std::atomic<uint64_t> next_thread_id_{1};
};

}  // namespace xsec

#endif  // XSEC_SRC_EXTSYS_KERNEL_H_
