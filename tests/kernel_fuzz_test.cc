// Randomized end-to-end fuzzing of a full SecureSystem: a population of
// subjects at random classes performs random operations (file I/O, thread
// management, log appends, extension load/unload, ACL and label edits).
// Invariants checked throughout:
//
//   (1) no operation crashes or corrupts the system (every call returns a
//       Status; structural invariants of the name space hold afterwards);
//   (2) information-flow soundness: every *successful* fs read was performed
//       by a subject whose class dominates the file's effective label, and
//       every successful write/append targets a label dominating the writer;
//   (3) audit accounting: total checks = allows + denies, and the retained
//       denial records never exceed total denials.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/secure_system.h"

namespace xsec {
namespace {

class KernelFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelFuzzTest, RandomOperationStreamKeepsInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 17);
  SecureSystem sys;
  sys.monitor().set_audit_policy(AuditPolicy::kDenialsOnly);
  (void)sys.labels().DefineLevels({"l0", "l1", "l2"});
  (void)sys.labels().DefineCategory("c0");
  (void)sys.labels().DefineCategory("c1");

  auto random_class = [&] {
    CategorySet cats(2);
    for (size_t c = 0; c < 2; ++c) {
      if (rng.NextBool(1, 2)) {
        cats.Set(c);
      }
    }
    return SecurityClass(static_cast<TrustLevel>(rng.NextBelow(3)), std::move(cats));
  };

  // Population.
  std::vector<Subject> subjects;
  std::vector<PrincipalId> users;
  for (int i = 0; i < 5; ++i) {
    PrincipalId user = *sys.CreateUser("fuzz-u" + std::to_string(i));
    users.push_back(user);
    subjects.push_back(sys.Login(user, random_class()));
  }
  // A communal directory everyone can write into (DAC-wise); labels vary.
  NodeId shared = *sys.name_space().BindPath("/fs/shared", NodeKind::kDirectory,
                                             sys.system_principal());
  Acl open_acl;
  open_acl.AddEntry({AclEntryType::kAllow, sys.everyone(), AccessModeSet::All()});
  (void)sys.name_space().SetAclRef(shared, sys.kernel().acls().Create(std::move(open_acl)));

  std::vector<std::string> files;
  std::vector<int64_t> threads;
  std::vector<ExtensionId> extensions;
  uint64_t flow_violations = 0;

  for (int op = 0; op < 1500; ++op) {
    Subject& subject = subjects[rng.NextBelow(subjects.size())];
    switch (rng.NextBelow(10)) {
      case 0: {  // create a file
        std::string path = "/fs/shared/f" + std::to_string(rng.NextBelow(20));
        auto node = sys.fs().Create(subject, path);
        if (node.ok()) {
          files.push_back(path);
        }
        break;
      }
      case 1: {  // read a file; verify flow on success
        if (files.empty()) {
          break;
        }
        const std::string& path = files[rng.NextBelow(files.size())];
        auto data = sys.fs().Read(subject, path);
        if (data.ok()) {
          auto node = sys.name_space().Lookup(path);
          if (node.ok()) {
            const SecurityClass& label = sys.monitor().EffectiveLabel(*node);
            if (!subject.security_class.Dominates(label)) {
              ++flow_violations;
            }
          }
        }
        break;
      }
      case 2: {  // write or append; verify the ⋆-property on success
        if (files.empty()) {
          break;
        }
        const std::string& path = files[rng.NextBelow(files.size())];
        bool append = rng.NextBool(1, 2);
        Status status = append ? sys.fs().Append(subject, path, {1, 2})
                               : sys.fs().Write(subject, path, {3, 4});
        if (status.ok()) {
          auto node = sys.name_space().Lookup(path);
          if (node.ok()) {
            const SecurityClass& label = sys.monitor().EffectiveLabel(*node);
            if (!label.Dominates(subject.security_class)) {
              ++flow_violations;
            }
          }
        }
        break;
      }
      case 3: {  // relabel a file through the monitor (must obey the rules)
        if (files.empty()) {
          break;
        }
        auto node = sys.name_space().Lookup(files[rng.NextBelow(files.size())]);
        if (node.ok()) {
          (void)sys.monitor().SetNodeLabel(subject, *node, random_class());
        }
        break;
      }
      case 4: {  // ACL edit through the monitor
        if (files.empty()) {
          break;
        }
        auto node = sys.name_space().Lookup(files[rng.NextBelow(files.size())]);
        if (node.ok()) {
          AclEntry entry{rng.NextBool(1, 3) ? AclEntryType::kDeny : AclEntryType::kAllow,
                         users[rng.NextBelow(users.size())],
                         AccessModeSet(static_cast<uint32_t>(rng.NextBelow(256)))};
          (void)sys.monitor().AddAclEntry(subject, *node, entry);
        }
        break;
      }
      case 5: {  // spawn a thread
        auto id = sys.threads().Spawn(subject, "t");
        if (id.ok()) {
          threads.push_back(*id);
        }
        break;
      }
      case 6: {  // try to kill a random thread (usually someone else's)
        if (!threads.empty()) {
          (void)sys.threads().Kill(subject, threads[rng.NextBelow(threads.size())]);
        }
        break;
      }
      case 7: {  // log traffic
        (void)sys.log().AppendEntry(subject, "fuzz");
        break;
      }
      case 8: {  // load an extension importing a random service procedure
        ExtensionManifest manifest;
        manifest.name = "fuzz-ext-" + std::to_string(op);
        manifest.imports = {rng.NextBool(1, 2) ? "/svc/mbuf/alloc" : "/svc/fs/read"};
        auto id = sys.LoadExtension(manifest, subject);
        if (id.ok()) {
          extensions.push_back(*id);
        }
        break;
      }
      case 9: {  // unload a random extension (often not ours: usually denied)
        if (!extensions.empty()) {
          size_t index = rng.NextBelow(extensions.size());
          if (sys.UnloadExtension(subject, extensions[index]).ok()) {
            extensions.erase(extensions.begin() + static_cast<ptrdiff_t>(index));
          }
        }
        break;
      }
    }
  }

  EXPECT_EQ(flow_violations, 0u) << "seed " << GetParam();

  // Audit accounting.
  const AuditLog& audit = sys.monitor().audit();
  EXPECT_GE(audit.total_checks(), audit.total_denials());
  EXPECT_LE(audit.records().size() + audit.dropped(), audit.total_denials());

  // Structural sanity: every live node's parent is alive and lists it.
  NameSpace& ns = sys.name_space();
  for (uint32_t i = 0; i < ns.node_count(); ++i) {
    const Node* node = ns.Get(NodeId{i});
    if (node == nullptr || NodeId{i} == ns.root()) {
      continue;
    }
    const Node* parent = ns.Get(node->parent);
    ASSERT_NE(parent, nullptr) << "live node with dead parent";
    auto child = ns.Child(node->parent, node->name);
    ASSERT_TRUE(child.ok());
    EXPECT_EQ(*child, NodeId{i});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace xsec
