file(REMOVE_RECURSE
  "libxsec_principal.a"
)
