file(REMOVE_RECURSE
  "CMakeFiles/xsec_shell.dir/xsec_shell.cpp.o"
  "CMakeFiles/xsec_shell.dir/xsec_shell.cpp.o.d"
  "xsec_shell"
  "xsec_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
