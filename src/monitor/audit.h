// The audit log. The paper lists "auditing of security relevant system
// events" among the concerns a complete security model must address (§1);
// here every access decision can be recorded, under a configurable policy.
// Experiment F7 measures the cost of each policy.
//
// Thread safety: Record()/Count() may be called from any number of checking
// threads. The counters are lock-free atomics, so the hot allow path (under
// the default denials-only policy) never takes a lock; records that the
// policy retains go into a bounded ring — many producers serialize briefly
// on the ring mutex, the (single) consumer drains via records()/Query(),
// and the oldest record is overwritten once the ring is full.
//
// Sink I/O never runs under the ring mutex. Without a drain, the recording
// thread invokes the sink on a copy of the record after releasing the ring
// lock; the sink mutex is acquired BEFORE the sequence is stamped, so the
// stamp and the sink call form one serialized critical section and sync-mode
// output is in exact sequence order (sinks still need no internal locking).
// With StartDrain(), Record only enqueues into a bounded drain queue and a
// background drainer invokes the sink — file writes and NDJSON rotation
// renames happen on the drainer, never on a mediated check, and enqueueing
// inside the stamping critical section keeps drained output exactly
// sequence-ordered too. See docs/MODEL.md §11 for the ordering/durability
// semantics.

#ifndef XSEC_SRC_MONITOR_AUDIT_H_
#define XSEC_SRC_MONITOR_AUDIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/dac/access_mode.h"
#include "src/naming/namespace.h"
#include "src/principal/principal.h"

namespace xsec {

enum class AuditPolicy : uint8_t {
  kOff = 0,
  kDenialsOnly,
  kAll,
};

enum class DenyReason : uint8_t {
  kNone = 0,          // allowed
  kNotFound,          // target (or an ancestor) does not exist
  kTraversal,         // denied while resolving an ancestor
  kDacExplicitDeny,   // a negative ACL entry matched
  kDacNoGrant,        // no positive ACL entry covered the request
  kMacFlow,           // the lattice flow rules forbid the access
  kNotAuthorized,     // administrative operation without administrate rights
  kAuditUnavailable,  // fail-closed: the required audit sink is down
  kQuarantined,       // supervision: extension quarantined or monitor lockdown
};

// Number of DenyReason values, kNone included (per-reason counter arrays).
inline constexpr size_t kDenyReasonCount = 9;

std::string_view DenyReasonName(DenyReason reason);

struct AuditRecord {
  uint64_t sequence = 0;
  PrincipalId principal;
  uint64_t thread_id = 0;
  NodeId node;
  std::string path;          // resolved path, or the requested one on kNotFound
  AccessModeSet modes;
  bool allowed = false;
  DenyReason reason = DenyReason::kNone;
  std::string detail;        // human-readable explanation

  std::string ToString() const;

  // One-line JSON object (no trailing newline) with the full record; the
  // NDJSON streaming schema is documented in docs/MODEL.md §11.
  std::string ToJson() const;
};

// A sink for AuditLog::set_sink that writes each retained record as one
// NDJSON line to `out`. The stream must outlive the log; the log serializes
// sink invocations (sink mutex, or the single drainer thread), so the sink
// needs no locking of its own. A slow target stalls recorders unless the
// log's async drain is running (AuditLog::StartDrain).
std::function<void(const AuditRecord&)> MakeNdjsonSink(std::ostream* out);

// Rotation policy for an NDJSON audit file: the current file is rotated when
// appending the next record would push it past max_bytes, or when it has
// been open longer than max_age_ns (0 disables that limit). On rotation the
// files shift path -> path.1 -> ... -> path.max_keep and the oldest is
// deleted; max_keep == 0 truncates in place instead of keeping history.
struct NdjsonRotationPolicy {
  uint64_t max_bytes = 0;
  uint64_t max_age_ns = 0;
  size_t max_keep = 3;
};

// A size/age-rotating NDJSON audit file writer (tools/xsec_stats wires one
// behind --ndjson). Not internally synchronized: the AuditLog serializes its
// sink invocations (never under the ring mutex). Under the async drain both
// the fwrite and the rotation renames run on the drainer thread, off the
// mediated check path entirely.
class NdjsonFileRotator {
 public:
  NdjsonFileRotator(std::string path, NdjsonRotationPolicy policy);
  ~NdjsonFileRotator();
  NdjsonFileRotator(const NdjsonFileRotator&) = delete;
  NdjsonFileRotator& operator=(const NdjsonFileRotator&) = delete;

  // Opens (truncating) the base file. Must succeed before Write is used.
  Status Open();

  void Write(const AuditRecord& record);

  uint64_t rotations() const { return rotations_; }
  // Rotations whose history shift was skipped because the rename failed
  // (real or injected via the `audit.rotate.rename` failpoint); the file is
  // truncated in place instead, so writing always continues.
  uint64_t rename_failures() const { return rename_failures_; }
  // Lines that did not land in full — a short fwrite (disk full, I/O error,
  // or the `audit.ndjson.write` failpoint). The partial line is truncated
  // back off the file so the NDJSON whole-line invariant holds; the record
  // is dropped from export (the in-memory ring still retains it).
  uint64_t write_failures() const { return write_failures_; }
  const std::string& path() const { return path_; }

 private:
  void RotateIfNeeded(size_t next_line_bytes);

  std::string path_;
  NdjsonRotationPolicy policy_;
  std::FILE* out_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t opened_at_ns_ = 0;
  uint64_t rotations_ = 0;
  uint64_t rename_failures_ = 0;
  uint64_t write_failures_ = 0;
};

// Adapts a rotator into an AuditLog sink; the shared_ptr keeps it alive for
// as long as the log holds the sink.
std::function<void(const AuditRecord&)> MakeRotatingNdjsonSink(
    std::shared_ptr<NdjsonFileRotator> rotator);

// Fallible adapter for wrapping a rotator in a ResilientSink: a write the
// rotator had to drop (disk full — see write_failures()) reports
// kResourceExhausted, so the circuit breaker retries it and ultimately
// trips, which is what lets `audit_required` fail closed on a full disk.
std::function<Status(const AuditRecord&)> MakeRotatingNdjsonFallibleSink(
    std::shared_ptr<NdjsonFileRotator> rotator);

// A bounded in-memory audit sink: retains the most recent `capacity` records
// handed to it (a recent-window retention ring of its own, independent of
// the log's). Register one as a fan-out lane (MakeMemoryRingSink) to keep a
// cheap queryable tail per export plane. Accessors are thread-safe.
class AuditMemoryRing {
 public:
  explicit AuditMemoryRing(size_t capacity = 1024);

  void Write(const AuditRecord& record);

  // Retained records, oldest first.
  std::vector<AuditRecord> records() const;
  // Records ever written (retained or since evicted).
  uint64_t total() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<AuditRecord> ring_;
  uint64_t total_ = 0;
};

// Adapts a memory ring into an audit sink; the shared_ptr keeps it alive for
// as long as the log holds the sink.
std::function<void(const AuditRecord&)> MakeMemoryRingSink(
    std::shared_ptr<AuditMemoryRing> ring);

// -- Self-healing sink --------------------------------------------------------

// Tuning for ResilientSink (MODEL.md §12). Defaults: up to 4 attempts per
// record with 1ms→50ms capped exponential backoff ±50% jitter; 8 consecutive
// failed attempts trip the circuit open; after 200ms an open circuit lets one
// half-open probe through.
struct ResilientSinkOptions {
  int max_attempts = 4;                     // per record, first try included
  uint64_t backoff_initial_ns = 1'000'000;  // 1 ms before the first retry
  uint64_t backoff_max_ns = 50'000'000;     // backoff doubles up to this cap
  uint32_t jitter_pct = 50;                 // backoff is jittered ± this %
  uint32_t trip_after = 8;                  // consecutive failed attempts → open
  uint64_t reopen_after_ns = 200'000'000;   // open → half-open probe interval
  uint64_t rng_seed = 0x5eed;               // jitter rng (deterministic)
};

// A circuit-breaking retry wrapper around a fallible sink. Closed: every
// record is attempted up to max_attempts times with capped exponential
// backoff + jitter. Open (tripped after trip_after consecutive failed
// attempts): records are dropped immediately (counted in gave_up()) so a
// dead sink cannot stall the audit pipeline; the ring still retains them.
// Half-open: after reopen_after_ns one probe record is tried once — success
// recloses the circuit, failure reopens it.
//
// Write() must be externally serialized, which AuditLog::InstallResilientSink
// guarantees (sink invocations run under the log's sink mutex or on its
// single drainer thread). The state/counter accessors are safe from any
// thread — they back the /sys/monitor/audit/{sink_state,retries,gave_up}
// leaves and the monitor's fail-closed check.
class ResilientSink {
 public:
  enum class State : uint8_t { kClosed = 0, kOpen, kHalfOpen };

  // The wrapped sink reports failure via Status so retries are possible
  // (the plain void AuditLog::Sink cannot).
  using FallibleSink = std::function<Status(const AuditRecord&)>;

  explicit ResilientSink(FallibleSink inner, ResilientSinkOptions options = {});

  // Delivers one record per the policy above. The `audit.sink.write`
  // failpoint is evaluated on every attempt, before the inner sink.
  void Write(const AuditRecord& record);

  State state() const { return state_.load(std::memory_order_relaxed); }
  bool healthy() const { return state() != State::kOpen; }

  uint64_t written() const { return written_.load(std::memory_order_relaxed); }
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t gave_up() const { return gave_up_.load(std::memory_order_relaxed); }

  static std::string_view StateName(State state);

 private:
  Status TryOnce(const AuditRecord& record);

  FallibleSink inner_;
  ResilientSinkOptions options_;
  Rng rng_;
  std::atomic<State> state_{State::kClosed};
  std::atomic<uint64_t> written_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> gave_up_{0};
  // Touched only inside Write (externally serialized).
  uint32_t consecutive_failures_ = 0;
  uint64_t opened_at_ns_ = 0;
};

// Configuration for the async audit drain (AuditLog::StartDrain). The drain
// queue is bounded: when a slow sink lets it fill, newly retained records
// skip the sink (counted in sink_dropped()) rather than blocking recorders —
// the ring still retains them, so nothing is lost from records()/Query().
struct AuditDrainOptions {
  size_t queue_capacity = 4096;
};

// Configuration for the sharded multi-sink fan-out (AuditLog::StartFanOut).
struct AuditFanOutOptions {
  // Shard queues per lane; a record lands in shard (sequence % shards).
  size_t shards = 4;
  // Per-shard queue bound. A full shard drops the record for THAT lane only
  // (counted in the lane's dropped gauge); other lanes and the retained
  // ring are unaffected, so one wedged sink cannot starve the rest.
  size_t shard_queue_capacity = 1024;
};

// Per-lane telemetry snapshot (AuditLog::FanOutStats).
struct AuditSinkLaneStats {
  uint64_t id = 0;
  std::string name;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t stitch_violations = 0;
};

class AuditLog {
 public:
  using Sink = std::function<void(const AuditRecord&)>;

  explicit AuditLog(size_t capacity = 4096) : capacity_(capacity) {}
  ~AuditLog() {
    StopDrain();
    StopFanOut();
  }

  void set_policy(AuditPolicy policy) { policy_.store(policy, std::memory_order_relaxed); }
  AuditPolicy policy() const { return policy_.load(std::memory_order_relaxed); }

  // Records a decision if the policy asks for it. Counters are maintained
  // regardless of policy.
  void Record(AuditRecord record);

  // True iff the current policy would retain a record with this outcome.
  // Callers use this to skip building record text (path strings) that would
  // be thrown away; if it returns false they call Count() instead.
  bool WouldRetain(bool allowed) const {
    AuditPolicy p = policy();
    return p == AuditPolicy::kAll || (p == AuditPolicy::kDenialsOnly && !allowed);
  }

  // Records a whole batch of decisions in one stamping critical section
  // (the mediation-ring worker path): every record is counted, then those
  // the current policy retains are sequence-stamped contiguously, handed to
  // the sink/drain, and ring-inserted under ONE acquisition of the ring
  // mutex. Ordering semantics are identical to N Record() calls performed
  // back-to-back by one thread. Consumes `records`.
  void RecordBatch(std::vector<AuditRecord> records);

  // Maintains counters without retaining a record. Lock-free.
  void Count(bool allowed) {
    total_checks_.fetch_add(1, std::memory_order_relaxed);
    if (!allowed) {
      total_denials_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Batched Count: `checks` decisions of which `denials` denied, in two
  // fetch_adds total. For batch paths whose records the policy discards.
  void CountBatch(uint64_t checks, uint64_t denials) {
    if (checks != 0) {
      total_checks_.fetch_add(checks, std::memory_order_relaxed);
    }
    if (denials != 0) {
      total_denials_.fetch_add(denials, std::memory_order_relaxed);
    }
  }

  // Optional sink invoked for every retained record (e.g. a test collector
  // or an NDJSON writer). Invocations are serialized, in exact sequence
  // order, and never run under the ring mutex; without a drain the
  // recording thread calls the sink itself (and blocks on its I/O), with
  // one the drainer does. Install at setup time, before concurrent checking
  // starts.
  void set_sink(Sink sink);

  // Installs `sink` (may be null to remove) as THE sink, wrapped so every
  // retained record goes through its retry/circuit-breaker policy, and
  // registers it as the log's health source: SinkTripped(), sink_state()
  // and the retry counters reflect this sink from here on. Install at setup
  // time, like set_sink.
  void InstallResilientSink(std::shared_ptr<ResilientSink> sink);

  // -- Fail-closed contract (MODEL.md §12) ------------------------------------

  // When required is set and the resilient sink's circuit is open, the
  // reference monitor turns would-be allows into kAuditUnavailable denials
  // instead of letting actions proceed unaudited. Without required mode the
  // monitor lets them pass and counts them in unaudited_allows().
  void set_required(bool required) { required_.store(required, std::memory_order_relaxed); }
  bool required() const { return required_.load(std::memory_order_relaxed); }

  // True when a resilient sink is installed and its circuit is open. Hot
  // path: one pointer load (the common no-resilient-sink case stops at the
  // null check).
  bool SinkTripped() const {
    const ResilientSink* sink = resilient_raw_.load(std::memory_order_acquire);
    return sink != nullptr && sink->state() == ResilientSink::State::kOpen;
  }

  void CountUnauditedAllow() { unaudited_allows_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t unaudited_allows() const {
    return unaudited_allows_.load(std::memory_order_relaxed);
  }

  // Health of the installed resilient sink: "none" when there isn't one,
  // else "closed" / "open" / "half-open". Backs /sys/monitor/audit/sink_state.
  std::string sink_state() const;
  uint64_t sink_retries() const;
  uint64_t sink_gave_up() const;

  // -- Async drain ------------------------------------------------------------

  // Starts the background drainer: from here on Record() only enqueues (a
  // bounded copy queue) and the drainer invokes the sink in sequence order.
  // Idempotent while running. Thread-compatible with concurrent Record().
  void StartDrain(AuditDrainOptions options = {});

  // Drains whatever is queued, then stops and joins the drainer. Queued
  // records are flushed to the sink before this returns (clean-shutdown
  // durability); records that were dropped on a full queue are gone — see
  // sink_dropped(). No-op if the drain is not running.
  void StopDrain();

  // Blocks until every record enqueued before this call has been handed to
  // the sink (and any in-flight synchronous sink call has returned). With no
  // drain running this only waits out the in-flight call.
  void Flush();

  // Retained records that skipped the sink because the drain queue was full.
  uint64_t sink_dropped() const { return sink_dropped_.load(std::memory_order_relaxed); }

  // -- Multi-sink sharded fan-out ---------------------------------------------
  //
  // A second export plane, independent of the single set_sink pipeline:
  // AddSink registers any number of named sinks (an NDJSON file, an
  // in-memory ring, a future network exporter — the registry IS the hook
  // for new sink kinds), each backed by its own *lane* of `shards`
  // sequence-keyed queues and its own drainer thread. Lanes drain in
  // parallel, so a slow sink throttles only itself. Every retained record
  // is enqueued to every running lane inside the stamping critical section
  // — pushes therefore arrive in strictly increasing global sequence order
  // across all of a lane's shards — and each lane's stitcher (a
  // min-sequence merge over its shard heads) provably hands records to the
  // sink boundary in exact global sequence order. The proof is monitored,
  // not assumed: any out-of-order emission bumps the lane's
  // stitch_violations counter (0 in a correct run; tests and the F12 CI
  // gate pin it there). Backpressure drops leave gaps, never reorderings.

  // Registers a sink as a new lane; returns its id. Callable before or
  // after StartFanOut (a lane added while running starts draining at once).
  // The sink is invoked only from that lane's drainer thread.
  uint64_t AddSink(std::string name, Sink sink);

  // Stops the lane's drainer (flushing queued records first) and removes it.
  bool RemoveSink(uint64_t id);

  // Starts the fan-out: sizes every lane's shard queues and spawns one
  // drainer per lane. Records retained before this call are not fanned out.
  // Idempotent while running.
  void StartFanOut(AuditFanOutOptions options = {});

  // Flush-then-join of every lane drainer; lanes stay registered, so a
  // later StartFanOut resumes them. No-op when not running.
  void StopFanOut();

  // Aggregate fan-out gauges (backing /sys/monitor/audit/fanout/*).
  size_t fanout_sinks() const;
  uint64_t fanout_delivered() const;
  uint64_t fanout_dropped() const;
  uint64_t fanout_stitch_violations() const;
  // Per-lane breakdown for tools and tests.
  std::vector<AuditSinkLaneStats> FanOutStats() const;

  // Snapshot of the retained records, oldest first.
  std::vector<AuditRecord> records() const;

  // Number of currently retained records, without copying them (the cheap
  // gauge behind /sys/monitor/audit/retained).
  size_t retained() const;

  // Retained records matching a predicate, oldest first.
  std::vector<AuditRecord> Query(const std::function<bool(const AuditRecord&)>& pred) const;

  uint64_t total_checks() const { return total_checks_.load(std::memory_order_relaxed); }
  uint64_t total_denials() const { return total_denials_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Discards the retained ring and zeroes the counters. Sequence numbers are
  // NOT reset: records emitted after a Clear continue the sequence, so ids
  // already exported (e.g. to rotated NDJSON files) are never reused and
  // cross-rotation dedup/ordering by `seq` stays sound.
  void Clear();

 private:
  // Recomputes sync_sink_active_ from sink_/drain_running_. Caller holds mu_.
  void UpdateSyncModeLocked() {
    sync_sink_active_.store(sink_ != nullptr && !drain_running_,
                            std::memory_order_release);
  }

  // Appends `visit(record)` for each retained record, oldest first, with
  // mu_ held.
  template <typename Visit>
  void ForEachLocked(Visit visit) const;

  // One registered fan-out sink: N sharded queues plus a drainer that
  // stitches them back into global sequence order. Defined in audit.cc.
  struct SinkLane;

  // Pushes `record` onto every running lane's shard queue. Caller holds mu_
  // (the stamping critical section), which is what makes cross-shard pushes
  // globally sequence-ordered.
  void EnqueueFanOutLocked(const AuditRecord& record);

  // Sizes a lane's shards per fanout_options_ and spawns its drainer.
  // Caller holds mu_ and fanout_running_ is true.
  void StartLaneLocked(const std::shared_ptr<SinkLane>& lane);

  // A lane drainer's main loop (min-sequence stitcher).
  void LaneLoop(SinkLane* lane);

  // Inserts into the bounded ring. Caller holds mu_.
  void RingInsertLocked(AuditRecord record);

  // The drainer thread's main loop.
  void DrainLoop();

  size_t capacity_;
  std::atomic<AuditPolicy> policy_{AuditPolicy::kDenialsOnly};
  std::atomic<uint64_t> total_checks_{0};
  std::atomic<uint64_t> total_denials_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> sink_dropped_{0};

  // Ring of retained records: grows to capacity_, then head_ marks the
  // oldest record and new ones overwrite it. mu_ also orders sequence
  // stamping and drain-queue admission, which is what makes drained sink
  // output exactly sequence-ordered.
  mutable std::mutex mu_;
  std::vector<AuditRecord> ring_;
  size_t head_ = 0;
  // Shared so a recorder can invoke the current sink after dropping mu_
  // while set_sink concurrently swaps in a new one.
  std::shared_ptr<const Sink> sink_;
  uint64_t next_sequence_ = 0;

  // Resilient-sink health plumbing. resilient_ (guarded by mu_) owns the
  // sink; resilient_raw_ mirrors it so the monitor's per-check SinkTripped
  // probe is one lock-free load.
  std::shared_ptr<ResilientSink> resilient_;
  std::atomic<const ResilientSink*> resilient_raw_{nullptr};
  std::atomic<bool> required_{false};
  std::atomic<uint64_t> unaudited_allows_{0};

  // Serializes sink invocations (sync recorders and the drainer), so sinks
  // never need internal locking. Lock order: sync-mode recorders acquire
  // sink_mu_ BEFORE mu_ (stamping and sink emission become one critical
  // section, which is what makes sync-mode output exactly sequence-ordered);
  // no path ever acquires sink_mu_ while holding mu_.
  std::mutex sink_mu_;

  // True iff a sink is installed and no drain is running, i.e. recorders
  // will invoke the sink themselves. Maintained under mu_
  // (UpdateSyncModeLocked); read lock-free by recorders to decide whether
  // to pre-acquire sink_mu_. Sinks are installed at setup time, so the
  // pre-check and the under-mu_ state only diverge in tests that hot-swap
  // sinks — and then the recorder falls back to acquiring sink_mu_ late
  // (serialized, possibly unordered for that one racing record).
  std::atomic<bool> sync_sink_active_{false};

  // Async drain state, guarded by mu_ (the queue is touched only on actual
  // retention, never on the counting fast path).
  std::deque<AuditRecord> drain_queue_;
  AuditDrainOptions drain_options_;
  bool drain_running_ = false;
  bool drain_stop_ = false;
  bool drain_busy_ = false;  // the drainer is mid-batch outside mu_
  std::condition_variable drain_cv_;       // wakes the drainer
  std::condition_variable drain_idle_cv_;  // wakes Flush waiters
  std::thread drainer_;

  // Fan-out lane registry, guarded by mu_. Lanes are shared_ptrs so
  // StopFanOut/RemoveSink can join a drainer after dropping mu_ while a
  // racing accessor still holds a reference.
  std::vector<std::shared_ptr<SinkLane>> lanes_;
  AuditFanOutOptions fanout_options_;
  bool fanout_running_ = false;
  uint64_t next_lane_id_ = 1;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_AUDIT_H_
