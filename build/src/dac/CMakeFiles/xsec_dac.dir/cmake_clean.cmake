file(REMOVE_RECURSE
  "CMakeFiles/xsec_dac.dir/access_mode.cc.o"
  "CMakeFiles/xsec_dac.dir/access_mode.cc.o.d"
  "CMakeFiles/xsec_dac.dir/acl.cc.o"
  "CMakeFiles/xsec_dac.dir/acl.cc.o.d"
  "libxsec_dac.a"
  "libxsec_dac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
