#include "src/extsys/value.h"

#include "src/base/strings.h"

namespace xsec {
namespace {

template <typename T>
StatusOr<T> ArgAs(const Args& args, size_t index, const char* type_name) {
  if (index >= args.size()) {
    return InvalidArgumentError(
        StrFormat("argument %zu missing (got %zu arguments)", index, args.size()));
  }
  const T* value = std::get_if<T>(&args[index]);
  if (value == nullptr) {
    return InvalidArgumentError(StrFormat("argument %zu is not a %s", index, type_name));
  }
  return *value;
}

}  // namespace

StatusOr<int64_t> ArgInt(const Args& args, size_t index) {
  return ArgAs<int64_t>(args, index, "integer");
}

StatusOr<bool> ArgBool(const Args& args, size_t index) { return ArgAs<bool>(args, index, "bool"); }

StatusOr<std::string> ArgString(const Args& args, size_t index) {
  return ArgAs<std::string>(args, index, "string");
}

StatusOr<std::vector<uint8_t>> ArgBytes(const Args& args, size_t index) {
  return ArgAs<std::vector<uint8_t>>(args, index, "byte vector");
}

std::string ValueToString(const Value& value) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(int64_t i) const { return std::to_string(i); }
    std::string operator()(const std::string& s) const { return StrFormat("\"%s\"", s.c_str()); }
    std::string operator()(const std::vector<uint8_t>& b) const {
      return StrFormat("<%zu bytes>", b.size());
    }
  };
  return std::visit(Visitor{}, value);
}

std::string ArgsToString(const Args& args) {
  std::string out = "[";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += ValueToString(args[i]);
  }
  out += "]";
  return out;
}

}  // namespace xsec
