#include "src/monitor/reference_monitor.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

class ReferenceMonitorTest : public ::testing::Test {
 protected:
  ReferenceMonitorTest() { Boot(MonitorOptions{}); }

  void Boot(MonitorOptions options) {
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_, options);
    if (!booted_) {
      alice_ = *principals_.CreateUser("alice");
      bob_ = *principals_.CreateUser("bob");
      staff_ = *principals_.CreateGroup("staff");
      (void)principals_.AddMember(staff_, alice_);
      (void)labels_.DefineLevels({"low", "high"});
      (void)labels_.DefineCategory("a");
      (void)labels_.DefineCategory("b");
      dir_ = *ns_.BindPath("/d", NodeKind::kDirectory, alice_);
      sub_ = *ns_.BindPath("/d/sub", NodeKind::kDirectory, alice_);
      obj_ = *ns_.BindPath("/d/sub/obj", NodeKind::kFile, alice_);
      booted_ = true;
    }
  }

  SecurityClass Cls(TrustLevel level, std::initializer_list<size_t> cats = {}) {
    CategorySet set(2);
    for (size_t c : cats) {
      set.Set(c);
    }
    return SecurityClass(level, std::move(set));
  }

  Subject SubjectFor(PrincipalId p, SecurityClass cls) { return Subject{p, cls, 1}; }
  Subject Bottom(PrincipalId p) { return SubjectFor(p, Cls(0)); }

  void GrantOn(NodeId node, PrincipalId who, AccessModeSet modes) {
    Acl acl;
    if (const Acl* existing = monitor_->EffectiveAcl(node); existing != nullptr &&
        ns_.Get(node)->acl_ref != kNoRef) {
      acl = *existing;
    }
    acl.AddEntry({AclEntryType::kAllow, who, modes});
    (void)ns_.SetAclRef(node, acls_.Create(std::move(acl)));
  }

  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  bool booted_ = false;
  PrincipalId alice_, bob_, staff_;
  NodeId dir_, sub_, obj_;
};

TEST_F(ReferenceMonitorTest, NoAclAnywhereDeniesEverything) {
  Decision d = monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, DenyReason::kDacNoGrant);
}

TEST_F(ReferenceMonitorTest, DirectGrantAllows) {
  GrantOn(obj_, bob_, AccessMode::kRead | AccessMode::kWrite);
  Decision d = monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.reason, DenyReason::kNone);
}

TEST_F(ReferenceMonitorTest, AclInheritsFromNearestAncestor) {
  GrantOn(dir_, bob_, AccessModeSet(AccessMode::kRead));
  // obj has no own ACL; /d's applies.
  EXPECT_TRUE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
  // A closer ACL on /d/sub overrides /d entirely.
  GrantOn(sub_, alice_, AccessModeSet(AccessMode::kRead));
  EXPECT_FALSE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
  EXPECT_TRUE(monitor_->Check(Bottom(alice_), obj_, AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, GroupGrantReachesMembers) {
  GrantOn(obj_, staff_, AccessModeSet(AccessMode::kRead));
  EXPECT_TRUE(monitor_->Check(Bottom(alice_), obj_, AccessMode::kRead).allowed);
  EXPECT_FALSE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
  // Membership changes take effect immediately.
  ASSERT_TRUE(principals_.AddMember(staff_, bob_).ok());
  EXPECT_TRUE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
  ASSERT_TRUE(principals_.RemoveMember(staff_, bob_).ok());
  EXPECT_FALSE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, ExplicitDenyWinsAndIsReported) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, staff_, AccessModeSet(AccessMode::kRead)});
  acl.AddEntry({AclEntryType::kDeny, alice_, AccessModeSet(AccessMode::kRead)});
  (void)ns_.SetAclRef(obj_, acls_.Create(std::move(acl)));
  Decision d = monitor_->Check(Bottom(alice_), obj_, AccessMode::kRead);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, DenyReason::kDacExplicitDeny);
}

TEST_F(ReferenceMonitorTest, MacDeniesReadUpEvenWithDacGrant) {
  GrantOn(obj_, bob_, AccessModeSet::All());
  (void)ns_.SetLabelRef(obj_, labels_.StoreLabel(Cls(1, {0})));
  Decision d = monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, DenyReason::kMacFlow);
  // A subject that dominates the label reads fine.
  EXPECT_TRUE(monitor_->Check(SubjectFor(bob_, Cls(1, {0})), obj_, AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, MacLabelInheritsFromAncestor) {
  GrantOn(obj_, bob_, AccessModeSet::All());
  (void)ns_.SetLabelRef(dir_, labels_.StoreLabel(Cls(1, {1})));
  // obj and sub have no label; they inherit /d's (1,{b}).
  EXPECT_FALSE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
  EXPECT_TRUE(monitor_->Check(SubjectFor(bob_, Cls(1, {1})), obj_, AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, MacStarPropertyOnWrites) {
  GrantOn(obj_, bob_, AccessModeSet::All());
  (void)ns_.SetLabelRef(obj_, labels_.StoreLabel(Cls(1, {0})));
  Subject low = Bottom(bob_);
  // Append up: allowed. Overwrite up: denied (strict default). Read up: denied.
  EXPECT_TRUE(monitor_->Check(low, obj_, AccessMode::kWriteAppend).allowed);
  EXPECT_FALSE(monitor_->Check(low, obj_, AccessMode::kWrite).allowed);
  Subject equal = SubjectFor(bob_, Cls(1, {0}));
  EXPECT_TRUE(monitor_->Check(equal, obj_, AccessMode::kWrite).allowed);
  // Write down: denied.
  Subject high = SubjectFor(bob_, Cls(1, {0, 1}));
  EXPECT_FALSE(monitor_->Check(high, obj_, AccessMode::kWrite).allowed);
}

TEST_F(ReferenceMonitorTest, DacDisabledSkipsAclChecks) {
  Boot(MonitorOptions{.dac_enabled = false});
  // No ACL grants anything, but DAC is off and labels are ⊥.
  EXPECT_TRUE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, MacDisabledSkipsFlowChecks) {
  Boot(MonitorOptions{.mac_enabled = false});
  GrantOn(obj_, bob_, AccessModeSet::All());
  (void)ns_.SetLabelRef(obj_, labels_.StoreLabel(Cls(1, {0})));
  EXPECT_TRUE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, CheckPathEnforcesTraversal) {
  GrantOn(obj_, bob_, AccessModeSet(AccessMode::kRead));
  // bob has read on obj but no list on the ancestors.
  Decision d = monitor_->CheckPath(Bottom(bob_), "/d/sub/obj", AccessMode::kRead);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, DenyReason::kTraversal);
  // Granting list along the chain fixes it.
  GrantOn(ns_.root(), bob_, AccessModeSet(AccessMode::kList));
  GrantOn(dir_, bob_, AccessMode::kList | AccessMode::kRead);
  GrantOn(sub_, bob_, AccessMode::kList | AccessMode::kRead);
  NodeId resolved;
  d = monitor_->CheckPath(Bottom(bob_), "/d/sub/obj", AccessMode::kRead, &resolved);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(resolved, obj_);
}

TEST_F(ReferenceMonitorTest, CheckPathWithoutTraversalChecks) {
  Boot(MonitorOptions{.check_traversal = false});
  GrantOn(obj_, bob_, AccessModeSet(AccessMode::kRead));
  EXPECT_TRUE(monitor_->CheckPath(Bottom(bob_), "/d/sub/obj", AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, CheckPathNotFound) {
  Boot(MonitorOptions{.check_traversal = false});
  Decision d = monitor_->CheckPath(Bottom(bob_), "/d/missing", AccessMode::kRead);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, DenyReason::kNotFound);
  EXPECT_EQ(d.ToStatus().code(), StatusCode::kNotFound);
  d = monitor_->CheckPath(Bottom(bob_), "not-a-path", AccessMode::kRead);
  EXPECT_EQ(d.reason, DenyReason::kNotFound);
}

TEST_F(ReferenceMonitorTest, DecisionToStatus) {
  Decision allowed{true, DenyReason::kNone, ""};
  EXPECT_TRUE(allowed.ToStatus().ok());
  Decision denied{false, DenyReason::kMacFlow, "nope"};
  EXPECT_EQ(denied.ToStatus().code(), StatusCode::kPermissionDenied);
}

TEST_F(ReferenceMonitorTest, OwnerAlwaysHoldsAdministrate) {
  // alice owns obj and has no ACL grant at all.
  EXPECT_TRUE(monitor_->HasAdministrate(Bottom(alice_), obj_));
  EXPECT_FALSE(monitor_->HasAdministrate(Bottom(bob_), obj_));
}

TEST_F(ReferenceMonitorTest, SetNodeAclRequiresAdministrate) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, bob_, AccessModeSet(AccessMode::kRead)});
  EXPECT_EQ(monitor_->SetNodeAcl(Bottom(bob_), obj_, acl).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(monitor_->SetNodeAcl(Bottom(alice_), obj_, acl).ok());
  EXPECT_TRUE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, NonOwnerWithAclAdministrateCanAdminister) {
  GrantOn(obj_, bob_, AccessModeSet(AccessMode::kAdministrate));
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, bob_,
                AccessMode::kRead | AccessMode::kAdministrate});
  EXPECT_TRUE(monitor_->SetNodeAcl(Bottom(bob_), obj_, acl).ok());
}

TEST_F(ReferenceMonitorTest, AddAclEntryCopiesInheritedAclDown) {
  GrantOn(dir_, staff_, AccessModeSet(AccessMode::kRead));
  // obj inherits /d's ACL; adding an entry must preserve the inherited grant.
  ASSERT_TRUE(monitor_->AddAclEntry(Bottom(alice_), obj_,
                                    {AclEntryType::kAllow, bob_,
                                     AccessModeSet(AccessMode::kWrite)})
                  .ok());
  EXPECT_TRUE(monitor_->Check(Bottom(alice_), obj_, AccessMode::kRead).allowed);
  EXPECT_TRUE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kWrite).allowed);
  // The parent's own ACL is untouched.
  EXPECT_FALSE(monitor_->Check(Bottom(bob_), dir_, AccessMode::kWrite).allowed);
}

TEST_F(ReferenceMonitorTest, SetNodeLabelRules) {
  SecurityClass high = Cls(1, {0});
  // Non-owner: denied outright.
  EXPECT_EQ(monitor_->SetNodeLabel(Bottom(bob_), obj_, high).code(),
            StatusCode::kPermissionDenied);
  // A subject classifies at exactly its own class: a ⊥ owner cannot assign
  // a high label…
  EXPECT_EQ(monitor_->SetNodeLabel(Bottom(alice_), obj_, high).code(),
            StatusCode::kPermissionDenied);
  // …but an owner logged in at `high` upgrades the ⊥ object to high.
  ASSERT_TRUE(monitor_->SetNodeLabel(SubjectFor(alice_, high), obj_, high).ok());
  // Once high, a ⊥ owner no longer even sees the label it would replace.
  EXPECT_EQ(monitor_->SetNodeLabel(Bottom(alice_), obj_, Cls(0)).code(),
            StatusCode::kPermissionDenied);
  // Downgrading below one's own class is declassification: denied even for
  // the owner at `high`.
  EXPECT_EQ(monitor_->SetNodeLabel(SubjectFor(alice_, high), obj_, Cls(0)).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ReferenceMonitorTest, RemoveAclEntriesFor) {
  GrantOn(obj_, bob_, AccessModeSet(AccessMode::kRead));
  EXPECT_TRUE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
  // A stranger may not edit.
  EXPECT_EQ(monitor_->RemoveAclEntriesFor(Bottom(bob_), obj_, bob_).code(),
            StatusCode::kPermissionDenied);
  // The owner removes bob's entries; access reverts to denied.
  ASSERT_TRUE(monitor_->RemoveAclEntriesFor(Bottom(alice_), obj_, bob_).ok());
  EXPECT_FALSE(monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead).allowed);
  // Removing from a node that only inherits is a harmless no-op.
  ASSERT_TRUE(monitor_->RemoveAclEntriesFor(Bottom(alice_), sub_, bob_).ok());
}

TEST_F(ReferenceMonitorTest, SecurityOfficerBypassesLabelRules) {
  monitor_->set_security_officer(bob_);
  EXPECT_TRUE(monitor_->SetNodeLabel(Bottom(bob_), obj_, Cls(1, {0, 1})).ok());
  const SecurityClass& label = monitor_->EffectiveLabel(obj_);
  EXPECT_EQ(label.level(), 1);
}

TEST_F(ReferenceMonitorTest, SetOwner) {
  EXPECT_EQ(monitor_->SetOwner(Bottom(bob_), obj_, bob_).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(monitor_->SetOwner(Bottom(alice_), obj_, bob_).ok());
  EXPECT_EQ(ns_.Get(obj_)->owner, bob_);
  EXPECT_TRUE(monitor_->HasAdministrate(Bottom(bob_), obj_));
  EXPECT_EQ(monitor_->SetOwner(Bottom(bob_), obj_, PrincipalId{999}).code(),
            StatusCode::kNotFound);
}

TEST_F(ReferenceMonitorTest, EffectiveAclAndLabelResolution) {
  EXPECT_EQ(monitor_->EffectiveAcl(obj_), nullptr);
  GrantOn(dir_, bob_, AccessModeSet(AccessMode::kRead));
  AclStore::AclRef ref = kNoRef;
  const Acl* acl = monitor_->EffectiveAcl(obj_, &ref);
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(ref, ns_.Get(dir_)->acl_ref);
  // Root label is ⊥ by construction.
  EXPECT_TRUE(monitor_->EffectiveLabel(obj_) == labels_.Bottom());
}

TEST_F(ReferenceMonitorTest, AuditRecordsDenialsWithReason) {
  monitor_->set_audit_policy(AuditPolicy::kDenialsOnly);
  monitor_->audit().Clear();
  (void)monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead);
  ASSERT_EQ(monitor_->audit().records().size(), 1u);
  // records() returns a snapshot by value; copy the record out of it.
  const AuditRecord r = monitor_->audit().records().front();
  EXPECT_FALSE(r.allowed);
  EXPECT_EQ(r.reason, DenyReason::kDacNoGrant);
  EXPECT_EQ(r.path, "/d/sub/obj");
  EXPECT_EQ(r.principal, bob_);
}

TEST_F(ReferenceMonitorTest, AuditPolicyAllRecordsAllows) {
  monitor_->set_audit_policy(AuditPolicy::kAll);
  monitor_->audit().Clear();
  GrantOn(obj_, bob_, AccessModeSet(AccessMode::kRead));
  (void)monitor_->Check(Bottom(bob_), obj_, AccessMode::kRead);
  ASSERT_GE(monitor_->audit().records().size(), 1u);
  EXPECT_TRUE(monitor_->audit().records().back().allowed);
}

TEST_F(ReferenceMonitorTest, CacheSpeedsRepeatsAndStaysCorrect) {
  GrantOn(obj_, bob_, AccessModeSet(AccessMode::kRead));
  Subject bob = Bottom(bob_);
  uint64_t h0 = monitor_->cache().hits();
  EXPECT_TRUE(monitor_->Check(bob, obj_, AccessMode::kRead).allowed);
  EXPECT_TRUE(monitor_->Check(bob, obj_, AccessMode::kRead).allowed);
  EXPECT_GT(monitor_->cache().hits(), h0);
  // Policy change invalidates: revoke and observe the new decision.
  (void)acls_.Replace(ns_.Get(obj_)->acl_ref, Acl());
  EXPECT_FALSE(monitor_->Check(bob, obj_, AccessMode::kRead).allowed);
}

TEST_F(ReferenceMonitorTest, CachedAndUncachedAgree) {
  GrantOn(obj_, bob_, AccessMode::kRead | AccessMode::kWrite);
  (void)ns_.SetLabelRef(obj_, labels_.StoreLabel(Cls(1, {0})));
  MonitorOptions uncached;
  uncached.cache_enabled = false;
  ReferenceMonitor plain(&ns_, &acls_, &principals_, &labels_, uncached);
  std::vector<Subject> subjects = {Bottom(bob_), SubjectFor(bob_, Cls(1, {0})),
                                   Bottom(alice_), SubjectFor(alice_, Cls(1, {0, 1}))};
  for (Subject& s : subjects) {
    for (int m = 0; m < kAccessModeCount; ++m) {
      AccessModeSet modes(static_cast<AccessMode>(1u << m));
      // Run the cached monitor twice so the second answer comes from cache.
      Decision first = monitor_->Check(s, obj_, modes);
      Decision second = monitor_->Check(s, obj_, modes);
      Decision reference = plain.Check(s, obj_, modes);
      EXPECT_EQ(first.allowed, reference.allowed);
      EXPECT_EQ(second.allowed, reference.allowed);
      EXPECT_EQ(second.reason, reference.reason);
    }
  }
}

TEST_F(ReferenceMonitorTest, ExplainNamesTheDecidingFactors) {
  GrantOn(dir_, staff_, AccessModeSet(AccessMode::kRead));
  (void)ns_.SetLabelRef(obj_, labels_.StoreLabel(Cls(1, {0})));

  // DAC grants alice (via staff) but MAC blocks the ⊥ subject.
  std::string text = monitor_->Explain(Bottom(alice_), obj_, AccessMode::kRead);
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("/d/sub/obj"), std::string::npos);
  EXPECT_NE(text.find("inherited"), std::string::npos);  // ACL came from /d
  EXPECT_NE(text.find("matches this subject"), std::string::npos);
  EXPECT_NE(text.find("-> granted"), std::string::npos);
  EXPECT_NE(text.find("violates flow"), std::string::npos);

  // Bob has no grant anywhere: effective modes empty.
  std::string bob_text = monitor_->Explain(Bottom(bob_), obj_, AccessMode::kRead);
  EXPECT_NE(bob_text.find("NOT granted"), std::string::npos);

  // An allowed case reports satisfied flow.
  std::string ok_text =
      monitor_->Explain(SubjectFor(alice_, Cls(1, {0})), obj_, AccessMode::kRead);
  EXPECT_NE(ok_text.find("flow rules satisfied"), std::string::npos);

  // Dead node.
  EXPECT_NE(monitor_->Explain(Bottom(alice_), NodeId{9999}, AccessMode::kRead)
                .find("does not exist"),
            std::string::npos);
}

TEST_F(ReferenceMonitorTest, DeadNodeIsNotFound) {
  NodeId ghost = *ns_.BindPath("/d/ghost", NodeKind::kFile, alice_);
  ASSERT_TRUE(ns_.Unbind(ghost).ok());
  Decision d = monitor_->Check(Bottom(alice_), ghost, AccessMode::kRead);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, DenyReason::kNotFound);
}

}  // namespace
}  // namespace xsec
