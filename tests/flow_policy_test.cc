#include "src/mac/flow_policy.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace xsec {
namespace {

SecurityClass Cls(TrustLevel level, std::initializer_list<size_t> cats) {
  CategorySet set(8);
  for (size_t c : cats) {
    set.Set(c);
  }
  return SecurityClass(level, std::move(set));
}

class FlowPolicyTest : public ::testing::Test {
 protected:
  FlowPolicy strict_{FlowPolicyOptions{.write_up_requires_append = true}};
  FlowPolicy lax_{FlowPolicyOptions{.write_up_requires_append = false}};
  SecurityClass low_ = Cls(0, {});
  SecurityClass mid1_ = Cls(1, {1});
  SecurityClass mid2_ = Cls(1, {2});
  SecurityClass high_ = Cls(2, {1, 2});
};

TEST_F(FlowPolicyTest, ReadRequiresSubjectDominates) {
  EXPECT_TRUE(strict_.ModeAllowed(high_, mid1_, AccessMode::kRead));   // read down
  EXPECT_TRUE(strict_.ModeAllowed(mid1_, mid1_, AccessMode::kRead));   // read level
  EXPECT_FALSE(strict_.ModeAllowed(mid1_, high_, AccessMode::kRead));  // read up
  EXPECT_FALSE(strict_.ModeAllowed(mid1_, mid2_, AccessMode::kRead));  // incomparable
}

TEST_F(FlowPolicyTest, ListAndExecuteFollowReadRule) {
  for (AccessMode mode : {AccessMode::kList, AccessMode::kExecute}) {
    EXPECT_TRUE(strict_.ModeAllowed(high_, low_, mode));
    EXPECT_FALSE(strict_.ModeAllowed(low_, high_, mode));
  }
}

TEST_F(FlowPolicyTest, AppendFollowsStarProperty) {
  EXPECT_TRUE(strict_.ModeAllowed(low_, high_, AccessMode::kWriteAppend));   // append up
  EXPECT_TRUE(strict_.ModeAllowed(mid1_, mid1_, AccessMode::kWriteAppend));  // same level
  EXPECT_FALSE(strict_.ModeAllowed(high_, low_, AccessMode::kWriteAppend));  // append down
  EXPECT_FALSE(strict_.ModeAllowed(mid1_, mid2_, AccessMode::kWriteAppend));
}

TEST_F(FlowPolicyTest, ExtendFollowsReadRule) {
  // Extend follows the read rule so that handlers of different classes can
  // coexist on one interface (paper §2.2); flow control happens at dispatch.
  EXPECT_TRUE(strict_.ModeAllowed(high_, mid1_, AccessMode::kExtend));
  EXPECT_TRUE(strict_.ModeAllowed(mid1_, mid1_, AccessMode::kExtend));
  EXPECT_FALSE(strict_.ModeAllowed(low_, high_, AccessMode::kExtend));
  EXPECT_FALSE(strict_.ModeAllowed(mid1_, mid2_, AccessMode::kExtend));
}

TEST_F(FlowPolicyTest, StrictWriteRequiresEquality) {
  // The paper's parenthetical: blind overwrites up are forbidden; only
  // write-append flows up.
  EXPECT_FALSE(strict_.ModeAllowed(low_, high_, AccessMode::kWrite));
  EXPECT_TRUE(strict_.ModeAllowed(mid1_, mid1_, AccessMode::kWrite));
  EXPECT_FALSE(strict_.ModeAllowed(high_, low_, AccessMode::kWrite));  // write down never
  EXPECT_FALSE(strict_.ModeAllowed(low_, high_, AccessMode::kDelete));
  EXPECT_TRUE(strict_.ModeAllowed(mid1_, mid1_, AccessMode::kDelete));
}

TEST_F(FlowPolicyTest, LaxWriteAllowsWriteUp) {
  EXPECT_TRUE(lax_.ModeAllowed(low_, high_, AccessMode::kWrite));
  EXPECT_FALSE(lax_.ModeAllowed(high_, low_, AccessMode::kWrite));
  EXPECT_TRUE(lax_.ModeAllowed(low_, high_, AccessMode::kDelete));
}

TEST_F(FlowPolicyTest, AdministrateRequiresEquality) {
  EXPECT_TRUE(strict_.ModeAllowed(mid1_, mid1_, AccessMode::kAdministrate));
  EXPECT_FALSE(strict_.ModeAllowed(high_, mid1_, AccessMode::kAdministrate));
  EXPECT_FALSE(strict_.ModeAllowed(mid1_, high_, AccessMode::kAdministrate));
}

TEST_F(FlowPolicyTest, CheckReportsFirstViolatingMode) {
  FlowVerdict v = strict_.Check(low_, high_, AccessMode::kRead | AccessMode::kWriteAppend);
  EXPECT_FALSE(v.allowed);
  ASSERT_TRUE(v.violating_mode.has_value());
  EXPECT_EQ(*v.violating_mode, AccessMode::kRead);
  EXPECT_EQ(v.ToString(), "flow-violation(read)");
}

TEST_F(FlowPolicyTest, CheckAllowsCompatibleSets) {
  FlowVerdict v = strict_.Check(mid1_, mid1_,
                                AccessMode::kRead | AccessMode::kWrite | AccessMode::kList);
  EXPECT_TRUE(v.allowed);
  EXPECT_FALSE(v.violating_mode.has_value());
  EXPECT_EQ(v.ToString(), "flow-ok");
  EXPECT_TRUE(strict_.Check(mid1_, mid1_, AccessModeSet::None()).allowed);
}

// Property: no mode ever permits an information flow outside the lattice.
// Observation flows (read/list/execute) need S ⊒ O; modification flows need
// O ⊒ S; both strict and lax policies must satisfy this.
class FlowSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowSoundnessTest, AllDecisionsRespectLattice) {
  Rng rng(GetParam());
  FlowPolicy policies[] = {FlowPolicy{FlowPolicyOptions{true}},
                           FlowPolicy{FlowPolicyOptions{false}}};
  for (int i = 0; i < 200; ++i) {
    CategorySet cs(5), co(5);
    for (size_t c = 0; c < 5; ++c) {
      if (rng.NextBool(1, 2)) {
        cs.Set(c);
      }
      if (rng.NextBool(1, 2)) {
        co.Set(c);
      }
    }
    SecurityClass subject(static_cast<TrustLevel>(rng.NextBelow(3)), cs);
    SecurityClass object(static_cast<TrustLevel>(rng.NextBelow(3)), co);
    for (const FlowPolicy& policy : policies) {
      for (AccessMode mode : {AccessMode::kRead, AccessMode::kList,
                              AccessMode::kExecute, AccessMode::kExtend}) {
        if (policy.ModeAllowed(subject, object, mode)) {
          EXPECT_TRUE(subject.Dominates(object));
        }
      }
      for (AccessMode mode :
           {AccessMode::kWrite, AccessMode::kWriteAppend, AccessMode::kDelete}) {
        if (policy.ModeAllowed(subject, object, mode)) {
          EXPECT_TRUE(object.Dominates(subject));
        }
      }
      if (policy.ModeAllowed(subject, object, AccessMode::kAdministrate)) {
        EXPECT_TRUE(subject == object);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowSoundnessTest, ::testing::Range(0, 10));

// FlowAllowedMask is the truth table both the interpreted FlowPolicy and the
// compiled per-class-pair masks evaluate; pin all four dominance-bit
// combinations for both option settings, with special attention to the
// S = O double-dominance column (administrate, strict write/delete).
TEST(FlowAllowedMaskTest, TruthTableIsExhaustive) {
  for (bool strict : {true, false}) {
    FlowPolicyOptions options;
    options.write_up_requires_append = strict;
    const AccessModeSet observe =
        AccessMode::kRead | AccessMode::kList | AccessMode::kExecute | AccessMode::kExtend;

    // Incomparable: nothing flows.
    EXPECT_EQ(FlowAllowedMask(false, false, options).bits(), 0u);
    // S strictly above O: observation only.
    EXPECT_EQ(FlowAllowedMask(true, false, options), observe);
    // O strictly above S: write-up; destructive writes only when permissive.
    AccessModeSet up(AccessMode::kWriteAppend);
    if (!strict) {
      up |= AccessMode::kWrite | AccessMode::kDelete;
    }
    EXPECT_EQ(FlowAllowedMask(false, true, options), up);
    // S = O: everything, in both settings.
    EXPECT_EQ(FlowAllowedMask(true, true, options), AccessModeSet::All());
  }
}

TEST(FlowAllowedMaskTest, EqualClassesGetTheFullMask) {
  // The historical hazard: S = O reaches Check as two separate Dominates
  // calls; equal classes (including empty-category and capacity-skewed
  // pairs) must land in the S = O column, never the incomparable one.
  FlowPolicy flow{FlowPolicyOptions{true}};
  CategorySet a(2), b(40);
  a.Set(1);
  b.Set(1);
  SecurityClass s(1, std::move(a)), o(1, std::move(b));
  ASSERT_EQ(s, o);
  for (size_t bit = 0; bit < kAccessModeCount; ++bit) {
    EXPECT_TRUE(flow.ModeAllowed(s, o, static_cast<AccessMode>(uint32_t{1} << bit)));
  }
  EXPECT_TRUE(flow.Check(s, o, AccessModeSet::All()).allowed);
}

}  // namespace
}  // namespace xsec
