#include <gtest/gtest.h>

#include "src/baselines/afs_model.h"
#include "src/baselines/inferno_model.h"
#include "src/baselines/java_sandbox_model.h"
#include "src/baselines/nt_model.h"
#include "src/baselines/spin_domain_model.h"
#include "src/baselines/unix_model.h"
#include "src/baselines/vino_model.h"
#include "src/baselines/xsec_model.h"

namespace xsec {
namespace {

SecurityClass Cls(TrustLevel level, std::initializer_list<size_t> cats = {}) {
  CategorySet set(4);
  for (size_t c : cats) {
    set.Set(c);
  }
  return SecurityClass(level, std::move(set));
}

class BaselineModelTest : public ::testing::Test {
 protected:
  BaselineModelTest() {
    owner_ = {"owner", 1, {10, 99}, Origin::kLocal, Cls(1)};
    member_ = {"member", 2, {10, 99}, Origin::kOrganization, Cls(1)};
    other_ = {"other", 3, {99}, Origin::kRemote, Cls(0)};
    world_.subjects = {owner_, member_, other_};

    file_.path = "/fs/dir/file";
    file_.owner_uid = 1;
    file_.owner_gid = 10;
    file_.unix_mode = 0640;
    file_.acl = {{true, false, 1, AccessMode::kRead | AccessMode::kWrite},
                 {true, true, 10, AccessModeSet(AccessMode::kRead)}};
    file_.security_class = Cls(1);

    dir_.path = "/fs/dir";
    dir_.category = ObjectCategory::kDirectory;
    dir_.owner_uid = 1;
    dir_.acl = {{true, true, 99, AccessModeSet(AccessMode::kRead)}};
    world_.objects = {dir_, file_};
  }

  BaselineWorld world_;
  BaselineSubject owner_, member_, other_;
  BaselineObject file_, dir_;
};

TEST_F(BaselineModelTest, UnixOwnerGroupOther) {
  UnixModel unix_model;
  EXPECT_TRUE(unix_model.Allows(world_, owner_, file_, AccessMode::kRead));
  EXPECT_TRUE(unix_model.Allows(world_, owner_, file_, AccessMode::kWrite));
  EXPECT_TRUE(unix_model.Allows(world_, member_, file_, AccessMode::kRead));   // group r
  EXPECT_FALSE(unix_model.Allows(world_, member_, file_, AccessMode::kWrite));
  EXPECT_FALSE(unix_model.Allows(world_, other_, file_, AccessMode::kRead));   // other ---
  // Administrate is owner-only (chmod semantics).
  EXPECT_TRUE(unix_model.Allows(world_, owner_, file_, AccessMode::kAdministrate));
  EXPECT_FALSE(unix_model.Allows(world_, member_, file_, AccessMode::kAdministrate));
  // Append collapses to write; extend collapses to x.
  EXPECT_TRUE(unix_model.Allows(world_, owner_, file_, AccessMode::kWriteAppend));
  EXPECT_FALSE(unix_model.Allows(world_, owner_, file_, AccessMode::kExtend));  // no x bit
}

TEST_F(BaselineModelTest, UnixExecuteBit) {
  UnixModel unix_model;
  BaselineObject prog = file_;
  prog.unix_mode = 0754;
  EXPECT_TRUE(unix_model.Allows(world_, owner_, prog, AccessMode::kExecute));
  EXPECT_TRUE(unix_model.Allows(world_, member_, prog, AccessMode::kExecute));
  EXPECT_FALSE(unix_model.Allows(world_, other_, prog, AccessMode::kExecute));
  // Unix cannot separate execute from extend: both map to x.
  EXPECT_EQ(unix_model.Allows(world_, member_, prog, AccessMode::kExecute),
            unix_model.Allows(world_, member_, prog, AccessMode::kExtend));
}

TEST_F(BaselineModelTest, AfsUsesParentDirectoryAcl) {
  AfsModel afs;
  // The file's own ACL denies `other` read, but /fs/dir's ACL grants the
  // everyone group read — and AFS governs files by the directory's ACL.
  EXPECT_TRUE(afs.Allows(world_, other_, file_, AccessMode::kRead));
  // Directories are governed by their own ACL.
  EXPECT_TRUE(afs.Allows(world_, other_, dir_, AccessMode::kRead));
  EXPECT_FALSE(afs.Allows(world_, other_, dir_, AccessMode::kWrite));
}

TEST_F(BaselineModelTest, AfsNegativeRightsWork) {
  AfsModel afs;
  BaselineWorld w = world_;
  w.objects[0].acl.push_back({false, false, 3, AccessModeSet(AccessMode::kRead)});
  EXPECT_FALSE(afs.Allows(w, other_, w.objects[1], AccessMode::kRead));
  EXPECT_TRUE(afs.Allows(w, member_, w.objects[1], AccessMode::kRead));
}

TEST_F(BaselineModelTest, AfsFallsBackToOwnAclWithoutParent) {
  AfsModel afs;
  BaselineWorld w;
  w.subjects = world_.subjects;
  BaselineObject orphan = file_;
  orphan.path = "/lonely/file";
  w.objects = {orphan};
  EXPECT_TRUE(afs.Allows(w, owner_, orphan, AccessMode::kRead));
  EXPECT_FALSE(afs.Allows(w, other_, orphan, AccessMode::kRead));
}

TEST_F(BaselineModelTest, NtDenyAcesWinRegardlessOfOrder) {
  NtModel nt;
  BaselineObject obj = file_;
  // Allow listed before deny: NT canonicalization still applies the deny.
  obj.acl = {{true, true, 10, AccessModeSet(AccessMode::kRead)},
             {false, false, 2, AccessModeSet(AccessMode::kRead)}};
  EXPECT_FALSE(nt.Allows(world_, member_, obj, AccessMode::kRead));
  EXPECT_TRUE(nt.Allows(world_, owner_, obj, AccessMode::kRead));
}

TEST_F(BaselineModelTest, NtHasAppendButNotExtend) {
  NtModel nt;
  BaselineObject obj = file_;
  obj.acl = {{true, false, 2, AccessModeSet(AccessMode::kWriteAppend)}};
  EXPECT_TRUE(nt.Allows(world_, member_, obj, AccessMode::kWriteAppend));
  EXPECT_FALSE(nt.Allows(world_, member_, obj, AccessMode::kWrite));
  // extend collapses to execute: granting execute grants extend too.
  obj.acl = {{true, false, 2, AccessModeSet(AccessMode::kExecute)}};
  EXPECT_TRUE(nt.Allows(world_, member_, obj, AccessMode::kExecute));
  EXPECT_TRUE(nt.Allows(world_, member_, obj, AccessMode::kExtend));
}

TEST_F(BaselineModelTest, NtOwnerHoldsWriteDac) {
  NtModel nt;
  BaselineObject obj = file_;
  obj.acl.clear();
  EXPECT_TRUE(nt.Allows(world_, owner_, obj, AccessMode::kAdministrate));
  EXPECT_FALSE(nt.Allows(world_, member_, obj, AccessMode::kAdministrate));
}

TEST_F(BaselineModelTest, JavaSandboxTrustIsBinary) {
  JavaSandboxModel java;
  // Local code: everything goes, even other subjects' files.
  EXPECT_TRUE(java.Allows(world_, owner_, file_, AccessMode::kWrite));
  // Remote code: no file access at all…
  EXPECT_FALSE(java.Allows(world_, other_, file_, AccessMode::kRead));
  EXPECT_FALSE(java.Allows(world_, other_, dir_, AccessMode::kList));
  // …but full access to in-sandbox objects such as threads (ThreadMurder).
  BaselineObject thread;
  thread.path = "/obj/threads/t1";
  thread.category = ObjectCategory::kThread;
  thread.owner_uid = 1;
  EXPECT_TRUE(java.Allows(world_, other_, thread, AccessMode::kDelete));
}

TEST_F(BaselineModelTest, JavaSandboxBrokenProngFailsOpen) {
  JavaSandboxModel java;
  BaselineWorld w = world_;
  ASSERT_FALSE(java.Allows(w, other_, file_, AccessMode::kRead));
  w.java_security_manager_ok = false;
  EXPECT_TRUE(java.Allows(w, other_, file_, AccessMode::kRead));
  w.java_security_manager_ok = true;
  w.java_classloader_ok = false;
  EXPECT_TRUE(java.Allows(w, other_, file_, AccessMode::kRead));
}

TEST_F(BaselineModelTest, SpinDomainsAreAllOrNothing) {
  SpinDomainModel spin;
  BaselineWorld w = world_;
  BaselineObject iface;
  iface.path = "/svc/fs/read";
  iface.category = ObjectCategory::kServiceProcedure;
  iface.spin_domain = "fs";
  w.objects.push_back(iface);
  w.spin_links["member"] = {"fs"};

  EXPECT_TRUE(spin.Allows(w, member_, iface, AccessMode::kExecute));
  // Linked means extend too — no separation.
  EXPECT_TRUE(spin.Allows(w, member_, iface, AccessMode::kExtend));
  // Unlinked subjects get nothing.
  EXPECT_FALSE(spin.Allows(w, other_, iface, AccessMode::kExecute));
  // Data objects (no domain) are reachable by anyone with any link.
  EXPECT_TRUE(spin.Allows(w, member_, w.objects[1], AccessMode::kRead));
}

TEST_F(BaselineModelTest, XsecDacFullModeVocabulary) {
  XsecDacModel dac;
  BaselineObject iface;
  iface.path = "/svc/vfs/types/logfs";
  iface.category = ObjectCategory::kServiceInterface;
  iface.owner_uid = 1;
  iface.acl = {{true, false, 2, AccessModeSet(AccessMode::kExtend)}};
  // Extend without execute is expressible.
  EXPECT_TRUE(dac.Allows(world_, member_, iface, AccessMode::kExtend));
  EXPECT_FALSE(dac.Allows(world_, member_, iface, AccessMode::kExecute));
  // Deny-overrides.
  iface.acl.push_back({false, false, 2, AccessModeSet(AccessMode::kExtend)});
  EXPECT_FALSE(dac.Allows(world_, member_, iface, AccessMode::kExtend));
  // Owner bootstrap for administrate.
  EXPECT_TRUE(dac.Allows(world_, owner_, iface, AccessMode::kAdministrate));
}

TEST_F(BaselineModelTest, XsecFullAddsMandatoryLayer) {
  XsecFullModel full;
  BaselineObject secret = file_;
  secret.acl = {{true, true, 99, AccessModeSet(AccessMode::kRead)}};  // world-readable DAC
  secret.security_class = Cls(1, {1});
  BaselineSubject cleared = member_;
  cleared.security_class = Cls(1, {1});
  EXPECT_TRUE(full.Allows(world_, cleared, secret, AccessMode::kRead));
  // `other` is below the label: MAC forbids despite the DAC grant.
  EXPECT_FALSE(full.Allows(world_, other_, secret, AccessMode::kRead));
  // And DAC still binds: no grant, no access, even for dominating subjects.
  secret.acl.clear();
  EXPECT_FALSE(full.Allows(world_, cleared, secret, AccessMode::kRead));
}

TEST_F(BaselineModelTest, VinoPrivilegeAndSensitivity) {
  VinoModel vino;
  BaselineSubject privileged = owner_;
  privileged.vino_privileged = true;
  BaselineSubject regular = member_;

  BaselineObject open_obj = file_;
  open_obj.vino_sensitive = false;
  BaselineObject sensitive = file_;
  sensitive.vino_sensitive = true;  // owner_uid = 1

  // Privileged: everything.
  EXPECT_TRUE(vino.Allows(world_, privileged, sensitive, AccessMode::kWrite));
  // Regular on non-sensitive data: everything (no finer control exists).
  EXPECT_TRUE(vino.Allows(world_, regular, open_obj, AccessMode::kWrite));
  // Regular on sensitive data: ownership only.
  EXPECT_FALSE(vino.Allows(world_, regular, sensitive, AccessMode::kRead));
  BaselineObject own_sensitive = sensitive;
  own_sensitive.owner_uid = regular.uid;
  EXPECT_TRUE(vino.Allows(world_, regular, own_sensitive, AccessMode::kRead));
  // Mode-blind: the dynamic check cannot tell read from extend.
  EXPECT_EQ(vino.Allows(world_, regular, sensitive, AccessMode::kRead),
            vino.Allows(world_, regular, sensitive, AccessMode::kExtend));
}

TEST_F(BaselineModelTest, InfernoAuthenticationIsNotAuthorization) {
  InfernoModel inferno;
  BaselineSubject authenticated = other_;  // remote, but mutually authenticated
  authenticated.inferno_authenticated = true;
  BaselineSubject spoofed = other_;
  spoofed.inferno_authenticated = false;
  // Knowing who someone is decides nothing about what they may do:
  EXPECT_TRUE(inferno.Allows(world_, authenticated, file_, AccessMode::kWrite));
  EXPECT_TRUE(inferno.Allows(world_, authenticated, file_, AccessMode::kAdministrate));
  // Only a failed handshake blocks anything.
  EXPECT_FALSE(inferno.Allows(world_, spoofed, file_, AccessMode::kRead));
}

TEST_F(BaselineModelTest, NullModelAllowsEverything) {
  NullModel none;
  EXPECT_TRUE(none.Allows(world_, other_, file_, AccessMode::kWrite));
  EXPECT_TRUE(none.Allows(world_, other_, dir_, AccessMode::kAdministrate));
}

}  // namespace
}  // namespace xsec
