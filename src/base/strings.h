// Small string helpers shared across modules (no dependency on absl).

#ifndef XSEC_SRC_BASE_STRINGS_H_
#define XSEC_SRC_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xsec {

// Splits on a single-character delimiter. Empty pieces are kept unless
// `skip_empty` is true; splitting "" yields one empty piece (or none).
std::vector<std::string> StrSplit(std::string_view text, char delim, bool skip_empty = false);

// Joins pieces with a separator.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Formats like printf into a std::string. Used for audit/diagnostic text.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Renders `value` with exactly `precision` fractional digits (clamped to
// [0, 9]) and a '.' radix point regardless of the process locale — printf's
// %f honors the locale's decimal separator, which makes golden tests and
// machine-parsed gauges flaky. Values too large for 64-bit fixed-point fall
// back to "%.0f" (radix-free, so still locale-independent).
std::string FormatFixed(double value, int precision);

// Escapes `text` for inclusion inside a double-quoted JSON string:
// backslash, quote, and control characters (as \uXXXX). Does not add the
// surrounding quotes.
std::string JsonEscape(std::string_view text);

}  // namespace xsec

#endif  // XSEC_SRC_BASE_STRINGS_H_
