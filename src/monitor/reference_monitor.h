// The reference monitor: the paper's "central facility to provide naming and
// protection services for the entire system" (§3).
//
// Every access in xsec — calling a procedure, extending an interface, reading
// a file, listing a directory, killing a thread — funnels through
// ReferenceMonitor::Check. The decision procedure is:
//
//   1. resolve the name (optionally checking `list` on every ancestor, so
//      visibility of each level of the hierarchy is itself protected, §2.3);
//   2. DAC: evaluate the node's *effective ACL* (its own, or the nearest
//      ancestor's — ACL inheritance gives AFS-style directory defaults while
//      still allowing per-leaf ACLs, which AFS cannot do, §1.2);
//   3. MAC: check the flow rules between the subject's security class and the
//      node's *effective label* (own or nearest ancestor's; the root is
//      labeled ⊥ at construction so every node has a label). MAC is checked
//      even when DAC granted: "users can not circumvent the basic security of
//      the system by exercising discretionary access control" (§2.2);
//   4. record the decision in the audit log.
//
// Decisions are cached (src/monitor/decision_cache.h); any policy mutation
// invalidates the cache via generation stamps.
//
// Thread safety: Check/CheckPath/CheckFloating and the administrative
// operations may be called concurrently from any number of threads. The
// check path reads each store through a snapshot or shared-ownership handle
// (NameSpace::SnapshotSecurity, PrincipalRegistry::Closure,
// AclStore::Evaluate, LabelAuthority::LabelHandle) and reads the validity
// stamps *before* evaluating, so a cached decision can be spuriously stale
// but never wrongly fresh. Explain() and EffectiveAcl() are introspection
// helpers for single-threaded use. set_security_officer() is setup-time.

#ifndef XSEC_SRC_MONITOR_REFERENCE_MONITOR_H_
#define XSEC_SRC_MONITOR_REFERENCE_MONITOR_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/dac/acl.h"
#include "src/mac/flow_policy.h"
#include "src/mac/label_authority.h"
#include "src/monitor/audit.h"
#include "src/monitor/compiled_policy.h"
#include "src/monitor/decision_cache.h"
#include "src/monitor/monitor_stats.h"
#include "src/monitor/subject.h"
#include "src/naming/namespace.h"
#include "src/principal/registry.h"

namespace xsec {

struct Decision {
  bool allowed = false;
  DenyReason reason = DenyReason::kNone;
  std::string detail;

  // Converts to a Status for callers that propagate errors.
  Status ToStatus() const;
};

struct MonitorOptions {
  bool dac_enabled = true;
  bool mac_enabled = true;
  // Check `list` on every ancestor during resolution.
  bool check_traversal = true;
  bool cache_enabled = true;
  // Maintain MonitorStats (per-reason/per-mode counters, sampled latency
  // histogram). Relaxed atomics only; bench_f1_mediation pins the overhead.
  bool stats_enabled = true;
  FlowPolicyOptions flow;
  AuditPolicy audit_policy = AuditPolicy::kDenialsOnly;
  // Fail-closed audit (MODEL.md §12): when set and the installed resilient
  // sink's circuit is open, Check turns would-be allows into
  // kAuditUnavailable denials instead of proceeding unaudited. Off by
  // default (fail-open: unaudited allows proceed and are counted).
  bool audit_required = false;
  // Consult compiled decision tables (src/monitor/compiled_policy.h) on
  // cache misses when their stamp vector matches the stores. Tables are
  // built lazily by a background thread (RequestRecompile) or synchronously
  // (RecompileNow); until one is installed every miss takes the interpreted
  // path, so this flag never changes semantics, only the miss cost.
  bool compiled_enabled = true;
  // Read the *target node's shard-local* stamp set (docs/MODEL.md §15)
  // instead of the legacy aggregate stamps when validating cached and
  // compiled decisions, so a mutation confined to one subtree invalidates
  // only that shard. Disabling reverts to the aggregate domain everywhere —
  // semantics are identical either way (the differential fuzzer runs the
  // two configurations as an equivalence check), only invalidation breadth
  // changes.
  bool shard_stamps = true;
  size_t compiled_max_classes = 192;
  size_t compiled_max_dac_cells = size_t{1} << 22;
  size_t cache_slots = 8192;
  size_t audit_capacity = 4096;
};

class ReferenceMonitor {
 public:
  // The monitor borrows all four stores; they must outlive it.
  ReferenceMonitor(NameSpace* name_space, AclStore* acls, PrincipalRegistry* principals,
                   LabelAuthority* labels, MonitorOptions options = {});

  // Joins the background recompile thread. The stores must still be alive
  // (they outlive the monitor by the constructor's contract).
  ~ReferenceMonitor();

  // -- Access checks ---------------------------------------------------------

  // Checks `modes` on an already-resolved node (no traversal checks).
  Decision Check(const Subject& subject, NodeId node, AccessModeSet modes);

  // -- Batched checks (the mediation-ring worker path, MODEL.md §14) ---------

  struct BatchCheckRequest {
    Subject subject;
    NodeId node;
    AccessModeSet modes;
  };

  // Decides `n` requests in one pass, writing out[i] for requests[i]. Each
  // decision is semantically identical to Check() on the same request; what
  // the batch amortizes is the bookkeeping around the decisions:
  //   - the cache stamp vector is read once per batch (a policy mutation
  //     mid-batch makes later inserts spuriously stale, never wrongly
  //     fresh — the same one-sided race Check() already tolerates);
  //   - MonitorStats lands as one striped-counter flush per batch
  //     (RecordBatch); batched checks are not latency-sampled;
  //   - retained audit records are sequence-stamped in one ring-mutex
  //     critical section per run of consecutive retained records
  //     (AuditLog::RecordBatch), and discarded ones in two fetch_adds.
  // The `audit_required` fail-closed probe runs PER REQUEST, after that
  // request's cache step, and pending audit records are flushed before each
  // probe — so a sink trip caused by an earlier record in this very batch
  // denies every subsequent would-be allow, and the transient denial is
  // never cached (satellite regression: RingFaultTest.MidBatchSinkTrip...).
  void CheckBatch(const BatchCheckRequest* requests, size_t n, Decision* out);

  // Resolves `path` and checks; on success *resolved (if non-null) is set.
  Decision CheckPath(const Subject& subject, std::string_view path, AccessModeSet modes,
                     NodeId* resolved = nullptr);

  // High-water-mark variant (Denning's floating labels): like Check, but on
  // a successful access containing an observation mode (read/list/execute),
  // the subject's class is raised to the join of its current class and the
  // object's label. The subject thereafter carries everything it has seen:
  // a later write to a lower object is denied by the ordinary ⋆-property, so
  // even *sequences* of individually legal accesses cannot relay data
  // downward through a subject. The paper's model uses fixed per-principal
  // classes; this is the natural extension its lattice supports.
  Decision CheckFloating(Subject* subject, NodeId node, AccessModeSet modes);

  // -- Policy administration -------------------------------------------------
  // All three require the subject to hold `administrate` on the node. The
  // node's owner implicitly holds administrate (the bootstrap rule: a fresh
  // node has no ACL of its own and someone must be able to give it one).

  Status SetNodeAcl(const Subject& subject, NodeId node, Acl acl);
  Status AddAclEntry(const Subject& subject, NodeId node, const AclEntry& entry);
  // Removes every entry (both polarities) naming `who` from the node's own
  // ACL. A no-op if the node only inherits an ACL.
  Status RemoveAclEntriesFor(const Subject& subject, NodeId node, PrincipalId who);

  // Non-officer relabeling additionally requires, under MAC, that the
  // subject dominates the node's current label (it must be cleared to see
  // what it relabels) and that the new label equal the subject's own class —
  // a subject classifies objects at exactly its level, so labels can be
  // bootstrapped upward from ⊥ but never laundered up or down past the
  // subject. The registered security officer bypasses the MAC conditions
  // (a trusted subject in the Bell-LaPadula sense).
  Status SetNodeLabel(const Subject& subject, NodeId node, const SecurityClass& label);

  Status SetOwner(const Subject& subject, NodeId node, PrincipalId new_owner);

  // The security officer may relabel arbitrarily (trusted subject in the
  // Bell-LaPadula sense). Unset by default.
  void set_security_officer(PrincipalId officer) { security_officer_ = officer; }
  PrincipalId security_officer() const { return security_officer_; }

  // -- Lockdown (supervision-driven graceful degradation) --------------------
  // While armed, would-be-allowed checks whose modes include `extend` are
  // flipped to kQuarantined denials; every other mode keeps its underlying
  // decision, so reads/invokes of healthy services stay live. Applied after
  // the cache (never cached), like the audit-availability override. Driven
  // by the extension supervisor's health state machine or an operator via
  // /svc/health; the monitor itself only enforces.
  void set_lockdown(bool on) { lockdown_.store(on, std::memory_order_relaxed); }
  bool lockdown() const { return lockdown_.load(std::memory_order_relaxed); }

  // -- Effective policy resolution (own or inherited) ------------------------

  // The ACL governing a node: its own, else the nearest ancestor's, else null
  // (no ACL anywhere => DAC denies everything except the owner's administrate).
  // Returns a borrowed pointer; for single-threaded introspection only.
  const Acl* EffectiveAcl(NodeId node, AclStore::AclRef* ref_out = nullptr) const;

  // The label governing a node, by value (safe against concurrent relabels).
  // The root always has one (⊥ by default).
  SecurityClass EffectiveLabel(NodeId node) const;

  // True iff the subject holds administrate on the node (ACL grant or owner).
  bool HasAdministrate(const Subject& subject, NodeId node) const;

  // -- Compiled decision tables ----------------------------------------------
  // See src/monitor/compiled_policy.h and docs/MODEL.md §13. The compiled
  // path is epoch-driven: tables carry the stamp vector they were built
  // against and are consulted only while it matches the stores; any policy
  // mutation silently diverts misses back to the interpreted path and a
  // background recompile catches the tables up. Nothing on a mutation path
  // ever blocks on compilation.

  // Builds and installs tables synchronously. Retries a few times if policy
  // mutations race the build; fails (and leaves any previous tables in
  // place) when a size cap is exceeded, the "monitor.recompile" failpoint
  // fires, or the stores never quiesce.
  Status RecompileNow();

  // Requests an asynchronous recompile; coalesces with pending requests and
  // returns immediately. Spawns the recompile thread on first use.
  void RequestRecompile();

  // Called by policy deserialization after swapping in a loaded policy:
  // bumps the policy epoch, which by construction invalidates every cached
  // decision and any compiled tables (the epoch is part of CacheStamps), and
  // queues a recompile. This closes the reload-staleness hole even for
  // reload effects no store stamp covers (e.g. a security-officer change).
  void NotePolicyReload();
  uint64_t policy_epoch() const { return policy_epoch_.load(std::memory_order_acquire); }

  // Attempts a compiled-table decision: false when disabled, no tables are
  // The validity domain used to stamp decisions about `node`: its monitor
  // shard, or kAggregateShard with shard_stamps off / for non-concrete
  // shards (unknown node ids, the root). Lock-free. The mediation transport
  // routes by this and the grant table gates on it.
  ShardId DomainOf(NodeId node) const;

  // The stamp vector of one validity domain: the shard's own generations
  // when `shard` is concrete, else the legacy aggregate stamps.
  CacheStamps CurrentStampsFor(ShardId shard) const;

  // installed, their stamps are stale, or the tables do not cover the input
  // (then the caller must take the interpreted path). Public for the
  // differential fuzzer, which holds this against CheckInterpreted.
  // `domain` is the node's validity domain (DomainOf(node)); the check
  // validates only that domain's entry in the tables' stamp set, so a
  // mutation confined to another shard never diverts this probe.
  bool TryCompiledCheck(const Subject& subject, NodeId node, AccessModeSet modes,
                        ShardId domain, Decision* out);
  bool TryCompiledCheck(const Subject& subject, NodeId node, AccessModeSet modes,
                        Decision* out) {
    return TryCompiledCheck(subject, node, modes, DomainOf(node), out);
  }

  // The pure interpreted decision procedure — no cache, no compiled tables,
  // no audit, no stats. This is the differential-fuzz oracle.
  Decision CheckInterpreted(const Subject& subject, NodeId node, AccessModeSet modes) const {
    return CheckUncached(subject, node, modes);
  }

  struct CompiledCounters {
    uint64_t hits = 0;         // misses decided by the compiled tables
    uint64_t fallbacks = 0;    // tables fresh but input not covered
    uint64_t stale = 0;        // tables absent or stamp-stale at probe time
    uint64_t recompiles = 0;   // successful builds installed
    uint64_t failed_recompiles = 0;
  };
  CompiledCounters compiled_counters() const;

  // Checks decided per monitor shard (index kMonitorShardCount = aggregate
  // domain: unknown nodes, the root, or all checks with shard_stamps off).
  // Feeds the /sys/monitor/shard/<i>/checks telemetry leaves.
  uint64_t shard_checks(ShardId shard) const {
    size_t i = IsConcreteShard(shard) ? shard : kMonitorShardCount;
    return shard_checks_[i].load(std::memory_order_relaxed);
  }

  // The currently installed tables (null if none); for tests and stats.
  std::shared_ptr<const CompiledPolicy> compiled_snapshot() const;

  // -- Introspection ---------------------------------------------------------

  // A human-readable, multi-line diagnosis of why `subject` can or cannot
  // perform `modes` on `node`: ownership, the governing ACL (and where it
  // was inherited from), which entries matched, and the label comparison.
  // Purely informational — performs no caching and no auditing.
  std::string Explain(const Subject& subject, NodeId node, AccessModeSet modes) const;

  AuditLog& audit() { return audit_; }
  const AuditLog& audit() const { return audit_; }
  MonitorStats& stats() { return stats_; }
  const MonitorStats& stats() const { return stats_; }
  DecisionCache& cache() { return cache_; }
  const MonitorOptions& options() const { return options_; }
  void set_audit_policy(AuditPolicy policy) { audit_.set_policy(policy); }

  NameSpace& name_space() { return *name_space_; }
  AclStore& acls() { return *acls_; }
  PrincipalRegistry& principals() { return *principals_; }
  LabelAuthority& labels() { return *labels_; }

 private:
  Decision CheckUncached(const Subject& subject, NodeId node, AccessModeSet modes) const;
  // The check bodies, without latency sampling (the public wrappers add it).
  Decision CheckUnsampled(const Subject& subject, NodeId node, AccessModeSet modes);
  Decision CheckPathUnsampled(const Subject& subject, std::string_view path,
                              AccessModeSet modes, NodeId* resolved);
  CacheStamps CurrentStamps() const;
  // All domains' stamps at one instant (compiled-table validation set).
  ShardStampSet CurrentStampSet() const;
  void Audit(const Subject& subject, NodeId node, std::string path, AccessModeSet modes,
             const Decision& decision);
  // Fail-closed override: flips an allow to a kAuditUnavailable denial (or
  // counts it as unaudited, in fail-open mode) when the required audit sink
  // is tripped. Runs AFTER the cache so the transient denial is never
  // cached — allows resume the moment the sink recovers.
  void ApplyAuditAvailability(Decision* decision);
  // Lockdown override: flips extend-mode allows to kQuarantined denials
  // while lockdown_ is armed. Same post-cache placement and rationale.
  void ApplyLockdown(Decision* decision, AccessModeSet modes);

  // One build attempt against `stamps` with `extra` interned classes.
  StatusOr<std::shared_ptr<const CompiledPolicy>> BuildCompiled(
      const ShardStampSet& stamps, const std::vector<SecurityClass>& extra);
  // Build-validate-install; kAborted when mutations keep racing the build.
  Status RecompileOnce();
  void RecompileLoop();
  // Queues a subject class that missed the dominance matrix so the next
  // compile interns it (bounded; duplicates dropped).
  void NoteUncoveredClass(const SecurityClass& cls);

  NameSpace* name_space_;
  AclStore* acls_;
  PrincipalRegistry* principals_;
  LabelAuthority* labels_;
  MonitorOptions options_;
  FlowPolicy flow_;
  AuditLog audit_;
  MonitorStats stats_;
  DecisionCache cache_;
  PrincipalId security_officer_;

  // Armed by the supervision layer (breaker cascade or operator); checked
  // on every decision with one relaxed load.
  std::atomic<bool> lockdown_{false};

  // Monitor-owned stamp: policy reloads bump it (NotePolicyReload), making
  // it impossible for decisions cached against the pre-reload policy — or
  // compiled tables built against it — to be consulted afterwards.
  std::atomic<uint64_t> policy_epoch_{0};

  // The installed tables. Readers copy the shared_ptr under the shared lock
  // and evaluate lock-free; the installer swaps under the exclusive lock.
  mutable std::shared_mutex compiled_mu_;
  std::shared_ptr<const CompiledPolicy> compiled_;

  // Subject classes that missed the dominance matrix, fed into the next
  // build as extra interned classes. Small and bounded; guarded by its own
  // mutex (touched only on the fallback path).
  std::mutex uncovered_mu_;
  std::vector<SecurityClass> uncovered_classes_;
  static constexpr size_t kMaxUncoveredClasses = 32;

  // Serializes RecompileOnce bodies: concurrent builds (the background
  // RecompileLoop racing a synchronous RecompileNow) must not interleave,
  // or a build that snapshotted the queue before a class was noted can
  // install last and silently drop that class from the tables.
  // `interned_extra_` (guarded by this mutex) carries the installed tables'
  // extra classes into every rebuild so interning is monotonic until the
  // class lands in a label or clearance.
  std::mutex recompile_exec_mu_;
  std::vector<SecurityClass> interned_extra_;

  std::array<std::atomic<uint64_t>, kMonitorShardCount + 1> shard_checks_{};

  std::atomic<uint64_t> compiled_hits_{0};
  std::atomic<uint64_t> compiled_fallbacks_{0};
  std::atomic<uint64_t> compiled_stale_{0};
  std::atomic<uint64_t> recompiles_{0};
  std::atomic<uint64_t> failed_recompiles_{0};

  // Lazy background recompiler: RequestRecompile sets `pending` and wakes
  // it; the loop coalesces bursts into one build. Guarded by recompile_mu_.
  std::mutex recompile_mu_;
  std::condition_variable recompile_cv_;
  std::thread recompile_thread_;
  bool recompile_pending_ = false;
  bool recompile_shutdown_ = false;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_REFERENCE_MONITOR_H_
