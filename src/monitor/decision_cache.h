// A decision cache for the reference monitor.
//
// Keyed by (principal, node, requested modes, subject class); an entry also
// snapshots the validity stamps — name-space generation, ACL-store
// generation, membership epoch, label epoch — plus the *domain* the stamps
// were read from. In the legacy aggregate domain any policy-relevant
// mutation anywhere bumps one of the stamps and thereby invalidates every
// cached decision — coarse, but sound, and the common workload (many checks
// between rare policy changes) is exactly what experiment F8 measures. With
// sharded stamps (docs/MODEL.md §15) the monitor reads the target node's
// shard-local stamp set instead, so a mutation confined to one subtree
// leaves other shards' entries valid; the domain field keeps the two regimes
// from ever validating against each other's numerically equal stamps.
//
// The table is direct-mapped (power-of-two slots, overwrite on collision)
// and sharded: the key hash selects a shard, each shard owns a disjoint
// stripe of slots under its own lock, so concurrent Check() calls on
// different shards never contend. Slots store the *full* key — wide
// principal/node ids and the complete SecurityClass, not just its hash — so
// a hash collision can never return another subject's cached decision
// (slot matching by hash alone was a soundness bug; see
// DecisionCacheTest.HashCollidingClassesDoNotAlias).
//
// Counter invariant: every Lookup() counts exactly one of {hit, miss}. A
// probe that finds a matching key with stale stamps counts as a miss AND as
// a stale_hit, so hits + misses == total probes and stale_hits <= misses.

#ifndef XSEC_SRC_MONITOR_DECISION_CACHE_H_
#define XSEC_SRC_MONITOR_DECISION_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/shard.h"
#include "src/dac/access_mode.h"
#include "src/mac/security_class.h"
#include "src/monitor/audit.h"
#include "src/monitor/subject.h"
#include "src/naming/namespace.h"

namespace xsec {

struct CacheStamps {
  uint64_t namespace_generation = 0;
  uint64_t acl_generation = 0;
  uint64_t membership_epoch = 0;
  uint64_t label_epoch = 0;
  // The monitor's policy-reload epoch (ReferenceMonitor::NotePolicyReload):
  // bumped on every LoadPolicy/LoadPolicyFile swap, so decisions cached
  // against the pre-reload policy can never survive a reload even when no
  // individual store stamp moved (a reload whose only effect is a directive
  // the four store generations do not cover, e.g. a security-officer change).
  // The compiled-policy tables validate against the same stamp set.
  uint64_t policy_epoch = 0;

  // Validity domain the stamps were read from: a concrete monitor shard, or
  // kAggregateShard for the legacy global stamps (also used for unknown node
  // ids). Part of the key equality: a decision cached under one domain must
  // never be revalidated by a *coincidentally equal* stamp vector from
  // another — shard-local and aggregate counters advance independently, so
  // value equality across domains is meaningless.
  ShardId domain = kAggregateShard;

  bool operator==(const CacheStamps&) const = default;
};

// The whole family of stamp vectors at one instant: the aggregate (legacy
// global) domain plus every shard-local domain. Compiled tables carry one of
// these so a probe validates only the *target node's* shard entry — a
// mutation confined to another shard leaves this shard's compiled decisions
// consultable (docs/MODEL.md §15).
struct ShardStampSet {
  CacheStamps aggregate;
  std::array<CacheStamps, kMonitorShardCount> shard{};

  const CacheStamps& ForDomain(ShardId s) const {
    return IsConcreteShard(s) ? shard[s] : aggregate;
  }

  bool operator==(const ShardStampSet&) const = default;
};

class DecisionCache {
 public:
  explicit DecisionCache(size_t slot_count_pow2 = 8192);

  struct CachedDecision {
    bool allowed = false;
    DenyReason reason = DenyReason::kNone;
  };

  // Probes the cache; returns true and fills `out` on a valid hit.
  bool Lookup(const Subject& subject, NodeId node, AccessModeSet modes,
              const CacheStamps& current, CachedDecision* out);

  void Insert(const Subject& subject, NodeId node, AccessModeSet modes,
              const CacheStamps& current, CachedDecision decision);

  // Insert that cannot survive a Clear() issued after the caller captured
  // its stamps: `observed_clear_epoch` must be read (clear_epoch()) at the
  // same point the stamps are, *before* evaluating. Clear() bumps the epoch
  // before wiping slots, so an insert that raced a clear either lands before
  // the wipe (and is wiped) or observes the bumped epoch and refuses —
  // either way no pre-clear decision re-enters the cache. The ReferenceMonitor
  // check paths (including CheckBatch, which reads stamps once per batch)
  // use this form; see ShardClearRaceTest.
  void Insert(const Subject& subject, NodeId node, AccessModeSet modes,
              const CacheStamps& current, CachedDecision decision,
              uint64_t observed_clear_epoch);

  void Clear();

  // Completed-Clear counter; see the epoch-carrying Insert overload.
  uint64_t clear_epoch() const { return clear_epoch_.load(std::memory_order_acquire); }

  // Counters are kept per shard (updated under the shard lock the probe
  // already holds, so the hot path shares no counter cache line across
  // shards) and summed here.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t stale_hits() const;
  size_t slot_count() const { return shard_count_ * slots_per_shard_; }
  size_t shard_count() const { return shard_count_; }

 private:
  struct Slot {
    bool occupied = false;
    uint64_t key_hash = 0;
    // Full key: ids stored at 64 bits (wider than today's 32-bit id types,
    // so id growth can't silently reintroduce truncation) plus the complete
    // subject class.
    uint64_t principal = 0;
    uint64_t node = 0;
    uint64_t modes = 0;
    SecurityClass subject_class;
    CacheStamps stamps;
    CachedDecision decision;
  };

  struct Shard {
    std::mutex mu;
    std::vector<Slot> slots;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_hits = 0;
  };

  static constexpr size_t kMaxShards = 64;

  static uint64_t KeyHash(const Subject& subject, NodeId node, AccessModeSet modes);

  // Shards are allocated once in the constructor and never resized (Shard
  // holds a mutex, so the container must never move them).
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> clear_epoch_{0};
  size_t shard_count_ = 1;
  size_t shard_mask_ = 0;
  unsigned shard_bits_ = 0;
  size_t slots_per_shard_ = 1;
  size_t slot_mask_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_DECISION_CACHE_H_
