# Empty dependencies file for xsec_extsys_tests.
# This may be replaced when dependencies are built.
