#include "src/services/stats_service.h"

#include <chrono>
#include <utility>

#include "src/base/strings.h"
#include "src/naming/path.h"

namespace xsec {

StatsService::StatsService(Kernel* kernel, StatsServiceOptions options)
    : kernel_(kernel), options_(std::move(options)) {}

StatsService::StatsService(Kernel* kernel, std::string mount_path, std::string service_path)
    : kernel_(kernel) {
  options_.mount_path = std::move(mount_path);
  options_.service_path = std::move(service_path);
}

StatsService::~StatsService() {
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    stop_ = true;
  }
  pub_cv_.notify_all();
  if (publisher_.joinable()) {
    publisher_.join();
  }
}

Status StatsService::MountLeaf(const std::string& relative_path,
                               std::function<std::string()> render, bool in_dump) {
  std::string full = JoinPath(options_.mount_path, relative_path);
  auto node = kernel_->name_space().BindPath(full, NodeKind::kFile,
                                             kernel_->system_principal());
  if (!node.ok()) {
    return node.status();
  }
  values_.emplace(std::move(full), Leaf{*node, std::move(render), in_dump});
  return OkStatus();
}

Status StatsService::Install() {
  PrincipalId system = kernel_->system_principal();
  auto mount = kernel_->name_space().BindPath(options_.mount_path, NodeKind::kDirectory, system);
  if (!mount.ok()) {
    return mount.status();
  }
  // Fail-closed: telemetry reveals who was denied what, so the mount root
  // carries an own ACL (overriding any permissive inherited default) that
  // grants read|list to the system principal only. Administrators widen
  // visibility with ordinary AddAclEntry calls.
  Acl restricted;
  restricted.AddEntry({AclEntryType::kAllow, system, AccessMode::kRead | AccessMode::kList});
  XSEC_RETURN_IF_ERROR(
      kernel_->name_space().SetAclRef(*mount, kernel_->acls().Create(std::move(restricted))));

  ReferenceMonitor* monitor = &kernel_->monitor();
  MonitorStats* stats = &monitor->stats();
  DecisionCache* cache = &monitor->cache();
  AuditLog* audit = &monitor->audit();
  auto count = [](uint64_t v) { return std::to_string(v); };

  // The sanctioned multi-counter view and its version stamp. The snapshot
  // leaf is multi-line, so it is excluded from dumps; `version` does *not*
  // refresh the publication on read — it answers "has anything been
  // published since I last looked", which a self-refreshing value could not.
  XSEC_RETURN_IF_ERROR(
      MountLeaf("snapshot", [this] { return RenderSnapshot(); }, /*in_dump=*/false));
  XSEC_RETURN_IF_ERROR(MountLeaf("version", [this] { return std::to_string(version()); }));

  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/total", [stats, count] { return count(stats->checks_total()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/allowed", [stats, count] { return count(stats->allowed_total()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/denied", [stats, count] { return count(stats->denied_total()); }));
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode mode = static_cast<AccessMode>(1u << i);
    XSEC_RETURN_IF_ERROR(MountLeaf(
        StrFormat("checks/by-mode/%s", std::string(AccessModeName(mode)).c_str()),
        [stats, count, mode] { return count(stats->by_mode(mode)); }));
  }
  for (size_t r = 1; r < kDenyReasonCount; ++r) {  // skip kNone (that is an allow)
    DenyReason reason = static_cast<DenyReason>(r);
    XSEC_RETURN_IF_ERROR(MountLeaf(
        StrFormat("denials/by-reason/%s", std::string(DenyReasonName(reason)).c_str()),
        [stats, count, reason] { return count(stats->by_reason(reason)); }));
  }
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/hits", [cache, count] { return count(cache->hits()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/misses", [cache, count] { return count(cache->misses()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/stale", [cache, count] { return count(cache->stale_hits()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("cache/hit_rate", [cache] {
    uint64_t hits = cache->hits();
    uint64_t probes = hits + cache->misses();
    // Fixed 4-digit rendering with a locale-independent '.' radix point:
    // this leaf is machine-parsed (tools/xsec_stats, golden tests), and
    // printf "%f" follows the process locale's decimal separator.
    return FormatFixed(
        probes == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(probes), 4);
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p50", [stats, count] { return count(stats->LatencyQuantileNs(0.50)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p90", [stats, count] { return count(stats->LatencyQuantileNs(0.90)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p99", [stats, count] { return count(stats->LatencyQuantileNs(0.99)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/samples", [stats, count] { return count(stats->latency_samples()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "audit/retained", [audit, count] { return count(audit->retained()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/dropped", [audit, count] { return count(audit->dropped()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("rate/checks_per_sec", [this] {
    MaybeTick();
    std::lock_guard<std::mutex> lock(pub_mu_);
    return FormatFixed(ChecksPerSecLocked(), 2);
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("rate/denials_per_sec", [this] {
    MaybeTick();
    std::lock_guard<std::mutex> lock(pub_mu_);
    return FormatFixed(DenialsPerSecLocked(), 2);
  }));

  snapshot_node_ = values_.at(JoinPath(options_.mount_path, "snapshot")).node;

  auto svc = kernel_->RegisterService(options_.service_path, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto read_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "read"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto path = ArgString(ctx.args, 0);
        if (!path.ok()) {
          return path.status();
        }
        auto value = ReadStat(*ctx.subject, *path);
        if (!value.ok()) {
          return value.status();
        }
        return Value{std::move(*value)};
      });
  if (!read_node.ok()) {
    return read_node.status();
  }
  auto dump_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "dump"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto text = DumpTree(*ctx.subject);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  if (!dump_node.ok()) {
    return dump_node.status();
  }
  auto watch_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "watch"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto since = ArgInt(ctx.args, 0);
        if (!since.ok()) {
          return since.status();
        }
        int64_t timeout_ms = 1000;
        if (ctx.args.size() > 1) {
          auto t = ArgInt(ctx.args, 1);
          if (!t.ok()) {
            return t.status();
          }
          timeout_ms = *t;
        }
        if (timeout_ms < 0) {
          timeout_ms = 0;
        }
        if (timeout_ms > 60'000) {
          timeout_ms = 60'000;  // a watch never parks a thread for minutes
        }
        // Admission before blocking: watching the snapshot is reading it.
        Decision decision =
            kernel_->monitor().Check(*ctx.subject, snapshot_node_, AccessMode::kRead);
        if (!decision.allowed) {
          return decision.ToStatus();
        }
        uint64_t since_v;
        if (*since < 0) {
          // "Any change after this call": baseline a fresh publication that
          // already folds in this watch's own admission check, so the caller
          // blocks for the next *external* change instead of unblocking on
          // the counter bump the watch itself just caused.
          since_v = Tick();
        } else {
          since_v = static_cast<uint64_t>(*since);
        }
        uint64_t deadline =
            MonotonicNowNs() + static_cast<uint64_t>(timeout_ms) * 1'000'000;
        if (ctx.deadline_ns != 0 && ctx.deadline_ns < deadline) {
          deadline = ctx.deadline_ns;
        }
        auto text = WaitForUpdate(since_v, deadline);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  if (!watch_node.ok()) {
    return watch_node.status();
  }

  Tick();  // version 1: the boot-time state

  if (options_.background_publisher) {
    publisher_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(pub_mu_);
      while (!stop_) {
        pub_cv_.wait_for(lock, std::chrono::nanoseconds(options_.epoch_interval_ns));
        if (stop_) {
          break;
        }
        lock.unlock();
        Tick();
        lock.lock();
      }
    });
  }
  return OkStatus();
}

StatusOr<std::string> StatsService::ReadStat(Subject& subject, std::string_view path) {
  if (!StartsWith(path, options_.mount_path + "/")) {
    return InvalidArgumentError(
        StrFormat("'%s' is outside the stats mount '%s'", std::string(path).c_str(),
                  options_.mount_path.c_str()));
  }
  auto it = values_.find(std::string(path));
  if (it == values_.end()) {
    return NotFoundError(
        StrFormat("'%s' is not a stats leaf", std::string(path).c_str()));
  }
  Decision decision = kernel_->monitor().Check(subject, it->second.node, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return it->second.render();
}

StatusOr<std::string> StatsService::DumpTree(Subject& subject) {
  std::string out;
  for (const auto& [path, leaf] : values_) {
    if (!leaf.in_dump) {
      continue;  // multi-line leaves (snapshot) don't fit the line format
    }
    if (!kernel_->monitor().Check(subject, leaf.node, AccessMode::kRead).allowed) {
      continue;  // the denial is counted and audited like any other
    }
    out += path + " " + leaf.render() + "\n";
  }
  return out;
}

std::string StatsService::RenderAll() const {
  std::string out;
  for (const auto& [path, leaf] : values_) {
    if (!leaf.in_dump) {
      continue;
    }
    out += path + " " + leaf.render() + "\n";
  }
  return out;
}

uint64_t StatsService::Tick() {
  ReferenceMonitor& monitor = kernel_->monitor();
  // Capture everything before taking pub_mu_: TakeSnapshot can spin briefly
  // around a concurrent Reset and must not do so while holding the
  // publication lock watchers block on.
  MonitorStats::Snapshot snap = monitor.stats().TakeSnapshot();
  uint64_t cache_hits = monitor.cache().hits();
  uint64_t cache_misses = monitor.cache().misses();
  uint64_t cache_stale = monitor.cache().stale_hits();
  uint64_t audit_retained = monitor.audit().retained();
  uint64_t audit_dropped = monitor.audit().dropped();
  uint64_t now = MonotonicNowNs();

  std::lock_guard<std::mutex> lock(pub_mu_);
  bool changed = version_ == 0 || !snap.SameCounters(published_) ||
                 cache_hits != pub_cache_hits_ || cache_misses != pub_cache_misses_ ||
                 cache_stale != pub_cache_stale_ || audit_retained != pub_audit_retained_ ||
                 audit_dropped != pub_audit_dropped_;
  if (changed) {
    ++version_;
    snap.version = version_;
    published_ = snap;
    pub_cache_hits_ = cache_hits;
    pub_cache_misses_ = cache_misses;
    pub_cache_stale_ = cache_stale;
    pub_audit_retained_ = audit_retained;
    pub_audit_dropped_ = audit_dropped;
  }
  // The rate ring tracks cumulative counters per publication epoch; a
  // decrease means the stats were Reset, which invalidates every delta.
  if (!rate_ring_.empty() && snap.checks_total < rate_ring_.back().checks) {
    rate_ring_.clear();
  }
  rate_ring_.push_back(RateEpoch{now, snap.checks_total, snap.denied});
  while (rate_ring_.size() > 2 &&
         now - rate_ring_[1].t_ns >= options_.rate_window_ns) {
    rate_ring_.pop_front();
  }
  last_tick_ns_ = now;
  if (changed) {
    pub_cv_.notify_all();
  }
  return version_;
}

uint64_t StatsService::version() const {
  std::lock_guard<std::mutex> lock(pub_mu_);
  return version_;
}

void StatsService::MaybeTick() {
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    if (last_tick_ns_ != 0 &&
        MonotonicNowNs() - last_tick_ns_ < options_.epoch_interval_ns) {
      return;
    }
  }
  Tick();
}

std::string StatsService::RenderSnapshot() {
  MaybeTick();
  std::lock_guard<std::mutex> lock(pub_mu_);
  return RenderSnapshotLocked();
}

StatusOr<std::string> StatsService::WaitForUpdate(uint64_t since, uint64_t deadline_ns) {
  for (;;) {
    std::unique_lock<std::mutex> lock(pub_mu_);
    if (version_ > since) {
      return RenderSnapshotLocked();
    }
    uint64_t now = MonotonicNowNs();
    if (deadline_ns != 0 && now >= deadline_ns) {
      return DeadlineExceededError(
          StrFormat("no stats update past version %llu within the deadline",
                    static_cast<unsigned long long>(since)));
    }
    // Self-clocking: when the current epoch has elapsed, this watcher takes
    // its own fresh capture (outside the lock) instead of waiting for a
    // publisher thread that may not exist.
    uint64_t next_capture = last_tick_ns_ + options_.epoch_interval_ns;
    if (now >= next_capture) {
      lock.unlock();
      Tick();
      continue;
    }
    uint64_t wake = next_capture;
    if (deadline_ns != 0 && deadline_ns < wake) {
      wake = deadline_ns;
    }
    pub_cv_.wait_for(lock, std::chrono::nanoseconds(wake - now));
  }
}

double StatsService::ChecksPerSecLocked() const {
  if (rate_ring_.size() < 2) {
    return 0.0;
  }
  const RateEpoch& oldest = rate_ring_.front();
  const RateEpoch& newest = rate_ring_.back();
  if (newest.t_ns <= oldest.t_ns || newest.checks < oldest.checks) {
    return 0.0;
  }
  return static_cast<double>(newest.checks - oldest.checks) * 1e9 /
         static_cast<double>(newest.t_ns - oldest.t_ns);
}

double StatsService::DenialsPerSecLocked() const {
  if (rate_ring_.size() < 2) {
    return 0.0;
  }
  const RateEpoch& oldest = rate_ring_.front();
  const RateEpoch& newest = rate_ring_.back();
  if (newest.t_ns <= oldest.t_ns || newest.denials < oldest.denials) {
    return 0.0;
  }
  return static_cast<double>(newest.denials - oldest.denials) * 1e9 /
         static_cast<double>(newest.t_ns - oldest.t_ns);
}

std::string StatsService::RenderSnapshotLocked() const {
  const std::string& m = options_.mount_path;
  const MonitorStats::Snapshot& s = published_;
  std::string out;
  out += StrFormat("version %llu\n", static_cast<unsigned long long>(s.version));
  out += StrFormat("reset_epoch %llu\n", static_cast<unsigned long long>(s.reset_epoch));
  auto line = [&out, &m](const char* rel, uint64_t v) {
    out += StrFormat("%s/%s %llu\n", m.c_str(), rel, static_cast<unsigned long long>(v));
  };
  line("checks/total", s.checks_total);
  line("checks/allowed", s.allowed);
  line("checks/denied", s.denied);
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode mode = static_cast<AccessMode>(1u << i);
    line(StrFormat("checks/by-mode/%s", std::string(AccessModeName(mode)).c_str()).c_str(),
         s.by_mode[i]);
  }
  for (size_t r = 1; r < kDenyReasonCount; ++r) {
    DenyReason reason = static_cast<DenyReason>(r);
    line(StrFormat("denials/by-reason/%s", std::string(DenyReasonName(reason)).c_str()).c_str(),
         s.by_reason[r]);
  }
  line("cache/hits", pub_cache_hits_);
  line("cache/misses", pub_cache_misses_);
  line("cache/stale", pub_cache_stale_);
  uint64_t probes = pub_cache_hits_ + pub_cache_misses_;
  out += StrFormat("%s/cache/hit_rate %s\n", m.c_str(),
                   FormatFixed(probes == 0 ? 0.0
                                           : static_cast<double>(pub_cache_hits_) /
                                                 static_cast<double>(probes),
                               4)
                       .c_str());
  line("latency/p50", s.LatencyQuantileNs(0.50));
  line("latency/p90", s.LatencyQuantileNs(0.90));
  line("latency/p99", s.LatencyQuantileNs(0.99));
  line("latency/samples", s.latency_samples);
  line("audit/retained", pub_audit_retained_);
  line("audit/dropped", pub_audit_dropped_);
  out += StrFormat("%s/rate/checks_per_sec %s\n", m.c_str(),
                   FormatFixed(ChecksPerSecLocked(), 2).c_str());
  out += StrFormat("%s/rate/denials_per_sec %s\n", m.c_str(),
                   FormatFixed(DenialsPerSecLocked(), 2).c_str());
  return out;
}

}  // namespace xsec
