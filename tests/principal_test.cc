#include "src/principal/registry.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(PrincipalRegistryTest, CreateAndLookup) {
  PrincipalRegistry reg;
  auto alice = reg.CreateUser("alice");
  ASSERT_TRUE(alice.ok());
  auto staff = reg.CreateGroup("staff");
  ASSERT_TRUE(staff.ok());
  EXPECT_NE(alice->value, staff->value);

  auto found = reg.FindByName("alice");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *alice);
  EXPECT_EQ(reg.Get(*alice)->kind, PrincipalKind::kUser);
  EXPECT_EQ(reg.Get(*staff)->kind, PrincipalKind::kGroup);
  EXPECT_EQ(reg.Get(*staff)->name, "staff");
}

TEST(PrincipalRegistryTest, DuplicateNamesRejected) {
  PrincipalRegistry reg;
  ASSERT_TRUE(reg.CreateUser("x").ok());
  EXPECT_EQ(reg.CreateUser("x").status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(reg.CreateGroup("x").status().code(), StatusCode::kAlreadyExists);
}

TEST(PrincipalRegistryTest, EmptyNameRejected) {
  PrincipalRegistry reg;
  EXPECT_EQ(reg.CreateUser("").status().code(), StatusCode::kInvalidArgument);
}

TEST(PrincipalRegistryTest, WhitespaceInNamesRejected) {
  PrincipalRegistry reg;
  EXPECT_EQ(reg.CreateUser("ali ce").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.CreateGroup("sta\tff").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.CreateUser("new\nline").status().code(), StatusCode::kInvalidArgument);
}

TEST(PrincipalRegistryTest, UnknownLookups) {
  PrincipalRegistry reg;
  EXPECT_EQ(reg.FindByName("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reg.Get(PrincipalId{999}), nullptr);
}

TEST(PrincipalRegistryTest, DirectMembership) {
  PrincipalRegistry reg;
  PrincipalId alice = *reg.CreateUser("alice");
  PrincipalId staff = *reg.CreateGroup("staff");
  ASSERT_TRUE(reg.AddMember(staff, alice).ok());

  const DynamicBitset& closure = reg.MembershipClosure(alice);
  EXPECT_TRUE(closure.Test(alice.value));
  EXPECT_TRUE(closure.Test(staff.value));

  auto members = reg.MembersOf(staff);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 1u);
}

TEST(PrincipalRegistryTest, TransitiveClosureThroughNestedGroups) {
  PrincipalRegistry reg;
  PrincipalId u = *reg.CreateUser("u");
  PrincipalId inner = *reg.CreateGroup("inner");
  PrincipalId middle = *reg.CreateGroup("middle");
  PrincipalId outer = *reg.CreateGroup("outer");
  ASSERT_TRUE(reg.AddMember(inner, u).ok());
  ASSERT_TRUE(reg.AddMember(middle, inner).ok());
  ASSERT_TRUE(reg.AddMember(outer, middle).ok());

  const DynamicBitset& closure = reg.MembershipClosure(u);
  EXPECT_TRUE(closure.Test(inner.value));
  EXPECT_TRUE(closure.Test(middle.value));
  EXPECT_TRUE(closure.Test(outer.value));
  EXPECT_EQ(closure.Count(), 4u);  // self + three groups
}

TEST(PrincipalRegistryTest, ClosureOfNonMemberIsSelfOnly) {
  PrincipalRegistry reg;
  PrincipalId u = *reg.CreateUser("u");
  (void)*reg.CreateGroup("g");
  EXPECT_EQ(reg.MembershipClosure(u).Count(), 1u);
}

TEST(PrincipalRegistryTest, CycleRejected) {
  PrincipalRegistry reg;
  PrincipalId a = *reg.CreateGroup("a");
  PrincipalId b = *reg.CreateGroup("b");
  PrincipalId c = *reg.CreateGroup("c");
  ASSERT_TRUE(reg.AddMember(a, b).ok());
  ASSERT_TRUE(reg.AddMember(b, c).ok());
  EXPECT_EQ(reg.AddMember(c, a).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(reg.AddMember(a, a).code(), StatusCode::kFailedPrecondition);
}

TEST(PrincipalRegistryTest, UsersCannotHaveMembers) {
  PrincipalRegistry reg;
  PrincipalId u = *reg.CreateUser("u");
  PrincipalId v = *reg.CreateUser("v");
  EXPECT_EQ(reg.AddMember(u, v).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.MembersOf(u).status().code(), StatusCode::kInvalidArgument);
}

TEST(PrincipalRegistryTest, DuplicateMembershipRejected) {
  PrincipalRegistry reg;
  PrincipalId u = *reg.CreateUser("u");
  PrincipalId g = *reg.CreateGroup("g");
  ASSERT_TRUE(reg.AddMember(g, u).ok());
  EXPECT_EQ(reg.AddMember(g, u).code(), StatusCode::kAlreadyExists);
}

TEST(PrincipalRegistryTest, RemoveMemberShrinksClosure) {
  PrincipalRegistry reg;
  PrincipalId u = *reg.CreateUser("u");
  PrincipalId g = *reg.CreateGroup("g");
  ASSERT_TRUE(reg.AddMember(g, u).ok());
  EXPECT_TRUE(reg.MembershipClosure(u).Test(g.value));
  ASSERT_TRUE(reg.RemoveMember(g, u).ok());
  EXPECT_FALSE(reg.MembershipClosure(u).Test(g.value));
  EXPECT_EQ(reg.RemoveMember(g, u).code(), StatusCode::kNotFound);
}

TEST(PrincipalRegistryTest, MembershipEpochBumpsOnMutation) {
  PrincipalRegistry reg;
  PrincipalId u = *reg.CreateUser("u");
  PrincipalId g = *reg.CreateGroup("g");
  uint64_t e0 = reg.membership_epoch();
  ASSERT_TRUE(reg.AddMember(g, u).ok());
  uint64_t e1 = reg.membership_epoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE(reg.RemoveMember(g, u).ok());
  EXPECT_GT(reg.membership_epoch(), e1);
}

TEST(PrincipalRegistryTest, AuthenticationRoundTrip) {
  PrincipalRegistry reg;
  PrincipalId u = *reg.CreateUser("alice");
  ASSERT_TRUE(reg.SetCredential(u, "sesame").ok());
  auto ok = reg.Authenticate("alice", "sesame");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, u);
  EXPECT_EQ(reg.Authenticate("alice", "wrong").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(reg.Authenticate("ghost", "x").status().code(), StatusCode::kNotFound);
}

TEST(PrincipalRegistryTest, NoCredentialMeansNoLogin) {
  PrincipalRegistry reg;
  (void)*reg.CreateUser("alice");
  EXPECT_EQ(reg.Authenticate("alice", "").status().code(), StatusCode::kPermissionDenied);
}

TEST(PrincipalRegistryTest, GroupsCannotAuthenticate) {
  PrincipalRegistry reg;
  PrincipalId g = *reg.CreateGroup("staff");
  EXPECT_EQ(reg.SetCredential(g, "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Authenticate("staff", "x").status().code(), StatusCode::kInvalidArgument);
}

TEST(PrincipalRegistryTest, DiamondMembershipCountedOnce) {
  PrincipalRegistry reg;
  PrincipalId u = *reg.CreateUser("u");
  PrincipalId left = *reg.CreateGroup("left");
  PrincipalId right = *reg.CreateGroup("right");
  PrincipalId top = *reg.CreateGroup("top");
  ASSERT_TRUE(reg.AddMember(left, u).ok());
  ASSERT_TRUE(reg.AddMember(right, u).ok());
  ASSERT_TRUE(reg.AddMember(top, left).ok());
  ASSERT_TRUE(reg.AddMember(top, right).ok());
  const DynamicBitset& closure = reg.MembershipClosure(u);
  EXPECT_EQ(closure.Count(), 4u);
  EXPECT_TRUE(closure.Test(top.value));
}

}  // namespace
}  // namespace xsec
