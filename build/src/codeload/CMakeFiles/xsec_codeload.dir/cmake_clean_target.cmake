file(REMOVE_RECURSE
  "libxsec_codeload.a"
)
