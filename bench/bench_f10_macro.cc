// Experiment F10 (macro) — a mixed end-to-end workload under different
// monitor configurations.
//
// The micro-benchmarks (F1–F9) price each mechanism in isolation; this one
// asks the question a system adopter would: what does full mediation cost on
// a *realistic operation mix*? Each iteration performs one operation drawn
// round-robin from: file read, file append, directory list, service call
// through the kernel, event dispatch to an extension, thread status check.
//
//   Workload/full          DAC+MAC, cache, denials-only audit (the default)
//   Workload/full_uncached same without the decision cache
//   Workload/audit_all     default + full audit retention
//   Workload/dac_only      discretionary only
//   Workload/mac_only      mandatory only
//   Workload/none          mediation disabled layers (floor)
//
// Expected shape: the default configuration sits within ~2× of the floor;
// the uncached and audit-all variants show where the costs concentrate.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

struct Workload {
  explicit Workload(MonitorOptions options) : sys(options) {
    (void)sys.labels().DefineLevels({"low", "high"});
    user = *sys.CreateUser("worker");
    subject = sys.Login(user, sys.labels().Bottom());

    // A small home tree with a few files.
    NodeId home = *sys.name_space().BindPath("/fs/home", NodeKind::kDirectory, user);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet::All()});
    (void)sys.name_space().SetAclRef(home, sys.kernel().acls().Create(std::move(acl)));
    for (int i = 0; i < 4; ++i) {
      std::string path = "/fs/home/f" + std::to_string(i);
      (void)sys.fs().Create(subject, path);
      (void)sys.fs().Write(subject, path, {1, 2, 3, 4});
    }

    // An extension point with one handler.
    NodeId iface = *sys.kernel().RegisterInterface("/svc/hook", sys.system_principal());
    Acl iface_acl;
    iface_acl.AddEntry({AclEntryType::kAllow, user,
                        AccessMode::kExecute | AccessMode::kExtend | AccessMode::kList});
    (void)sys.name_space().SetAclRef(iface, sys.kernel().acls().Create(std::move(iface_acl)));
    ExtensionManifest manifest;
    manifest.name = "hook-impl";
    manifest.exports.push_back(
        {"/svc/hook", [](CallContext&) -> StatusOr<Value> { return Value{int64_t{1}}; }});
    (void)sys.LoadExtension(manifest, subject);

    thread_id = *sys.threads().Spawn(subject, "bg");
  }

  void Step(int op) {
    switch (op % 6) {
      case 0:
        benchmark::DoNotOptimize(sys.fs().Read(subject, "/fs/home/f0"));
        break;
      case 1:
        benchmark::DoNotOptimize(sys.fs().Append(subject, "/fs/home/f1", {9}));
        break;
      case 2:
        benchmark::DoNotOptimize(sys.fs().ListDir(subject, "/fs/home"));
        break;
      case 3:
        benchmark::DoNotOptimize(
            sys.Invoke(subject, "/svc/fs/stat", {Value{std::string("/fs/home/f2")}}));
        break;
      case 4:
        benchmark::DoNotOptimize(sys.kernel().RaiseEvent(subject, "/svc/hook", {}));
        break;
      case 5:
        benchmark::DoNotOptimize(sys.threads().IsRunning(subject, thread_id));
        break;
    }
  }

  SecureSystem sys;
  PrincipalId user;
  Subject subject;
  int64_t thread_id = 0;
};

void RunWorkload(benchmark::State& state, MonitorOptions options) {
  Workload workload(options);
  int op = 0;
  for (auto _ : state) {
    workload.Step(op++);
  }
  state.SetItemsProcessed(state.iterations());
}

MonitorOptions Config(bool dac, bool mac, bool cache, AuditPolicy audit) {
  MonitorOptions options;
  options.dac_enabled = dac;
  options.mac_enabled = mac;
  options.cache_enabled = cache;
  options.audit_policy = audit;
  return options;
}

void BM_Workload_Full(benchmark::State& state) {
  RunWorkload(state, Config(true, true, true, AuditPolicy::kDenialsOnly));
}
void BM_Workload_FullUncached(benchmark::State& state) {
  RunWorkload(state, Config(true, true, false, AuditPolicy::kDenialsOnly));
}
void BM_Workload_AuditAll(benchmark::State& state) {
  RunWorkload(state, Config(true, true, true, AuditPolicy::kAll));
}
void BM_Workload_DacOnly(benchmark::State& state) {
  RunWorkload(state, Config(true, false, true, AuditPolicy::kOff));
}
void BM_Workload_MacOnly(benchmark::State& state) {
  RunWorkload(state, Config(false, true, true, AuditPolicy::kOff));
}
void BM_Workload_NoLayers(benchmark::State& state) {
  RunWorkload(state, Config(false, false, true, AuditPolicy::kOff));
}

BENCHMARK(BM_Workload_Full);
BENCHMARK(BM_Workload_FullUncached);
BENCHMARK(BM_Workload_AuditAll);
BENCHMARK(BM_Workload_DacOnly);
BENCHMARK(BM_Workload_MacOnly);
BENCHMARK(BM_Workload_NoLayers);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
