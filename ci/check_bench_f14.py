#!/usr/bin/env python3
"""Gate for the F14 compiled-decision figures.

Reads a fresh BENCH_f14.json and requires that a cache-miss check served
from the compiled tables is materially faster than the same miss on the
interpreted path:

    ratio = median cpu_time(BM_CheckMiss_Compiled)
          / median cpu_time(BM_CheckMiss_Interpreted)   must be < --max-ratio

Both measurements come from the same run on the same fixture, so machine
speed cancels; the ratio is the compiled path's raison d'etre, and a ratio
drifting toward 1.0 means the flattening stopped paying for itself (or the
benchmark silently fell back to the interpreter — the benchmark itself
errors out in that case rather than producing a bogus ratio).

No committed baseline: unlike the F1 stats budget, this gate is an absolute
claim about the mechanism, not a regression bound.

Usage: check_bench_f14.py <fresh.json> [--max-ratio 0.9]
"""

import argparse
import json
import statistics
import sys

INTERPRETED = "BM_CheckMiss_Interpreted"
COMPILED = "BM_CheckMiss_Compiled"


def median_cpu_time(data, path, name):
    values = [
        float(bench["cpu_time"])
        for bench in data.get("benchmarks", [])
        if bench.get("name") == name
        and bench.get("run_type", "iteration") == "iteration"
        and "cpu_time" in bench
        and "error_occurred" not in bench
    ]
    if not values:
        raise KeyError(f"{path}: no successful benchmark named {name}")
    return statistics.median(values)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("--max-ratio", type=float, default=0.9,
                        help="compiled/interpreted miss ratio ceiling (default 0.9)")
    args = parser.parse_args()

    try:
        with open(args.fresh) as f:
            data = json.load(f)
        if not data.get("benchmarks"):
            raise ValueError(f"{args.fresh}: no benchmark entries — "
                             "did bench_f14_compiled run?")
        compiled = median_cpu_time(data, args.fresh, COMPILED)
        interpreted = median_cpu_time(data, args.fresh, INTERPRETED)
        if interpreted <= 0:
            raise ValueError(f"{args.fresh}: non-positive cpu_time for {INTERPRETED}")
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as err:
        print(f"check_bench_f14: {err}", file=sys.stderr)
        return 1

    ratio = compiled / interpreted
    print(f"compiled/interpreted miss ratio [cpu_time]: {ratio:.4f} "
          f"(compiled {compiled:.1f}ns, interpreted {interpreted:.1f}ns)")

    if ratio >= args.max_ratio:
        print(f"check_bench_f14: FAIL — compiled miss is not at least "
              f"{(1.0 - args.max_ratio):.0%} faster than interpreted "
              f"(ratio {ratio:.4f} >= {args.max_ratio})", file=sys.stderr)
        return 1
    print("check_bench_f14: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
