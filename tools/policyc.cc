// policyc — validate and normalize xsec policy files.
//
// Usage:
//   policyc check <file>       load into a scratch kernel; report errors
//   policyc normalize <file>   same, then print the canonical serialization
//   policyc demo               print a small example policy
//
// Exit status: 0 if the policy is valid, 1 otherwise. `normalize` is
// idempotent: its output loads back to an identical serialization, so it is
// safe to use as a formatter.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/policy/policy_io.h"

namespace {

constexpr char kDemoPolicy[] = R"(xsec-policy v1
levels others organization local
category department-1
category department-2
user alice
user bob
group team
member team alice
member team bob
clearance bob organization department-2
officer alice
node /fs/org directory alice
label /fs/org organization
acl /fs/org allow team read|list
acl /fs/org deny bob write
)";

int Check(const std::string& text, bool print_normalized) {
  xsec::Kernel kernel;
  xsec::Status status = xsec::LoadPolicy(text, &kernel);
  if (!status.ok()) {
    std::fprintf(stderr, "policyc: %s\n", status.ToString().c_str());
    return 1;
  }
  auto normalized = xsec::SerializePolicy(kernel);
  if (!normalized.ok()) {
    std::fprintf(stderr, "policyc: %s\n", normalized.status().ToString().c_str());
    return 1;
  }
  // Idempotence self-check: the normalized form must load to itself.
  xsec::Kernel second;
  bool stable = xsec::LoadPolicy(*normalized, &second).ok();
  if (stable) {
    auto renormalized = xsec::SerializePolicy(second);
    stable = renormalized.ok() && *renormalized == *normalized;
  }
  if (!stable) {
    std::fprintf(stderr, "policyc: internal error: normalization is not stable\n");
    return 1;
  }
  if (print_normalized) {
    std::fputs(normalized->c_str(), stdout);
  } else {
    std::fprintf(stderr, "policyc: OK (%zu principals, %zu nodes)\n",
                 kernel.principals().principal_count(), kernel.name_space().node_count());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command = argc > 1 ? argv[1] : "";
  if (command == "demo") {
    std::fputs(kDemoPolicy, stdout);
    return 0;
  }
  if ((command == "check" || command == "normalize") && argc == 3) {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "policyc: cannot open '%s'\n", argv[2]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return Check(buffer.str(), command == "normalize");
  }
  std::fprintf(stderr, "usage: policyc check|normalize <file> | policyc demo\n");
  return 2;
}
