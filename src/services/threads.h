// The (simulated) thread service — the ThreadMurder target.
//
// McGraw & Felten's ThreadMurder applet (cited in §1.2) killed the threads of
// every other applet in the same Java sandbox because the sandbox did not
// isolate extensions from each other. Here every simulated thread is a named
// object (/obj/threads/t<N>) labeled with its spawner's security class and
// carrying a spawner-only ACL, so killing a thread is an ordinary mediated
// `delete` access: MAC separates categories (a remote applet cannot reach an
// organization thread at all) and DAC separates principals within one class.
//
// examples/threadmurder.cpp runs the attack against both this service and
// the Java-sandbox baseline.

#ifndef XSEC_SRC_SERVICES_THREADS_H_
#define XSEC_SRC_SERVICES_THREADS_H_

#include <map>
#include <string>
#include <vector>

#include "src/extsys/kernel.h"

namespace xsec {

class ThreadService {
 public:
  ThreadService(Kernel* kernel, std::string service_path = "/svc/threads",
                std::string object_dir = "/obj/threads");

  Status Install();

  // -- Mediated operations ----------------------------------------------------

  // Spawns a simulated thread owned by the subject, labeled at the subject's
  // class. Returns the thread id.
  StatusOr<int64_t> Spawn(Subject& subject, std::string_view name);

  // Kills a thread: a `delete` access on its node.
  Status Kill(Subject& subject, int64_t thread_id);

  // Thread ids whose node the subject can `read` (visibility is mediated,
  // so a subject only ever learns about threads it is cleared to see).
  StatusOr<std::vector<int64_t>> List(Subject& subject);

  // True if running; requires `read` on the thread's node.
  StatusOr<bool> IsRunning(Subject& subject, int64_t thread_id);

  // -- Inter-thread messaging --------------------------------------------------
  // Message passing between simulated threads is an information flow and is
  // mediated like any other: delivering into a thread's mailbox is a
  // write-append on the thread object (so messages flow up the lattice but
  // never down), and draining one's mailbox is a read. This closes the other
  // half of the sandbox-isolation hole §1.2 describes: under the Java model
  // applets could not only kill each other but freely signal each other.

  // Appends `message` to the target thread's mailbox (write-append check).
  Status SendMessage(Subject& subject, int64_t to_thread, std::string_view message);

  // Drains and returns the thread's mailbox (read check on its node).
  StatusOr<std::vector<std::string>> ReceiveMessages(Subject& subject, int64_t thread_id);

  // Mailbox depth without draining (read check).
  StatusOr<int64_t> PendingMessages(Subject& subject, int64_t thread_id);

  size_t live_count() const;
  size_t total_spawned() const { return records_.size(); }

 private:
  struct Record {
    std::string name;
    PrincipalId owner;
    NodeId node;
    bool running = true;
    std::vector<std::string> mailbox;
  };

  Kernel* kernel_;
  std::string service_path_;
  std::string object_dir_;
  std::map<int64_t, Record> records_;
  int64_t next_id_ = 1;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_THREADS_H_
