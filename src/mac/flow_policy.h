// Mandatory information-flow rules (paper §2.2).
//
// "Subjects can view the contents of an object (i.e., have read access) when
// their level of trust is higher than or equal to the level of trust of the
// object and when their categories are a superset of the categories of the
// object. They can modify the contents of an object (i.e., have any form of
// write access) when their level of trust is lower or equal to the level of
// trust of the object and their categories are a subset of the categories of
// the object."
//
// Mode-by-mode mapping (S = subject class, O = object class):
//
//   read, list, execute,       require S ⊒ O      (simple security property)
//   extend
//   write-append               requires O ⊒ S     (⋆-property)
//   write, delete              require O ⊒ S, and additionally S ⊒ O (i.e.
//                              S = O) when `write_up_requires_append` is set —
//                              this implements the paper's parenthetical that
//                              write-append may be needed "to limit subjects
//                              at a lower level of trust to blindly overwrite
//                              objects at a higher level of trust"
//   administrate               requires S = O (observing and modifying policy)
//
// `execute` is an observation: the caller learns from the service's behavior,
// and the invoked code runs at the *caller's* class (class propagation,
// §2.2), so the read rule is the right one.
//
// `extend` also follows the read rule (the extension must be cleared to see
// the interface it specializes), NOT the ⋆-property. The paper requires that
// "extensions with different security classes can all be allowed to extend
// the same system service" (§2.2) — under the ⋆-property a single interface
// label could never admit both low and high handler classes while remaining
// callable by low subjects. Registration itself discloses only the handler's
// existence; the actual information flow happens at invocation, where the
// dispatcher's selection rule (caller class dominates handler class,
// src/extsys/dispatcher.h) enforces the lattice.

#ifndef XSEC_SRC_MAC_FLOW_POLICY_H_
#define XSEC_SRC_MAC_FLOW_POLICY_H_

#include <optional>
#include <string>

#include "src/dac/access_mode.h"
#include "src/mac/security_class.h"

namespace xsec {

struct FlowPolicyOptions {
  // When true (default, the paper's suggestion), destructive writes to a
  // strictly dominating object are refused; only write-append flows up.
  bool write_up_requires_append = true;
};

// The outcome of a MAC check: allowed, or the first mode that violated flow.
struct FlowVerdict {
  bool allowed = true;
  // Set iff !allowed.
  std::optional<AccessMode> violating_mode;
  std::string ToString() const;
};

class FlowPolicy {
 public:
  explicit FlowPolicy(FlowPolicyOptions options = {}) : options_(options) {}

  // Checks every mode in `requested` against the flow rules.
  FlowVerdict Check(const SecurityClass& subject, const SecurityClass& object,
                    AccessModeSet requested) const;

  // Single-mode rule; exposed for property tests.
  bool ModeAllowed(const SecurityClass& subject, const SecurityClass& object,
                   AccessMode mode) const;

  const FlowPolicyOptions& options() const { return options_; }

 private:
  FlowPolicyOptions options_;
};

// The complete flow rule as a truth table: every mode's verdict depends only
// on the two dominance bits (S ⊒ O, O ⊒ S), so the whole per-pair decision
// collapses to an 8-bit mode mask. This is the single source of truth both
// the interpreted path (FlowPolicy::ModeAllowed) and the compiled path
// (CompiledPolicy's per-class-pair masks) evaluate — they cannot disagree on
// the S = O double-dominance cases (write/delete under
// write_up_requires_append, administrate) because there is only one rule.
// Note mutual dominance IS lattice equality (antisymmetry: l1>=l2 && l2>=l1
// and C1⊆C2 && C2⊆C1), which SecurityClassProperty.MutualDominanceIsEquality
// pins down for category sets of differing capacities.
AccessModeSet FlowAllowedMask(bool subject_dominates_object, bool object_dominates_subject,
                              const FlowPolicyOptions& options);

}  // namespace xsec

#endif  // XSEC_SRC_MAC_FLOW_POLICY_H_
