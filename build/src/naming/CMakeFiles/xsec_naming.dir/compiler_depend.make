# Empty compiler generated dependencies file for xsec_naming.
# This may be replaced when dependencies are built.
