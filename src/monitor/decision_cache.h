// A decision cache for the reference monitor.
//
// Keyed by (principal, node, requested modes, subject class); an entry also
// snapshots four validity stamps — name-space generation, ACL-store
// generation, membership epoch, label epoch. Any policy-relevant mutation
// anywhere bumps one of the stamps and thereby invalidates every cached
// decision. Coarse, but sound, and the common workload (many checks between
// rare policy changes) is exactly what experiment F8 measures.
//
// The table is direct-mapped (power-of-two slots, overwrite on collision)
// and sharded: the key hash selects a shard, each shard owns a disjoint
// stripe of slots under its own lock, so concurrent Check() calls on
// different shards never contend. Slots store the *full* key — wide
// principal/node ids and the complete SecurityClass, not just its hash — so
// a hash collision can never return another subject's cached decision
// (slot matching by hash alone was a soundness bug; see
// DecisionCacheTest.HashCollidingClassesDoNotAlias).
//
// Counter invariant: every Lookup() counts exactly one of {hit, miss}. A
// probe that finds a matching key with stale stamps counts as a miss AND as
// a stale_hit, so hits + misses == total probes and stale_hits <= misses.

#ifndef XSEC_SRC_MONITOR_DECISION_CACHE_H_
#define XSEC_SRC_MONITOR_DECISION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/dac/access_mode.h"
#include "src/mac/security_class.h"
#include "src/monitor/audit.h"
#include "src/monitor/subject.h"
#include "src/naming/namespace.h"

namespace xsec {

struct CacheStamps {
  uint64_t namespace_generation = 0;
  uint64_t acl_generation = 0;
  uint64_t membership_epoch = 0;
  uint64_t label_epoch = 0;
  // The monitor's policy-reload epoch (ReferenceMonitor::NotePolicyReload):
  // bumped on every LoadPolicy/LoadPolicyFile swap, so decisions cached
  // against the pre-reload policy can never survive a reload even when no
  // individual store stamp moved (a reload whose only effect is a directive
  // the four store generations do not cover, e.g. a security-officer change).
  // The compiled-policy tables validate against the same stamp set.
  uint64_t policy_epoch = 0;

  bool operator==(const CacheStamps&) const = default;
};

class DecisionCache {
 public:
  explicit DecisionCache(size_t slot_count_pow2 = 8192);

  struct CachedDecision {
    bool allowed = false;
    DenyReason reason = DenyReason::kNone;
  };

  // Probes the cache; returns true and fills `out` on a valid hit.
  bool Lookup(const Subject& subject, NodeId node, AccessModeSet modes,
              const CacheStamps& current, CachedDecision* out);

  void Insert(const Subject& subject, NodeId node, AccessModeSet modes,
              const CacheStamps& current, CachedDecision decision);

  void Clear();

  // Counters are kept per shard (updated under the shard lock the probe
  // already holds, so the hot path shares no counter cache line across
  // shards) and summed here.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t stale_hits() const;
  size_t slot_count() const { return shard_count_ * slots_per_shard_; }
  size_t shard_count() const { return shard_count_; }

 private:
  struct Slot {
    bool occupied = false;
    uint64_t key_hash = 0;
    // Full key: ids stored at 64 bits (wider than today's 32-bit id types,
    // so id growth can't silently reintroduce truncation) plus the complete
    // subject class.
    uint64_t principal = 0;
    uint64_t node = 0;
    uint64_t modes = 0;
    SecurityClass subject_class;
    CacheStamps stamps;
    CachedDecision decision;
  };

  struct Shard {
    std::mutex mu;
    std::vector<Slot> slots;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_hits = 0;
  };

  static constexpr size_t kMaxShards = 64;

  static uint64_t KeyHash(const Subject& subject, NodeId node, AccessModeSet modes);

  // Shards are allocated once in the constructor and never resized (Shard
  // holds a mutex, so the container must never move them).
  std::unique_ptr<Shard[]> shards_;
  size_t shard_count_ = 1;
  size_t shard_mask_ = 0;
  unsigned shard_bits_ = 0;
  size_t slots_per_shard_ = 1;
  size_t slot_mask_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_DECISION_CACHE_H_
