#include "src/services/mbuf.h"

#include <gtest/gtest.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

class MbufTest : public ::testing::Test {
 protected:
  MbufTest() {
    alice_ = sys_.Login(*sys_.CreateUser("alice"), sys_.labels().Bottom());
    bob_ = sys_.Login(*sys_.CreateUser("bob"), sys_.labels().Bottom());
  }

  SecureSystem sys_;
  Subject alice_, bob_;
};

TEST_F(MbufTest, AllocAppendReadFree) {
  auto id = sys_.mbufs().Alloc(alice_, 16);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sys_.mbufs().Append(alice_, *id, {1, 2, 3}).ok());
  auto data = sys_.mbufs().ReadAll(alice_, *id);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(sys_.mbufs().live_buffers(), 1u);
  ASSERT_TRUE(sys_.mbufs().Free(alice_, *id).ok());
  EXPECT_EQ(sys_.mbufs().live_buffers(), 0u);
}

TEST_F(MbufTest, BuffersArePrincipalPrivate) {
  auto id = sys_.mbufs().Alloc(alice_, 8);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(sys_.mbufs().ReadAll(bob_, *id).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.mbufs().Append(bob_, *id, {9}).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.mbufs().Free(bob_, *id).code(), StatusCode::kPermissionDenied);
  // The system principal may touch anything.
  Subject root = sys_.SystemSubject();
  EXPECT_TRUE(sys_.mbufs().ReadAll(root, *id).ok());
}

TEST_F(MbufTest, UnknownBufferIsNotFound) {
  EXPECT_EQ(sys_.mbufs().ReadAll(alice_, 999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sys_.mbufs().Free(alice_, 999).code(), StatusCode::kNotFound);
}

TEST_F(MbufTest, ChainMovesBytesAndFreesTail) {
  auto head = sys_.mbufs().Alloc(alice_, 8);
  auto tail = sys_.mbufs().Alloc(alice_, 8);
  ASSERT_TRUE(sys_.mbufs().Append(alice_, *head, {1}).ok());
  ASSERT_TRUE(sys_.mbufs().Append(alice_, *tail, {2, 3}).ok());
  ASSERT_TRUE(sys_.mbufs().Chain(alice_, *head, *tail).ok());
  EXPECT_EQ(*sys_.mbufs().ReadAll(alice_, *head), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(sys_.mbufs().ReadAll(alice_, *tail).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sys_.mbufs().live_buffers(), 1u);
}

TEST_F(MbufTest, ChainRespectsOwnership) {
  auto mine = sys_.mbufs().Alloc(alice_, 8);
  auto theirs = sys_.mbufs().Alloc(bob_, 8);
  EXPECT_EQ(sys_.mbufs().Chain(alice_, *mine, *theirs).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(MbufTest, PoolLimitsEnforced) {
  MbufPool::Options tiny;
  tiny.max_buffers = 2;
  tiny.max_total_bytes = 4;
  Kernel kernel;
  MbufPool pool(&kernel, "/svc/tinybuf", tiny);
  ASSERT_TRUE(pool.Install().ok());
  Subject s{kernel.system_principal(), kernel.labels().Bottom(), 1};
  auto a = pool.Alloc(s, 0);
  auto b = pool.Alloc(s, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(pool.Alloc(s, 0).status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.Append(s, *a, {1, 2, 3, 4}).ok());
  EXPECT_EQ(pool.Append(s, *b, {5}).code(), StatusCode::kResourceExhausted);
  // Freeing returns capacity.
  ASSERT_TRUE(pool.Free(s, *a).ok());
  EXPECT_TRUE(pool.Alloc(s, 0).ok());
}

TEST_F(MbufTest, ProcedureInterface) {
  auto id = sys_.Invoke(alice_, "/svc/mbuf/alloc", {Value{int64_t{16}}});
  ASSERT_TRUE(id.ok());
  int64_t handle = std::get<int64_t>(*id);
  ASSERT_TRUE(sys_.Invoke(alice_, "/svc/mbuf/append",
                          {Value{handle}, Value{std::vector<uint8_t>{7, 8}}})
                  .ok());
  auto data = sys_.Invoke(alice_, "/svc/mbuf/read", {Value{handle}});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::get<std::vector<uint8_t>>(*data), (std::vector<uint8_t>{7, 8}));
  auto stats = sys_.Invoke(alice_, "/svc/mbuf/stats", {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(std::get<int64_t>(*stats), 1);
  ASSERT_TRUE(sys_.Invoke(alice_, "/svc/mbuf/free", {Value{handle}}).ok());
}

}  // namespace
}  // namespace xsec
