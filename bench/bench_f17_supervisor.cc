// Experiment F17 — supervised degradation: a stalled extension must not tax
// its neighbors (DESIGN.md "Supervision", MODEL.md §16).
//
// The supervisor's claim is containment: when one extension wedges and is
// quarantined, every OTHER extension's invoke path stays at its baseline
// cost — the stalled peer fails fast at admission instead of holding a
// worker, a credit, or a lock anyone else needs.
//
//   supervised_invoke_baseline      invoke of a healthy extension on a
//                                   supervised kernel — the reference cost
//   supervised_invoke_quarantined_peer
//                                   same invoke while a peer extension sits
//                                   quarantined after real budget timeouts;
//                                   every 64th iteration also pokes the
//                                   quarantined peer to keep its fail-fast
//                                   path on the profile. The gate
//                                   (ci/check_bench_f17.py) requires the
//                                   p50 ratio vs baseline <= 1.10 and the
//                                   counters to prove the trip really
//                                   happened: peer_trips > 0 (breaker
//                                   tripped on timeouts), audited > 0 (the
//                                   trip is in the audit log), and
//                                   health_visible == 1 (the quarantine is
//                                   readable at /sys/monitor/health).
//   quarantine_release_round_trip   full operator cycle per iteration:
//                                   quarantine -> fail-fast -> mediated
//                                   /svc/health/release -> service restored.
//                                   The gate requires round_trip_ok == 1.

#include <benchmark/benchmark.h>

#include <string>

#include "src/base/failpoint.h"
#include "src/core/secure_system.h"

namespace xsec {
namespace {

// A supervised system with two extensions on separate interfaces: "steady"
// (the measured neighbor) and "staller" (the one we wedge). Plus a human
// operator granted administrate on the health mount, so release goes through
// the real mediated /svc/health path.
struct Fixture {
  Fixture() {
    supervisor = *sys.EnableSupervision();
    dev = *sys.CreateUser("bench-dev");
    dev_s = sys.Login(dev, sys.labels().Bottom());

    auto grant = [&](const char* path) {
      NodeId node = *sys.kernel().RegisterInterface(path, sys.system_principal());
      Acl acl;
      acl.AddEntry({AclEntryType::kAllow, dev,
                    AccessMode::kExtend | AccessMode::kExecute | AccessMode::kList});
      (void)sys.name_space().SetAclRef(node, sys.kernel().acls().Create(std::move(acl)));
    };
    grant("/svc/bench/steady");
    grant("/svc/bench/staller");

    ExtensionManifest steady;
    steady.name = "steady";
    steady.exports.push_back(
        {"/svc/bench/steady", [](CallContext&) -> StatusOr<Value> { return Value{true}; }});
    (void)*sys.LoadExtension(steady, dev_s);

    ExtensionManifest staller;
    staller.name = "staller";
    staller.exports.push_back(
        {"/svc/bench/staller", [](CallContext&) -> StatusOr<Value> { return Value{true}; }});
    (void)*sys.LoadExtension(staller, dev_s);

    auto op = *sys.CreateUser("bench-op");
    NodeId mount = *sys.name_space().Lookup("/sys/monitor/health");
    (void)sys.monitor().AddAclEntry(
        sys.SystemSubject(), mount,
        {AclEntryType::kAllow, op,
         AccessMode::kAdministrate | AccessMode::kRead | AccessMode::kList});
    op_s = sys.Login(op, sys.labels().Bottom());
  }

  // Wedges "staller" for real: a tight invoke budget plus an injected stall
  // makes each call overrun as kDeadlineExceeded until the breaker trips.
  bool TripStaller() {
    ExtensionBudget budget;
    budget.invoke_budget_ns = 1'000'000;  // 1 ms
    budget.trip_after = 2;
    budget.probe_after_ns = 3'600'000'000'000ull;  // no half-open probe mid-run
    supervisor->SetBudget("staller", budget);
    if (!FailpointRegistry::Instance().Arm("ext.invoke.staller", "sleep=5ms").ok()) {
      return false;
    }
    for (int i = 0; i < 2; ++i) {
      auto result = sys.Invoke(dev_s, "/svc/bench/staller", {});
      if (result.status().code() != StatusCode::kDeadlineExceeded) {
        return false;
      }
    }
    FailpointRegistry::Instance().DisarmAll();
    auto snap = supervisor->Snapshot("staller");
    return snap.has_value() && snap->state == ExtHealth::kQuarantined;
  }

  SecureSystem sys;
  ExtensionSupervisor* supervisor = nullptr;
  PrincipalId dev;
  Subject dev_s;
  Subject op_s;
};

void BM_SupervisedInvokeBaseline(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    auto result = f.sys.Invoke(f.dev_s, "/svc/bench/steady", {});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SupervisedInvokeBaseline);

void BM_SupervisedInvokeQuarantinedPeer(benchmark::State& state) {
  Fixture f;
  if (!f.TripStaller()) {
    state.SkipWithError("failed to trip the staller via budget timeouts");
    return;
  }
  uint64_t i = 0;
  for (auto _ : state) {
    auto result = f.sys.Invoke(f.dev_s, "/svc/bench/steady", {});
    benchmark::DoNotOptimize(result);
    if ((++i & 63u) == 0) {
      // The quarantined peer stays on the profile: admission answers
      // kUnavailable without running anything or consuming anything.
      auto rejected = f.sys.Invoke(f.dev_s, "/svc/bench/staller", {});
      benchmark::DoNotOptimize(rejected);
    }
  }
  state.SetItemsProcessed(state.iterations());

  auto snap = f.supervisor->Snapshot("staller");
  state.counters["peer_trips"] = snap.has_value() ? static_cast<double>(snap->trips) : 0.0;
  auto trip_records = f.sys.monitor().audit().Query([](const AuditRecord& record) {
    return !record.allowed && record.reason == DenyReason::kQuarantined &&
           record.path == "/sys/monitor/health/ext/staller/state";
  });
  state.counters["audited"] = static_cast<double>(trip_records.size());
  auto visible = f.sys.stats().ReadStat(f.op_s, "/sys/monitor/health/ext/staller/state");
  state.counters["health_visible"] = visible.ok() && *visible == "quarantined" ? 1.0 : 0.0;
}
BENCHMARK(BM_SupervisedInvokeQuarantinedPeer);

void BM_QuarantineReleaseRoundTrip(benchmark::State& state) {
  Fixture f;
  bool ok = true;
  for (auto _ : state) {
    ok = ok && f.supervisor->Quarantine("staller", "bench cycle").ok();
    ok = ok && f.sys.Invoke(f.dev_s, "/svc/bench/staller", {}).status().code() ==
                   StatusCode::kUnavailable;
    auto released = f.sys.Invoke(f.op_s, "/svc/health/release",
                                 {Value{std::string("staller")}, Value{std::string("bench")}});
    ok = ok && released.ok();
    ok = ok && f.sys.Invoke(f.dev_s, "/svc/bench/staller", {}).ok();
    if (!ok) {
      break;
    }
  }
  state.counters["round_trip_ok"] = ok ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuarantineReleaseRoundTrip)->Iterations(200);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
