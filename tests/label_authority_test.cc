#include "src/mac/label_authority.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(LabelAuthorityTest, ImplicitSingleLevelByDefault) {
  LabelAuthority auth;
  EXPECT_EQ(auth.level_count(), 1u);
  auto level = auth.LevelByName("unclassified");
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(*level, 0);
}

TEST(LabelAuthorityTest, DefineLevelsAscending) {
  LabelAuthority auth;
  ASSERT_TRUE(auth.DefineLevels({"others", "organization", "local"}).ok());
  EXPECT_EQ(auth.level_count(), 3u);
  EXPECT_EQ(*auth.LevelByName("others"), 0);
  EXPECT_EQ(*auth.LevelByName("organization"), 1);
  EXPECT_EQ(*auth.LevelByName("local"), 2);
  EXPECT_EQ(auth.LevelByName("bogus").status().code(), StatusCode::kNotFound);
}

TEST(LabelAuthorityTest, DefineLevelsOnlyOnce) {
  LabelAuthority auth;
  ASSERT_TRUE(auth.DefineLevels({"a", "b"}).ok());
  EXPECT_EQ(auth.DefineLevels({"x"}).code(), StatusCode::kFailedPrecondition);
}

TEST(LabelAuthorityTest, DefineLevelsValidation) {
  LabelAuthority auth;
  EXPECT_EQ(auth.DefineLevels({}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(auth.DefineLevels({"a", "a"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(auth.DefineLevels({""}).code(), StatusCode::kInvalidArgument);
}

TEST(LabelAuthorityTest, Categories) {
  LabelAuthority auth;
  auto c0 = auth.DefineCategory("myself");
  auto c1 = auth.DefineCategory("department-1");
  ASSERT_TRUE(c0.ok());
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(*c0, 0u);
  EXPECT_EQ(*c1, 1u);
  EXPECT_EQ(auth.category_count(), 2u);
  EXPECT_EQ(auth.DefineCategory("myself").status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(*auth.CategoryByName("department-1"), 1u);
  EXPECT_EQ(auth.CategoryByName("nope").status().code(), StatusCode::kNotFound);
}

TEST(LabelAuthorityTest, MakeClass) {
  LabelAuthority auth;
  ASSERT_TRUE(auth.DefineLevels({"others", "organization", "local"}).ok());
  (void)*auth.DefineCategory("myself");
  (void)*auth.DefineCategory("department-1");
  auto cls = auth.MakeClass("organization", {"department-1"});
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ(cls->level(), 1);
  EXPECT_TRUE(cls->categories().Test(1));
  EXPECT_FALSE(cls->categories().Test(0));
  EXPECT_FALSE(auth.MakeClass("bogus", {}).ok());
  EXPECT_FALSE(auth.MakeClass("local", {"bogus"}).ok());
}

TEST(LabelAuthorityTest, TopAndBottom) {
  LabelAuthority auth;
  ASSERT_TRUE(auth.DefineLevels({"low", "high"}).ok());
  (void)*auth.DefineCategory("a");
  (void)*auth.DefineCategory("b");
  SecurityClass top = auth.Top();
  SecurityClass bottom = auth.Bottom();
  EXPECT_TRUE(top.Dominates(bottom));
  EXPECT_FALSE(bottom.Dominates(top));
  EXPECT_EQ(top.level(), 1);
  EXPECT_EQ(top.categories().Count(), 2u);
  EXPECT_EQ(bottom.level(), 0);
  EXPECT_EQ(bottom.categories().Count(), 0u);
  // Everything sits between bottom and top.
  auto mid = auth.MakeClass("high", {"a"});
  EXPECT_TRUE(top.Dominates(*mid));
  EXPECT_TRUE(mid->Dominates(bottom));
}

TEST(LabelAuthorityTest, ClassToStringUsesNames) {
  LabelAuthority auth;
  ASSERT_TRUE(auth.DefineLevels({"others", "organization", "local"}).ok());
  (void)*auth.DefineCategory("myself");
  (void)*auth.DefineCategory("department-1");
  auto cls = auth.MakeClass("organization", {"myself", "department-1"});
  EXPECT_EQ(auth.ClassToString(*cls), "organization:{myself,department-1}");
  EXPECT_EQ(auth.ClassToString(auth.Bottom()), "others:{}");
}

TEST(LabelAuthorityTest, LabelStorage) {
  LabelAuthority auth;
  ASSERT_TRUE(auth.DefineLevels({"low", "high"}).ok());
  (void)*auth.DefineCategory("a");
  uint64_t e0 = auth.label_epoch();
  LabelAuthority::LabelRef ref = auth.StoreLabel(*auth.MakeClass("high", {"a"}));
  EXPECT_GT(auth.label_epoch(), e0);
  ASSERT_NE(auth.GetLabel(ref), nullptr);
  EXPECT_EQ(auth.GetLabel(ref)->level(), 1);
  EXPECT_EQ(auth.GetLabel(9999), nullptr);

  uint64_t e1 = auth.label_epoch();
  ASSERT_TRUE(auth.ReplaceLabel(ref, auth.Bottom()).ok());
  EXPECT_GT(auth.label_epoch(), e1);
  EXPECT_EQ(auth.GetLabel(ref)->level(), 0);
  EXPECT_EQ(auth.ReplaceLabel(9999, auth.Bottom()).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace xsec
