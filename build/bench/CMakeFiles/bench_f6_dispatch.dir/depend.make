# Empty dependencies file for bench_f6_dispatch.
# This may be replaced when dependencies are built.
