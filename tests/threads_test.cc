#include "src/services/threads.h"

#include <gtest/gtest.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

class ThreadServiceTest : public ::testing::Test {
 protected:
  ThreadServiceTest() {
    (void)sys_.labels().DefineLevels({"others", "organization", "local"});
    (void)sys_.labels().DefineCategory("department-1");
    (void)sys_.labels().DefineCategory("department-2");
    (void)sys_.labels().DefineCategory("outside");
    dep1_user_ = *sys_.CreateUser("dep1");
    dep2_user_ = *sys_.CreateUser("dep2");
    remote_user_ = *sys_.CreateUser("remote");
    dep1_ = sys_.Login(dep1_user_, *sys_.labels().MakeClass("organization", {"department-1"}));
    dep2_ = sys_.Login(dep2_user_, *sys_.labels().MakeClass("organization", {"department-2"}));
    remote_ = sys_.Login(remote_user_, *sys_.labels().MakeClass("others", {"outside"}));
  }

  SecureSystem sys_;
  PrincipalId dep1_user_, dep2_user_, remote_user_;
  Subject dep1_, dep2_, remote_;
};

TEST_F(ThreadServiceTest, SpawnAndStatus) {
  auto id = sys_.threads().Spawn(dep1_, "worker");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(sys_.threads().live_count(), 1u);
  auto running = sys_.threads().IsRunning(dep1_, *id);
  ASSERT_TRUE(running.ok());
  EXPECT_TRUE(*running);
  // The thread object is a real named node.
  EXPECT_TRUE(sys_.name_space().Lookup("/obj/threads/t1").ok());
}

TEST_F(ThreadServiceTest, OwnerCanKillOwnThread) {
  auto id = sys_.threads().Spawn(dep1_, "worker");
  ASSERT_TRUE(sys_.threads().Kill(dep1_, *id).ok());
  EXPECT_EQ(sys_.threads().live_count(), 0u);
  EXPECT_EQ(sys_.threads().Kill(dep1_, *id).code(), StatusCode::kNotFound);
}

TEST_F(ThreadServiceTest, ThreadMurderIsDenied) {
  // The McGraw/Felten attack: a remote applet tries to kill everyone else's
  // threads. Under xsec the kill is a mediated delete and is denied twice
  // over (MAC: incomparable classes; DAC: spawner-only ACL).
  auto victim1 = sys_.threads().Spawn(dep1_, "v1");
  auto victim2 = sys_.threads().Spawn(dep2_, "v2");
  ASSERT_TRUE(victim1.ok());
  ASSERT_TRUE(victim2.ok());
  EXPECT_EQ(sys_.threads().Kill(remote_, *victim1).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.threads().Kill(remote_, *victim2).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.threads().live_count(), 2u);
}

TEST_F(ThreadServiceTest, SameLevelDifferentCategoryCannotKill) {
  auto victim = sys_.threads().Spawn(dep1_, "v");
  EXPECT_EQ(sys_.threads().Kill(dep2_, *victim).code(), StatusCode::kPermissionDenied);
}

TEST_F(ThreadServiceTest, SamePrincipalDifferentClassCannotKill) {
  // Even the same principal at a lower class cannot destroy its high thread
  // (the strict-overwrite rule requires class equality for delete).
  auto id = sys_.threads().Spawn(dep1_, "high");
  Subject dep1_low = sys_.Login(dep1_user_, sys_.labels().Bottom());
  EXPECT_EQ(sys_.threads().Kill(dep1_low, *id).code(), StatusCode::kPermissionDenied);
}

TEST_F(ThreadServiceTest, ListShowsOnlyVisibleThreads) {
  (void)sys_.threads().Spawn(dep1_, "a");
  (void)sys_.threads().Spawn(dep2_, "b");
  (void)sys_.threads().Spawn(remote_, "c");
  // dep1 sees only its own thread: read access to the others violates flow
  // (incomparable) or DAC (spawner-only ACL).
  auto dep1_view = sys_.threads().List(dep1_);
  ASSERT_TRUE(dep1_view.ok());
  EXPECT_EQ(*dep1_view, (std::vector<int64_t>{1}));
  auto remote_view = sys_.threads().List(remote_);
  ASSERT_TRUE(remote_view.ok());
  EXPECT_EQ(*remote_view, (std::vector<int64_t>{3}));
}

TEST_F(ThreadServiceTest, StatusOfForeignThreadDenied) {
  auto id = sys_.threads().Spawn(dep1_, "private");
  EXPECT_EQ(sys_.threads().IsRunning(dep2_, *id).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ThreadServiceTest, ProcedureInterface) {
  auto id = sys_.Invoke(dep1_, "/svc/threads/spawn", {Value{std::string("w")}});
  ASSERT_TRUE(id.ok());
  auto listed = sys_.Invoke(dep1_, "/svc/threads/list", {});
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(std::get<std::string>(*listed), "1");
  auto status = sys_.Invoke(dep1_, "/svc/threads/status", {Value{std::get<int64_t>(*id)}});
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(std::get<bool>(*status));
  ASSERT_TRUE(sys_.Invoke(dep1_, "/svc/threads/kill", {Value{std::get<int64_t>(*id)}}).ok());
  EXPECT_EQ(sys_.threads().live_count(), 0u);
}

TEST_F(ThreadServiceTest, MessagingFlowsUpOnly) {
  // dep1 spawns a worker; a bottom-class subject may deliver a message into
  // it (append up: ⊥ ⊑ every class), but cannot read the mailbox; dep2
  // (incomparable class) cannot deliver; and the remote applet's `outside`
  // category makes it incomparable too, so even its delivery is denied.
  auto worker = sys_.threads().Spawn(dep1_, "worker");
  ASSERT_TRUE(worker.ok());
  Subject bottom = sys_.Login(remote_user_, *sys_.labels().MakeClass("others", {}));
  EXPECT_TRUE(sys_.threads().SendMessage(bottom, *worker, "ping from below").ok());
  EXPECT_EQ(sys_.threads().SendMessage(dep2_, *worker, "cross-dept").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.threads().SendMessage(remote_, *worker, "outside-cat").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.threads().ReceiveMessages(bottom, *worker).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.threads().PendingMessages(bottom, *worker).status().code(),
            StatusCode::kPermissionDenied);
  // The owner drains its mailbox.
  EXPECT_EQ(*sys_.threads().PendingMessages(dep1_, *worker), 1);
  auto messages = sys_.threads().ReceiveMessages(dep1_, *worker);
  ASSERT_TRUE(messages.ok());
  EXPECT_EQ(*messages, (std::vector<std::string>{"ping from below"}));
  EXPECT_EQ(*sys_.threads().PendingMessages(dep1_, *worker), 0);
}

TEST_F(ThreadServiceTest, MessagingToDeadOrMissingThreads) {
  auto worker = sys_.threads().Spawn(dep1_, "w");
  ASSERT_TRUE(sys_.threads().Kill(dep1_, *worker).ok());
  EXPECT_EQ(sys_.threads().SendMessage(dep1_, *worker, "x").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(sys_.threads().ReceiveMessages(dep1_, 999).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ThreadServiceTest, MessagingProcedureInterface) {
  auto id = sys_.threads().Spawn(dep1_, "w");
  Subject bottom = sys_.Login(remote_user_, *sys_.labels().MakeClass("others", {}));
  ASSERT_TRUE(sys_.Invoke(bottom, "/svc/threads/send",
                          {Value{*id}, Value{std::string("hello")}})
                  .ok());
  auto drained = sys_.Invoke(dep1_, "/svc/threads/recv", {Value{*id}});
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(std::get<std::string>(*drained), "hello");
}

TEST_F(ThreadServiceTest, OwnerCanTightenMailboxAcl) {
  auto worker = sys_.threads().Spawn(dep1_, "w");
  // The spawner revokes the world's delivery right with a deny entry.
  NodeId node = *sys_.name_space().Lookup("/obj/threads/t1");
  ASSERT_TRUE(sys_.monitor()
                  .AddAclEntry(dep1_, node,
                               {AclEntryType::kDeny, *sys_.principals().FindByName("remote"),
                                AccessModeSet(AccessMode::kWriteAppend)})
                  .ok());
  EXPECT_EQ(sys_.threads().SendMessage(remote_, *worker, "spam").code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ThreadServiceTest, KilledThreadNodeDisappears) {
  auto id = sys_.threads().Spawn(dep1_, "gone");
  ASSERT_TRUE(sys_.threads().Kill(dep1_, *id).ok());
  EXPECT_FALSE(sys_.name_space().Lookup("/obj/threads/t1").ok());
  auto running = sys_.threads().IsRunning(dep1_, *id);
  ASSERT_TRUE(running.ok());
  EXPECT_FALSE(*running);
}

}  // namespace
}  // namespace xsec
