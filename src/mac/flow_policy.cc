#include "src/mac/flow_policy.h"

#include "src/base/strings.h"

namespace xsec {

std::string FlowVerdict::ToString() const {
  if (allowed) {
    return "flow-ok";
  }
  return StrFormat("flow-violation(%s)",
                   std::string(AccessModeName(*violating_mode)).c_str());
}

AccessModeSet FlowAllowedMask(bool subject_dominates_object, bool object_dominates_subject,
                              const FlowPolicyOptions& options) {
  AccessModeSet mask;
  if (subject_dominates_object) {
    // Simple security property: observation requires S ⊒ O.
    mask |= AccessMode::kRead | AccessMode::kList | AccessMode::kExecute | AccessMode::kExtend;
  }
  if (object_dominates_subject) {
    // ⋆-property: modification requires O ⊒ S.
    mask |= AccessModeSet(AccessMode::kWriteAppend);
    if (!options.write_up_requires_append || subject_dominates_object) {
      // Destructive writes additionally require S ⊒ O (i.e. S = O) when the
      // paper's "blind overwrite" restriction is on.
      mask |= AccessMode::kWrite | AccessMode::kDelete;
    }
    if (subject_dominates_object) {
      mask |= AccessModeSet(AccessMode::kAdministrate);  // S = O
    }
  }
  return mask;
}

bool FlowPolicy::ModeAllowed(const SecurityClass& subject, const SecurityClass& object,
                             AccessMode mode) const {
  return FlowAllowedMask(subject.Dominates(object), object.Dominates(subject), options_)
      .Contains(mode);
}

FlowVerdict FlowPolicy::Check(const SecurityClass& subject, const SecurityClass& object,
                              AccessModeSet requested) const {
  // Hot path: two dominance checks yield the complete allowed-mode mask; the
  // violating set falls out of one AND. The reported mode is the lowest
  // violating bit, matching a mode-by-mode scan in ascending bit order.
  if (requested.empty()) {
    return FlowVerdict{};
  }
  AccessModeSet allowed =
      FlowAllowedMask(subject.Dominates(object), object.Dominates(subject), options_);
  uint32_t violating = requested.bits() & ~allowed.bits();
  if (violating == 0) {
    return FlowVerdict{};
  }
  return FlowVerdict{false, static_cast<AccessMode>(violating & (~violating + 1))};
}

}  // namespace xsec
