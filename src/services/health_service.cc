#include "src/services/health_service.h"

#include <utility>

#include "src/base/strings.h"
#include "src/naming/path.h"

namespace xsec {

namespace {

std::string RenderSnapshotLine(const ExtensionSupervisor::ExtSnapshot& snap) {
  return StrFormat("%s %s invokes=%llu failures=%llu timeouts=%llu trips=%llu "
                   "releases=%llu rejected=%llu inflight=%u",
                   snap.name.c_str(), std::string(ExtHealthName(snap.state)).c_str(),
                   static_cast<unsigned long long>(snap.invokes),
                   static_cast<unsigned long long>(snap.failures),
                   static_cast<unsigned long long>(snap.timeouts),
                   static_cast<unsigned long long>(snap.trips),
                   static_cast<unsigned long long>(snap.releases),
                   static_cast<unsigned long long>(snap.rejected), snap.inflight);
}

}  // namespace

HealthService::HealthService(Kernel* kernel, ExtensionSupervisor* supervisor,
                             HealthServiceOptions options)
    : kernel_(kernel), supervisor_(supervisor), options_(std::move(options)) {}

Status HealthService::Install() {
  PrincipalId system = kernel_->system_principal();
  // The stats plane may already have created the mount directory as an
  // intermediate of its health leaves; adopt it in that case.
  auto mount = kernel_->name_space().Lookup(options_.mount_path);
  if (!mount.ok()) {
    mount = kernel_->name_space().BindPath(options_.mount_path, NodeKind::kDirectory, system);
    if (!mount.ok()) {
      return mount.status();
    }
  }
  // Fail-closed: releasing a quarantined extension or arming lockdown is a
  // way to override the supervisor's containment, so the mount root carries
  // an own ACL granting the system principal only. Operations roles are
  // widened with ordinary AddAclEntry calls.
  Acl restricted;
  restricted.AddEntry({AclEntryType::kAllow, system,
                       AccessMode::kRead | AccessMode::kList | AccessMode::kAdministrate});
  XSEC_RETURN_IF_ERROR(
      kernel_->name_space().SetAclRef(*mount, kernel_->acls().Create(std::move(restricted))));

  auto proc = [this, system](std::string_view name, HandlerFn fn) -> Status {
    auto node =
        kernel_->RegisterProcedure(JoinPath(options_.service_path, name), system, std::move(fn));
    return node.ok() ? OkStatus() : node.status();
  };
  // An optional trailing "why" argument; absent renders as empty.
  auto arg_why = [](const Args& args, size_t index) -> std::string {
    auto why = ArgString(args, index);
    return why.ok() ? std::move(*why) : std::string();
  };

  XSEC_RETURN_IF_ERROR(proc("state", [this](CallContext& ctx) -> StatusOr<Value> {
    auto rendered = State(*ctx.subject);
    if (!rendered.ok()) {
      return rendered.status();
    }
    return Value{std::move(*rendered)};
  }));
  XSEC_RETURN_IF_ERROR(proc("list", [this](CallContext& ctx) -> StatusOr<Value> {
    auto rendered = List(*ctx.subject);
    if (!rendered.ok()) {
      return rendered.status();
    }
    return Value{std::move(*rendered)};
  }));
  XSEC_RETURN_IF_ERROR(proc("read", [this](CallContext& ctx) -> StatusOr<Value> {
    auto name = ArgString(ctx.args, 0);
    if (!name.ok()) {
      return name.status();
    }
    auto rendered = ReadExtension(*ctx.subject, *name);
    if (!rendered.ok()) {
      return rendered.status();
    }
    return Value{std::move(*rendered)};
  }));
  XSEC_RETURN_IF_ERROR(proc("release", [this, arg_why](CallContext& ctx) -> StatusOr<Value> {
    auto name = ArgString(ctx.args, 0);
    if (!name.ok()) {
      return name.status();
    }
    auto rendered = Release(*ctx.subject, *name, arg_why(ctx.args, 1));
    if (!rendered.ok()) {
      return rendered.status();
    }
    return Value{std::move(*rendered)};
  }));
  XSEC_RETURN_IF_ERROR(proc("quarantine", [this, arg_why](CallContext& ctx) -> StatusOr<Value> {
    auto name = ArgString(ctx.args, 0);
    if (!name.ok()) {
      return name.status();
    }
    auto rendered = ForceQuarantine(*ctx.subject, *name, arg_why(ctx.args, 1));
    if (!rendered.ok()) {
      return rendered.status();
    }
    return Value{std::move(*rendered)};
  }));
  return proc("lockdown", [this, arg_why](CallContext& ctx) -> StatusOr<Value> {
    auto toggle = ArgString(ctx.args, 0);
    if (!toggle.ok()) {
      return toggle.status();
    }
    if (*toggle != "on" && *toggle != "off") {
      return InvalidArgumentError("lockdown expects \"on\" or \"off\"");
    }
    auto rendered = SetLockdown(*ctx.subject, *toggle == "on", arg_why(ctx.args, 1));
    if (!rendered.ok()) {
      return rendered.status();
    }
    return Value{std::move(*rendered)};
  });
}

StatusOr<NodeId> HealthService::EnsureLeaf(std::string_view name) {
  if (!IsValidComponent(name)) {
    return InvalidArgumentError(
        StrFormat("'%s' is not a valid extension name", std::string(name).c_str()));
  }
  std::string full = JoinPath(JoinPath(JoinPath(options_.mount_path, "ext"), name), "state");
  auto existing = kernel_->name_space().Lookup(full);
  if (existing.ok()) {
    return existing;
  }
  return kernel_->name_space().BindPath(full, NodeKind::kFile, kernel_->system_principal());
}

StatusOr<std::string> HealthService::State(Subject& subject) {
  auto mount = kernel_->name_space().Lookup(options_.mount_path);
  if (!mount.ok()) {
    return mount.status();
  }
  Decision decision = kernel_->monitor().Check(subject, *mount, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return StrFormat("state %s\nquarantined %zu\nstuck_shards %zu\nlockdown %d\n",
                   std::string(SystemHealthName(supervisor_->system_health())).c_str(),
                   supervisor_->quarantined_count(), supervisor_->stuck_shards(),
                   supervisor_->system_health() == SystemHealth::kLockdown ? 1 : 0);
}

StatusOr<std::string> HealthService::List(Subject& subject) {
  auto mount = kernel_->name_space().Lookup(options_.mount_path);
  if (!mount.ok()) {
    return mount.status();
  }
  Decision decision = kernel_->monitor().Check(subject, *mount, AccessMode::kList);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  std::string out;
  for (const ExtensionSupervisor::ExtSnapshot& snap : supervisor_->SnapshotAll()) {
    out += RenderSnapshotLine(snap);
    out += '\n';
  }
  return out;
}

StatusOr<std::string> HealthService::ReadExtension(Subject& subject, std::string_view name) {
  auto node = EnsureLeaf(name);
  if (!node.ok()) {
    return node.status();
  }
  Decision decision = kernel_->monitor().Check(subject, *node, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  auto snap = supervisor_->Snapshot(name);
  if (!snap.has_value()) {
    return NotFoundError(
        StrFormat("'%s' is not supervised", std::string(name).c_str()));
  }
  return RenderSnapshotLine(*snap);
}

StatusOr<std::string> HealthService::Release(Subject& subject, std::string_view name,
                                             std::string_view why) {
  auto node = EnsureLeaf(name);
  if (!node.ok()) {
    return node.status();
  }
  // The real monitor path: the administrate decision — allow or deny — is
  // counted and audited, so every release of a quarantine is on the record
  // alongside the supervisor's own transition audit.
  Decision decision = kernel_->monitor().Check(subject, *node, AccessMode::kAdministrate);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  XSEC_RETURN_IF_ERROR(supervisor_->Release(name, why));
  auto snap = supervisor_->Snapshot(name);
  return std::string(snap ? ExtHealthName(snap->state) : "healthy");
}

StatusOr<std::string> HealthService::ForceQuarantine(Subject& subject, std::string_view name,
                                                     std::string_view why) {
  auto node = EnsureLeaf(name);
  if (!node.ok()) {
    return node.status();
  }
  Decision decision = kernel_->monitor().Check(subject, *node, AccessMode::kAdministrate);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  XSEC_RETURN_IF_ERROR(supervisor_->Quarantine(name, why));
  auto snap = supervisor_->Snapshot(name);
  return std::string(snap ? ExtHealthName(snap->state) : "quarantined");
}

StatusOr<std::string> HealthService::SetLockdown(Subject& subject, bool on,
                                                 std::string_view why) {
  auto mount = kernel_->name_space().Lookup(options_.mount_path);
  if (!mount.ok()) {
    return mount.status();
  }
  Decision decision = kernel_->monitor().Check(subject, *mount, AccessMode::kAdministrate);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  supervisor_->ArmLockdown(on, why);
  return std::string(SystemHealthName(supervisor_->system_health()));
}

}  // namespace xsec
