file(REMOVE_RECURSE
  "CMakeFiles/xsec_monitor.dir/audit.cc.o"
  "CMakeFiles/xsec_monitor.dir/audit.cc.o.d"
  "CMakeFiles/xsec_monitor.dir/decision_cache.cc.o"
  "CMakeFiles/xsec_monitor.dir/decision_cache.cc.o.d"
  "CMakeFiles/xsec_monitor.dir/reference_monitor.cc.o"
  "CMakeFiles/xsec_monitor.dir/reference_monitor.cc.o.d"
  "libxsec_monitor.a"
  "libxsec_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
