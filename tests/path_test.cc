#include "src/naming/path.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(PathTest, ParseRoot) {
  auto c = ParsePath("/");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->empty());
}

TEST(PathTest, ParseNested) {
  auto c = ParsePath("/svc/fs/read");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, (std::vector<std::string>{"svc", "fs", "read"}));
}

TEST(PathTest, RejectsRelative) {
  EXPECT_FALSE(ParsePath("svc/fs").ok());
  EXPECT_FALSE(ParsePath("").ok());
}

TEST(PathTest, RejectsTrailingSlash) { EXPECT_FALSE(ParsePath("/svc/").ok()); }

TEST(PathTest, RejectsEmptyComponent) { EXPECT_FALSE(ParsePath("/svc//fs").ok()); }

TEST(PathTest, RejectsDotComponents) {
  EXPECT_FALSE(ParsePath("/svc/./fs").ok());
  EXPECT_FALSE(ParsePath("/svc/../fs").ok());
}

TEST(PathTest, ComponentValidity) {
  EXPECT_TRUE(IsValidComponent("fs"));
  EXPECT_TRUE(IsValidComponent("a-b_c.1"));
  EXPECT_FALSE(IsValidComponent(""));
  EXPECT_FALSE(IsValidComponent("."));
  EXPECT_FALSE(IsValidComponent(".."));
  EXPECT_FALSE(IsValidComponent("a/b"));
  // Whitespace and control characters are rejected: names must survive the
  // whitespace-delimited policy format unambiguously.
  EXPECT_FALSE(IsValidComponent("a b"));
  EXPECT_FALSE(IsValidComponent("a\tb"));
  EXPECT_FALSE(IsValidComponent(std::string("a\x01b", 3)));
}

TEST(PathTest, JoinPath) {
  EXPECT_EQ(JoinPath("/svc", "fs"), "/svc/fs");
  EXPECT_EQ(JoinPath("/", "svc"), "/svc");
}

TEST(PathTest, ParentPath) {
  EXPECT_EQ(ParentPath("/svc/fs/read"), "/svc/fs");
  EXPECT_EQ(ParentPath("/svc"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
}

TEST(PathTest, Basename) {
  EXPECT_EQ(Basename("/svc/fs/read"), "read");
  EXPECT_EQ(Basename("/svc"), "svc");
  EXPECT_EQ(Basename("/"), "");
}

}  // namespace
}  // namespace xsec
