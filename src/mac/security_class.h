// Security classes for mandatory access control (paper §2.2).
//
// Following Bell-LaPadula and Denning's lattice model, a security class is
// "the product of a linearly ordered set of levels of trust and of a subset
// out of a set of categories (where all possible subsets are partially
// ordered by subset inclusion)".
//
// The class lattice:
//   (l1, C1) dominates (l2, C2)  iff  l1 >= l2 and C2 ⊆ C1
//   join = (max level, union of categories)   — least upper bound
//   meet = (min level, intersection)          — greatest lower bound
//
// The property tests check the lattice laws; experiment F3 measures the
// dominance-check cost as a function of category-set width.

#ifndef XSEC_SRC_MAC_SECURITY_CLASS_H_
#define XSEC_SRC_MAC_SECURITY_CLASS_H_

#include <cstdint>
#include <string>

#include "src/base/bitset.h"

namespace xsec {

// Index into the label authority's ordered level list; higher = more trusted.
using TrustLevel = uint16_t;

// Category sets are bitsets over category ids issued by the label authority.
using CategorySet = DynamicBitset;

class SecurityClass {
 public:
  SecurityClass() = default;
  SecurityClass(TrustLevel level, CategorySet categories)
      : level_(level), categories_(std::move(categories)) {}

  TrustLevel level() const { return level_; }
  const CategorySet& categories() const { return categories_; }

  // Partial order over classes.
  bool Dominates(const SecurityClass& other) const {
    return level_ >= other.level_ && other.categories_.IsSubsetOf(categories_);
  }
  bool StrictlyDominates(const SecurityClass& other) const {
    return Dominates(other) && !(*this == other);
  }
  // Neither dominates the other.
  bool IncomparableWith(const SecurityClass& other) const {
    return !Dominates(other) && !other.Dominates(*this);
  }

  // Lattice operations.
  SecurityClass Join(const SecurityClass& other) const {
    return SecurityClass(level_ > other.level_ ? level_ : other.level_,
                         categories_.Union(other.categories_));
  }
  SecurityClass Meet(const SecurityClass& other) const {
    return SecurityClass(level_ < other.level_ ? level_ : other.level_,
                         categories_.Intersection(other.categories_));
  }

  bool operator==(const SecurityClass& other) const {
    return level_ == other.level_ && categories_ == other.categories_;
  }

  uint64_t Hash() const {
    return categories_.Hash() * 31 + level_;
  }

  // "(2,{0,3})" — numeric form; the label authority renders names.
  std::string ToString() const;

 private:
  TrustLevel level_ = 0;
  CategorySet categories_;
};

}  // namespace xsec

#endif  // XSEC_SRC_MAC_SECURITY_CLASS_H_
