// Experiment F8 — decision-cache scaling (DESIGN.md §5).
//
// Economy of mechanism (§3) only works if the one central facility is fast;
// the decision cache is what makes it so. The figure sweeps:
//
//   WorkingSet/<n>        round-robin over n (subject,object) pairs, cache on
//   WorkingSetUncached/<n>   same stream with the cache disabled
//   InvalidationEvery/<k> one ACL mutation every k checks (stamp
//                         invalidation forces re-evaluation)
//
// Expected shape: cached cost is flat until the working set spills the
// direct-mapped table; uncached cost is flat but several times higher;
// mutation frequency linearly degrades toward the uncached line.

#include <benchmark/benchmark.h>

#include <memory>

#include <string>
#include <vector>

#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

struct CacheFixture {
  CacheFixture(size_t objects, bool cache_enabled, size_t acl_entries = 16) {
    MonitorOptions options;
    options.cache_enabled = cache_enabled;
    options.audit_policy = AuditPolicy::kOff;
    options.cache_slots = 8192;
    monitor = std::make_unique<ReferenceMonitor>(&ns, &acls, &principals, &labels, options);
    user = *principals.CreateUser("u");
    // A moderately expensive ACL so cache hits visibly pay off.
    Acl acl;
    for (size_t i = 0; i < acl_entries; ++i) {
      acl.AddEntry({AclEntryType::kAllow, PrincipalId{1000 + static_cast<uint32_t>(i)},
                    AccessModeSet(AccessMode::kRead)});
    }
    acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
    AclStore::AclRef shared = acls.Create(std::move(acl));
    for (size_t i = 0; i < objects; ++i) {
      NodeId node = *ns.BindPath("/o/n" + std::to_string(i), NodeKind::kObject, user);
      (void)ns.SetAclRef(node, shared);
      nodes.push_back(node);
    }
    subject = Subject{user, labels.Bottom(), 1};
  }

  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  std::unique_ptr<ReferenceMonitor> monitor;
  PrincipalId user;
  std::vector<NodeId> nodes;
  Subject subject;
};

void WorkingSet(benchmark::State& state, bool cached) {
  CacheFixture f(static_cast<size_t>(state.range(0)), cached);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.monitor->Check(f.subject, f.nodes[i % f.nodes.size()], AccessMode::kRead));
    ++i;
  }
  if (cached) {
    // hits + misses == total probes (stale probes count inside misses, with
    // stale_hits as a sub-counter), so this is the true hit rate.
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(f.monitor->cache().hits()) /
        static_cast<double>(f.monitor->cache().hits() + f.monitor->cache().misses()));
  }
}

void BM_WorkingSet(benchmark::State& state) { WorkingSet(state, true); }
void BM_WorkingSetUncached(benchmark::State& state) { WorkingSet(state, false); }
BENCHMARK(BM_WorkingSet)->RangeMultiplier(4)->Range(16, 65536);
BENCHMARK(BM_WorkingSetUncached)->RangeMultiplier(4)->Range(16, 16384);

void BM_InvalidationEvery(benchmark::State& state) {
  CacheFixture f(256, /*cache_enabled=*/true);
  int period = static_cast<int>(state.range(0));
  int64_t i = 0;
  AclStore::AclRef mutated = f.acls.Create(Acl());
  for (auto _ : state) {
    if (i % period == 0) {
      // Any store mutation bumps the stamp and invalidates everything.
      (void)f.acls.AddEntry(mutated, {AclEntryType::kAllow, f.user,
                                      AccessModeSet(AccessMode::kList)});
    }
    benchmark::DoNotOptimize(
        f.monitor->Check(f.subject, f.nodes[i % f.nodes.size()], AccessMode::kRead));
    ++i;
  }
}
BENCHMARK(BM_InvalidationEvery)->RangeMultiplier(4)->Range(1, 4096);

void BM_DeepInheritanceUncachedVsCached(benchmark::State& state) {
  // The effective-ACL walk is what the cache amortizes; this case uses a
  // 24-deep node whose ACL lives at the root.
  bool cached = state.range(0) == 1;
  MonitorOptions options;
  options.cache_enabled = cached;
  options.audit_policy = AuditPolicy::kOff;
  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  ReferenceMonitor monitor(&ns, &acls, &principals, &labels, options);
  PrincipalId user = *principals.CreateUser("u");
  std::string path;
  for (int i = 0; i < 24; ++i) {
    path += "/d" + std::to_string(i);
  }
  NodeId leaf = *ns.BindPath(path, NodeKind::kFile, user);
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
  (void)ns.SetAclRef(ns.root(), acls.Create(std::move(acl)));
  Subject subject{user, labels.Bottom(), 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.Check(subject, leaf, AccessMode::kRead));
  }
}
BENCHMARK(BM_DeepInheritanceUncachedVsCached)->Arg(0)->Arg(1);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
