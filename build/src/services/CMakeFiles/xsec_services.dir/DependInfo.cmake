
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/log.cc" "src/services/CMakeFiles/xsec_services.dir/log.cc.o" "gcc" "src/services/CMakeFiles/xsec_services.dir/log.cc.o.d"
  "/root/repo/src/services/mbuf.cc" "src/services/CMakeFiles/xsec_services.dir/mbuf.cc.o" "gcc" "src/services/CMakeFiles/xsec_services.dir/mbuf.cc.o.d"
  "/root/repo/src/services/memfs.cc" "src/services/CMakeFiles/xsec_services.dir/memfs.cc.o" "gcc" "src/services/CMakeFiles/xsec_services.dir/memfs.cc.o.d"
  "/root/repo/src/services/netstack.cc" "src/services/CMakeFiles/xsec_services.dir/netstack.cc.o" "gcc" "src/services/CMakeFiles/xsec_services.dir/netstack.cc.o.d"
  "/root/repo/src/services/threads.cc" "src/services/CMakeFiles/xsec_services.dir/threads.cc.o" "gcc" "src/services/CMakeFiles/xsec_services.dir/threads.cc.o.d"
  "/root/repo/src/services/vfs.cc" "src/services/CMakeFiles/xsec_services.dir/vfs.cc.o" "gcc" "src/services/CMakeFiles/xsec_services.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extsys/CMakeFiles/xsec_extsys.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/xsec_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/xsec_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/xsec_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/dac/CMakeFiles/xsec_dac.dir/DependInfo.cmake"
  "/root/repo/build/src/principal/CMakeFiles/xsec_principal.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xsec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
