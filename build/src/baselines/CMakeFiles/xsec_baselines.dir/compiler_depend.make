# Empty compiler generated dependencies file for xsec_baselines.
# This may be replaced when dependencies are built.
