# Empty compiler generated dependencies file for applet_loader.
# This may be replaced when dependencies are built.
