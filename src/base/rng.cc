#include "src/base/rng.h"

#include <cassert>

namespace xsec {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound != 0);
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::NextBool(uint32_t numerator, uint32_t denominator) {
  assert(denominator != 0);
  return NextBelow(denominator) < numerator;
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

}  // namespace xsec
