// The value type passed across extension/service boundaries.
//
// Cross-boundary arguments and results are plain data (no pointers), so the
// only way an extension can touch system state is through a mediated call —
// this is the construction that substitutes for the type safety the paper
// gets from Modula-3/Java (see DESIGN.md, substitutions table).

#ifndef XSEC_SRC_EXTSYS_VALUE_H_
#define XSEC_SRC_EXTSYS_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/base/status.h"

namespace xsec {

using Value = std::variant<std::monostate, bool, int64_t, std::string, std::vector<uint8_t>>;
using Args = std::vector<Value>;

// Typed argument accessors; return INVALID_ARGUMENT on arity or type errors.
StatusOr<int64_t> ArgInt(const Args& args, size_t index);
StatusOr<bool> ArgBool(const Args& args, size_t index);
StatusOr<std::string> ArgString(const Args& args, size_t index);
StatusOr<std::vector<uint8_t>> ArgBytes(const Args& args, size_t index);

// Debug rendering ("[42, \"x\"]").
std::string ValueToString(const Value& value);
std::string ArgsToString(const Args& args);

}  // namespace xsec

#endif  // XSEC_SRC_EXTSYS_VALUE_H_
