// Experiment F9 (ablation) — the cost of protecting every level of the
// hierarchy (DESIGN.md §5, §2.3 of the paper).
//
// The paper wants "access to each level of the hierarchy … protected":
// resolving /a/b/c checks `list` on /, /a and /a/b before touching c. This
// figure quantifies that choice by sweeping path depth with traversal
// checking on and off (and with the decision cache on and off), so the
// per-level cost and the cache's ability to absorb it are both visible.
//
// Expected shape: with traversal off, CheckPath is ~flat in depth (one name
// resolution per component but a single access check); with traversal on it
// grows linearly with one extra (cached: cheap) check per level.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

struct TraversalFixture {
  TraversalFixture(int depth, bool traversal, bool cache) {
    MonitorOptions options;
    options.check_traversal = traversal;
    options.cache_enabled = cache;
    options.audit_policy = AuditPolicy::kOff;
    monitor = std::make_unique<ReferenceMonitor>(&ns, &acls, &principals, &labels, options);
    user = *principals.CreateUser("u");
    for (int i = 0; i < depth; ++i) {
      path += "/d" + std::to_string(i);
    }
    path += "/leaf";
    (void)ns.BindPath(path, NodeKind::kFile, user);
    // One root ACL grants list+read everywhere (inherited).
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user, AccessMode::kList | AccessMode::kRead});
    (void)ns.SetAclRef(ns.root(), acls.Create(std::move(acl)));
    subject = Subject{user, labels.Bottom(), 1};
  }

  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  std::unique_ptr<ReferenceMonitor> monitor;
  PrincipalId user;
  std::string path;
  Subject subject;
};

void RunCheckPath(benchmark::State& state, bool traversal, bool cache) {
  TraversalFixture f(static_cast<int>(state.range(0)), traversal, cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.monitor->CheckPath(f.subject, f.path, AccessMode::kRead));
  }
  state.SetComplexityN(state.range(0));
}

void BM_PathNoTraversal(benchmark::State& state) { RunCheckPath(state, false, true); }
void BM_PathTraversalCached(benchmark::State& state) { RunCheckPath(state, true, true); }
void BM_PathTraversalUncached(benchmark::State& state) { RunCheckPath(state, true, false); }

BENCHMARK(BM_PathNoTraversal)->RangeMultiplier(2)->Range(1, 32)->Complexity(benchmark::oN);
BENCHMARK(BM_PathTraversalCached)->RangeMultiplier(2)->Range(1, 32)->Complexity(benchmark::oN);
BENCHMARK(BM_PathTraversalUncached)
    ->RangeMultiplier(2)
    ->Range(1, 32)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
