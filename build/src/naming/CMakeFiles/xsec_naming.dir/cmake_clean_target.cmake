file(REMOVE_RECURSE
  "libxsec_naming.a"
)
