#include "src/extsys/value.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(ValueTest, TypedAccessors) {
  Args args = {Value{int64_t{42}}, Value{std::string("hi")}, Value{true},
               Value{std::vector<uint8_t>{1, 2, 3}}};
  EXPECT_EQ(*ArgInt(args, 0), 42);
  EXPECT_EQ(*ArgString(args, 1), "hi");
  EXPECT_EQ(*ArgBool(args, 2), true);
  EXPECT_EQ(ArgBytes(args, 3)->size(), 3u);
}

TEST(ValueTest, ArityErrors) {
  Args args = {Value{int64_t{1}}};
  EXPECT_EQ(ArgInt(args, 1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArgString(args, 5).status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, TypeErrors) {
  Args args = {Value{std::string("not-an-int")}};
  EXPECT_EQ(ArgInt(args, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArgBool(args, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArgBytes(args, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(ArgString(args, 0).ok());
}

TEST(ValueTest, Rendering) {
  EXPECT_EQ(ValueToString(Value{}), "null");
  EXPECT_EQ(ValueToString(Value{true}), "true");
  EXPECT_EQ(ValueToString(Value{int64_t{-3}}), "-3");
  EXPECT_EQ(ValueToString(Value{std::string("x")}), "\"x\"");
  EXPECT_EQ(ValueToString(Value{std::vector<uint8_t>{1, 2}}), "<2 bytes>");
  EXPECT_EQ(ArgsToString({Value{int64_t{1}}, Value{std::string("a")}}), "[1, \"a\"]");
  EXPECT_EQ(ArgsToString({}), "[]");
}

}  // namespace
}  // namespace xsec
