// Experiment F6 — event dispatch with class-based handler selection
// (DESIGN.md §5).
//
// The paper's rule — "the right extension is selected based on the security
// class of the caller" (§2.2) — costs one Dominates() per registered
// handler. The figure sweeps the handler count for:
//
//   FirstRegistered/<n>   plain dispatch (baseline; ignores classes)
//   ClassSelected/<n>     the paper's rule
//   Broadcast/<n>         all eligible handlers (SPIN-style multicast),
//                         measured per selection, not per handler run
//
// Expected shape: FirstRegistered is O(1); ClassSelected and Broadcast are
// linear in n with a small per-handler constant (~one lattice check).

#include <benchmark/benchmark.h>

#include "src/extsys/dispatcher.h"

namespace xsec {
namespace {

SecurityClass Cls(TrustLevel level, size_t categories = 4) {
  CategorySet cats(categories);
  for (size_t c = 0; c < level && c < categories; ++c) {
    cats.Set(c);
  }
  return SecurityClass(level, std::move(cats));
}

EventDispatcher MakeDispatcher(int handlers, NodeId iface) {
  EventDispatcher dispatcher;
  for (int i = 0; i < handlers; ++i) {
    dispatcher.Register(iface, ExtensionId{static_cast<uint32_t>(i)},
                        Cls(static_cast<TrustLevel>(i % 4)),
                        [](CallContext&) -> StatusOr<Value> { return Value{}; });
  }
  return dispatcher;
}

void BM_FirstRegistered(benchmark::State& state) {
  NodeId iface{1};
  EventDispatcher dispatcher = MakeDispatcher(static_cast<int>(state.range(0)), iface);
  SecurityClass caller = Cls(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dispatcher.Select(iface, caller, DispatchMode::kFirstRegistered));
  }
}
BENCHMARK(BM_FirstRegistered)->RangeMultiplier(4)->Range(1, 256);

void BM_ClassSelected(benchmark::State& state) {
  NodeId iface{1};
  EventDispatcher dispatcher = MakeDispatcher(static_cast<int>(state.range(0)), iface);
  SecurityClass caller = Cls(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dispatcher.Select(iface, caller, DispatchMode::kClassSelected));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClassSelected)->RangeMultiplier(4)->Range(1, 256)->Complexity(benchmark::oN);

void BM_Broadcast(benchmark::State& state) {
  NodeId iface{1};
  EventDispatcher dispatcher = MakeDispatcher(static_cast<int>(state.range(0)), iface);
  SecurityClass caller = Cls(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatcher.Select(iface, caller, DispatchMode::kBroadcast));
  }
}
BENCHMARK(BM_Broadcast)->RangeMultiplier(4)->Range(1, 256);

void BM_ClassSelectedLowCaller(benchmark::State& state) {
  // A bottom caller is eligible for only the level-0 handlers; selection
  // still scans every record.
  NodeId iface{1};
  EventDispatcher dispatcher = MakeDispatcher(static_cast<int>(state.range(0)), iface);
  SecurityClass caller = Cls(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dispatcher.Select(iface, caller, DispatchMode::kClassSelected));
  }
}
BENCHMARK(BM_ClassSelectedLowCaller)->RangeMultiplier(4)->Range(1, 256);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
