#!/usr/bin/env python3
"""Regression gate for the F1 mediation figures.

Compares a fresh BENCH_f1.json against the committed baseline
(ci/bench_f1_baseline.json) on the *stats overhead ratio*:

    ratio = median metric(BM_CheckNode_DacMacCached)
          / median metric(BM_CheckNode_DacMacCached_NoStats)

The ratio is the cached-check cost with MonitorStats on, relative to the
same path with stats compiled out of the decision — i.e. exactly the
hot-path budget the stats layer is held to. Using the ratio (not absolute
numbers) keeps the gate portable across machines: both measurements come
from the same run, so CPU speed and virtualization noise cancel.

The metric is per-iteration instructions retired when BOTH files carry the
INSTRUCTIONS perf counter for both benchmarks (run_checks.sh requests it
via --benchmark_perf_counters=INSTRUCTIONS); an instruction count is
deterministic, so the gate is immune to frequency scaling and scheduler
noise. Files without the counter — libpfm-less builds, locked-down
perf_event — fall back to median cpu_time.

Fails (exit 1) when the fresh ratio exceeds the baseline ratio by more
than --tolerance (default 10%).

Usage: check_bench_f1.py <fresh.json> <baseline.json> [--tolerance 0.10]
"""

import argparse
import json
import statistics
import sys

CACHED = "BM_CheckNode_DacMacCached"
NOSTATS = "BM_CheckNode_DacMacCached_NoStats"
COUNTER = "INSTRUCTIONS"


def load(path):
    """Parses `path` and validates it actually carries benchmark data.

    A missing, empty, or benchmark-less file means the figure run did not
    happen (or crashed after truncating the output); the gate must fail
    loudly rather than let a broken pipeline read as green.
    """
    try:
        with open(path) as f:
            text = f.read()
    except OSError as err:
        raise ValueError(f"{path}: cannot read fresh/baseline figures ({err}); "
                         "did bench_f1_mediation run?") from err
    if not text.strip():
        raise ValueError(f"{path}: file is empty — the benchmark run produced "
                         "no output; refusing to pass the gate")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: not valid JSON ({err}) — likely a benchmark "
                         "crash mid-write; refusing to pass the gate") from err
    if not isinstance(data, dict) or not data.get("benchmarks"):
        raise ValueError(f"{path}: no 'benchmarks' entries — the benchmark "
                         "binary ran but measured nothing; refusing to pass "
                         "the gate")
    return data


def runs(data, name):
    """All per-iteration runs of `name` (files produced with
    --benchmark_repetitions contribute every repetition, not just the first;
    a single-run file degenerates to that run)."""
    return [
        bench
        for bench in data.get("benchmarks", [])
        if bench.get("name") == name and bench.get("run_type", "iteration") == "iteration"
    ]


def has_counter(data):
    """True when every repetition of both gated benchmarks carries the
    INSTRUCTIONS perf counter (google-benchmark emits perf counters as
    per-iteration keys on each benchmark entry)."""
    for name in (CACHED, NOSTATS):
        entries = runs(data, name)
        if not entries or not all(COUNTER in bench for bench in entries):
            return False
    return True


def metric(data, path, name, key):
    values = [float(bench[key]) for bench in runs(data, name) if key in bench]
    if not values:
        raise KeyError(f"{path}: no benchmark named {name} with field {key}")
    return statistics.median(values)


def ratio(data, path, key):
    on = metric(data, path, CACHED, key)
    off = metric(data, path, NOSTATS, key)
    if off <= 0:
        raise ValueError(f"{path}: non-positive {key} for {NOSTATS}")
    return on / off


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative ratio regression (default 0.10)")
    args = parser.parse_args()

    try:
        fresh_data = load(args.fresh)
        base_data = load(args.baseline)
        # Instructions retired only gates when both sides measured it —
        # comparing an instruction ratio against a cpu_time ratio would be
        # meaningless.
        key = ("INSTRUCTIONS"
               if has_counter(fresh_data) and has_counter(base_data)
               else "cpu_time")
        fresh = ratio(fresh_data, args.fresh, key)
        base = ratio(base_data, args.baseline, key)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as err:
        print(f"check_bench_f1: {err}", file=sys.stderr)
        return 1

    overhead = (fresh - 1.0) * 100.0
    print(f"stats-on/stats-off cached-check ratio [{key}]: fresh {fresh:.4f} "
          f"(overhead {overhead:+.1f}%), baseline {base:.4f}")

    limit = base * (1.0 + args.tolerance)
    if fresh > limit:
        print(f"check_bench_f1: FAIL — fresh ratio {fresh:.4f} exceeds "
              f"baseline {base:.4f} by more than {args.tolerance:.0%} "
              f"(limit {limit:.4f})", file=sys.stderr)
        return 1
    print("check_bench_f1: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
