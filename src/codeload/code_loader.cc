#include "src/codeload/code_loader.h"

#include "src/base/strings.h"

namespace xsec {
namespace {

void MixBytes(uint64_t& hash, std::string_view text) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  hash ^= 0xff;  // field separator
  hash *= 1099511628211ULL;
}

void MixU64(uint64_t& hash, uint64_t value) {
  hash ^= value;
  hash *= 1099511628211ULL;
}

}  // namespace

uint64_t ComputeManifestChecksum(const ExtensionManifest& manifest) {
  uint64_t hash = 14695981039346656037ULL;
  MixBytes(hash, manifest.name);
  MixU64(hash, static_cast<uint64_t>(manifest.origin));
  MixU64(hash, manifest.imports.size());
  for (const std::string& import : manifest.imports) {
    MixBytes(hash, import);
  }
  MixU64(hash, manifest.exports.size());
  for (const ExportSpec& spec : manifest.exports) {
    MixBytes(hash, spec.interface_path);
  }
  if (manifest.static_class.has_value()) {
    MixU64(hash, 1);
    MixU64(hash, manifest.static_class->Hash());
  } else {
    MixU64(hash, 0);
  }
  return hash;
}

CodeImage PackageExtension(ExtensionManifest manifest) {
  CodeImage image;
  image.checksum = ComputeManifestChecksum(manifest);
  image.manifest = std::move(manifest);
  return image;
}

void OriginPolicy::SetCeiling(Origin origin, SecurityClass ceiling) {
  ceilings_[origin] = std::move(ceiling);
}

void OriginPolicy::Forbid(Origin origin) { ceilings_.erase(origin); }

StatusOr<SecurityClass> OriginPolicy::CeilingFor(Origin origin) const {
  auto it = ceilings_.find(origin);
  if (it == ceilings_.end()) {
    return PermissionDeniedError(
        StrFormat("code of origin '%s' is not accepted",
                  std::string(OriginName(origin)).c_str()));
  }
  return it->second;
}

OriginPolicy OriginPolicy::Standard(SecurityClass local_top, SecurityClass org,
                                    SecurityClass remote_floor) {
  OriginPolicy policy;
  policy.SetCeiling(Origin::kLocal, std::move(local_top));
  policy.SetCeiling(Origin::kOrganization, std::move(org));
  policy.SetCeiling(Origin::kRemote, std::move(remote_floor));
  return policy;
}

StatusOr<ExtensionId> CodeLoader::Load(const CodeImage& image, const Subject& loader) {
  if (ComputeManifestChecksum(image.manifest) != image.checksum) {
    ++rejected_tampered_;
    return PermissionDeniedError(
        StrFormat("extension '%s' failed integrity verification",
                  image.manifest.name.c_str()));
  }
  auto ceiling = policy_.CeilingFor(image.manifest.origin);
  if (!ceiling.ok()) {
    ++rejected_forbidden_origin_;
    return ceiling.status();
  }
  // The effective class can never exceed the origin ceiling: meet() with
  // whatever the manifest requested (or the ceiling itself if it requested
  // nothing). Also capped by the loader's own clearance — code cannot gain
  // trust by being loaded.
  SecurityClass effective = *ceiling;
  if (image.manifest.static_class.has_value()) {
    effective = effective.Meet(*image.manifest.static_class);
  }
  effective = effective.Meet(loader.security_class);

  ExtensionManifest pinned = image.manifest;
  pinned.static_class = effective;
  auto id = kernel_->LoadExtension(pinned, loader);
  if (id.ok()) {
    ++loads_;
  }
  return id;
}

}  // namespace xsec
