// Differential fuzzing of the compiled decision tables against the
// interpreted reference-monitor path (the oracle).
//
// Each round builds or mutates a random world (principals, groups, a random
// tree, random ACLs, labels, clearances), usually recompiles, then fires
// hundreds of random checks. For every check:
//
//   - TryCompiledCheck, when it covers the input, must return bit-for-bit
//     the interpreted Decision — allowed, deny reason, AND detail string;
//   - the full Check() pipeline (cache + compiled + interpreted) must agree
//     with the oracle on allowed and reason regardless of which layer
//     decided.
//
// The fault-sweep variant arms random failpoints (policy I/O, the recompile
// path, stats fan-out) while reloading policy files mid-fuzz: injected
// failures may cost coverage, never divergence.
//
// Seeding follows the repo convention: XSEC_FAULT_SEED in the environment
// overrides the default, and the seed is printed via SCOPED_TRACE on every
// failure so any CI hit replays locally:
//
//   XSEC_FAULT_SEED=<seed> ./xsec_diff_fuzz_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/rng.h"
#include "src/extsys/kernel.h"
#include "src/monitor/reference_monitor.h"
#include "src/policy/policy_io.h"

namespace xsec {
namespace {

uint64_t SeedFromEnv(uint64_t fallback) {
  if (const char* env = std::getenv("XSEC_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

// A randomly generated policy world plus the bookkeeping the fuzzer needs to
// keep aiming mutations and checks at things that exist.
class RandomWorld {
 public:
  RandomWorld(Rng& rng, MonitorOptions options)
      : rng_(rng), level_count_(1 + rng.NextBelow(3)), category_count_(rng.NextBelow(6)) {
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_, options);

    std::vector<std::string> levels;
    for (size_t i = 0; i < level_count_; ++i) {
      levels.push_back("level" + std::to_string(i));
    }
    if (level_count_ > 1) {
      (void)labels_.DefineLevels(levels);
    }
    for (size_t i = 0; i < category_count_; ++i) {
      (void)labels_.DefineCategory("cat" + std::to_string(i));
    }

    const size_t users = 3 + rng.NextBelow(4);
    for (size_t i = 0; i < users; ++i) {
      principals_pool_.push_back(*principals_.CreateUser("user" + std::to_string(i)));
    }
    const size_t groups = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < groups; ++i) {
      PrincipalId group = *principals_.CreateGroup("group" + std::to_string(i));
      principals_pool_.push_back(group);
      for (PrincipalId user : principals_pool_) {
        if (rng.NextBool(1, 3)) {
          (void)principals_.AddMember(group, user);
        }
      }
    }

    nodes_.push_back(ns_.root());
    containers_.push_back(ns_.root());
    const size_t node_count = 20 + rng.NextBelow(31);
    for (size_t i = 0; i < node_count; ++i) {
      NodeId parent = containers_[rng.NextBelow(containers_.size())];
      NodeKind kind = static_cast<NodeKind>(rng.NextBelow(6));
      auto id = ns_.Bind(parent, "n" + std::to_string(i), kind, RandomPrincipal());
      if (!id.ok()) {
        continue;
      }
      nodes_.push_back(*id);
      if (KindAllowsChildren(kind)) {
        containers_.push_back(*id);
      }
      if (rng.NextBool(2, 5)) {
        (void)ns_.SetLabelRef(*id, labels_.StoreLabel(RandomClass()));
      }
      if (rng.NextBool(1, 2)) {
        (void)ns_.SetAclRef(*id, acls_.Create(RandomAcl()));
      }
    }
    for (PrincipalId p : principals_pool_) {
      if (rng.NextBool(1, 4)) {
        labels_.SetClearance(p.value, RandomClass());
      }
    }
  }

  SecurityClass RandomClass() {
    // Capacity jitters above the defined category count so equal classes
    // with different bitset widths flow through the interning path.
    CategorySet set(category_count_ + rng_.NextBelow(3));
    for (size_t c = 0; c < category_count_; ++c) {
      if (rng_.NextBool(1, 2)) {
        set.Set(c);
      }
    }
    return SecurityClass(static_cast<TrustLevel>(rng_.NextBelow(level_count_)), std::move(set));
  }

  Acl RandomAcl() {
    Acl acl;
    if (rng_.NextBool(1, 10)) {
      return acl;  // explicit empty ACL ("acl <path> none")
    }
    const size_t entries = 1 + rng_.NextBelow(4);
    for (size_t i = 0; i < entries; ++i) {
      acl.AddEntry({rng_.NextBool(1, 4) ? AclEntryType::kDeny : AclEntryType::kAllow,
                    RandomPrincipal(),
                    AccessModeSet(static_cast<uint32_t>(1 + rng_.NextBelow(255)))});
    }
    return acl;
  }

  PrincipalId RandomPrincipal() {
    return principals_pool_[rng_.NextBelow(principals_pool_.size())];
  }

  NodeId RandomNode() {
    // Mostly live nodes; occasionally an id that was never bound.
    if (rng_.NextBool(1, 20)) {
      return NodeId{static_cast<uint32_t>(rng_.NextBelow(10000))};
    }
    return nodes_[rng_.NextBelow(nodes_.size())];
  }

  Subject RandomSubject() {
    SecurityClass cls;
    if (!interned_pool_.empty() && rng_.NextBool(7, 10)) {
      cls = interned_pool_[rng_.NextBelow(interned_pool_.size())];
    } else {
      cls = RandomClass();
      interned_pool_.push_back(cls);
      if (interned_pool_.size() > 24) {
        interned_pool_.erase(interned_pool_.begin());
      }
    }
    return Subject{RandomPrincipal(), std::move(cls), 1};
  }

  AccessModeSet RandomModes() {
    if (rng_.NextBool(1, 30)) {
      return AccessModeSet();
    }
    AccessModeSet modes;
    const size_t bits = 1 + rng_.NextBelow(3);
    for (size_t i = 0; i < bits; ++i) {
      modes |= AccessModeSet(static_cast<uint32_t>(1u << rng_.NextBelow(kAccessModeCount)));
    }
    return modes;
  }

  // One random policy mutation; every branch leaves the world consistent.
  void Mutate() {
    switch (rng_.NextBelow(8)) {
      case 0: {  // swap a random node's ACL
        NodeId node = nodes_[rng_.NextBelow(nodes_.size())];
        (void)ns_.SetAclRef(node, acls_.Create(RandomAcl()));
        break;
      }
      case 1: {  // edit an existing stored ACL in place
        if (acls_.size() > 0) {
          (void)acls_.AddEntry(static_cast<AclStore::AclRef>(rng_.NextBelow(acls_.size())),
                               {rng_.NextBool(1, 3) ? AclEntryType::kDeny : AclEntryType::kAllow,
                                RandomPrincipal(),
                                AccessModeSet(static_cast<uint32_t>(1 + rng_.NextBelow(255)))});
        }
        break;
      }
      case 2: {  // relabel a node
        NodeId node = nodes_[rng_.NextBelow(nodes_.size())];
        (void)ns_.SetLabelRef(node, labels_.StoreLabel(RandomClass()));
        break;
      }
      case 3: {  // membership change
        PrincipalId a = RandomPrincipal();
        PrincipalId b = RandomPrincipal();
        if (rng_.NextBool(1, 2)) {
          (void)principals_.AddMember(a, b);
        } else {
          (void)principals_.RemoveMember(a, b);
        }
        break;
      }
      case 4: {  // grow the tree
        NodeId parent = containers_[rng_.NextBelow(containers_.size())];
        auto id = ns_.Bind(parent, "m" + std::to_string(mutation_serial_++),
                           NodeKind::kFile, RandomPrincipal());
        if (id.ok()) {
          nodes_.push_back(*id);
        }
        break;
      }
      case 5: {  // new principal: the one mutation that bumps NO stamp
        auto id = principals_.CreateUser("late" + std::to_string(mutation_serial_++));
        if (id.ok()) {
          principals_pool_.push_back(*id);
        }
        break;
      }
      case 6: {  // clearance change
        labels_.SetClearance(RandomPrincipal().value, RandomClass());
        break;
      }
      case 7: {  // ownership change
        NodeId node = nodes_[rng_.NextBelow(nodes_.size())];
        (void)ns_.SetOwner(node, RandomPrincipal());
        break;
      }
    }
  }

  ReferenceMonitor& monitor() { return *monitor_; }
  Rng& rng() { return rng_; }

  // A second monitor over the SAME stores, for configuration-equivalence
  // sweeps (e.g. sharded vs. aggregate stamp domains): both monitors see
  // every mutation; only their caching/validity machinery differs.
  ReferenceMonitor& ShadowMonitor(MonitorOptions options) {
    shadow_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_, options);
    return *shadow_;
  }

 private:
  Rng& rng_;
  size_t level_count_;
  size_t category_count_;
  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  std::unique_ptr<ReferenceMonitor> shadow_;
  std::vector<PrincipalId> principals_pool_;
  std::vector<NodeId> nodes_;
  std::vector<NodeId> containers_;
  std::vector<SecurityClass> interned_pool_;
  size_t mutation_serial_ = 0;
};

MonitorOptions RandomOptions(Rng& rng) {
  MonitorOptions options;
  options.dac_enabled = rng.NextBool(4, 5);
  options.mac_enabled = rng.NextBool(4, 5);
  options.cache_enabled = rng.NextBool(1, 2);
  options.stats_enabled = rng.NextBool(1, 2);
  options.flow.write_up_requires_append = rng.NextBool(1, 2);
  // Sweep both validity-domain configurations (per-shard stamps vs. the
  // legacy aggregate domain) so every fuzz run cross-checks the sharding.
  options.shard_stamps = rng.NextBool(1, 2);
  return options;
}

struct FuzzTally {
  uint64_t checks = 0;
  uint64_t covered = 0;
};

// Runs `checks` random checks on the world, asserting compiled/interpreted
// agreement on every one the tables cover, and full-pipeline agreement on
// allowed+reason always.
void FuzzChecks(RandomWorld& world, size_t checks, FuzzTally* tally) {
  for (size_t i = 0; i < checks; ++i) {
    Subject subject = world.RandomSubject();
    NodeId node = world.RandomNode();
    AccessModeSet modes = world.RandomModes();
    Decision oracle = world.monitor().CheckInterpreted(subject, node, modes);

    Decision compiled;
    if (world.monitor().TryCompiledCheck(subject, node, modes, &compiled)) {
      ++tally->covered;
      ASSERT_EQ(compiled.allowed, oracle.allowed)
          << "compiled/interpreted ALLOW divergence: node=" << node.value
          << " principal=" << subject.principal.value << " modes=" << modes.ToString();
      ASSERT_EQ(compiled.reason, oracle.reason)
          << "compiled/interpreted REASON divergence: node=" << node.value
          << " modes=" << modes.ToString() << " detail=" << compiled.detail << " vs "
          << oracle.detail;
      ASSERT_EQ(compiled.detail, oracle.detail) << "compiled/interpreted DETAIL divergence";
    }

    // The full pipeline — whatever layer decides — agrees with the oracle.
    Decision full = world.monitor().Check(subject, node, modes);
    ASSERT_EQ(full.allowed, oracle.allowed)
        << "pipeline/interpreted divergence: node=" << node.value
        << " principal=" << subject.principal.value << " modes=" << modes.ToString();
    ASSERT_EQ(full.reason, oracle.reason);
    ++tally->checks;
  }
}

TEST(DiffFuzz, CompiledNeverDivergesFromInterpreted) {
  const uint64_t seed = SeedFromEnv(0xd1ffu);
  SCOPED_TRACE("XSEC_FAULT_SEED=" + std::to_string(seed));
  Rng rng(seed);
  FuzzTally tally;
  uint64_t compiled_hits = 0;

  const size_t rounds = 16;
  const size_t worlds = 4;
  for (size_t w = 0; w < worlds; ++w) {
    RandomWorld world(rng, RandomOptions(rng));
    for (size_t round = 0; round < rounds; ++round) {
      const size_t mutations = rng.NextBelow(4);
      for (size_t m = 0; m < mutations; ++m) {
        world.Mutate();
      }
      if (rng.NextBool(4, 5)) {
        // Builds can legitimately fail (caps); staying interpreted is fine.
        (void)world.monitor().RecompileNow();
      }
      ASSERT_NO_FATAL_FAILURE(FuzzChecks(world, 256, &tally));
    }
    compiled_hits += world.monitor().compiled_counters().hits;
  }

  // ISSUE acceptance: >= 10k randomized checks per sweep, with real compiled
  // coverage (the comparison must not be vacuous).
  EXPECT_GE(tally.checks, 10000u);
  EXPECT_GT(tally.covered, tally.checks / 10)
      << "compiled tables covered too few checks to be a meaningful oracle";
  EXPECT_GT(compiled_hits, 0u);
}

TEST(DiffFuzz, ShardedAndUnshardedMonitorsAgree) {
  // Equivalence oracle for the sharded validity domains (docs/MODEL.md §15):
  // two monitors over the SAME stores — one with per-shard stamps, one on
  // the legacy aggregate domain — must render identical decisions through
  // their full pipelines (cache + compiled + interpreted) after every
  // mutation. Sharding changes only *when* cached state is invalidated; any
  // allowed/reason divergence means a shard kept a decision it should have
  // dropped (or dropped one it could have kept AND re-derived it wrong).
  const uint64_t seed = SeedFromEnv(0x5a4dedu);
  SCOPED_TRACE("XSEC_FAULT_SEED=" + std::to_string(seed));
  Rng rng(seed);
  FuzzTally tally;

  const size_t worlds = 3;
  const size_t rounds = 12;
  for (size_t w = 0; w < worlds; ++w) {
    MonitorOptions sharded = RandomOptions(rng);
    sharded.shard_stamps = true;
    sharded.cache_enabled = true;  // the cache is where stale state would hide
    RandomWorld world(rng, sharded);

    MonitorOptions aggregate = sharded;
    aggregate.shard_stamps = false;
    ReferenceMonitor& shadow = world.ShadowMonitor(aggregate);

    for (size_t round = 0; round < rounds; ++round) {
      const size_t mutations = rng.NextBelow(4);
      for (size_t m = 0; m < mutations; ++m) {
        world.Mutate();
      }
      if (rng.NextBool(1, 2)) {
        (void)world.monitor().RecompileNow();
      }
      if (rng.NextBool(1, 2)) {
        (void)shadow.RecompileNow();
      }
      for (size_t i = 0; i < 256; ++i) {
        Subject subject = world.RandomSubject();
        NodeId node = world.RandomNode();
        AccessModeSet modes = world.RandomModes();
        Decision oracle = world.monitor().CheckInterpreted(subject, node, modes);
        Decision with_shards = world.monitor().Check(subject, node, modes);
        Decision without = shadow.Check(subject, node, modes);
        ASSERT_EQ(with_shards.allowed, without.allowed)
            << "sharded/aggregate divergence: node=" << node.value
            << " principal=" << subject.principal.value << " modes=" << modes.ToString();
        ASSERT_EQ(with_shards.reason, without.reason)
            << "sharded/aggregate reason divergence: node=" << node.value
            << " modes=" << modes.ToString();
        ASSERT_EQ(with_shards.allowed, oracle.allowed) << "sharded monitor diverged from oracle";
        ASSERT_EQ(with_shards.reason, oracle.reason);
        ++tally.checks;
      }
    }
    // The sharded monitor must actually have reused cached decisions —
    // otherwise the equivalence says nothing about shard-stamp validity.
    EXPECT_GT(world.monitor().cache().hits(), 0u);
  }
  EXPECT_GE(tally.checks, 9000u);
}

TEST(DiffFuzz, MutationWithoutRecompileIsNeverServedStale) {
  const uint64_t seed = SeedFromEnv(0x57a1eu);
  SCOPED_TRACE("XSEC_FAULT_SEED=" + std::to_string(seed));
  Rng rng(seed);
  MonitorOptions options = RandomOptions(rng);
  options.cache_enabled = false;
  RandomWorld world(rng, options);
  ASSERT_TRUE(world.monitor().RecompileNow().ok());

  // Right after a mutation the tables must either refuse to answer (stale
  // stamps) or — if the background recompiler happened to catch up between
  // the mutation and the probe — answer exactly what the oracle answers.
  // What they must never do is serve the pre-mutation decision function.
  for (int i = 0; i < 200; ++i) {
    world.Mutate();
    Subject subject = world.RandomSubject();
    NodeId node = world.RandomNode();
    AccessModeSet modes = world.RandomModes();
    Decision compiled;
    if (world.monitor().TryCompiledCheck(subject, node, modes, &compiled)) {
      Decision oracle = world.monitor().CheckInterpreted(subject, node, modes);
      ASSERT_EQ(compiled.allowed, oracle.allowed) << "stale compiled decision served";
      ASSERT_EQ(compiled.reason, oracle.reason) << "stale compiled decision served";
      ASSERT_EQ(compiled.detail, oracle.detail) << "stale compiled decision served";
    }
  }
  // The sweep must actually have exercised the staleness diversion.
  EXPECT_GT(world.monitor().compiled_counters().stale, 0u);
}

// Fault sweep: injected policy-I/O, recompile, and stats failures must never
// produce compiled/interpreted divergence — only reduced coverage.
class DiffFuzzFaults : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(DiffFuzzFaults, InjectedFaultsNeverCauseDivergence) {
  const uint64_t seed = SeedFromEnv(0xfa017u);
  SCOPED_TRACE("XSEC_FAULT_SEED=" + std::to_string(seed));
  Rng rng(seed);

  const char* sites[] = {"monitor.recompile", "policy.io.open",  "policy.io.read",
                         "policy.io.write",   "policy.io.commit", "stats.fanout.push",
                         "stats.poll.wakeup"};
  const char* specs[] = {"error", "error=resource-exhausted,nth=2", "error=internal,times=3",
                         "sleep=1us", "off"};

  const std::string path = testing::TempDir() + "/xsec_diff_fuzz_policy.txt";
  FuzzTally tally;
  const size_t rounds = 24;
  for (size_t round = 0; round < rounds; ++round) {
    // Fresh kernel-backed world each few rounds, so policy file round-trips
    // exercise the reload/invalidation path under faults.
    Kernel kernel;
    constexpr std::string_view kBase =
        "xsec-policy v1\n"
        "user alice\n"
        "user bob\n"
        "group staff\n"
        "member staff alice\n"
        "node /fs/a file alice\n"
        "node /fs/b file bob\n"
        "acl /fs/a allow staff read|write\n"
        "acl /fs/b deny bob read\n";
    ASSERT_TRUE(LoadPolicy(kBase, &kernel).ok());
    PrincipalId alice = *kernel.principals().FindByName("alice");
    PrincipalId bob = *kernel.principals().FindByName("bob");
    NodeId a = *kernel.name_space().Lookup("/fs/a");
    NodeId b = *kernel.name_space().Lookup("/fs/b");

    // Arm a random subset of sites with random specs.
    for (const char* site : sites) {
      if (rng.NextBool(1, 2)) {
        (void)FailpointRegistry::Instance().Arm(site, specs[rng.NextBelow(5)]);
      }
    }

    // Policy file round trip under injected I/O faults; failures are fine,
    // the kernel keeps its in-memory policy either way.
    (void)SavePolicyFile(kernel, path);
    (void)LoadPolicyFile(path, &kernel, nullptr);
    (void)kernel.monitor().RecompileNow();

    for (size_t i = 0; i < 160; ++i) {
      Subject subject{rng.NextBool(1, 2) ? alice : bob, SecurityClass(), 1};
      NodeId node = rng.NextBool(1, 2) ? a : b;
      AccessModeSet modes(static_cast<uint32_t>(1 + rng.NextBelow(255)));
      Decision oracle = kernel.monitor().CheckInterpreted(subject, node, modes);
      Decision compiled;
      if (kernel.monitor().TryCompiledCheck(subject, node, modes, &compiled)) {
        ++tally.covered;
        ASSERT_EQ(compiled.allowed, oracle.allowed) << "divergence under faults";
        ASSERT_EQ(compiled.reason, oracle.reason) << "divergence under faults";
        ASSERT_EQ(compiled.detail, oracle.detail) << "divergence under faults";
      }
      Decision full = kernel.monitor().Check(subject, node, modes);
      ASSERT_EQ(full.allowed, oracle.allowed) << "pipeline divergence under faults";
      ++tally.checks;
    }
    FailpointRegistry::Instance().DisarmAll();
  }
  EXPECT_GE(tally.checks, 3000u);
  // Faults may suppress recompiles but the sweep as a whole must still
  // exercise the compiled path (DisarmAll between rounds guarantees some
  // clean builds).
  EXPECT_GT(tally.covered, 0u);
}

}  // namespace
}  // namespace xsec
