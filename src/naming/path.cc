#include "src/naming/path.h"

#include "src/base/strings.h"

namespace xsec {

bool IsValidComponent(std::string_view name) {
  if (name.empty() || name == "." || name == "..") {
    return false;
  }
  for (unsigned char c : name) {
    // No separators, whitespace, control characters, or '#': names must
    // survive the whitespace-delimited, '#'-commented policy format and
    // audit lines unambiguously.
    if (c == '/' || c <= ' ' || c == 0x7f || c == '#') {
      return false;
    }
  }
  return true;
}

StatusOr<std::vector<std::string>> ParsePath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError(
        StrFormat("path must be absolute: '%s'", std::string(path).c_str()));
  }
  std::vector<std::string> components;
  if (path == "/") {
    return components;
  }
  size_t start = 1;
  while (start <= path.size()) {
    size_t pos = path.find('/', start);
    std::string_view piece = pos == std::string_view::npos ? path.substr(start)
                                                           : path.substr(start, pos - start);
    if (!IsValidComponent(piece)) {
      return InvalidArgumentError(
          StrFormat("path '%s' has an invalid component", std::string(path).c_str()));
    }
    components.emplace_back(piece);
    if (pos == std::string_view::npos) {
      break;
    }
    start = pos + 1;
    if (start == path.size()) {
      return InvalidArgumentError(
          StrFormat("path '%s' has a trailing slash", std::string(path).c_str()));
    }
  }
  return components;
}

std::string JoinPath(std::string_view parent, std::string_view child) {
  std::string out(parent);
  if (out.empty() || out.back() != '/') {
    out += '/';
  }
  out += child;
  return out;
}

std::string ParentPath(std::string_view path) {
  if (path == "/" || path.empty()) {
    return "/";
  }
  size_t pos = path.rfind('/');
  if (pos == 0) {
    return "/";
  }
  return std::string(path.substr(0, pos));
}

std::string_view Basename(std::string_view path) {
  if (path == "/" || path.empty()) {
    return {};
  }
  size_t pos = path.rfind('/');
  return path.substr(pos + 1);
}

}  // namespace xsec
