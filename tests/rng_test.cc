#include "src/base/rng.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBool(1, 2) ? 1 : 0;
  }
  EXPECT_GT(heads, 4600);
  EXPECT_LT(heads, 5400);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0, 10));
    EXPECT_TRUE(rng.NextBool(10, 10));
  }
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(15);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);
}

}  // namespace
}  // namespace xsec
