// Extension supervision: behavioral containment for untrusted extensions
// (docs/MODEL.md §16).
//
// Admission-time checks (link-time import/export mediation, per-call execute
// checks) decide whether an extension MAY run; nothing before this module
// bounded how it BEHAVES once running. A wedged or crash-looping extension
// could stall InvokeNode callers indefinitely, occupy a mediation-ring
// worker, and drag unrelated tenants down with it. The supervisor closes
// that gap with three mechanisms layered around every supervised invocation:
//
//   budget    — each extension carries a wall-clock invoke budget (capped
//               into the CallContext deadline the handler already honors)
//               and a max-in-flight bound (excess admissions fail fast with
//               kResourceExhausted);
//   breaker   — consecutive failures/timeouts trip a per-extension circuit
//               (the ResilientSink state-machine shape: closed → open →
//               half-open probe). A tripped extension is *quarantined*:
//               every admission answers kUnavailable without running the
//               handler or consuming mediation-ring credits, until a probe
//               interval elapses and ONE probe invocation is let through —
//               success releases the quarantine, failure re-arms it. Both
//               transitions are recorded through the audit pipeline.
//   watchdog  — a supervisor thread checks registered MediationRings'
//               per-shard batch heartbeats; a shard busy on one batch for
//               longer than stuck_after_ns is declared stuck.
//
// Above the per-extension view sits the monitor health state machine:
//
//   healthy   — nothing quarantined, no stuck shards;
//   degraded  — >= degraded_after extensions quarantined, or any stuck
//               shard (observability state: nothing else changes);
//   lockdown  — operator-armed (/svc/health lockdown on) or breaker cascade
//               (>= lockdown_after quarantines). The supervisor arms
//               ReferenceMonitor::set_lockdown, which denies would-be
//               allowed `extend`-mode checks (DenyReason::kQuarantined,
//               never cached) while read/execute paths stay live — the
//               paper's fail-closed bias applied as graceful degradation.
//
// Un-quarantine is a mediated `administrate` action (HealthService), not a
// direct call: operators go through the reference monitor like everyone
// else, and the release lands in the audit trail twice (the administrate
// decision and the supervisor's transition record).
//
// Per-extension failpoints: registering `name` resolves the failpoint
// `ext.invoke.<name>` (created disarmed); the kernel evaluates it inside
// the supervised window, so an armed error/sleep spec is indistinguishable
// from the extension itself failing or stalling. This is how the tests and
// bench_f17_supervisor drive trips deterministically.
//
// Thread safety: all public methods may be called from any thread. The
// registry is guarded by a shared_mutex (registrations are rare, admissions
// hot); per-extension state by a per-entry mutex; lifetime counters are
// relaxed atomics readable lock-free by the telemetry plane.

#ifndef XSEC_SRC_EXTSYS_SUPERVISOR_H_
#define XSEC_SRC_EXTSYS_SUPERVISOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/monitor/reference_monitor.h"
#include "src/naming/namespace.h"

namespace xsec {

class Failpoint;
class MediationRing;

// Per-extension circuit state. kProbing is the half-open phase: exactly one
// invocation is in flight deciding the circuit's fate.
enum class ExtHealth : uint8_t {
  kHealthy = 0,
  kQuarantined,
  kProbing,
};

std::string_view ExtHealthName(ExtHealth state);

// The monitor-wide view derived from the per-extension states and the ring
// watchdog.
enum class SystemHealth : uint8_t {
  kHealthy = 0,
  kDegraded,
  kLockdown,
};

std::string_view SystemHealthName(SystemHealth state);

struct ExtensionBudget {
  // Wall-clock bound per supervised invocation, folded into the handler's
  // CallContext deadline (min with the caller's own). 0 = unbounded.
  uint64_t invoke_budget_ns = 0;
  // Concurrent supervised invocations allowed; excess admissions fail fast
  // with kResourceExhausted. 0 = unbounded.
  uint32_t max_inflight = 0;
  // Consecutive failures (timeouts, internal errors, unavailability) that
  // trip the breaker into quarantine. The ResilientSink default shape.
  uint32_t trip_after = 4;
  // Quarantine dwell before ONE half-open probe is admitted.
  uint64_t probe_after_ns = 100'000'000;  // 100 ms
};

struct SupervisorOptions {
  // Budget applied to extensions registered without an explicit one.
  ExtensionBudget default_budget;
  // Quarantined-extension count at which system health reads degraded.
  size_t degraded_after = 2;
  // Quarantined-extension count that cascades into lockdown; 0 disables the
  // automatic cascade (operator arming still works).
  size_t lockdown_after = 0;
  // Ring watchdog cadence and the stuck bound: a shard busy on ONE batch
  // longer than stuck_after_ns is stuck. stuck_after_ns must exceed the
  // worst legitimate single-batch time (see MediationRing::ShardHealth).
  uint64_t watchdog_interval_ns = 20'000'000;   // 20 ms
  uint64_t stuck_after_ns = 1'000'000'000;      // 1 s
  // Principal stamped on supervision audit records (quarantine trips,
  // releases, health transitions). Typically the system principal.
  PrincipalId audit_principal;
};

class ExtensionSupervisor {
 private:
  struct Entry;  // declared ahead of Permit, which holds one

 public:
  // The monitor must outlive the supervisor: transitions are audited through
  // it and lockdown is enforced by it. No thread starts until a ring is
  // watched (WatchRing).
  explicit ExtensionSupervisor(ReferenceMonitor* monitor, SupervisorOptions options = {});
  ~ExtensionSupervisor();

  ExtensionSupervisor(const ExtensionSupervisor&) = delete;
  ExtensionSupervisor& operator=(const ExtensionSupervisor&) = delete;

  // -- Registration -----------------------------------------------------------

  // Registers (or re-registers) a supervised name. `node` is the extension's
  // own node (or the service node a manual registration guards); it anchors
  // audit records and the ring admission gate. Unloading an extension keeps
  // its entry (history survives; a reloaded extension re-joins its record).
  void Register(std::string_view name, NodeId node,
                std::optional<ExtensionBudget> budget = std::nullopt);
  void SetBudget(std::string_view name, const ExtensionBudget& budget);
  bool IsRegistered(std::string_view name) const;

  // -- Admission --------------------------------------------------------------

  // RAII admission token. Destroying an active permit without Complete()
  // records the invocation as successful (handlers that return values have
  // their status recorded explicitly by the kernel).
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept { *this = std::move(other); }
    Permit& operator=(Permit&& other) noexcept;
    ~Permit();
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;

    // False for unsupervised targets: the invocation proceeds unobserved.
    bool active() const { return entry_ != nullptr; }
    // The effective deadline: the caller's capped by the budget (0 = none).
    uint64_t deadline_ns() const { return deadline_ns_; }
    // The extension's ext.invoke.<name> failpoint (null when inactive).
    Failpoint* fault() const;
    // Records the invocation outcome exactly once and feeds the breaker.
    void Complete(const Status& status);

   private:
    friend class ExtensionSupervisor;
    ExtensionSupervisor* supervisor_ = nullptr;
    Entry* entry_ = nullptr;
    uint64_t deadline_ns_ = 0;
    bool probe_ = false;
  };

  // Admits one invocation of `name`. Unregistered names return an inactive
  // permit (pass-through). Errors: kUnavailable (quarantined, or a probe is
  // already in flight), kResourceExhausted (max_inflight). An admission that
  // finds the probe interval elapsed converts the quarantine to kProbing and
  // admits itself as the probe.
  StatusOr<Permit> Admit(std::string_view name, uint64_t caller_deadline_ns);

  // Fail-fast admission probe by node for the mediation-ring gate: answers
  // kUnavailable for quarantined targets (without consuming the half-open
  // probe — only real Admits probe), OK for everything else.
  Status FastFail(const Subject& subject, NodeId node) const;

  // Dispatcher eligibility: false while quarantined with no probe due, so
  // class selection falls through to the next-best handler.
  bool Selectable(std::string_view name) const;

  // The supervised name owning `node`, if any (procedure/capability calls
  // resolve their supervision entry through this).
  const std::string* NameOfNode(NodeId node) const;

  // -- Operator actions (callers mediate; see HealthService) ------------------

  // Forces `name` into quarantine (audited).
  Status Quarantine(std::string_view name, std::string_view why);
  // Releases a quarantined/probing extension back to healthy (audited).
  // kFailedPrecondition when it is already healthy.
  Status Release(std::string_view name, std::string_view why);
  // Arms/disarms operator lockdown; the effective monitor lockdown is
  // operator-armed OR breaker-cascade.
  void ArmLockdown(bool on, std::string_view why);
  bool lockdown_armed() const {
    return operator_lockdown_.load(std::memory_order_relaxed);
  }

  // -- Telemetry --------------------------------------------------------------

  struct ExtSnapshot {
    std::string name;
    NodeId node;
    ExtHealth state = ExtHealth::kHealthy;
    uint64_t invokes = 0;
    uint64_t failures = 0;
    uint64_t timeouts = 0;
    uint64_t trips = 0;
    uint64_t releases = 0;
    uint64_t rejected = 0;  // fail-fast admissions refused while quarantined
    uint32_t inflight = 0;
  };
  std::optional<ExtSnapshot> Snapshot(std::string_view name) const;
  std::vector<ExtSnapshot> SnapshotAll() const;

  SystemHealth system_health() const {
    return system_health_.load(std::memory_order_relaxed);
  }
  size_t quarantined_count() const {
    return quarantined_count_.load(std::memory_order_relaxed);
  }
  size_t stuck_shards() const { return stuck_shards_.load(std::memory_order_relaxed); }

  // Called with each newly registered name (and every already-registered
  // one, immediately); the telemetry plane mounts per-extension leaves from
  // it. Invoked without supervisor locks held.
  void SetRegistrationHook(std::function<void(const std::string&)> hook);

  // -- Ring watchdog ----------------------------------------------------------

  // Adds `ring` to the watchdog's scan set and starts the watchdog thread on
  // first use. The ring must outlive the supervisor.
  void WatchRing(MediationRing* ring);
  // One synchronous watchdog scan (what the thread runs each interval);
  // exposed so tests pin the stuck/not-stuck contract deterministically.
  void RunWatchdogOnce();

  const SupervisorOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string name;
    NodeId node;
    Failpoint* fault = nullptr;  // ext.invoke.<name>, resolved at Register
    mutable std::mutex mu;
    // Guarded by mu:
    ExtHealth state = ExtHealth::kHealthy;
    ExtensionBudget budget;
    uint32_t consecutive_failures = 0;
    uint32_t inflight = 0;
    bool probe_inflight = false;
    uint64_t quarantined_at_ns = 0;
    // Lifetime counters (telemetry reads them lock-free):
    std::atomic<uint64_t> invokes{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> trips{0};
    std::atomic<uint64_t> releases{0};
    std::atomic<uint64_t> rejected{0};
  };

  Entry* Find(std::string_view name) const;
  // Breaker bookkeeping for one completed invocation.
  void RecordOutcome(Entry* entry, const Status& status, bool probe);
  // Trip/release transitions; both audit and recompute. `entry->mu` must NOT
  // be held (they take it).
  void TripToQuarantine(Entry* entry, std::string_view why);
  void ReleaseToHealthy(Entry* entry, std::string_view why);
  // Emits one synthetic record through the monitor's audit pipeline.
  void AuditTransition(const Entry* entry, bool quarantined, std::string detail);
  void AuditSystemTransition(SystemHealth from, SystemHealth to, std::string detail);
  // Re-derives system health from quarantine count + stuck shards + operator
  // flag; arms/disarms the monitor's lockdown and audits the change.
  void RecomputeSystemHealth(std::string_view why);
  void WatchdogLoop();
  ExtSnapshot SnapshotEntry(const Entry& entry) const;

  ReferenceMonitor* monitor_;
  SupervisorOptions options_;

  mutable std::shared_mutex registry_mu_;
  // Entries are never erased: pointers handed to permits stay stable.
  std::unordered_map<std::string, std::unique_ptr<Entry>> by_name_;
  std::unordered_map<uint32_t, Entry*> by_node_;

  std::atomic<size_t> quarantined_count_{0};
  std::atomic<size_t> stuck_shards_{0};
  std::atomic<bool> operator_lockdown_{false};
  std::atomic<SystemHealth> system_health_{SystemHealth::kHealthy};
  // Serializes health recomputation so the monitor lockdown flag and the
  // audited transition sequence agree on ordering.
  std::mutex health_mu_;

  std::mutex hook_mu_;
  std::function<void(const std::string&)> registration_hook_;

  // Watchdog thread state.
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  std::vector<MediationRing*> watched_rings_;
  std::thread watchdog_thread_;
  bool watchdog_shutdown_ = false;
};

}  // namespace xsec

#endif  // XSEC_SRC_EXTSYS_SUPERVISOR_H_
