// Mediated control plane for the extension supervisor (docs/MODEL.md §16).
//
// The supervisor quarantines misbehaving extensions on its own; *releasing*
// one — or forcing a quarantine, or arming monitor-wide lockdown — is an
// operator action, and operator actions in this system are mediated like
// everything else. Each supervised extension appears as a health leaf
// `/sys/monitor/health/ext/<name>/state`; releasing or quarantining it is an
// `administrate` access on that leaf decided by the central reference
// monitor, so the action is ACL-governed, counted, and lands in the audit
// trail twice: once as the administrate decision, once as the supervisor's
// own transition record. An operator who cannot pass the monitor cannot
// un-quarantine an extension.
//
// Default policy is fail-closed: the /sys/monitor/health mount carries an
// own ACL granting read|list|administrate to the system principal only
// (mirroring FaultService). Widening it to an operations role is an
// ordinary AddAclEntry call.
//
// Layout and procedures:
//
//   /sys/monitor/health/...        telemetry leaves (StatsService::MountHealth)
//   /sys/monitor/health/ext/<name>/state
//                                  the per-extension anchor node; bound
//                                  lazily here if the stats plane has not
//                                  mounted it already
//   /svc/health/state              system health summary (read on the mount)
//   /svc/health/list               one line per supervised extension (list)
//   /svc/health/read               args = [name]; per-extension detail (read)
//   /svc/health/release            args = [name, why?]; administrate on the
//                                  leaf, then ExtensionSupervisor::Release
//   /svc/health/quarantine         args = [name, why?]; administrate, then
//                                  forced quarantine
//   /svc/health/lockdown           args = ["on"|"off", why?]; administrate on
//                                  the mount root, then ArmLockdown
//
// tools/xsec_stats --health renders the same summary as a trusted reader.

#ifndef XSEC_SRC_SERVICES_HEALTH_SERVICE_H_
#define XSEC_SRC_SERVICES_HEALTH_SERVICE_H_

#include <string>
#include <string_view>

#include "src/extsys/kernel.h"
#include "src/extsys/supervisor.h"

namespace xsec {

struct HealthServiceOptions {
  std::string mount_path = "/sys/monitor/health";
  std::string service_path = "/svc/health";
};

class HealthService {
 public:
  // The kernel and supervisor must outlive this service.
  HealthService(Kernel* kernel, ExtensionSupervisor* supervisor,
                HealthServiceOptions options = {});

  // Binds the health mount (fail-closed, system-only ACL) and registers the
  // /svc/health procedures. The mount directory may already exist (the stats
  // plane creates it as an intermediate); Install adopts it.
  Status Install();

  const std::string& mount_path() const { return options_.mount_path; }
  const std::string& service_path() const { return options_.service_path; }

  // -- Mediated operations ----------------------------------------------------

  // System health summary after a `read` check on the mount root.
  StatusOr<std::string> State(Subject& subject);

  // One "name state invokes failures timeouts trips releases rejected
  // inflight" line per supervised extension, after a `list` check.
  StatusOr<std::string> List(Subject& subject);

  // Per-extension detail after a `read` check on its health leaf.
  StatusOr<std::string> ReadExtension(Subject& subject, std::string_view name);

  // Releases a quarantined extension after an `administrate` check on its
  // health leaf — the real monitor path, so the decision is counted and
  // audited. Returns the extension's new state. kFailedPrecondition when it
  // is already healthy.
  StatusOr<std::string> Release(Subject& subject, std::string_view name,
                                std::string_view why);

  // Forces an extension into quarantine (audited administrate, as above).
  StatusOr<std::string> ForceQuarantine(Subject& subject, std::string_view name,
                                        std::string_view why);

  // Arms or disarms operator lockdown after an `administrate` check on the
  // mount root. Returns the resulting system health name.
  StatusOr<std::string> SetLockdown(Subject& subject, bool on, std::string_view why);

 private:
  // Resolves /sys/monitor/health/ext/<name>/state, binding it on first use
  // (the stats plane usually beat us to it).
  StatusOr<NodeId> EnsureLeaf(std::string_view name);

  Kernel* kernel_;
  ExtensionSupervisor* supervisor_;
  HealthServiceOptions options_;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_HEALTH_SERVICE_H_
