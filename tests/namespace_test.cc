#include "src/naming/namespace.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

PrincipalId Owner() { return PrincipalId{0}; }

TEST(NameSpaceTest, RootExists) {
  NameSpace ns;
  const Node* root = ns.Get(ns.root());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->kind, NodeKind::kDirectory);
  EXPECT_EQ(ns.PathOf(ns.root()), "/");
  EXPECT_EQ(ns.node_count(), 1u);
}

TEST(NameSpaceTest, BindAndLookup) {
  NameSpace ns;
  auto svc = ns.Bind(ns.root(), "svc", NodeKind::kDirectory, Owner());
  ASSERT_TRUE(svc.ok());
  auto fs = ns.Bind(*svc, "fs", NodeKind::kService, Owner());
  ASSERT_TRUE(fs.ok());
  auto read = ns.Bind(*fs, "read", NodeKind::kProcedure, Owner());
  ASSERT_TRUE(read.ok());

  auto looked = ns.Lookup("/svc/fs/read");
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(*looked, *read);
  EXPECT_EQ(ns.PathOf(*read), "/svc/fs/read");
  EXPECT_EQ(ns.Get(*read)->kind, NodeKind::kProcedure);
}

TEST(NameSpaceTest, BindPathCreatesIntermediates) {
  NameSpace ns;
  auto node = ns.BindPath("/a/b/c/leaf", NodeKind::kFile, Owner());
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(ns.Lookup("/a").ok());
  EXPECT_TRUE(ns.Lookup("/a/b").ok());
  EXPECT_EQ(ns.Get(*ns.Lookup("/a/b"))->kind, NodeKind::kDirectory);
  EXPECT_EQ(ns.PathOf(*node), "/a/b/c/leaf");
}

TEST(NameSpaceTest, BindPathReusesExisting) {
  NameSpace ns;
  ASSERT_TRUE(ns.BindPath("/a/b/one", NodeKind::kFile, Owner()).ok());
  ASSERT_TRUE(ns.BindPath("/a/b/two", NodeKind::kFile, Owner()).ok());
  auto children = ns.List(*ns.Lookup("/a/b"));
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children->size(), 2u);
}

TEST(NameSpaceTest, DuplicateBindRejected) {
  NameSpace ns;
  ASSERT_TRUE(ns.Bind(ns.root(), "x", NodeKind::kDirectory, Owner()).ok());
  EXPECT_EQ(ns.Bind(ns.root(), "x", NodeKind::kFile, Owner()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(NameSpaceTest, LeavesCannotHaveChildren) {
  NameSpace ns;
  auto file = ns.Bind(ns.root(), "f", NodeKind::kFile, Owner());
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(ns.Bind(*file, "child", NodeKind::kFile, Owner()).status().code(),
            StatusCode::kFailedPrecondition);
  auto proc = ns.Bind(ns.root(), "p", NodeKind::kProcedure, Owner());
  ASSERT_TRUE(proc.ok());
  EXPECT_FALSE(ns.Bind(*proc, "child", NodeKind::kFile, Owner()).ok());
}

TEST(NameSpaceTest, InvalidNamesRejected) {
  NameSpace ns;
  EXPECT_EQ(ns.Bind(ns.root(), "", NodeKind::kFile, Owner()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(ns.Bind(ns.root(), "a/b", NodeKind::kFile, Owner()).ok());
  EXPECT_FALSE(ns.Bind(ns.root(), "..", NodeKind::kFile, Owner()).ok());
}

TEST(NameSpaceTest, LookupMissing) {
  NameSpace ns;
  EXPECT_EQ(ns.Lookup("/missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ns.Lookup("bad-path").status().code(), StatusCode::kInvalidArgument);
}

TEST(NameSpaceTest, UnbindLeaf) {
  NameSpace ns;
  auto f = ns.BindPath("/a/f", NodeKind::kFile, Owner());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(ns.Unbind(*f).ok());
  EXPECT_EQ(ns.Lookup("/a/f").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ns.Get(*f), nullptr);
  // The name can be rebound afterwards; a new id is issued.
  auto f2 = ns.BindPath("/a/f", NodeKind::kFile, Owner());
  ASSERT_TRUE(f2.ok());
  EXPECT_NE(*f2, *f);
}

TEST(NameSpaceTest, UnbindNonEmptyRejected) {
  NameSpace ns;
  ASSERT_TRUE(ns.BindPath("/a/f", NodeKind::kFile, Owner()).ok());
  EXPECT_EQ(ns.Unbind(*ns.Lookup("/a")).code(), StatusCode::kFailedPrecondition);
}

TEST(NameSpaceTest, UnbindRootRejected) {
  NameSpace ns;
  EXPECT_EQ(ns.Unbind(ns.root()).code(), StatusCode::kFailedPrecondition);
}

TEST(NameSpaceTest, ListIsSortedByName) {
  NameSpace ns;
  ASSERT_TRUE(ns.Bind(ns.root(), "zeta", NodeKind::kFile, Owner()).ok());
  ASSERT_TRUE(ns.Bind(ns.root(), "alpha", NodeKind::kFile, Owner()).ok());
  ASSERT_TRUE(ns.Bind(ns.root(), "mid", NodeKind::kFile, Owner()).ok());
  auto children = ns.List(ns.root());
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 3u);
  EXPECT_EQ(ns.Get((*children)[0])->name, "alpha");
  EXPECT_EQ(ns.Get((*children)[1])->name, "mid");
  EXPECT_EQ(ns.Get((*children)[2])->name, "zeta");
}

TEST(NameSpaceTest, LookupWithAncestorsReportsChain) {
  NameSpace ns;
  auto leaf = ns.BindPath("/a/b/c", NodeKind::kFile, Owner());
  ASSERT_TRUE(leaf.ok());
  AncestorBuffer ancestors;
  auto node = ns.LookupWithAncestors("/a/b/c", &ancestors);
  EXPECT_FALSE(ancestors.spilled());
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(ancestors.size(), 3u);
  EXPECT_EQ(ancestors[0], ns.root());
  EXPECT_EQ(ns.PathOf(ancestors[1]), "/a");
  EXPECT_EQ(ns.PathOf(ancestors[2]), "/a/b");
}

TEST(NameSpaceTest, GenerationsAdvanceOnMutation) {
  NameSpace ns;
  uint64_t g0 = ns.global_generation();
  auto node = ns.BindPath("/x", NodeKind::kFile, Owner());
  ASSERT_TRUE(node.ok());
  uint64_t g1 = ns.global_generation();
  EXPECT_GT(g1, g0);
  ASSERT_TRUE(ns.SetAclRef(*node, 5).ok());
  uint64_t g2 = ns.global_generation();
  EXPECT_GT(g2, g1);
  ASSERT_TRUE(ns.SetLabelRef(*node, 3).ok());
  EXPECT_GT(ns.global_generation(), g2);
}

TEST(NameSpaceTest, SecurityMetadataRoundTrip) {
  NameSpace ns;
  auto node = ns.BindPath("/x", NodeKind::kObject, Owner());
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(ns.Get(*node)->acl_ref, kNoRef);
  EXPECT_EQ(ns.Get(*node)->label_ref, kNoRef);
  ASSERT_TRUE(ns.SetAclRef(*node, 7).ok());
  ASSERT_TRUE(ns.SetLabelRef(*node, 9).ok());
  ASSERT_TRUE(ns.SetOwner(*node, PrincipalId{42}).ok());
  EXPECT_EQ(ns.Get(*node)->acl_ref, 7u);
  EXPECT_EQ(ns.Get(*node)->label_ref, 9u);
  EXPECT_EQ(ns.Get(*node)->owner.value, 42u);
}

TEST(NameSpaceTest, MetadataOnDeadNodeFails) {
  NameSpace ns;
  auto node = ns.BindPath("/x", NodeKind::kFile, Owner());
  ASSERT_TRUE(ns.Unbind(*node).ok());
  EXPECT_EQ(ns.SetAclRef(*node, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(ns.SetLabelRef(*node, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(ns.SetOwner(*node, Owner()).code(), StatusCode::kNotFound);
}

TEST(NameSpaceTest, KindPredicates) {
  EXPECT_TRUE(KindAllowsChildren(NodeKind::kDirectory));
  EXPECT_TRUE(KindAllowsChildren(NodeKind::kService));
  EXPECT_TRUE(KindAllowsChildren(NodeKind::kInterface));
  EXPECT_TRUE(KindAllowsChildren(NodeKind::kObject));
  EXPECT_FALSE(KindAllowsChildren(NodeKind::kProcedure));
  EXPECT_FALSE(KindAllowsChildren(NodeKind::kFile));
}

TEST(NameSpaceTest, DeepHierarchyPathReconstruction) {
  NameSpace ns;
  std::string path;
  for (int i = 0; i < 20; ++i) {
    path += "/d" + std::to_string(i);
  }
  auto node = ns.BindPath(path, NodeKind::kDirectory, Owner());
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(ns.PathOf(*node), path);
}

}  // namespace
}  // namespace xsec
