// Randomized information-flow soundness simulation (experiment T3).
//
// "All flow of information in an extensible system can thus be tightly
// controlled" (§2.2). The simulation builds a world whose DAC layer is wide
// open (every ACL grants everything to everyone) and whose subjects and
// objects carry random security classes, then fires a stream of random
// read / write / write-append operations at a protection model. Every
// operation the model *allows* is checked against the lattice ground truth;
// an allowed operation that violates the flow rules is one flow violation.
// Under the full xsec model the count is zero by construction; every
// DAC-only model leaks.

#ifndef XSEC_SRC_CORE_FLOW_SIM_H_
#define XSEC_SRC_CORE_FLOW_SIM_H_

#include <atomic>
#include <cstdint>

#include "src/baselines/model.h"

namespace xsec {

struct FlowSimConfig {
  size_t num_subjects = 16;
  size_t num_objects = 64;
  uint64_t num_ops = 10000;
  uint64_t seed = 42;
  size_t num_levels = 3;
  size_t num_categories = 4;
  // Cooperative cancellation: the op loop polls the deadline and the cancel
  // flag once per `poll_every_ops` operations (the poll interval), so a
  // cancelled run stops within one interval instead of finishing num_ops.
  // deadline_ns is absolute on the MonotonicNowNs clock; 0 disables it, a
  // null `cancel` disables the flag. Handlers wire these from CallContext.
  uint64_t deadline_ns = 0;
  const std::atomic<bool>* cancel = nullptr;
  uint64_t poll_every_ops = 512;
};

struct FlowSimResult {
  uint64_t ops = 0;
  uint64_t allowed = 0;
  uint64_t denied = 0;
  uint64_t flow_violations = 0;       // allowed but flow-illegal
  uint64_t over_restrictions = 0;     // denied but flow-legal (and DAC-legal)
  // True iff the run stopped early at a cancellation point; `ops` then holds
  // the operations actually executed. The partial counters remain valid.
  bool cancelled = false;
};

FlowSimResult RunFlowSimulation(const ProtectionModel& model, const FlowSimConfig& config);

}  // namespace xsec

#endif  // XSEC_SRC_CORE_FLOW_SIM_H_
