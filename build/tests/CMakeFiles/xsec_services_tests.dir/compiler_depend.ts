# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for xsec_services_tests.
