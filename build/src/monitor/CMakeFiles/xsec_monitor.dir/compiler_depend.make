# Empty compiler generated dependencies file for xsec_monitor.
# This may be replaced when dependencies are built.
