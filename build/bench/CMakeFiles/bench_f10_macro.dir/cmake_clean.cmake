file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_macro.dir/bench_f10_macro.cc.o"
  "CMakeFiles/bench_f10_macro.dir/bench_f10_macro.cc.o.d"
  "bench_f10_macro"
  "bench_f10_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
