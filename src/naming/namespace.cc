#include "src/naming/namespace.h"

#include "src/base/strings.h"

namespace xsec {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDirectory:
      return "directory";
    case NodeKind::kService:
      return "service";
    case NodeKind::kInterface:
      return "interface";
    case NodeKind::kObject:
      return "object";
    case NodeKind::kProcedure:
      return "procedure";
    case NodeKind::kFile:
      return "file";
  }
  return "unknown";
}

bool KindAllowsChildren(NodeKind kind) {
  return kind != NodeKind::kProcedure && kind != NodeKind::kFile;
}

NameSpace::NameSpace() {
  Node root;
  root.id = NodeId{0};
  root.parent = NodeId{0};
  root.kind = NodeKind::kDirectory;
  root.name = "";
  nodes_.push_back(std::move(root));
}

Node* NameSpace::GetMutable(NodeId id) {
  if (id.value >= nodes_.size() || !nodes_[id.value].alive) {
    return nullptr;
  }
  return &nodes_[id.value];
}

const Node* NameSpace::Get(NodeId id) const {
  if (id.value >= nodes_.size() || !nodes_[id.value].alive) {
    return nullptr;
  }
  return &nodes_[id.value];
}

void NameSpace::Touch(Node& node) {
  ++node.generation;
  ++global_generation_;
}

StatusOr<NodeId> NameSpace::Bind(NodeId parent, std::string_view name, NodeKind kind,
                                 PrincipalId owner) {
  Node* p = GetMutable(parent);
  if (p == nullptr) {
    return NotFoundError("parent node does not exist");
  }
  if (!KindAllowsChildren(p->kind)) {
    return FailedPreconditionError(
        StrFormat("node '%s' is a %s and cannot have children", PathOf(parent).c_str(),
                  std::string(NodeKindName(p->kind)).c_str()));
  }
  if (!IsValidComponent(name)) {
    return InvalidArgumentError(StrFormat("invalid name '%s'", std::string(name).c_str()));
  }
  if (p->children.find(name) != p->children.end()) {
    return AlreadyExistsError(
        StrFormat("'%s' already exists under '%s'", std::string(name).c_str(),
                  PathOf(parent).c_str()));
  }
  NodeId id{static_cast<uint32_t>(nodes_.size())};
  Node child;
  child.id = id;
  child.parent = parent;
  child.kind = kind;
  child.name = std::string(name);
  child.owner = owner;
  nodes_.push_back(std::move(child));
  // Vector may have reallocated; re-fetch the parent.
  Node& pp = nodes_[parent.value];
  pp.children.emplace(std::string(name), id);
  Touch(pp);
  return id;
}

StatusOr<NodeId> NameSpace::BindPath(std::string_view path, NodeKind kind, PrincipalId owner) {
  auto components = ParsePath(path);
  if (!components.ok()) {
    return components.status();
  }
  if (components->empty()) {
    return InvalidArgumentError("cannot bind the root");
  }
  NodeId cur = root();
  for (size_t i = 0; i + 1 < components->size(); ++i) {
    auto child = Child(cur, (*components)[i]);
    if (child.ok()) {
      cur = *child;
      continue;
    }
    auto made = Bind(cur, (*components)[i], NodeKind::kDirectory, owner);
    if (!made.ok()) {
      return made.status();
    }
    cur = *made;
  }
  return Bind(cur, components->back(), kind, owner);
}

Status NameSpace::Unbind(NodeId node) {
  Node* n = GetMutable(node);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  if (node == root()) {
    return FailedPreconditionError("cannot unbind the root");
  }
  if (!n->children.empty()) {
    return FailedPreconditionError(
        StrFormat("'%s' still has %zu children", PathOf(node).c_str(), n->children.size()));
  }
  Node& parent = nodes_[n->parent.value];
  parent.children.erase(n->name);
  n->alive = false;
  Touch(parent);
  Touch(*n);
  return OkStatus();
}

StatusOr<NodeId> NameSpace::Child(NodeId parent, std::string_view name) const {
  const Node* p = Get(parent);
  if (p == nullptr) {
    return NotFoundError("parent node does not exist");
  }
  auto it = p->children.find(name);
  if (it == p->children.end()) {
    return NotFoundError(StrFormat("'%s' has no child '%s'", PathOf(parent).c_str(),
                                   std::string(name).c_str()));
  }
  return it->second;
}

StatusOr<NodeId> NameSpace::Lookup(std::string_view path) const {
  return LookupWithAncestors(path, nullptr);
}

StatusOr<NodeId> NameSpace::LookupWithAncestors(std::string_view path,
                                                std::vector<NodeId>* ancestors) const {
  auto components = ParsePath(path);
  if (!components.ok()) {
    return components.status();
  }
  NodeId cur = root();
  for (const std::string& component : *components) {
    if (ancestors != nullptr) {
      ancestors->push_back(cur);
    }
    auto next = Child(cur, component);
    if (!next.ok()) {
      return next.status();
    }
    cur = *next;
  }
  return cur;
}

StatusOr<std::vector<NodeId>> NameSpace::List(NodeId node) const {
  const Node* n = Get(node);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  std::vector<NodeId> out;
  out.reserve(n->children.size());
  for (const auto& [name, id] : n->children) {
    out.push_back(id);
  }
  return out;
}

std::string NameSpace::PathOf(NodeId id) const {
  const Node* n = Get(id);
  if (n == nullptr) {
    return "<dead>";
  }
  if (id == root()) {
    return "/";
  }
  std::vector<const Node*> chain;
  while (n->id != root()) {
    chain.push_back(n);
    n = &nodes_[n->parent.value];
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out += '/';
    out += (*it)->name;
  }
  return out;
}

Status NameSpace::SetAclRef(NodeId id, uint32_t acl_ref) {
  Node* n = GetMutable(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->acl_ref = acl_ref;
  Touch(*n);
  return OkStatus();
}

Status NameSpace::SetLabelRef(NodeId id, uint32_t label_ref) {
  Node* n = GetMutable(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->label_ref = label_ref;
  Touch(*n);
  return OkStatus();
}

Status NameSpace::SetOwner(NodeId id, PrincipalId owner) {
  Node* n = GetMutable(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->owner = owner;
  Touch(*n);
  return OkStatus();
}

}  // namespace xsec
