file(REMOVE_RECURSE
  "libxsec_core.a"
)
