// Operational statistics for the mediation path.
//
// The paper's reference monitor is "a central facility to provide naming and
// protection services for the entire system" (§3); this module is that
// facility's own instrument panel. It extends the AuditLog's two coarse
// counters into per-DenyReason denial counters, per-access-mode check
// counters, and a log-linear (HdrHistogram-style) latency histogram sampled
// on the check path. StatsService (src/services/stats_service.h) surfaces
// every counter as a read-only node under /sys/monitor/... in the
// hierarchical namespace, so visibility of the telemetry is itself mediated
// by the monitor.
//
// Thread safety and hot-path cost: a shared fetch_add per counter would put
// several locked read-modify-writes (~7ns each measured) on every check —
// far more than the mediation fast path itself costs. Counters are instead
// striped: each recording thread claims a private cache-line-aligned slot
// the first time it touches an instance and then increments with plain
// relaxed load+store pairs (single writer per slot, ~0.4ns each). Threads
// beyond kSlots share one overflow slot that falls back to fetch_add, so
// totals stay exact at any thread count. Readers aggregate all slots with
// relaxed loads. Latency is *sampled* (1 in kSampleEvery checks per thread,
// per instance) so the two steady_clock reads stay off the common case.
//
// Consistency: individual counters are monotone and individually coherent,
// but two *separate* leaf reads are not mutually consistent. TakeSnapshot()
// is the sanctioned multi-counter view: it renders every counter in one
// pass, ordered so that its invariants (allowed + denied == checks_total,
// sum(by_mode) >= checks_total, sum(latency_buckets) >= latency_samples)
// hold even under concurrent recording, and it retries around a concurrent
// Reset() via the reset generation stamp (docs/MODEL.md §11).

#ifndef XSEC_SRC_MONITOR_MONITOR_STATS_H_
#define XSEC_SRC_MONITOR_MONITOR_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/dac/access_mode.h"
#include "src/monitor/audit.h"

namespace xsec {

class MonitorStats {
 public:
  // Log-linear nanosecond buckets (HdrHistogram-style): each power-of-two
  // range is split into kSubBuckets linear sub-buckets, so a bucket's width
  // is at most 1/kSubBuckets of its lower bound — quantiles read from bucket
  // upper bounds are within 12.5% of the exact sample. Values below
  // 2*kSubBuckets ns get exact (1 ns) buckets; 2^kMaxLatencyBits ns ≈ 2.1 s
  // caps the histogram and anything slower lands in the last bucket.
  static constexpr size_t kSubBucketBits = 3;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 8
  static constexpr size_t kMaxLatencyBits = 31;
  static constexpr size_t kLatencyBuckets =
      (kMaxLatencyBits - kSubBucketBits + 1) * kSubBuckets;  // 232
  // One check in kSampleEvery (per thread, per instance) is timed; must be a
  // power of two. Chosen so the two steady_clock reads a sample costs (~40ns
  // each on a virtualized clock) amortize to well under a nanosecond per
  // check.
  static constexpr uint64_t kSampleEvery = 256;
  // Threads with a private slot; the rest share the overflow slot.
  static constexpr size_t kSlots = 32;

  MonitorStats();
  MonitorStats(const MonitorStats&) = delete;
  MonitorStats& operator=(const MonitorStats&) = delete;

  // The bucket a latency sample lands in, and a bucket's inclusive upper
  // bound in ns. Exposed so tests can round-trip
  // RecordLatencyNs(ns) -> bucket -> quantile upper bound.
  static constexpr size_t LatencyBucketIndex(uint64_t ns) {
    if (ns < 2 * kSubBuckets) {
      return static_cast<size_t>(ns);  // exact 1 ns buckets
    }
    if (ns >= (uint64_t{1} << kMaxLatencyBits)) {
      return kLatencyBuckets - 1;  // overflow bucket
    }
    // msb >= kSubBucketBits + 1 here; the kSubBucketBits bits below the MSB
    // select the linear sub-bucket within the octave.
    unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(ns));
    unsigned shift = msb - static_cast<unsigned>(kSubBucketBits);
    size_t sub = static_cast<size_t>(ns >> shift) & (kSubBuckets - 1);
    return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
  }
  static constexpr uint64_t LatencyBucketUpperBoundNs(size_t bucket) {
    if (bucket < 2 * kSubBuckets) {
      return bucket;  // exact buckets hold a single value
    }
    unsigned shift = static_cast<unsigned>(bucket / kSubBuckets) - 1;
    uint64_t lower = (kSubBuckets + (bucket & (kSubBuckets - 1))) << shift;
    return lower + ((uint64_t{1} << shift) - 1);
  }

  // -- Recording (check path; lock-free) --------------------------------------

  // Counts one decision: one count per access mode present in the request,
  // then the reason bucket (kNone = allowed). The total is derived on read —
  // every decision lands in exactly one reason bucket — so the common
  // single-mode check costs two load+store pairs, not three. The reason bump
  // is a release store *after* the mode bumps: a reader that observes a
  // decision's reason (acquire) therefore also observes its modes, which is
  // what makes TakeSnapshot's sum(by_mode) >= checks_total invariant hold
  // under concurrent recording.
  void RecordDecision(AccessModeSet modes, DenyReason reason) {
    Slot& slot = *LocalEntry().slot;
    uint32_t bits = modes.bits();
    while (bits != 0) {
      unsigned b = static_cast<unsigned>(__builtin_ctz(bits));
      Bump(slot, slot.by_mode[b]);
      bits &= bits - 1;
    }
    BumpRelease(slot, slot.by_reason[static_cast<size_t>(reason)]);
  }

  // Thread-local accumulator for batched recording (the mediation-ring
  // worker path): the worker tallies a whole batch of decisions here, then
  // flushes once with RecordBatch — one slot-cache probe and one release
  // store per batch instead of one per decision.
  struct BatchCounts {
    uint32_t by_mode[kAccessModeCount] = {};
    uint32_t by_reason[kDenyReasonCount] = {};
    uint32_t total = 0;

    void Add(AccessModeSet modes, DenyReason reason) {
      uint32_t bits = modes.bits();
      while (bits != 0) {
        ++by_mode[static_cast<unsigned>(__builtin_ctz(bits))];
        bits &= bits - 1;
      }
      ++by_reason[static_cast<size_t>(reason)];
      ++total;
    }
  };

  // Flushes a batch accumulator in one pass. Ordering mirrors
  // RecordDecision extended to counts > 1: all mode adds land relaxed
  // first, then the reason adds with release, so a snapshot reader that
  // observes the batch's reasons (acquire) also observes its modes and the
  // sum(by_mode) >= checks_total invariant survives mid-batch reads.
  void RecordBatch(const BatchCounts& counts) {
    if (counts.total == 0) {
      return;
    }
    Slot& slot = *LocalEntry().slot;
    for (size_t m = 0; m < kAccessModeCount; ++m) {
      if (counts.by_mode[m] != 0) {
        BumpN(slot, slot.by_mode[m], counts.by_mode[m]);
      }
    }
    for (size_t r = 0; r < kDenyReasonCount; ++r) {
      if (counts.by_reason[r] != 0) {
        BumpReleaseN(slot, slot.by_reason[r], counts.by_reason[r]);
      }
    }
  }

  // True once per kSampleEvery calls on this thread *for this instance*; the
  // caller then times the check and reports it via RecordLatencyNs. The
  // clock lives in the per-thread slot-cache entry, keyed by instance_id_:
  // a process-wide thread_local clock would be shared by all live instances
  // (e.g. the kernel's monitor plus a test's), halving each one's effective
  // sample rate and phase-correlating which instance gets timed.
  bool ShouldSampleLatency() {
    SlotCache::Entry& entry = LocalEntry();
    return (entry.sample_clock++ & (kSampleEvery - 1)) == 0;
  }

  void RecordLatencyNs(uint64_t ns);

  // -- Reading (any thread; aggregates over the slots) -------------------------
  // Each getter is individually torn-Reset-safe (it retries on a concurrent
  // Reset generation change), but two getter calls are still not mutually
  // consistent; TakeSnapshot is the sanctioned multi-counter view.

  uint64_t checks_total() const;
  uint64_t allowed_total() const { return by_reason(DenyReason::kNone); }
  uint64_t denied_total() const;
  uint64_t by_reason(DenyReason reason) const;
  uint64_t by_mode(AccessMode mode) const;
  uint64_t latency_samples() const;
  uint64_t latency_bucket(size_t i) const;

  // Approximate quantile (q in [0,1]) of the sampled check latency, in ns:
  // the upper bound of the histogram bucket containing the q-th sample.
  // 0 if nothing has been sampled yet.
  uint64_t LatencyQuantileNs(double q) const;

  // One mutually consistent rendering of every counter. Invariants that hold
  // on any snapshot, even one taken under concurrent recording:
  //   allowed + denied == checks_total           (derived from one pass)
  //   sum(by_reason)   == checks_total
  //   sum(by_mode)     >= checks_total           (for >= 1 mode per decision)
  //   sum(latency_buckets) >= latency_samples
  // `version` is left 0 here; the publisher (StatsService) stamps it.
  struct Snapshot {
    uint64_t version = 0;
    uint64_t reset_epoch = 0;  // completed Reset() calls at capture time
    uint64_t checks_total = 0;
    uint64_t allowed = 0;
    uint64_t denied = 0;
    uint64_t by_reason[kDenyReasonCount] = {};
    uint64_t by_mode[kAccessModeCount] = {};
    uint64_t latency_samples = 0;
    uint64_t latency_buckets[kLatencyBuckets] = {};

    uint64_t ModeTotal() const;
    uint64_t LatencyBucketTotal() const;
    uint64_t LatencyQuantileNs(double q) const;
    // Counter equality, ignoring `version` (change detection for publishers).
    bool SameCounters(const Snapshot& other) const;
  };
  Snapshot TakeSnapshot() const;

  // Zeroes every counter. Safe against concurrent readers: the reset
  // generation goes odd for the duration, and readers retry until it is even
  // and unchanged across their pass. Concurrent *recording* is tolerated but
  // not synchronized — a decision in flight during the reset may leave a
  // late increment behind (documented in docs/MODEL.md §11).
  void Reset();

 private:
  // One writer's counters, padded to its own cache line(s). `shared` is set
  // on the overflow slot only, switching its writers to fetch_add.
  struct alignas(64) Slot {
    std::atomic<uint64_t> by_reason[kDenyReasonCount] = {};
    std::atomic<uint64_t> by_mode[kAccessModeCount] = {};
    std::atomic<uint64_t> latency_samples{0};
    std::atomic<uint64_t> latency_buckets[kLatencyBuckets] = {};
    bool shared = false;
  };

  // Single-writer slots use a plain load+store (no locked RMW); the shared
  // overflow slot needs the atomic RMW for correctness.
  static void Bump(Slot& slot, std::atomic<uint64_t>& counter) {
    if (slot.shared) {
      counter.fetch_add(1, std::memory_order_relaxed);
    } else {
      counter.store(counter.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    }
  }

  // Release flavor for the counter that *completes* a record (the reason, or
  // the latency sample count): pairs with the snapshot reader's acquire
  // loads so a completed record's earlier relaxed bumps are visible with it.
  static void BumpRelease(Slot& slot, std::atomic<uint64_t>& counter) {
    if (slot.shared) {
      counter.fetch_add(1, std::memory_order_release);
    } else {
      counter.store(counter.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
    }
  }

  // N-at-a-time flavors for RecordBatch; same single-writer/overflow split.
  static void BumpN(Slot& slot, std::atomic<uint64_t>& counter, uint64_t n) {
    if (slot.shared) {
      counter.fetch_add(n, std::memory_order_relaxed);
    } else {
      counter.store(counter.load(std::memory_order_relaxed) + n,
                    std::memory_order_relaxed);
    }
  }

  static void BumpReleaseN(Slot& slot, std::atomic<uint64_t>& counter, uint64_t n) {
    if (slot.shared) {
      counter.fetch_add(n, std::memory_order_release);
    } else {
      counter.store(counter.load(std::memory_order_relaxed) + n,
                    std::memory_order_release);
    }
  }

  // Per-thread cache of recently used (instance -> slot) bindings, keyed by
  // a process-wide instance id so a recycled allocation never aliases a
  // stale entry. Several ways, so a thread alternating between a few live
  // instances (the kernel's monitor plus a test's) keeps each instance's
  // slot — and its private latency sample clock — instead of thrashing.
  struct SlotCache {
    struct Entry {
      uint64_t instance = ~uint64_t{0};
      Slot* slot = nullptr;
      uint64_t sample_clock = 0;
    };
    static constexpr size_t kWays = 4;
    Entry entries[kWays];
    size_t next_victim = 0;
  };

  // The calling thread's cache entry for this instance. The hit path is
  // inline — one TLS load and up to kWays compares; only a thread's first
  // touch of an instance (or a re-touch after eviction) leaves the header.
  SlotCache::Entry& LocalEntry() {
    thread_local SlotCache cache;
    for (SlotCache::Entry& entry : cache.entries) {
      if (entry.instance == instance_id_) {
        return entry;
      }
    }
    return ClaimSlot(cache);
  }

  SlotCache::Entry& ClaimSlot(SlotCache& cache);

  template <typename Fn>
  uint64_t Sum(Fn&& per_slot) const {
    uint64_t total = 0;
    for (size_t s = 0; s < kSlots + 1; ++s) {
      total += per_slot(slots_[s]);
    }
    return total;
  }

  // Runs `read` under the reset-generation seqlock: retries while a Reset is
  // in flight or completed mid-read, so the pass never observes half-zeroed
  // slots. `generation_out` (optional) receives the even generation the pass
  // ran under.
  template <typename Fn>
  uint64_t ReadStable(Fn&& read, uint64_t* generation_out = nullptr) const;

  const uint64_t instance_id_;
  std::atomic<uint32_t> next_slot_{0};
  // Even = stable; odd = a Reset is zeroing the slots. Readers retry until
  // they complete a pass under one unchanged even generation.
  std::atomic<uint64_t> reset_generation_{0};
  std::mutex reset_mu_;  // serializes Reset() against itself
  Slot slots_[kSlots + 1];  // +1: the shared overflow slot
};

// Nanoseconds from the steady clock, for latency sampling and deadlines.
uint64_t MonotonicNowNs();

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_MONITOR_STATS_H_
