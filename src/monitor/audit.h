// The audit log. The paper lists "auditing of security relevant system
// events" among the concerns a complete security model must address (§1);
// here every access decision can be recorded, under a configurable policy.
// Experiment F7 measures the cost of each policy.
//
// Thread safety: Record()/Count() may be called from any number of checking
// threads. The counters are lock-free atomics, so the hot allow path (under
// the default denials-only policy) never takes a lock; records that the
// policy retains go into a bounded ring — many producers serialize briefly
// on the ring mutex, the (single) consumer drains via records()/Query(),
// and the oldest record is overwritten once the ring is full.

#ifndef XSEC_SRC_MONITOR_AUDIT_H_
#define XSEC_SRC_MONITOR_AUDIT_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/dac/access_mode.h"
#include "src/naming/namespace.h"
#include "src/principal/principal.h"

namespace xsec {

enum class AuditPolicy : uint8_t {
  kOff = 0,
  kDenialsOnly,
  kAll,
};

enum class DenyReason : uint8_t {
  kNone = 0,          // allowed
  kNotFound,          // target (or an ancestor) does not exist
  kTraversal,         // denied while resolving an ancestor
  kDacExplicitDeny,   // a negative ACL entry matched
  kDacNoGrant,        // no positive ACL entry covered the request
  kMacFlow,           // the lattice flow rules forbid the access
  kNotAuthorized,     // administrative operation without administrate rights
};

// Number of DenyReason values, kNone included (per-reason counter arrays).
inline constexpr size_t kDenyReasonCount = 7;

std::string_view DenyReasonName(DenyReason reason);

struct AuditRecord {
  uint64_t sequence = 0;
  PrincipalId principal;
  uint64_t thread_id = 0;
  NodeId node;
  std::string path;          // resolved path, or the requested one on kNotFound
  AccessModeSet modes;
  bool allowed = false;
  DenyReason reason = DenyReason::kNone;
  std::string detail;        // human-readable explanation

  std::string ToString() const;

  // One-line JSON object (no trailing newline) with the full record; the
  // NDJSON streaming schema is documented in docs/MODEL.md §11.
  std::string ToJson() const;
};

// A sink for AuditLog::set_sink that writes each retained record as one
// NDJSON line to `out`. The stream must outlive the log; writes happen under
// the log's ring mutex, so point it at a local file or buffer, not a slow
// remote transport.
std::function<void(const AuditRecord&)> MakeNdjsonSink(std::ostream* out);

// Rotation policy for an NDJSON audit file: the current file is rotated when
// appending the next record would push it past max_bytes, or when it has
// been open longer than max_age_ns (0 disables that limit). On rotation the
// files shift path -> path.1 -> ... -> path.max_keep and the oldest is
// deleted; max_keep == 0 truncates in place instead of keeping history.
struct NdjsonRotationPolicy {
  uint64_t max_bytes = 0;
  uint64_t max_age_ns = 0;
  size_t max_keep = 3;
};

// A size/age-rotating NDJSON audit file writer (tools/xsec_stats wires one
// behind --ndjson). Not internally synchronized: the AuditLog invokes its
// sink under the ring mutex, which already serializes writes.
class NdjsonFileRotator {
 public:
  NdjsonFileRotator(std::string path, NdjsonRotationPolicy policy);
  ~NdjsonFileRotator();
  NdjsonFileRotator(const NdjsonFileRotator&) = delete;
  NdjsonFileRotator& operator=(const NdjsonFileRotator&) = delete;

  // Opens (truncating) the base file. Must succeed before Write is used.
  Status Open();

  void Write(const AuditRecord& record);

  uint64_t rotations() const { return rotations_; }
  const std::string& path() const { return path_; }

 private:
  void RotateIfNeeded(size_t next_line_bytes);

  std::string path_;
  NdjsonRotationPolicy policy_;
  std::FILE* out_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t opened_at_ns_ = 0;
  uint64_t rotations_ = 0;
};

// Adapts a rotator into an AuditLog sink; the shared_ptr keeps it alive for
// as long as the log holds the sink.
std::function<void(const AuditRecord&)> MakeRotatingNdjsonSink(
    std::shared_ptr<NdjsonFileRotator> rotator);

class AuditLog {
 public:
  explicit AuditLog(size_t capacity = 4096) : capacity_(capacity) {}

  void set_policy(AuditPolicy policy) { policy_.store(policy, std::memory_order_relaxed); }
  AuditPolicy policy() const { return policy_.load(std::memory_order_relaxed); }

  // Records a decision if the policy asks for it. Counters are maintained
  // regardless of policy.
  void Record(AuditRecord record);

  // True iff the current policy would retain a record with this outcome.
  // Callers use this to skip building record text (path strings) that would
  // be thrown away; if it returns false they call Count() instead.
  bool WouldRetain(bool allowed) const {
    AuditPolicy p = policy();
    return p == AuditPolicy::kAll || (p == AuditPolicy::kDenialsOnly && !allowed);
  }

  // Maintains counters without retaining a record. Lock-free.
  void Count(bool allowed) {
    total_checks_.fetch_add(1, std::memory_order_relaxed);
    if (!allowed) {
      total_denials_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Optional sink invoked for every retained record (e.g. a test collector).
  // Install at setup time, before concurrent checking starts.
  void set_sink(std::function<void(const AuditRecord&)> sink);

  // Snapshot of the retained records, oldest first.
  std::vector<AuditRecord> records() const;

  // Number of currently retained records, without copying them (the cheap
  // gauge behind /sys/monitor/audit/retained).
  size_t retained() const;

  // Retained records matching a predicate, oldest first.
  std::vector<AuditRecord> Query(const std::function<bool(const AuditRecord&)>& pred) const;

  uint64_t total_checks() const { return total_checks_.load(std::memory_order_relaxed); }
  uint64_t total_denials() const { return total_denials_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  void Clear();

 private:
  // Appends `visit(record)` for each retained record, oldest first, with
  // mu_ held.
  template <typename Visit>
  void ForEachLocked(Visit visit) const;

  size_t capacity_;
  std::atomic<AuditPolicy> policy_{AuditPolicy::kDenialsOnly};
  std::atomic<uint64_t> total_checks_{0};
  std::atomic<uint64_t> total_denials_{0};
  std::atomic<uint64_t> dropped_{0};

  // Ring of retained records: grows to capacity_, then head_ marks the
  // oldest record and new ones overwrite it.
  mutable std::mutex mu_;
  std::vector<AuditRecord> ring_;
  size_t head_ = 0;
  std::function<void(const AuditRecord&)> sink_;
  uint64_t next_sequence_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_AUDIT_H_
