// Additional property suites: dispatcher selection invariants, audit
// completeness, policy-serialization round-trips over random worlds, and the
// high-water-mark (floating label) extension.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/base/rng.h"
#include "src/extsys/dispatcher.h"
#include "src/monitor/reference_monitor.h"
#include "src/policy/policy_io.h"

namespace xsec {
namespace {

SecurityClass RandomClass(Rng& rng, size_t categories = 4, size_t levels = 3) {
  CategorySet cats(categories);
  for (size_t c = 0; c < categories; ++c) {
    if (rng.NextBool(1, 2)) {
      cats.Set(c);
    }
  }
  return SecurityClass(static_cast<TrustLevel>(rng.NextBelow(levels)), std::move(cats));
}

// ---- dispatcher selection invariants ----------------------------------------

class DispatcherPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DispatcherPropertyTest, SelectionInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  EventDispatcher dispatcher;
  NodeId iface{1};
  std::vector<SecurityClass> handler_classes;
  size_t n = 1 + rng.NextBelow(12);
  for (size_t i = 0; i < n; ++i) {
    SecurityClass cls = RandomClass(rng);
    handler_classes.push_back(cls);
    dispatcher.Register(iface, ExtensionId{static_cast<uint32_t>(i)}, cls,
                        [i](CallContext&) -> StatusOr<Value> {
                          return Value{static_cast<int64_t>(i)};
                        });
  }
  for (int trial = 0; trial < 30; ++trial) {
    SecurityClass caller = RandomClass(rng);
    std::vector<size_t> eligible;
    for (size_t i = 0; i < n; ++i) {
      if (caller.Dominates(handler_classes[i])) {
        eligible.push_back(i);
      }
    }
    auto selected = dispatcher.Select(iface, caller, DispatchMode::kClassSelected);
    auto broadcast = dispatcher.Select(iface, caller, DispatchMode::kBroadcast);
    if (eligible.empty()) {
      EXPECT_EQ(selected.status().code(), StatusCode::kPermissionDenied);
      EXPECT_EQ(broadcast.status().code(), StatusCode::kPermissionDenied);
      continue;
    }
    // Broadcast returns exactly the eligible set, in registration order.
    ASSERT_TRUE(broadcast.ok());
    ASSERT_EQ(broadcast->size(), eligible.size());
    for (size_t k = 0; k < eligible.size(); ++k) {
      EXPECT_EQ((*broadcast)[k]->extension.value, eligible[k]);
    }
    // Class-selected returns one eligible handler whose class no other
    // eligible handler strictly dominates (maximality).
    ASSERT_TRUE(selected.ok());
    ASSERT_EQ(selected->size(), 1u);
    size_t winner = selected->front()->extension.value;
    EXPECT_TRUE(caller.Dominates(handler_classes[winner]));
    for (size_t i : eligible) {
      EXPECT_FALSE(handler_classes[i].StrictlyDominates(handler_classes[winner]))
          << "handler " << i << " strictly dominates the selected " << winner;
    }
    // Determinism.
    auto again = dispatcher.Select(iface, caller, DispatchMode::kClassSelected);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->front()->extension.value, winner);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatcherPropertyTest, ::testing::Range(0, 10));

// ---- audit completeness ------------------------------------------------------

TEST(AuditCompletenessTest, EveryDenialIsRetainedUnderDenialsOnly) {
  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  MonitorOptions options;
  options.audit_policy = AuditPolicy::kDenialsOnly;
  options.audit_capacity = 1 << 14;
  ReferenceMonitor monitor(&ns, &acls, &principals, &labels, options);
  PrincipalId user = *principals.CreateUser("u");
  (void)labels.DefineLevels({"low", "high"});

  Rng rng(99);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) {
    NodeId node = *ns.BindPath("/o/n" + std::to_string(i), NodeKind::kObject, PrincipalId{});
    if (rng.NextBool(1, 2)) {
      Acl acl;
      acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
      (void)ns.SetAclRef(node, acls.Create(std::move(acl)));
    }
    if (rng.NextBool(1, 2)) {
      (void)ns.SetLabelRef(node, labels.StoreLabel(SecurityClass(1, CategorySet(0))));
    }
    nodes.push_back(node);
  }
  Subject subject{user, labels.Bottom(), 1};
  uint64_t denials = 0;
  for (int round = 0; round < 50; ++round) {
    NodeId node = nodes[rng.NextBelow(nodes.size())];
    AccessModeSet modes(static_cast<AccessMode>(1u << rng.NextBelow(kAccessModeCount)));
    Decision d = monitor.Check(subject, node, modes);
    if (!d.allowed) {
      ++denials;
    }
  }
  EXPECT_EQ(monitor.audit().total_denials(), denials);
  EXPECT_EQ(monitor.audit().records().size(), denials);
  for (const AuditRecord& record : monitor.audit().records()) {
    EXPECT_FALSE(record.allowed);
    EXPECT_NE(record.reason, DenyReason::kNone);
    EXPECT_EQ(record.principal, user);
    EXPECT_FALSE(record.path.empty());
  }
}

// ---- policy round-trip over random worlds ------------------------------------

class PolicyRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyRoundTripTest, SerializeLoadSerializeIsStable) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  Kernel source;
  (void)source.labels().DefineLevels({"l0", "l1", "l2"});
  (void)source.labels().DefineCategory("ca");
  (void)source.labels().DefineCategory("cb");
  std::vector<PrincipalId> principals;
  for (int i = 0; i < 4; ++i) {
    principals.push_back(*source.principals().CreateUser("u" + std::to_string(i)));
  }
  for (int i = 0; i < 2; ++i) {
    PrincipalId group = *source.principals().CreateGroup("g" + std::to_string(i));
    (void)source.principals().AddMember(group, principals[rng.NextBelow(4)]);
    principals.push_back(group);
  }
  // Clearances for a random subset, and sometimes a security officer — both
  // must survive the round-trip like everything else.
  for (int i = 0; i < 4; ++i) {
    if (rng.NextBool(1, 2)) {
      source.labels().SetClearance(principals[i].value, RandomClass(rng, 2, 3));
    }
  }
  if (rng.NextBool(1, 2)) {
    source.monitor().set_security_officer(principals[rng.NextBelow(4)]);
  }
  std::vector<NodeId> nodes{source.name_space().root()};
  for (int i = 0; i < 15; ++i) {
    NodeId parent = nodes[rng.NextBelow(nodes.size())];
    if (!KindAllowsChildren(source.name_space().Get(parent)->kind)) {
      continue;
    }
    NodeKind kind = static_cast<NodeKind>(rng.NextBelow(6));
    auto node = source.name_space().Bind(parent, "n" + std::to_string(i), kind,
                                         principals[rng.NextBelow(principals.size())]);
    if (!node.ok()) {
      continue;
    }
    nodes.push_back(*node);
    if (rng.NextBool(1, 2)) {
      Acl acl;
      // entries == 0 leaves an empty own ACL — the deny-all override case,
      // which serializes as "acl <path> none".
      size_t entries = rng.NextBelow(4);
      for (size_t e = 0; e < entries; ++e) {
        acl.AddEntry({rng.NextBool(1, 3) ? AclEntryType::kDeny : AclEntryType::kAllow,
                      principals[rng.NextBelow(principals.size())],
                      AccessModeSet(static_cast<uint32_t>(1 + rng.NextBelow(255)))});
      }
      (void)source.name_space().SetAclRef(*node, source.acls().Create(std::move(acl)));
    }
    if (rng.NextBool(1, 3)) {
      (void)source.name_space().SetLabelRef(
          *node, source.labels().StoreLabel(RandomClass(rng, 2, 3)));
    }
  }

  auto first = SerializePolicy(source);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Kernel restored;
  ASSERT_TRUE(LoadPolicy(*first, &restored).ok()) << *first;
  auto second = SerializePolicy(restored);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*first, *second);

  // The restored kernel agrees on clearances and the officer.
  for (int i = 0; i < 4; ++i) {
    const Principal* p = source.principals().Get(principals[i]);
    auto r_id = restored.principals().FindByName(p->name);
    ASSERT_TRUE(r_id.ok());
    const SecurityClass* src_clr = source.labels().ClearanceOf(principals[i].value);
    const SecurityClass* dst_clr = restored.labels().ClearanceOf(r_id->value);
    ASSERT_EQ(src_clr == nullptr, dst_clr == nullptr) << p->name;
    if (src_clr != nullptr) {
      EXPECT_TRUE(*src_clr == *dst_clr) << p->name;
    }
  }
  EXPECT_EQ(source.monitor().security_officer().valid(),
            restored.monitor().security_officer().valid());

  // Decisions agree on a sample of triples.
  for (int trial = 0; trial < 100; ++trial) {
    size_t pi = rng.NextBelow(principals.size());
    if (source.principals().Get(principals[pi])->kind != PrincipalKind::kUser) {
      continue;
    }
    NodeId node = nodes[rng.NextBelow(nodes.size())];
    SecurityClass cls = RandomClass(rng, 2, 3);
    AccessModeSet modes(static_cast<AccessMode>(1u << rng.NextBelow(kAccessModeCount)));
    Subject src_subject{principals[pi], cls, 1};
    auto restored_principal = restored.principals().FindByName(
        source.principals().Get(principals[pi])->name);
    ASSERT_TRUE(restored_principal.ok());
    auto restored_node = restored.name_space().Lookup(source.name_space().PathOf(node));
    ASSERT_TRUE(restored_node.ok());
    Subject dst_subject{*restored_principal, cls, 1};
    EXPECT_EQ(source.monitor().Check(src_subject, node, modes).allowed,
              restored.monitor().Check(dst_subject, *restored_node, modes).allowed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyRoundTripTest, ::testing::Range(0, 8));

// ---- floating (high-water-mark) labels ----------------------------------------

class FloatingLabelTest : public ::testing::Test {
 protected:
  FloatingLabelTest() {
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_,
                                                  MonitorOptions{
                                                      .audit_policy = AuditPolicy::kOff,
                                                  });
    user_ = *principals_.CreateUser("u");
    (void)labels_.DefineLevels({"low", "high"});
    (void)labels_.DefineCategory("a");
    low_file_ = MakeObject("/low", SecurityClass(0, CategorySet(1)));
    CategorySet a(1);
    a.Set(0);
    high_file_ = MakeObject("/high", SecurityClass(1, a));
  }

  NodeId MakeObject(std::string_view path, const SecurityClass& cls) {
    NodeId node = *ns_.BindPath(path, NodeKind::kFile, user_);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user_, AccessModeSet::All()});
    (void)ns_.SetAclRef(node, acls_.Create(std::move(acl)));
    (void)ns_.SetLabelRef(node, labels_.StoreLabel(cls));
    return node;
  }

  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  PrincipalId user_;
  NodeId low_file_, high_file_;
};

TEST_F(FloatingLabelTest, SubjectFloatsUpOnRead) {
  CategorySet a(1);
  a.Set(0);
  Subject subject{user_, SecurityClass(1, a), 1};  // cleared for both files
  // Before reading anything, the subject (at high) may not write low.
  EXPECT_FALSE(monitor_->CheckFloating(&subject, low_file_, AccessMode::kWrite).allowed);
  // Reading high raises nothing (already at high).
  EXPECT_TRUE(monitor_->CheckFloating(&subject, high_file_, AccessMode::kRead).allowed);
  EXPECT_EQ(subject.security_class.level(), 1);
}

TEST_F(FloatingLabelTest, ReadThenWriteDownIsBlocked) {
  // The laundering sequence: start low, read low (fine), write low (fine);
  // then read high and try to write low again — the float blocks it.
  CategorySet a(1);
  a.Set(0);
  Subject subject{user_, SecurityClass(1, a), 1};
  Subject courier{user_, labels_.Bottom(), 2};
  EXPECT_TRUE(monitor_->CheckFloating(&courier, low_file_, AccessMode::kRead).allowed);
  EXPECT_TRUE(monitor_->CheckFloating(&courier, low_file_, AccessMode::kWrite).allowed);
  // The courier cannot read high yet (clearance): read-up denied, no float.
  EXPECT_FALSE(monitor_->CheckFloating(&courier, high_file_, AccessMode::kRead).allowed);
  EXPECT_TRUE(courier.security_class == labels_.Bottom());
  // A cleared subject that *does* read high floats and loses write-down.
  EXPECT_TRUE(monitor_->CheckFloating(&subject, high_file_, AccessMode::kRead).allowed);
  EXPECT_FALSE(monitor_->CheckFloating(&subject, low_file_, AccessMode::kWrite).allowed);
  // It can still append up and write at its floated level.
  EXPECT_TRUE(monitor_->CheckFloating(&subject, high_file_, AccessMode::kWrite).allowed);
}

TEST_F(FloatingLabelTest, DeniedAccessNeverFloats) {
  Subject subject{user_, labels_.Bottom(), 1};
  SecurityClass before = subject.security_class;
  EXPECT_FALSE(monitor_->CheckFloating(&subject, high_file_, AccessMode::kRead).allowed);
  EXPECT_TRUE(subject.security_class == before);
}

TEST_F(FloatingLabelTest, NonObservationModesNeverFloat) {
  CategorySet a(1);
  a.Set(0);
  Subject subject{user_, labels_.Bottom(), 1};
  // Appending up succeeds but must not raise the subject (no observation).
  EXPECT_TRUE(monitor_->CheckFloating(&subject, high_file_, AccessMode::kWriteAppend).allowed);
  EXPECT_TRUE(subject.security_class == labels_.Bottom());
}

}  // namespace
}  // namespace xsec
