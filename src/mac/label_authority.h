// The label authority: the system-wide definitions of trust levels and
// categories, plus storage for the labels attached to name-space nodes.
//
// The paper's §2.2 example defines three levels ("others" < "organization" <
// "local") and four categories ("myself", "department-1", "department-2",
// "outside"); examples/applet_orgs.cpp reproduces it verbatim.
//
// Thread safety: all methods may be called concurrently; mutators take the
// authority's lock exclusively and bump label_epoch_ before releasing it.
// Stored labels are immutable SecurityClass objects held by shared_ptr:
// ReplaceLabel swaps in a fresh object, so LabelHandle() hands the check path
// shared ownership of a consistent label with no copy on the hot path. The
// reference-returning accessors (GetLabel, ClearanceOf, level_names, ...)
// are for single-threaded setup, tests, and serialization.

#ifndef XSEC_SRC_MAC_LABEL_AUTHORITY_H_
#define XSEC_SRC_MAC_LABEL_AUTHORITY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/mac/security_class.h"

namespace xsec {

class LabelAuthority {
 public:
  LabelAuthority();

  // Defines the linearly ordered levels, ascending trust. May be called once;
  // before it is called a single implicit level 0 exists.
  Status DefineLevels(const std::vector<std::string>& ascending_names);

  // Defines one category; returns its id (bit index).
  StatusOr<size_t> DefineCategory(std::string_view name);

  StatusOr<TrustLevel> LevelByName(std::string_view name) const;
  StatusOr<size_t> CategoryByName(std::string_view name) const;
  size_t level_count() const;
  size_t category_count() const;

  // Enumeration for policy serialization (ascending / id order). Not safe
  // against concurrent DefineLevels/DefineCategory.
  const std::vector<std::string>& level_names() const { return level_names_; }
  const std::vector<std::string>& category_names() const { return category_names_; }
  // True once DefineLevels has replaced the implicit single level.
  bool levels_defined() const;

  // Builds a class from names: MakeClass("organization", {"department-1"}).
  StatusOr<SecurityClass> MakeClass(std::string_view level_name,
                                    const std::vector<std::string>& category_names) const;

  // Lattice extrema under the current definitions.
  SecurityClass Bottom() const;
  SecurityClass Top() const;

  // "organization:{department-1,department-2}".
  std::string ClassToString(const SecurityClass& cls) const;

  // -- Label storage for name-space nodes -----------------------------------
  // Nodes reference labels by opaque ref (Node::label_ref).
  using LabelRef = uint32_t;
  LabelRef StoreLabel(const SecurityClass& cls);
  const SecurityClass* GetLabel(LabelRef ref) const;
  // Shared ownership of the stored label; stays valid across a concurrent
  // ReplaceLabel. Null on a bad ref. This is the check path's accessor.
  std::shared_ptr<const SecurityClass> LabelHandle(LabelRef ref) const;
  Status ReplaceLabel(LabelRef ref, const SecurityClass& cls);

  // Bumped on every label mutation; decision-cache validity. Published with
  // release ordering after the mutation it stamps.
  uint64_t label_epoch() const { return label_epoch_.load(std::memory_order_acquire); }

  // -- Per-principal clearances ------------------------------------------------
  // The paper has threads "function at the same security class as the
  // associated principal"; the clearance is that per-principal bound. A
  // principal with a clearance may only obtain subjects at classes the
  // clearance dominates (SecureSystem::LoginChecked enforces this). No
  // clearance = unrestricted. Keyed by principal id; the label authority
  // owns all class assignments, so the binding lives here.
  void SetClearance(uint32_t principal_id, SecurityClass clearance);
  void ClearClearance(uint32_t principal_id);
  // Null if no clearance is set for this principal. The pointee may be
  // replaced by a concurrent SetClearance; use only at login/setup time.
  const SecurityClass* ClearanceOf(uint32_t principal_id) const;
  // Enumeration for policy serialization. Not safe against concurrent
  // clearance mutation.
  const std::unordered_map<uint32_t, SecurityClass>& clearances() const { return clearances_; }

 private:
  // Unlocked internals; callers hold mu_.
  StatusOr<TrustLevel> LevelByNameLocked(std::string_view name) const;
  StatusOr<size_t> CategoryByNameLocked(std::string_view name) const;

  mutable std::shared_mutex mu_;
  std::vector<std::string> level_names_;
  std::unordered_map<std::string, TrustLevel> level_by_name_;
  std::vector<std::string> category_names_;
  std::unordered_map<std::string, size_t> category_by_name_;
  // Deque of immutable labels: addresses of the shared_ptr slots are stable
  // and the pointed-to classes are never mutated in place.
  std::deque<std::shared_ptr<const SecurityClass>> labels_;
  std::unordered_map<uint32_t, SecurityClass> clearances_;
  std::atomic<uint64_t> label_epoch_{0};
};

}  // namespace xsec

#endif  // XSEC_SRC_MAC_LABEL_AUTHORITY_H_
