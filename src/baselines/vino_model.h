// The VINO baseline (paper §1.2).
//
// "VINO distinguishes between regular and privileged users, and uses dynamic
// privilege checks before accessing sensitive data" (attributed to Seltzer,
// personal communication). That is the whole publicly described mechanism,
// so the model is exactly that:
//
//   privileged subject          -> everything allowed;
//   regular subject             -> sensitive objects require ownership;
//                                  non-sensitive objects are open.
//
// No groups, no negative rights, no execute/extend distinction, no MAC —
// ownership of sensitive data is the only refinement over all-or-nothing.

#ifndef XSEC_SRC_BASELINES_VINO_MODEL_H_
#define XSEC_SRC_BASELINES_VINO_MODEL_H_

#include "src/baselines/model.h"

namespace xsec {

class VinoModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "vino"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_VINO_MODEL_H_
