// A decision cache for the reference monitor.
//
// Keyed by (principal, node, requested modes, subject class); an entry also
// snapshots four validity stamps — name-space generation, ACL-store
// generation, membership epoch, label epoch. Any policy-relevant mutation
// anywhere bumps one of the stamps and thereby invalidates every cached
// decision. Coarse, but sound, and the common workload (many checks between
// rare policy changes) is exactly what experiment F8 measures.
//
// The table is direct-mapped (power-of-two slots, overwrite on collision):
// lookups stay O(1) with no allocation on the hot path.

#ifndef XSEC_SRC_MONITOR_DECISION_CACHE_H_
#define XSEC_SRC_MONITOR_DECISION_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/dac/access_mode.h"
#include "src/monitor/audit.h"
#include "src/monitor/subject.h"
#include "src/naming/namespace.h"

namespace xsec {

struct CacheStamps {
  uint64_t namespace_generation = 0;
  uint64_t acl_generation = 0;
  uint64_t membership_epoch = 0;
  uint64_t label_epoch = 0;

  bool operator==(const CacheStamps&) const = default;
};

class DecisionCache {
 public:
  explicit DecisionCache(size_t slot_count_pow2 = 8192);

  struct CachedDecision {
    bool allowed = false;
    DenyReason reason = DenyReason::kNone;
  };

  // Probes the cache; returns true and fills `out` on a valid hit.
  bool Lookup(const Subject& subject, NodeId node, AccessModeSet modes,
              const CacheStamps& current, CachedDecision* out);

  void Insert(const Subject& subject, NodeId node, AccessModeSet modes,
              const CacheStamps& current, CachedDecision decision);

  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t stale_hits() const { return stale_hits_; }
  size_t slot_count() const { return slots_.size(); }

 private:
  struct Slot {
    bool occupied = false;
    uint64_t key_hash = 0;
    uint32_t principal = 0;
    uint32_t node = 0;
    uint32_t modes = 0;
    uint64_t class_hash = 0;
    CacheStamps stamps;
    CachedDecision decision;
  };

  static uint64_t KeyHash(const Subject& subject, NodeId node, AccessModeSet modes);

  std::vector<Slot> slots_;
  uint64_t mask_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t stale_hits_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_DECISION_CACHE_H_
