// Deterministic pseudo-random number generator (xoshiro256**) for workload
// generation in tests and benchmarks. Determinism matters: experiment outputs
// must be reproducible run to run, so nothing in xsec uses std::random_device.

#ifndef XSEC_SRC_BASE_RNG_H_
#define XSEC_SRC_BASE_RNG_H_

#include <cstdint>

namespace xsec {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextU64();

  // Uniform over [0, bound); bound must be nonzero. Uses rejection sampling
  // to avoid modulo bias (invisible at benchmark scale, but cheap to do right).
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // True with probability `numerator` / `denominator`.
  bool NextBool(uint32_t numerator, uint32_t denominator);

  // Uniform over [0.0, 1.0).
  double NextDouble();

 private:
  uint64_t state_[4];
};

}  // namespace xsec

#endif  // XSEC_SRC_BASE_RNG_H_
