// Cooperative cancellation end to end: CallOptions::deadline_ns and the
// cancel flag thread through CallContext into long-running handlers —
// /svc/sim/flow's op loop, the netstack filter chain, and the /svc/stats
// watch/poll waits — each of which polls CheckDeadline() once per bounded
// unit of work, so a slow call returns kDeadlineExceeded / kCancelled within
// one poll interval of the signal instead of running to completion.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/base/strings.h"
#include "src/baselines/xsec_model.h"
#include "src/core/flow_sim.h"
#include "src/core/secure_system.h"
#include "src/services/stats_service.h"

namespace xsec {
namespace {

constexpr int64_t kSlowOps = 50'000'000;  // several seconds of simulation

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

TEST(CancellationTest, CheckDeadlineReportsTheRightCode) {
  CallContext quiet{nullptr, nullptr, {}, 0, nullptr};
  EXPECT_TRUE(quiet.CheckDeadline().ok());
  EXPECT_FALSE(quiet.Cancelled());

  CallContext late{nullptr, nullptr, {}, MonotonicNowNs() - 1, nullptr};
  EXPECT_TRUE(late.Cancelled());
  EXPECT_EQ(late.CheckDeadline().code(), StatusCode::kDeadlineExceeded);

  std::atomic<bool> flag{true};
  // The flag wins over an expired deadline: the caller explicitly withdrew.
  CallContext both{nullptr, nullptr, {}, MonotonicNowNs() - 1, &flag};
  EXPECT_TRUE(both.Cancelled());
  EXPECT_EQ(both.CheckDeadline().code(), StatusCode::kCancelled);
}

Subject LoginRunner(SecureSystem& sys) {
  auto runner = sys.CreateUser("runner");
  EXPECT_TRUE(runner.ok());
  return sys.Login(*runner, sys.labels().Bottom());
}

TEST(CancellationTest, FlowSimDeadlineBoundsTheCall) {
  SecureSystem sys;
  Subject runner = LoginRunner(sys);
  CallOptions options;
  options.deadline_ns = MonotonicNowNs() + 30'000'000;  // 30ms
  auto start = std::chrono::steady_clock::now();
  auto result = sys.Invoke(runner, "/svc/sim/flow", {Value{kSlowOps}}, options);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Deadline + one poll interval (512 ops, microseconds), with CI slack: the
  // full run would take seconds.
  EXPECT_LT(elapsed_ms, 2000);
}

TEST(CancellationTest, FlowSimCancelFlagStopsMidRun) {
  SecureSystem sys;
  Subject runner = LoginRunner(sys);
  std::atomic<bool> cancel{false};
  CallOptions options;
  options.cancel = &cancel;
  StatusOr<Value> result = InvalidArgumentError("not run");
  std::thread call([&] {
    result = sys.Invoke(runner, "/svc/sim/flow", {Value{kSlowOps}}, options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.store(true);
  call.join();
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, FlowSimWithoutASignalRunsToCompletion) {
  SecureSystem sys;
  Subject runner = LoginRunner(sys);
  auto result = sys.Invoke(runner, "/svc/sim/flow", {Value{int64_t{5000}}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(std::get<std::string>(*result).find("ops=5000"), std::string::npos);
}

TEST(CancellationTest, FlowSimLoopHonorsThePollInterval) {
  // Direct harness check, no service plumbing: an already-expired deadline
  // stops the loop at the first poll, partial counters intact.
  FlowSimConfig config;
  config.num_ops = 1'000'000;
  config.poll_every_ops = 256;
  config.deadline_ns = MonotonicNowNs() - 1;
  FlowSimResult result = RunFlowSimulation(XsecFullModel{}, config);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.ops, 0u);

  std::atomic<bool> cancel{true};
  config.deadline_ns = 0;
  config.cancel = &cancel;
  result = RunFlowSimulation(XsecFullModel{}, config);
  EXPECT_TRUE(result.cancelled);
}

TEST(CancellationTest, NetstackFilterChainHonorsTheDeadline) {
  SecureSystem sys;
  auto dev = sys.CreateUser("filter-dev");
  ASSERT_TRUE(dev.ok());
  Subject dev_s = sys.Login(*dev, sys.labels().Bottom());
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, *dev, AccessMode::kExtend | AccessMode::kExecute});
  ASSERT_TRUE(sys.name_space()
                  .SetAclRef(sys.net().filter_interface(),
                             sys.kernel().acls().Create(std::move(acl)))
                  .ok());
  // Three filters, 20ms each: a full chain costs ~60ms, but Inject polls the
  // deadline before every filter, so a 30ms budget stops after at most two.
  for (int i = 0; i < 3; ++i) {
    ExtensionManifest manifest;
    manifest.name = "slow-filter-" + std::to_string(i);
    manifest.exports.push_back(
        {"/svc/net/filter", [](CallContext&) -> StatusOr<Value> {
           std::this_thread::sleep_for(std::chrono::milliseconds(20));
           return Value{true};
         }});
    ASSERT_TRUE(sys.LoadExtension(manifest, dev_s).ok());
  }
  ASSERT_TRUE(sys.net().CreateDevice(dev_s, "eth0").ok());

  CallOptions options;
  options.deadline_ns = MonotonicNowNs() + 30'000'000;  // 30ms
  auto start = std::chrono::steady_clock::now();
  auto result = sys.Invoke(dev_s, "/svc/net/inject",
                           {Value{std::string("eth0")}, Value{std::string("raw")},
                            Value{Bytes("payload")}},
                           options);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // One poll interval here is one filter (~20ms): the 60ms chain was cut.
  EXPECT_LT(elapsed_ms, 2000);

  // Without a deadline the same chain runs to completion: the call gets all
  // the way past the filters to protocol dispatch, where the unregistered
  // proto ("raw") is what fails — proof the cut above came from the
  // deadline, not the chain.
  auto unbounded = sys.Invoke(dev_s, "/svc/net/inject",
                              {Value{std::string("eth0")}, Value{std::string("raw")},
                               Value{Bytes("payload")}});
  EXPECT_EQ(unbounded.status().code(), StatusCode::kNotFound);
}

Subject LoginAuditor(SecureSystem& sys) {
  auto auditor = sys.CreateUser("auditor");
  EXPECT_TRUE(auditor.ok());
  NodeId mount = *sys.name_space().Lookup("/sys/monitor");
  EXPECT_TRUE(sys.monitor()
                  .AddAclEntry(sys.SystemSubject(), mount,
                               {AclEntryType::kAllow, *auditor,
                                AccessMode::kRead | AccessMode::kList})
                  .ok());
  return sys.Login(*auditor, sys.labels().Bottom());
}

TEST(CancellationTest, BlockedWatchIsCancelledWithinOneEpoch) {
  SecureSystem sys;  // 20ms epoch interval
  Subject watcher = LoginAuditor(sys);
  std::atomic<bool> cancel{false};
  CallOptions options;
  options.cancel = &cancel;
  StatusOr<Value> result = InvalidArgumentError("not run");
  std::thread blocked([&] {
    result = sys.Invoke(watcher, "/svc/stats/watch",
                        {Value{int64_t{-1}}, Value{int64_t{10'000}}}, options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto start = std::chrono::steady_clock::now();
  cancel.store(true);
  blocked.join();
  auto reaction_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // The waiter re-polls at least once per 20ms epoch; CI slack on top.
  EXPECT_LT(reaction_ms, 2000);
}

TEST(CancellationTest, BlockedSubscriptionPollIsCancelledWithinOneEpoch) {
  // Direct API on a quiescent kernel: an Invoke-driven poll would feed
  // itself (its own mediation moves counters, so the self-clock publishes an
  // epoch to it), masking the cancellation path this test is after.
  Kernel kernel;
  StatsServiceOptions options;
  options.epoch_interval_ns = 10'000'000;  // 10ms waiter wakeups
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());
  // Drain the epoch published by Subscribe's own admission check, if any.
  (void)stats.PollSubscription(system, *id, MonotonicNowNs() + 50'000'000);

  std::atomic<bool> cancel{false};
  CallContext call{&kernel, &system, {}, 0, &cancel};
  StatusOr<std::string> result = InvalidArgumentError("not run");
  std::thread blocked([&] {
    result = stats.PollSubscription(system, *id,
                                    MonotonicNowNs() + uint64_t{10} * 1'000'000'000,
                                    &call);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cancel.store(true);
  blocked.join();
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// MemFs bulk operations charge a CooperativeBudget per 64 KiB copied (or 64
// directory entries scanned), so a cancelled caller stops a large transfer
// at the next chunk boundary instead of completing it.
Subject LoginHomeOwner(SecureSystem& sys) {
  auto owner = sys.CreateUser("owner");
  EXPECT_TRUE(owner.ok());
  NodeId home = *sys.name_space().BindPath("/fs/home", NodeKind::kDirectory, *owner);
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, *owner, AccessModeSet::All()});
  (void)sys.name_space().SetAclRef(home, sys.kernel().acls().Create(std::move(acl)));
  return sys.Login(*owner, sys.labels().Bottom());
}

TEST(CancellationTest, MemFsBulkReadHonorsTheCancelFlag) {
  SecureSystem sys;
  Subject owner = LoginHomeOwner(sys);
  ASSERT_TRUE(sys.fs().Create(owner, "/fs/home/big").ok());
  ASSERT_TRUE(
      sys.fs().Write(owner, "/fs/home/big", std::vector<uint8_t>(256 * 1024, 0x5a)).ok());

  std::atomic<bool> cancel{true};
  CallContext call{&sys.kernel(), &owner, {}, 0, &cancel};
  EXPECT_EQ(sys.fs().Read(owner, "/fs/home/big", &call).status().code(),
            StatusCode::kCancelled);
  // A trusted internal read (no call context) is never interrupted.
  auto full = sys.fs().Read(owner, "/fs/home/big");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), size_t{256 * 1024});
}

TEST(CancellationTest, MemFsWriteChecksTheDeadlineBeforeCommitting) {
  SecureSystem sys;
  Subject owner = LoginHomeOwner(sys);
  ASSERT_TRUE(sys.fs().Create(owner, "/fs/home/doc").ok());
  ASSERT_TRUE(sys.fs().Write(owner, "/fs/home/doc", Bytes("before")).ok());

  CallContext late{&sys.kernel(), &owner, {}, MonotonicNowNs() - 1, nullptr};
  EXPECT_EQ(sys.fs().Write(owner, "/fs/home/doc", Bytes("after"), &late).code(),
            StatusCode::kDeadlineExceeded);
  auto contents = sys.fs().Read(owner, "/fs/home/doc");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, Bytes("before"));
}

TEST(CancellationTest, MemFsCancelledAppendLeavesNoTornSuffix) {
  SecureSystem sys;
  Subject owner = LoginHomeOwner(sys);
  ASSERT_TRUE(sys.fs().Create(owner, "/fs/home/log").ok());
  ASSERT_TRUE(sys.fs().Write(owner, "/fs/home/log", Bytes("prefix")).ok());

  std::atomic<bool> cancel{true};
  CallContext call{&sys.kernel(), &owner, {}, 0, &cancel};
  EXPECT_EQ(sys.fs()
                .Append(owner, "/fs/home/log", std::vector<uint8_t>(256 * 1024, 0x17), &call)
                .code(),
            StatusCode::kCancelled);
  // The interrupted append rolled back: all of the suffix or none of it.
  auto contents = sys.fs().Read(owner, "/fs/home/log");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, Bytes("prefix"));
}

TEST(CancellationTest, MemFsDirectoryScanHonorsTheDeadline) {
  SecureSystem sys;
  Subject owner = LoginHomeOwner(sys);
  // More children than one 64-entry poll slice, so the scan must check.
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(sys.fs().Create(owner, StrFormat("/fs/home/f%d", i)).ok());
  }
  CallContext late{&sys.kernel(), &owner, {}, MonotonicNowNs() - 1, nullptr};
  EXPECT_EQ(sys.fs().ListDir(owner, "/fs/home", &late).status().code(),
            StatusCode::kDeadlineExceeded);
  auto names = sys.fs().ListDir(owner, "/fs/home");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 80u);
}

}  // namespace
}  // namespace xsec
