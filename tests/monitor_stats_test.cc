#include "src/monitor/monitor_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

TEST(MonitorStatsTest, RecordDecisionCountsTotalReasonAndEveryMode) {
  MonitorStats stats;
  stats.RecordDecision(AccessMode::kRead | AccessMode::kWrite, DenyReason::kNone);
  stats.RecordDecision(AccessModeSet(AccessMode::kRead), DenyReason::kDacNoGrant);
  stats.RecordDecision(AccessModeSet(AccessMode::kExecute), DenyReason::kMacFlow);

  EXPECT_EQ(stats.checks_total(), 3u);
  EXPECT_EQ(stats.allowed_total(), 1u);
  EXPECT_EQ(stats.denied_total(), 2u);
  EXPECT_EQ(stats.by_reason(DenyReason::kDacNoGrant), 1u);
  EXPECT_EQ(stats.by_reason(DenyReason::kMacFlow), 1u);
  EXPECT_EQ(stats.by_reason(DenyReason::kTraversal), 0u);
  // A multi-mode request counts once per mode present.
  EXPECT_EQ(stats.by_mode(AccessMode::kRead), 2u);
  EXPECT_EQ(stats.by_mode(AccessMode::kWrite), 1u);
  EXPECT_EQ(stats.by_mode(AccessMode::kExecute), 1u);
  EXPECT_EQ(stats.by_mode(AccessMode::kDelete), 0u);
}

TEST(MonitorStatsTest, LatencySamplingIsOneInSampleEvery) {
  MonitorStats stats;
  uint64_t sampled = 0;
  for (uint64_t i = 0; i < 3 * MonitorStats::kSampleEvery; ++i) {
    if (stats.ShouldSampleLatency()) {
      ++sampled;
    }
  }
  // The thread's clock phase is arbitrary, but any 3*kSampleEvery
  // consecutive ticks contain exactly 3 multiples of kSampleEvery.
  EXPECT_EQ(sampled, 3u);
}

TEST(MonitorStatsTest, LatencyHistogramAndQuantiles) {
  MonitorStats stats;
  // 10 fast samples (bucket for 100ns) and one slow outlier.
  for (int i = 0; i < 10; ++i) {
    stats.RecordLatencyNs(100);
  }
  stats.RecordLatencyNs(1'000'000);
  EXPECT_EQ(stats.latency_samples(), 11u);
  uint64_t p50 = stats.LatencyQuantileNs(0.50);
  uint64_t p100 = stats.LatencyQuantileNs(1.0);
  EXPECT_GE(p50, 100u);
  EXPECT_LT(p50, 256u);  // the bucket upper bound containing 100ns
  EXPECT_GE(p100, 1'000'000u);  // the max lands in the outlier's bucket
  EXPECT_LE(p50, p100);
  // An empty histogram reports 0.
  MonitorStats empty;
  EXPECT_EQ(empty.LatencyQuantileNs(0.5), 0u);
}

TEST(MonitorStatsTest, TwoInstancesSampleIndependently) {
  // Regression: the sample clock used to be one process-wide thread_local
  // shared by every MonitorStats instance, so a thread alternating between
  // two instances (the kernel's monitor plus a test's) split one clock
  // between them — each saw half its configured rate, phase-correlated.
  // The clock now lives in the per-(thread, instance) slot-cache entry.
  MonitorStats a;
  MonitorStats b;
  uint64_t sampled_a = 0;
  uint64_t sampled_b = 0;
  for (uint64_t i = 0; i < 3 * MonitorStats::kSampleEvery; ++i) {
    if (a.ShouldSampleLatency()) {
      ++sampled_a;
    }
    if (b.ShouldSampleLatency()) {
      ++sampled_b;
    }
  }
  EXPECT_EQ(sampled_a, 3u);
  EXPECT_EQ(sampled_b, 3u);
}

TEST(MonitorStatsTest, LogLinearBucketBoundsRoundTrip) {
  // Every value maps to a bucket whose upper bound is >= the value and
  // within 1/kSubBuckets (12.5%) above it; below 2*kSubBuckets the buckets
  // are exact.
  std::vector<uint64_t> values;
  for (uint64_t ns = 0; ns < 2 * MonitorStats::kSubBuckets; ++ns) {
    values.push_back(ns);
  }
  for (uint64_t ns = 16; ns < (uint64_t{1} << MonitorStats::kMaxLatencyBits);
       ns += 1 + ns / 3) {
    values.push_back(ns);
    values.push_back(ns - 1);
    values.push_back(ns + 1);
  }
  for (uint64_t ns : values) {
    size_t bucket = MonitorStats::LatencyBucketIndex(ns);
    ASSERT_LT(bucket, MonitorStats::kLatencyBuckets);
    uint64_t upper = MonitorStats::LatencyBucketUpperBoundNs(bucket);
    ASSERT_GE(upper, ns) << "ns=" << ns << " bucket=" << bucket;
    ASSERT_LE(upper, ns + ns / MonitorStats::kSubBuckets)
        << "ns=" << ns << " bucket=" << bucket;
    if (ns < 2 * MonitorStats::kSubBuckets) {
      ASSERT_EQ(upper, ns);  // exact 1ns buckets at the bottom
    }
  }
  // Bucket indices are monotone in the value (no fold-backs at octave edges).
  size_t prev = 0;
  for (uint64_t ns = 0; ns < 4096; ++ns) {
    size_t bucket = MonitorStats::LatencyBucketIndex(ns);
    ASSERT_GE(bucket, prev) << "ns=" << ns;
    prev = bucket;
  }
  // At and past the cap everything lands in the last (overflow) bucket.
  EXPECT_EQ(MonitorStats::LatencyBucketIndex(uint64_t{1} << MonitorStats::kMaxLatencyBits),
            MonitorStats::kLatencyBuckets - 1);
  EXPECT_EQ(MonitorStats::LatencyBucketIndex(~uint64_t{0}),
            MonitorStats::kLatencyBuckets - 1);
}

TEST(MonitorStatsTest, QuantileEdgeCases) {
  MonitorStats stats;
  // q clamps and a single sample: every quantile is that sample's bucket.
  stats.RecordLatencyNs(100);
  uint64_t only = stats.LatencyQuantileNs(0.5);
  EXPECT_GE(only, 100u);
  EXPECT_EQ(stats.LatencyQuantileNs(0.0), only);
  EXPECT_EQ(stats.LatencyQuantileNs(1.0), only);
  EXPECT_EQ(stats.LatencyQuantileNs(-3.0), only);   // clamped to 0
  EXPECT_EQ(stats.LatencyQuantileNs(42.0), only);   // clamped to 1

  // q=0 is the min bucket, q=1 the max bucket.
  stats.RecordLatencyNs(5);
  stats.RecordLatencyNs(10'000);
  EXPECT_EQ(stats.LatencyQuantileNs(0.0), 5u);  // exact bucket below 16ns
  uint64_t p100 = stats.LatencyQuantileNs(1.0);
  EXPECT_GE(p100, 10'000u);
  EXPECT_LE(p100, 10'000u + 10'000u / 8);

  // A sample past the histogram cap lands in the overflow bucket, whose
  // upper bound is the cap itself — reported, not lost.
  MonitorStats overflow;
  overflow.RecordLatencyNs(~uint64_t{0});
  EXPECT_EQ(overflow.LatencyQuantileNs(1.0),
            MonitorStats::LatencyBucketUpperBoundNs(MonitorStats::kLatencyBuckets - 1));
  EXPECT_EQ(overflow.latency_bucket(MonitorStats::kLatencyBuckets - 1), 1u);
}

TEST(MonitorStatsTest, QuantilesWithinTwelvePointFivePercentOfExact) {
  MonitorStats stats;
  Rng rng(7);
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20'000; ++i) {
    // A long-tailed mix: mostly fast checks, occasional slow outliers.
    uint64_t ns = 20 + rng.NextBelow(400);
    if (rng.NextBool(1, 50)) {
      ns += 10'000 + rng.NextBelow(1'000'000);
    }
    samples.push_back(ns);
    stats.RecordLatencyNs(ns);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.50, 0.90, 0.99}) {
    uint64_t exact = samples[static_cast<size_t>(q * (samples.size() - 1))];
    uint64_t approx = stats.LatencyQuantileNs(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact + exact / 8 + 1) << "q=" << q;
  }
}

TEST(MonitorStatsTest, SnapshotInvariantsHoldUnderConcurrentChecking) {
  MonitorStats stats;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&stats, &stop, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        AccessModeSet modes(AccessMode::kRead);
        if (rng.NextBool(1, 3)) {
          modes = AccessMode::kRead | AccessMode::kWrite;
        }
        DenyReason reason =
            rng.NextBool(1, 2) ? DenyReason::kNone : DenyReason::kDacNoGrant;
        stats.RecordDecision(modes, reason);
        if (rng.NextBool(1, 16)) {
          stats.RecordLatencyNs(50 + rng.NextBelow(1000));
        }
      }
    });
  }
  // The property under test: every snapshot taken mid-flight satisfies the
  // documented invariants, however the writers interleave.
  for (int i = 0; i < 3000; ++i) {
    MonitorStats::Snapshot snap = stats.TakeSnapshot();
    ASSERT_EQ(snap.allowed + snap.denied, snap.checks_total);
    uint64_t reason_total = 0;
    for (uint64_t r : snap.by_reason) {
      reason_total += r;
    }
    ASSERT_EQ(reason_total, snap.checks_total);
    ASSERT_GE(snap.ModeTotal(), snap.checks_total);
    ASSERT_GE(snap.LatencyBucketTotal(), snap.latency_samples);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : writers) {
    th.join();
  }
  // Quiescent: the mode total is exact (reads were 1 mode, some 2).
  MonitorStats::Snapshot final_snap = stats.TakeSnapshot();
  EXPECT_GE(final_snap.ModeTotal(), final_snap.checks_total);
  EXPECT_EQ(final_snap.LatencyBucketTotal(), final_snap.latency_samples);
}

TEST(MonitorStatsTest, SnapshotsNeverTearAcrossConcurrentResets) {
  MonitorStats stats;
  std::atomic<bool> stop{false};
  std::thread resetter([&stats, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      stats.Reset();
    }
  });
  // Readers must never observe a half-zeroed pass: within one snapshot the
  // derived identity holds and the reason total matches, reset or not.
  for (int i = 0; i < 2000; ++i) {
    stats.RecordDecision(AccessModeSet(AccessMode::kRead), DenyReason::kNone);
    MonitorStats::Snapshot snap = stats.TakeSnapshot();
    ASSERT_EQ(snap.allowed + snap.denied, snap.checks_total);
    ASSERT_GE(snap.ModeTotal(), 0u);
  }
  stop.store(true, std::memory_order_relaxed);
  resetter.join();
}

TEST(MonitorStatsTest, ResetBumpsTheSnapshotResetEpoch) {
  MonitorStats stats;
  EXPECT_EQ(stats.TakeSnapshot().reset_epoch, 0u);
  stats.RecordDecision(AccessModeSet(AccessMode::kRead), DenyReason::kNone);
  stats.Reset();
  EXPECT_EQ(stats.TakeSnapshot().reset_epoch, 1u);
  stats.Reset();
  stats.Reset();
  EXPECT_EQ(stats.TakeSnapshot().reset_epoch, 3u);
  EXPECT_EQ(stats.TakeSnapshot().checks_total, 0u);
}

TEST(MonitorStatsTest, ResetZeroesEverything) {
  MonitorStats stats;
  stats.RecordDecision(AccessModeSet(AccessMode::kRead), DenyReason::kNone);
  stats.RecordLatencyNs(50);
  stats.Reset();
  EXPECT_EQ(stats.checks_total(), 0u);
  EXPECT_EQ(stats.by_mode(AccessMode::kRead), 0u);
  EXPECT_EQ(stats.latency_samples(), 0u);
  EXPECT_EQ(stats.LatencyQuantileNs(0.9), 0u);
}

class MonitorStatsIntegrationTest : public ::testing::Test {
 protected:
  MonitorStatsIntegrationTest() {
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_,
                                                  MonitorOptions{});
    user_ = *principals_.CreateUser("u");
    open_ = *ns_.BindPath("/open", NodeKind::kFile, user_);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user_, AccessModeSet(AccessMode::kRead)});
    (void)ns_.SetAclRef(open_, acls_.Create(std::move(acl)));
    locked_ = *ns_.BindPath("/locked", NodeKind::kFile, user_);
    (void)ns_.SetAclRef(locked_, acls_.Create(Acl()));
  }

  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  PrincipalId user_;
  NodeId open_, locked_;
};

TEST_F(MonitorStatsIntegrationTest, StatsMirrorAuditCountersOnEveryDecisionPath) {
  Subject subject{user_, labels_.Bottom(), 1};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(monitor_->Check(subject, open_, AccessMode::kRead).allowed);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(monitor_->Check(subject, locked_, AccessMode::kRead).allowed);
  }
  (void)monitor_->Check(subject, NodeId{9999}, AccessMode::kRead);  // not found

  const MonitorStats& stats = monitor_->stats();
  EXPECT_EQ(stats.checks_total(), monitor_->audit().total_checks());
  EXPECT_EQ(stats.denied_total(), monitor_->audit().total_denials());
  EXPECT_EQ(stats.allowed_total(), 5u);
  EXPECT_EQ(stats.by_reason(DenyReason::kDacNoGrant), 3u);
  EXPECT_EQ(stats.by_reason(DenyReason::kNotFound), 1u);
  EXPECT_EQ(stats.by_mode(AccessMode::kRead), 9u);
}

TEST_F(MonitorStatsIntegrationTest, CachedAndUncachedDecisionsBothLand) {
  // The first check misses the decision cache, the rest hit; stats must not
  // care which path produced the decision.
  Subject subject{user_, labels_.Bottom(), 1};
  for (int i = 0; i < 10; ++i) {
    (void)monitor_->Check(subject, open_, AccessMode::kRead);
  }
  EXPECT_EQ(monitor_->stats().checks_total(), 10u);
  EXPECT_EQ(monitor_->stats().allowed_total(), 10u);
}

TEST_F(MonitorStatsIntegrationTest, SamplingPopulatesHistogramOnTheCheckPath) {
  Subject subject{user_, labels_.Bottom(), 1};
  // Whatever the thread's clock phase, 2*kSampleEvery consecutive checks
  // tick past exactly two multiples of kSampleEvery.
  size_t n = 2 * MonitorStats::kSampleEvery;
  for (size_t i = 0; i < n; ++i) {
    (void)monitor_->Check(subject, open_, AccessMode::kRead);
  }
  EXPECT_GE(monitor_->stats().latency_samples(), 2u);
  EXPECT_LE(monitor_->stats().latency_samples(), 3u);
}

TEST_F(MonitorStatsIntegrationTest, DisabledStatsRecordNothing) {
  MonitorOptions options;
  options.stats_enabled = false;
  ReferenceMonitor quiet(&ns_, &acls_, &principals_, &labels_, options);
  Subject subject{user_, labels_.Bottom(), 1};
  (void)quiet.Check(subject, open_, AccessMode::kRead);
  (void)quiet.Check(subject, locked_, AccessMode::kRead);
  EXPECT_EQ(quiet.stats().checks_total(), 0u);
  EXPECT_EQ(quiet.stats().latency_samples(), 0u);
  // The audit counters still run — stats are an overlay, not a replacement.
  EXPECT_EQ(quiet.audit().total_checks(), 2u);
}

TEST_F(MonitorStatsIntegrationTest, ConcurrentCheckingKeepsTotalsCoherent) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Subject subject{user_, labels_.Bottom(), static_cast<uint64_t>(t + 1)};
      for (int i = 0; i < kPerThread; ++i) {
        (void)monitor_->Check(subject, (i & 1) != 0 ? open_ : locked_, AccessMode::kRead);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  const MonitorStats& stats = monitor_->stats();
  EXPECT_EQ(stats.checks_total(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.allowed_total() + stats.denied_total(), stats.checks_total());
  EXPECT_EQ(stats.checks_total(), monitor_->audit().total_checks());
}

}  // namespace
}  // namespace xsec
