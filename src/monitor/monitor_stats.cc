#include "src/monitor/monitor_stats.h"

#include <bit>
#include <chrono>

namespace xsec {
namespace {

// Process-wide monotone instance ids make the per-thread slot cache safe
// against allocator recycling: a new MonitorStats at an old address still
// gets a fresh id, so stale cache entries can never alias it.
std::atomic<uint64_t> g_next_instance_id{0};

}  // namespace

MonitorStats::MonitorStats()
    : instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  slots_[kSlots].shared = true;
}

MonitorStats::Slot& MonitorStats::ClaimSlot(SlotCache& cache) {
  uint32_t index = next_slot_.fetch_add(1, std::memory_order_relaxed);
  Slot* slot = index < kSlots ? &slots_[index] : &slots_[kSlots];
  cache = SlotCache{instance_id_, slot};
  return *slot;
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void MonitorStats::RecordLatencyNs(uint64_t ns) {
  size_t bucket = static_cast<size_t>(std::bit_width(ns));
  if (bucket >= kLatencyBuckets) {
    bucket = kLatencyBuckets - 1;
  }
  Slot& slot = LocalSlot();
  Bump(slot, slot.latency_buckets[bucket]);
  Bump(slot, slot.latency_samples);
}

uint64_t MonitorStats::checks_total() const {
  // Every decision lands in exactly one reason bucket (kNone = allowed), so
  // the total is the sum over reasons — no separate hot-path counter needed.
  return Sum([](const Slot& s) {
    uint64_t total = 0;
    for (const auto& c : s.by_reason) {
      total += c.load(std::memory_order_relaxed);
    }
    return total;
  });
}

uint64_t MonitorStats::denied_total() const {
  uint64_t total = 0;
  for (size_t i = 1; i < kDenyReasonCount; ++i) {  // skip kNone (allowed)
    total += by_reason(static_cast<DenyReason>(i));
  }
  return total;
}

uint64_t MonitorStats::by_reason(DenyReason reason) const {
  size_t i = static_cast<size_t>(reason);
  return Sum([i](const Slot& s) { return s.by_reason[i].load(std::memory_order_relaxed); });
}

uint64_t MonitorStats::by_mode(AccessMode mode) const {
  unsigned b = static_cast<unsigned>(std::countr_zero(static_cast<uint32_t>(mode)));
  return Sum([b](const Slot& s) { return s.by_mode[b].load(std::memory_order_relaxed); });
}

uint64_t MonitorStats::latency_samples() const {
  return Sum([](const Slot& s) { return s.latency_samples.load(std::memory_order_relaxed); });
}

uint64_t MonitorStats::latency_bucket(size_t i) const {
  return Sum([i](const Slot& s) {
    return s.latency_buckets[i].load(std::memory_order_relaxed);
  });
}

uint64_t MonitorStats::LatencyQuantileNs(double q) const {
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // One pass copies the aggregated buckets so the rank and the scan agree
  // even while recording continues.
  uint64_t buckets[kLatencyBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    buckets[i] = latency_bucket(i);
    total += buckets[i];
  }
  if (total == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Upper bound of bucket i: 2^i - 1 ns (bucket 0 is exactly 0 ns).
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return (uint64_t{1} << (kLatencyBuckets - 1)) - 1;
}

void MonitorStats::Reset() {
  for (Slot& slot : slots_) {
    for (auto& c : slot.by_reason) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& c : slot.by_mode) {
      c.store(0, std::memory_order_relaxed);
    }
    slot.latency_samples.store(0, std::memory_order_relaxed);
    for (auto& c : slot.latency_buckets) {
      c.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace xsec
