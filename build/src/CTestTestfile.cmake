# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("principal")
subdirs("naming")
subdirs("dac")
subdirs("mac")
subdirs("monitor")
subdirs("extsys")
subdirs("policy")
subdirs("codeload")
subdirs("services")
subdirs("baselines")
subdirs("core")
