file(REMOVE_RECURSE
  "CMakeFiles/xsec_codeload.dir/code_loader.cc.o"
  "CMakeFiles/xsec_codeload.dir/code_loader.cc.o.d"
  "libxsec_codeload.a"
  "libxsec_codeload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_codeload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
