#include "src/services/log.h"

#include "src/base/strings.h"

namespace xsec {

LogService::LogService(Kernel* kernel, std::string service_path, std::string object_path)
    : kernel_(kernel),
      service_path_(std::move(service_path)),
      object_path_(std::move(object_path)) {}

Status LogService::Install() {
  PrincipalId system = kernel_->system_principal();
  auto node = kernel_->name_space().BindPath(object_path_, NodeKind::kObject, system);
  if (!node.ok()) {
    return node.status();
  }
  node_ = *node;
  auto svc = kernel_->RegisterService(service_path_, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto proc = [this, system](std::string_view name, HandlerFn fn) -> Status {
    auto p = kernel_->RegisterProcedure(JoinPath(service_path_, name), system, std::move(fn));
    return p.ok() ? OkStatus() : p.status();
  };

  XSEC_RETURN_IF_ERROR(proc("append", [this](CallContext& ctx) -> StatusOr<Value> {
    auto entry = ArgString(ctx.args, 0);
    if (!entry.ok()) {
      return entry.status();
    }
    XSEC_RETURN_IF_ERROR(AppendEntry(*ctx.subject, *entry));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("read", [this](CallContext& ctx) -> StatusOr<Value> {
    auto entries = ReadEntries(*ctx.subject);
    if (!entries.ok()) {
      return entries.status();
    }
    return Value{StrJoin(*entries, "\n")};
  }));
  XSEC_RETURN_IF_ERROR(proc("size", [this](CallContext& ctx) -> StatusOr<Value> {
    auto size = Size(*ctx.subject);
    if (!size.ok()) {
      return size.status();
    }
    return Value{*size};
  }));
  XSEC_RETURN_IF_ERROR(proc("truncate", [this](CallContext& ctx) -> StatusOr<Value> {
    XSEC_RETURN_IF_ERROR(Truncate(*ctx.subject));
    return Value{true};
  }));
  return OkStatus();
}

Status LogService::AppendEntry(Subject& subject, std::string_view entry) {
  Decision decision = kernel_->monitor().Check(subject, node_, AccessMode::kWriteAppend);
  if (!decision.allowed) {
    // Full write also implies the ability to append.
    decision = kernel_->monitor().Check(subject, node_, AccessMode::kWrite);
  }
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  entries_.emplace_back(entry);
  return OkStatus();
}

StatusOr<std::vector<std::string>> LogService::ReadEntries(Subject& subject) {
  Decision decision = kernel_->monitor().Check(subject, node_, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return entries_;
}

StatusOr<int64_t> LogService::Size(Subject& subject) {
  Decision decision = kernel_->monitor().Check(subject, node_, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return static_cast<int64_t>(entries_.size());
}

Status LogService::Truncate(Subject& subject) {
  Decision decision = kernel_->monitor().Check(subject, node_, AccessMode::kWrite);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  entries_.clear();
  return OkStatus();
}

}  // namespace xsec
