# Empty dependencies file for policyc.
# This may be replaced when dependencies are built.
