// A subject: the active entity access decisions are made about.
//
// Paper §2.2: "threads of control serve as subjects and function at the same
// security class as the associated principal. The security class is passed on
// when another system service is invoked." A Subject therefore carries a
// principal (for DAC) and a current security class (for MAC); the extensible
// system substrate (src/extsys/) propagates the class across invocations.

#ifndef XSEC_SRC_MONITOR_SUBJECT_H_
#define XSEC_SRC_MONITOR_SUBJECT_H_

#include <cstdint>

#include "src/mac/security_class.h"
#include "src/principal/principal.h"

namespace xsec {

struct Subject {
  PrincipalId principal;
  SecurityClass security_class;

  // Distinguishes concurrent threads of the same principal in audit records.
  uint64_t thread_id = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_SUBJECT_H_
