file(REMOVE_RECURSE
  "CMakeFiles/xsec_services_tests.dir/log_test.cc.o"
  "CMakeFiles/xsec_services_tests.dir/log_test.cc.o.d"
  "CMakeFiles/xsec_services_tests.dir/mbuf_test.cc.o"
  "CMakeFiles/xsec_services_tests.dir/mbuf_test.cc.o.d"
  "CMakeFiles/xsec_services_tests.dir/memfs_test.cc.o"
  "CMakeFiles/xsec_services_tests.dir/memfs_test.cc.o.d"
  "CMakeFiles/xsec_services_tests.dir/threads_test.cc.o"
  "CMakeFiles/xsec_services_tests.dir/threads_test.cc.o.d"
  "CMakeFiles/xsec_services_tests.dir/vfs_test.cc.o"
  "CMakeFiles/xsec_services_tests.dir/vfs_test.cc.o.d"
  "xsec_services_tests"
  "xsec_services_tests.pdb"
  "xsec_services_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_services_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
