// The self-healing audit pipeline (MODEL.md §12): ResilientSink's
// retry/backoff/circuit-breaker behavior, the /sys/monitor/audit health
// leaves, and the monitor's fail-closed vs fail-open contract when the sink
// is down.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "src/base/failpoint.h"
#include "src/core/secure_system.h"
#include "src/monitor/audit.h"

namespace xsec {
namespace {

// Microsecond backoffs and short reopen windows keep every test fast while
// still exercising the real schedule arithmetic.
ResilientSinkOptions FastOptions() {
  ResilientSinkOptions options;
  options.max_attempts = 2;
  options.backoff_initial_ns = 1'000;
  options.backoff_max_ns = 4'000;
  options.trip_after = 4;
  options.reopen_after_ns = 2'000'000;  // 2 ms
  return options;
}

class AuditResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(AuditResilienceTest, RetriesWithBackoffThenDelivers) {
  int calls = 0;
  ResilientSink sink(
      [&calls](const AuditRecord&) -> Status {
        return ++calls < 2 ? InternalError("flaky") : OkStatus();
      },
      FastOptions());
  sink.Write(AuditRecord{});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(sink.written(), 1u);
  EXPECT_EQ(sink.retries(), 1u);
  EXPECT_EQ(sink.gave_up(), 0u);
  EXPECT_EQ(sink.state(), ResilientSink::State::kClosed);
}

TEST_F(AuditResilienceTest, SuccessResetsTheConsecutiveFailureBudget) {
  int calls = 0;
  // Fail every odd call: each record needs one retry, but the success always
  // lands before the trip budget (4) accumulates.
  ResilientSink sink(
      [&calls](const AuditRecord&) -> Status {
        return (++calls % 2 == 1) ? InternalError("flaky") : OkStatus();
      },
      FastOptions());
  for (int i = 0; i < 8; ++i) {
    sink.Write(AuditRecord{});
  }
  EXPECT_EQ(sink.written(), 8u);
  EXPECT_EQ(sink.retries(), 8u);
  EXPECT_EQ(sink.state(), ResilientSink::State::kClosed);
}

TEST_F(AuditResilienceTest, CircuitOpensAfterConsecutiveFailuresAndDropsFast) {
  int calls = 0;
  ResilientSinkOptions options = FastOptions();
  options.reopen_after_ns = 60'000'000'000;  // never half-opens in this test
  ResilientSink sink([&calls](const AuditRecord&) -> Status {
    ++calls;
    return InternalError("sink is down");
  }, options);

  // Two records * max_attempts(2) = 4 consecutive failed attempts = trip_after.
  sink.Write(AuditRecord{});
  EXPECT_EQ(sink.state(), ResilientSink::State::kClosed);
  sink.Write(AuditRecord{});
  EXPECT_EQ(sink.state(), ResilientSink::State::kOpen);
  EXPECT_FALSE(sink.healthy());
  EXPECT_EQ(sink.gave_up(), 2u);
  EXPECT_EQ(sink.retries(), 2u);

  // Open circuit: records are dropped without touching the dead sink.
  int calls_before = calls;
  for (int i = 0; i < 5; ++i) {
    sink.Write(AuditRecord{});
  }
  EXPECT_EQ(calls, calls_before);
  EXPECT_EQ(sink.gave_up(), 7u);
  EXPECT_EQ(sink.retries(), 2u);
}

TEST_F(AuditResilienceTest, HalfOpenProbeRecloses) {
  bool down = true;
  ResilientSink sink(
      [&down](const AuditRecord&) -> Status {
        return down ? InternalError("sink is down") : OkStatus();
      },
      FastOptions());
  sink.Write(AuditRecord{});
  sink.Write(AuditRecord{});
  ASSERT_EQ(sink.state(), ResilientSink::State::kOpen);

  down = false;
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  sink.Write(AuditRecord{});  // the half-open probe
  EXPECT_EQ(sink.state(), ResilientSink::State::kClosed);
  EXPECT_EQ(sink.written(), 1u);
}

TEST_F(AuditResilienceTest, HalfOpenProbeFailureReopens) {
  ResilientSink sink([](const AuditRecord&) -> Status {
    return InternalError("sink is down");
  }, FastOptions());
  sink.Write(AuditRecord{});
  sink.Write(AuditRecord{});
  ASSERT_EQ(sink.state(), ResilientSink::State::kOpen);

  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  uint64_t retries_before = sink.retries();
  sink.Write(AuditRecord{});  // probe: exactly one attempt, no retries
  EXPECT_EQ(sink.state(), ResilientSink::State::kOpen);
  EXPECT_EQ(sink.retries(), retries_before);
}

// The acceptance scenario: a persistently failing sink (via the
// audit.sink.write failpoint) trips the circuit; health surfaces through the
// audit log and the /sys/monitor leaves; required mode fail-closes Check
// with kAuditUnavailable; fail-open mode counts unaudited allows; healing
// the sink restores service, proving the transient denial was never cached.
TEST_F(AuditResilienceTest, FailClosedDegradationEndToEnd) {
  MonitorOptions options;
  options.audit_policy = AuditPolicy::kAll;
  options.audit_required = true;
  SecureSystem sys(options);
  AuditLog& audit = sys.monitor().audit();
  ASSERT_TRUE(audit.required());
  EXPECT_EQ(audit.sink_state(), "none");

  // A healthy inner sink behind the audit.sink.write failpoint.
  ResilientSinkOptions sink_options = FastOptions();
  auto sink = std::make_shared<ResilientSink>(
      [](const AuditRecord&) -> Status { return OkStatus(); }, sink_options);
  audit.InstallResilientSink(sink);
  EXPECT_EQ(audit.sink_state(), "closed");

  auto alice = sys.CreateUser("alice");
  ASSERT_TRUE(alice.ok());
  Subject alice_s = sys.Login(*alice, sys.labels().Bottom());
  NodeId file = *sys.name_space().BindPath("/fs/resilience", NodeKind::kFile,
                                           sys.system_principal());
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, *alice, AccessMode::kRead});
  (void)sys.name_space().SetAclRef(file, sys.kernel().acls().Create(std::move(acl)));

  // Healthy pipeline: the allow is audited and delivered.
  EXPECT_TRUE(sys.monitor().Check(alice_s, file, AccessMode::kRead).allowed);
  EXPECT_GE(sink->written(), 1u);

  // Kill the sink persistently. Each retained record burns max_attempts(2)
  // attempts, so two checks trip the 4-attempt budget.
  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("audit.sink.write", "error").ok());
  (void)sys.monitor().Check(alice_s, file, AccessMode::kRead);
  (void)sys.monitor().Check(alice_s, file, AccessMode::kRead);
  ASSERT_TRUE(audit.SinkTripped());
  EXPECT_EQ(audit.sink_state(), "open");
  EXPECT_GE(audit.sink_retries(), 2u);
  EXPECT_GE(audit.sink_gave_up(), 2u);

  // Required mode: a would-be allow now fail-closes with kAuditUnavailable.
  Decision denied = sys.monitor().Check(alice_s, file, AccessMode::kRead);
  EXPECT_FALSE(denied.allowed);
  EXPECT_EQ(denied.reason, DenyReason::kAuditUnavailable);

  // Real denials are unaffected — they were never allows to withhold.
  Decision still_denied = sys.monitor().Check(alice_s, file, AccessMode::kWrite);
  EXPECT_FALSE(still_denied.allowed);
  EXPECT_NE(still_denied.reason, DenyReason::kAuditUnavailable);

  // Fail-open mode: the allow proceeds and is counted as unaudited.
  audit.set_required(false);
  uint64_t unaudited_before = audit.unaudited_allows();
  EXPECT_TRUE(sys.monitor().Check(alice_s, file, AccessMode::kRead).allowed);
  EXPECT_GT(audit.unaudited_allows(), unaudited_before);

  // Heal the sink and wait out the reopen window. The next retained record
  // is the half-open probe: it recloses the circuit, and because the
  // fail-closed denial is applied after the cache (never stored), service
  // resumes immediately afterwards.
  audit.set_required(true);
  FailpointRegistry::Instance().DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  (void)sys.monitor().Check(alice_s, file, AccessMode::kRead);  // probe carrier
  EXPECT_FALSE(audit.SinkTripped());
  EXPECT_EQ(audit.sink_state(), "closed");
  Decision healed = sys.monitor().Check(alice_s, file, AccessMode::kRead);
  EXPECT_TRUE(healed.allowed);
}

TEST_F(AuditResilienceTest, SinkHealthIsMountedInTheStatsTree) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  auto state = sys.stats().ReadStat(system, "/sys/monitor/audit/sink_state");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, "none");

  ResilientSinkOptions options = FastOptions();
  options.reopen_after_ns = 60'000'000'000;
  auto sink = std::make_shared<ResilientSink>(
      [](const AuditRecord&) -> Status { return InternalError("down"); }, options);
  sys.monitor().audit().InstallResilientSink(sink);
  state = sys.stats().ReadStat(system, "/sys/monitor/audit/sink_state");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, "closed");

  // Trip it: denials-only default policy, so use denied checks to generate
  // retained records.
  auto bob = sys.CreateUser("bob");
  ASSERT_TRUE(bob.ok());
  Subject bob_s = sys.Login(*bob, sys.labels().Bottom());
  for (int i = 0; i < 3; ++i) {
    (void)sys.monitor().CheckPath(bob_s, "/sys/monitor/snapshot", AccessMode::kWrite);
  }
  state = sys.stats().ReadStat(system, "/sys/monitor/audit/sink_state");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, "open");
  auto retries = sys.stats().ReadStat(system, "/sys/monitor/audit/retries");
  ASSERT_TRUE(retries.ok());
  EXPECT_GE(std::stoull(*retries), 2u);
  auto gave_up = sys.stats().ReadStat(system, "/sys/monitor/audit/gave_up");
  ASSERT_TRUE(gave_up.ok());
  EXPECT_GE(std::stoull(*gave_up), 2u);
}

TEST_F(AuditResilienceTest, RotationRenameFailureDegradesToTruncate) {
  std::string path = ::testing::TempDir() + "/resilience_rotate.ndjson";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  NdjsonRotationPolicy policy;
  policy.max_bytes = 1;  // rotate on every record
  policy.max_keep = 2;
  NdjsonFileRotator rotator(path, policy);
  ASSERT_TRUE(rotator.Open().ok());

  AuditRecord record;
  record.path = "/fs/x";
  rotator.Write(record);
  rotator.Write(record);  // normal rotation shifts to path.1
  EXPECT_EQ(rotator.rename_failures(), 0u);

  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("audit.rotate.rename", "error").ok());
  rotator.Write(record);  // rotation still happens, shift is skipped
  EXPECT_GE(rotator.rename_failures(), 1u);
  EXPECT_GE(rotator.rotations(), 2u);
  FailpointRegistry::Instance().DisarmAll();
  rotator.Write(record);  // and the rotator keeps writing afterwards
}

TEST_F(AuditResilienceTest, SyncSinkEmitsInExactSequenceOrder) {
  // The sync-mode ordering guarantee (docs/MODEL.md §11): with no async
  // drain running, the sink observes records in exactly their stamped
  // sequence order even when many threads record concurrently. Before the
  // fix, stamping and emission were separate critical sections, so two
  // racing recorders could emit out of order.
  AuditLog log;
  std::vector<uint64_t> emitted;
  log.set_sink([&emitted](const AuditRecord& record) {
    emitted.push_back(record.sequence);  // serialized by the log's sink mutex
  });
  log.set_policy(AuditPolicy::kAll);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        AuditRecord record;
        record.thread_id = static_cast<uint64_t>(t);
        record.allowed = (i % 2 == 0);
        record.reason = record.allowed ? DenyReason::kNone : DenyReason::kDacNoGrant;
        log.Record(std::move(record));
      }
    });
  }
  for (std::thread& t : recorders) {
    t.join();
  }

  ASSERT_EQ(emitted.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 1; i < emitted.size(); ++i) {
    ASSERT_EQ(emitted[i], emitted[i - 1] + 1)
        << "sync sink saw seq " << emitted[i] << " after " << emitted[i - 1];
  }
}

TEST_F(AuditResilienceTest, SyncSinkOrderHoldsForBatchedRecorders) {
  // Batched stamping (ReferenceMonitor::CheckBatch → AuditLog::RecordBatch)
  // shares the same contract: per-batch contiguous sequences, globally
  // emitted in order, interleaved freely with per-record recorders.
  AuditLog log;
  std::vector<uint64_t> emitted;
  log.set_sink([&emitted](const AuditRecord& record) {
    emitted.push_back(record.sequence);
  });
  log.set_policy(AuditPolicy::kAll);

  constexpr int kThreads = 6;
  constexpr int kBatches = 60;
  constexpr int kBatchSize = 5;
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&log, t] {
      for (int b = 0; b < kBatches; ++b) {
        if (t % 2 == 0) {
          std::vector<AuditRecord> batch(kBatchSize);
          for (AuditRecord& record : batch) {
            record.thread_id = static_cast<uint64_t>(t);
            record.allowed = false;
            record.reason = DenyReason::kMacFlow;
          }
          log.RecordBatch(std::move(batch));
        } else {
          for (int i = 0; i < kBatchSize; ++i) {
            AuditRecord record;
            record.thread_id = static_cast<uint64_t>(t);
            record.allowed = false;
            record.reason = DenyReason::kDacNoGrant;
            log.Record(std::move(record));
          }
        }
      }
    });
  }
  for (std::thread& t : recorders) {
    t.join();
  }

  ASSERT_EQ(emitted.size(), static_cast<size_t>(kThreads * kBatches * kBatchSize));
  for (size_t i = 1; i < emitted.size(); ++i) {
    ASSERT_EQ(emitted[i], emitted[i - 1] + 1);
  }
}

}  // namespace
}  // namespace xsec
