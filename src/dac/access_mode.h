// Access modes (paper §2.1).
//
// The paper keeps the conventional file-system modes — read, write,
// write-append, administrate, delete, list — and adds the two modes that
// correspond to the two ways extensions interact with an extensible system:
//
//   execute — the extension may *call on* a service;
//   extend  — the extension may *extend (specialize)* a service.
//
// write-append exists so that a policy can let low-trust subjects add to an
// object without being able to "blindly overwrite" it (§2.2).

#ifndef XSEC_SRC_DAC_ACCESS_MODE_H_
#define XSEC_SRC_DAC_ACCESS_MODE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace xsec {

enum class AccessMode : uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kWriteAppend = 1u << 2,
  kExecute = 1u << 3,
  kExtend = 1u << 4,
  kAdministrate = 1u << 5,
  kDelete = 1u << 6,
  kList = 1u << 7,
};

inline constexpr int kAccessModeCount = 8;

std::string_view AccessModeName(AccessMode mode);

// A set of access modes, as requested by a subject or granted by an ACL entry.
class AccessModeSet {
 public:
  constexpr AccessModeSet() : bits_(0) {}
  constexpr AccessModeSet(AccessMode mode) : bits_(static_cast<uint32_t>(mode)) {}  // NOLINT
  constexpr explicit AccessModeSet(uint32_t bits) : bits_(bits) {}

  static constexpr AccessModeSet All() { return AccessModeSet((1u << kAccessModeCount) - 1); }
  static constexpr AccessModeSet None() { return AccessModeSet(); }

  constexpr uint32_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr bool Contains(AccessMode mode) const {
    return (bits_ & static_cast<uint32_t>(mode)) != 0;
  }
  constexpr bool ContainsAll(AccessModeSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Intersects(AccessModeSet other) const { return (bits_ & other.bits_) != 0; }

  constexpr AccessModeSet operator|(AccessModeSet other) const {
    return AccessModeSet(bits_ | other.bits_);
  }
  constexpr AccessModeSet operator&(AccessModeSet other) const {
    return AccessModeSet(bits_ & other.bits_);
  }
  // Set difference: modes in *this not in `other`.
  constexpr AccessModeSet operator-(AccessModeSet other) const {
    return AccessModeSet(bits_ & ~other.bits_);
  }
  AccessModeSet& operator|=(AccessModeSet other) {
    bits_ |= other.bits_;
    return *this;
  }

  constexpr bool operator==(const AccessModeSet& other) const { return bits_ == other.bits_; }

  // Individual modes in the set.
  std::vector<AccessMode> Modes() const;

  // "read|execute"; "-" for the empty set.
  std::string ToString() const;

  // Parses the ToString() form.
  static StatusOr<AccessModeSet> Parse(std::string_view text);

 private:
  uint32_t bits_;
};

inline constexpr AccessModeSet operator|(AccessMode a, AccessMode b) {
  return AccessModeSet(a) | AccessModeSet(b);
}

}  // namespace xsec

#endif  // XSEC_SRC_DAC_ACCESS_MODE_H_
