// Per-call deadline/cancellation options, shared by every blocking surface:
// kernel invocation (src/extsys/kernel.h re-exports this as the options of
// Invoke/CallCapability/RaiseEvent), the stats watch/poll waits, and the
// mediation ring's completion wait (src/monitor/mediation_ring.h). Living in
// src/base lets the monitor layer accept the same options the kernel plumbs
// without depending on the extension-system headers.
//
// `deadline_ns` is an absolute timestamp on the MonotonicNowNs clock; 0
// means no deadline. A call whose deadline has already passed is rejected
// with kDeadlineExceeded before any work runs; otherwise the deadline is
// forwarded so blocking stages can bound their wait.
//
// `cancel` is an optional caller-owned flag: setting it to true withdraws
// the request, and cooperative waiters (anything that polls the
// CallContext::CheckDeadline contract) return kCancelled at their next
// cancellation point. Cancellation wins over an expired deadline when both
// hold. The flag must outlive the call.

#ifndef XSEC_SRC_BASE_CALL_OPTIONS_H_
#define XSEC_SRC_BASE_CALL_OPTIONS_H_

#include <atomic>
#include <cstdint>

namespace xsec {

struct CallOptions {
  uint64_t deadline_ns = 0;
  const std::atomic<bool>* cancel = nullptr;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASE_CALL_OPTIONS_H_
