// End-to-end integration: the paper's world on one running system.
//
// An organization runs an extensible system with the §2.2 label layout. A
// department-1 developer ships a file-system extension built on mbufs
// (§1.1's example); users call it through the general VFS interface; a
// remote applet attempts the §1.2 attacks; administrators revoke access at
// runtime; the audit log accounts for every denial.

#include <gtest/gtest.h>

#include <map>

#include "src/core/secure_system.h"
#include "src/policy/policy_io.h"

namespace xsec {
namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    (void)sys_.labels().DefineLevels({"others", "organization", "local"});
    (void)sys_.labels().DefineCategory("myself");
    (void)sys_.labels().DefineCategory("department-1");
    (void)sys_.labels().DefineCategory("department-2");
    (void)sys_.labels().DefineCategory("outside");

    admin_user_ = *sys_.CreateUser("admin");
    dev_user_ = *sys_.CreateUser("dev");
    user1_ = *sys_.CreateUser("user1");
    user2_ = *sys_.CreateUser("user2");
    attacker_user_ = *sys_.CreateUser("attacker");

    local_all_ = *sys_.labels().MakeClass(
        "local", {"myself", "department-1", "department-2", "outside"});
    dep1_ = *sys_.labels().MakeClass("organization", {"department-1"});
    dep2_ = *sys_.labels().MakeClass("organization", {"department-2"});
    outside_ = *sys_.labels().MakeClass("others", {"outside"});

    admin_ = sys_.Login(admin_user_, local_all_);
    dev_ = sys_.Login(dev_user_, dep1_);
    alice_ = sys_.Login(user1_, dep1_);
    bob_ = sys_.Login(user2_, dep2_);
    attacker_ = sys_.Login(attacker_user_, outside_);
  }

  SecureSystem sys_;
  PrincipalId admin_user_, dev_user_, user1_, user2_, attacker_user_;
  SecurityClass local_all_, dep1_, dep2_, outside_;
  Subject admin_, dev_, alice_, bob_, attacker_;
};

TEST_F(IntegrationTest, FileSystemExtensionOverMbufsEndToEnd) {
  // The base system publishes the "logfs" extension point; only the dev may
  // implement it, everyone may call it.
  NodeId iface = *sys_.vfs().CreateFsType("logfs", sys_.system_principal());
  Acl iface_acl;
  iface_acl.AddEntry({AclEntryType::kAllow, dev_user_, AccessModeSet(AccessMode::kExtend)});
  iface_acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                      AccessMode::kExecute | AccessMode::kList});
  (void)sys_.name_space().SetAclRef(iface, sys_.kernel().acls().Create(std::move(iface_acl)));

  // The extension stores file contents in mbufs it allocates through its
  // *imported* capability — the §1.1 "uses existing services (such as mbuf
  // management) and builds on them" structure.
  auto files = std::make_shared<std::map<std::string, int64_t>>();  // path -> mbuf id
  ExtensionManifest manifest;
  manifest.name = "logfs";
  manifest.origin = Origin::kOrganization;
  manifest.imports = {"/svc/mbuf/alloc", "/svc/mbuf/append", "/svc/mbuf/read"};
  manifest.exports.push_back(
      {sys_.vfs().TypeInterfacePath("logfs"),
       [files](CallContext& ctx) -> StatusOr<Value> {
         auto op = ArgString(ctx.args, 0);
         auto path = ArgString(ctx.args, 1);
         if (!op.ok() || !path.ok()) {
           return InvalidArgumentError("bad vfs call");
         }
         Kernel& kernel = *ctx.kernel;
         Subject& caller = *ctx.subject;
         if (*op == "write") {
           auto data = ArgBytes(ctx.args, 2);
           if (!data.ok()) {
             return data.status();
           }
           if (files->find(*path) == files->end()) {
             auto id = kernel.Invoke(caller, "/svc/mbuf/alloc",
                                     {Value{int64_t(data->size())}});
             if (!id.ok()) {
               return id.status();
             }
             (*files)[*path] = std::get<int64_t>(*id);
           }
           return kernel.Invoke(caller, "/svc/mbuf/append",
                                {Value{(*files)[*path]}, Value{*data}});
         }
         if (*op == "read") {
           auto it = files->find(*path);
           if (it == files->end()) {
             return NotFoundError("no such logfs file");
           }
           return kernel.Invoke(caller, "/svc/mbuf/read", {Value{it->second}});
         }
         return InvalidArgumentError("unsupported logfs op");
       }});

  auto ext = sys_.LoadExtension(manifest, dev_);
  ASSERT_TRUE(ext.ok()) << ext.status();

  // A department-1 user writes and reads through the *general* interface.
  ASSERT_TRUE(sys_.vfs().Write(alice_, "logfs", "/notes", Bytes("mbuf-backed")).ok());
  auto data = sys_.vfs().Read(alice_, "logfs", "/notes");
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(*data, Bytes("mbuf-backed"));
  EXPECT_GT(sys_.mbufs().live_buffers(), 0u);

  // Class-selected dispatch bites: the handler was registered at the dev's
  // department-1 class, and bob's department-2 class does not dominate it —
  // so bob has no eligible implementation at all.
  EXPECT_EQ(sys_.vfs().Read(bob_, "logfs", "/missing").status().code(),
            StatusCode::kPermissionDenied);
  // A dual-role admin (dominating class) reaches the handler; his files are
  // separate (mbufs are principal-private), so alice's path is NotFound.
  EXPECT_EQ(sys_.vfs().Read(admin_, "logfs", "/admin-only").status().code(),
            StatusCode::kNotFound);

  // Unloading the extension kills the file-system type.
  ASSERT_TRUE(sys_.UnloadExtension(dev_, *ext).ok());
  EXPECT_EQ(sys_.vfs().Read(alice_, "logfs", "/notes").status().code(),
            StatusCode::kNotFound);
}

TEST_F(IntegrationTest, AttackSuiteIsFullyDeniedAndAudited) {
  sys_.monitor().audit().Clear();
  sys_.monitor().set_audit_policy(AuditPolicy::kDenialsOnly);

  // Victim state: a department-1 thread and a department-1 file.
  auto victim_thread = sys_.threads().Spawn(alice_, "worker");
  ASSERT_TRUE(victim_thread.ok());
  NodeId dep1_dir = *sys_.name_space().BindPath("/fs/dep1", NodeKind::kDirectory, user1_);
  (void)sys_.name_space().SetLabelRef(dep1_dir, sys_.labels().StoreLabel(dep1_));
  Acl dir_acl;
  dir_acl.AddEntry({AclEntryType::kAllow, user1_, AccessModeSet::All()});
  // Note the deliberately sloppy world grant: DAC alone would leak.
  dir_acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                    AccessMode::kRead | AccessMode::kList});
  (void)sys_.name_space().SetAclRef(dep1_dir, sys_.kernel().acls().Create(std::move(dir_acl)));
  ASSERT_TRUE(sys_.fs().Create(alice_, "/fs/dep1/secret").ok());
  ASSERT_TRUE(sys_.fs().Write(alice_, "/fs/dep1/secret", Bytes("payroll")).ok());

  // Attack 1: ThreadMurder.
  EXPECT_EQ(sys_.threads().Kill(attacker_, *victim_thread).code(),
            StatusCode::kPermissionDenied);
  // Attack 2: read the secret despite the world-readable ACL (MAC stops it).
  EXPECT_EQ(sys_.fs().Read(attacker_, "/fs/dep1/secret").status().code(),
            StatusCode::kPermissionDenied);
  // Attack 3: same-level cross-department read (bob).
  EXPECT_EQ(sys_.fs().Read(bob_, "/fs/dep1/secret").status().code(),
            StatusCode::kPermissionDenied);
  // Attack 4: hijack the fs service by specializing an interface without an
  // extend grant.
  NodeId iface = *sys_.vfs().CreateFsType("evilfs", sys_.system_principal());
  (void)iface;
  ExtensionManifest evil;
  evil.name = "hijack";
  evil.exports.push_back({sys_.vfs().TypeInterfacePath("evilfs"),
                          [](CallContext&) -> StatusOr<Value> { return Value{}; }});
  EXPECT_EQ(sys_.LoadExtension(evil, attacker_).status().code(),
            StatusCode::kPermissionDenied);

  // Legitimate traffic still flows.
  EXPECT_TRUE(sys_.fs().Read(alice_, "/fs/dep1/secret").ok());
  EXPECT_TRUE(sys_.fs().Read(admin_, "/fs/dep1/secret").ok());  // read-down

  // Every attack left a denial record naming the attacker.
  auto denials = sys_.monitor().audit().Query(
      [&](const AuditRecord& r) { return !r.allowed; });
  int by_attacker = 0;
  int by_bob = 0;
  for (const AuditRecord& r : denials) {
    by_attacker += r.principal == attacker_user_ ? 1 : 0;
    by_bob += r.principal == user2_ ? 1 : 0;
  }
  EXPECT_GE(by_attacker, 3);
  EXPECT_GE(by_bob, 1);
  EXPECT_EQ(sys_.monitor().audit().total_denials(), denials.size());
}

TEST_F(IntegrationTest, RuntimeRevocationTakesImmediateEffect) {
  // The dev links an extension importing the mbuf allocator; later the
  // administrator revokes execute on that procedure and the capability dies.
  NodeId alloc = *sys_.name_space().Lookup("/svc/mbuf/alloc");
  ExtensionManifest manifest;
  manifest.name = "allocator-client";
  manifest.imports = {"/svc/mbuf/alloc"};
  auto ext = sys_.LoadExtension(manifest, dev_);
  ASSERT_TRUE(ext.ok());
  const LinkedExtension* linked = sys_.kernel().GetExtension(*ext);

  EXPECT_TRUE(sys_.kernel()
                  .CallCapability(dev_, linked->imports[0], {Value{int64_t{8}}})
                  .ok());

  // Revoke: an explicit deny entry for the dev on the procedure node.
  Subject root = sys_.SystemSubject();
  ASSERT_TRUE(sys_.monitor()
                  .AddAclEntry(root, alloc,
                               {AclEntryType::kDeny, dev_user_,
                                AccessModeSet(AccessMode::kExecute)})
                  .ok());
  EXPECT_EQ(sys_.kernel()
                .CallCapability(dev_, linked->imports[0], {Value{int64_t{8}}})
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  // Other principals are unaffected.
  EXPECT_TRUE(sys_.mbufs().Alloc(alice_, 8).ok());
}

TEST_F(IntegrationTest, AppendOnlyAuditTrailAcrossTrustLevels) {
  // The syslog sits at the top class; everyone may append, nobody below the
  // top may read or truncate — the full write-append story.
  NodeId node = sys_.log().log_node();
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                AccessMode::kWriteAppend | AccessMode::kRead | AccessMode::kWrite});
  (void)sys_.name_space().SetAclRef(node, sys_.kernel().acls().Create(std::move(acl)));
  (void)sys_.name_space().SetLabelRef(node, sys_.labels().StoreLabel(local_all_));

  EXPECT_TRUE(sys_.log().AppendEntry(attacker_, "attacker was here").ok());
  EXPECT_TRUE(sys_.log().AppendEntry(alice_, "dep1 checkpoint").ok());
  EXPECT_EQ(sys_.log().ReadEntries(attacker_).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.log().Truncate(attacker_).code(), StatusCode::kPermissionDenied);
  auto entries = sys_.log().ReadEntries(admin_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(IntegrationTest, RebootCyclePreservesTheWholePolicy) {
  // Build up nontrivial state, persist the policy, boot a *fresh* system
  // (services reinstall their handlers), reload — every protection decision
  // must come out the same, including ones that need labels, clearances,
  // negative entries, and the officer.
  NodeId dep1_dir = *sys_.name_space().BindPath("/fs/dep1", NodeKind::kDirectory, user1_);
  (void)sys_.name_space().SetLabelRef(dep1_dir, sys_.labels().StoreLabel(dep1_));
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, user1_, AccessModeSet::All()});
  acl.AddEntry({AclEntryType::kAllow, sys_.everyone(), AccessMode::kRead | AccessMode::kList});
  acl.AddEntry({AclEntryType::kDeny, user2_, AccessModeSet(AccessMode::kRead)});
  (void)sys_.name_space().SetAclRef(dep1_dir, sys_.kernel().acls().Create(std::move(acl)));
  sys_.monitor().set_security_officer(admin_user_);
  sys_.kernel().labels().SetClearance(user2_.value, dep2_);

  auto policy = SerializePolicy(sys_.kernel());
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();

  SecureSystem rebooted;
  ASSERT_TRUE(LoadPolicy(*policy, &rebooted.kernel()).ok());

  auto subject_of = [&rebooted](const char* name, const SecurityClass& cls) {
    return rebooted.Login(*rebooted.principals().FindByName(name), cls);
  };
  Subject r_alice = subject_of("user1", dep1_);
  Subject r_bob = subject_of("user2", dep2_);
  Subject r_attacker = subject_of("attacker", outside_);
  NodeId r_dir = *rebooted.name_space().Lookup("/fs/dep1");

  // ACL + label semantics survived.
  EXPECT_TRUE(rebooted.monitor().Check(r_alice, r_dir, AccessMode::kWrite).allowed);
  EXPECT_FALSE(rebooted.monitor().Check(r_bob, r_dir, AccessMode::kRead).allowed);
  EXPECT_FALSE(rebooted.monitor().Check(r_attacker, r_dir, AccessMode::kRead).allowed);
  // The officer and clearance survived.
  EXPECT_EQ(rebooted.monitor().security_officer(),
            *rebooted.principals().FindByName("admin"));
  const SecurityClass* clearance = rebooted.kernel().labels().ClearanceOf(
      rebooted.principals().FindByName("user2")->value);
  ASSERT_NE(clearance, nullptr);
  EXPECT_TRUE(*clearance == dep2_);
  // And the live services work on the restored tree: alice creates a file
  // inside the restored labeled directory.
  EXPECT_TRUE(rebooted.fs().Create(r_alice, "/fs/dep1/after-reboot").ok());
  EXPECT_FALSE(rebooted.fs().Read(r_bob, "/fs/dep1/after-reboot").ok());
}

TEST_F(IntegrationTest, ClassSelectedDispatchServesEachCommunity) {
  // One "render" extension point, three implementations at three classes;
  // each caller gets the most trusted implementation it dominates.
  NodeId iface = *sys_.vfs().CreateFsType("render", sys_.system_principal());
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                AccessMode::kExecute | AccessMode::kExtend | AccessMode::kList});
  (void)sys_.name_space().SetAclRef(iface, sys_.kernel().acls().Create(std::move(acl)));

  auto install = [&](std::string name, const SecurityClass& cls, std::string tag) {
    ExtensionManifest manifest;
    manifest.name = std::move(name);
    manifest.static_class = cls;
    manifest.exports.push_back(
        {sys_.vfs().TypeInterfacePath("render"),
         [tag](CallContext&) -> StatusOr<Value> { return Value{tag}; }});
    return sys_.LoadExtension(manifest, admin_);
  };
  ASSERT_TRUE(install("render-outside", outside_, "plain").ok());
  ASSERT_TRUE(install("render-dep1", dep1_, "dep1-themed").ok());
  ASSERT_TRUE(install("render-local", local_all_, "full").ok());

  auto call = [&](Subject& subject) -> std::string {
    auto result = sys_.kernel().RaiseEvent(
        subject, sys_.vfs().TypeInterfacePath("render"), {});
    return result.ok() ? std::get<std::string>(*result) : result.status().ToString();
  };
  EXPECT_EQ(call(attacker_), "plain");
  EXPECT_EQ(call(alice_), "dep1-themed");
  EXPECT_EQ(call(admin_), "full");
  // bob (department-2) dominates only the outside implementation? No — his
  // categories don't include "outside", so only handlers he dominates are
  // eligible; the outside handler is NOT dominated by dep2. He is denied.
  EXPECT_NE(call(bob_).find("PERMISSION_DENIED"), std::string::npos);
}

}  // namespace
}  // namespace xsec
