# Empty dependencies file for xsec_base.
# This may be replaced when dependencies are built.
