file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_traversal.dir/bench_f9_traversal.cc.o"
  "CMakeFiles/bench_f9_traversal.dir/bench_f9_traversal.cc.o.d"
  "bench_f9_traversal"
  "bench_f9_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
