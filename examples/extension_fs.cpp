// The paper's §1.1 motivating example: "an extension can be used to provide
// a new file system that is not supported by the original system. To
// implement this file system, the extension … uses existing services (such
// as mbuf management) and builds on them. At the same time, to access the
// new file system, a user invokes the existing, general file system
// interfaces which have been extended (or specialized) by the extension."
//
// This example loads `mbuffs`, a file system whose blocks live in kernel
// mbufs reached through link-time-checked capabilities, registered as a VFS
// type. Users never talk to the extension directly — they call the general
// /svc/vfs procedures. The example also shows both link-time failures: an
// extension that lacks `execute` on its imports, and one that lacks `extend`
// on the interface it wants to specialize.
//
// Build & run:  cmake --build build && ./build/examples/extension_fs

#include <cstdio>
#include <map>
#include <memory>

#include "src/core/secure_system.h"

using xsec::AccessMode;
using xsec::Acl;
using xsec::AclEntry;
using xsec::AclEntryType;
using xsec::CallContext;
using xsec::ExtensionManifest;
using xsec::StatusOr;
using xsec::Value;

namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

std::string Text(const std::vector<uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

// The mbuffs implementation: paths map to mbuf chains; all storage I/O goes
// back through the kernel with the *caller's* subject (class propagation).
xsec::HandlerFn MakeMbufFs() {
  auto files = std::make_shared<std::map<std::string, int64_t>>();
  return [files](CallContext& ctx) -> StatusOr<Value> {
    auto op = xsec::ArgString(ctx.args, 0);
    auto path = xsec::ArgString(ctx.args, 1);
    if (!op.ok()) {
      return op.status();
    }
    if (!path.ok()) {
      return path.status();
    }
    if (*op == "write") {
      auto data = xsec::ArgBytes(ctx.args, 2);
      if (!data.ok()) {
        return data.status();
      }
      if (files->find(*path) == files->end()) {
        auto id = ctx.kernel->Invoke(*ctx.subject, "/svc/mbuf/alloc",
                                     {Value{int64_t(data->size())}});
        if (!id.ok()) {
          return id.status();
        }
        (*files)[*path] = std::get<int64_t>(*id);
      }
      return ctx.kernel->Invoke(*ctx.subject, "/svc/mbuf/append",
                                {Value{(*files)[*path]}, Value{*data}});
    }
    if (*op == "read") {
      auto it = files->find(*path);
      if (it == files->end()) {
        return xsec::NotFoundError("mbuffs: no such file");
      }
      return ctx.kernel->Invoke(*ctx.subject, "/svc/mbuf/read", {Value{it->second}});
    }
    if (*op == "list") {
      std::string out;
      for (const auto& [name, id] : *files) {
        if (!out.empty()) {
          out += "\n";
        }
        out += name;
      }
      return Value{out};
    }
    return xsec::InvalidArgumentError("mbuffs: unknown op");
  };
}

}  // namespace

int main() {
  xsec::SecureSystem sys;
  (void)sys.labels().DefineLevels({"untrusted", "trusted"});
  xsec::PrincipalId dev = *sys.CreateUser("fs-developer");
  xsec::PrincipalId user = *sys.CreateUser("user");
  xsec::PrincipalId stranger = *sys.CreateUser("stranger");
  xsec::SecurityClass trusted = *sys.labels().MakeClass("trusted", {});
  xsec::Subject dev_subject = sys.Login(dev, trusted);
  xsec::Subject user_subject = sys.Login(user, trusted);
  xsec::Subject stranger_subject = sys.Login(stranger, trusted);

  // The administrator publishes the new file-system type and decides WHO may
  // implement it (extend) and who may use it (execute).
  xsec::NodeId iface = *sys.vfs().CreateFsType("mbuffs", sys.system_principal());
  Acl acl;
  acl.AddEntry(AclEntry{AclEntryType::kAllow, dev, AccessMode::kExtend | AccessMode::kList});
  acl.AddEntry(AclEntry{AclEntryType::kAllow, sys.everyone(),
                        AccessMode::kExecute | AccessMode::kList});
  (void)sys.name_space().SetAclRef(iface, sys.kernel().acls().Create(std::move(acl)));

  // --- link-time control, failure cases first -------------------------------
  {
    // A stranger tries to ship the implementation: no `extend` grant.
    ExtensionManifest evil;
    evil.name = "mbuffs-hijack";
    evil.exports.push_back({sys.vfs().TypeInterfacePath("mbuffs"), MakeMbufFs()});
    auto denied = sys.LoadExtension(evil, stranger_subject);
    std::printf("stranger ships mbuffs        -> %s\n", denied.status().ToString().c_str());
  }
  {
    // The dev tries to import a service that was never granted.
    xsec::NodeId alloc = *sys.name_space().Lookup("/svc/mbuf/alloc");
    (void)sys.monitor().AddAclEntry(
        sys.SystemSubject(), alloc,
        AclEntry{AclEntryType::kDeny, dev, xsec::AccessModeSet(AccessMode::kExecute)});
    ExtensionManifest manifest;
    manifest.name = "mbuffs-noimport";
    manifest.imports = {"/svc/mbuf/alloc"};
    auto denied = sys.LoadExtension(manifest, dev_subject);
    std::printf("dev links w/o execute grant  -> %s\n", denied.status().ToString().c_str());
    // Undo: strip the dev's entries again (the inherited /svc grant returns).
    auto undo = sys.SystemSubject();
    (void)sys.monitor().RemoveAclEntriesFor(undo, alloc, dev);
  }

  // --- the real extension ----------------------------------------------------
  ExtensionManifest manifest;
  manifest.name = "mbuffs";
  manifest.imports = {"/svc/mbuf/alloc", "/svc/mbuf/append", "/svc/mbuf/read"};
  manifest.exports.push_back({sys.vfs().TypeInterfacePath("mbuffs"), MakeMbufFs()});
  auto ext = sys.LoadExtension(manifest, dev_subject);
  std::printf("dev ships mbuffs             -> %s\n",
              ext.ok() ? "OK (linked, 3 imports, 1 export)" : ext.status().ToString().c_str());

  // --- users drive it through the GENERAL interface --------------------------
  (void)sys.vfs().Write(user_subject, "mbuffs", "/report", Bytes("quarterly numbers"));
  (void)sys.vfs().Write(user_subject, "mbuffs", "/notes", Bytes("draft"));
  auto listing = sys.vfs().ListDir(user_subject, "mbuffs", "/");
  std::printf("user lists mbuffs:/          -> %s\n",
              listing.ok() ? listing->c_str() : listing.status().ToString().c_str());
  auto contents = sys.vfs().Read(user_subject, "mbuffs", "/report");
  std::printf("user reads mbuffs:/report    -> \"%s\"\n",
              contents.ok() ? Text(*contents).c_str() : contents.status().ToString().c_str());
  std::printf("kernel mbufs in use          -> %zu\n", sys.mbufs().live_buffers());

  // --- runtime revocation -----------------------------------------------------
  // The administrator revokes the user's right to call the VFS read
  // procedure; the very next call is denied (the monitor re-checks, cached).
  xsec::NodeId read_proc = *sys.name_space().Lookup("/svc/vfs/read");
  (void)sys.monitor().AddAclEntry(
      sys.SystemSubject(), read_proc,
      AclEntry{AclEntryType::kDeny, user, xsec::AccessModeSet(AccessMode::kExecute)});
  auto revoked = sys.Invoke(user_subject, "/svc/vfs/read",
                            {Value{std::string("mbuffs")}, Value{std::string("/report")}});
  std::printf("after revocation, user reads -> %s\n", revoked.status().ToString().c_str());

  // --- unload ------------------------------------------------------------------
  (void)sys.UnloadExtension(dev_subject, *ext);
  auto gone = sys.vfs().Read(dev_subject, "mbuffs", "/report");
  std::printf("after unload, any read       -> %s\n", gone.status().ToString().c_str());
  return 0;
}
