// Monitor shard identifiers and assignment helpers.
//
// The namespace, ACL store, label authority, decision cache, and compiled
// policy all partition their *validity domain* into a fixed number of monitor
// shards (docs/MODEL.md §15). A node's shard is decided once, at creation, by
// its top-level subtree: top-level containers hash by name, top-level leaves
// hash by owner principal (the "principal-hash fallback" for flat
// namespaces), and every deeper node inherits its parent's shard. Shards
// never migrate, so a shard id read without synchronisation is stable for
// the lifetime of the node.
//
// Two sentinel domains complete the picture:
//   kAggregateShard — the legacy global-stamp domain. Stamps read for an
//     unknown/out-of-range node id, or with sharding disabled, live here.
//   kAllShards      — "applies to every shard": mutations tagged this way
//     bump every per-shard generation (root metadata, shared ACL refs,
//     membership/clearance changes).
//
// Cached decisions compare stamp *values and domain*: a decision cached under
// the aggregate domain never validates against a numerically equal
// shard-local stamp set, and vice versa (see CacheStamps::operator==).

#ifndef XSEC_SRC_BASE_SHARD_H_
#define XSEC_SRC_BASE_SHARD_H_

#include <cstdint>
#include <string_view>

namespace xsec {

using ShardId = uint32_t;

// Fixed shard count. A power of two so name/principal hashes fold evenly;
// 16 keeps the per-shard stamp arrays small enough to sit in two cache lines
// while still splitting a busy namespace ~16 ways.
inline constexpr ShardId kMonitorShardCount = 16;

// Validity domain of stamps read with sharding disabled, or for node ids the
// namespace has never seen (NotFound decisions cache under this domain).
inline constexpr ShardId kAggregateShard = kMonitorShardCount;

// Tag for mutations whose effect is not confined to one shard.
inline constexpr ShardId kAllShards = kMonitorShardCount + 1;

// Tag for store slots that have not (yet) been attached to any node. Until a
// slot is attached its mutations conservatively bump every shard.
inline constexpr ShardId kUnknownShard = kMonitorShardCount + 2;

inline constexpr bool IsConcreteShard(ShardId s) {
  return s < kMonitorShardCount;
}

// FNV-1a, folded into the shard range. Deterministic across runs so bench
// gates and the diff-fuzz oracle see stable shard assignment.
inline ShardId ShardOfName(std::string_view name) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<ShardId>(h & (kMonitorShardCount - 1));
}

// Principal-hash fallback for top-level leaves in flat namespaces: the leaf
// has no subtree of its own, so its validity domain follows its owner.
inline ShardId ShardOfPrincipal(uint32_t principal_id) {
  uint64_t h = principal_id * 0x9E3779B97F4A7C15ull;
  return static_cast<ShardId>((h >> 32) & (kMonitorShardCount - 1));
}

}  // namespace xsec

#endif  // XSEC_SRC_BASE_SHARD_H_
