// Network extensions: protocol implementations and packet filters.
//
// SPIN's signature use case was pushing protocol code into the kernel; this
// example shows it under the xsec model. A protocol developer ships an "rot13"
// protocol implementation; a security team ships a packet filter; both are
// extensions whose installation is governed by the `extend` mode, and every
// packet is mediated: injecting needs write-append on the device, filters run
// in broadcast dispatch, and the protocol implementation is selected by the
// receiving subject's class.
//
// Build & run:  cmake --build build && ./build/examples/packet_filter

#include <cstdio>

#include "src/core/secure_system.h"

using xsec::AccessMode;
using xsec::Acl;
using xsec::AclEntry;
using xsec::AclEntryType;
using xsec::CallContext;
using xsec::ExtensionManifest;
using xsec::StatusOr;
using xsec::Value;

namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

xsec::HandlerFn Rot13Proto() {
  return [](CallContext& ctx) -> StatusOr<Value> {
    auto payload = xsec::ArgBytes(ctx.args, 1);
    if (!payload.ok()) {
      return payload.status();
    }
    std::vector<uint8_t> out = *payload;
    for (uint8_t& c : out) {
      if (c >= 'a' && c <= 'z') {
        c = static_cast<uint8_t>((c - 'a' + 13) % 26 + 'a');
      }
    }
    return Value{out};
  };
}

// Drops any packet whose payload contains the byte sequence "evil".
xsec::HandlerFn NoEvilFilter(uint64_t* dropped) {
  return [dropped](CallContext& ctx) -> StatusOr<Value> {
    auto payload = xsec::ArgBytes(ctx.args, 2);
    if (!payload.ok()) {
      return payload.status();
    }
    std::string text(payload->begin(), payload->end());
    bool pass = text.find("evil") == std::string::npos;
    if (!pass) {
      ++*dropped;
    }
    return Value{pass};
  };
}

}  // namespace

int main() {
  xsec::SecureSystem sys;
  (void)sys.labels().DefineLevels({"untrusted", "trusted"});
  xsec::PrincipalId proto_dev = *sys.CreateUser("proto-dev");
  xsec::PrincipalId sec_team = *sys.CreateUser("sec-team");
  xsec::PrincipalId user = *sys.CreateUser("user");
  xsec::SecurityClass trusted = *sys.labels().MakeClass("trusted", {});
  xsec::Subject proto_dev_s = sys.Login(proto_dev, sys.labels().Bottom());
  xsec::Subject sec_team_s = sys.Login(sec_team, sys.labels().Bottom());
  xsec::Subject user_s = sys.Login(user, sys.labels().Bottom());

  // Publish the rot13 protocol extension point; only proto-dev implements,
  // only sec-team may install filters.
  xsec::NodeId proto_iface = *sys.net().CreateProtocol("rot13", sys.system_principal());
  Acl proto_acl;
  proto_acl.AddEntry(AclEntry{AclEntryType::kAllow, proto_dev,
                              xsec::AccessModeSet(AccessMode::kExtend)});
  proto_acl.AddEntry(AclEntry{AclEntryType::kAllow, sys.everyone(),
                              AccessMode::kExecute | AccessMode::kList});
  (void)sys.name_space().SetAclRef(proto_iface, sys.kernel().acls().Create(std::move(proto_acl)));
  Acl filter_acl;
  filter_acl.AddEntry(AclEntry{AclEntryType::kAllow, sec_team,
                               xsec::AccessModeSet(AccessMode::kExtend)});
  (void)sys.name_space().SetAclRef(sys.net().filter_interface(),
                                   sys.kernel().acls().Create(std::move(filter_acl)));

  // The protocol implementation.
  ExtensionManifest proto_ext;
  proto_ext.name = "rot13-impl";
  proto_ext.exports.push_back({sys.net().ProtocolInterfacePath("rot13"), Rot13Proto()});
  std::printf("proto-dev ships rot13        -> %s\n",
              sys.LoadExtension(proto_ext, proto_dev_s).ok() ? "OK" : "DENIED");

  // An unauthorized party tries to install a filter (could drop or spy on
  // traffic): denied at link time.
  uint64_t rogue_drops = 0;
  ExtensionManifest rogue;
  rogue.name = "rogue-filter";
  rogue.exports.push_back({"/svc/net/filter", NoEvilFilter(&rogue_drops)});
  std::printf("user ships a filter          -> %s\n",
              sys.LoadExtension(rogue, user_s).ok() ? "OK (!!)" : "DENIED (no extend grant)");

  // The security team's filter installs fine.
  uint64_t dropped = 0;
  ExtensionManifest filter_ext;
  filter_ext.name = "no-evil";
  filter_ext.exports.push_back({"/svc/net/filter", NoEvilFilter(&dropped)});
  std::printf("sec-team ships no-evil       -> %s\n",
              sys.LoadExtension(filter_ext, sec_team_s).ok() ? "OK" : "DENIED");

  // Traffic.
  (void)sys.net().CreateDevice(user_s, "eth0");
  for (std::string_view payload : {"hello world", "evil payload", "more data"}) {
    auto delivered = sys.net().Inject(user_s, "eth0", "rot13", Bytes(payload));
    std::printf("inject \"%s\"%*s -> %s\n", std::string(payload).c_str(),
                int(14 - payload.size()), "",
                !delivered.ok()            ? delivered.status().ToString().c_str()
                : *delivered ? "delivered (rot13-processed)"
                                           : "DROPPED by filter");
  }
  std::printf("delivered=%lld, filtered=%llu\n",
              static_cast<long long>(*sys.net().Delivered(user_s, "eth0")),
              static_cast<unsigned long long>(sys.net().packets_filtered()));

  // Devices are protected objects: another user cannot read eth0's queues.
  xsec::Subject spy_subject = sys.Login(proto_dev, trusted);
  auto spy = sys.net().Delivered(spy_subject, "eth0");
  std::printf("proto-dev reads user's eth0  -> %s\n", spy.status().ToString().c_str());
  return 0;
}
