#include "src/dac/acl.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/principal/registry.h"

namespace xsec {
namespace {

// A closure containing exactly the given principal ids.
DynamicBitset ClosureOf(std::initializer_list<uint32_t> ids) {
  DynamicBitset c(16);
  for (uint32_t id : ids) {
    c.Set(id);
  }
  return c;
}

constexpr PrincipalId kAlice{1};
constexpr PrincipalId kBob{2};
constexpr PrincipalId kStaff{10};

TEST(AclTest, EmptyAclDeniesEverything) {
  Acl acl;
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kRead), AclVerdict::kNoMatchingGrant);
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessModeSet::None()), AclVerdict::kGranted);
}

TEST(AclTest, DirectUserGrant) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kAlice, AccessMode::kRead | AccessMode::kWrite});
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kRead), AclVerdict::kGranted);
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kExecute),
            AclVerdict::kNoMatchingGrant);
  EXPECT_EQ(acl.Evaluate(ClosureOf({2}), AccessMode::kRead), AclVerdict::kNoMatchingGrant);
}

TEST(AclTest, GroupGrantViaClosure) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kStaff, AccessModeSet(AccessMode::kRead)});
  // Alice's closure includes the staff group.
  EXPECT_EQ(acl.Evaluate(ClosureOf({1, 10}), AccessMode::kRead), AclVerdict::kGranted);
  // Bob is not in staff.
  EXPECT_EQ(acl.Evaluate(ClosureOf({2}), AccessMode::kRead), AclVerdict::kNoMatchingGrant);
}

TEST(AclTest, DenyOverridesAllow) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kStaff, AccessModeSet(AccessMode::kRead)});
  acl.AddEntry({AclEntryType::kDeny, kAlice, AccessModeSet(AccessMode::kRead)});
  EXPECT_EQ(acl.Evaluate(ClosureOf({1, 10}), AccessMode::kRead),
            AclVerdict::kDeniedByEntry);
  // Other staff members unaffected.
  EXPECT_EQ(acl.Evaluate(ClosureOf({2, 10}), AccessMode::kRead), AclVerdict::kGranted);
}

TEST(AclTest, DenyOnlyBlocksItsModes) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kAlice, AccessMode::kRead | AccessMode::kWrite});
  acl.AddEntry({AclEntryType::kDeny, kAlice, AccessModeSet(AccessMode::kWrite)});
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kRead), AclVerdict::kGranted);
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kWrite), AclVerdict::kDeniedByEntry);
  // A combined request fails if any requested mode is denied.
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kRead | AccessMode::kWrite),
            AclVerdict::kDeniedByEntry);
}

TEST(AclTest, GrantsAccumulateAcrossEntries) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kAlice, AccessModeSet(AccessMode::kRead)});
  acl.AddEntry({AclEntryType::kAllow, kStaff, AccessModeSet(AccessMode::kWrite)});
  EXPECT_EQ(acl.Evaluate(ClosureOf({1, 10}), AccessMode::kRead | AccessMode::kWrite),
            AclVerdict::kGranted);
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kRead | AccessMode::kWrite),
            AclVerdict::kNoMatchingGrant);
}

TEST(AclTest, DuplicateEntriesMerge) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kAlice, AccessModeSet(AccessMode::kRead)});
  acl.AddEntry({AclEntryType::kAllow, kAlice, AccessModeSet(AccessMode::kWrite)});
  EXPECT_EQ(acl.entries().size(), 1u);
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kRead | AccessMode::kWrite),
            AclVerdict::kGranted);
}

TEST(AclTest, EffectiveModes) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kStaff,
                AccessMode::kRead | AccessMode::kWrite | AccessMode::kExecute});
  acl.AddEntry({AclEntryType::kDeny, kAlice, AccessModeSet(AccessMode::kWrite)});
  AccessModeSet effective = acl.EffectiveModes(ClosureOf({1, 10}));
  EXPECT_TRUE(effective.Contains(AccessMode::kRead));
  EXPECT_TRUE(effective.Contains(AccessMode::kExecute));
  EXPECT_FALSE(effective.Contains(AccessMode::kWrite));
}

TEST(AclTest, RemoveEntriesFor) {
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kAlice, AccessModeSet(AccessMode::kRead)});
  acl.AddEntry({AclEntryType::kDeny, kAlice, AccessModeSet(AccessMode::kWrite)});
  acl.AddEntry({AclEntryType::kAllow, kBob, AccessModeSet(AccessMode::kRead)});
  EXPECT_EQ(acl.RemoveEntriesFor(kAlice), 2u);
  EXPECT_EQ(acl.entries().size(), 1u);
  EXPECT_EQ(acl.Evaluate(ClosureOf({1}), AccessMode::kRead), AclVerdict::kNoMatchingGrant);
}

// Property: evaluation is independent of entry order (deny-overrides makes
// the ACL a set, not a sequence).
class AclOrderIndependenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AclOrderIndependenceTest, ShuffledAclsAgree) {
  Rng rng(GetParam());
  std::vector<AclEntry> entries;
  size_t n = 1 + rng.NextBelow(12);
  for (size_t i = 0; i < n; ++i) {
    AclEntry e;
    e.type = rng.NextBool(1, 3) ? AclEntryType::kDeny : AclEntryType::kAllow;
    e.who = PrincipalId{static_cast<uint32_t>(rng.NextBelow(6))};
    e.modes = AccessModeSet(static_cast<uint32_t>(rng.NextBelow(256)));
    entries.push_back(e);
  }
  Acl original;
  for (const AclEntry& e : entries) {
    original.AddEntry(e);
  }
  // Fisher-Yates shuffle.
  for (size_t i = entries.size(); i > 1; --i) {
    std::swap(entries[i - 1], entries[rng.NextBelow(i)]);
  }
  Acl shuffled;
  for (const AclEntry& e : entries) {
    shuffled.AddEntry(e);
  }
  for (uint32_t closure_bits = 0; closure_bits < 64; ++closure_bits) {
    DynamicBitset closure(6);
    for (uint32_t b = 0; b < 6; ++b) {
      if (closure_bits & (1u << b)) {
        closure.Set(b);
      }
    }
    for (int m = 0; m < kAccessModeCount; ++m) {
      AccessModeSet request(static_cast<AccessMode>(1u << m));
      EXPECT_EQ(original.Evaluate(closure, request), shuffled.Evaluate(closure, request));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AclOrderIndependenceTest, ::testing::Range(0, 16));

// Property: Evaluate(closure, m) == Granted iff m ∈ EffectiveModes(closure).
class AclConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(AclConsistencyTest, EvaluateMatchesEffectiveModes) {
  Rng rng(GetParam() + 1000);
  Acl acl;
  size_t n = rng.NextBelow(10);
  for (size_t i = 0; i < n; ++i) {
    acl.AddEntry({rng.NextBool(1, 3) ? AclEntryType::kDeny : AclEntryType::kAllow,
                  PrincipalId{static_cast<uint32_t>(rng.NextBelow(5))},
                  AccessModeSet(static_cast<uint32_t>(rng.NextBelow(256)))});
  }
  DynamicBitset closure(5);
  for (uint32_t b = 0; b < 5; ++b) {
    if (rng.NextBool(1, 2)) {
      closure.Set(b);
    }
  }
  AccessModeSet effective = acl.EffectiveModes(closure);
  for (int m = 0; m < kAccessModeCount; ++m) {
    AccessMode mode = static_cast<AccessMode>(1u << m);
    bool granted = acl.Evaluate(closure, mode) == AclVerdict::kGranted;
    EXPECT_EQ(granted, effective.Contains(mode)) << AccessModeName(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AclConsistencyTest, ::testing::Range(0, 16));

TEST(AclStoreTest, CreateGetReplace) {
  AclStore store;
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, kAlice, AccessModeSet(AccessMode::kRead)});
  AclStore::AclRef ref = store.Create(std::move(acl));
  ASSERT_NE(store.Get(ref), nullptr);
  EXPECT_EQ(store.Get(ref)->entries().size(), 1u);
  EXPECT_EQ(store.Get(999), nullptr);

  uint64_t g0 = store.GenerationOf(ref);
  Acl replacement;
  ASSERT_TRUE(store.Replace(ref, std::move(replacement)).ok());
  EXPECT_GT(store.GenerationOf(ref), g0);
  EXPECT_TRUE(store.Get(ref)->empty());
  EXPECT_EQ(store.Replace(999, Acl()).code(), StatusCode::kNotFound);
}

TEST(AclStoreTest, InPlaceEditsBumpGenerations) {
  AclStore store;
  AclStore::AclRef ref = store.Create(Acl());
  uint64_t s0 = store.store_generation();
  ASSERT_TRUE(
      store.AddEntry(ref, {AclEntryType::kAllow, kBob, AccessModeSet(AccessMode::kRead)}).ok());
  EXPECT_GT(store.store_generation(), s0);
  uint64_t s1 = store.store_generation();
  ASSERT_TRUE(store.RemoveEntriesFor(ref, kBob).ok());
  EXPECT_GT(store.store_generation(), s1);
  EXPECT_TRUE(store.Get(ref)->empty());
}

}  // namespace
}  // namespace xsec
