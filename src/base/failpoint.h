// Fault-injection failpoints (MODEL.md §12).
//
// A failpoint is a named hook compiled into production code paths that can
// be armed at runtime to inject a failure: an error return, a latency
// spike, or both, optionally gated to fire only from the N-th hit onward
// and for a bounded number of hits. Disarmed failpoints cost one relaxed
// atomic load on the hot path (plus the function-local-static guard), which
// experiment F13 measures at ~1 ns — cheap enough to leave in release
// builds, which is the point: the exact binary that ships is the one whose
// failure paths the fault sweep exercises.
//
// Usage in a Status-returning (or StatusOr-returning) function:
//
//   Status Sink::Write(const AuditRecord& record) {
//     XSEC_FAILPOINT("audit.sink.write");   // may return an injected error
//     ...
//   }
//
// In a void or bool context, use the expression form:
//
//   if (XSEC_FAILPOINT_FIRED("audit.rotate.rename")) { /* simulate EIO */ }
//
// Arming is programmatic (`FailpointRegistry::Instance().Arm(name, spec)`)
// or mediated through `FaultService` (`/svc/faults/arm`, `tools/xsec_stats
// --fail name=spec`), where it is an audited `administrate` action on the
// `/sys/faults/<name>` node.
//
// Spec grammar (comma-separated clauses, e.g. "error=internal,nth=3,times=2"):
//   off            disarm
//   error[=code]   return an error (default kInternal; code names:
//                  internal, invalid-argument, not-found, already-exists,
//                  permission-denied, failed-precondition,
//                  resource-exhausted, unimplemented, deadline-exceeded,
//                  cancelled)
//   sleep=D        sleep for D before continuing (suffix ns/us/ms/s;
//                  bare numbers are milliseconds); combines with error
//   nth=N          pass through the first N-1 hits, start firing on hit N
//   times=M        fire at most M times, then pass through (default: forever)
//
// Thread safety: `armed()` is a relaxed atomic load; everything else takes
// the failpoint's mutex. Arm/disarm may race freely with evaluation — a
// concurrent hit sees either the old or the new spec, never a torn one.

#ifndef XSEC_SRC_BASE_FAILPOINT_H_
#define XSEC_SRC_BASE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace xsec {

// Parsed form of a failpoint spec string (grammar above).
struct FailpointSpec {
  bool inject_error = false;
  StatusCode code = StatusCode::kInternal;
  uint64_t sleep_ns = 0;
  uint64_t skip = 0;     // hits to pass through before the first fire (nth=N → N-1)
  int64_t times = -1;    // fires remaining; -1 = unlimited

  // Parses the grammar above. "off" parses to a spec with no effect
  // (inject_error=false, sleep_ns=0); Arm treats it as disarm.
  static StatusOr<FailpointSpec> Parse(std::string_view text);

  bool active() const { return inject_error || sleep_ns != 0; }
  std::string ToString() const;
};

// One named injection site. Created on first use by the registry and never
// destroyed (the registry leaks its map at exit by design: failpoints are
// referenced from function-local statics in arbitrary code).
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  // Hot-path guard: true when a spec is armed. Relaxed is sufficient — the
  // spec itself is read under the mutex in Evaluate, and a hit that misses
  // a just-armed spec is indistinguishable from one that ran slightly
  // earlier.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Slow path, called only when armed(): applies nth/times gating, sleeps
  // if the spec says so, and returns the injected error (or OK for a
  // sleep-only spec / a gated-out hit). The sleep happens outside the
  // mutex so a long injected latency does not block arm/disarm.
  Status Evaluate();

  void Arm(FailpointSpec spec);
  void Disarm();

  // Lifetime counters (survive re-arming). `hits` counts Evaluate calls,
  // `fires` counts injected errors.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

  // Human-readable state: "off" or the spec plus hit/fire counters.
  std::string Describe() const;

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};
  mutable std::mutex mu_;
  FailpointSpec spec_;       // guarded by mu_
  uint64_t passed_ = 0;      // hits since arming, for nth gating; guarded by mu_
};

// Process-wide name → failpoint map. GetOrCreate is what the XSEC_FAILPOINT
// macro calls once per site (cached in a function-local static); Arm/Disarm
// are the control plane.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  // Returns the failpoint named `name`, creating it (disarmed) on first
  // use. The pointer is stable for the life of the process.
  Failpoint* GetOrCreate(std::string_view name);

  // Returns the failpoint or nullptr if no site nor Arm call has named it.
  Failpoint* Find(std::string_view name) const;

  // Parses `spec` and arms (or, for "off", disarms) the named failpoint,
  // creating it if needed — arming may precede the first hit.
  Status Arm(std::string_view name, std::string_view spec);

  // Disarms every failpoint (test teardown; counters are preserved).
  void DisarmAll();

  // Names of all registered failpoints, sorted.
  std::vector<std::string> Names() const;

 private:
  FailpointRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_;
};

}  // namespace xsec

// Statement form: returns the injected Status from the enclosing function
// (works in StatusOr<T> functions via the implicit Status conversion).
#define XSEC_FAILPOINT(name)                                                 \
  do {                                                                       \
    static ::xsec::Failpoint* _xsec_failpoint =                              \
        ::xsec::FailpointRegistry::Instance().GetOrCreate(name);             \
    if (__builtin_expect(_xsec_failpoint->armed(), 0)) {                     \
      ::xsec::Status _xsec_failpoint_status = _xsec_failpoint->Evaluate();   \
      if (!_xsec_failpoint_status.ok()) {                                    \
        return _xsec_failpoint_status;                                       \
      }                                                                      \
    }                                                                        \
  } while (0)

// Expression form for contexts that cannot return a Status: true when the
// failpoint injects an error on this hit (sleep-only specs still sleep but
// yield false).
#define XSEC_FAILPOINT_FIRED(name)                                           \
  ([]() -> bool {                                                            \
    static ::xsec::Failpoint* _xsec_failpoint =                              \
        ::xsec::FailpointRegistry::Instance().GetOrCreate(name);             \
    if (__builtin_expect(!_xsec_failpoint->armed(), 1)) {                    \
      return false;                                                          \
    }                                                                        \
    return !_xsec_failpoint->Evaluate().ok();                                \
  }())

#endif  // XSEC_SRC_BASE_FAILPOINT_H_
