# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/xsec_base_tests[1]_include.cmake")
include("/root/repo/build/tests/xsec_policy_tests[1]_include.cmake")
include("/root/repo/build/tests/xsec_monitor_tests[1]_include.cmake")
include("/root/repo/build/tests/xsec_extsys_tests[1]_include.cmake")
include("/root/repo/build/tests/xsec_services_tests[1]_include.cmake")
include("/root/repo/build/tests/xsec_core_tests[1]_include.cmake")
include("/root/repo/build/tests/xsec_ext_tests[1]_include.cmake")
