#include "src/extsys/supervisor.h"

#include <algorithm>
#include <chrono>

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/monitor/mediation_ring.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {

namespace {

// What counts against the breaker: the extension misbehaving (wedging past
// its budget, crashing internally, being refused downstream), not the caller
// changing its mind (kCancelled) and not policy verdicts (kPermissionDenied,
// kNotFound, ...), which are the monitor doing its job.
bool IsBreakerFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

std::string HealthLeafPath(std::string_view name) {
  return StrFormat("/sys/monitor/health/ext/%s/state", std::string(name).c_str());
}

}  // namespace

std::string_view ExtHealthName(ExtHealth state) {
  switch (state) {
    case ExtHealth::kHealthy:
      return "healthy";
    case ExtHealth::kQuarantined:
      return "quarantined";
    case ExtHealth::kProbing:
      return "probing";
  }
  return "unknown";
}

std::string_view SystemHealthName(SystemHealth state) {
  switch (state) {
    case SystemHealth::kHealthy:
      return "healthy";
    case SystemHealth::kDegraded:
      return "degraded";
    case SystemHealth::kLockdown:
      return "lockdown";
  }
  return "unknown";
}

ExtensionSupervisor::ExtensionSupervisor(ReferenceMonitor* monitor, SupervisorOptions options)
    : monitor_(monitor), options_(options) {}

ExtensionSupervisor::~ExtensionSupervisor() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_shutdown_ = true;
    watchdog_cv_.notify_all();
  }
  if (watchdog_thread_.joinable()) {
    watchdog_thread_.join();
  }
}

void ExtensionSupervisor::Register(std::string_view name, NodeId node,
                                   std::optional<ExtensionBudget> budget) {
  std::string key(name);
  bool fresh = false;
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    auto it = by_name_.find(key);
    if (it == by_name_.end()) {
      auto entry = std::make_unique<Entry>();
      entry->name = key;
      entry->node = node;
      entry->budget = budget.value_or(options_.default_budget);
      // Resolved here, once: the XSEC_FAILPOINT macros cache one name per
      // call site and cannot carry a per-extension name.
      entry->fault = FailpointRegistry::Instance().GetOrCreate(
          StrFormat("ext.invoke.%s", key.c_str()));
      it = by_name_.emplace(key, std::move(entry)).first;
      fresh = true;
    } else {
      std::lock_guard<std::mutex> entry_lock(it->second->mu);
      // Re-registration (an extension reloaded after an unload): the node
      // moves, history stays, and an explicit budget replaces the old one.
      it->second->node = node;
      if (budget.has_value()) {
        it->second->budget = *budget;
      }
    }
    by_node_[node.value] = it->second.get();
  }
  if (fresh) {
    std::function<void(const std::string&)> hook;
    {
      std::lock_guard<std::mutex> lock(hook_mu_);
      hook = registration_hook_;
    }
    if (hook) {
      hook(key);
    }
  }
}

void ExtensionSupervisor::SetBudget(std::string_view name, const ExtensionBudget& budget) {
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->budget = budget;
}

bool ExtensionSupervisor::IsRegistered(std::string_view name) const {
  return Find(name) != nullptr;
}

ExtensionSupervisor::Entry* ExtensionSupervisor::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : it->second.get();
}

const std::string* ExtensionSupervisor::NameOfNode(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = by_node_.find(node.value);
  return it == by_node_.end() ? nullptr : &it->second->name;
}

// -- Permit ------------------------------------------------------------------

ExtensionSupervisor::Permit& ExtensionSupervisor::Permit::operator=(Permit&& other) noexcept {
  if (this != &other) {
    if (entry_ != nullptr) {
      supervisor_->RecordOutcome(entry_, OkStatus(), probe_);
    }
    supervisor_ = other.supervisor_;
    entry_ = other.entry_;
    deadline_ns_ = other.deadline_ns_;
    probe_ = other.probe_;
    other.entry_ = nullptr;
    other.supervisor_ = nullptr;
  }
  return *this;
}

ExtensionSupervisor::Permit::~Permit() {
  if (entry_ != nullptr) {
    supervisor_->RecordOutcome(entry_, OkStatus(), probe_);
  }
}

Failpoint* ExtensionSupervisor::Permit::fault() const {
  return entry_ == nullptr ? nullptr : entry_->fault;
}

void ExtensionSupervisor::Permit::Complete(const Status& status) {
  if (entry_ == nullptr) {
    return;
  }
  supervisor_->RecordOutcome(entry_, status, probe_);
  entry_ = nullptr;
  supervisor_ = nullptr;
}

// -- Admission ---------------------------------------------------------------

StatusOr<ExtensionSupervisor::Permit> ExtensionSupervisor::Admit(std::string_view name,
                                                                 uint64_t caller_deadline_ns) {
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return Permit{};  // unsupervised: pass through unobserved
  }
  uint64_t now = MonotonicNowNs();
  bool probe = false;
  uint64_t deadline = caller_deadline_ns;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->state == ExtHealth::kQuarantined) {
      if (!entry->probe_inflight && entry->budget.probe_after_ns != 0 &&
          now - entry->quarantined_at_ns >= entry->budget.probe_after_ns) {
        // Half-open: this admission IS the probe deciding the circuit.
        entry->state = ExtHealth::kProbing;
        entry->probe_inflight = true;
        probe = true;
      } else {
        entry->rejected.fetch_add(1, std::memory_order_relaxed);
        return UnavailableError(
            StrFormat("extension '%s' is quarantined", entry->name.c_str()));
      }
    } else if (entry->state == ExtHealth::kProbing) {
      // One probe at a time; everyone else keeps failing fast until it
      // reports back.
      entry->rejected.fetch_add(1, std::memory_order_relaxed);
      return UnavailableError(StrFormat("extension '%s' is quarantined (probe in flight)",
                                        entry->name.c_str()));
    }
    if (!probe && entry->budget.max_inflight != 0 &&
        entry->inflight >= entry->budget.max_inflight) {
      return ResourceExhaustedError(StrFormat("extension '%s' is at its in-flight budget (%u)",
                                              entry->name.c_str(), entry->budget.max_inflight));
    }
    ++entry->inflight;
    entry->invokes.fetch_add(1, std::memory_order_relaxed);
    if (entry->budget.invoke_budget_ns != 0) {
      uint64_t budget_deadline = now + entry->budget.invoke_budget_ns;
      if (deadline == 0 || budget_deadline < deadline) {
        deadline = budget_deadline;
      }
    }
  }
  Permit permit;
  permit.supervisor_ = this;
  permit.entry_ = entry;
  permit.deadline_ns_ = deadline;
  permit.probe_ = probe;
  return permit;
}

Status ExtensionSupervisor::FastFail(const Subject& subject, NodeId node) const {
  (void)subject;
  Entry* entry;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = by_node_.find(node.value);
    if (it == by_node_.end()) {
      return OkStatus();
    }
    entry = it->second;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->state == ExtHealth::kHealthy) {
    return OkStatus();
  }
  // Quarantined or probing. A due probe passes (the real Admit downstream
  // converts it); everything else fails fast without touching any credit.
  if (entry->state == ExtHealth::kQuarantined && !entry->probe_inflight &&
      entry->budget.probe_after_ns != 0 &&
      MonotonicNowNs() - entry->quarantined_at_ns >= entry->budget.probe_after_ns) {
    return OkStatus();
  }
  entry->rejected.fetch_add(1, std::memory_order_relaxed);
  return UnavailableError(
      StrFormat("extension '%s' is quarantined", entry->name.c_str()));
}

bool ExtensionSupervisor::Selectable(std::string_view name) const {
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return true;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  switch (entry->state) {
    case ExtHealth::kHealthy:
      return true;
    case ExtHealth::kProbing:
      return false;  // the in-flight probe decides; others go elsewhere
    case ExtHealth::kQuarantined:
      return !entry->probe_inflight && entry->budget.probe_after_ns != 0 &&
             MonotonicNowNs() - entry->quarantined_at_ns >= entry->budget.probe_after_ns;
  }
  return true;
}

// -- Breaker -----------------------------------------------------------------

void ExtensionSupervisor::RecordOutcome(Entry* entry, const Status& status, bool probe) {
  bool tripped = false;
  bool released = false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->inflight > 0) {
      --entry->inflight;
    }
    if (probe) {
      entry->probe_inflight = false;
    }
    if (status.ok() || !IsBreakerFailure(status.code())) {
      entry->consecutive_failures = 0;
      if (!status.ok()) {
        entry->failures.fetch_add(1, std::memory_order_relaxed);
      }
      if (probe && entry->state == ExtHealth::kProbing) {
        entry->state = ExtHealth::kHealthy;
        entry->releases.fetch_add(1, std::memory_order_relaxed);
        quarantined_count_.fetch_sub(1, std::memory_order_relaxed);
        released = true;
      }
    } else {
      entry->failures.fetch_add(1, std::memory_order_relaxed);
      if (status.code() == StatusCode::kDeadlineExceeded) {
        entry->timeouts.fetch_add(1, std::memory_order_relaxed);
      }
      if (probe && entry->state == ExtHealth::kProbing) {
        // Probe failed: back to quarantine, dwell restarts. Still the same
        // quarantine episode — no new trip is counted or audited.
        entry->state = ExtHealth::kQuarantined;
        entry->quarantined_at_ns = MonotonicNowNs();
      } else if (entry->state == ExtHealth::kHealthy) {
        ++entry->consecutive_failures;
        if (entry->budget.trip_after != 0 &&
            entry->consecutive_failures >= entry->budget.trip_after) {
          entry->state = ExtHealth::kQuarantined;
          entry->quarantined_at_ns = MonotonicNowNs();
          entry->consecutive_failures = 0;
          entry->probe_inflight = false;
          entry->trips.fetch_add(1, std::memory_order_relaxed);
          quarantined_count_.fetch_add(1, std::memory_order_relaxed);
          tripped = true;
        }
      }
    }
  }
  if (tripped) {
    AuditTransition(entry, /*quarantined=*/true,
                    StrFormat("breaker tripped after consecutive failures (last: %s)",
                              status.ToString().c_str()));
    RecomputeSystemHealth("breaker trip");
  }
  if (released) {
    AuditTransition(entry, /*quarantined=*/false, "half-open probe succeeded");
    RecomputeSystemHealth("probe recovery");
  }
}

// -- Operator actions --------------------------------------------------------

Status ExtensionSupervisor::Quarantine(std::string_view name, std::string_view why) {
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return NotFoundError(StrFormat("'%s' is not supervised", std::string(name).c_str()));
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->state == ExtHealth::kQuarantined) {
      return OkStatus();  // idempotent
    }
    if (entry->state == ExtHealth::kHealthy) {
      // kProbing is already counted (quarantine never released).
      quarantined_count_.fetch_add(1, std::memory_order_relaxed);
    }
    entry->state = ExtHealth::kQuarantined;
    entry->quarantined_at_ns = MonotonicNowNs();
    entry->consecutive_failures = 0;
    entry->trips.fetch_add(1, std::memory_order_relaxed);
  }
  AuditTransition(entry, /*quarantined=*/true, std::string(why));
  RecomputeSystemHealth("operator quarantine");
  return OkStatus();
}

Status ExtensionSupervisor::Release(std::string_view name, std::string_view why) {
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return NotFoundError(StrFormat("'%s' is not supervised", std::string(name).c_str()));
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->state == ExtHealth::kHealthy) {
      return FailedPreconditionError(
          StrFormat("extension '%s' is not quarantined", entry->name.c_str()));
    }
    entry->state = ExtHealth::kHealthy;
    entry->consecutive_failures = 0;
    entry->releases.fetch_add(1, std::memory_order_relaxed);
    quarantined_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  AuditTransition(entry, /*quarantined=*/false, std::string(why));
  RecomputeSystemHealth("mediated release");
  return OkStatus();
}

void ExtensionSupervisor::ArmLockdown(bool on, std::string_view why) {
  operator_lockdown_.store(on, std::memory_order_relaxed);
  RecomputeSystemHealth(why);
}

// -- Audit plumbing ----------------------------------------------------------

void ExtensionSupervisor::AuditTransition(const Entry* entry, bool quarantined,
                                          std::string detail) {
  AuditLog& audit = monitor_->audit();
  if (!audit.WouldRetain(/*allowed=*/!quarantined)) {
    audit.Count(!quarantined);
    return;
  }
  AuditRecord record;
  record.principal = options_.audit_principal;
  record.node = entry->node;
  record.path = HealthLeafPath(entry->name);
  record.modes = AccessModeSet(AccessMode::kExecute);
  record.allowed = !quarantined;
  record.reason = quarantined ? DenyReason::kQuarantined : DenyReason::kNone;
  record.detail = StrFormat("supervision: '%s' -> %s: %s", entry->name.c_str(),
                            quarantined ? "quarantined" : "healthy", detail.c_str());
  audit.Record(std::move(record));
}

void ExtensionSupervisor::AuditSystemTransition(SystemHealth from, SystemHealth to,
                                                std::string detail) {
  AuditLog& audit = monitor_->audit();
  bool allowed = to == SystemHealth::kHealthy;
  if (!audit.WouldRetain(allowed)) {
    audit.Count(allowed);
    return;
  }
  AuditRecord record;
  record.principal = options_.audit_principal;
  record.path = "/sys/monitor/health/state";
  record.modes = AccessModeSet(AccessMode::kExtend);
  record.allowed = allowed;
  record.reason = allowed ? DenyReason::kNone : DenyReason::kQuarantined;
  record.detail = StrFormat("supervision: monitor health %s -> %s: %s",
                            std::string(SystemHealthName(from)).c_str(),
                            std::string(SystemHealthName(to)).c_str(), detail.c_str());
  audit.Record(std::move(record));
}

void ExtensionSupervisor::RecomputeSystemHealth(std::string_view why) {
  std::lock_guard<std::mutex> lock(health_mu_);
  size_t quarantined = quarantined_count_.load(std::memory_order_relaxed);
  size_t stuck = stuck_shards_.load(std::memory_order_relaxed);
  bool cascade = options_.lockdown_after != 0 && quarantined >= options_.lockdown_after;
  bool lockdown = operator_lockdown_.load(std::memory_order_relaxed) || cascade;
  SystemHealth next = SystemHealth::kHealthy;
  if (lockdown) {
    next = SystemHealth::kLockdown;
  } else if ((options_.degraded_after != 0 && quarantined >= options_.degraded_after) ||
             stuck > 0) {
    next = SystemHealth::kDegraded;
  }
  SystemHealth prev = system_health_.exchange(next, std::memory_order_relaxed);
  // The monitor enforces; the supervisor decides. Set unconditionally so the
  // flag can never drift from the computed state.
  monitor_->set_lockdown(lockdown);
  if (prev != next) {
    AuditSystemTransition(prev, next, std::string(why));
  }
}

// -- Telemetry ---------------------------------------------------------------

ExtensionSupervisor::ExtSnapshot ExtensionSupervisor::SnapshotEntry(const Entry& entry) const {
  ExtSnapshot snap;
  snap.name = entry.name;
  snap.invokes = entry.invokes.load(std::memory_order_relaxed);
  snap.failures = entry.failures.load(std::memory_order_relaxed);
  snap.timeouts = entry.timeouts.load(std::memory_order_relaxed);
  snap.trips = entry.trips.load(std::memory_order_relaxed);
  snap.releases = entry.releases.load(std::memory_order_relaxed);
  snap.rejected = entry.rejected.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(entry.mu);
  snap.node = entry.node;
  snap.state = entry.state;
  snap.inflight = entry.inflight;
  return snap;
}

std::optional<ExtensionSupervisor::ExtSnapshot> ExtensionSupervisor::Snapshot(
    std::string_view name) const {
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return std::nullopt;
  }
  return SnapshotEntry(*entry);
}

std::vector<ExtensionSupervisor::ExtSnapshot> ExtensionSupervisor::SnapshotAll() const {
  std::vector<const Entry*> entries;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    entries.reserve(by_name_.size());
    for (const auto& [name, entry] : by_name_) {
      entries.push_back(entry.get());
    }
  }
  std::vector<ExtSnapshot> out;
  out.reserve(entries.size());
  for (const Entry* entry : entries) {
    out.push_back(SnapshotEntry(*entry));
  }
  std::sort(out.begin(), out.end(),
            [](const ExtSnapshot& a, const ExtSnapshot& b) { return a.name < b.name; });
  return out;
}

void ExtensionSupervisor::SetRegistrationHook(std::function<void(const std::string&)> hook) {
  std::vector<std::string> existing;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    existing.reserve(by_name_.size());
    for (const auto& [name, entry] : by_name_) {
      existing.push_back(name);
    }
  }
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    registration_hook_ = hook;
  }
  if (hook) {
    std::sort(existing.begin(), existing.end());
    for (const std::string& name : existing) {
      hook(name);
    }
  }
}

// -- Watchdog ----------------------------------------------------------------

void ExtensionSupervisor::WatchRing(MediationRing* ring) {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  watched_rings_.push_back(ring);
  if (!watchdog_thread_.joinable()) {
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
}

void ExtensionSupervisor::RunWatchdogOnce() {
  std::vector<MediationRing*> rings;
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    rings = watched_rings_;
  }
  uint64_t now = MonotonicNowNs();
  size_t stuck = 0;
  for (MediationRing* ring : rings) {
    for (size_t s = 0; s < ring->shard_count(); ++s) {
      MediationRing::ShardHealth health = ring->shard_health(s);
      // Stuck means ONE batch in flight past the bound: busy is true only
      // between a batch's start and its completion post, and the heartbeat
      // is re-stamped at every boundary — so a slow-but-progressing worker
      // (many batches, each under the bound) never reads as stuck. That is
      // the heartbeat-interval contract WatchdogTest pins.
      if (health.busy && now > health.heartbeat_ns &&
          now - health.heartbeat_ns > options_.stuck_after_ns) {
        ++stuck;
      }
    }
  }
  stuck_shards_.store(stuck, std::memory_order_relaxed);
  RecomputeSystemHealth("ring watchdog");
}

void ExtensionSupervisor::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_shutdown_) {
    watchdog_cv_.wait_for(lock, std::chrono::nanoseconds(options_.watchdog_interval_ns));
    if (watchdog_shutdown_) {
      return;
    }
    lock.unlock();
    RunWatchdogOnce();
    lock.lock();
  }
}

}  // namespace xsec
