// Policy administration: the administrate mode, negative entries, ownership,
// delegation, and label management (paper §2.1's administrate access mode
// plus the mandatory rules of §2.2).
//
// A project lead owns a directory, delegates administration to a deputy via
// an `administrate` grant, carves an individual out of a group grant with a
// negative entry, and relabels a subtree — while the monitor blocks every
// step the policy does not authorize.
//
// Build & run:  cmake --build build && ./build/examples/policy_admin

#include <cstdio>

#include "src/core/secure_system.h"

using xsec::AccessMode;
using xsec::AccessModeSet;
using xsec::Acl;
using xsec::AclEntry;
using xsec::AclEntryType;

namespace {

void Show(const char* what, const xsec::Status& status) {
  std::printf("  %-46s -> %s\n", what, status.ok() ? "OK" : status.ToString().c_str());
}

void ShowDecision(const char* what, const xsec::Decision& decision) {
  std::printf("  %-46s -> %s%s%s\n", what, decision.allowed ? "ALLOW" : "DENY",
              decision.allowed ? "" : " / ", decision.allowed ? "" : decision.detail.c_str());
}

}  // namespace

int main() {
  xsec::SecureSystem sys;
  (void)sys.labels().DefineLevels({"public", "internal", "secret"});

  xsec::PrincipalId lead = *sys.CreateUser("lead");
  xsec::PrincipalId deputy = *sys.CreateUser("deputy");
  xsec::PrincipalId intern = *sys.CreateUser("intern");
  xsec::PrincipalId contractor = *sys.CreateUser("contractor");
  xsec::PrincipalId team = *sys.CreateGroup("team");
  (void)sys.principals().AddMember(team, deputy);
  (void)sys.principals().AddMember(team, intern);
  (void)sys.principals().AddMember(team, contractor);

  xsec::SecurityClass internal = *sys.labels().MakeClass("internal", {});
  xsec::Subject lead_s = sys.Login(lead, internal);
  xsec::Subject deputy_s = sys.Login(deputy, internal);
  xsec::Subject intern_s = sys.Login(intern, internal);
  xsec::Subject contractor_s = sys.Login(contractor, internal);

  // The lead creates and therefore owns the project directory (the owner
  // bootstrap rule: owners always hold administrate).
  xsec::NodeId project =
      *sys.name_space().BindPath("/fs/project", xsec::NodeKind::kDirectory, lead);

  std::printf("1. ownership bootstraps administration\n");
  Acl base;
  base.AddEntry(AclEntry{AclEntryType::kAllow, team,
                         AccessMode::kRead | AccessMode::kList | AccessMode::kWrite});
  Show("lead installs the team ACL", sys.monitor().SetNodeAcl(lead_s, project, base));
  Show("intern tries to replace the ACL",
       sys.monitor().SetNodeAcl(intern_s, project, Acl()));

  std::printf("\n2. labels: classification happens at the subject's own class\n");
  xsec::SecurityClass secret = *sys.labels().MakeClass("secret", {});
  Show("intern relabels the project (no administrate)",
       sys.monitor().SetNodeLabel(intern_s, project, secret));
  Show("lead relabels fresh dir to 'internal' (own class)",
       sys.monitor().SetNodeLabel(lead_s, project, internal));
  Show("lead relabels to 'secret' (above own class)",
       sys.monitor().SetNodeLabel(lead_s, project, secret));
  ShowDecision("a public-class subject lists the project now",
               sys.monitor().Check(sys.Login(intern, sys.labels().Bottom()), project,
                                   AccessMode::kList));

  std::printf("\n3. negative entries carve individuals out of group grants\n");
  ShowDecision("contractor reads /fs/project (group grant)",
               sys.monitor().Check(contractor_s, project, AccessMode::kRead));
  Show("lead adds 'deny contractor read|write'",
       sys.monitor().AddAclEntry(
           lead_s, project,
           AclEntry{AclEntryType::kDeny, contractor, AccessMode::kRead | AccessMode::kWrite}));
  ShowDecision("contractor reads /fs/project again",
               sys.monitor().Check(contractor_s, project, AccessMode::kRead));
  ShowDecision("deputy is unaffected",
               sys.monitor().Check(deputy_s, project, AccessMode::kRead));
  Show("lead forgives: removes the contractor's entries",
       sys.monitor().RemoveAclEntriesFor(lead_s, project, contractor));
  ShowDecision("contractor reads /fs/project once more",
               sys.monitor().Check(contractor_s, project, AccessMode::kRead));

  std::printf("\n4. delegation via the administrate mode\n");
  Show("deputy edits the ACL (no administrate yet)",
       sys.monitor().AddAclEntry(deputy_s, project,
                                 AclEntry{AclEntryType::kAllow, deputy,
                                          AccessModeSet(AccessMode::kDelete)}));
  Show("lead grants deputy administrate",
       sys.monitor().AddAclEntry(lead_s, project,
                                 AclEntry{AclEntryType::kAllow, deputy,
                                          AccessModeSet(AccessMode::kAdministrate)}));
  Show("deputy edits the ACL (delegated)",
       sys.monitor().AddAclEntry(deputy_s, project,
                                 AclEntry{AclEntryType::kAllow, deputy,
                                          AccessModeSet(AccessMode::kDelete)}));

  std::printf("\n5. ownership transfer\n");
  Show("lead hands the directory to the deputy",
       sys.monitor().SetOwner(lead_s, project, deputy));
  std::printf("  new owner: %s\n",
              sys.principals().Get(sys.name_space().Get(project)->owner)->name.c_str());

  std::printf("\n6. only the security officer may reclassify beyond its class\n");
  sys.monitor().set_security_officer(lead);
  Show("lead (now security officer) relabels to 'secret'",
       sys.monitor().SetNodeLabel(lead_s, project, secret));
  ShowDecision("deputy (internal) reads the secret project",
               sys.monitor().Check(deputy_s, project, AccessMode::kRead));

  std::printf("\naudit (denials):\n");
  for (const auto& record : sys.monitor().audit().records()) {
    std::printf("  %s\n", record.ToString().c_str());
  }
  return 0;
}
