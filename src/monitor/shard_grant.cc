#include "src/monitor/shard_grant.h"

namespace xsec {

void ShardGrantTable::Grant(PrincipalId grantee, std::string_view grantee_name, NodeId node,
                            ShardId shard, bool one_shot) {
  if (!IsConcreteShard(shard)) {
    return;
  }
  Slice& slice = slices_[shard];
  std::lock_guard<std::mutex> lock(slice.mu);
  slice.names.Intern(grantee_name);
  slice.grants[Key(grantee, node)] = one_shot ? kOneShot : 0;
}

void ShardGrantTable::Revoke(PrincipalId grantee, NodeId node, ShardId shard) {
  if (!IsConcreteShard(shard)) {
    return;
  }
  Slice& slice = slices_[shard];
  std::lock_guard<std::mutex> lock(slice.mu);
  slice.grants.erase(Key(grantee, node));
}

bool ShardGrantTable::Admit(PrincipalId grantee, NodeId node, ShardId shard) {
  if (!IsConcreteShard(shard)) {
    return true;
  }
  Slice& slice = slices_[shard];
  bool consumed_transfer = false;
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.grants.find(Key(grantee, node));
    if (it == slice.grants.end()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if ((it->second & kOneShot) != 0) {
      slice.grants.erase(it);
      consumed_transfer = true;
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (consumed_transfer) {
    transfers_consumed_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

size_t ShardGrantTable::grant_count() const {
  size_t total = 0;
  for (const Slice& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice.mu);
    total += slice.grants.size();
  }
  return total;
}

size_t ShardGrantTable::interned_names() const {
  size_t total = 0;
  for (const Slice& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice.mu);
    total += slice.names.size();
  }
  return total;
}

size_t ShardGrantTable::interned_bytes() const {
  size_t total = 0;
  for (const Slice& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice.mu);
    total += slice.names.bytes_used();
  }
  return total;
}

}  // namespace xsec
