file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_mediation.dir/bench_f1_mediation.cc.o"
  "CMakeFiles/bench_f1_mediation.dir/bench_f1_mediation.cc.o.d"
  "bench_f1_mediation"
  "bench_f1_mediation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_mediation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
