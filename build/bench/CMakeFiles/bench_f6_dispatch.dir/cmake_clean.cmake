file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_dispatch.dir/bench_f6_dispatch.cc.o"
  "CMakeFiles/bench_f6_dispatch.dir/bench_f6_dispatch.cc.o.d"
  "bench_f6_dispatch"
  "bench_f6_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
