// The common interface every protection model implements.

#ifndef XSEC_SRC_BASELINES_MODEL_H_
#define XSEC_SRC_BASELINES_MODEL_H_

#include <string_view>

#include "src/baselines/world.h"
#include "src/dac/access_mode.h"

namespace xsec {

class ProtectionModel {
 public:
  virtual ~ProtectionModel() = default;

  virtual std::string_view name() const = 0;

  // Would this model allow `subject` the single access `mode` on `object`?
  virtual bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
                      const BaselineObject& object, AccessMode mode) const = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_MODEL_H_
