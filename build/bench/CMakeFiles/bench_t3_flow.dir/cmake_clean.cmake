file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_flow.dir/bench_t3_flow.cc.o"
  "CMakeFiles/bench_t3_flow.dir/bench_t3_flow.cc.o.d"
  "bench_t3_flow"
  "bench_t3_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
