file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_acl.dir/bench_f2_acl.cc.o"
  "CMakeFiles/bench_f2_acl.dir/bench_f2_acl.cc.o.d"
  "bench_f2_acl"
  "bench_f2_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
