#include "src/services/stats_service.h"

#include <gtest/gtest.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

TEST(StatsServiceTest, SystemSubjectReadsEveryLeaf) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  auto total = sys.stats().ReadStat(system, "/sys/monitor/checks/total");
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  // The read itself was mediated, so the counter is already live.
  EXPECT_NE(*total, "0");
  auto dump = sys.stats().DumpTree(system);
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->find("/sys/monitor/checks/total "), std::string::npos);
  EXPECT_NE(dump->find("/sys/monitor/denials/by-reason/mac-flow "), std::string::npos);
  EXPECT_NE(dump->find("/sys/monitor/cache/hit_rate "), std::string::npos);
  EXPECT_NE(dump->find("/sys/monitor/latency/p50 "), std::string::npos);
  EXPECT_NE(dump->find("/sys/monitor/audit/retained "), std::string::npos);
}

TEST(StatsServiceTest, LeafValuesTrackTheLiveCounters) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  auto before = sys.stats().ReadStat(system, "/sys/monitor/checks/total");
  ASSERT_TRUE(before.ok());
  uint64_t n = std::stoull(*before);
  // Issue a known number of additional checks and reread.
  for (int i = 0; i < 10; ++i) {
    (void)sys.monitor().Check(system, sys.name_space().root(), AccessMode::kList);
  }
  auto after = sys.stats().ReadStat(system, "/sys/monitor/checks/total");
  ASSERT_TRUE(after.ok());
  // The second ReadStat mediates its own path too, so at least 10 more.
  EXPECT_GE(std::stoull(*after), n + 10);
}

TEST(StatsServiceTest, UnauthorizedReaderIsDeniedAndTheDenialIsCounted) {
  // The acceptance test for "dogfooding" the monitor: stats live in the
  // namespace, so an unprivileged subject's read is denied by the monitor,
  // and that very denial shows up in the denial counters.
  SecureSystem sys;
  auto bob = sys.CreateUser("bob");
  ASSERT_TRUE(bob.ok());
  Subject bob_s = sys.Login(*bob, sys.labels().Bottom());

  auto denied = sys.stats().ReadStat(bob_s, "/sys/monitor/checks/total");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  // The leaf inherits /sys/monitor's system-only own ACL, so bob's read
  // fails as a DAC no-grant denial — visible in the per-reason counter.
  Subject system = sys.SystemSubject();
  auto no_grant =
      sys.stats().ReadStat(system, "/sys/monitor/denials/by-reason/dac-no-grant");
  ASSERT_TRUE(no_grant.ok());
  EXPECT_GE(std::stoull(*no_grant), 1u);
  auto denied_total = sys.stats().ReadStat(system, "/sys/monitor/checks/denied");
  ASSERT_TRUE(denied_total.ok());
  EXPECT_GE(std::stoull(*denied_total), 1u);
}

TEST(StatsServiceTest, DumpTreeSkipsWhatTheSubjectMayNotSee) {
  SecureSystem sys;
  auto bob = sys.CreateUser("bob");
  ASSERT_TRUE(bob.ok());
  Subject bob_s = sys.Login(*bob, sys.labels().Bottom());
  auto dump = sys.stats().DumpTree(bob_s);
  ASSERT_TRUE(dump.ok());
  EXPECT_TRUE(dump->empty());  // bob sees nothing, silently
}

TEST(StatsServiceTest, ReadRejectsPathsOutsideTheMount) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  auto outside = sys.stats().ReadStat(system, "/fs");
  EXPECT_EQ(outside.status().code(), StatusCode::kInvalidArgument);
  auto missing = sys.stats().ReadStat(system, "/sys/monitor/not/a/leaf");
  EXPECT_FALSE(missing.ok());
}

TEST(StatsServiceTest, ProcedureInterfaceMirrorsDirectReads) {
  // Any user may call /svc/stats/* (the /svc default), but the read inside
  // the handler is mediated against the stats tree: it succeeds only for a
  // subject the /sys/monitor ACL covers.
  SecureSystem sys;
  auto auditor = sys.CreateUser("auditor");
  ASSERT_TRUE(auditor.ok());
  NodeId mount = *sys.name_space().Lookup("/sys/monitor");
  ASSERT_TRUE(sys.monitor()
                  .AddAclEntry(sys.SystemSubject(), mount,
                               {AclEntryType::kAllow, *auditor,
                                AccessMode::kRead | AccessMode::kList})
                  .ok());
  Subject auditor_s = sys.Login(*auditor, sys.labels().Bottom());
  auto value = sys.Invoke(auditor_s, "/svc/stats/read",
                          {Value{std::string("/sys/monitor/checks/total")}});
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  ASSERT_TRUE(std::holds_alternative<std::string>(*value));
  EXPECT_FALSE(std::get<std::string>(*value).empty());

  auto dump = sys.Invoke(auditor_s, "/svc/stats/dump", {});
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_NE(std::get<std::string>(*dump).find("/sys/monitor/checks/total "),
            std::string::npos);

  // The same call without the ACL grant: callable, but the inner read is
  // denied by the monitor.
  auto bob = sys.CreateUser("bob");
  ASSERT_TRUE(bob.ok());
  Subject bob_s = sys.Login(*bob, sys.labels().Bottom());
  auto denied = sys.Invoke(bob_s, "/svc/stats/read",
                           {Value{std::string("/sys/monitor/checks/total")}});
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST(StatsServiceTest, HitRateRendersFixedFourDigitsWithDotRadix) {
  // Regression: the leaf used printf %f, whose radix character follows the
  // process locale — a comma-decimal locale broke every parser of this
  // value. It now renders via FormatFixed: exactly four fractional digits,
  // always '.'.
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  for (int i = 0; i < 5; ++i) {
    (void)sys.monitor().Check(system, sys.name_space().root(), AccessMode::kList);
  }
  auto rate = sys.stats().ReadStat(system, "/sys/monitor/cache/hit_rate");
  ASSERT_TRUE(rate.ok()) << rate.status().ToString();
  ASSERT_EQ(rate->size(), 6u) << *rate;  // "0.xxxx" or "1.0000"
  EXPECT_EQ((*rate)[1], '.');
  for (size_t i = 2; i < rate->size(); ++i) {
    EXPECT_TRUE((*rate)[i] >= '0' && (*rate)[i] <= '9') << *rate;
  }
}

TEST(StatsServiceTest, HitRateIsZeroWithNoCacheProbes) {
  MonitorOptions options;
  options.cache_enabled = false;  // no probes ever: the 0/0 case
  SecureSystem sys(options);
  Subject system = sys.SystemSubject();
  auto rate = sys.stats().ReadStat(system, "/sys/monitor/cache/hit_rate");
  ASSERT_TRUE(rate.ok()) << rate.status().ToString();
  EXPECT_EQ(*rate, "0.0000");
}

TEST(StatsServiceTest, WidenedAclMakesTheTreeVisible) {
  // An administrator can grant read access like on any other node; no
  // stats-specific mechanism exists or is needed.
  SecureSystem sys;
  auto auditor = sys.CreateUser("auditor");
  ASSERT_TRUE(auditor.ok());
  NodeId mount = *sys.name_space().Lookup("/sys/monitor");
  ASSERT_TRUE(sys.monitor()
                  .AddAclEntry(sys.SystemSubject(), mount,
                               {AclEntryType::kAllow, *auditor,
                                AccessMode::kRead | AccessMode::kList})
                  .ok());
  Subject auditor_s = sys.Login(*auditor, sys.labels().Bottom());
  auto total = sys.stats().ReadStat(auditor_s, "/sys/monitor/checks/total");
  EXPECT_TRUE(total.ok()) << total.status().ToString();
}

}  // namespace
}  // namespace xsec
