file(REMOVE_RECURSE
  "libxsec_base.a"
)
