file(REMOVE_RECURSE
  "CMakeFiles/xsec_base.dir/bitset.cc.o"
  "CMakeFiles/xsec_base.dir/bitset.cc.o.d"
  "CMakeFiles/xsec_base.dir/rng.cc.o"
  "CMakeFiles/xsec_base.dir/rng.cc.o.d"
  "CMakeFiles/xsec_base.dir/status.cc.o"
  "CMakeFiles/xsec_base.dir/status.cc.o.d"
  "CMakeFiles/xsec_base.dir/strings.cc.o"
  "CMakeFiles/xsec_base.dir/strings.cc.o.d"
  "libxsec_base.a"
  "libxsec_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
