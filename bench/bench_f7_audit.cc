// Experiment F7 — audit overhead (DESIGN.md §5).
//
// Auditing is one of the concerns the paper folds into the central facility
// (§1). The figure measures the per-check cost of each audit policy for both
// allowed and denied accesses:
//
//   Allowed_Off / Allowed_DenialsOnly / Allowed_All
//   Denied_Off  / Denied_DenialsOnly  / Denied_All
//
// Expected shape: kOff and the non-retaining combinations cost only two
// counter bumps; retaining a record adds path reconstruction + record
// storage, so Allowed_All and Denied_{DenialsOnly,All} are the expensive
// cells.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

struct AuditFixture {
  explicit AuditFixture(AuditPolicy policy) {
    MonitorOptions options;
    options.audit_policy = policy;
    options.cache_enabled = true;
    monitor = std::make_unique<ReferenceMonitor>(&ns, &acls, &principals, &labels, options);
    user = *principals.CreateUser("u");
    node = *ns.BindPath("/obj/thing", NodeKind::kObject, PrincipalId{999});
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
    (void)ns.SetAclRef(node, acls.Create(std::move(acl)));
    subject = Subject{user, labels.Bottom(), 1};
  }

  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  std::unique_ptr<ReferenceMonitor> monitor;
  PrincipalId user;
  NodeId node;
  Subject subject;
};

void RunCase(benchmark::State& state, AuditPolicy policy, bool allowed) {
  AuditFixture f(policy);
  AccessModeSet modes(allowed ? AccessMode::kRead : AccessMode::kWrite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.monitor->Check(f.subject, f.node, modes));
  }
}

void BM_Allowed_Off(benchmark::State& state) { RunCase(state, AuditPolicy::kOff, true); }
void BM_Allowed_DenialsOnly(benchmark::State& state) {
  RunCase(state, AuditPolicy::kDenialsOnly, true);
}
void BM_Allowed_All(benchmark::State& state) { RunCase(state, AuditPolicy::kAll, true); }
void BM_Denied_Off(benchmark::State& state) { RunCase(state, AuditPolicy::kOff, false); }
void BM_Denied_DenialsOnly(benchmark::State& state) {
  RunCase(state, AuditPolicy::kDenialsOnly, false);
}
void BM_Denied_All(benchmark::State& state) { RunCase(state, AuditPolicy::kAll, false); }

BENCHMARK(BM_Allowed_Off);
BENCHMARK(BM_Allowed_DenialsOnly);
BENCHMARK(BM_Allowed_All);
BENCHMARK(BM_Denied_Off);
BENCHMARK(BM_Denied_DenialsOnly);
BENCHMARK(BM_Denied_All);

void BM_AuditedPathCheck(benchmark::State& state) {
  // Full-path checks retain longer paths; measures the path-dependent part.
  AuditFixture f(AuditPolicy::kAll);
  // Grant list along the chain so the check succeeds.
  Acl root_acl;
  root_acl.AddEntry({AclEntryType::kAllow, f.user, AccessModeSet(AccessMode::kList)});
  (void)f.ns.SetAclRef(f.ns.root(), f.acls.Create(root_acl));
  Acl dir_acl;
  dir_acl.AddEntry({AclEntryType::kAllow, f.user,
                    AccessMode::kList | AccessMode::kRead});
  (void)f.ns.SetAclRef(*f.ns.Lookup("/obj"), f.acls.Create(dir_acl));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.monitor->CheckPath(f.subject, "/obj/thing", AccessMode::kRead));
  }
}
BENCHMARK(BM_AuditedPathCheck);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
