// Fully featured access control lists (paper §2.1): "several entries
// specifying positive — i.e., who is allowed to access an object — and
// negative access — i.e., who is not allowed to access an object — for both
// individuals and groups."
//
// Evaluation semantics (deny-overrides, order-independent):
//   a requested mode m is granted to a subject S iff
//     (1) some ALLOW entry whose principal is in S's membership closure
//         includes m, and
//     (2) no DENY entry whose principal is in S's membership closure
//         includes m.
//   A request for a mode *set* is granted iff every mode in it is granted.
//
// Deny-overrides makes the result independent of entry order, which the
// property tests verify; it matches the paper's intent that a negative entry
// carves an individual out of a group grant.

#ifndef XSEC_SRC_DAC_ACL_H_
#define XSEC_SRC_DAC_ACL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/bitset.h"
#include "src/base/shard.h"
#include "src/base/status.h"
#include "src/dac/access_mode.h"
#include "src/principal/principal.h"

namespace xsec {

enum class AclEntryType : uint8_t {
  kAllow = 0,
  kDeny = 1,
};

struct AclEntry {
  AclEntryType type = AclEntryType::kAllow;
  PrincipalId who;       // a user or a group
  AccessModeSet modes;

  friend bool operator==(const AclEntry& a, const AclEntry& b) {
    return a.type == b.type && a.who == b.who && a.modes == b.modes;
  }
};

// The outcome of evaluating one mode set against one ACL; the reason feeds
// audit records.
enum class AclVerdict : uint8_t {
  kGranted = 0,
  kDeniedByEntry,    // an explicit negative entry matched
  kNoMatchingGrant,  // no allow entry covered some requested mode
};

// Entry storage is copy-on-write: an Acl holds a shared immutable entry
// list, so copying an Acl — and interning identical ACLs across a
// million-node policy (AclStore) — costs one refcount, not a vector clone.
// Mutators clone the list first if it is shared.
class Acl {
 public:
  using EntryList = std::vector<AclEntry>;

  Acl() = default;
  explicit Acl(std::shared_ptr<const EntryList> entries) : entries_(std::move(entries)) {}

  // Appends an entry. Duplicate (type, who) pairs are merged by OR-ing modes.
  void AddEntry(const AclEntry& entry);

  // Removes all entries for a principal (both polarities). Returns how many
  // entries were removed.
  size_t RemoveEntriesFor(PrincipalId who);

  const EntryList& entries() const {
    static const EntryList kEmpty;
    return entries_ != nullptr ? *entries_ : kEmpty;
  }
  bool empty() const { return entries_ == nullptr || entries_->empty(); }

  // The shared immutable entry list (null when empty); AclStore's intern
  // pool aliases it across identical ACLs.
  const std::shared_ptr<const EntryList>& shared_entries() const { return entries_; }

  // Core evaluation. `closure` is the subject's membership closure (bitset
  // over principal ids; see PrincipalRegistry::MembershipClosure).
  AclVerdict Evaluate(const DynamicBitset& closure, AccessModeSet requested) const;

  // The full set of modes the subject holds under this ACL.
  AccessModeSet EffectiveModes(const DynamicBitset& closure) const;

  // "allow alice read|write; deny interns write" (names resolved by caller).
  std::string ToString() const;

 private:
  // Clone-if-shared; afterwards entries_ is non-null and uniquely owned.
  EntryList* MutableEntries();

  std::shared_ptr<const EntryList> entries_;
};

// Storage for ACLs referenced from name-space nodes. Each stored ACL carries
// a generation stamp; any mutation bumps both the ACL's and the store's
// generation, which invalidates cached decisions.
//
// Thread safety: all methods may be called concurrently; mutators take the
// store lock exclusively. The monitor's check path evaluates in place under
// the shared lock (Evaluate) rather than holding Get()'s pointer across the
// lock release. Get() returns a pointer with a stable address (deque
// storage), but the Acl it points at may be concurrently replaced or edited;
// it is intended for single-threaded setup, tests, and serialization.
// Sharding (docs/MODEL.md §15): each slot carries a monitor-shard tag. A
// slot starts kUnknownShard; the reference monitor calls AttachShard when it
// binds the ref to a node, narrowing the tag to that node's shard. Mutating
// a concretely tagged slot bumps only that shard's generation; unknown-,
// all-shards-, or multiply-attached slots conservatively bump every shard.
// Creating a slot bumps no per-shard generation at all — an unreferenced ref
// cannot be behind any cached decision. The store generation (aggregate
// domain) is still bumped by every create/mutate.
class AclStore {
 public:
  using AclRef = uint32_t;

  // Creates a new ACL, returning its reference. Identical entry lists are
  // interned per shard: the new slot aliases the existing immutable list.
  AclRef Create(Acl acl);
  AclRef Create(Acl acl, ShardId shard);

  // Narrows (or escalates) the slot's shard tag; see class comment.
  void AttachShard(AclRef ref, ShardId shard);
  ShardId ShardOf(AclRef ref) const;

  const Acl* Get(AclRef ref) const;

  // Evaluates the stored ACL against a membership closure without exposing a
  // reference: the whole evaluation happens under the store's shared lock, so
  // it is atomic with respect to Replace/AddEntry/RemoveEntriesFor. A bad ref
  // behaves like an empty ACL (kNoMatchingGrant for any nonempty request).
  AclVerdict Evaluate(AclRef ref, const DynamicBitset& closure, AccessModeSet requested) const;

  // Copies the stored ACL out under the shared lock. False on a bad ref.
  bool CopyAcl(AclRef ref, Acl* out) const;

  // Replaces the ACL at `ref`; bumps generations.
  Status Replace(AclRef ref, Acl acl);

  // In-place entry edits; bump generations.
  Status AddEntry(AclRef ref, const AclEntry& entry);
  Status RemoveEntriesFor(AclRef ref, PrincipalId who);

  uint64_t GenerationOf(AclRef ref) const;
  // Published with release ordering after the mutation it stamps.
  uint64_t store_generation() const { return store_generation_.load(std::memory_order_acquire); }
  // Per-shard ACL generation; bumped only by mutations tagged to the shard
  // (or by conservatively tagged mutations, which bump all of them).
  uint64_t shard_generation(ShardId shard) const {
    return shard_generation_[shard % kMonitorShardCount].load(std::memory_order_acquire);
  }
  size_t size() const;

  // Intern-pool telemetry: how many Creates aliased an existing entry list
  // vs. admitted a new one (bench_f16_shard gates the 1M-principal load on
  // the hit rate staying real).
  uint64_t intern_hits() const { return intern_hits_.load(std::memory_order_relaxed); }
  uint64_t intern_unique() const { return intern_unique_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    Acl acl;
    uint64_t generation = 0;
    ShardId shard = kUnknownShard;
  };

  void BumpLocked(Slot& slot);

  mutable std::shared_mutex mu_;
  std::deque<Slot> acls_;
  std::atomic<uint64_t> store_generation_{0};
  std::array<std::atomic<uint64_t>, kMonitorShardCount> shard_generation_{};

  // Shard-local intern pools: content-hash → shared immutable entry lists.
  // Pool index kMonitorShardCount serves unknown/aggregate-tagged creates.
  std::array<std::unordered_multimap<uint64_t, std::shared_ptr<const Acl::EntryList>>,
             kMonitorShardCount + 1>
      intern_pools_;
  std::atomic<uint64_t> intern_hits_{0};
  std::atomic<uint64_t> intern_unique_{0};
};

}  // namespace xsec

#endif  // XSEC_SRC_DAC_ACL_H_
