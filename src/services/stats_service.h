// Monitor observability through the namespace itself.
//
// The paper's third pillar is a single hierarchical name space in which
// every protected thing is a named, mediated object (§2.3). The reference
// monitor's own operational state is no exception: this service mounts the
// MonitorStats counters, the DecisionCache totals, and the AuditLog gauges
// as read-only file nodes under /sys/monitor/..., and every read of one goes
// back through ReferenceMonitor::Check on the leaf node (the same node-level
// mediation the other services use). Visibility of security telemetry is
// therefore governed by ACLs and labels like everything else — and a denied
// stats read shows up in the very denial counters it was trying to read (the
// model eating its own dogfood).
//
// Default policy: /sys/monitor carries an own ACL granting read|list to the
// system principal only, so telemetry is fail-closed; administrators widen
// it per node with ordinary AddAclEntry calls.
//
// Stats tree layout (docs/MODEL.md §11 is normative):
//
//   /sys/monitor/snapshot                one consistent multi-line rendering
//   /sys/monitor/version                 published snapshot version (counter)
//   /sys/monitor/checks/total            decisions recorded, all outcomes
//   /sys/monitor/checks/allowed          ... that allowed
//   /sys/monitor/checks/denied           ... that denied
//   /sys/monitor/checks/by-mode/<mode>   one per access mode (read, write, ...)
//   /sys/monitor/denials/by-reason/<r>   one per DenyReason (not-found, ...)
//   /sys/monitor/cache/hits|misses|stale|hit_rate
//   /sys/monitor/latency/p50|p90|p99|samples   sampled check latency, ns
//   /sys/monitor/audit/retained|dropped
//   /sys/monitor/rate/checks_per_sec     windowed rate over published epochs
//   /sys/monitor/rate/denials_per_sec
//
// Consistency: the plain counter leaves render live values on read, so two
// separate leaf reads are not mutually consistent. The `snapshot` leaf is
// the sanctioned multi-counter view — one MonitorStats::TakeSnapshot pass
// whose invariants hold even under concurrent checking — and `version`
// identifies which published epoch a snapshot came from. /svc/stats watch
// long-polls for the next version change (see docs/MODEL.md §11).

#ifndef XSEC_SRC_SERVICES_STATS_SERVICE_H_
#define XSEC_SRC_SERVICES_STATS_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "src/extsys/kernel.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {

struct StatsServiceOptions {
  std::string mount_path = "/sys/monitor";
  std::string service_path = "/svc/stats";
  // Publication epoch: the snapshot/rate leaves refresh at most this often,
  // and a blocked watcher re-examines the counters once per interval (the
  // watch path is self-clocking; no background thread is required).
  uint64_t epoch_interval_ns = 20'000'000;  // 20 ms
  // Window the /sys/monitor/rate/* leaves average over.
  uint64_t rate_window_ns = 1'000'000'000;  // 1 s
  // Optionally run a dedicated publisher thread that Ticks every epoch so
  // versions advance even with no readers. Off by default: tests and tools
  // get deterministic, single-threaded behavior unless they opt in.
  bool background_publisher = false;
};

class StatsService {
 public:
  // The kernel must outlive this service.
  explicit StatsService(Kernel* kernel, StatsServiceOptions options = {});
  // Legacy convenience: custom mount/service paths, default intervals.
  StatsService(Kernel* kernel, std::string mount_path,
               std::string service_path = "/svc/stats");
  ~StatsService();

  // Binds the stats tree under mount_path (fail-closed ACL on the mount
  // root) and registers the /svc/stats procedures:
  //   read <path>            -> the node's current value (string)
  //   dump                   -> every readable single-line node, "path value"
  //   watch <since> [ms]     -> blocks until the published snapshot version
  //                             exceeds `since` (pass -1 for "any change
  //                             after this call"), then returns the new
  //                             snapshot text; kDeadlineExceeded on timeout.
  Status Install();

  const std::string& mount_path() const { return options_.mount_path; }
  const std::string& service_path() const { return options_.service_path; }

  // -- Mediated operations ----------------------------------------------------

  // Reads one stats node: Check(subject, node, read) on the leaf, then
  // renders the current value. The check is the real monitor path, so a
  // denial here is itself counted and audited.
  StatusOr<std::string> ReadStat(Subject& subject, std::string_view path);

  // Renders every single-line stats node the subject can read, "path value"
  // per line in path order (the multi-line `snapshot` leaf is excluded).
  // Nodes the subject cannot read are silently skipped — and each skip is a
  // counted denial.
  StatusOr<std::string> DumpTree(Subject& subject);

  // -- Snapshot publication ---------------------------------------------------

  // Captures the counters now and publishes them as a new version if they
  // changed since the last publication (gauges included). Returns the
  // current version either way. Thread-safe; wakes blocked watchers on a
  // version change.
  uint64_t Tick();

  // Current published version (0 until the first Tick).
  uint64_t version() const;

  // Trusted render of the published snapshot (refreshing it first if it is
  // older than one epoch), no mediation — tools, tests.
  std::string RenderSnapshot();

  // Trusted render of every single-line leaf, no mediation (tools, tests).
  std::string RenderAll() const;

  // Blocks until the published version exceeds `since` or `deadline_ns`
  // (absolute, MonotonicNowNs clock; 0 = unbounded) passes. Self-clocking:
  // a blocked caller re-captures the counters once per epoch interval, so
  // changes are observed within one epoch even with no background publisher.
  // Returns the new snapshot text, or kDeadlineExceeded.
  StatusOr<std::string> WaitForUpdate(uint64_t since, uint64_t deadline_ns);

 private:
  // Binds one leaf (relative to the mount) backed by `render`. Leaves with
  // `in_dump` false (multi-line renderings) are skipped by DumpTree and
  // RenderAll.
  Status MountLeaf(const std::string& relative_path, std::function<std::string()> render,
                   bool in_dump = true);

  // Re-publishes only if the published snapshot is older than one epoch.
  void MaybeTick();

  // Renders the published snapshot + gauges. Caller holds pub_mu_.
  std::string RenderSnapshotLocked() const;
  // Windowed rates from the published epoch ring. Caller holds pub_mu_.
  double ChecksPerSecLocked() const;
  double DenialsPerSecLocked() const;

  struct Leaf {
    NodeId node;
    std::function<std::string()> render;
    bool in_dump = true;
  };

  // One published epoch's cumulative counters; rate = windowed delta.
  struct RateEpoch {
    uint64_t t_ns = 0;
    uint64_t checks = 0;
    uint64_t denials = 0;
  };

  Kernel* kernel_;
  StatsServiceOptions options_;
  // Full path -> bound node + value renderer; ordered so dumps are
  // deterministic.
  std::map<std::string, Leaf> values_;
  NodeId snapshot_node_;

  // Publication state. pub_mu_ orders publications and protects everything
  // below; pub_cv_ wakes watchers on a version change.
  mutable std::mutex pub_mu_;
  std::condition_variable pub_cv_;
  uint64_t version_ = 0;
  MonitorStats::Snapshot published_;
  // Gauges captured alongside the snapshot (cache and audit state are owned
  // by other components; these are their values as of `version_`).
  uint64_t pub_cache_hits_ = 0;
  uint64_t pub_cache_misses_ = 0;
  uint64_t pub_cache_stale_ = 0;
  uint64_t pub_audit_retained_ = 0;
  uint64_t pub_audit_dropped_ = 0;
  uint64_t last_tick_ns_ = 0;
  std::deque<RateEpoch> rate_ring_;

  // Optional background publisher.
  bool stop_ = false;  // guarded by pub_mu_
  std::thread publisher_;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_STATS_SERVICE_H_
