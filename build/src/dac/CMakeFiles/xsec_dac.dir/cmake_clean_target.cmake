file(REMOVE_RECURSE
  "libxsec_dac.a"
)
