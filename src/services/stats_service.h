// Monitor observability through the namespace itself.
//
// The paper's third pillar is a single hierarchical name space in which
// every protected thing is a named, mediated object (§2.3). The reference
// monitor's own operational state is no exception: this service mounts the
// MonitorStats counters, the DecisionCache totals, and the AuditLog gauges
// as read-only file nodes under /sys/monitor/..., and every read of one goes
// back through ReferenceMonitor::Check on the leaf node (the same node-level
// mediation the other services use). Visibility of security telemetry is
// therefore governed by ACLs and labels like everything else — and a denied
// stats read shows up in the very denial counters it was trying to read (the
// model eating its own dogfood).
//
// Default policy: /sys/monitor carries an own ACL granting read|list to the
// system principal only, so telemetry is fail-closed; administrators widen
// it per node with ordinary AddAclEntry calls.
//
// Stats tree layout (docs/MODEL.md §11 is normative):
//
//   /sys/monitor/checks/total            decisions recorded, all outcomes
//   /sys/monitor/checks/allowed          ... that allowed
//   /sys/monitor/checks/denied           ... that denied
//   /sys/monitor/checks/by-mode/<mode>   one per access mode (read, write, ...)
//   /sys/monitor/denials/by-reason/<r>   one per DenyReason (not-found, ...)
//   /sys/monitor/cache/hits|misses|stale|hit_rate
//   /sys/monitor/latency/p50|p90|p99|samples   sampled check latency, ns
//   /sys/monitor/audit/retained|dropped
//
// Values render on read from the live counters; two reads in one "snapshot"
// are not mutually consistent (see MODEL.md §11 and ROADMAP open items).

#ifndef XSEC_SRC_SERVICES_STATS_SERVICE_H_
#define XSEC_SRC_SERVICES_STATS_SERVICE_H_

#include <functional>
#include <map>
#include <string>

#include "src/extsys/kernel.h"

namespace xsec {

class StatsService {
 public:
  // The kernel must outlive this service.
  StatsService(Kernel* kernel, std::string mount_path = "/sys/monitor",
               std::string service_path = "/svc/stats");

  // Binds the stats tree under mount_path (fail-closed ACL on the mount
  // root) and registers the /svc/stats procedures:
  //   read <path>   -> the node's current value (string)
  //   dump          -> every readable node, "path value" per line
  Status Install();

  const std::string& mount_path() const { return mount_path_; }
  const std::string& service_path() const { return service_path_; }

  // -- Mediated operations ----------------------------------------------------

  // Reads one stats node: Check(subject, node, read) on the leaf, then
  // renders the current value. The check is the real monitor path, so a
  // denial here is itself counted and audited.
  StatusOr<std::string> ReadStat(Subject& subject, std::string_view path);

  // Renders every stats node the subject can read, "path value" per line in
  // path order. Nodes the subject cannot read are silently skipped — and
  // each skip is a counted denial.
  StatusOr<std::string> DumpTree(Subject& subject);

  // Trusted render of the whole tree, no mediation (tools, tests).
  std::string RenderAll() const;

 private:
  // Binds one leaf (relative to the mount) backed by `render`.
  Status MountLeaf(const std::string& relative_path, std::function<std::string()> render);

  struct Leaf {
    NodeId node;
    std::function<std::string()> render;
  };

  Kernel* kernel_;
  std::string mount_path_;
  std::string service_path_;
  // Full path -> bound node + value renderer; ordered so dumps are
  // deterministic.
  std::map<std::string, Leaf> values_;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_STATS_SERVICE_H_
