// Sharded stamp domains (docs/MODEL.md §15): shard assignment and
// inheritance, per-shard generation bumps, cross-shard cache/compiled
// isolation, the domain field's anti-aliasing role, shard-local interning,
// and the cross-shard grant table + mediation-ring submit gate.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/shard.h"
#include "src/monitor/mediation_ring.h"
#include "src/monitor/reference_monitor.h"
#include "src/monitor/shard_grant.h"
#include "src/principal/intern_pool.h"

namespace xsec {
namespace {

// Two top-level container names guaranteed to hash to different shards.
std::pair<std::string, std::string> TwoShardNames() {
  std::string a = "ta";
  for (int i = 0;; ++i) {
    std::string b = "tb" + std::to_string(i);
    if (ShardOfName(b) != ShardOfName(a)) {
      return {a, b};
    }
  }
}

// ---------------------------------------------------------------------------
// Store layer: shard assignment and per-shard generations.

TEST(ShardStampsTest, TopLevelContainersHashByNameAndChildrenInherit) {
  NameSpace ns;
  auto [name_a, name_b] = TwoShardNames();
  NodeId deep_a = *ns.BindPath("/" + name_a + "/x/y", NodeKind::kFile, PrincipalId{1});
  NodeId deep_b = *ns.BindPath("/" + name_b + "/z", NodeKind::kFile, PrincipalId{1});
  EXPECT_EQ(ns.ShardOf(deep_a), ShardOfName(name_a));
  EXPECT_EQ(ns.ShardOf(deep_b), ShardOfName(name_b));
  EXPECT_NE(ns.ShardOf(deep_a), ns.ShardOf(deep_b));
  // The root belongs to every shard (its metadata governs all inheritance).
  EXPECT_EQ(ns.ShardOf(ns.root()), kAllShards);
  // Unknown ids fall to the aggregate domain, never a concrete shard.
  EXPECT_EQ(ns.ShardOf(NodeId{999999}), kAggregateShard);
}

TEST(ShardStampsTest, TopLevelLeavesHashByOwnerPrincipal) {
  NameSpace ns;
  PrincipalId owner{12345};
  // kFile cannot have children — no subtree to key by name, so it follows
  // its owner (the flat-namespace fallback).
  NodeId leaf = *ns.Bind(ns.root(), "flatobj", NodeKind::kFile, owner);
  EXPECT_EQ(ns.ShardOf(leaf), ShardOfPrincipal(owner.value));
}

TEST(ShardStampsTest, MetadataMutationBumpsOnlyItsShard) {
  NameSpace ns;
  auto [name_a, name_b] = TwoShardNames();
  NodeId a = *ns.BindPath("/" + name_a + "/obj", NodeKind::kObject, PrincipalId{1});
  (void)*ns.BindPath("/" + name_b + "/obj", NodeKind::kObject, PrincipalId{1});
  ShardId shard_a = ns.ShardOf(a);

  uint64_t before[kMonitorShardCount];
  for (ShardId s = 0; s < kMonitorShardCount; ++s) {
    before[s] = ns.shard_generation(s);
  }
  uint64_t global_before = ns.global_generation();
  ASSERT_TRUE(ns.SetOwner(a, PrincipalId{2}).ok());
  for (ShardId s = 0; s < kMonitorShardCount; ++s) {
    if (s == shard_a) {
      EXPECT_GT(ns.shard_generation(s), before[s]) << "shard " << s;
    } else {
      EXPECT_EQ(ns.shard_generation(s), before[s]) << "shard " << s;
    }
  }
  // The aggregate domain still sees every mutation.
  EXPECT_GT(ns.global_generation(), global_before);
}

TEST(ShardStampsTest, RootMetadataMutationBumpsEveryShard) {
  NameSpace ns;
  uint64_t before[kMonitorShardCount];
  for (ShardId s = 0; s < kMonitorShardCount; ++s) {
    before[s] = ns.shard_generation(s);
  }
  // Every node may inherit the root's ACL, so this must invalidate all shards.
  ASSERT_TRUE(ns.SetAclRef(ns.root(), 7).ok());
  for (ShardId s = 0; s < kMonitorShardCount; ++s) {
    EXPECT_GT(ns.shard_generation(s), before[s]) << "shard " << s;
  }
}

TEST(ShardStampsTest, AclStoreTagsNarrowOnceAndEscalateOnSharing) {
  AclStore acls;
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, PrincipalId{1}, AccessModeSet(AccessMode::kRead)});
  AclStore::AclRef ref = acls.Create(Acl(acl), ShardId{3});
  EXPECT_EQ(acls.ShardOf(ref), 3u);

  uint64_t gen3 = acls.shard_generation(3);
  uint64_t gen5 = acls.shard_generation(5);
  ASSERT_TRUE(
      acls.AddEntry(ref, {AclEntryType::kAllow, PrincipalId{2}, AccessModeSet(AccessMode::kWrite)})
          .ok());
  EXPECT_GT(acls.shard_generation(3), gen3);
  EXPECT_EQ(acls.shard_generation(5), gen5);

  // A second attach from a different shard means the ref is shared across
  // subtrees: the tag escalates permanently and edits bump every shard.
  acls.AttachShard(ref, ShardId{5});
  EXPECT_EQ(acls.ShardOf(ref), kAllShards);
  gen5 = acls.shard_generation(5);
  ASSERT_TRUE(
      acls.AddEntry(ref, {AclEntryType::kAllow, PrincipalId{3}, AccessModeSet(AccessMode::kList)})
          .ok());
  EXPECT_GT(acls.shard_generation(5), gen5);
}

// ---------------------------------------------------------------------------
// Monitor layer: cross-shard isolation of cached and compiled decisions.

struct ShardedMonitorFixture {
  explicit ShardedMonitorFixture(bool shard_stamps = true) {
    MonitorOptions options;
    options.audit_policy = AuditPolicy::kOff;
    options.shard_stamps = shard_stamps;
    monitor = std::make_unique<ReferenceMonitor>(&ns, &acls, &principals, &labels, options);
    user = *principals.CreateUser("u");
    auto [name_a, name_b] = TwoShardNames();
    obj_a = MakeObject("/" + name_a);
    obj_b = MakeObject("/" + name_b);
    subject = Subject{user, labels.Bottom(), 1};
  }

  NodeId MakeObject(const std::string& top) {
    NodeId node = *ns.BindPath(top + "/obj", NodeKind::kObject, user);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
    (void)ns.SetAclRef(node, acls.Create(std::move(acl), ns.ShardOf(node)));
    return node;
  }

  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  std::unique_ptr<ReferenceMonitor> monitor;
  PrincipalId user;
  NodeId obj_a;
  NodeId obj_b;
  Subject subject;
};

TEST(ShardStampsTest, CrossShardMutationKeepsCacheEntriesValid) {
  ShardedMonitorFixture f;
  EXPECT_TRUE(f.monitor->Check(f.subject, f.obj_b, AccessMode::kRead).allowed);  // warm
  uint64_t hits = f.monitor->cache().hits();
  uint64_t stale = f.monitor->cache().stale_hits();

  ASSERT_TRUE(f.ns.SetOwner(f.obj_a, f.user).ok());  // mutate the OTHER shard
  EXPECT_TRUE(f.monitor->Check(f.subject, f.obj_b, AccessMode::kRead).allowed);
  EXPECT_EQ(f.monitor->cache().hits(), hits + 1);
  EXPECT_EQ(f.monitor->cache().stale_hits(), stale);

  ASSERT_TRUE(f.ns.SetOwner(f.obj_b, f.user).ok());  // mutate the SAME shard
  EXPECT_TRUE(f.monitor->Check(f.subject, f.obj_b, AccessMode::kRead).allowed);
  EXPECT_EQ(f.monitor->cache().stale_hits(), stale + 1);
}

TEST(ShardStampsTest, ShardStampsOffRevertsToAggregateInvalidation) {
  ShardedMonitorFixture f(/*shard_stamps=*/false);
  EXPECT_TRUE(f.monitor->Check(f.subject, f.obj_b, AccessMode::kRead).allowed);
  uint64_t stale = f.monitor->cache().stale_hits();
  // In the aggregate domain ANY mutation invalidates everything — the
  // legacy behavior the option preserves.
  ASSERT_TRUE(f.ns.SetOwner(f.obj_a, f.user).ok());
  EXPECT_TRUE(f.monitor->Check(f.subject, f.obj_b, AccessMode::kRead).allowed);
  EXPECT_EQ(f.monitor->cache().stale_hits(), stale + 1);
}

TEST(ShardStampsTest, CompiledTablesSurviveCrossShardMutation) {
  ShardedMonitorFixture f;
  ASSERT_TRUE(f.monitor->RecompileNow().ok());
  Decision d;
  ASSERT_TRUE(f.monitor->TryCompiledCheck(f.subject, f.obj_b, AccessMode::kRead, &d));
  EXPECT_TRUE(d.allowed);

  // A mutation confined to the other shard leaves this shard's compiled
  // decisions consultable — no fallback, no recompile storm.
  ASSERT_TRUE(f.ns.SetOwner(f.obj_a, f.user).ok());
  EXPECT_TRUE(f.monitor->TryCompiledCheck(f.subject, f.obj_b, AccessMode::kRead, &d));

  // A same-shard mutation still diverts the probe to the interpreted path.
  ASSERT_TRUE(f.ns.SetOwner(f.obj_b, f.user).ok());
  EXPECT_FALSE(f.monitor->TryCompiledCheck(f.subject, f.obj_b, AccessMode::kRead, &d));
}

TEST(ShardStampsTest, PerShardCheckCountersFeedTelemetry) {
  ShardedMonitorFixture f;
  ShardId shard_b = f.ns.ShardOf(f.obj_b);
  uint64_t before = f.monitor->shard_checks(shard_b);
  (void)f.monitor->Check(f.subject, f.obj_b, AccessMode::kRead);
  (void)f.monitor->Check(f.subject, f.obj_b, AccessMode::kRead);
  EXPECT_EQ(f.monitor->shard_checks(shard_b), before + 2);
}

TEST(ShardStampsTest, DomainFieldPreventsCrossDomainStampAliasing) {
  // Two stamp vectors with identical counter values but different domains
  // must never validate each other: the counters advance independently, so
  // value equality across domains is coincidence, not freshness.
  DecisionCache cache(64);
  Subject subject{PrincipalId{1}, SecurityClass(), 1};
  CacheStamps shard3;
  shard3.domain = 3;
  CacheStamps shard7 = shard3;
  shard7.domain = 7;
  ASSERT_FALSE(shard3 == shard7);

  cache.Insert(subject, NodeId{5}, AccessModeSet(AccessMode::kRead), shard3,
               DecisionCache::CachedDecision{true, DenyReason::kNone});
  DecisionCache::CachedDecision out;
  EXPECT_TRUE(cache.Lookup(subject, NodeId{5}, AccessModeSet(AccessMode::kRead), shard3, &out));
  EXPECT_FALSE(cache.Lookup(subject, NodeId{5}, AccessModeSet(AccessMode::kRead), shard7, &out));
}

// ---------------------------------------------------------------------------
// Satellite: BindPath must not hand auto-created intermediates to the
// caller. The owner-administrate fallback would otherwise leak administrate
// on every path prefix the caller named.

TEST(ShardStampsTest, BindPathIntermediatesInheritEnclosingOwner) {
  NameSpace ns;
  PrincipalId system{7};
  PrincipalId alice{42};
  NodeId top = *ns.BindPath("/srv", NodeKind::kDirectory, system);
  NodeId leaf = *ns.BindPath("/srv/apps/web/config", NodeKind::kFile, alice);

  EXPECT_EQ(ns.Get(leaf)->owner, alice);
  NodeId apps = *ns.Child(top, "apps");
  NodeId web = *ns.Child(apps, "web");
  // The intermediates alice never held take the enclosing directory's owner.
  EXPECT_EQ(ns.Get(apps)->owner, system);
  EXPECT_EQ(ns.Get(web)->owner, system);
}

// ---------------------------------------------------------------------------
// Shard-local interning.

TEST(ShardInternTest, PrincipalInternPoolDedupsIntoDenseIds) {
  PrincipalInternPool pool;
  uint32_t a = pool.Intern("alice");
  uint32_t b = pool.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("alice"), a);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.NameOf(a), "alice");
  EXPECT_EQ(pool.NameOf(b), "bob");
  EXPECT_EQ(pool.Find("bob"), b);
  EXPECT_EQ(pool.Find("carol"), UINT32_MAX);
  EXPECT_EQ(pool.NameOf(99), std::string_view());
}

TEST(ShardInternTest, NameArenaViewsStayStableAcrossChunkGrowth) {
  PrincipalInternPool pool;
  std::vector<uint32_t> ids;
  // Enough bytes to cross several 64KB chunks; every earlier view must
  // survive later growth (that is the arena's whole contract).
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(pool.Intern("principal-" + std::to_string(i) + std::string(32, 'x')));
  }
  // An oversized name gets a dedicated chunk without corrupting packing.
  uint32_t big = pool.Intern(std::string(200 * 1024, 'y'));
  EXPECT_EQ(pool.NameOf(ids[0]), "principal-0" + std::string(32, 'x'));
  EXPECT_EQ(pool.NameOf(ids[4999]), "principal-4999" + std::string(32, 'x'));
  EXPECT_EQ(pool.NameOf(big).size(), 200u * 1024);
  EXPECT_EQ(pool.size(), 5001u);
}

TEST(ShardInternTest, AclStoreSharesIdenticalEntryListsWithinShard) {
  AclStore acls;
  auto make = [] {
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, PrincipalId{1}, AccessModeSet(AccessMode::kRead)});
    return acl;
  };
  AclStore::AclRef r1 = acls.Create(make(), ShardId{2});
  AclStore::AclRef r2 = acls.Create(make(), ShardId{2});
  // Same content, same shard pool: one shared entry list.
  EXPECT_EQ(acls.Get(r1)->shared_entries(), acls.Get(r2)->shared_entries());
  EXPECT_EQ(acls.intern_hits(), 1u);

  // Copy-on-write: editing one ref must not leak into the other.
  ASSERT_TRUE(
      acls.AddEntry(r2, {AclEntryType::kDeny, PrincipalId{9}, AccessModeSet(AccessMode::kWrite)})
          .ok());
  EXPECT_EQ(acls.Get(r1)->entries().size(), 1u);
  EXPECT_EQ(acls.Get(r2)->entries().size(), 2u);

  // Different shard pools intern independently (no cross-shard sharing).
  AclStore::AclRef r3 = acls.Create(make(), ShardId{4});
  EXPECT_NE(acls.Get(r1)->shared_entries(), acls.Get(r3)->shared_entries());
}

// ---------------------------------------------------------------------------
// Cross-shard grants and the mediation-ring submit gate.

TEST(ShardGrantTest, GrantAdmitRevokeAndOneShotTransfer) {
  ShardGrantTable grants;
  PrincipalId p{11};
  NodeId node{5};

  EXPECT_FALSE(grants.Admit(p, node, 3));
  EXPECT_EQ(grants.rejected(), 1u);

  grants.Grant(p, "p", node, 3);
  EXPECT_TRUE(grants.Admit(p, node, 3));
  EXPECT_TRUE(grants.Admit(p, node, 3));  // persistent: admits repeatedly
  EXPECT_EQ(grants.admitted(), 2u);
  // A grant is per (grantee, node, shard) — not per grantee.
  EXPECT_FALSE(grants.Admit(p, NodeId{6}, 3));
  EXPECT_FALSE(grants.Admit(PrincipalId{12}, node, 3));

  grants.Revoke(p, node, 3);
  EXPECT_FALSE(grants.Admit(p, node, 3));

  // One-shot: a transfer is consumed by its first admission.
  grants.Grant(p, "p", node, 3, /*one_shot=*/true);
  EXPECT_TRUE(grants.Admit(p, node, 3));
  EXPECT_FALSE(grants.Admit(p, node, 3));
  EXPECT_EQ(grants.transfers_consumed(), 1u);

  // Non-concrete shards have no cross-shard boundary.
  EXPECT_TRUE(grants.Admit(p, node, kAggregateShard));
  EXPECT_EQ(grants.interned_names(), 1u);
}

// A one-shot transfer is consumed atomically: when many threads race to
// admit through the same transfer, exactly one wins and the consumption
// counter moves exactly once — repeated over many rounds to shake out
// check-then-consume windows in the slice locking.
TEST(ShardGrantTest, OneShotTransferAdmitsExactlyOnceUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  ShardGrantTable grants;
  PrincipalId p{21};
  NodeId node{7};

  for (int round = 0; round < kRounds; ++round) {
    grants.Grant(p, "racer", node, 3, /*one_shot=*/true);

    std::atomic<int> start_gate{0};
    std::atomic<int> admitted{0};
    std::vector<std::thread> racers;
    racers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      racers.emplace_back([&] {
        start_gate.fetch_add(1);
        while (start_gate.load() < kThreads) {
          // spin: release all racers into Admit together
        }
        if (grants.Admit(p, node, 3)) {
          admitted.fetch_add(1);
        }
      });
    }
    for (auto& racer : racers) {
      racer.join();
    }

    ASSERT_EQ(admitted.load(), 1) << "round " << round;
    // The transfer is gone: a straggler cannot reuse it.
    EXPECT_FALSE(grants.Admit(p, node, 3));
    EXPECT_EQ(grants.transfers_consumed(), static_cast<uint64_t>(round + 1));
  }
}

TEST(ShardGrantTest, RingRejectsCrossShardSubmitWithoutGrant) {
  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  MonitorOptions moptions;
  moptions.audit_policy = AuditPolicy::kOff;
  ReferenceMonitor monitor(&ns, &acls, &principals, &labels, moptions);

  NodeId node = *ns.BindPath("/t0/obj", NodeKind::kObject, PrincipalId{1});
  ShardId node_shard = ns.ShardOf(node);
  Acl acl;

  // One principal homed in the node's shard, one homed elsewhere.
  PrincipalId same{}, cross{};
  for (int i = 0; i < 512 && !(same.valid() && cross.valid()); ++i) {
    PrincipalId p = *principals.CreateUser("u" + std::to_string(i));
    if (ShardOfPrincipal(p.value) == node_shard) {
      if (!same.valid()) same = p;
    } else if (!cross.valid()) {
      cross = p;
    }
  }
  ASSERT_TRUE(same.valid());
  ASSERT_TRUE(cross.valid());
  acl.AddEntry({AclEntryType::kAllow, same, AccessModeSet(AccessMode::kRead)});
  acl.AddEntry({AclEntryType::kAllow, cross, AccessModeSet(AccessMode::kRead)});
  (void)ns.SetAclRef(node, acls.Create(std::move(acl), node_shard));

  ShardGrantTable grants;
  MediationRingOptions options;
  options.shards = 2;
  options.route_by_monitor_shard = true;
  options.grants = &grants;
  MediationRing ring(&monitor, options);
  auto client = ring.NewClient();

  // Same-shard submissions need no grant.
  Subject same_subject{same, labels.Bottom(), 1};
  auto ok = ring.SubmitCheck(*client, same_subject, node, AccessMode::kRead);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  auto done = ring.Wait(*client, *ok);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->decision.allowed);

  // Cross-shard without a grant fails fast at submit, pre-batch.
  Subject cross_subject{cross, labels.Bottom(), 2};
  auto denied = ring.SubmitCheck(*client, cross_subject, node, AccessMode::kRead);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ring.grant_rejections(), 1u);

  // Granted: admitted, and the DAC/MAC check still runs (and allows here).
  grants.Grant(cross, "cross", node, node_shard);
  auto granted = ring.SubmitCheck(*client, cross_subject, node, AccessMode::kRead);
  ASSERT_TRUE(granted.ok()) << granted.status().ToString();
  done = ring.Wait(*client, *granted);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->decision.allowed);

  // A grant admits; it never widens policy. No ACL entry -> still denied.
  NodeId locked = *ns.BindPath("/t0/locked", NodeKind::kObject, PrincipalId{1});
  (void)ns.SetAclRef(locked, acls.Create(Acl(), ns.ShardOf(locked)));
  grants.Grant(cross, "cross", locked, ns.ShardOf(locked));
  auto admitted = ring.SubmitCheck(*client, cross_subject, locked, AccessMode::kRead);
  ASSERT_TRUE(admitted.ok());
  done = ring.Wait(*client, *admitted);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->decision.allowed);
}

}  // namespace
}  // namespace xsec
