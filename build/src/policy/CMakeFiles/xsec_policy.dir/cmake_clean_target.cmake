file(REMOVE_RECURSE
  "libxsec_policy.a"
)
