// ThreadMurder, twice.
//
// The paper (§1.2) cites McGraw & Felten's ThreadMurder applet: a hostile
// applet that "kills the threads of all other applets that are running in
// the same sandbox", because the Java 1.x sandbox never isolated applets
// from each other. This example runs the same attack twice:
//
//   1. against the Java-sandbox baseline model  -> the murders succeed;
//   2. against the running xsec system          -> every kill is denied and
//      audited, while the attacker can still manage its OWN thread.
//
// Build & run:  cmake --build build && ./build/examples/threadmurder

#include <cstdio>

#include "src/baselines/java_sandbox_model.h"
#include "src/core/secure_system.h"

namespace {

void RunAgainstJavaSandbox() {
  std::printf("--- round 1: the Java 1.x sandbox baseline ---\n");
  xsec::JavaSandboxModel sandbox;
  xsec::BaselineWorld world;
  world.subjects = {
      {"applet-A", 1, {}, xsec::Origin::kRemote, {}},
      {"applet-B", 2, {}, xsec::Origin::kRemote, {}},
      {"murderer", 3, {}, xsec::Origin::kRemote, {}},
  };
  for (uint32_t owner : {1u, 2u}) {
    xsec::BaselineObject thread;
    thread.path = "/obj/threads/t" + std::to_string(owner);
    thread.category = xsec::ObjectCategory::kThread;
    thread.owner_uid = owner;
    world.objects.push_back(thread);
  }
  const xsec::BaselineSubject& murderer = world.subjects[2];
  int killed = 0;
  for (const xsec::BaselineObject& thread : world.objects) {
    bool allowed = sandbox.Allows(world, murderer, thread, xsec::AccessMode::kDelete);
    std::printf("  murderer kills %-18s -> %s\n", thread.path.c_str(),
                allowed ? "SUCCEEDS (no intra-sandbox isolation)" : "denied");
    killed += allowed ? 1 : 0;
  }
  std::printf("  threads murdered: %d of 2\n\n", killed);
}

void RunAgainstXsec() {
  std::printf("--- round 2: the same attack under xsec ---\n");
  xsec::SecureSystem sys;
  (void)sys.labels().DefineLevels({"others", "organization", "local"});
  (void)sys.labels().DefineCategory("department-1");
  (void)sys.labels().DefineCategory("department-2");
  (void)sys.labels().DefineCategory("outside");

  xsec::Subject applet_a = sys.Login(
      *sys.CreateUser("applet-A"), *sys.labels().MakeClass("organization", {"department-1"}));
  xsec::Subject applet_b = sys.Login(
      *sys.CreateUser("applet-B"), *sys.labels().MakeClass("organization", {"department-2"}));
  xsec::Subject murderer = sys.Login(
      *sys.CreateUser("murderer"), *sys.labels().MakeClass("others", {"outside"}));

  int64_t ta = *sys.threads().Spawn(applet_a, "applet-A-worker");
  int64_t tb = *sys.threads().Spawn(applet_b, "applet-B-worker");
  int64_t tm = *sys.threads().Spawn(murderer, "murderer-own");

  // The attack: enumerate and kill. Enumeration already fails — the monitor
  // only reveals threads the attacker is cleared to read.
  auto visible = sys.threads().List(murderer);
  std::printf("  murderer enumerates threads -> sees %zu of %zu (only its own)\n",
              visible->size(), sys.threads().live_count());

  for (int64_t victim : {ta, tb}) {
    xsec::Status result = sys.threads().Kill(murderer, victim);
    std::printf("  murderer kills thread %lld   -> %s\n", static_cast<long long>(victim),
                result.ok() ? "SUCCEEDS (!!)" : result.ToString().c_str());
  }
  std::printf("  murderer kills its own t%lld  -> %s\n", static_cast<long long>(tm),
              sys.threads().Kill(murderer, tm).ToString().c_str());
  std::printf("  victims still running: %s\n",
              *sys.threads().IsRunning(applet_a, ta) && *sys.threads().IsRunning(applet_b, tb)
                  ? "yes"
                  : "no");

  std::printf("  audit trail of the attack:\n");
  for (const auto& record : sys.monitor().audit().records()) {
    std::printf("    %s\n", record.ToString().c_str());
  }
}

}  // namespace

int main() {
  RunAgainstJavaSandbox();
  RunAgainstXsec();
  return 0;
}
