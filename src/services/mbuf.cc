#include "src/services/mbuf.h"

#include "src/base/strings.h"

namespace xsec {

MbufPool::MbufPool(Kernel* kernel, std::string service_path, Options options)
    : kernel_(kernel), service_path_(std::move(service_path)), options_(options) {}

Status MbufPool::Install() {
  PrincipalId system = kernel_->system_principal();
  auto svc = kernel_->RegisterService(service_path_, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto proc = [this, system](std::string_view name, HandlerFn fn) -> Status {
    auto node = kernel_->RegisterProcedure(JoinPath(service_path_, name), system, std::move(fn));
    return node.ok() ? OkStatus() : node.status();
  };

  XSEC_RETURN_IF_ERROR(proc("alloc", [this](CallContext& ctx) -> StatusOr<Value> {
    auto size = ArgInt(ctx.args, 0);
    if (!size.ok()) {
      return size.status();
    }
    auto id = Alloc(*ctx.subject, static_cast<size_t>(*size));
    if (!id.ok()) {
      return id.status();
    }
    return Value{*id};
  }));
  XSEC_RETURN_IF_ERROR(proc("free", [this](CallContext& ctx) -> StatusOr<Value> {
    auto id = ArgInt(ctx.args, 0);
    if (!id.ok()) {
      return id.status();
    }
    XSEC_RETURN_IF_ERROR(Free(*ctx.subject, *id));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("append", [this](CallContext& ctx) -> StatusOr<Value> {
    auto id = ArgInt(ctx.args, 0);
    auto data = ArgBytes(ctx.args, 1);
    if (!id.ok()) {
      return id.status();
    }
    if (!data.ok()) {
      return data.status();
    }
    XSEC_RETURN_IF_ERROR(Append(*ctx.subject, *id, *data));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("read", [this](CallContext& ctx) -> StatusOr<Value> {
    auto id = ArgInt(ctx.args, 0);
    if (!id.ok()) {
      return id.status();
    }
    auto data = ReadAll(*ctx.subject, *id);
    if (!data.ok()) {
      return data.status();
    }
    return Value{std::move(*data)};
  }));
  XSEC_RETURN_IF_ERROR(proc("chain", [this](CallContext& ctx) -> StatusOr<Value> {
    auto head = ArgInt(ctx.args, 0);
    auto tail = ArgInt(ctx.args, 1);
    if (!head.ok()) {
      return head.status();
    }
    if (!tail.ok()) {
      return tail.status();
    }
    XSEC_RETURN_IF_ERROR(Chain(*ctx.subject, *head, *tail));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("stats", [this](CallContext& ctx) -> StatusOr<Value> {
    (void)ctx;
    return Value{static_cast<int64_t>(live_buffers())};
  }));
  return OkStatus();
}

StatusOr<MbufPool::Buffer*> MbufPool::GetOwned(Subject& subject, int64_t id) {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) {
    return NotFoundError(StrFormat("no mbuf %lld", static_cast<long long>(id)));
  }
  if (it->second.owner != subject.principal &&
      subject.principal != kernel_->system_principal()) {
    return PermissionDeniedError(
        StrFormat("mbuf %lld belongs to another principal", static_cast<long long>(id)));
  }
  return &it->second;
}

StatusOr<int64_t> MbufPool::Alloc(Subject& subject, size_t reserve_bytes) {
  if (buffers_.size() >= options_.max_buffers) {
    return ResourceExhaustedError("mbuf pool exhausted (buffer count)");
  }
  if (total_bytes_ + reserve_bytes > options_.max_total_bytes) {
    return ResourceExhaustedError("mbuf pool exhausted (bytes)");
  }
  int64_t id = next_id_++;
  Buffer buffer;
  buffer.owner = subject.principal;
  buffer.data.reserve(reserve_bytes);
  buffers_.emplace(id, std::move(buffer));
  return id;
}

Status MbufPool::Free(Subject& subject, int64_t id) {
  auto buffer = GetOwned(subject, id);
  if (!buffer.ok()) {
    return buffer.status();
  }
  total_bytes_ -= (*buffer)->data.size();
  buffers_.erase(id);
  return OkStatus();
}

Status MbufPool::Append(Subject& subject, int64_t id, const std::vector<uint8_t>& data) {
  auto buffer = GetOwned(subject, id);
  if (!buffer.ok()) {
    return buffer.status();
  }
  if (total_bytes_ + data.size() > options_.max_total_bytes) {
    return ResourceExhaustedError("mbuf pool exhausted (bytes)");
  }
  (*buffer)->data.insert((*buffer)->data.end(), data.begin(), data.end());
  total_bytes_ += data.size();
  return OkStatus();
}

StatusOr<std::vector<uint8_t>> MbufPool::ReadAll(Subject& subject, int64_t id) {
  auto buffer = GetOwned(subject, id);
  if (!buffer.ok()) {
    return buffer.status();
  }
  return (*buffer)->data;
}

Status MbufPool::Chain(Subject& subject, int64_t head, int64_t tail) {
  auto head_buffer = GetOwned(subject, head);
  if (!head_buffer.ok()) {
    return head_buffer.status();
  }
  auto tail_buffer = GetOwned(subject, tail);
  if (!tail_buffer.ok()) {
    return tail_buffer.status();
  }
  std::vector<uint8_t>& dst = (*head_buffer)->data;
  std::vector<uint8_t>& src = (*tail_buffer)->data;
  dst.insert(dst.end(), src.begin(), src.end());
  total_bytes_ -= src.size();
  buffers_.erase(tail);
  return OkStatus();
}

}  // namespace xsec
