// Adapters exposing the paper's model through the baseline interface, so
// experiments T1/T3/F1 can compare it head-to-head with the others.
//
// XsecDacModel evaluates the object's own ACL with the full mode vocabulary
// (including distinct execute/extend and write-append) and deny-overrides
// semantics. XsecFullModel layers the lattice MAC on top: DAC must grant AND
// the flow rules must permit — "users can not circumvent the basic security
// of the system by exercising discretionary access control" (§2.2).

#ifndef XSEC_SRC_BASELINES_XSEC_MODEL_H_
#define XSEC_SRC_BASELINES_XSEC_MODEL_H_

#include "src/baselines/model.h"
#include "src/mac/flow_policy.h"

namespace xsec {

class XsecDacModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "xsec-dac"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override;
};

class XsecFullModel : public ProtectionModel {
 public:
  XsecFullModel() : flow_(FlowPolicyOptions{}) {}

  std::string_view name() const override { return "xsec-dac+mac"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override;

 private:
  XsecDacModel dac_;
  FlowPolicy flow_;
};

// Allows everything; the "no protection" floor for T1 and the mediation-cost
// floor for F1.
class NullModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "none"; }

  bool Allows(const BaselineWorld&, const BaselineSubject&, const BaselineObject&,
              AccessMode) const override {
    return true;
  }
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_XSEC_MODEL_H_
