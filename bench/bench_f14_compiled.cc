// Experiment F14 — compiled policy decisions vs the interpreted path
// (DESIGN.md §5, MODEL.md §13).
//
// The decision cache only helps when the same (principal, node, modes)
// tuple repeats; a cache *miss* pays the full ACL walk (membership closure
// per entry) plus two lattice Dominates calls. The compiled tables flatten
// that into two table lookups: a packed DAC cell indexed by
// (node, principal) and a per-class-pair flow mask from the precomputed
// dominance matrix.
//
//   check_miss_interpreted   cache off, compiled off — every Check walks
//                            the ACL and evaluates the lattice
//   check_miss_compiled      cache off, compiled on — every Check hits the
//                            flattened tables (fixture verifies coverage)
//   recompile                full table rebuild (the cost a mutation epoch
//                            eventually pays, off the mutation path)
//
// Expected shape: compiled miss well below interpreted miss (the CI gate
// ci/check_bench_f14.py requires the ratio < 0.9); recompile is orders of
// magnitude above a single check, which is why it runs asynchronously.

#include <benchmark/benchmark.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

MonitorOptions Opts(bool compiled) {
  MonitorOptions options;
  options.dac_enabled = true;
  options.mac_enabled = true;
  options.cache_enabled = false;  // every Check is a miss
  options.compiled_enabled = compiled;
  options.stats_enabled = false;
  options.audit_policy = AuditPolicy::kOff;
  return options;
}

// A deliberately non-trivial policy: the subject's grant sits behind a
// group membership in a multi-entry ACL, and the target carries a
// multi-category label, so the interpreted miss pays a realistic walk.
struct Fixture {
  explicit Fixture(MonitorOptions options) : sys(options) {
    user = *sys.CreateUser("bench-user");
    PrincipalId staff = *sys.CreateGroup("bench-staff");
    (void)sys.principals().AddMember(staff, user);
    for (int i = 0; i < 6; ++i) {
      bystanders[i] = *sys.CreateUser("bystander-" + std::to_string(i));
    }
    (void)sys.labels().DefineLevels({"public", "internal", "secret"});
    (void)sys.labels().DefineCategory("alpha");
    (void)sys.labels().DefineCategory("beta");
    (void)sys.labels().DefineCategory("gamma");

    node = *sys.name_space().BindPath("/data/proj/report", NodeKind::kFile,
                                      bystanders[0]);
    Acl acl;
    // Several non-matching entries ahead of the group grant: the
    // interpreted evaluator computes a membership closure per entry.
    for (int i = 0; i < 6; ++i) {
      acl.AddEntry({AclEntryType::kAllow, bystanders[i],
                    AccessMode::kWrite | AccessMode::kDelete});
    }
    acl.AddEntry({AclEntryType::kAllow, staff,
                  AccessMode::kRead | AccessMode::kList});
    (void)sys.name_space().SetAclRef(node, sys.kernel().acls().Create(std::move(acl)));

    SecurityClass secret = *sys.labels().MakeClass("secret", {"alpha", "beta"});
    (void)sys.name_space().SetLabelRef(node, sys.labels().StoreLabel(secret));
    SecurityClass clearance =
        *sys.labels().MakeClass("secret", {"alpha", "beta", "gamma"});
    subject = sys.Login(user, clearance);
  }

  SecureSystem sys;
  PrincipalId user;
  PrincipalId bystanders[6];
  NodeId node;
  Subject subject;
};

void CheckMiss(benchmark::State& state, bool compiled) {
  Fixture f(Opts(compiled));
  if (compiled) {
    Status status = f.sys.monitor().RecompileNow();
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    // The figure is only meaningful if the compiled tables actually cover
    // the benchmarked tuple; a silent fallback would measure the
    // interpreted path twice.
    Decision probe;
    if (!f.sys.monitor().TryCompiledCheck(f.subject, f.node,
                                          AccessModeSet(AccessMode::kRead), &probe)) {
      state.SkipWithError("compiled tables do not cover the benchmark tuple");
      return;
    }
  }
  for (auto _ : state) {
    Decision d = f.sys.monitor().Check(f.subject, f.node, AccessMode::kRead);
    benchmark::DoNotOptimize(d);
  }
}

void BM_CheckMiss_Interpreted(benchmark::State& state) { CheckMiss(state, false); }
void BM_CheckMiss_Compiled(benchmark::State& state) { CheckMiss(state, true); }
BENCHMARK(BM_CheckMiss_Interpreted);
BENCHMARK(BM_CheckMiss_Compiled);

// Full rebuild of the flattened tables (DAC bitmap + dominance matrix +
// node table) over the fixture world. Runs on the async recompile thread
// in production; this pins its absolute cost.
void BM_Recompile(benchmark::State& state) {
  Fixture f(Opts(true));
  for (auto _ : state) {
    Status status = f.sys.monitor().RecompileNow();
    benchmark::DoNotOptimize(status);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_Recompile);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
