#include "src/services/netstack.h"

#include "src/base/failpoint.h"
#include "src/base/strings.h"

namespace xsec {

NetStack::NetStack(Kernel* kernel, std::string service_path, std::string object_dir)
    : kernel_(kernel),
      service_path_(std::move(service_path)),
      object_dir_(std::move(object_dir)) {}

std::string NetStack::ProtocolInterfacePath(std::string_view name) const {
  return StrFormat("%s/proto/%s", service_path_.c_str(), std::string(name).c_str());
}

Status NetStack::Install() {
  PrincipalId system = kernel_->system_principal();
  auto svc = kernel_->RegisterService(service_path_, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto dir = kernel_->name_space().BindPath(object_dir_, NodeKind::kDirectory, system);
  if (!dir.ok()) {
    return dir.status();
  }
  auto proto_dir =
      kernel_->name_space().BindPath(JoinPath(service_path_, "proto"), NodeKind::kDirectory,
                                     system);
  if (!proto_dir.ok()) {
    return proto_dir.status();
  }
  auto filter = kernel_->RegisterInterface(JoinPath(service_path_, "filter"), system);
  if (!filter.ok()) {
    return filter.status();
  }
  filter_iface_ = *filter;

  auto proc = [this, system](std::string_view name, HandlerFn fn) -> Status {
    auto p = kernel_->RegisterProcedure(JoinPath(service_path_, name), system, std::move(fn));
    return p.ok() ? OkStatus() : p.status();
  };
  XSEC_RETURN_IF_ERROR(proc("create_device", [this](CallContext& ctx) -> StatusOr<Value> {
    auto name = ArgString(ctx.args, 0);
    if (!name.ok()) {
      return name.status();
    }
    auto node = CreateDevice(*ctx.subject, *name);
    if (!node.ok()) {
      return node.status();
    }
    return Value{static_cast<int64_t>(node->value)};
  }));
  XSEC_RETURN_IF_ERROR(proc("inject", [this](CallContext& ctx) -> StatusOr<Value> {
    auto device = ArgString(ctx.args, 0);
    auto protocol = ArgString(ctx.args, 1);
    auto payload = ArgBytes(ctx.args, 2);
    if (!device.ok()) {
      return device.status();
    }
    if (!protocol.ok()) {
      return protocol.status();
    }
    if (!payload.ok()) {
      return payload.status();
    }
    auto delivered = Inject(*ctx.subject, *device, *protocol, std::move(*payload), &ctx);
    if (!delivered.ok()) {
      return delivered.status();
    }
    return Value{*delivered};
  }));
  XSEC_RETURN_IF_ERROR(proc("send", [this](CallContext& ctx) -> StatusOr<Value> {
    auto device = ArgString(ctx.args, 0);
    auto payload = ArgBytes(ctx.args, 1);
    if (!device.ok()) {
      return device.status();
    }
    if (!payload.ok()) {
      return payload.status();
    }
    XSEC_RETURN_IF_ERROR(Send(*ctx.subject, *device, std::move(*payload)));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("delivered", [this](CallContext& ctx) -> StatusOr<Value> {
    auto device = ArgString(ctx.args, 0);
    if (!device.ok()) {
      return device.status();
    }
    auto count = Delivered(*ctx.subject, *device);
    if (!count.ok()) {
      return count.status();
    }
    return Value{*count};
  }));
  return OkStatus();
}

StatusOr<NodeId> NetStack::CreateProtocol(std::string_view name, PrincipalId owner) {
  return kernel_->RegisterInterface(ProtocolInterfacePath(name), owner);
}

StatusOr<NodeId> NetStack::CreateDevice(Subject& subject, std::string_view name) {
  if (!IsValidComponent(name)) {
    return InvalidArgumentError("invalid device name");
  }
  if (devices_.find(name) != devices_.end()) {
    return AlreadyExistsError(
        StrFormat("device '%s' already exists", std::string(name).c_str()));
  }
  auto node = kernel_->name_space().BindPath(JoinPath(object_dir_, name), NodeKind::kObject,
                                             subject.principal);
  if (!node.ok()) {
    return node.status();
  }
  (void)kernel_->name_space().SetLabelRef(
      *node, kernel_->labels().StoreLabel(subject.security_class));
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, subject.principal,
                AccessMode::kRead | AccessMode::kWrite | AccessMode::kWriteAppend |
                    AccessMode::kDelete | AccessMode::kList});
  (void)kernel_->name_space().SetAclRef(*node, kernel_->acls().Create(std::move(acl)));
  Device device;
  device.node = *node;
  devices_.emplace(std::string(name), std::move(device));
  return node;
}

StatusOr<NetStack::Device*> NetStack::ResolveDevice(Subject& subject, std::string_view name,
                                                    AccessModeSet modes) {
  auto it = devices_.find(name);
  if (it == devices_.end()) {
    return NotFoundError(StrFormat("no device '%s'", std::string(name).c_str()));
  }
  Decision decision = kernel_->monitor().Check(subject, it->second.node, modes);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return &it->second;
}

StatusOr<bool> NetStack::Inject(Subject& subject, std::string_view device,
                                std::string_view proto, std::vector<uint8_t> payload,
                                const CallContext* call) {
  uint64_t deadline_ns = call != nullptr ? call->deadline_ns : 0;
  const std::atomic<bool>* cancel = call != nullptr ? call->cancel : nullptr;
  auto dev = ResolveDevice(subject, device, AccessMode::kWriteAppend);
  if (!dev.ok()) {
    return dev.status();
  }
  // Receive-side I/O failpoint: after mediation admitted the injector but
  // before any filter or protocol handler runs — where a NIC ring overrun
  // or DMA fault would surface in a real stack.
  XSEC_FAILPOINT("netstack.recv");
  // Run every eligible filter; any `false` drops the packet. Filters are
  // selected by the injecting subject's class, so a low injector cannot make
  // its traffic bypass a low filter by pretending to be high.
  if (kernel_->dispatcher().HandlerCount(filter_iface_) > 0) {
    auto filters = kernel_->dispatcher().Select(filter_iface_, subject.security_class,
                                                DispatchMode::kBroadcast);
    if (filters.ok()) {
      for (const EventDispatcher::HandlerRecord* record : *filters) {
        CallContext ctx{kernel_, &subject,
                        Args{Value{std::string(device)}, Value{std::string(proto)},
                             Value{payload}},
                        deadline_ns, cancel};
        // Cancellation point: one filter is the poll interval, so a slow
        // chain gives up at the next filter boundary.
        XSEC_RETURN_IF_ERROR(ctx.CheckDeadline());
        auto verdict = record->handler(ctx);
        if (!verdict.ok()) {
          return verdict.status();
        }
        if (const bool* pass = std::get_if<bool>(&*verdict); pass != nullptr && !*pass) {
          ++packets_filtered_;
          return false;
        }
      }
    }
  }
  if (call != nullptr) {
    XSEC_RETURN_IF_ERROR(call->CheckDeadline());
  }
  // Protocol dispatch: the implementation selected for this subject.
  auto processed =
      kernel_->RaiseEvent(subject, ProtocolInterfacePath(proto),
                          Args{Value{std::string(device)}, Value{std::move(payload)}},
                          DispatchMode::kClassSelected,
                          CallOptions{deadline_ns, cancel});
  if (!processed.ok()) {
    return processed.status();
  }
  auto* bytes = std::get_if<std::vector<uint8_t>>(&*processed);
  if (bytes == nullptr) {
    return InternalError("protocol handler returned a non-bytes value");
  }
  (*dev)->delivered.push_back(std::move(*bytes));
  return true;
}

Status NetStack::Send(Subject& subject, std::string_view device,
                      std::vector<uint8_t> payload) {
  auto dev = ResolveDevice(subject, device, AccessMode::kWriteAppend);
  if (!dev.ok()) {
    return dev.status();
  }
  // Transmit-side I/O failpoint: mediation passed, queueing is next — the
  // injected error models a full tx ring / carrier loss.
  XSEC_FAILPOINT("netstack.send");
  (*dev)->tx.push_back(std::move(payload));
  return OkStatus();
}

StatusOr<int64_t> NetStack::Delivered(Subject& subject, std::string_view device) {
  auto dev = ResolveDevice(subject, device, AccessMode::kRead);
  if (!dev.ok()) {
    return dev.status();
  }
  return static_cast<int64_t>((*dev)->delivered.size());
}

StatusOr<int64_t> NetStack::TxQueued(Subject& subject, std::string_view device) {
  auto dev = ResolveDevice(subject, device, AccessMode::kRead);
  if (!dev.ok()) {
    return dev.status();
  }
  return static_cast<int64_t>((*dev)->tx.size());
}

}  // namespace xsec
