// Experiment F2 — ACL evaluation cost (DESIGN.md §5).
//
// "Fully featured access control lists" (§2.1) have a linear evaluation
// cost; this figure quantifies the slope and the constants:
//
//   Evaluate/<n>          n-entry ACL, subject matches only the last entry
//   EvaluateFirstHit/<n>  n-entry ACL, subject matches the first entry
//                         (same cost — deny-overrides must scan everything)
//   EvaluateDenyShortCircuit/<n>  a matching deny entry stops the scan early
//   GroupClosure/<n>      membership-closure computation for n nested groups
//   EffectiveModes/<n>    full mode-set extraction
//
// Expected shape: linear in ACL length; closure cost linear in nesting depth
// but cached by the registry (the *Cached variant is O(1)).

#include <benchmark/benchmark.h>

#include "src/dac/acl.h"
#include "src/principal/registry.h"

namespace xsec {
namespace {

Acl MakeAcl(int entries, PrincipalId subject_match, bool match_first) {
  Acl acl;
  for (int i = 0; i < entries; ++i) {
    bool is_match = match_first ? i == 0 : i == entries - 1;
    PrincipalId who = is_match ? subject_match : PrincipalId{1000 + static_cast<uint32_t>(i)};
    acl.AddEntry({AclEntryType::kAllow, who, AccessMode::kRead | AccessMode::kExecute});
  }
  return acl;
}

DynamicBitset SubjectClosure() {
  DynamicBitset closure(4);
  closure.Set(3);
  return closure;
}

void BM_Evaluate(benchmark::State& state) {
  Acl acl = MakeAcl(static_cast<int>(state.range(0)), PrincipalId{3}, false);
  DynamicBitset closure = SubjectClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl.Evaluate(closure, AccessMode::kRead));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Evaluate)->RangeMultiplier(4)->Range(1, 256)->Complexity(benchmark::oN);

void BM_EvaluateFirstHit(benchmark::State& state) {
  Acl acl = MakeAcl(static_cast<int>(state.range(0)), PrincipalId{3}, true);
  DynamicBitset closure = SubjectClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl.Evaluate(closure, AccessMode::kRead));
  }
}
BENCHMARK(BM_EvaluateFirstHit)->RangeMultiplier(4)->Range(1, 256);

void BM_EvaluateDenyShortCircuit(benchmark::State& state) {
  Acl acl;
  acl.AddEntry({AclEntryType::kDeny, PrincipalId{3}, AccessModeSet(AccessMode::kRead)});
  for (int i = 1; i < state.range(0); ++i) {
    acl.AddEntry({AclEntryType::kAllow, PrincipalId{1000 + static_cast<uint32_t>(i)},
                  AccessModeSet(AccessMode::kRead)});
  }
  DynamicBitset closure = SubjectClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl.Evaluate(closure, AccessMode::kRead));
  }
}
BENCHMARK(BM_EvaluateDenyShortCircuit)->RangeMultiplier(4)->Range(1, 256);

void BM_EvaluateWithNegativeEntries(benchmark::State& state) {
  // Half allow, half non-matching deny: the realistic mixed case.
  Acl acl;
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    acl.AddEntry({i % 2 == 0 ? AclEntryType::kAllow : AclEntryType::kDeny,
                  PrincipalId{1000 + static_cast<uint32_t>(i)},
                  AccessModeSet(AccessMode::kRead)});
  }
  acl.AddEntry({AclEntryType::kAllow, PrincipalId{3}, AccessModeSet(AccessMode::kRead)});
  DynamicBitset closure = SubjectClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl.Evaluate(closure, AccessMode::kRead));
  }
}
BENCHMARK(BM_EvaluateWithNegativeEntries)->RangeMultiplier(4)->Range(2, 256);

void BM_GroupClosureCold(benchmark::State& state) {
  // n nested groups; the closure is recomputed every iteration by bumping
  // the epoch (a membership no-op add/remove would distort the numbers, so
  // rebuild the registry per batch instead).
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PrincipalRegistry registry;
    PrincipalId user = *registry.CreateUser("u");
    PrincipalId prev = user;
    for (int i = 0; i < depth; ++i) {
      PrincipalId group = *registry.CreateGroup("g" + std::to_string(i));
      (void)registry.AddMember(group, prev);
      prev = group;
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(registry.MembershipClosure(user));
  }
}
BENCHMARK(BM_GroupClosureCold)->RangeMultiplier(4)->Range(1, 256);

void BM_GroupClosureCached(benchmark::State& state) {
  PrincipalRegistry registry;
  PrincipalId user = *registry.CreateUser("u");
  PrincipalId prev = user;
  for (int i = 0; i < state.range(0); ++i) {
    PrincipalId group = *registry.CreateGroup("g" + std::to_string(i));
    (void)registry.AddMember(group, prev);
    prev = group;
  }
  (void)registry.MembershipClosure(user);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.MembershipClosure(user));
  }
}
BENCHMARK(BM_GroupClosureCached)->RangeMultiplier(4)->Range(1, 256);

void BM_EffectiveModes(benchmark::State& state) {
  Acl acl = MakeAcl(static_cast<int>(state.range(0)), PrincipalId{3}, false);
  DynamicBitset closure = SubjectClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl.EffectiveModes(closure));
  }
}
BENCHMARK(BM_EffectiveModes)->RangeMultiplier(4)->Range(1, 256);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
