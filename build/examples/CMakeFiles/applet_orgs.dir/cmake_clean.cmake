file(REMOVE_RECURSE
  "CMakeFiles/applet_orgs.dir/applet_orgs.cpp.o"
  "CMakeFiles/applet_orgs.dir/applet_orgs.cpp.o.d"
  "applet_orgs"
  "applet_orgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applet_orgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
