file(REMOVE_RECURSE
  "CMakeFiles/xsec_base_tests.dir/bitset_test.cc.o"
  "CMakeFiles/xsec_base_tests.dir/bitset_test.cc.o.d"
  "CMakeFiles/xsec_base_tests.dir/rng_test.cc.o"
  "CMakeFiles/xsec_base_tests.dir/rng_test.cc.o.d"
  "CMakeFiles/xsec_base_tests.dir/status_test.cc.o"
  "CMakeFiles/xsec_base_tests.dir/status_test.cc.o.d"
  "CMakeFiles/xsec_base_tests.dir/strings_test.cc.o"
  "CMakeFiles/xsec_base_tests.dir/strings_test.cc.o.d"
  "xsec_base_tests"
  "xsec_base_tests.pdb"
  "xsec_base_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
