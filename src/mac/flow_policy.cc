#include "src/mac/flow_policy.h"

#include "src/base/strings.h"

namespace xsec {

std::string FlowVerdict::ToString() const {
  if (allowed) {
    return "flow-ok";
  }
  return StrFormat("flow-violation(%s)",
                   std::string(AccessModeName(*violating_mode)).c_str());
}

bool FlowPolicy::ModeAllowed(const SecurityClass& subject, const SecurityClass& object,
                             AccessMode mode) const {
  switch (mode) {
    case AccessMode::kRead:
    case AccessMode::kList:
    case AccessMode::kExecute:
    case AccessMode::kExtend:
      return subject.Dominates(object);
    case AccessMode::kWriteAppend:
      return object.Dominates(subject);
    case AccessMode::kWrite:
    case AccessMode::kDelete:
      if (!object.Dominates(subject)) {
        return false;
      }
      if (options_.write_up_requires_append) {
        return subject.Dominates(object);  // together with the above: S = O
      }
      return true;
    case AccessMode::kAdministrate:
      return subject.Dominates(object) && object.Dominates(subject);
  }
  return false;
}

FlowVerdict FlowPolicy::Check(const SecurityClass& subject, const SecurityClass& object,
                              AccessModeSet requested) const {
  // Hot path: iterate the bitmask directly rather than materializing a
  // vector of modes.
  uint32_t bits = requested.bits();
  while (bits != 0) {
    uint32_t bit = bits & (~bits + 1);  // lowest set bit
    bits ^= bit;
    AccessMode mode = static_cast<AccessMode>(bit);
    if (!ModeAllowed(subject, object, mode)) {
      return FlowVerdict{false, mode};
    }
  }
  return FlowVerdict{};
}

}  // namespace xsec
