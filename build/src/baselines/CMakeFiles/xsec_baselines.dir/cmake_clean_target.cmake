file(REMOVE_RECURSE
  "libxsec_baselines.a"
)
