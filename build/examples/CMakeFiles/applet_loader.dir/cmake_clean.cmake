file(REMOVE_RECURSE
  "CMakeFiles/applet_loader.dir/applet_loader.cpp.o"
  "CMakeFiles/applet_loader.dir/applet_loader.cpp.o.d"
  "applet_loader"
  "applet_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applet_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
