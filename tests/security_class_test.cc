#include "src/mac/security_class.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace xsec {
namespace {

SecurityClass Cls(TrustLevel level, std::initializer_list<size_t> cats) {
  CategorySet set(8);
  for (size_t c : cats) {
    set.Set(c);
  }
  return SecurityClass(level, std::move(set));
}

TEST(SecurityClassTest, DominanceRequiresLevelAndCategories) {
  EXPECT_TRUE(Cls(2, {0, 1}).Dominates(Cls(1, {0})));
  EXPECT_TRUE(Cls(1, {0}).Dominates(Cls(1, {0})));
  EXPECT_FALSE(Cls(0, {0, 1}).Dominates(Cls(1, {0})));    // level too low
  EXPECT_FALSE(Cls(2, {1}).Dominates(Cls(1, {0})));       // missing category
  EXPECT_TRUE(Cls(1, {0, 1, 2}).Dominates(Cls(0, {})));   // bottom dominated by all
}

TEST(SecurityClassTest, StrictDominance) {
  EXPECT_TRUE(Cls(2, {0}).StrictlyDominates(Cls(1, {0})));
  EXPECT_FALSE(Cls(1, {0}).StrictlyDominates(Cls(1, {0})));
}

TEST(SecurityClassTest, Incomparability) {
  // Same level, disjoint categories: the paper's department-1 vs department-2.
  SecurityClass dep1 = Cls(1, {1});
  SecurityClass dep2 = Cls(1, {2});
  EXPECT_TRUE(dep1.IncomparableWith(dep2));
  EXPECT_FALSE(dep1.Dominates(dep2));
  EXPECT_FALSE(dep2.Dominates(dep1));
  // The dual-label applet dominates both.
  SecurityClass both = Cls(1, {1, 2});
  EXPECT_TRUE(both.Dominates(dep1));
  EXPECT_TRUE(both.Dominates(dep2));
}

TEST(SecurityClassTest, JoinAndMeet) {
  SecurityClass a = Cls(1, {1});
  SecurityClass b = Cls(2, {2});
  SecurityClass join = a.Join(b);
  EXPECT_EQ(join.level(), 2);
  EXPECT_TRUE(join.categories().Test(1));
  EXPECT_TRUE(join.categories().Test(2));
  SecurityClass meet = a.Meet(b);
  EXPECT_EQ(meet.level(), 1);
  EXPECT_EQ(meet.categories().Count(), 0u);
}

TEST(SecurityClassTest, EqualityAndHash) {
  EXPECT_TRUE(Cls(1, {1, 3}) == Cls(1, {1, 3}));
  EXPECT_FALSE(Cls(1, {1}) == Cls(1, {2}));
  EXPECT_FALSE(Cls(1, {1}) == Cls(2, {1}));
  EXPECT_EQ(Cls(1, {1, 3}).Hash(), Cls(1, {1, 3}).Hash());
}

TEST(SecurityClassTest, ToString) {
  EXPECT_EQ(Cls(2, {0, 3}).ToString(), "(2,{0,3})");
}

// Lattice laws over random classes.
class LatticePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  SecurityClass RandomClass(Rng& rng) {
    CategorySet cats(6);
    for (size_t c = 0; c < 6; ++c) {
      if (rng.NextBool(1, 2)) {
        cats.Set(c);
      }
    }
    return SecurityClass(static_cast<TrustLevel>(rng.NextBelow(4)), std::move(cats));
  }
};

TEST_P(LatticePropertyTest, PartialOrderLaws) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    SecurityClass a = RandomClass(rng), b = RandomClass(rng), c = RandomClass(rng);
    // Reflexivity.
    EXPECT_TRUE(a.Dominates(a));
    // Antisymmetry.
    if (a.Dominates(b) && b.Dominates(a)) {
      EXPECT_TRUE(a == b);
    }
    // Transitivity.
    if (a.Dominates(b) && b.Dominates(c)) {
      EXPECT_TRUE(a.Dominates(c));
    }
  }
}

TEST_P(LatticePropertyTest, JoinIsLeastUpperBound) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 50; ++i) {
    SecurityClass a = RandomClass(rng), b = RandomClass(rng);
    SecurityClass join = a.Join(b);
    EXPECT_TRUE(join.Dominates(a));
    EXPECT_TRUE(join.Dominates(b));
    // Least: any other upper bound dominates the join.
    SecurityClass other = RandomClass(rng);
    if (other.Dominates(a) && other.Dominates(b)) {
      EXPECT_TRUE(other.Dominates(join));
    }
  }
}

TEST_P(LatticePropertyTest, MeetIsGreatestLowerBound) {
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 50; ++i) {
    SecurityClass a = RandomClass(rng), b = RandomClass(rng);
    SecurityClass meet = a.Meet(b);
    EXPECT_TRUE(a.Dominates(meet));
    EXPECT_TRUE(b.Dominates(meet));
    SecurityClass other = RandomClass(rng);
    if (a.Dominates(other) && b.Dominates(other)) {
      EXPECT_TRUE(meet.Dominates(other));
    }
  }
}

TEST_P(LatticePropertyTest, JoinMeetAlgebra) {
  Rng rng(GetParam() + 300);
  for (int i = 0; i < 50; ++i) {
    SecurityClass a = RandomClass(rng), b = RandomClass(rng);
    // Commutativity.
    EXPECT_TRUE(a.Join(b) == b.Join(a));
    EXPECT_TRUE(a.Meet(b) == b.Meet(a));
    // Idempotence.
    EXPECT_TRUE(a.Join(a) == a);
    EXPECT_TRUE(a.Meet(a) == a);
    // Absorption.
    EXPECT_TRUE(a.Join(a.Meet(b)) == a);
    EXPECT_TRUE(a.Meet(a.Join(b)) == a);
    // Dominance characterization via join/meet.
    EXPECT_EQ(a.Dominates(b), a.Join(b) == a);
    EXPECT_EQ(a.Dominates(b), a.Meet(b) == b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticePropertyTest, ::testing::Range(0, 10));

// Antisymmetry, pinned explicitly because two consumers key decisions off
// the S = O case (FlowAllowedMask's administrate/strict-write rules and the
// compiled DominanceMatrix's dedup): mutual dominance must coincide with
// operator== — including for equal classes whose category bitsets differ
// only in capacity, and for empty-category classes.
TEST(SecurityClassProperty, MutualDominanceIsEquality) {
  Rng rng(0xeec5);
  for (int i = 0; i < 400; ++i) {
    CategorySet ca(3 + rng.NextBelow(5)), cb(3 + rng.NextBelow(5));
    for (size_t c = 0; c < 3; ++c) {
      if (rng.NextBool(1, 2)) {
        ca.Set(c);
      }
      if (rng.NextBool(1, 2)) {
        cb.Set(c);
      }
    }
    SecurityClass a(static_cast<TrustLevel>(rng.NextBelow(3)), std::move(ca));
    SecurityClass b(static_cast<TrustLevel>(rng.NextBelow(3)), std::move(cb));
    EXPECT_EQ(a.Dominates(b) && b.Dominates(a), a == b);
    // The derived predicates must agree with the same partition: exactly one
    // of {equal, a strict, b strict, incomparable} holds.
    int buckets = (a == b ? 1 : 0) + (a.StrictlyDominates(b) ? 1 : 0) +
                  (b.StrictlyDominates(a) ? 1 : 0) + (a.IncomparableWith(b) ? 1 : 0);
    EXPECT_EQ(buckets, 1) << "partition violated at trial " << i;
  }
}

TEST(SecurityClassProperty, CapacityNeverAffectsEqualityOrDominance) {
  CategorySet narrow(1), wide(64);
  narrow.Set(0);
  wide.Set(0);
  SecurityClass a(2, std::move(narrow));
  SecurityClass b(2, std::move(wide));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.Dominates(b) && b.Dominates(a));
  EXPECT_FALSE(a.StrictlyDominates(b));
  EXPECT_FALSE(a.IncomparableWith(b));
  // Empty category sets of any capacity are one lattice point per level.
  SecurityClass e0(1, CategorySet(0)), e1(1, CategorySet(17));
  EXPECT_EQ(e0, e1);
  EXPECT_TRUE(e0.Dominates(e1) && e1.Dominates(e0));
}

}  // namespace
}  // namespace xsec
