#include "src/monitor/reference_monitor.h"

#include <algorithm>

#include "src/base/strings.h"

namespace xsec {

Status Decision::ToStatus() const {
  if (allowed) {
    return OkStatus();
  }
  if (reason == DenyReason::kNotFound) {
    return NotFoundError(detail);
  }
  if (reason == DenyReason::kQuarantined) {
    // Not a policy verdict: the caller may be fully authorized, the target
    // is just refusing work until supervision clears it. Retryable.
    return UnavailableError(detail);
  }
  return PermissionDeniedError(detail);
}

ReferenceMonitor::ReferenceMonitor(NameSpace* name_space, AclStore* acls,
                                   PrincipalRegistry* principals, LabelAuthority* labels,
                                   MonitorOptions options)
    : name_space_(name_space),
      acls_(acls),
      principals_(principals),
      labels_(labels),
      options_(options),
      flow_(options.flow),
      audit_(options.audit_capacity),
      cache_(options.cache_slots) {
  audit_.set_policy(options.audit_policy);
  audit_.set_required(options.audit_required);
  // Every node must resolve to *some* label; the root carries ⊥ so an
  // unlabeled tree degenerates to "MAC imposes no constraint among ⊥
  // subjects" rather than to undefined behavior.
  NameSpace::SecuritySnapshot root;
  if (name_space_->SnapshotSecurity(name_space_->root(), &root) &&
      root.own_label_ref == kNoRef) {
    (void)name_space_->SetLabelRef(name_space_->root(), labels_->StoreLabel(labels_->Bottom()));
  }
}

ReferenceMonitor::~ReferenceMonitor() {
  {
    std::lock_guard<std::mutex> lock(recompile_mu_);
    recompile_shutdown_ = true;
    recompile_cv_.notify_one();
  }
  if (recompile_thread_.joinable()) {
    recompile_thread_.join();
  }
}

CacheStamps ReferenceMonitor::CurrentStamps() const {
  return CacheStamps{name_space_->global_generation(), acls_->store_generation(),
                     principals_->membership_epoch(), labels_->label_epoch(),
                     policy_epoch_.load(std::memory_order_acquire)};
}

CacheStamps ReferenceMonitor::CurrentStampsFor(ShardId shard) const {
  if (!IsConcreteShard(shard)) {
    return CurrentStamps();
  }
  // Shard-local name-space / ACL generations and label epoch, plus the two
  // domain-wide counters: membership and policy-reload events affect every
  // decision regardless of subtree, so each shard's stamp carries them.
  return CacheStamps{name_space_->shard_generation(shard), acls_->shard_generation(shard),
                     principals_->membership_epoch(), labels_->shard_epoch(shard),
                     policy_epoch_.load(std::memory_order_acquire), shard};
}

ShardId ReferenceMonitor::DomainOf(NodeId node) const {
  return options_.shard_stamps ? name_space_->ShardOf(node) : kAggregateShard;
}

ShardStampSet ReferenceMonitor::CurrentStampSet() const {
  ShardStampSet set;
  set.aggregate = CurrentStamps();
  for (ShardId s = 0; s < kMonitorShardCount; ++s) {
    set.shard[s] = CurrentStampsFor(s);
  }
  return set;
}

const Acl* ReferenceMonitor::EffectiveAcl(NodeId node, AclStore::AclRef* ref_out) const {
  const Node* n = name_space_->Get(node);
  while (n != nullptr) {
    if (n->acl_ref != kNoRef) {
      if (ref_out != nullptr) {
        *ref_out = n->acl_ref;
      }
      return acls_->Get(n->acl_ref);
    }
    if (n->id == name_space_->root()) {
      break;
    }
    n = name_space_->Get(n->parent);
  }
  if (ref_out != nullptr) {
    *ref_out = kNoRef;
  }
  return nullptr;
}

SecurityClass ReferenceMonitor::EffectiveLabel(NodeId node) const {
  NameSpace::SecuritySnapshot snap;
  if (name_space_->SnapshotSecurity(node, &snap) && snap.effective_label_ref != kNoRef) {
    if (auto label = labels_->LabelHandle(snap.effective_label_ref)) {
      return *label;
    }
  }
  // Unreachable for live nodes: the constructor labels the root. A default
  // class is ⊥-shaped (level 0, no categories).
  return SecurityClass();
}

Decision ReferenceMonitor::CheckUncached(const Subject& subject, NodeId node,
                                         AccessModeSet modes) const {
  // One locked ancestor walk yields owner + effective ACL/label refs; after
  // this the stores are only touched through shared-ownership handles, so a
  // concurrent policy mutation cannot tear the evaluation.
  NameSpace::SecuritySnapshot snap;
  if (!name_space_->SnapshotSecurity(node, &snap)) {
    return Decision{false, DenyReason::kNotFound, "node does not exist"};
  }

  if (options_.dac_enabled) {
    AccessModeSet dac_modes = modes;
    // Bootstrap rule: the owner always holds administrate, so a fresh node
    // (which inherits its ACL) can be given one by its creator.
    if (subject.principal == snap.owner) {
      dac_modes = dac_modes - AccessModeSet(AccessMode::kAdministrate);
    }
    if (!dac_modes.empty()) {
      if (snap.effective_acl_ref == kNoRef) {
        return Decision{false, DenyReason::kDacNoGrant, "no ACL grants this access"};
      }
      std::shared_ptr<const DynamicBitset> closure = principals_->Closure(subject.principal);
      AclVerdict verdict = acls_->Evaluate(snap.effective_acl_ref, *closure, dac_modes);
      if (verdict == AclVerdict::kDeniedByEntry) {
        return Decision{false, DenyReason::kDacExplicitDeny, "matched a negative ACL entry"};
      }
      if (verdict == AclVerdict::kNoMatchingGrant) {
        return Decision{false, DenyReason::kDacNoGrant, "no ACL entry grants this access"};
      }
    }
  }

  if (options_.mac_enabled) {
    std::shared_ptr<const SecurityClass> handle =
        snap.effective_label_ref != kNoRef ? labels_->LabelHandle(snap.effective_label_ref)
                                           : nullptr;
    // A live node always resolves to a label (the root carries ⊥); ⊥ is the
    // defensive fallback for a torn-down tree.
    SecurityClass fallback;
    const SecurityClass& label = handle ? *handle : fallback;
    FlowVerdict verdict = flow_.Check(subject.security_class, label, modes);
    if (!verdict.allowed) {
      return Decision{false, DenyReason::kMacFlow,
                      StrFormat("%s of %s by subject at %s violates information flow",
                                std::string(AccessModeName(*verdict.violating_mode)).c_str(),
                                labels_->ClassToString(label).c_str(),
                                labels_->ClassToString(subject.security_class).c_str())};
    }
  }

  return Decision{true, DenyReason::kNone, ""};
}

void ReferenceMonitor::Audit(const Subject& subject, NodeId node, std::string path,
                             AccessModeSet modes, const Decision& decision) {
  // Stats mirror the audit counters: every decision that reaches the audit
  // layer — checks, path resolutions, administrative denials — lands in
  // exactly one reason bucket (kNone for allows).
  if (options_.stats_enabled) {
    stats_.RecordDecision(modes, decision.allowed ? DenyReason::kNone : decision.reason);
  }
  if (!audit_.WouldRetain(decision.allowed)) {
    audit_.Count(decision.allowed);
    return;
  }
  AuditRecord record;
  record.principal = subject.principal;
  record.thread_id = subject.thread_id;
  record.node = node;
  record.path = path.empty() ? name_space_->PathOf(node) : std::move(path);
  record.modes = modes;
  record.allowed = decision.allowed;
  record.reason = decision.reason;
  record.detail = decision.detail;
  audit_.Record(std::move(record));
}

Decision ReferenceMonitor::Check(const Subject& subject, NodeId node, AccessModeSet modes) {
  if (options_.stats_enabled && stats_.ShouldSampleLatency()) {
    uint64_t start = MonotonicNowNs();
    Decision decision = CheckUnsampled(subject, node, modes);
    stats_.RecordLatencyNs(MonotonicNowNs() - start);
    return decision;
  }
  return CheckUnsampled(subject, node, modes);
}

void ReferenceMonitor::ApplyAuditAvailability(Decision* decision) {
  if (!decision->allowed || __builtin_expect(!audit_.SinkTripped(), 1)) {
    return;
  }
  if (audit_.required()) {
    *decision = Decision{false, DenyReason::kAuditUnavailable,
                         "audit sink unavailable and audit is required"};
  } else {
    audit_.CountUnauditedAllow();
  }
}

void ReferenceMonitor::ApplyLockdown(Decision* decision, AccessModeSet modes) {
  // Lockdown is graceful degradation, not a policy change: extend-mode
  // requests (linking new extensions, specializing interfaces) are refused
  // while every other mode keeps its underlying decision. Applied AFTER the
  // cache, exactly like the audit-availability override, so the transient
  // denial is never cached and extends resume the instant lockdown lifts.
  if (!decision->allowed || __builtin_expect(!lockdown_.load(std::memory_order_relaxed), 1)) {
    return;
  }
  if (modes.Contains(AccessMode::kExtend)) {
    *decision = Decision{false, DenyReason::kQuarantined,
                         "monitor lockdown: extend-mode access suspended"};
  }
}

Decision ReferenceMonitor::CheckUnsampled(const Subject& subject, NodeId node,
                                          AccessModeSet modes) {
  Decision decision;
  ShardId domain = DomainOf(node);
  shard_checks_[IsConcreteShard(domain) ? domain : kMonitorShardCount].fetch_add(
      1, std::memory_order_relaxed);
  if (options_.cache_enabled) {
    // The cache clear epoch and the stamps are read (acquire) BEFORE
    // evaluating. If a store mutates mid-evaluation its bump lands after our
    // loads, so the entry we insert carries stamps that are already stale —
    // a future probe re-evaluates. The race costs a redundant evaluation,
    // never a wrong cached decision. The clear epoch makes the same argument
    // against Clear(): an insert that raced a clear either lands before the
    // wipe or refuses (see DecisionCache::Insert).
    uint64_t clear_epoch = cache_.clear_epoch();
    CacheStamps stamps = CurrentStampsFor(domain);
    DecisionCache::CachedDecision cached;
    if (cache_.Lookup(subject, node, modes, stamps, &cached)) {
      decision = Decision{cached.allowed, cached.reason, ""};
    } else {
      // Miss path: compiled tables first (two lookups), interpreted walk
      // only when they are stale or don't cover the input. A compiled
      // decision validated against stamps at least as fresh as ours, so
      // inserting under our (possibly older) stamps is at worst spuriously
      // stale, never wrongly fresh.
      if (!TryCompiledCheck(subject, node, modes, domain, &decision)) {
        decision = CheckUncached(subject, node, modes);
      }
      cache_.Insert(subject, node, modes, stamps,
                    DecisionCache::CachedDecision{decision.allowed, decision.reason},
                    clear_epoch);
    }
  } else if (!TryCompiledCheck(subject, node, modes, domain, &decision)) {
    decision = CheckUncached(subject, node, modes);
  }
  // After the cache on purpose: the cache keeps the underlying decision, the
  // availability and lockdown overrides apply only to this call.
  ApplyAuditAvailability(&decision);
  ApplyLockdown(&decision, modes);
  Audit(subject, node, "", modes, decision);
  return decision;
}

void ReferenceMonitor::CheckBatch(const BatchCheckRequest* requests, size_t n, Decision* out) {
  if (n == 0) {
    return;
  }
  // One clear-epoch read and at most one stamp read *per validity domain*
  // per batch (a batch routed onto one monitor shard reads exactly one
  // shard-local stamp set — the MediationRing's shard-affine routing exists
  // to make that the common case). Sound for the same reason as the per-call
  // read-stamps-then-evaluate order: a store mutating after this read bumps
  // its stamp, so entries inserted below carry stamps that are already
  // stale — a redundant future re-evaluation, never a wrong cached decision.
  uint64_t clear_epoch = options_.cache_enabled ? cache_.clear_epoch() : 0;
  std::array<CacheStamps, kMonitorShardCount + 1> domain_stamps;
  std::array<bool, kMonitorShardCount + 1> have_stamps{};
  MonitorStats::BatchCounts counts;
  std::vector<AuditRecord> pending;   // retained records awaiting one RecordBatch
  uint64_t counted_checks = 0;        // decisions the policy discards
  uint64_t counted_denials = 0;
  for (size_t i = 0; i < n; ++i) {
    // Flush earlier items' retained records BEFORE this item's fail-closed
    // probe: a sink trip their emission causes must be visible to this
    // item. This is what makes audit_required per-request, not per-batch;
    // under the default denials-only policy an all-allow batch never
    // flushes here and keeps full amortization.
    if (!pending.empty()) {
      audit_.RecordBatch(std::move(pending));
      pending.clear();
    }
    const BatchCheckRequest& req = requests[i];
    Decision& decision = out[i];
    ShardId domain = DomainOf(req.node);
    size_t di = IsConcreteShard(domain) ? domain : kMonitorShardCount;
    shard_checks_[di].fetch_add(1, std::memory_order_relaxed);
    if (options_.cache_enabled) {
      if (!have_stamps[di]) {
        domain_stamps[di] = CurrentStampsFor(domain);
        have_stamps[di] = true;
      }
      const CacheStamps& stamps = domain_stamps[di];
      DecisionCache::CachedDecision cached;
      if (cache_.Lookup(req.subject, req.node, req.modes, stamps, &cached)) {
        decision = Decision{cached.allowed, cached.reason, ""};
      } else {
        if (!TryCompiledCheck(req.subject, req.node, req.modes, domain, &decision)) {
          decision = CheckUncached(req.subject, req.node, req.modes);
        }
        cache_.Insert(req.subject, req.node, req.modes, stamps,
                      DecisionCache::CachedDecision{decision.allowed, decision.reason},
                      clear_epoch);
      }
    } else if (!TryCompiledCheck(req.subject, req.node, req.modes, domain, &decision)) {
      decision = CheckUncached(req.subject, req.node, req.modes);
    }
    // After the cache, per request, like CheckUnsampled.
    ApplyAuditAvailability(&decision);
    ApplyLockdown(&decision, req.modes);
    if (options_.stats_enabled) {
      counts.Add(req.modes, decision.allowed ? DenyReason::kNone : decision.reason);
    }
    if (audit_.WouldRetain(decision.allowed)) {
      AuditRecord record;
      record.principal = req.subject.principal;
      record.thread_id = req.subject.thread_id;
      record.node = req.node;
      record.path = name_space_->PathOf(req.node);
      record.modes = req.modes;
      record.allowed = decision.allowed;
      record.reason = decision.reason;
      record.detail = decision.detail;
      pending.push_back(std::move(record));
    } else {
      ++counted_checks;
      if (!decision.allowed) {
        ++counted_denials;
      }
    }
  }
  if (!pending.empty()) {
    audit_.RecordBatch(std::move(pending));
  }
  audit_.CountBatch(counted_checks, counted_denials);
  if (options_.stats_enabled) {
    stats_.RecordBatch(counts);
  }
}

bool ReferenceMonitor::TryCompiledCheck(const Subject& subject, NodeId node, AccessModeSet modes,
                                        ShardId domain, Decision* out) {
  if (!options_.compiled_enabled) {
    return false;
  }
  std::shared_ptr<const CompiledPolicy> tables;
  {
    std::shared_lock<std::shared_mutex> lock(compiled_mu_);
    tables = compiled_;
  }
  // Validate AFTER copying the pointer: the stamps are read fresh, so a
  // match proves the tables describe the stores as of this instant (any
  // later mutation will bump a stamp and divert the next probe). Only the
  // target node's domain entry is compared — a mutation confined to another
  // shard bumps only that shard's stamps, so it neither diverts this probe
  // nor forces a recompile (the F16 invalidation-storm fix).
  if (tables == nullptr ||
      !(tables->stamps().ForDomain(domain) == CurrentStampsFor(domain))) {
    compiled_stale_.fetch_add(1, std::memory_order_relaxed);
    RequestRecompile();
    return false;
  }
  if (tables->Evaluate(subject, node, modes, *labels_, out)) {
    compiled_hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  compiled_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  if (options_.mac_enabled && tables->dominance() != nullptr &&
      tables->dominance()->IdOf(subject.security_class) < 0) {
    // This subject's class missed the matrix; intern it next compile so the
    // fallback is one-shot per class, not per check.
    NoteUncoveredClass(subject.security_class);
  }
  RequestRecompile();
  return false;
}

void ReferenceMonitor::NoteUncoveredClass(const SecurityClass& cls) {
  std::lock_guard<std::mutex> lock(uncovered_mu_);
  if (uncovered_classes_.size() >= kMaxUncoveredClasses) {
    return;
  }
  for (const SecurityClass& existing : uncovered_classes_) {
    if (existing == cls) {
      return;
    }
  }
  uncovered_classes_.push_back(cls);
}

StatusOr<std::shared_ptr<const CompiledPolicy>> ReferenceMonitor::BuildCompiled(
    const ShardStampSet& stamps, const std::vector<SecurityClass>& extra) {
  CompiledPolicyConfig config;
  config.dac_enabled = options_.dac_enabled;
  config.mac_enabled = options_.mac_enabled;
  config.flow = options_.flow;
  config.max_classes = options_.compiled_max_classes;
  config.max_dac_cells = options_.compiled_max_dac_cells;
  return CompiledPolicy::Build(*name_space_, *acls_, *principals_, *labels_, config, stamps,
                               extra);
}

Status ReferenceMonitor::RecompileOnce() {
  // Serialized: two interleaved builds could otherwise install in either
  // order, and the one that snapshotted the uncovered-class queue earlier
  // would drop classes the other had already interned.
  std::lock_guard<std::mutex> exec_lock(recompile_exec_mu_);
  // Every build carries the previously interned extras forward and adds the
  // newly queued ones, so a class stays interned once noted.
  std::vector<SecurityClass> extra = interned_extra_;
  {
    std::lock_guard<std::mutex> lock(uncovered_mu_);
    for (const SecurityClass& cls : uncovered_classes_) {
      if (std::find(extra.begin(), extra.end(), cls) == extra.end()) {
        extra.push_back(cls);
      }
    }
  }
  // Same bound as the queue itself: when churn exceeds it, the oldest
  // carried classes fall back to one-shot re-noting instead of growing the
  // tables without limit.
  if (extra.size() > kMaxUncoveredClasses) {
    extra.erase(extra.begin(), extra.end() - kMaxUncoveredClasses);
  }
  ShardStampSet before = CurrentStampSet();
  auto built = BuildCompiled(before, extra);
  if (!built.ok()) {
    failed_recompiles_.fetch_add(1, std::memory_order_relaxed);
    return built.status();
  }
  // Install only if no mutation committed during the build: every mutator
  // bumps its stamp inside the store's exclusive lock, so equal before/after
  // stamps prove the per-store reads composed into a consistent snapshot.
  if (!(CurrentStampSet() == before)) {
    failed_recompiles_.fetch_add(1, std::memory_order_relaxed);
    return FailedPreconditionError("policy mutated during compilation");
  }
  {
    std::unique_lock<std::shared_mutex> lock(compiled_mu_);
    compiled_ = std::move(*built);
  }
  interned_extra_ = extra;
  {
    // Drain exactly what this build interned; classes noted mid-build stay
    // queued for the next one.
    std::lock_guard<std::mutex> lock(uncovered_mu_);
    uncovered_classes_.erase(
        std::remove_if(uncovered_classes_.begin(), uncovered_classes_.end(),
                       [&](const SecurityClass& cls) {
                         return std::find(extra.begin(), extra.end(), cls) != extra.end();
                       }),
        uncovered_classes_.end());
  }
  recompiles_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status ReferenceMonitor::RecompileNow() {
  Status last = OkStatus();
  for (int attempt = 0; attempt < 4; ++attempt) {
    last = RecompileOnce();
    if (last.ok() || last.code() != StatusCode::kFailedPrecondition) {
      return last;
    }
  }
  return last;
}

void ReferenceMonitor::RequestRecompile() {
  std::lock_guard<std::mutex> lock(recompile_mu_);
  if (recompile_shutdown_) {
    return;
  }
  if (!recompile_thread_.joinable()) {
    recompile_thread_ = std::thread([this] { RecompileLoop(); });
  }
  recompile_pending_ = true;
  recompile_cv_.notify_one();
}

void ReferenceMonitor::RecompileLoop() {
  std::unique_lock<std::mutex> lock(recompile_mu_);
  for (;;) {
    recompile_cv_.wait(lock, [this] { return recompile_pending_ || recompile_shutdown_; });
    if (recompile_shutdown_) {
      return;
    }
    recompile_pending_ = false;
    lock.unlock();
    // Failures (caps, injected faults, racing mutations) leave the previous
    // tables in place; the next miss re-requests. Never blocks a mutator.
    (void)RecompileOnce();
    lock.lock();
  }
}

void ReferenceMonitor::NotePolicyReload() {
  policy_epoch_.fetch_add(1, std::memory_order_release);
  RequestRecompile();
}

ReferenceMonitor::CompiledCounters ReferenceMonitor::compiled_counters() const {
  CompiledCounters counters;
  counters.hits = compiled_hits_.load(std::memory_order_relaxed);
  counters.fallbacks = compiled_fallbacks_.load(std::memory_order_relaxed);
  counters.stale = compiled_stale_.load(std::memory_order_relaxed);
  counters.recompiles = recompiles_.load(std::memory_order_relaxed);
  counters.failed_recompiles = failed_recompiles_.load(std::memory_order_relaxed);
  return counters;
}

std::shared_ptr<const CompiledPolicy> ReferenceMonitor::compiled_snapshot() const {
  std::shared_lock<std::shared_mutex> lock(compiled_mu_);
  return compiled_;
}

Decision ReferenceMonitor::CheckFloating(Subject* subject, NodeId node, AccessModeSet modes) {
  Decision decision = Check(*subject, node, modes);
  if (decision.allowed && options_.mac_enabled &&
      modes.Intersects(AccessMode::kRead | AccessMode::kList | AccessMode::kExecute)) {
    subject->security_class = subject->security_class.Join(EffectiveLabel(node));
  }
  return decision;
}

Decision ReferenceMonitor::CheckPath(const Subject& subject, std::string_view path,
                                     AccessModeSet modes, NodeId* resolved) {
  if (options_.stats_enabled && stats_.ShouldSampleLatency()) {
    uint64_t start = MonotonicNowNs();
    Decision decision = CheckPathUnsampled(subject, path, modes, resolved);
    stats_.RecordLatencyNs(MonotonicNowNs() - start);
    return decision;
  }
  return CheckPathUnsampled(subject, path, modes, resolved);
}

Decision ReferenceMonitor::CheckPathUnsampled(const Subject& subject, std::string_view path,
                                              AccessModeSet modes, NodeId* resolved) {
  auto components = ParsePath(path);
  if (!components.ok()) {
    Decision decision{false, DenyReason::kNotFound, components.status().message()};
    Audit(subject, NodeId{}, std::string(path), modes, decision);
    return decision;
  }
  NodeId cur = name_space_->root();
  for (const std::string& component : *components) {
    if (options_.check_traversal) {
      Decision step = Check(subject, cur, AccessMode::kList);
      if (!step.allowed) {
        Decision decision{false, DenyReason::kTraversal,
                          StrFormat("denied while resolving '%s': %s",
                                    name_space_->PathOf(cur).c_str(), step.detail.c_str())};
        Audit(subject, cur, std::string(path), modes, decision);
        return decision;
      }
    }
    auto child = name_space_->Child(cur, component);
    if (!child.ok()) {
      Decision decision{false, DenyReason::kNotFound, child.status().message()};
      Audit(subject, cur, std::string(path), modes, decision);
      return decision;
    }
    cur = *child;
  }
  if (resolved != nullptr) {
    *resolved = cur;
  }
  return Check(subject, cur, modes);
}

std::string ReferenceMonitor::Explain(const Subject& subject, NodeId node,
                                      AccessModeSet modes) const {
  const Node* n = name_space_->Get(node);
  if (n == nullptr) {
    return "node does not exist\n";
  }
  std::string out;
  const Principal* who = principals_->Get(subject.principal);
  out += StrFormat("subject : %s at %s\n", who != nullptr ? who->name.c_str() : "?",
                   labels_->ClassToString(subject.security_class).c_str());
  const Principal* owner = principals_->Get(n->owner);
  out += StrFormat("object  : %s (%s, owner %s)\n", name_space_->PathOf(node).c_str(),
                   std::string(NodeKindName(n->kind)).c_str(),
                   owner != nullptr ? owner->name.c_str() : "?");
  out += StrFormat("request : %s\n", modes.ToString().c_str());

  if (!options_.dac_enabled) {
    out += "DAC     : disabled\n";
  } else {
    if (subject.principal == n->owner) {
      out += "DAC     : subject owns the object (administrate implicit)\n";
    }
    // Find the governing ACL and say where it came from.
    const Node* cursor = n;
    while (cursor->acl_ref == kNoRef && cursor->id != name_space_->root()) {
      cursor = name_space_->Get(cursor->parent);
    }
    if (cursor->acl_ref == kNoRef) {
      out += "DAC     : no ACL anywhere up the tree -> everything denied\n";
    } else {
      const Acl* acl = acls_->Get(cursor->acl_ref);
      out += StrFormat("DAC     : governed by the ACL on %s%s\n",
                       name_space_->PathOf(cursor->id).c_str(),
                       cursor->id == node ? "" : " (inherited)");
      std::shared_ptr<const DynamicBitset> closure = principals_->Closure(subject.principal);
      AccessModeSet allowed, denied;
      for (const AclEntry& entry : acl->entries()) {
        bool matches = closure->Test(entry.who.value);
        const Principal* p = principals_->Get(entry.who);
        out += StrFormat("          %s %s %s%s\n",
                         entry.type == AclEntryType::kAllow ? "allow" : "deny ",
                         p != nullptr ? p->name.c_str() : "?",
                         entry.modes.ToString().c_str(),
                         matches ? "   <- matches this subject" : "");
        if (matches) {
          (entry.type == AclEntryType::kAllow ? allowed : denied) |= entry.modes;
        }
      }
      AccessModeSet effective = allowed - denied;
      out += StrFormat("          effective modes: %s -> %s\n", effective.ToString().c_str(),
                       effective.ContainsAll(modes) ? "granted" : "NOT granted");
    }
  }

  if (!options_.mac_enabled) {
    out += "MAC     : disabled\n";
  } else {
    SecurityClass label = EffectiveLabel(node);
    out += StrFormat("MAC     : object label %s\n", labels_->ClassToString(label).c_str());
    FlowVerdict verdict = flow_.Check(subject.security_class, label, modes);
    if (verdict.allowed) {
      out += "          flow rules satisfied\n";
    } else {
      out += StrFormat("          %s violates flow (%s)\n",
                       std::string(AccessModeName(*verdict.violating_mode)).c_str(),
                       subject.security_class.Dominates(label)
                           ? "object must dominate subject for this mode"
                           : "subject does not dominate the object's label");
    }
  }
  return out;
}

bool ReferenceMonitor::HasAdministrate(const Subject& subject, NodeId node) const {
  NameSpace::SecuritySnapshot snap;
  if (!name_space_->SnapshotSecurity(node, &snap)) {
    return false;
  }
  if (subject.principal == snap.owner) {
    return true;
  }
  // Re-check without caching/auditing: administration is rare, so the plain
  // path is fine.
  return CheckUncached(subject, node, AccessMode::kAdministrate).allowed;
}

Status ReferenceMonitor::SetNodeAcl(const Subject& subject, NodeId node, Acl acl) {
  NameSpace::SecuritySnapshot snap;
  if (!name_space_->SnapshotSecurity(node, &snap)) {
    return NotFoundError("node does not exist");
  }
  if (!HasAdministrate(subject, node)) {
    Audit(subject, node, "", AccessMode::kAdministrate,
          Decision{false, DenyReason::kNotAuthorized, "set-acl without administrate"});
    return PermissionDeniedError(
        StrFormat("no administrate access on '%s'", name_space_->PathOf(node).c_str()));
  }
  if (snap.own_acl_ref == kNoRef) {
    // Tag (and intern) the fresh ACL under the node's shard, so later edits
    // to it bump only that shard's stamp domain.
    AclStore::AclRef ref = acls_->Create(std::move(acl), snap.shard);
    return name_space_->SetAclRef(node, ref);
  }
  return acls_->Replace(snap.own_acl_ref, std::move(acl));
}

Status ReferenceMonitor::AddAclEntry(const Subject& subject, NodeId node, const AclEntry& entry) {
  NameSpace::SecuritySnapshot snap;
  if (!name_space_->SnapshotSecurity(node, &snap)) {
    return NotFoundError("node does not exist");
  }
  if (!HasAdministrate(subject, node)) {
    Audit(subject, node, "", AccessMode::kAdministrate,
          Decision{false, DenyReason::kNotAuthorized, "add-acl-entry without administrate"});
    return PermissionDeniedError(
        StrFormat("no administrate access on '%s'", name_space_->PathOf(node).c_str()));
  }
  if (snap.own_acl_ref == kNoRef) {
    // Copy-down: start the node's own ACL from its effective (inherited) one
    // so adding an entry refines rather than replaces the inherited policy.
    Acl base;
    if (snap.effective_acl_ref != kNoRef) {
      (void)acls_->CopyAcl(snap.effective_acl_ref, &base);
    }
    base.AddEntry(entry);
    AclStore::AclRef ref = acls_->Create(std::move(base), snap.shard);
    return name_space_->SetAclRef(node, ref);
  }
  return acls_->AddEntry(snap.own_acl_ref, entry);
}

Status ReferenceMonitor::RemoveAclEntriesFor(const Subject& subject, NodeId node,
                                             PrincipalId who) {
  NameSpace::SecuritySnapshot snap;
  if (!name_space_->SnapshotSecurity(node, &snap)) {
    return NotFoundError("node does not exist");
  }
  if (!HasAdministrate(subject, node)) {
    Audit(subject, node, "", AccessMode::kAdministrate,
          Decision{false, DenyReason::kNotAuthorized, "remove-acl-entries without administrate"});
    return PermissionDeniedError(
        StrFormat("no administrate access on '%s'", name_space_->PathOf(node).c_str()));
  }
  if (snap.own_acl_ref == kNoRef) {
    return OkStatus();  // only an inherited ACL; nothing of this node's to edit
  }
  return acls_->RemoveEntriesFor(snap.own_acl_ref, who);
}

Status ReferenceMonitor::SetNodeLabel(const Subject& subject, NodeId node,
                                      const SecurityClass& label) {
  NameSpace::SecuritySnapshot snap;
  if (!name_space_->SnapshotSecurity(node, &snap)) {
    return NotFoundError("node does not exist");
  }
  bool officer = security_officer_.valid() && subject.principal == security_officer_;
  if (!officer) {
    if (!HasAdministrate(subject, node)) {
      Audit(subject, node, "", AccessMode::kAdministrate,
            Decision{false, DenyReason::kNotAuthorized, "set-label without administrate"});
      return PermissionDeniedError(
          StrFormat("no administrate access on '%s'", name_space_->PathOf(node).c_str()));
    }
    if (options_.mac_enabled) {
      SecurityClass current = EffectiveLabel(node);
      bool sees_current = subject.security_class.Dominates(current);
      bool assigns_own_class = label == subject.security_class;
      if (!sees_current || !assigns_own_class) {
        Audit(subject, node, "", AccessMode::kAdministrate,
              Decision{false, DenyReason::kMacFlow, "relabel violates information flow"});
        return PermissionDeniedError("relabel violates information flow");
      }
    }
  }
  if (snap.own_label_ref == kNoRef) {
    LabelAuthority::LabelRef ref = labels_->StoreLabel(label);
    labels_->AttachShard(ref, snap.shard);
    return name_space_->SetLabelRef(node, ref);
  }
  return labels_->ReplaceLabel(snap.own_label_ref, label);
}

Status ReferenceMonitor::SetOwner(const Subject& subject, NodeId node, PrincipalId new_owner) {
  NameSpace::SecuritySnapshot snap;
  if (!name_space_->SnapshotSecurity(node, &snap)) {
    return NotFoundError("node does not exist");
  }
  if (!HasAdministrate(subject, node)) {
    return PermissionDeniedError(
        StrFormat("no administrate access on '%s'", name_space_->PathOf(node).c_str()));
  }
  if (principals_->Get(new_owner) == nullptr) {
    return NotFoundError("new owner does not exist");
  }
  return name_space_->SetOwner(node, new_owner);
}

}  // namespace xsec
