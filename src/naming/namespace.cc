#include "src/naming/namespace.h"

#include <mutex>

#include "src/base/strings.h"

namespace xsec {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDirectory:
      return "directory";
    case NodeKind::kService:
      return "service";
    case NodeKind::kInterface:
      return "interface";
    case NodeKind::kObject:
      return "object";
    case NodeKind::kProcedure:
      return "procedure";
    case NodeKind::kFile:
      return "file";
  }
  return "unknown";
}

bool KindAllowsChildren(NodeKind kind) {
  return kind != NodeKind::kProcedure && kind != NodeKind::kFile;
}

NameSpace::NameSpace() {
  Node root;
  root.id = NodeId{0};
  root.parent = NodeId{0};
  root.kind = NodeKind::kDirectory;
  root.name = "";
  nodes_.push_back(std::move(root));
}

Node* NameSpace::GetMutableLocked(NodeId id) {
  if (id.value >= nodes_.size() || !nodes_[id.value].alive) {
    return nullptr;
  }
  return &nodes_[id.value];
}

const Node* NameSpace::GetLocked(NodeId id) const {
  if (id.value >= nodes_.size() || !nodes_[id.value].alive) {
    return nullptr;
  }
  return &nodes_[id.value];
}

const Node* NameSpace::Get(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetLocked(id);
}

void NameSpace::Touch(Node& node) {
  ++node.generation;
  // Release: the mutation this stamp publishes happened-before any reader
  // that observes the new generation value.
  global_generation_.fetch_add(1, std::memory_order_release);
}

StatusOr<NodeId> NameSpace::BindLocked(NodeId parent, std::string_view name, NodeKind kind,
                                       PrincipalId owner) {
  Node* p = GetMutableLocked(parent);
  if (p == nullptr) {
    return NotFoundError("parent node does not exist");
  }
  if (!KindAllowsChildren(p->kind)) {
    return FailedPreconditionError(
        StrFormat("node '%s' is a %s and cannot have children", PathOfLocked(parent).c_str(),
                  std::string(NodeKindName(p->kind)).c_str()));
  }
  if (!IsValidComponent(name)) {
    return InvalidArgumentError(StrFormat("invalid name '%s'", std::string(name).c_str()));
  }
  if (p->children.find(name) != p->children.end()) {
    return AlreadyExistsError(
        StrFormat("'%s' already exists under '%s'", std::string(name).c_str(),
                  PathOfLocked(parent).c_str()));
  }
  NodeId id{static_cast<uint32_t>(nodes_.size())};
  Node child;
  child.id = id;
  child.parent = parent;
  child.kind = kind;
  child.name = std::string(name);
  child.owner = owner;
  nodes_.push_back(std::move(child));
  p->children.emplace(std::string(name), id);
  Touch(*p);
  return id;
}

StatusOr<NodeId> NameSpace::Bind(NodeId parent, std::string_view name, NodeKind kind,
                                 PrincipalId owner) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return BindLocked(parent, name, kind, owner);
}

StatusOr<NodeId> NameSpace::BindPath(std::string_view path, NodeKind kind, PrincipalId owner) {
  auto components = ParsePath(path);
  if (!components.ok()) {
    return components.status();
  }
  if (components->empty()) {
    return InvalidArgumentError("cannot bind the root");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  NodeId cur = root();
  for (size_t i = 0; i + 1 < components->size(); ++i) {
    auto child = ChildLocked(cur, (*components)[i]);
    if (child.ok()) {
      cur = *child;
      continue;
    }
    auto made = BindLocked(cur, (*components)[i], NodeKind::kDirectory, owner);
    if (!made.ok()) {
      return made.status();
    }
    cur = *made;
  }
  return BindLocked(cur, components->back(), kind, owner);
}

Status NameSpace::Unbind(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node* n = GetMutableLocked(node);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  if (node == root()) {
    return FailedPreconditionError("cannot unbind the root");
  }
  if (!n->children.empty()) {
    return FailedPreconditionError(
        StrFormat("'%s' still has %zu children", PathOfLocked(node).c_str(), n->children.size()));
  }
  Node& parent = nodes_[n->parent.value];
  parent.children.erase(n->name);
  n->alive = false;
  Touch(parent);
  Touch(*n);
  return OkStatus();
}

StatusOr<NodeId> NameSpace::ChildLocked(NodeId parent, std::string_view name) const {
  const Node* p = GetLocked(parent);
  if (p == nullptr) {
    return NotFoundError("parent node does not exist");
  }
  auto it = p->children.find(name);
  if (it == p->children.end()) {
    return NotFoundError(StrFormat("'%s' has no child '%s'", PathOfLocked(parent).c_str(),
                                   std::string(name).c_str()));
  }
  return it->second;
}

StatusOr<NodeId> NameSpace::Child(NodeId parent, std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ChildLocked(parent, name);
}

StatusOr<NodeId> NameSpace::Lookup(std::string_view path) const {
  return LookupWithAncestors(path, nullptr);
}

StatusOr<NodeId> NameSpace::LookupWithAncestors(std::string_view path,
                                                std::vector<NodeId>* ancestors) const {
  auto components = ParsePath(path);
  if (!components.ok()) {
    return components.status();
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  NodeId cur = root();
  for (const std::string& component : *components) {
    if (ancestors != nullptr) {
      ancestors->push_back(cur);
    }
    auto next = ChildLocked(cur, component);
    if (!next.ok()) {
      return next.status();
    }
    cur = *next;
  }
  return cur;
}

StatusOr<std::vector<NodeId>> NameSpace::List(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Node* n = GetLocked(node);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  std::vector<NodeId> out;
  out.reserve(n->children.size());
  for (const auto& [name, id] : n->children) {
    out.push_back(id);
  }
  return out;
}

bool NameSpace::SnapshotSecurity(NodeId id, SecuritySnapshot* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Node* n = GetLocked(id);
  if (n == nullptr) {
    return false;
  }
  out->owner = n->owner;
  out->own_acl_ref = n->acl_ref;
  out->own_label_ref = n->label_ref;
  out->effective_acl_ref = kNoRef;
  out->effective_label_ref = kNoRef;
  // Ancestors of a live node are always alive (only leaves can be unbound),
  // so the walk needs no liveness checks.
  const Node* cur = n;
  while (true) {
    if (out->effective_acl_ref == kNoRef && cur->acl_ref != kNoRef) {
      out->effective_acl_ref = cur->acl_ref;
    }
    if (out->effective_label_ref == kNoRef && cur->label_ref != kNoRef) {
      out->effective_label_ref = cur->label_ref;
    }
    if ((out->effective_acl_ref != kNoRef && out->effective_label_ref != kNoRef) ||
        cur->id == root()) {
      break;
    }
    cur = &nodes_[cur->parent.value];
  }
  return true;
}

std::string NameSpace::PathOfLocked(NodeId id) const {
  const Node* n = GetLocked(id);
  if (n == nullptr) {
    return "<dead>";
  }
  if (id == root()) {
    return "/";
  }
  std::vector<const Node*> chain;
  while (n->id != root()) {
    chain.push_back(n);
    n = &nodes_[n->parent.value];
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out += '/';
    out += (*it)->name;
  }
  return out;
}

std::string NameSpace::PathOf(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return PathOfLocked(id);
}

size_t NameSpace::node_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return nodes_.size();
}

Status NameSpace::SetAclRef(NodeId id, uint32_t acl_ref) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node* n = GetMutableLocked(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->acl_ref = acl_ref;
  Touch(*n);
  return OkStatus();
}

Status NameSpace::SetLabelRef(NodeId id, uint32_t label_ref) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node* n = GetMutableLocked(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->label_ref = label_ref;
  Touch(*n);
  return OkStatus();
}

Status NameSpace::SetOwner(NodeId id, PrincipalId owner) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node* n = GetMutableLocked(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->owner = owner;
  Touch(*n);
  return OkStatus();
}

}  // namespace xsec
