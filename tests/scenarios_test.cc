#include "src/core/scenarios.h"

#include <gtest/gtest.h>

#include <map>

namespace xsec {
namespace {

// The expected T1 matrix (experiment T1; see EXPERIMENTS.md). Each row pins
// which models handle a scenario. Any change to a model or scenario that
// shifts a cell must be deliberate and re-reviewed.
struct ExpectedRow {
  std::string scenario;
  // Model name -> handled?
  std::map<std::string, bool> handled;
};

const std::vector<ExpectedRow>& ExpectedMatrix() {
  static const std::vector<ExpectedRow> kMatrix = {
      {"S1",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", true}, {"afs", true}, {"unix", true}, {"nt", true}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
      {"S2",
       {{"none", false}, {"inferno", false}, {"java-sandbox", true}, {"spin-domains", false}, {"vino", true}, {"afs", true}, {"unix", true}, {"nt", true}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
      {"S3",
       {{"none", true}, {"inferno", true}, {"java-sandbox", false}, {"spin-domains", true}, {"vino", true}, {"afs", true}, {"unix", true}, {"nt", true}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
      {"S4",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", false}, {"afs", false}, {"unix", true}, {"nt", true}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
      {"S5",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", false}, {"afs", false}, {"unix", false}, {"nt", false}, {"xsec-dac", false}, {"xsec-dac+mac", true}}},
      {"S6",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", true}, {"afs", false}, {"unix", true}, {"nt", true}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
      {"S7",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", false}, {"afs", true}, {"unix", false}, {"nt", true}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
      {"S8",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", false}, {"afs", false}, {"unix", false}, {"nt", false}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
      {"S9",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", false}, {"afs", false}, {"unix", false}, {"nt", false}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
      {"S10",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", false}, {"afs", false}, {"unix", false}, {"nt", false}, {"xsec-dac", false}, {"xsec-dac+mac", true}}},
      {"S11",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", false}, {"afs", false}, {"unix", false}, {"nt", false}, {"xsec-dac", false}, {"xsec-dac+mac", true}}},
      {"S12",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", false}, {"afs", false}, {"unix", false}, {"nt", false}, {"xsec-dac", false}, {"xsec-dac+mac", true}}},
      {"S13",
       {{"none", false}, {"inferno", false}, {"java-sandbox", false}, {"spin-domains", false}, {"vino", true}, {"afs", true}, {"unix", true}, {"nt", true}, {"xsec-dac", true}, {"xsec-dac+mac", true}}},
  };
  return kMatrix;
}

TEST(ScenariosTest, ThirteenScenariosExist) {
  auto scenarios = BuildScenarios();
  EXPECT_EQ(scenarios.size(), 13u);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].id, "S" + std::to_string(i + 1));
    EXPECT_FALSE(scenarios[i].title.empty());
    EXPECT_FALSE(scenarios[i].paper_ref.empty());
    EXPECT_FALSE(scenarios[i].probes.empty());
  }
}

TEST(ScenariosTest, ModelSetOrderIsWeakestFirst) {
  ModelSet models;
  ASSERT_EQ(models.all().size(), 10u);
  EXPECT_EQ(models.all().front()->name(), "none");
  EXPECT_EQ(models.all()[1]->name(), "inferno");
  EXPECT_EQ(models.all()[4]->name(), "vino");
  EXPECT_EQ(models.all().back()->name(), "xsec-dac+mac");
}

TEST(ScenariosTest, MatrixMatchesExpectation) {
  ModelSet models;
  auto scenarios = BuildScenarios();
  const auto& expected = ExpectedMatrix();
  ASSERT_EQ(scenarios.size(), expected.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_EQ(scenarios[i].id, expected[i].scenario);
    for (const ProtectionModel* model : models.all()) {
      ScenarioResult result = RunScenario(scenarios[i], *model);
      auto it = expected[i].handled.find(std::string(model->name()));
      ASSERT_NE(it, expected[i].handled.end()) << model->name();
      EXPECT_EQ(result.handled, it->second)
          << scenarios[i].id << " under " << model->name() << ": "
          << (result.failed_probe_notes.empty() ? "no notes"
                                                : result.failed_probe_notes.front());
    }
  }
}

TEST(ScenariosTest, FullModelHandlesEverythingPerfectly) {
  ModelSet models;
  const ProtectionModel* full = models.all().back();
  for (const Scenario& scenario : BuildScenarios()) {
    ScenarioResult result = RunScenario(scenario, *full);
    EXPECT_TRUE(result.handled) << scenario.id;
    EXPECT_EQ(result.security_failures, 0) << scenario.id;
    EXPECT_EQ(result.functionality_failures, 0) << scenario.id;
  }
}

TEST(ScenariosTest, HandledCountsAreMonotoneTowardFullModel) {
  ModelSet models;
  auto scenarios = BuildScenarios();
  // Count per model.
  std::map<std::string, int> counts;
  for (const ProtectionModel* model : models.all()) {
    for (const Scenario& scenario : scenarios) {
      counts[std::string(model->name())] += RunScenario(scenario, *model).handled ? 1 : 0;
    }
  }
  EXPECT_EQ(counts["none"], 1);
  EXPECT_EQ(counts["inferno"], 1);
  EXPECT_EQ(counts["java-sandbox"], 1);
  EXPECT_EQ(counts["spin-domains"], 1);
  EXPECT_EQ(counts["vino"], 5);
  EXPECT_EQ(counts["afs"], 5);
  EXPECT_EQ(counts["unix"], 6);
  EXPECT_EQ(counts["nt"], 7);
  EXPECT_EQ(counts["xsec-dac"], 9);
  EXPECT_EQ(counts["xsec-dac+mac"], 13);
}

TEST(ScenariosTest, NoModelExceptFullHandlesTheMacScenarios) {
  ModelSet models;
  auto scenarios = BuildScenarios();
  for (const Scenario& scenario : scenarios) {
    if (scenario.id != "S5" && scenario.id != "S10" && scenario.id != "S11" &&
        scenario.id != "S12") {
      continue;
    }
    for (const ProtectionModel* model : models.all()) {
      bool handled = RunScenario(scenario, *model).handled;
      EXPECT_EQ(handled, model->name() == "xsec-dac+mac")
          << scenario.id << " under " << model->name();
    }
  }
}

TEST(ScenariosTest, FailureNotesNameTheProbe) {
  ModelSet models;
  auto scenarios = BuildScenarios();
  ScenarioResult result = RunScenario(scenarios[0], *models.all()[0]);  // S1 / none
  ASSERT_FALSE(result.handled);
  ASSERT_FALSE(result.failed_probe_notes.empty());
  EXPECT_NE(result.failed_probe_notes[0].find("S1"), std::string::npos);
  EXPECT_NE(result.failed_probe_notes[0].find("remote"), std::string::npos);
}

}  // namespace
}  // namespace xsec
