# Empty dependencies file for xsec_core_tests.
# This may be replaced when dependencies are built.
