// Cooperative-cancellation helper for handler and extension authors.
//
// Cancellation in xsec is cooperative (MODEL.md §11–§12): a caller's
// deadline or cancel flag takes effect only where code polls
// CallContext::CheckDeadline. The kernel polls at its own mediation points
// (invoke entry, between broadcast handlers), but a handler that scans a
// big directory or copies a large file between those points must poll
// itself — and polling two atomics on every loop iteration is wasteful in
// tight loops. CooperativeBudget amortizes the poll: Charge(units) accounts
// work done and consults CheckDeadline only when the running total crosses
// a poll_every boundary.
//
//   StatusOr<Value> Handler(CallContext& ctx) {
//     CooperativeBudget budget(&ctx, /*poll_every=*/256);
//     for (const auto& entry : huge_table) {
//       XSEC_RETURN_IF_ERROR(budget.Charge());   // kCancelled mid-scan
//       Process(entry);
//     }
//     ...
//   }
//
// Pick units that match the work: one per directory entry, one per byte for
// copies (with poll_every sized in KB), one per packet for filters. With a
// null call (trusted internal use, no deadline to honor) Charge never fails
// and costs one branch.

#ifndef XSEC_SRC_EXTSYS_COOPERATIVE_BUDGET_H_
#define XSEC_SRC_EXTSYS_COOPERATIVE_BUDGET_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/extsys/extension.h"

namespace xsec {

class CooperativeBudget {
 public:
  explicit CooperativeBudget(const CallContext* call, uint64_t poll_every = 256)
      : call_(call), poll_every_(poll_every == 0 ? 1 : poll_every) {}

  // Accounts `units` of work. Each time the running total advances
  // poll_every past the last poll, returns the call's CheckDeadline verdict
  // (kCancelled when the flag is set, kDeadlineExceeded past the deadline);
  // otherwise OK.
  Status Charge(uint64_t units = 1) {
    consumed_ += units;
    if (call_ != nullptr && consumed_ - polled_at_ >= poll_every_) {
      polled_at_ = consumed_;
      return call_->CheckDeadline();
    }
    return OkStatus();
  }

  uint64_t consumed() const { return consumed_; }

 private:
  const CallContext* call_;
  uint64_t poll_every_;
  uint64_t consumed_ = 0;
  uint64_t polled_at_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_EXTSYS_COOPERATIVE_BUDGET_H_
