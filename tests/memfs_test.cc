#include "src/services/memfs.h"

#include <gtest/gtest.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

class MemFsTest : public ::testing::Test {
 protected:
  MemFsTest() {
    alice_ = *sys_.CreateUser("alice");
    bob_ = *sys_.CreateUser("bob");
    // A home directory alice fully controls.
    NodeId home = *sys_.name_space().BindPath("/fs/home", NodeKind::kDirectory, alice_);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, alice_, AccessModeSet::All()});
    (void)sys_.name_space().SetAclRef(home, sys_.kernel().acls().Create(std::move(acl)));
    alice_subject_ = sys_.Login(alice_, sys_.labels().Bottom());
    bob_subject_ = sys_.Login(bob_, sys_.labels().Bottom());
  }

  SecureSystem sys_;
  PrincipalId alice_, bob_;
  Subject alice_subject_, bob_subject_;
};

TEST_F(MemFsTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(sys_.fs().Create(alice_subject_, "/fs/home/notes").ok());
  ASSERT_TRUE(sys_.fs().Write(alice_subject_, "/fs/home/notes", Bytes("hello")).ok());
  auto data = sys_.fs().Read(alice_subject_, "/fs/home/notes");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("hello"));
  auto size = sys_.fs().Stat(alice_subject_, "/fs/home/notes");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5);
}

TEST_F(MemFsTest, CreateRequiresWriteOnParent) {
  EXPECT_EQ(sys_.fs().Create(bob_subject_, "/fs/home/intruder").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.fs().Create(alice_subject_, "/fs/stranger/notes").status().code(),
            StatusCode::kNotFound);
}

TEST_F(MemFsTest, ReadRequiresReadAccess) {
  ASSERT_TRUE(sys_.fs().Create(alice_subject_, "/fs/home/secret").ok());
  EXPECT_EQ(sys_.fs().Read(bob_subject_, "/fs/home/secret").status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(MemFsTest, AppendConcatenates) {
  ASSERT_TRUE(sys_.fs().Create(alice_subject_, "/fs/home/log").ok());
  ASSERT_TRUE(sys_.fs().Append(alice_subject_, "/fs/home/log", Bytes("a")).ok());
  ASSERT_TRUE(sys_.fs().Append(alice_subject_, "/fs/home/log", Bytes("b")).ok());
  EXPECT_EQ(*sys_.fs().Read(alice_subject_, "/fs/home/log"), Bytes("ab"));
}

TEST_F(MemFsTest, AppendOnlyGrantAllowsAppendButNotOverwrite) {
  ASSERT_TRUE(sys_.fs().Create(alice_subject_, "/fs/home/dropbox").ok());
  NodeId node = *sys_.name_space().Lookup("/fs/home/dropbox");
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, alice_, AccessModeSet::All()});
  acl.AddEntry({AclEntryType::kAllow, bob_, AccessModeSet(AccessMode::kWriteAppend)});
  (void)sys_.name_space().SetAclRef(node, sys_.kernel().acls().Create(std::move(acl)));
  // bob needs list on /fs/home to resolve the path at all; grant it.
  NodeId home = *sys_.name_space().Lookup("/fs/home");
  (void)sys_.monitor().AddAclEntry(alice_subject_, home,
                                   {AclEntryType::kAllow, bob_,
                                    AccessModeSet(AccessMode::kList)});

  EXPECT_TRUE(sys_.fs().Append(bob_subject_, "/fs/home/dropbox", Bytes("x")).ok());
  EXPECT_EQ(sys_.fs().Write(bob_subject_, "/fs/home/dropbox", Bytes("y")).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.fs().Read(bob_subject_, "/fs/home/dropbox").status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(MemFsTest, RemoveRequiresDeleteAndParentWrite) {
  ASSERT_TRUE(sys_.fs().Create(alice_subject_, "/fs/home/junk").ok());
  EXPECT_EQ(sys_.fs().Remove(bob_subject_, "/fs/home/junk").code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(sys_.fs().Remove(alice_subject_, "/fs/home/junk").ok());
  EXPECT_EQ(sys_.fs().Read(alice_subject_, "/fs/home/junk").status().code(),
            StatusCode::kNotFound);
}

TEST_F(MemFsTest, MkDirAndList) {
  ASSERT_TRUE(sys_.fs().MkDir(alice_subject_, "/fs/home/sub").ok());
  ASSERT_TRUE(sys_.fs().Create(alice_subject_, "/fs/home/sub/f1").ok());
  ASSERT_TRUE(sys_.fs().Create(alice_subject_, "/fs/home/sub/f2").ok());
  auto names = sys_.fs().ListDir(alice_subject_, "/fs/home/sub");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"f1", "f2"}));
}

TEST_F(MemFsTest, OperationsOutsideMountRejected) {
  EXPECT_EQ(sys_.fs().Read(alice_subject_, "/obj/syslog").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys_.fs().Create(alice_subject_, "/etc/passwd").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MemFsTest, KindMismatchIsReported) {
  ASSERT_TRUE(sys_.fs().MkDir(alice_subject_, "/fs/home/dir").ok());
  EXPECT_EQ(sys_.fs().Read(alice_subject_, "/fs/home/dir").status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sys_.fs().Create(alice_subject_, "/fs/home/file").ok());
  EXPECT_EQ(sys_.fs().ListDir(alice_subject_, "/fs/home/file").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MemFsTest, MacLabelOnDirectoryConfinesFiles) {
  (void)sys_.labels().DefineLevels({"low", "high"});
  NodeId home = *sys_.name_space().Lookup("/fs/home");
  SecurityClass high = *sys_.labels().MakeClass("high", {});
  (void)sys_.name_space().SetLabelRef(home, sys_.labels().StoreLabel(high));
  Subject alice_low = sys_.Login(alice_, sys_.labels().Bottom());
  Subject alice_high = sys_.Login(alice_, high);
  // Low subject cannot even create (write on parent is a flow violation).
  EXPECT_EQ(sys_.fs().Create(alice_low, "/fs/home/low-file").status().code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(sys_.fs().Create(alice_high, "/fs/home/high-file").ok());
  ASSERT_TRUE(sys_.fs().Write(alice_high, "/fs/home/high-file", Bytes("top")).ok());
  // The file inherits the directory's label: low reads are denied.
  EXPECT_EQ(sys_.fs().Read(alice_low, "/fs/home/high-file").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(*sys_.fs().Read(alice_high, "/fs/home/high-file"), Bytes("top"));
}

TEST_F(MemFsTest, ProceduresExposeSameSemantics) {
  // Drive the same behaviour through /svc/fs/* procedure calls.
  auto created = sys_.Invoke(alice_subject_, "/svc/fs/create",
                             {Value{std::string("/fs/home/via-proc")}});
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(sys_.Invoke(alice_subject_, "/svc/fs/write",
                          {Value{std::string("/fs/home/via-proc")}, Value{Bytes("data")}})
                  .ok());
  auto read = sys_.Invoke(alice_subject_, "/svc/fs/read",
                          {Value{std::string("/fs/home/via-proc")}});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::get<std::vector<uint8_t>>(*read), Bytes("data"));
  auto size = sys_.Invoke(alice_subject_, "/svc/fs/stat",
                          {Value{std::string("/fs/home/via-proc")}});
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(std::get<int64_t>(*size), 4);
  // And denial propagates as a status.
  EXPECT_EQ(sys_.Invoke(bob_subject_, "/svc/fs/read",
                        {Value{std::string("/fs/home/via-proc")}})
                .status()
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(MemFsTest, CreateFileAsSystemBypassesChecksForSetup) {
  auto node = sys_.fs().CreateFileAsSystem("/fs/seed/data", Bytes("seed"));
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(sys_.fs().file_count(), 1u);
  EXPECT_FALSE(sys_.fs().CreateFileAsSystem("/outside/x", {}).ok());
}

}  // namespace
}  // namespace xsec
