#include "src/baselines/xsec_model.h"

namespace xsec {
namespace {

bool AceMatches(const BaselineAce& ace, const BaselineSubject& subject) {
  if (ace.is_group) {
    return subject.gids.count(ace.id) != 0;
  }
  return subject.uid == ace.id;
}

}  // namespace

bool XsecDacModel::Allows(const BaselineWorld& world, const BaselineSubject& subject,
                          const BaselineObject& object, AccessMode mode) const {
  (void)world;
  // Owners implicitly hold administrate (the bootstrap rule, as in the full
  // reference monitor).
  if (mode == AccessMode::kAdministrate && subject.uid == object.owner_uid) {
    return true;
  }
  bool allowed = false;
  for (const BaselineAce& ace : object.acl) {
    if (!AceMatches(ace, subject) || !ace.modes.Contains(mode)) {
      continue;
    }
    if (!ace.allow) {
      return false;  // deny-overrides
    }
    allowed = true;
  }
  return allowed;
}

bool XsecFullModel::Allows(const BaselineWorld& world, const BaselineSubject& subject,
                           const BaselineObject& object, AccessMode mode) const {
  if (!dac_.Allows(world, subject, object, mode)) {
    return false;
  }
  return flow_.ModeAllowed(subject.security_class, object.security_class, mode);
}

}  // namespace xsec
