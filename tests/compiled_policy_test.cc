// Compiled-policy unit tests: deterministic equivalence against the
// interpreted path, epoch/staleness behavior, fallback coverage, the
// policy-reload invalidation regression, and DominanceMatrix properties.
// The randomized end-to-end oracle lives in tests/diff_fuzz_test.cc.

#include "src/monitor/compiled_policy.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/base/failpoint.h"
#include "src/base/rng.h"
#include "src/extsys/kernel.h"
#include "src/monitor/reference_monitor.h"
#include "src/policy/policy_io.h"

namespace xsec {
namespace {

class CompiledPolicyTest : public ::testing::Test {
 protected:
  CompiledPolicyTest() { Boot(MonitorOptions{}); }

  void Boot(MonitorOptions options) {
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_, options);
    if (!booted_) {
      alice_ = *principals_.CreateUser("alice");
      bob_ = *principals_.CreateUser("bob");
      staff_ = *principals_.CreateGroup("staff");
      (void)principals_.AddMember(staff_, alice_);
      (void)labels_.DefineLevels({"low", "high"});
      (void)labels_.DefineCategory("a");
      (void)labels_.DefineCategory("b");
      dir_ = *ns_.BindPath("/d", NodeKind::kDirectory, alice_);
      sub_ = *ns_.BindPath("/d/sub", NodeKind::kDirectory, alice_);
      obj_ = *ns_.BindPath("/d/sub/obj", NodeKind::kFile, alice_);
      Acl acl;
      acl.AddEntry({AclEntryType::kAllow, staff_, AccessMode::kRead | AccessMode::kList});
      acl.AddEntry({AclEntryType::kAllow, bob_, AccessModeSet(AccessMode::kRead)});
      acl.AddEntry({AclEntryType::kDeny, bob_, AccessModeSet(AccessMode::kWrite)});
      (void)ns_.SetAclRef(dir_, acls_.Create(std::move(acl)));
      high_ = *labels_.MakeClass("high", {"a"});
      (void)ns_.SetLabelRef(sub_, labels_.StoreLabel(high_));
      booted_ = true;
    }
  }

  SecurityClass Cls(TrustLevel level, std::initializer_list<size_t> cats = {}) {
    CategorySet set(2);
    for (size_t c : cats) {
      set.Set(c);
    }
    return SecurityClass(level, std::move(set));
  }

  // Asserts the compiled tables cover (subject, node, modes) and decide
  // exactly — allowed, reason, AND detail — what the interpreter decides.
  void ExpectCompiledEquals(const Subject& subject, NodeId node, AccessModeSet modes) {
    Decision interpreted = monitor_->CheckInterpreted(subject, node, modes);
    Decision compiled;
    ASSERT_TRUE(monitor_->TryCompiledCheck(subject, node, modes, &compiled))
        << "compiled tables did not cover the input";
    EXPECT_EQ(compiled.allowed, interpreted.allowed);
    EXPECT_EQ(compiled.reason, interpreted.reason);
    EXPECT_EQ(compiled.detail, interpreted.detail);
  }

  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  bool booted_ = false;
  PrincipalId alice_, bob_, staff_;
  NodeId dir_, sub_, obj_;
  SecurityClass high_;
};

TEST_F(CompiledPolicyTest, CompiledMatchesInterpretedAcrossFixture) {
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  const SecurityClass classes[] = {Cls(0), Cls(1, {0}), Cls(1, {0, 1}), high_};
  const AccessModeSet mode_sets[] = {
      AccessModeSet(AccessMode::kRead),
      AccessMode::kRead | AccessMode::kWrite,
      AccessModeSet(AccessMode::kAdministrate),
      AccessMode::kList | AccessMode::kExecute,
      AccessModeSet(AccessMode::kWriteAppend),
      AccessMode::kRead | AccessMode::kWrite | AccessMode::kDelete,
      AccessModeSet(),
  };
  for (PrincipalId p : {alice_, bob_, staff_}) {
    for (const SecurityClass& cls : classes) {
      for (NodeId node : {dir_, sub_, obj_}) {
        for (AccessModeSet modes : mode_sets) {
          SCOPED_TRACE(testing::Message() << "p=" << p.value << " node=" << node.value
                                          << " modes=" << modes.ToString());
          ExpectCompiledEquals(Subject{p, cls, 1}, node, modes);
        }
      }
    }
  }
}

TEST_F(CompiledPolicyTest, OwnerAdministrateCarveOutMatches) {
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  // alice owns obj_, which has no matching administrate grant: the owner
  // carve-out must allow her and deny bob, identically on both paths.
  ExpectCompiledEquals(Subject{alice_, Cls(1, {0}), 1}, obj_,
                       AccessModeSet(AccessMode::kAdministrate));
  ExpectCompiledEquals(Subject{bob_, Cls(1, {0}), 1}, obj_,
                       AccessModeSet(AccessMode::kAdministrate));
}

TEST_F(CompiledPolicyTest, UnknownNodeDecidedNotFound) {
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  for (NodeId node : {NodeId{9999}, NodeId{}}) {
    Decision compiled;
    ASSERT_TRUE(monitor_->TryCompiledCheck(Subject{bob_, Cls(0), 1}, node,
                                           AccessModeSet(AccessMode::kRead), &compiled));
    EXPECT_FALSE(compiled.allowed);
    EXPECT_EQ(compiled.reason, DenyReason::kNotFound);
    EXPECT_EQ(compiled.detail, "node does not exist");
  }
}

TEST_F(CompiledPolicyTest, MutationStalenessFallsBackThenRecovers) {
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  Decision decision;
  ASSERT_TRUE(monitor_->TryCompiledCheck(Subject{bob_, Cls(0), 1}, obj_,
                                         AccessModeSet(AccessMode::kRead), &decision));

  // Any policy mutation makes the tables stale at the next probe.
  (void)acls_.AddEntry(0, {AclEntryType::kDeny, bob_, AccessModeSet(AccessMode::kRead)});
  uint64_t stale_before = monitor_->compiled_counters().stale;
  EXPECT_FALSE(monitor_->TryCompiledCheck(Subject{bob_, Cls(0), 1}, obj_,
                                          AccessModeSet(AccessMode::kRead), &decision));
  EXPECT_GT(monitor_->compiled_counters().stale, stale_before);

  // Check() stays correct throughout (interpreted fallback)...
  EXPECT_FALSE(monitor_->Check(Subject{bob_, Cls(0), 1}, obj_,
                               AccessModeSet(AccessMode::kRead)).allowed);
  // ...and a recompile restores coverage with the new policy baked in.
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  ExpectCompiledEquals(Subject{bob_, Cls(0), 1}, obj_, AccessModeSet(AccessMode::kRead));
}

TEST_F(CompiledPolicyTest, NewPrincipalFallsBackUntilRecompile) {
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  // CreateUser bumps no stamp, so the tables remain "fresh" but must refuse
  // to decide for the new id rather than guess.
  PrincipalId carol = *principals_.CreateUser("carol");
  Decision decision;
  uint64_t fallbacks_before = monitor_->compiled_counters().fallbacks;
  EXPECT_FALSE(monitor_->TryCompiledCheck(Subject{carol, Cls(0), 1}, obj_,
                                          AccessModeSet(AccessMode::kRead), &decision));
  EXPECT_GT(monitor_->compiled_counters().fallbacks, fallbacks_before);
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  ExpectCompiledEquals(Subject{carol, Cls(0), 1}, obj_, AccessModeSet(AccessMode::kRead));
}

TEST_F(CompiledPolicyTest, UninternedSubjectClassConvergesAfterRecompile) {
  Boot(MonitorOptions{});  // fresh monitor, fresh uncovered-class queue
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  // A class no label or clearance mentions: first probe falls back (and
  // queues the class); the next compile interns it.
  CategorySet odd(7);
  odd.Set(1);
  SecurityClass fresh(0, std::move(odd));
  Decision decision;
  EXPECT_FALSE(monitor_->TryCompiledCheck(Subject{bob_, fresh, 1}, obj_,
                                          AccessModeSet(AccessMode::kRead), &decision));
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  ExpectCompiledEquals(Subject{bob_, fresh, 1}, obj_, AccessModeSet(AccessMode::kRead));
}

TEST_F(CompiledPolicyTest, CompiledDisabledNeverCovers) {
  MonitorOptions options;
  options.compiled_enabled = false;
  Boot(options);
  ASSERT_TRUE(monitor_->RecompileNow().ok());  // builds and installs...
  Decision decision;
  // ...but the check path never consults it.
  EXPECT_FALSE(monitor_->TryCompiledCheck(Subject{bob_, Cls(0), 1}, obj_,
                                          AccessModeSet(AccessMode::kRead), &decision));
  EXPECT_FALSE(monitor_->Check(Subject{bob_, Cls(0), 1}, obj_,
                               AccessModeSet(AccessMode::kWrite)).allowed);
}

TEST_F(CompiledPolicyTest, DacCellCapFailsBuildAndStaysInterpreted) {
  MonitorOptions options;
  options.compiled_max_dac_cells = 1;  // any real store exceeds this
  Boot(options);
  Status status = monitor_->RecompileNow();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status.ToString();
  EXPECT_GT(monitor_->compiled_counters().failed_recompiles, 0u);
  EXPECT_EQ(monitor_->compiled_snapshot(), nullptr);
  // Checks are unaffected: interpreted path serves everything.
  EXPECT_FALSE(monitor_->Check(Subject{bob_, Cls(0), 1}, obj_,
                               AccessModeSet(AccessMode::kWrite)).allowed);
}

TEST_F(CompiledPolicyTest, RecompileFailpointDegradesToInterpreted) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("monitor.recompile", "error=resource-exhausted").ok());
  Status status = monitor_->RecompileNow();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(monitor_->compiled_snapshot(), nullptr);
  EXPECT_TRUE(monitor_->Check(Subject{bob_, Cls(0), 1}, dir_,
                              AccessModeSet(AccessMode::kRead)).allowed);
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  EXPECT_NE(monitor_->compiled_snapshot(), nullptr);
}

TEST_F(CompiledPolicyTest, CheckUsesCompiledTablesOnMiss) {
  MonitorOptions options;
  options.cache_enabled = false;  // every Check is a miss
  Boot(options);
  ASSERT_TRUE(monitor_->RecompileNow().ok());
  uint64_t hits_before = monitor_->compiled_counters().hits;
  Decision via_check = monitor_->Check(Subject{bob_, Cls(0), 1}, dir_,
                                       AccessModeSet(AccessMode::kRead));
  Decision interpreted = monitor_->CheckInterpreted(Subject{bob_, Cls(0), 1}, dir_,
                                                    AccessModeSet(AccessMode::kRead));
  EXPECT_GT(monitor_->compiled_counters().hits, hits_before);
  EXPECT_EQ(via_check.allowed, interpreted.allowed);
  EXPECT_EQ(via_check.reason, interpreted.reason);
}

TEST_F(CompiledPolicyTest, AsyncRecompileEventuallyInstalls) {
  // A miss with no tables requests an async build; poll for the install.
  (void)monitor_->Check(Subject{bob_, Cls(0), 1}, dir_, AccessModeSet(AccessMode::kRead));
  for (int i = 0; i < 500 && monitor_->compiled_snapshot() == nullptr; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_NE(monitor_->compiled_snapshot(), nullptr);
  ExpectCompiledEquals(Subject{bob_, Cls(0), 1}, dir_, AccessModeSet(AccessMode::kRead));
}

// -- Satellite regression: policy reload must invalidate cached decisions ----

TEST(CompiledPolicyReloadTest, ReloadInvalidatesCachedAllowsAndCompiledTables) {
  Kernel kernel;
  constexpr std::string_view kAllow =
      "xsec-policy v1\n"
      "user alice\n"
      "user bob\n"
      "node /fs/doc file alice\n"
      "acl /fs/doc allow bob read\n";
  ASSERT_TRUE(LoadPolicy(kAllow, &kernel).ok());
  NodeId doc = *kernel.name_space().Lookup("/fs/doc");
  PrincipalId bob = *kernel.principals().FindByName("bob");
  Subject subject{bob, SecurityClass(), 1};

  ASSERT_TRUE(kernel.monitor().RecompileNow().ok());
  // Prime both the decision cache and the compiled tables with the allow.
  ASSERT_TRUE(kernel.monitor().Check(subject, doc, AccessModeSet(AccessMode::kRead)).allowed);
  ASSERT_TRUE(kernel.monitor().Check(subject, doc, AccessModeSet(AccessMode::kRead)).allowed);

  uint64_t epoch_before = kernel.monitor().policy_epoch();
  constexpr std::string_view kRevoke =
      "xsec-policy v1\n"
      "node /fs/doc file alice\n"
      "acl /fs/doc none\n";
  ASSERT_TRUE(LoadPolicy(kRevoke, &kernel).ok());
  EXPECT_GT(kernel.monitor().policy_epoch(), epoch_before);

  // The cached allow must not survive the reload.
  Decision after = kernel.monitor().Check(subject, doc, AccessModeSet(AccessMode::kRead));
  EXPECT_FALSE(after.allowed);
  EXPECT_EQ(after.reason, DenyReason::kDacNoGrant);
}

TEST(CompiledPolicyReloadTest, ReloadWithNoStoreMutationStillInvalidates) {
  // An officer-only reload bumps no store generation — only the policy epoch
  // protects the cache here. The regression this pins: such a reload must
  // still force re-evaluation (observable as a cache miss, not a hit).
  Kernel kernel;
  constexpr std::string_view kBase =
      "xsec-policy v1\n"
      "user alice\n"
      "user bob\n"
      "node /fs/doc file alice\n"
      "acl /fs/doc allow bob read\n";
  ASSERT_TRUE(LoadPolicy(kBase, &kernel).ok());
  NodeId doc = *kernel.name_space().Lookup("/fs/doc");
  PrincipalId bob = *kernel.principals().FindByName("bob");
  Subject subject{bob, SecurityClass(), 1};
  ASSERT_TRUE(kernel.monitor().Check(subject, doc, AccessModeSet(AccessMode::kRead)).allowed);

  constexpr std::string_view kOfficerOnly =
      "xsec-policy v1\n"
      "officer alice\n";
  ASSERT_TRUE(LoadPolicy(kOfficerOnly, &kernel).ok());

  uint64_t misses_before = kernel.monitor().cache().misses();
  ASSERT_TRUE(kernel.monitor().Check(subject, doc, AccessModeSet(AccessMode::kRead)).allowed);
  EXPECT_GT(kernel.monitor().cache().misses(), misses_before)
      << "reload did not invalidate the cached decision";
}

TEST(CompiledPolicyReloadTest, LoadPolicyFileInvalidatesToo) {
  // Same regression through the durable-file path: an allow cached before
  // LoadPolicyFile must not survive a file whose policy revokes it.
  std::string path = testing::TempDir() + "/xsec_reload_policy.txt";
  {
    Kernel revoked;
    constexpr std::string_view kRevoke =
        "xsec-policy v1\n"
        "user alice\n"
        "user bob\n"
        "node /fs/doc file alice\n"
        "acl /fs/doc deny bob read\n";
    ASSERT_TRUE(LoadPolicy(kRevoke, &revoked).ok());
    ASSERT_TRUE(SavePolicyFile(revoked, path).ok());
  }
  Kernel kernel;
  constexpr std::string_view kAllow =
      "xsec-policy v1\n"
      "user alice\n"
      "user bob\n"
      "node /fs/doc file alice\n"
      "acl /fs/doc allow bob read\n";
  ASSERT_TRUE(LoadPolicy(kAllow, &kernel).ok());
  NodeId doc = *kernel.name_space().Lookup("/fs/doc");
  PrincipalId bob = *kernel.principals().FindByName("bob");
  Subject subject{bob, SecurityClass(), 1};
  ASSERT_TRUE(kernel.monitor().Check(subject, doc, AccessModeSet(AccessMode::kRead)).allowed);

  ASSERT_TRUE(LoadPolicyFile(path, &kernel, nullptr).ok());
  Decision after = kernel.monitor().Check(subject, doc, AccessModeSet(AccessMode::kRead));
  EXPECT_FALSE(after.allowed);
  EXPECT_EQ(after.reason, DenyReason::kDacExplicitDeny);
}

// -- DominanceMatrix properties ----------------------------------------------

SecurityClass RandomClass(Rng& rng, size_t levels, size_t categories) {
  // Random capacity at or above the category count: equal classes with
  // different bitset capacities must intern to one id.
  CategorySet set(categories + rng.NextBelow(3));
  for (size_t c = 0; c < categories; ++c) {
    if (rng.NextBool(1, 2)) {
      set.Set(c);
    }
  }
  return SecurityClass(static_cast<TrustLevel>(rng.NextBelow(levels)), std::move(set));
}

TEST(CompiledPolicyDominance, MatrixBitsMatchSecurityClassDominates) {
  Rng rng(0xd0d0);
  std::vector<SecurityClass> classes;
  for (int i = 0; i < 40; ++i) {
    classes.push_back(RandomClass(rng, 4, 6));
  }
  DominanceMatrix matrix(classes);
  const auto& interned = matrix.classes();
  for (uint32_t i = 0; i < interned.size(); ++i) {
    for (uint32_t j = 0; j < interned.size(); ++j) {
      EXPECT_EQ(matrix.Dominates(i, j), interned[i].Dominates(interned[j]))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(CompiledPolicyDominance, EqualClassesWithDifferentCapacityShareOneId) {
  CategorySet narrow(2);
  narrow.Set(1);
  CategorySet wide(9);
  wide.Set(1);
  SecurityClass a(1, std::move(narrow));
  SecurityClass b(1, std::move(wide));
  ASSERT_EQ(a, b);
  DominanceMatrix matrix({a, b});
  EXPECT_EQ(matrix.size(), 1u);
  EXPECT_EQ(matrix.IdOf(a), matrix.IdOf(b));
  // Empty-category classes at one level likewise collapse.
  DominanceMatrix empties({SecurityClass(0, CategorySet(0)), SecurityClass(0, CategorySet(5))});
  EXPECT_EQ(empties.size(), 1u);
}

TEST(CompiledPolicyDominance, MutualDominanceIsIdEquality) {
  // Antisymmetry on the interned set: the dedup guarantees mutual dominance
  // can only hold on the diagonal (the S = O cells the flow truth table
  // keys administrate and strict-write decisions off).
  Rng rng(0xfade);
  std::vector<SecurityClass> classes;
  for (int i = 0; i < 60; ++i) {
    classes.push_back(RandomClass(rng, 3, 5));
  }
  DominanceMatrix matrix(classes);
  for (uint32_t i = 0; i < matrix.size(); ++i) {
    for (uint32_t j = 0; j < matrix.size(); ++j) {
      if (matrix.Dominates(i, j) && matrix.Dominates(j, i)) {
        EXPECT_EQ(i, j);
        EXPECT_FALSE(matrix.classes()[i].StrictlyDominates(matrix.classes()[j]));
        EXPECT_FALSE(matrix.classes()[i].IncomparableWith(matrix.classes()[j]));
      }
    }
  }
}

TEST(CompiledPolicyDominance, FlowMaskAgreesWithInterpretedModeAllowed) {
  Rng rng(0xf10b);
  for (bool strict : {true, false}) {
    FlowPolicyOptions options;
    options.write_up_requires_append = strict;
    FlowPolicy flow(options);
    for (int trial = 0; trial < 200; ++trial) {
      SecurityClass s = RandomClass(rng, 3, 4);
      SecurityClass o = RandomClass(rng, 3, 4);
      AccessModeSet mask = FlowAllowedMask(s.Dominates(o), o.Dominates(s), options);
      for (size_t bit = 0; bit < kAccessModeCount; ++bit) {
        AccessMode mode = static_cast<AccessMode>(uint32_t{1} << bit);
        EXPECT_EQ(mask.Contains(mode), flow.ModeAllowed(s, o, mode))
            << "strict=" << strict << " mode bit " << bit;
      }
    }
  }
}

TEST(CompiledPolicyDominance, CompileDominanceInternsLabelsClearancesExtremaAndJoins) {
  LabelAuthority labels;
  ASSERT_TRUE(labels.DefineLevels({"l0", "l1", "l2"}).ok());
  (void)labels.DefineCategory("a");
  (void)labels.DefineCategory("b");
  SecurityClass la = *labels.MakeClass("l1", {"a"});
  SecurityClass lb = *labels.MakeClass("l0", {"b"});
  (void)labels.StoreLabel(la);
  (void)labels.StoreLabel(lb);
  labels.SetClearance(7, *labels.MakeClass("l2", {"a"}));

  auto matrix = labels.CompileDominance(64);
  ASSERT_NE(matrix, nullptr);
  EXPECT_GE(matrix->IdOf(labels.Bottom()), 0);
  EXPECT_GE(matrix->IdOf(labels.Top()), 0);
  EXPECT_GE(matrix->IdOf(la), 0);
  EXPECT_GE(matrix->IdOf(lb), 0);
  EXPECT_GE(matrix->IdOf(*labels.MakeClass("l2", {"a"})), 0);
  // Joins of interned classes are interned (floating-subject coverage).
  EXPECT_GE(matrix->IdOf(la.Join(lb)), 0);
  // Over-cap compiles refuse rather than truncate the base set.
  EXPECT_EQ(labels.CompileDominance(1), nullptr);
}

}  // namespace
}  // namespace xsec
