#include "src/services/vfs.h"

#include "src/base/failpoint.h"
#include "src/base/strings.h"

namespace xsec {

VfsService::VfsService(Kernel* kernel, std::string service_path)
    : kernel_(kernel), service_path_(std::move(service_path)) {}

std::string VfsService::TypeInterfacePath(std::string_view type_name) const {
  return StrFormat("%s/types/%s", service_path_.c_str(), std::string(type_name).c_str());
}

Status VfsService::Install() {
  PrincipalId system = kernel_->system_principal();
  auto svc = kernel_->RegisterService(service_path_, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto types_dir =
      kernel_->name_space().BindPath(JoinPath(service_path_, "types"), NodeKind::kDirectory,
                                     system);
  if (!types_dir.ok()) {
    return types_dir.status();
  }
  auto proc = [this, system](std::string_view name, HandlerFn fn) -> Status {
    auto p = kernel_->RegisterProcedure(JoinPath(service_path_, name), system, std::move(fn));
    return p.ok() ? OkStatus() : p.status();
  };

  // Each forwarded operation is one bounded work unit: poll the caller's
  // deadline/cancel flags at handler entry so a withdrawn call never starts
  // the dispatch (RaiseEvent re-polls between broadcast handlers).
  XSEC_RETURN_IF_ERROR(proc("read", [this](CallContext& ctx) -> StatusOr<Value> {
    XSEC_RETURN_IF_ERROR(ctx.CheckDeadline());
    auto type = ArgString(ctx.args, 0);
    auto path = ArgString(ctx.args, 1);
    if (!type.ok()) {
      return type.status();
    }
    if (!path.ok()) {
      return path.status();
    }
    auto data = Read(*ctx.subject, *type, *path);
    if (!data.ok()) {
      return data.status();
    }
    return Value{std::move(*data)};
  }));
  XSEC_RETURN_IF_ERROR(proc("write", [this](CallContext& ctx) -> StatusOr<Value> {
    XSEC_RETURN_IF_ERROR(ctx.CheckDeadline());
    auto type = ArgString(ctx.args, 0);
    auto path = ArgString(ctx.args, 1);
    auto data = ArgBytes(ctx.args, 2);
    if (!type.ok()) {
      return type.status();
    }
    if (!path.ok()) {
      return path.status();
    }
    if (!data.ok()) {
      return data.status();
    }
    XSEC_RETURN_IF_ERROR(Write(*ctx.subject, *type, *path, std::move(*data)));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("list", [this](CallContext& ctx) -> StatusOr<Value> {
    XSEC_RETURN_IF_ERROR(ctx.CheckDeadline());
    auto type = ArgString(ctx.args, 0);
    auto path = ArgString(ctx.args, 1);
    if (!type.ok()) {
      return type.status();
    }
    if (!path.ok()) {
      return path.status();
    }
    auto names = ListDir(*ctx.subject, *type, *path);
    if (!names.ok()) {
      return names.status();
    }
    return Value{std::move(*names)};
  }));
  return OkStatus();
}

StatusOr<NodeId> VfsService::CreateFsType(std::string_view type_name, PrincipalId owner) {
  return kernel_->RegisterInterface(TypeInterfacePath(type_name), owner);
}

StatusOr<Value> VfsService::Forward(Subject& subject, std::string_view type, Args args) {
  // Fault site for the whole forwarding layer: every Read/Write/ListDir
  // convenience wrapper funnels through here.
  XSEC_FAILPOINT("vfs.forward");
  // The general interface forwards to the type's extension point; the
  // dispatcher picks the right extension for this caller's class.
  return kernel_->RaiseEvent(subject, TypeInterfacePath(type), std::move(args),
                             DispatchMode::kClassSelected);
}

StatusOr<std::vector<uint8_t>> VfsService::Read(Subject& subject, std::string_view type,
                                                std::string_view path) {
  auto result = Forward(subject, type, Args{Value{std::string("read")},
                                            Value{std::string(path)}});
  if (!result.ok()) {
    return result.status();
  }
  auto* bytes = std::get_if<std::vector<uint8_t>>(&*result);
  if (bytes == nullptr) {
    return InternalError("file-system extension returned a non-bytes value for read");
  }
  return std::move(*bytes);
}

Status VfsService::Write(Subject& subject, std::string_view type, std::string_view path,
                         std::vector<uint8_t> data) {
  auto result = Forward(subject, type,
                        Args{Value{std::string("write")}, Value{std::string(path)},
                             Value{std::move(data)}});
  return result.ok() ? OkStatus() : result.status();
}

StatusOr<std::string> VfsService::ListDir(Subject& subject, std::string_view type,
                                          std::string_view path) {
  auto result = Forward(subject, type, Args{Value{std::string("list")},
                                            Value{std::string(path)}});
  if (!result.ok()) {
    return result.status();
  }
  auto* text = std::get_if<std::string>(&*result);
  if (text == nullptr) {
    return InternalError("file-system extension returned a non-string value for list");
  }
  return std::move(*text);
}

}  // namespace xsec
