#include "src/baselines/vino_model.h"

namespace xsec {

bool VinoModel::Allows(const BaselineWorld& world, const BaselineSubject& subject,
                       const BaselineObject& object, AccessMode mode) const {
  (void)world;
  (void)mode;  // the privilege check is mode-blind
  if (subject.vino_privileged) {
    return true;
  }
  if (object.vino_sensitive) {
    return subject.uid == object.owner_uid;
  }
  return true;
}

}  // namespace xsec
