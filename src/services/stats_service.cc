#include "src/services/stats_service.h"

#include "src/base/strings.h"
#include "src/naming/path.h"

namespace xsec {

StatsService::StatsService(Kernel* kernel, std::string mount_path, std::string service_path)
    : kernel_(kernel),
      mount_path_(std::move(mount_path)),
      service_path_(std::move(service_path)) {}

Status StatsService::MountLeaf(const std::string& relative_path,
                               std::function<std::string()> render) {
  std::string full = JoinPath(mount_path_, relative_path);
  auto node = kernel_->name_space().BindPath(full, NodeKind::kFile,
                                             kernel_->system_principal());
  if (!node.ok()) {
    return node.status();
  }
  values_.emplace(std::move(full), Leaf{*node, std::move(render)});
  return OkStatus();
}

Status StatsService::Install() {
  PrincipalId system = kernel_->system_principal();
  auto mount = kernel_->name_space().BindPath(mount_path_, NodeKind::kDirectory, system);
  if (!mount.ok()) {
    return mount.status();
  }
  // Fail-closed: telemetry reveals who was denied what, so the mount root
  // carries an own ACL (overriding any permissive inherited default) that
  // grants read|list to the system principal only. Administrators widen
  // visibility with ordinary AddAclEntry calls.
  Acl restricted;
  restricted.AddEntry({AclEntryType::kAllow, system, AccessMode::kRead | AccessMode::kList});
  XSEC_RETURN_IF_ERROR(
      kernel_->name_space().SetAclRef(*mount, kernel_->acls().Create(std::move(restricted))));

  ReferenceMonitor* monitor = &kernel_->monitor();
  MonitorStats* stats = &monitor->stats();
  DecisionCache* cache = &monitor->cache();
  AuditLog* audit = &monitor->audit();
  auto count = [](uint64_t v) { return std::to_string(v); };

  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/total", [stats, count] { return count(stats->checks_total()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/allowed", [stats, count] { return count(stats->allowed_total()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/denied", [stats, count] { return count(stats->denied_total()); }));
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode mode = static_cast<AccessMode>(1u << i);
    XSEC_RETURN_IF_ERROR(MountLeaf(
        StrFormat("checks/by-mode/%s", std::string(AccessModeName(mode)).c_str()),
        [stats, count, mode] { return count(stats->by_mode(mode)); }));
  }
  for (size_t r = 1; r < kDenyReasonCount; ++r) {  // skip kNone (that is an allow)
    DenyReason reason = static_cast<DenyReason>(r);
    XSEC_RETURN_IF_ERROR(MountLeaf(
        StrFormat("denials/by-reason/%s", std::string(DenyReasonName(reason)).c_str()),
        [stats, count, reason] { return count(stats->by_reason(reason)); }));
  }
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/hits", [cache, count] { return count(cache->hits()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/misses", [cache, count] { return count(cache->misses()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/stale", [cache, count] { return count(cache->stale_hits()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("cache/hit_rate", [cache] {
    uint64_t hits = cache->hits();
    uint64_t probes = hits + cache->misses();
    return StrFormat("%.6f", probes == 0 ? 0.0
                                         : static_cast<double>(hits) /
                                               static_cast<double>(probes));
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p50", [stats, count] { return count(stats->LatencyQuantileNs(0.50)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p90", [stats, count] { return count(stats->LatencyQuantileNs(0.90)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p99", [stats, count] { return count(stats->LatencyQuantileNs(0.99)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/samples", [stats, count] { return count(stats->latency_samples()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "audit/retained", [audit, count] { return count(audit->records().size()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/dropped", [audit, count] { return count(audit->dropped()); }));

  auto svc = kernel_->RegisterService(service_path_, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto read_node = kernel_->RegisterProcedure(
      JoinPath(service_path_, "read"), system, [this](CallContext& ctx) -> StatusOr<Value> {
        auto path = ArgString(ctx.args, 0);
        if (!path.ok()) {
          return path.status();
        }
        auto value = ReadStat(*ctx.subject, *path);
        if (!value.ok()) {
          return value.status();
        }
        return Value{std::move(*value)};
      });
  if (!read_node.ok()) {
    return read_node.status();
  }
  auto dump_node = kernel_->RegisterProcedure(
      JoinPath(service_path_, "dump"), system, [this](CallContext& ctx) -> StatusOr<Value> {
        auto text = DumpTree(*ctx.subject);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  return dump_node.ok() ? OkStatus() : dump_node.status();
}

StatusOr<std::string> StatsService::ReadStat(Subject& subject, std::string_view path) {
  if (!StartsWith(path, mount_path_ + "/")) {
    return InvalidArgumentError(
        StrFormat("'%s' is outside the stats mount '%s'", std::string(path).c_str(),
                  mount_path_.c_str()));
  }
  auto it = values_.find(std::string(path));
  if (it == values_.end()) {
    return NotFoundError(
        StrFormat("'%s' is not a stats leaf", std::string(path).c_str()));
  }
  Decision decision = kernel_->monitor().Check(subject, it->second.node, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return it->second.render();
}

StatusOr<std::string> StatsService::DumpTree(Subject& subject) {
  std::string out;
  for (const auto& [path, leaf] : values_) {
    if (!kernel_->monitor().Check(subject, leaf.node, AccessMode::kRead).allowed) {
      continue;  // the denial is counted and audited like any other
    }
    out += path + " " + leaf.render() + "\n";
  }
  return out;
}

std::string StatsService::RenderAll() const {
  std::string out;
  for (const auto& [path, leaf] : values_) {
    out += path + " " + leaf.render() + "\n";
  }
  return out;
}

}  // namespace xsec
