# Empty dependencies file for bench_t3_flow.
# This may be replaced when dependencies are built.
