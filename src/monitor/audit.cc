#include "src/monitor/audit.h"

#include <cstdio>
#include <ostream>

#include "src/base/strings.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {

std::string_view DenyReasonName(DenyReason reason) {
  switch (reason) {
    case DenyReason::kNone:
      return "none";
    case DenyReason::kNotFound:
      return "not-found";
    case DenyReason::kTraversal:
      return "traversal";
    case DenyReason::kDacExplicitDeny:
      return "dac-explicit-deny";
    case DenyReason::kDacNoGrant:
      return "dac-no-grant";
    case DenyReason::kMacFlow:
      return "mac-flow";
    case DenyReason::kNotAuthorized:
      return "not-authorized";
  }
  return "unknown";
}

std::string AuditRecord::ToString() const {
  return StrFormat("#%llu p%u/t%llu %s %s -> %s%s%s",
                   static_cast<unsigned long long>(sequence), principal.value,
                   static_cast<unsigned long long>(thread_id), path.c_str(),
                   modes.ToString().c_str(), allowed ? "ALLOW" : "DENY",
                   allowed ? "" : StrFormat(" (%s)", std::string(DenyReasonName(reason)).c_str())
                                      .c_str(),
                   detail.empty() ? "" : StrFormat(" [%s]", detail.c_str()).c_str());
}

std::string AuditRecord::ToJson() const {
  return StrFormat(
      "{\"seq\":%llu,\"principal\":%u,\"thread\":%llu,\"node\":%u,\"path\":\"%s\","
      "\"modes\":\"%s\",\"allowed\":%s,\"reason\":\"%s\",\"detail\":\"%s\"}",
      static_cast<unsigned long long>(sequence), principal.value,
      static_cast<unsigned long long>(thread_id), node.value, JsonEscape(path).c_str(),
      modes.ToString().c_str(), allowed ? "true" : "false",
      std::string(DenyReasonName(reason)).c_str(), JsonEscape(detail).c_str());
}

std::function<void(const AuditRecord&)> MakeNdjsonSink(std::ostream* out) {
  return [out](const AuditRecord& record) { *out << record.ToJson() << '\n'; };
}

NdjsonFileRotator::NdjsonFileRotator(std::string path, NdjsonRotationPolicy policy)
    : path_(std::move(path)), policy_(policy) {}

NdjsonFileRotator::~NdjsonFileRotator() {
  if (out_ != nullptr) {
    std::fclose(out_);
  }
}

Status NdjsonFileRotator::Open() {
  if (out_ != nullptr) {
    std::fclose(out_);
  }
  out_ = std::fopen(path_.c_str(), "w");
  if (out_ == nullptr) {
    return InternalError(StrFormat("cannot open '%s' for writing", path_.c_str()));
  }
  bytes_ = 0;
  opened_at_ns_ = MonotonicNowNs();
  return OkStatus();
}

void NdjsonFileRotator::RotateIfNeeded(size_t next_line_bytes) {
  bool over_size = policy_.max_bytes != 0 && bytes_ != 0 &&
                   bytes_ + next_line_bytes > policy_.max_bytes;
  bool over_age = policy_.max_age_ns != 0 && bytes_ != 0 &&
                  MonotonicNowNs() - opened_at_ns_ >= policy_.max_age_ns;
  if (!over_size && !over_age) {
    return;
  }
  std::fclose(out_);
  out_ = nullptr;
  if (policy_.max_keep > 0) {
    // Shift the history window: drop the oldest, slide the rest up, then
    // move the just-closed file into the .1 position.
    std::remove(StrFormat("%s.%zu", path_.c_str(), policy_.max_keep).c_str());
    for (size_t k = policy_.max_keep; k > 1; --k) {
      std::rename(StrFormat("%s.%zu", path_.c_str(), k - 1).c_str(),
                  StrFormat("%s.%zu", path_.c_str(), k).c_str());
    }
    std::rename(path_.c_str(), StrFormat("%s.1", path_.c_str()).c_str());
  }
  ++rotations_;
  (void)Open();  // max_keep == 0 lands here too: truncate in place
}

void NdjsonFileRotator::Write(const AuditRecord& record) {
  if (out_ == nullptr) {
    return;  // Open() failed or was never called; drop rather than crash
  }
  std::string line = record.ToJson();
  line += '\n';
  RotateIfNeeded(line.size());
  if (out_ == nullptr) {
    return;  // reopen after rotation failed
  }
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
  bytes_ += line.size();
}

std::function<void(const AuditRecord&)> MakeRotatingNdjsonSink(
    std::shared_ptr<NdjsonFileRotator> rotator) {
  return [rotator](const AuditRecord& record) { rotator->Write(record); };
}

void AuditLog::Record(AuditRecord record) {
  Count(record.allowed);
  if (!WouldRetain(record.allowed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = next_sequence_++;
  if (sink_) {
    sink_(record);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else if (capacity_ > 0) {
    // Full: overwrite the oldest record (at head_) and advance.
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AuditLog::set_sink(std::function<void(const AuditRecord&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

template <typename Visit>
void AuditLog::ForEachLocked(Visit visit) const {
  for (size_t i = head_; i < ring_.size(); ++i) {
    visit(ring_[i]);
  }
  for (size_t i = 0; i < head_; ++i) {
    visit(ring_[i]);
  }
}

size_t AuditLog::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<AuditRecord> AuditLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  out.reserve(ring_.size());
  ForEachLocked([&out](const AuditRecord& r) { out.push_back(r); });
  return out;
}

std::vector<AuditRecord> AuditLog::Query(
    const std::function<bool(const AuditRecord&)>& pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  ForEachLocked([&out, &pred](const AuditRecord& r) {
    if (pred(r)) {
      out.push_back(r);
    }
  });
  return out;
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  next_sequence_ = 0;
  total_checks_.store(0, std::memory_order_relaxed);
  total_denials_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace xsec
