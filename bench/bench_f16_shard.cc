// Experiment F16 — sharded stamp domains (DESIGN.md §5, docs/MODEL.md §15).
//
// The global-stamp design pays for rare mutations with total invalidation:
// one ACL edit anywhere evicts every cached decision and stales the compiled
// tables (F8's InvalidationEvery line degrades toward the uncached cost).
// Sharding the validity domain by top-level subtree confines that blast
// radius to one shard. The figure proves it with counters, not timings:
//
//   CrossShardMutationIsolation   mutate subtree A every check, probe subtree
//                                 B — cross_shard_stale must stay 0 while
//                                 other_shard_hits climbs
//   SameShardMutationControl      same loop, mutation and probe in ONE
//                                 subtree — same_shard_stale must be > 0
//                                 (the stamps still invalidate where they must)
//   CheckWithCrossShardMutationEvery/<k>   cached check cost with a mutation
//                                 in a *different* shard every k checks; flat
//                                 across k, unlike F8's InvalidationEvery
//   MillionPrincipalIntern        interning 1M distinct principal names into
//                                 shard-local pools (arena + dense ids);
//                                 interned_names / arena bytes / ns-per-name
//   AclInternSharing              1024 objects sharing one ACL shape per
//                                 shard-local pool — intern_hits proves the
//                                 store deduplicates entry lists
//
// ci/check_bench_f16.py gates the counters (cross-shard staleness exactly 0,
// control > 0, 1M names interned within budget, ACL interning effective).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/shard.h"
#include "src/monitor/reference_monitor.h"
#include "src/principal/intern_pool.h"

namespace xsec {
namespace {

// Two top-level subtrees guaranteed to live in different monitor shards,
// plus one object (with its own shard-tagged ACL) in each.
struct TwoShardFixture {
  TwoShardFixture() {
    MonitorOptions options;
    options.audit_policy = AuditPolicy::kOff;
    monitor = std::make_unique<ReferenceMonitor>(&ns, &acls, &principals, &labels, options);
    user = *principals.CreateUser("u");
    // Scan names until two top-level containers land in different shards
    // (16 shards: a handful of tries suffices for any hash).
    std::string name_a = "a0";
    ShardId shard_a = ShardOfName(name_a);
    std::string name_b;
    for (int i = 0;; ++i) {
      name_b = "b" + std::to_string(i);
      if (ShardOfName(name_b) != shard_a) {
        break;
      }
    }
    obj_a = MakeObject("/" + name_a);
    obj_b = MakeObject("/" + name_b);
    subject = Subject{user, labels.Bottom(), 1};
  }

  NodeId MakeObject(const std::string& top) {
    NodeId node = *ns.BindPath(top + "/obj", NodeKind::kObject, user);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
    AclStore::AclRef ref = acls.Create(std::move(acl), ns.ShardOf(node));
    (void)ns.SetAclRef(node, ref);
    return node;
  }

  // A policy-relevant mutation confined to `node`'s shard.
  void MutateShardOf(NodeId node) { (void)ns.SetOwner(node, user); }

  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  std::unique_ptr<ReferenceMonitor> monitor;
  PrincipalId user;
  NodeId obj_a;
  NodeId obj_b;
  Subject subject;
};

void ShardIsolation(benchmark::State& state, bool cross_shard) {
  TwoShardFixture f;
  NodeId mutated = f.obj_a;
  NodeId probed = cross_shard ? f.obj_b : f.obj_a;
  // Warm the probe's cache entry, then discard warmup counters.
  (void)f.monitor->Check(f.subject, probed, AccessMode::kRead);
  uint64_t stale_before = f.monitor->cache().stale_hits();
  uint64_t hits_before = f.monitor->cache().hits();
  for (auto _ : state) {
    f.MutateShardOf(mutated);
    benchmark::DoNotOptimize(f.monitor->Check(f.subject, probed, AccessMode::kRead));
  }
  state.counters[cross_shard ? "cross_shard_stale" : "same_shard_stale"] =
      benchmark::Counter(static_cast<double>(f.monitor->cache().stale_hits() - stale_before));
  if (cross_shard) {
    state.counters["other_shard_hits"] =
        benchmark::Counter(static_cast<double>(f.monitor->cache().hits() - hits_before));
  }
}

void BM_CrossShardMutationIsolation(benchmark::State& state) {
  ShardIsolation(state, /*cross_shard=*/true);
}
void BM_SameShardMutationControl(benchmark::State& state) {
  ShardIsolation(state, /*cross_shard=*/false);
}
BENCHMARK(BM_CrossShardMutationIsolation);
BENCHMARK(BM_SameShardMutationControl);

// The F8-shaped sweep: with sharded stamps the cached-check cost stays flat
// no matter how often an unrelated subtree mutates.
void BM_CheckWithCrossShardMutationEvery(benchmark::State& state) {
  TwoShardFixture f;
  int period = static_cast<int>(state.range(0));
  int64_t i = 0;
  for (auto _ : state) {
    if (i % period == 0) {
      f.MutateShardOf(f.obj_a);
    }
    benchmark::DoNotOptimize(f.monitor->Check(f.subject, f.obj_b, AccessMode::kRead));
    ++i;
  }
}
BENCHMARK(BM_CheckWithCrossShardMutationEvery)->RangeMultiplier(4)->Range(1, 4096);

// 1M distinct principal names through the shard-local intern pools, routed
// by principal hash the way the grant table routes grantees. Each iteration
// re-interns the full set into fresh pools; per-name cost is cpu_time / 1M.
void BM_MillionPrincipalIntern(benchmark::State& state) {
  constexpr uint32_t kPrincipals = 1'000'000;
  std::vector<std::string> names;
  names.reserve(kPrincipals);
  for (uint32_t i = 0; i < kPrincipals; ++i) {
    names.push_back("org" + std::to_string(i % 512) + "/user" + std::to_string(i));
  }
  size_t interned = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    std::vector<PrincipalInternPool> pools(kMonitorShardCount);
    for (uint32_t i = 0; i < kPrincipals; ++i) {
      benchmark::DoNotOptimize(pools[ShardOfPrincipal(i)].Intern(names[i]));
    }
    // Second pass: every name must dedup to its existing id (hit path).
    for (uint32_t i = 0; i < kPrincipals; ++i) {
      benchmark::DoNotOptimize(pools[ShardOfPrincipal(i)].Intern(names[i]));
    }
    interned = 0;
    bytes = 0;
    for (const PrincipalInternPool& pool : pools) {
      interned += pool.size();
      bytes += pool.bytes_used();
    }
  }
  // The gate derives ns-per-name from cpu_time / interned_names.
  state.counters["interned_names"] = benchmark::Counter(static_cast<double>(interned));
  state.counters["arena_bytes"] = benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_MillionPrincipalIntern)->Unit(benchmark::kMillisecond);

// Many objects sharing one ACL shape: the store's shard-local intern pools
// must collapse them to one entry list per shard.
void BM_AclInternSharing(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    NameSpace ns;
    AclStore acls;
    PrincipalId user{1};
    state.ResumeTiming();
    for (int i = 0; i < 1024; ++i) {
      NodeId node = *ns.BindPath("/t" + std::to_string(i % 32) + "/o" + std::to_string(i),
                                 NodeKind::kObject, user);
      Acl acl;
      acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
      acl.AddEntry({AclEntryType::kAllow, PrincipalId{2}, AccessModeSet(AccessMode::kWrite)});
      (void)ns.SetAclRef(node, acls.Create(std::move(acl), ns.ShardOf(node)));
    }
    state.PauseTiming();
    state.counters["intern_hits"] = benchmark::Counter(static_cast<double>(acls.intern_hits()));
    state.counters["intern_unique"] =
        benchmark::Counter(static_cast<double>(acls.intern_unique()));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_AclInternSharing);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
