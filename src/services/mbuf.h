// The mbuf (message buffer) pool service.
//
// The paper's §1.1 example of a useful extension — "an extension can be used
// to provide a new file system that is not supported by the original system.
// To implement this file system, the extension … uses existing services
// (such as mbuf management)" — needs an mbuf service to build on; this is
// it. Buffers are transient, principal-private kernel objects (they are not
// named in the name space; whoever allocated a buffer is the only principal
// that can touch it, plus the system principal). Procedures live under
// /svc/mbuf/*, so *whether a subject may use the mbuf service at all* is
// still decided centrally via execute access on those procedure nodes.

#ifndef XSEC_SRC_SERVICES_MBUF_H_
#define XSEC_SRC_SERVICES_MBUF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/extsys/kernel.h"

namespace xsec {

class MbufPool {
 public:
  struct Options {
    size_t max_buffers = 65536;
    size_t max_total_bytes = 64u << 20;
  };

  explicit MbufPool(Kernel* kernel) : MbufPool(kernel, "/svc/mbuf", Options()) {}
  MbufPool(Kernel* kernel, std::string service_path, Options options);

  Status Install();

  // -- Mediated operations ----------------------------------------------------
  StatusOr<int64_t> Alloc(Subject& subject, size_t reserve_bytes);
  Status Free(Subject& subject, int64_t id);
  Status Append(Subject& subject, int64_t id, const std::vector<uint8_t>& data);
  StatusOr<std::vector<uint8_t>> ReadAll(Subject& subject, int64_t id);
  // Chains `tail` onto `head` (head takes tail's bytes; tail is freed) —
  // mbuf chaining as in BSD.
  Status Chain(Subject& subject, int64_t head, int64_t tail);

  size_t live_buffers() const { return buffers_.size(); }
  size_t total_bytes() const { return total_bytes_; }

 private:
  struct Buffer {
    PrincipalId owner;
    std::vector<uint8_t> data;
  };

  StatusOr<Buffer*> GetOwned(Subject& subject, int64_t id);

  Kernel* kernel_;
  std::string service_path_;
  Options options_;
  std::unordered_map<int64_t, Buffer> buffers_;
  int64_t next_id_ = 1;
  size_t total_bytes_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_MBUF_H_
