# Empty compiler generated dependencies file for xsec_services_tests.
# This may be replaced when dependencies are built.
