file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_lattice.dir/bench_f3_lattice.cc.o"
  "CMakeFiles/bench_f3_lattice.dir/bench_f3_lattice.cc.o.d"
  "bench_f3_lattice"
  "bench_f3_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
