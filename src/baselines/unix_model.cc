#include "src/baselines/unix_model.h"

namespace xsec {
namespace {

enum UnixBit : uint16_t { kR = 4, kW = 2, kX = 1 };

uint16_t BitFor(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRead:
    case AccessMode::kList:
      return kR;
    case AccessMode::kWrite:
    case AccessMode::kWriteAppend:  // no append-only bit in Unix
    case AccessMode::kDelete:       // approximated: w on the object
      return kW;
    case AccessMode::kExecute:
    case AccessMode::kExtend:       // Unix cannot distinguish call from extend
      return kX;
    case AccessMode::kAdministrate:
      return 0;  // handled separately (owner-only)
  }
  return 0;
}

}  // namespace

bool UnixModel::Allows(const BaselineWorld& world, const BaselineSubject& subject,
                       const BaselineObject& object, AccessMode mode) const {
  (void)world;
  if (mode == AccessMode::kAdministrate) {
    return subject.uid == object.owner_uid;
  }
  uint16_t bit = BitFor(mode);
  uint16_t triplet;
  if (subject.uid == object.owner_uid) {
    triplet = (object.unix_mode >> 6) & 7;
  } else if (subject.gids.count(object.owner_gid) != 0) {
    triplet = (object.unix_mode >> 3) & 7;
  } else {
    triplet = object.unix_mode & 7;
  }
  return (triplet & bit) != 0;
}

}  // namespace xsec
