#include "src/extsys/kernel.h"

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/extsys/supervisor.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {

namespace {

// The CallContext of the handler running on this thread (null outside any
// handler). This is what lets a nested Invoke from inside a handler inherit
// the caller's remaining deadline: the child context is capped to the
// parent's bound, so a 2-deep chain expires exactly once instead of the
// inner call running unbounded (the pre-supervision bug).
thread_local const CallContext* g_active_call = nullptr;

struct ScopedCall {
  const CallContext* prev;
  explicit ScopedCall(const CallContext* ctx) : prev(g_active_call) { g_active_call = ctx; }
  ~ScopedCall() { g_active_call = prev; }
};

}  // namespace

bool CallContext::Cancelled() const {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return true;
  }
  return deadline_ns != 0 && MonotonicNowNs() >= deadline_ns;
}

Status CallContext::CheckDeadline() const {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return CancelledError("call cancelled by the caller");
  }
  if (deadline_ns != 0 && MonotonicNowNs() >= deadline_ns) {
    return DeadlineExceededError("call deadline expired in handler");
  }
  return OkStatus();
}

std::string_view OriginName(Origin origin) {
  switch (origin) {
    case Origin::kLocal:
      return "local";
    case Origin::kOrganization:
      return "organization";
    case Origin::kRemote:
      return "remote";
  }
  return "unknown";
}

Kernel::Kernel(MonitorOptions options) {
  monitor_ = std::make_unique<ReferenceMonitor>(&name_space_, &acls_, &principals_, &labels_,
                                                options);
  system_ = *principals_.CreateUser("system");
  (void)name_space_.SetOwner(name_space_.root(), system_);
}

Subject Kernel::SystemSubject() {
  return Subject{system_, labels_.Top(), next_thread_id_.fetch_add(1, std::memory_order_relaxed)};
}

Subject Kernel::CreateSubject(PrincipalId principal, const SecurityClass& security_class) {
  return Subject{principal, security_class, next_thread_id_.fetch_add(1, std::memory_order_relaxed)};
}

StatusOr<NodeId> Kernel::RegisterService(std::string_view path, PrincipalId owner) {
  return name_space_.BindPath(path, NodeKind::kService, owner);
}

StatusOr<NodeId> Kernel::RegisterInterface(std::string_view path, PrincipalId owner) {
  return name_space_.BindPath(path, NodeKind::kInterface, owner);
}

StatusOr<NodeId> Kernel::RegisterProcedure(std::string_view path, PrincipalId owner,
                                           HandlerFn handler) {
  auto node = name_space_.BindPath(path, NodeKind::kProcedure, owner);
  if (!node.ok()) {
    return node.status();
  }
  procedures_[node->value] = std::move(handler);
  return node;
}

Status Kernel::SetProcedureHandler(NodeId node, HandlerFn handler) {
  const Node* n = name_space_.Get(node);
  if (n == nullptr || n->kind != NodeKind::kProcedure) {
    return NotFoundError("not a live procedure node");
  }
  procedures_[node.value] = std::move(handler);
  return OkStatus();
}

const CallContext* Kernel::CurrentCallContext() { return g_active_call; }

CallOptions Kernel::CapToParent(const CallOptions& options) {
  const CallContext* parent = g_active_call;
  if (parent == nullptr) {
    return options;
  }
  CallOptions capped = options;
  // A child may tighten its bound but never outlive the parent's; an
  // unbounded child (deadline 0) inherits the parent's bound outright.
  if (parent->deadline_ns != 0 &&
      (capped.deadline_ns == 0 || capped.deadline_ns > parent->deadline_ns)) {
    capped.deadline_ns = parent->deadline_ns;
  }
  if (capped.cancel == nullptr) {
    capped.cancel = parent->cancel;
  }
  return capped;
}

StatusOr<Value> Kernel::RunHandler(Subject& subject, const std::string* supervised_name,
                                   const HandlerFn& handler, Args args,
                                   const CallOptions& options) {
  ExtensionSupervisor::Permit permit;
  uint64_t deadline = options.deadline_ns;
  if (supervisor_ != nullptr && supervised_name != nullptr) {
    auto admitted = supervisor_->Admit(*supervised_name, deadline);
    if (!admitted.ok()) {
      return admitted.status();
    }
    permit = std::move(*admitted);
    if (permit.active()) {
      deadline = permit.deadline_ns();
      // The per-extension injection site (ext.invoke.<name>) fires inside
      // the supervised window: an armed error spec is recorded as the
      // extension failing, and a sleep spec that overruns the budget is
      // recorded as the timeout it simulates.
      Failpoint* fault = permit.fault();
      if (fault != nullptr && fault->armed()) {
        Status injected = fault->Evaluate();
        if (!injected.ok()) {
          permit.Complete(injected);
          return injected;
        }
        if (deadline != 0 && MonotonicNowNs() >= deadline) {
          Status timeout = DeadlineExceededError(StrFormat(
              "extension '%s' exceeded its invoke budget", supervised_name->c_str()));
          permit.Complete(timeout);
          return timeout;
        }
      }
    }
  }
  CallContext ctx{this, &subject, std::move(args), deadline, options.cancel};
  ScopedCall scope(&ctx);
  auto result = handler(ctx);
  if (permit.active()) {
    permit.Complete(result.ok() ? OkStatus() : result.status());
  }
  return result;
}

StatusOr<Value> Kernel::InvokeNode(Subject& subject, NodeId node, Args args,
                                   const CallOptions& caller_options) {
  // Dispatch-layer injection point: fires after mediation (the caller has
  // already passed its execute check) and before any handler runs, so fault
  // sweeps can fail or delay every invocation path (Invoke, CallCapability,
  // interface dispatch) at one choke point.
  XSEC_FAILPOINT("kernel.invoke");
  CallOptions options = CapToParent(caller_options);
  if (options.deadline_ns != 0 && MonotonicNowNs() >= options.deadline_ns) {
    return DeadlineExceededError(
        StrFormat("deadline expired before invoking '%s'", name_space_.PathOf(node).c_str()));
  }
  const Node* n = name_space_.Get(node);
  if (n == nullptr) {
    return NotFoundError("node vanished");
  }
  if (n->kind == NodeKind::kInterface) {
    // An extended service: select the right extension for this caller,
    // skipping quarantined ones so selection falls through to the next-best
    // healthy handler.
    EventDispatcher::EligibleFn available;
    if (supervisor_ != nullptr) {
      available = [this](const EventDispatcher::HandlerRecord& record) {
        const LinkedExtension* ext = GetExtension(record.extension);
        return ext == nullptr || supervisor_->Selectable(ext->name);
      };
    }
    auto selected = dispatcher_.Select(node, subject.security_class,
                                       DispatchMode::kClassSelected, available);
    if (!selected.ok()) {
      return selected.status();
    }
    const EventDispatcher::HandlerRecord* record = selected->front();
    const LinkedExtension* ext = GetExtension(record->extension);
    return RunHandler(subject, ext != nullptr ? &ext->name : nullptr, record->handler,
                      std::move(args), options);
  }
  auto it = procedures_.find(node.value);
  if (it == procedures_.end()) {
    return FailedPreconditionError(
        StrFormat("'%s' has no bound implementation", name_space_.PathOf(node).c_str()));
  }
  // Procedures are supervised when some name registered this node (service
  // nodes are opted in by the embedder; extensions register automatically).
  const std::string* supervised =
      supervisor_ != nullptr ? supervisor_->NameOfNode(node) : nullptr;
  return RunHandler(subject, supervised, it->second, std::move(args), options);
}

StatusOr<Value> Kernel::Invoke(Subject& subject, std::string_view path, Args args,
                               const CallOptions& options) {
  NodeId node;
  Decision decision = monitor_->CheckPath(subject, path, AccessMode::kExecute, &node);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return InvokeNode(subject, node, std::move(args), options);
}

StatusOr<Value> Kernel::CallCapability(Subject& subject, const Capability& capability,
                                       Args args, const CallOptions& options) {
  Decision decision = monitor_->Check(subject, capability.node, AccessMode::kExecute);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return InvokeNode(subject, capability.node, std::move(args), options);
}

StatusOr<Value> Kernel::RaiseEvent(Subject& subject, std::string_view interface_path, Args args,
                                   DispatchMode mode, const CallOptions& caller_options) {
  CallOptions options = CapToParent(caller_options);
  if (options.deadline_ns != 0 && MonotonicNowNs() >= options.deadline_ns) {
    return DeadlineExceededError(
        StrFormat("deadline expired before raising '%s'", std::string(interface_path).c_str()));
  }
  NodeId node;
  Decision decision = monitor_->CheckPath(subject, interface_path, AccessMode::kExecute, &node);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  EventDispatcher::EligibleFn available;
  if (supervisor_ != nullptr) {
    available = [this](const EventDispatcher::HandlerRecord& record) {
      const LinkedExtension* ext = GetExtension(record.extension);
      return ext == nullptr || supervisor_->Selectable(ext->name);
    };
  }
  auto selected = dispatcher_.Select(node, subject.security_class, mode, available);
  if (!selected.ok()) {
    return selected.status();
  }
  Value last;
  for (const EventDispatcher::HandlerRecord* record : *selected) {
    {
      // Cancellation point between broadcast handlers: a long chain gives up
      // at the next handler boundary instead of running to completion.
      CallContext boundary{this, &subject, {}, options.deadline_ns, options.cancel};
      XSEC_RETURN_IF_ERROR(boundary.CheckDeadline());
    }
    const LinkedExtension* ext = GetExtension(record->extension);
    auto result = RunHandler(subject, ext != nullptr ? &ext->name : nullptr, record->handler,
                             args, options);
    if (!result.ok()) {
      // A handler quarantined between selection and admission is skipped,
      // matching what selection itself would have done a moment later.
      if (mode == DispatchMode::kBroadcast &&
          result.status().code() == StatusCode::kUnavailable) {
        continue;
      }
      return result.status();
    }
    last = std::move(*result);
  }
  return last;
}

StatusOr<ExtensionId> Kernel::LoadExtension(const ExtensionManifest& manifest,
                                            const Subject& loader) {
  if (manifest.name.empty()) {
    return InvalidArgumentError("extension name must be nonempty");
  }
  SecurityClass handler_class = manifest.static_class.value_or(loader.security_class);
  // Link-time checks run at the class the extension will be registered at: a
  // statically downgraded extension must not link against services its
  // runtime class could never reach.
  Subject link_subject{loader.principal, handler_class, loader.thread_id};

  auto node = name_space_.BindPath(JoinPath("/ext", manifest.name), NodeKind::kObject,
                                   loader.principal);
  if (!node.ok()) {
    return node.status();
  }

  LinkedExtension linked;
  linked.name = manifest.name;
  linked.principal = loader.principal;
  linked.handler_class = handler_class;
  linked.node = *node;

  auto rollback = [this, &node] { (void)name_space_.Unbind(*node); };

  // Imports: one `execute` check per imported procedure (experiment F5
  // measures this against SPIN's per-domain all-or-nothing linking).
  for (const std::string& import : manifest.imports) {
    NodeId target;
    Decision decision =
        monitor_->CheckPath(link_subject, import, AccessMode::kExecute, &target);
    if (!decision.allowed) {
      rollback();
      return PermissionDeniedError(StrFormat("link failure: import '%s': %s", import.c_str(),
                                             decision.detail.c_str()));
    }
    linked.imports.push_back(Capability{target, import});
  }

  // Exports: one `extend` check per specialized interface.
  for (const ExportSpec& spec : manifest.exports) {
    NodeId target;
    Decision decision =
        monitor_->CheckPath(link_subject, spec.interface_path, AccessMode::kExtend, &target);
    if (!decision.allowed) {
      rollback();
      return PermissionDeniedError(StrFormat("link failure: export '%s': %s",
                                             spec.interface_path.c_str(),
                                             decision.detail.c_str()));
    }
    const Node* target_node = name_space_.Get(target);
    if (target_node->kind != NodeKind::kInterface) {
      rollback();
      return FailedPreconditionError(
          StrFormat("'%s' is not an extensible interface", spec.interface_path.c_str()));
    }
    linked.export_points.push_back(target);
  }

  ExtensionId id{static_cast<uint32_t>(extensions_.size())};
  linked.id = id;
  // Register handlers only after every check passed (no partial linking).
  for (const ExportSpec& spec : manifest.exports) {
    NodeId target = linked.export_points[&spec - manifest.exports.data()];
    dispatcher_.Register(target, id, handler_class, spec.handler);
  }
  extensions_.push_back(std::move(linked));
  ++loaded_count_;
  if (supervisor_ != nullptr) {
    supervisor_->Register(manifest.name, *node);
  }
  return id;
}

Status Kernel::UnloadExtension(const Subject& subject, ExtensionId id) {
  if (id.value >= extensions_.size() || !extensions_[id.value].has_value()) {
    return NotFoundError("no such extension");
  }
  LinkedExtension& ext = *extensions_[id.value];
  if (subject.principal != ext.principal && !monitor_->HasAdministrate(subject, ext.node)) {
    return PermissionDeniedError(
        StrFormat("not authorized to unload extension '%s'", ext.name.c_str()));
  }
  dispatcher_.UnregisterExtension(id);
  (void)name_space_.Unbind(ext.node);
  extensions_[id.value].reset();
  --loaded_count_;
  return OkStatus();
}

const LinkedExtension* Kernel::GetExtension(ExtensionId id) const {
  if (id.value >= extensions_.size() || !extensions_[id.value].has_value()) {
    return nullptr;
  }
  return &*extensions_[id.value];
}

}  // namespace xsec
