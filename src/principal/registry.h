// The principal registry: creation of users and groups, nested group
// membership, and cached transitive membership closures.
//
// Authentication proper is out of the paper's scope (§1); the registry
// provides a deliberately simple credential check so examples and tests can
// model a login step without pretending to be a real authentication protocol.
//
// Thread safety: all methods may be called concurrently. Membership
// mutations take the registry lock exclusively and bump membership_epoch_
// before releasing it. The check path obtains closures through Closure(),
// which hands out shared ownership so a concurrently invalidated closure
// stays alive for in-flight evaluations. MembershipClosure() (the legacy
// reference-returning form) is only safe when no membership mutation runs
// concurrently: the referenced bitset lives until the closure cache is
// invalidated by the next AddMember/RemoveMember.

#ifndef XSEC_SRC_PRINCIPAL_REGISTRY_H_
#define XSEC_SRC_PRINCIPAL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/bitset.h"
#include "src/base/status.h"
#include "src/principal/principal.h"

namespace xsec {

class PrincipalRegistry {
 public:
  PrincipalRegistry();

  // Creation. Names are unique across users and groups.
  StatusOr<PrincipalId> CreateUser(std::string_view name);
  StatusOr<PrincipalId> CreateGroup(std::string_view name);

  // Membership. `member` may be a user or a group (groups nest, as in AFS
  // and NT). Cycles among groups are rejected so the closure is well-founded.
  Status AddMember(PrincipalId group, PrincipalId member);
  Status RemoveMember(PrincipalId group, PrincipalId member);

  // Lookup.
  StatusOr<PrincipalId> FindByName(std::string_view name) const;
  const Principal* Get(PrincipalId id) const;
  size_t principal_count() const;

  // The transitive closure of `user`: a bitset over principal ids containing
  // the user itself plus every group it belongs to, directly or through
  // nesting. Cached; invalidated on any membership change. The shared_ptr
  // keeps the closure valid even if a concurrent membership mutation
  // invalidates the cache mid-evaluation.
  std::shared_ptr<const DynamicBitset> Closure(PrincipalId user) const;

  // Legacy reference-returning form; the reference is valid until the next
  // membership mutation. Prefer Closure() anywhere concurrency is possible.
  const DynamicBitset& MembershipClosure(PrincipalId user) const;

  // Direct members of a group.
  StatusOr<std::vector<PrincipalId>> MembersOf(PrincipalId group) const;

  // Monotonic counter bumped on every membership mutation. The reference
  // monitor's decision cache validates entries against this. Published with
  // release ordering after the mutation it stamps.
  uint64_t membership_epoch() const { return membership_epoch_.load(std::memory_order_acquire); }

  // -- Simulated authentication ---------------------------------------------
  // Associates a credential with a user; Authenticate() checks it. This is a
  // stand-in for the authentication machinery the paper scopes out.
  Status SetCredential(PrincipalId user, std::string_view credential);
  StatusOr<PrincipalId> Authenticate(std::string_view name, std::string_view credential) const;

 private:
  struct Record {
    Principal principal;
    std::vector<PrincipalId> member_of;   // direct parent groups
    std::vector<PrincipalId> members;     // direct members (groups only)
    std::string credential;               // users only; empty = no login
  };

  // Callers hold mu_.
  bool WouldCreateCycleLocked(PrincipalId group, PrincipalId member) const;
  StatusOr<PrincipalId> Create(std::string_view name, PrincipalKind kind);

  mutable std::shared_mutex mu_;  // guards principals_ and by_name_
  // Deque, not vector: record addresses stay stable across Create, so Get()'s
  // returned pointers never dangle.
  std::deque<Record> principals_;
  // Keys are views into the records' own (deque-stable, never-renamed) name
  // strings: at a million principals the index carries no second copy of
  // every name, and lookups by string_view never allocate.
  std::unordered_map<std::string_view, uint32_t> by_name_;
  std::atomic<uint64_t> membership_epoch_{0};

  // Closure cache, rebuilt lazily after membership changes. Guarded by its
  // own mutex; computing a missing closure takes mu_ (shared) *inside*
  // closure_mu_, and mutators never take closure_mu_, so the order is safe.
  mutable std::mutex closure_mu_;
  mutable std::unordered_map<uint32_t, std::shared_ptr<const DynamicBitset>> closure_cache_;
  mutable uint64_t closure_cache_epoch_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_PRINCIPAL_REGISTRY_H_
