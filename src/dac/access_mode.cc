#include "src/dac/access_mode.h"

#include "src/base/strings.h"

namespace xsec {

std::string_view AccessModeName(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRead:
      return "read";
    case AccessMode::kWrite:
      return "write";
    case AccessMode::kWriteAppend:
      return "write-append";
    case AccessMode::kExecute:
      return "execute";
    case AccessMode::kExtend:
      return "extend";
    case AccessMode::kAdministrate:
      return "administrate";
    case AccessMode::kDelete:
      return "delete";
    case AccessMode::kList:
      return "list";
  }
  return "unknown";
}

std::vector<AccessMode> AccessModeSet::Modes() const {
  std::vector<AccessMode> out;
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode m = static_cast<AccessMode>(1u << i);
    if (Contains(m)) {
      out.push_back(m);
    }
  }
  return out;
}

std::string AccessModeSet::ToString() const {
  if (empty()) {
    return "-";
  }
  std::string out;
  for (AccessMode m : Modes()) {
    if (!out.empty()) {
      out += '|';
    }
    out += AccessModeName(m);
  }
  return out;
}

StatusOr<AccessModeSet> AccessModeSet::Parse(std::string_view text) {
  if (text == "-" || text.empty()) {
    return AccessModeSet::None();
  }
  AccessModeSet out;
  for (const std::string& piece : StrSplit(text, '|')) {
    bool matched = false;
    for (int i = 0; i < kAccessModeCount; ++i) {
      AccessMode m = static_cast<AccessMode>(1u << i);
      if (piece == AccessModeName(m)) {
        out |= m;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return InvalidArgumentError(StrFormat("unknown access mode '%s'", piece.c_str()));
    }
  }
  return out;
}

}  // namespace xsec
