#include "src/extsys/dispatcher.h"

#include <algorithm>

#include "src/base/strings.h"

namespace xsec {

void EventDispatcher::Register(NodeId interface_node, ExtensionId extension,
                               const SecurityClass& handler_class, HandlerFn handler) {
  HandlerRecord record;
  record.extension = extension;
  record.handler_class = handler_class;
  record.handler = std::move(handler);
  record.registration_order = next_order_++;
  handlers_[interface_node.value].push_back(std::move(record));
  ++total_handlers_;
}

size_t EventDispatcher::UnregisterExtension(ExtensionId extension) {
  size_t removed = 0;
  for (auto& [node, records] : handlers_) {
    size_t before = records.size();
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [extension](const HandlerRecord& r) {
                                   return r.extension == extension;
                                 }),
                  records.end());
    removed += before - records.size();
  }
  total_handlers_ -= removed;
  return removed;
}

StatusOr<std::vector<const EventDispatcher::HandlerRecord*>> EventDispatcher::Select(
    NodeId interface_node, const SecurityClass& caller_class, DispatchMode mode,
    const EligibleFn& available) const {
  auto it = handlers_.find(interface_node.value);
  if (it == handlers_.end() || it->second.empty()) {
    return NotFoundError(
        StrFormat("no handler registered on interface node %u", interface_node.value));
  }
  const std::vector<HandlerRecord>& records = it->second;

  if (mode == DispatchMode::kFirstRegistered) {
    if (available) {
      for (const HandlerRecord& record : records) {
        if (available(record)) {
          return std::vector<const HandlerRecord*>{&record};
        }
      }
      return UnavailableError("every registered handler is quarantined");
    }
    return std::vector<const HandlerRecord*>{&records.front()};
  }

  std::vector<const HandlerRecord*> eligible;
  size_t cleared = 0;  // class-eligible before the availability filter
  for (const HandlerRecord& record : records) {
    if (caller_class.Dominates(record.handler_class)) {
      ++cleared;
      if (available == nullptr || available(record)) {
        eligible.push_back(&record);
      }
    }
  }
  if (eligible.empty()) {
    if (cleared > 0) {
      // The caller IS cleared for a handler; supervision is refusing it.
      return UnavailableError("every eligible handler is quarantined");
    }
    return PermissionDeniedError(
        "caller's security class is not cleared for any registered handler");
  }

  if (mode == DispatchMode::kBroadcast) {
    return eligible;
  }

  // kClassSelected: a maximal eligible handler; earliest registration among
  // maximal-but-incomparable candidates.
  const HandlerRecord* best = eligible.front();
  for (const HandlerRecord* candidate : eligible) {
    if (candidate->handler_class.StrictlyDominates(best->handler_class)) {
      best = candidate;
    }
  }
  return std::vector<const HandlerRecord*>{best};
}

size_t EventDispatcher::HandlerCount(NodeId interface_node) const {
  auto it = handlers_.find(interface_node.value);
  return it == handlers_.end() ? 0 : it->second.size();
}

}  // namespace xsec
