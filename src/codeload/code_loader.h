// Code loading with origin-based trust assignment.
//
// Two pieces of the paper live here:
//
// 1. §2.2: "it may be necessary to statically associate extensions with a
//    certain security class to avoid security breaches (for example, applets
//    that originate outside the local organization … might always run at the
//    least level of trust to ensure that they can not access local files)".
//    OriginPolicy maps where code came from (local disk / organization /
//    remote) to a *ceiling* security class; CodeLoader pins every extension
//    at the meet of that ceiling and whatever the manifest asked for, so no
//    origin can smuggle itself a higher class.
//
// 2. §1 scopes out "the authentication of extensions (and principals)" but
//    notes it matters; we simulate the integrity half with a checksum over
//    the manifest's canonical rendering (a stand-in for code signing: real
//    systems hash the code image; our "code" is in-process std::functions,
//    so the manifest structure is what can be covered). A tampered image is
//    rejected before any linking happens.

#ifndef XSEC_SRC_CODELOAD_CODE_LOADER_H_
#define XSEC_SRC_CODELOAD_CODE_LOADER_H_

#include <map>
#include <optional>

#include "src/extsys/kernel.h"

namespace xsec {

// Canonical checksum over a manifest's security-relevant structure (name,
// origin-independent imports and export targets, static class request).
uint64_t ComputeManifestChecksum(const ExtensionManifest& manifest);

// A packaged extension as it would arrive from its origin.
struct CodeImage {
  ExtensionManifest manifest;
  uint64_t checksum = 0;
};

// Packages a manifest, sealing its current structure.
CodeImage PackageExtension(ExtensionManifest manifest);

class OriginPolicy {
 public:
  // The class ceiling for code from `origin`. Unset origins are forbidden.
  void SetCeiling(Origin origin, SecurityClass ceiling);
  void Forbid(Origin origin);
  StatusOr<SecurityClass> CeilingFor(Origin origin) const;

  // A conventional default for the paper's example lattice: local code at
  // `local_top`, organization code at `org`, remote code at `remote_floor`.
  static OriginPolicy Standard(SecurityClass local_top, SecurityClass org,
                               SecurityClass remote_floor);

 private:
  std::map<Origin, SecurityClass> ceilings_;
};

class CodeLoader {
 public:
  CodeLoader(Kernel* kernel, OriginPolicy policy)
      : kernel_(kernel), policy_(std::move(policy)) {}

  // Verifies the image, derives the effective static class (meet of the
  // origin ceiling and the manifest's request, if any), and links it.
  StatusOr<ExtensionId> Load(const CodeImage& image, const Subject& loader);

  uint64_t loads() const { return loads_; }
  uint64_t rejected_tampered() const { return rejected_tampered_; }
  uint64_t rejected_forbidden_origin() const { return rejected_forbidden_origin_; }

 private:
  Kernel* kernel_;
  OriginPolicy policy_;
  uint64_t loads_ = 0;
  uint64_t rejected_tampered_ = 0;
  uint64_t rejected_forbidden_origin_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_CODELOAD_CODE_LOADER_H_
