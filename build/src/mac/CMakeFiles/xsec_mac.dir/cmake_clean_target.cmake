file(REMOVE_RECURSE
  "libxsec_mac.a"
)
