#include "src/base/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "src/base/strings.h"

namespace xsec {

namespace {

struct CodeName {
  std::string_view name;
  StatusCode code;
};

constexpr CodeName kCodeNames[] = {
    {"internal", StatusCode::kInternal},
    {"invalid-argument", StatusCode::kInvalidArgument},
    {"not-found", StatusCode::kNotFound},
    {"already-exists", StatusCode::kAlreadyExists},
    {"permission-denied", StatusCode::kPermissionDenied},
    {"failed-precondition", StatusCode::kFailedPrecondition},
    {"resource-exhausted", StatusCode::kResourceExhausted},
    {"unimplemented", StatusCode::kUnimplemented},
    {"deadline-exceeded", StatusCode::kDeadlineExceeded},
    {"cancelled", StatusCode::kCancelled},
    {"unavailable", StatusCode::kUnavailable},
};

StatusOr<StatusCode> ParseCode(std::string_view text) {
  for (const CodeName& entry : kCodeNames) {
    if (text == entry.name) {
      return entry.code;
    }
  }
  return InvalidArgumentError(
      StrFormat("unknown failpoint error code '%s'", std::string(text).c_str()));
}

std::string_view CodeToName(StatusCode code) {
  for (const CodeName& entry : kCodeNames) {
    if (code == entry.code) {
      return entry.name;
    }
  }
  return "internal";
}

// Parses a nonnegative integer; rejects trailing junk.
StatusOr<uint64_t> ParseU64(std::string_view text) {
  if (text.empty()) {
    return InvalidArgumentError("empty number in failpoint spec");
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError(
          StrFormat("bad number '%s' in failpoint spec", std::string(text).c_str()));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

// Duration with an optional ns/us/ms/s suffix; bare numbers are ms.
StatusOr<uint64_t> ParseDurationNs(std::string_view text) {
  uint64_t scale = 1'000'000;  // default: milliseconds
  if (EndsWith(text, "ns")) {
    scale = 1;
    text.remove_suffix(2);
  } else if (EndsWith(text, "us")) {
    scale = 1'000;
    text.remove_suffix(2);
  } else if (EndsWith(text, "ms")) {
    scale = 1'000'000;
    text.remove_suffix(2);
  } else if (EndsWith(text, "s")) {
    scale = 1'000'000'000;
    text.remove_suffix(1);
  }
  auto value = ParseU64(text);
  if (!value.ok()) {
    return value.status();
  }
  return *value * scale;
}

}  // namespace

StatusOr<FailpointSpec> FailpointSpec::Parse(std::string_view text) {
  FailpointSpec spec;
  for (const std::string& clause : StrSplit(text, ',', /*skip_empty=*/true)) {
    std::string_view key = clause;
    std::string_view value;
    size_t eq = clause.find('=');
    if (eq != std::string::npos) {
      key = std::string_view(clause).substr(0, eq);
      value = std::string_view(clause).substr(eq + 1);
    }
    if (key == "off") {
      if (eq != std::string::npos) {
        return InvalidArgumentError("'off' takes no value");
      }
      return FailpointSpec{};
    } else if (key == "error") {
      spec.inject_error = true;
      if (eq != std::string::npos) {
        auto code = ParseCode(value);
        if (!code.ok()) {
          return code.status();
        }
        spec.code = *code;
      }
    } else if (key == "sleep") {
      if (eq == std::string::npos) {
        return InvalidArgumentError("'sleep' needs a duration, e.g. sleep=10ms");
      }
      auto ns = ParseDurationNs(value);
      if (!ns.ok()) {
        return ns.status();
      }
      spec.sleep_ns = *ns;
    } else if (key == "nth") {
      if (eq == std::string::npos) {
        return InvalidArgumentError("'nth' needs a hit number, e.g. nth=3");
      }
      auto n = ParseU64(value);
      if (!n.ok()) {
        return n.status();
      }
      if (*n == 0) {
        return InvalidArgumentError("'nth' is 1-based; nth=0 is meaningless");
      }
      spec.skip = *n - 1;
    } else if (key == "times") {
      if (eq == std::string::npos) {
        return InvalidArgumentError("'times' needs a count, e.g. times=2");
      }
      auto n = ParseU64(value);
      if (!n.ok()) {
        return n.status();
      }
      spec.times = static_cast<int64_t>(*n);
    } else {
      return InvalidArgumentError(
          StrFormat("unknown failpoint clause '%s'", clause.c_str()));
    }
  }
  if (!spec.active()) {
    return InvalidArgumentError(
        "failpoint spec has no effect: need 'error', 'sleep=...', or 'off'");
  }
  return spec;
}

std::string FailpointSpec::ToString() const {
  if (!active()) {
    return "off";
  }
  std::string out;
  auto append = [&out](const std::string& clause) {
    if (!out.empty()) {
      out += ',';
    }
    out += clause;
  };
  if (inject_error) {
    append(StrFormat("error=%s", std::string(CodeToName(code)).c_str()));
  }
  if (sleep_ns != 0) {
    append(StrFormat("sleep=%lluns", static_cast<unsigned long long>(sleep_ns)));
  }
  if (skip != 0) {
    append(StrFormat("nth=%llu", static_cast<unsigned long long>(skip + 1)));
  }
  if (times >= 0) {
    append(StrFormat("times=%lld", static_cast<long long>(times)));
  }
  return out;
}

Status Failpoint::Evaluate() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  uint64_t sleep_ns = 0;
  Status injected = OkStatus();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) {
      return OkStatus();  // lost a race with Disarm; pass through
    }
    if (passed_ < spec_.skip) {
      ++passed_;
      return OkStatus();
    }
    if (spec_.times == 0) {
      return OkStatus();  // budget exhausted, pass through
    }
    if (spec_.times > 0) {
      --spec_.times;
      if (spec_.times == 0 && spec_.sleep_ns == 0) {
        // Nothing left to inject after this hit: drop back to the fast path.
        armed_.store(false, std::memory_order_relaxed);
      }
    }
    sleep_ns = spec_.sleep_ns;
    if (spec_.inject_error) {
      injected = Status(spec_.code,
                        StrFormat("injected by failpoint '%s'", name_.c_str()));
    }
  }
  if (sleep_ns != 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
  }
  if (!injected.ok()) {
    fires_.fetch_add(1, std::memory_order_relaxed);
  }
  return injected;
}

void Failpoint::Arm(FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  passed_ = 0;
  armed_.store(spec.active(), std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = FailpointSpec{};
  passed_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

std::string Failpoint::Describe() const {
  std::string spec_text;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec_text = armed_.load(std::memory_order_relaxed) ? spec_.ToString() : "off";
  }
  return StrFormat("%s hits=%llu fires=%llu", spec_text.c_str(),
                   static_cast<unsigned long long>(hits()),
                   static_cast<unsigned long long>(fires()));
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Failpoint* FailpointRegistry::GetOrCreate(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(std::string(name), std::make_unique<Failpoint>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Failpoint* FailpointRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? nullptr : it->second.get();
}

Status FailpointRegistry::Arm(std::string_view name, std::string_view spec_text) {
  auto spec = FailpointSpec::Parse(spec_text);
  if (!spec.ok()) {
    return spec.status();
  }
  Failpoint* point = GetOrCreate(name);
  if (spec->active()) {
    point->Arm(*spec);
  } else {
    point->Disarm();
  }
  return OkStatus();
}

void FailpointRegistry::DisarmAll() {
  std::vector<Failpoint*> points;
  {
    std::lock_guard<std::mutex> lock(mu_);
    points.reserve(points_.size());
    for (auto& [name, point] : points_) {
      points.push_back(point.get());
    }
  }
  for (Failpoint* point : points) {
    point->Disarm();
  }
}

std::vector<std::string> FailpointRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace xsec
