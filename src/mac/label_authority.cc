#include "src/mac/label_authority.h"

#include <mutex>

#include "src/base/strings.h"

namespace xsec {

std::string SecurityClass::ToString() const {
  return StrFormat("(%u,%s)", static_cast<unsigned>(level_), categories_.ToString().c_str());
}

DominanceMatrix::DominanceMatrix(std::vector<SecurityClass> classes) {
  // Dedup by lattice equality so interned-id equality coincides with
  // SecurityClass::operator== (and, by antisymmetry, with mutual dominance).
  for (SecurityClass& cls : classes) {
    uint64_t hash = cls.Hash();
    std::vector<uint32_t>& ids = by_hash_[hash];
    bool duplicate = false;
    for (uint32_t id : ids) {
      if (classes_[id] == cls) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    ids.push_back(static_cast<uint32_t>(classes_.size()));
    classes_.push_back(std::move(cls));
  }
  size_t n = classes_.size();
  words_per_row_ = (n + 63) / 64;
  bits_.assign(n * words_per_row_, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (classes_[i].Dominates(classes_[j])) {
        bits_[i * words_per_row_ + j / 64] |= uint64_t{1} << (j % 64);
      }
    }
  }
}

int32_t DominanceMatrix::IdOf(const SecurityClass& cls) const {
  auto it = by_hash_.find(cls.Hash());
  if (it == by_hash_.end()) {
    return -1;
  }
  for (uint32_t id : it->second) {
    if (classes_[id] == cls) {
      return static_cast<int32_t>(id);
    }
  }
  return -1;
}

LabelAuthority::LabelAuthority() {
  // A single implicit level exists so unlabeled systems degenerate to
  // "MAC off": every class is (0, {}) and everything dominates everything.
  level_names_.push_back("unclassified");
  level_by_name_.emplace("unclassified", 0);
}

Status LabelAuthority::DefineLevels(const std::vector<std::string>& ascending_names) {
  if (ascending_names.empty()) {
    return InvalidArgumentError("at least one level is required");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (level_names_.size() > 1) {
    return FailedPreconditionError("levels are already defined");
  }
  std::unordered_map<std::string, TrustLevel> by_name;
  for (size_t i = 0; i < ascending_names.size(); ++i) {
    if (ascending_names[i].empty()) {
      return InvalidArgumentError("level names must be nonempty");
    }
    auto [it, inserted] = by_name.emplace(ascending_names[i], static_cast<TrustLevel>(i));
    if (!inserted) {
      return InvalidArgumentError(
          StrFormat("duplicate level name '%s'", ascending_names[i].c_str()));
    }
  }
  level_names_ = ascending_names;
  level_by_name_ = std::move(by_name);
  BumpShardEpoch(kAllShards);
  label_epoch_.fetch_add(1, std::memory_order_release);
  return OkStatus();
}

StatusOr<size_t> LabelAuthority::DefineCategory(std::string_view name) {
  if (name.empty()) {
    return InvalidArgumentError("category name must be nonempty");
  }
  std::string key(name);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (category_by_name_.count(key) != 0) {
    return AlreadyExistsError(StrFormat("category '%s' already exists", key.c_str()));
  }
  size_t id = category_names_.size();
  category_names_.push_back(key);
  category_by_name_.emplace(std::move(key), id);
  BumpShardEpoch(kAllShards);
  label_epoch_.fetch_add(1, std::memory_order_release);
  return id;
}

StatusOr<TrustLevel> LabelAuthority::LevelByNameLocked(std::string_view name) const {
  auto it = level_by_name_.find(std::string(name));
  if (it == level_by_name_.end()) {
    return NotFoundError(StrFormat("no trust level named '%s'", std::string(name).c_str()));
  }
  return it->second;
}

StatusOr<size_t> LabelAuthority::CategoryByNameLocked(std::string_view name) const {
  auto it = category_by_name_.find(std::string(name));
  if (it == category_by_name_.end()) {
    return NotFoundError(StrFormat("no category named '%s'", std::string(name).c_str()));
  }
  return it->second;
}

StatusOr<TrustLevel> LabelAuthority::LevelByName(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return LevelByNameLocked(name);
}

StatusOr<size_t> LabelAuthority::CategoryByName(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return CategoryByNameLocked(name);
}

size_t LabelAuthority::level_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return level_names_.size();
}

size_t LabelAuthority::category_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return category_names_.size();
}

bool LabelAuthority::levels_defined() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return level_names_.size() > 1 || level_names_[0] != "unclassified";
}

StatusOr<SecurityClass> LabelAuthority::MakeClass(
    std::string_view level_name, const std::vector<std::string>& category_names) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto level = LevelByNameLocked(level_name);
  if (!level.ok()) {
    return level.status();
  }
  CategorySet cats(category_names_.size());
  for (const std::string& cat : category_names) {
    auto id = CategoryByNameLocked(cat);
    if (!id.ok()) {
      return id.status();
    }
    cats.Set(*id);
  }
  return SecurityClass(*level, std::move(cats));
}

SecurityClass LabelAuthority::Bottom() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SecurityClass(0, CategorySet(category_names_.size()));
}

SecurityClass LabelAuthority::Top() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  CategorySet all(category_names_.size());
  all.SetAll();
  return SecurityClass(static_cast<TrustLevel>(level_names_.size() - 1), std::move(all));
}

std::string LabelAuthority::ClassToString(const SecurityClass& cls) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string level = cls.level() < level_names_.size()
                          ? level_names_[cls.level()]
                          : StrFormat("level-%u", static_cast<unsigned>(cls.level()));
  std::string cats;
  for (size_t id : cls.categories().ToIndices()) {
    if (!cats.empty()) {
      cats += ",";
    }
    cats += id < category_names_.size() ? category_names_[id] : StrFormat("cat-%zu", id);
  }
  return StrFormat("%s:{%s}", level.c_str(), cats.c_str());
}

void LabelAuthority::BumpShardEpoch(ShardId shard) {
  if (IsConcreteShard(shard)) {
    shard_epoch_[shard].fetch_add(1, std::memory_order_release);
    return;
  }
  for (auto& e : shard_epoch_) {
    e.fetch_add(1, std::memory_order_release);
  }
}

LabelAuthority::LabelRef LabelAuthority::StoreLabel(const SecurityClass& cls) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  LabelRef ref = static_cast<LabelRef>(labels_.size());
  labels_.push_back(std::make_shared<const SecurityClass>(cls));
  label_shards_.push_back(kUnknownShard);
  // Mutate, then publish (release): readers that observe the new epoch see
  // the new label. Per-shard epochs stay put: an unreferenced ref cannot be
  // behind any cached decision.
  label_epoch_.fetch_add(1, std::memory_order_release);
  return ref;
}

void LabelAuthority::AttachShard(LabelRef ref, ShardId shard) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= label_shards_.size() || label_shards_[ref] == shard) {
    return;
  }
  if (label_shards_[ref] == kUnknownShard) {
    label_shards_[ref] = IsConcreteShard(shard) ? shard : kAllShards;
  } else {
    // Referenced from a second domain: escalate permanently.
    label_shards_[ref] = kAllShards;
  }
}

ShardId LabelAuthority::ShardOf(LabelRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ref < label_shards_.size() ? label_shards_[ref] : kUnknownShard;
}

const SecurityClass* LabelAuthority::GetLabel(LabelRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= labels_.size()) {
    return nullptr;
  }
  // Valid until the label at `ref` is replaced; single-threaded use only.
  return labels_[ref].get();
}

std::shared_ptr<const SecurityClass> LabelAuthority::LabelHandle(LabelRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= labels_.size()) {
    return nullptr;
  }
  return labels_[ref];
}

void LabelAuthority::SetClearance(uint32_t principal_id, SecurityClass clearance) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  clearances_[principal_id] = std::move(clearance);
  BumpShardEpoch(kAllShards);
  label_epoch_.fetch_add(1, std::memory_order_release);
}

void LabelAuthority::ClearClearance(uint32_t principal_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  clearances_.erase(principal_id);
  BumpShardEpoch(kAllShards);
  label_epoch_.fetch_add(1, std::memory_order_release);
}

const SecurityClass* LabelAuthority::ClearanceOf(uint32_t principal_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = clearances_.find(principal_id);
  return it == clearances_.end() ? nullptr : &it->second;
}

std::shared_ptr<const DominanceMatrix> LabelAuthority::CompileDominance(
    size_t max_classes, const std::vector<SecurityClass>& extra_classes) const {
  std::vector<SecurityClass> seeds;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    seeds.reserve(labels_.size() + clearances_.size() + extra_classes.size() + 2);
    // ⊥ and ⊤ under the current definitions (inlined: Bottom()/Top() would
    // re-acquire mu_).
    seeds.emplace_back(0, CategorySet(category_names_.size()));
    CategorySet all(category_names_.size());
    all.SetAll();
    seeds.emplace_back(static_cast<TrustLevel>(level_names_.size() - 1), std::move(all));
    for (const auto& label : labels_) {
      seeds.push_back(*label);
    }
    for (const auto& [principal, clearance] : clearances_) {
      seeds.push_back(clearance);
    }
  }
  seeds.insert(seeds.end(), extra_classes.begin(), extra_classes.end());

  DominanceMatrix base(std::move(seeds));
  if (base.size() > max_classes) {
    return nullptr;
  }
  // Close under Join, breadth-first, until the cap: a floating subject's
  // class is always a join of classes it has observed, so the closure keeps
  // CheckFloating subjects interned. Hitting the cap is not an error — the
  // uncovered joins simply fall back to interpreted dominance.
  std::vector<SecurityClass> closed = base.classes();
  for (size_t i = 0; i < closed.size() && closed.size() < max_classes; ++i) {
    for (size_t j = 0; j < i && closed.size() < max_classes; ++j) {
      SecurityClass join = closed[i].Join(closed[j]);
      bool known = false;
      for (const SecurityClass& existing : closed) {
        if (existing == join) {
          known = true;
          break;
        }
      }
      if (!known) {
        closed.push_back(std::move(join));
      }
    }
  }
  return std::make_shared<const DominanceMatrix>(std::move(closed));
}

Status LabelAuthority::ReplaceLabel(LabelRef ref, const SecurityClass& cls) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= labels_.size()) {
    return NotFoundError("no such label");
  }
  // Swap in a fresh immutable object; handles issued before this call keep
  // the old label alive for their in-flight evaluations.
  labels_[ref] = std::make_shared<const SecurityClass>(cls);
  BumpShardEpoch(label_shards_[ref]);
  label_epoch_.fetch_add(1, std::memory_order_release);
  return OkStatus();
}

}  // namespace xsec
