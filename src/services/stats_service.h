// Monitor observability through the namespace itself.
//
// The paper's third pillar is a single hierarchical name space in which
// every protected thing is a named, mediated object (§2.3). The reference
// monitor's own operational state is no exception: this service mounts the
// MonitorStats counters, the DecisionCache totals, and the AuditLog gauges
// as read-only file nodes under /sys/monitor/..., and every read of one goes
// back through ReferenceMonitor::Check on the leaf node (the same node-level
// mediation the other services use). Visibility of security telemetry is
// therefore governed by ACLs and labels like everything else — and a denied
// stats read shows up in the very denial counters it was trying to read (the
// model eating its own dogfood).
//
// Default policy: /sys/monitor carries an own ACL granting read|list to the
// system principal only, so telemetry is fail-closed; administrators widen
// it per node with ordinary AddAclEntry calls.
//
// Stats tree layout (docs/MODEL.md §11 is normative):
//
//   /sys/monitor/snapshot                one consistent multi-line rendering
//   /sys/monitor/version                 published snapshot version (counter)
//   /sys/monitor/checks/total            decisions recorded, all outcomes
//   /sys/monitor/checks/allowed          ... that allowed
//   /sys/monitor/checks/denied           ... that denied
//   /sys/monitor/checks/by-mode/<mode>   one per access mode (read, write, ...)
//   /sys/monitor/denials/by-reason/<r>   one per DenyReason (not-found, ...)
//   /sys/monitor/cache/hits|misses|stale|hit_rate
//   /sys/monitor/latency/p50|p90|p99|samples   sampled check latency, ns
//   /sys/monitor/audit/retained|dropped|sink_dropped
//   /sys/monitor/audit/fanout/sinks|delivered|dropped|stitch_violations
//                                        multi-sink fan-out plane (AuditLog)
//   /sys/monitor/ring/shards|depth|batches|submitted|completed|stalls
//                                        mediation-ring transport (MountRing)
//   /sys/monitor/rate/checks_per_sec     windowed rate over published epochs
//   /sys/monitor/rate/denials_per_sec
//   /sys/monitor/subscribers/active      live subscription channels
//   /sys/monitor/subscribers/dropped     epochs dropped across all channels ever
//   /sys/monitor/subscribers/<id>/queued|delivered|dropped   per channel
//
// Publication (RCU rule, MODEL.md §11): every Tick builds one immutable
// PublishedEpoch — snapshot, gauges, windowed rates, and the full rendered
// text — and swaps it into an atomic shared_ptr. Readers (the snapshot /
// version / rate leaves, watch fast paths, version()) load that pointer
// lock-free and never contend with the publisher; pub_mu_ is writer-side
// only (it serializes concurrent Ticks). The version leaf and the snapshot
// leaf read the *same* pointer, so a reader can never observe a version
// older than a snapshot it already rendered.
//
// Subscription channels: Subscribe() performs ONE admission check (read on
// the snapshot leaf) and returns a numeric capability handle backed by a
// bounded per-subscriber queue of published-epoch pointers. Tick() fans each
// newly published epoch out to every channel as a shared_ptr — a queue slot
// costs one pointer, not one rendered snapshot, so bounded queues hold deep
// history. Poll renders a *delta* against the last epoch that channel
// delivered (only the counters that changed, cumulative so drops in between
// are harmless); the first delivery after a catch-up seed renders the full
// snapshot. A full queue applies the channel's backpressure policy —
// kDropOldest evicts the oldest queued epoch (counted in the channel's
// `dropped` leaf), kBlockPublisher makes the publisher wait for space, but
// only up to publisher_block_cap_ns before dropping the new epoch — so a
// subscriber that never drains can never wedge Tick. The handle is
// owner-bound: poll/unsubscribe verify the calling principal, no further
// monitor checks are made (admission-once-then-act, like an open file).
//
// Durable subscriptions: ExportSubscription serializes a channel's identity
// (principal, last delivered version, backpressure policy) into a one-line
// token; ResumeSubscription re-admits it — the monitor Check runs again, so
// a revoked principal cannot smuggle a stale capability across a restart.

#ifndef XSEC_SRC_SERVICES_STATS_SERVICE_H_
#define XSEC_SRC_SERVICES_STATS_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "src/extsys/kernel.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {

class MediationRing;
class ShardGrantTable;

// What Tick() does when a subscriber's queue is full.
enum class SubscriberBackpressure : uint8_t {
  // Evict the oldest queued epoch to make room (the subscriber sees a gap;
  // the channel's `dropped` counter says how wide). The publisher never
  // waits. This is the default.
  kDropOldest = 0,
  // The publisher waits for the subscriber to drain — but only up to
  // StatsServiceOptions::publisher_block_cap_ns, after which the *new* epoch
  // is dropped instead. Bounded losslessness: a briefly slow subscriber
  // loses nothing, a stuck one costs Tick at most the cap.
  kBlockPublisher,
};

struct StatsServiceOptions {
  std::string mount_path = "/sys/monitor";
  std::string service_path = "/svc/stats";
  // Publication epoch: the snapshot/rate leaves refresh at most this often,
  // and a blocked watcher re-examines the counters once per interval (the
  // watch path is self-clocking; no background thread is required).
  uint64_t epoch_interval_ns = 20'000'000;  // 20 ms
  // Window the /sys/monitor/rate/* leaves average over.
  uint64_t rate_window_ns = 1'000'000'000;  // 1 s
  // Optionally run a dedicated publisher thread that Ticks every epoch so
  // versions advance even with no readers. Off by default: tests and tools
  // get deterministic, single-threaded behavior unless they opt in.
  bool background_publisher = false;
  // Bounded per-subscriber epoch queue depth.
  size_t subscriber_queue_capacity = 8;
  // Longest a kBlockPublisher channel may stall the publisher per epoch.
  uint64_t publisher_block_cap_ns = 50'000'000;  // 50 ms
  // Admission-time cap on live subscription channels.
  size_t max_subscribers = 64;
  // Admission-time cap on live channels per owning principal (0 = no
  // per-principal cap). Denials are counted at
  // /sys/monitor/subscribers/quota_denied. Contains one misbehaving subject
  // without starving everyone else of the global max_subscribers budget.
  size_t max_channels_per_principal = 4;
  // A watch/poll waiter carrying a cancel flag or deadline never parks
  // longer than this per wait slice, so cancellation is honored at this
  // granularity even when epoch_interval_ns is huge (0 = no cap: a
  // cancelled waiter may sleep up to one full epoch).
  uint64_t cancel_poll_interval_ns = 5'000'000;  // 5 ms
};

class StatsService {
 public:
  // The kernel must outlive this service.
  explicit StatsService(Kernel* kernel, StatsServiceOptions options = {});
  // Legacy convenience: custom mount/service paths, default intervals.
  StatsService(Kernel* kernel, std::string mount_path,
               std::string service_path = "/svc/stats");
  ~StatsService();

  // Binds the stats tree under mount_path (fail-closed ACL on the mount
  // root) and registers the /svc/stats procedures:
  //   read <path>            -> the node's current value (string)
  //   dump                   -> every readable single-line node, "path value"
  //   watch <since> [ms]     -> blocks until the published snapshot version
  //                             exceeds `since` (pass -1 for "any change
  //                             after this call"), then returns the new
  //                             snapshot text; kDeadlineExceeded on timeout.
  //                             A `since` beyond the published version is a
  //                             stale handle from a reset era: the current
  //                             snapshot is returned immediately.
  //   subscribe [since] [policy] -> opens a channel ("drop" or "block"
  //                             backpressure), returns its handle; a `since`
  //                             below the current version seeds the queue
  //                             with one catch-up snapshot.
  //   poll <handle> [ms]     -> next queued epoch, blocking up to ms;
  //                             kDeadlineExceeded if none arrives.
  //   unsubscribe <handle>   -> closes the channel.
  //   export <handle>        -> one-line durable token for the channel.
  //   resume <token>         -> re-admits the token; returns a new handle.
  Status Install();

  // Mounts the mediation-ring telemetry leaves
  // (ring/shards|depth|batches|submitted|completed|stalls) for a transport
  // the embedder created. Call after Install; the ring must outlive this
  // service.
  Status MountRing(MediationRing* ring);

  // Mounts the per-monitor-shard telemetry leaves
  // (shard/count and shard/<i>/checks|ns_gen|acl_gen|label_epoch for each
  // concrete shard, plus shard/aggregate/checks for the aggregate domain),
  // reading the monitor's shard-local stamps and check counters. Call after
  // Install; the monitor must outlive this service.
  Status MountShards(ReferenceMonitor* monitor);

  // Mounts the cross-shard grant-table leaves
  // (shard/grants/count|admitted|rejected|transfers_consumed|interned_names).
  // Call after Install; the table must outlive this service.
  Status MountGrants(ShardGrantTable* grants);

  // Mounts the supervision health leaves (MODEL.md §16):
  // health/state|quarantined|lockdown, health/watchdog/stuck_shards, plus
  // per-extension leaves health/ext/<name>/state|trips|timeouts|inflight,
  // mounted as names register via the supervisor's registration hook. Call
  // after Install; the supervisor must outlive this service.
  Status MountHealth(ExtensionSupervisor* supervisor);

  const std::string& mount_path() const { return options_.mount_path; }
  const std::string& service_path() const { return options_.service_path; }

  // -- Mediated operations ----------------------------------------------------

  // Reads one stats node: Check(subject, node, read) on the leaf, then
  // renders the current value. The check is the real monitor path, so a
  // denial here is itself counted and audited.
  StatusOr<std::string> ReadStat(Subject& subject, std::string_view path);

  // Renders every single-line stats node the subject can read, "path value"
  // per line in path order (the multi-line `snapshot` leaf is excluded).
  // Nodes the subject cannot read are silently skipped — and each skip is a
  // counted denial.
  StatusOr<std::string> DumpTree(Subject& subject);

  // -- Snapshot publication ---------------------------------------------------

  // Captures the counters now and publishes them as a new version if they
  // changed since the last publication (gauges included). Returns the
  // current version either way. Thread-safe; wakes blocked watchers on a
  // version change. Even when nothing changed the immutable epoch is
  // re-swapped (same version, fresher rates), so rate leaves keep decaying.
  uint64_t Tick();

  // Current published version (0 until the first Tick). Lock-free.
  uint64_t version() const;

  // Trusted render of the published snapshot (refreshing it first if it is
  // older than one epoch), no mediation — tools, tests.
  std::string RenderSnapshot();

  // Trusted render of every single-line leaf, no mediation (tools, tests).
  std::string RenderAll() const;

  // Blocks until the published version differs from `since` or `deadline_ns`
  // (absolute, MonotonicNowNs clock; 0 = unbounded) passes. Self-clocking:
  // a blocked caller re-captures the counters once per epoch interval, so
  // changes are observed within one epoch even with no background publisher.
  // A `since` ahead of the published version (a handle from before a service
  // restart) returns the current snapshot immediately instead of parking.
  // `call`, when given, makes the wait a cancellation point: the caller's
  // deadline/cancel flag is polled once per wakeup. Returns the new snapshot
  // text, or kDeadlineExceeded / kCancelled.
  StatusOr<std::string> WaitForUpdate(uint64_t since, uint64_t deadline_ns,
                                      const CallContext* call = nullptr);

  // -- Subscription channels --------------------------------------------------

  // One admission check (read on the snapshot leaf), then a capability
  // handle. `since` = -1 baselines now (the queue starts empty); any other
  // `since` that differs from the current version seeds the queue with one
  // catch-up full snapshot (a `since` *ahead* of the version is a handle
  // from a previous service incarnation — its era is gone, so it catches up
  // too). Mounts /sys/monitor/subscribers/<id>/... telemetry.
  StatusOr<uint64_t> Subscribe(Subject& subject, int64_t since,
                               SubscriberBackpressure backpressure =
                                   SubscriberBackpressure::kDropOldest);

  // Pops the next queued epoch, blocking until `deadline_ns` (absolute; 0 =
  // unbounded) if the queue is empty. Self-clocking like WaitForUpdate, and
  // a cancellation point when `call` is given. No monitor check: the handle
  // was admitted at Subscribe; only the owning principal may poll. The
  // rendered text is a delta against the channel's previous delivery
  // (header lines `version`, `reset_epoch`, `delta_from`, then only the
  // leaves whose values changed); full snapshot on first/catch-up delivery.
  StatusOr<std::string> PollSubscription(Subject& subject, uint64_t id,
                                         uint64_t deadline_ns,
                                         const CallContext* call = nullptr);

  // Closes the channel and unmounts its telemetry. Owner-only.
  Status Unsubscribe(Subject& subject, uint64_t id);

  // -- Durable subscriptions --------------------------------------------------

  // Serializes the channel's durable identity (owner principal, last
  // delivered version, backpressure policy) into a one-line token the owner
  // can present to a future incarnation of this service. Owner-only.
  StatusOr<std::string> ExportSubscription(Subject& subject, uint64_t id);

  // Re-establishes a channel from an exported token. The token must belong
  // to the calling principal, and admission is checked AGAIN (the same
  // monitor Check as Subscribe) — a principal whose read right was revoked
  // between export and resume is denied, token or no token. Returns the new
  // handle; the queue is seeded with one catch-up snapshot whenever the
  // token's version differs from the current one.
  StatusOr<uint64_t> ResumeSubscription(Subject& subject,
                                        const std::string& token);

  // Bulk-closes every channel owned by `principal` and unmounts their
  // telemetry; returns how many were closed. The hook a hosting shell calls
  // when a subject exits — trusted (no subject check), like the shell's own
  // teardown of the principal.
  size_t GcChannelsFor(PrincipalId principal);

  // Live channels / epochs dropped across all channels ever (both also
  // mounted under /sys/monitor/subscribers/).
  size_t active_subscribers() const;
  uint64_t subscriber_dropped_total() const {
    return subscriber_dropped_total_.load(std::memory_order_relaxed);
  }
  // Subscribe calls denied by the per-principal channel quota (also at
  // /sys/monitor/subscribers/quota_denied).
  uint64_t quota_denied_total() const {
    return quota_denied_total_.load(std::memory_order_relaxed);
  }

 private:
  struct SubscriberChannel;

  // One published epoch, immutable after the atomic swap: the consistent
  // snapshot, the gauges captured alongside it, the precomputed windowed
  // rates, and the full rendered text. Readers share it by pointer.
  struct PublishedEpoch {
    uint64_t version = 0;
    MonitorStats::Snapshot snap;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_stale = 0;
    uint64_t audit_retained = 0;
    uint64_t audit_dropped = 0;
    uint64_t tick_ns = 0;
    double checks_per_sec = 0.0;
    double denials_per_sec = 0.0;
    std::string rendered;  // full snapshot text
  };
  using PublishedPtr = std::shared_ptr<const PublishedEpoch>;

  // Binds one leaf (relative to the mount) backed by `render`. Leaves with
  // `in_dump` false (multi-line renderings) are skipped by DumpTree and
  // RenderAll.
  Status MountLeaf(const std::string& relative_path, std::function<std::string()> render,
                   bool in_dump = true);

  // Mounts / unmounts the per-channel telemetry leaves
  // (subscribers/<id>/queued|delivered|dropped).
  Status MountSubscriberLeaves(const std::shared_ptr<SubscriberChannel>& channel);
  void UnmountSubscriberLeaves(uint64_t id);

  // Pushes a newly published epoch to every channel, applying each one's
  // backpressure policy. Never called with pub_mu_ held (a kBlockPublisher
  // wait must not stall watchers), and never holds sub_mu_ while waiting.
  void FanOut(uint64_t version, const PublishedPtr& epoch);

  // Re-publishes only if the published snapshot is older than one epoch.
  void MaybeTick();

  // Renders `cur` as snapshot text. With `prev` == nullptr every leaf is
  // emitted (the full snapshot); otherwise only the leaves whose values
  // changed since `prev`, after a `delta_from <prev version>` header —
  // counters are cumulative, so a delta spanning dropped epochs is exact.
  std::string RenderEpoch(const PublishedEpoch& cur,
                          const PublishedEpoch* prev) const;

  // Windowed rates over the epoch ring. Caller holds pub_mu_.
  double ChecksPerSecLocked() const;
  double DenialsPerSecLocked() const;

  struct Leaf {
    NodeId node;
    std::function<std::string()> render;
    bool in_dump = true;
  };

  // One published epoch's cumulative counters; rate = windowed delta. The
  // reset_epoch pins which MonitorStats::Reset era the counters belong to:
  // deltas across eras are meaningless even when the newer cumulative value
  // has already grown past the older one, so Tick drops mismatched entries.
  struct RateEpoch {
    uint64_t t_ns = 0;
    uint64_t checks = 0;
    uint64_t denials = 0;
    uint64_t reset_epoch = 0;
  };

  // A persistent subscription channel. All mutable state is guarded by the
  // service-wide sub_mu_; the cv is per channel so a publisher waiting for
  // space on one channel and a poller waiting for data on another never
  // thunder each other. Held by shared_ptr: renders, pollers, and a blocked
  // publisher keep the channel alive across a concurrent Unsubscribe.
  struct SubscriberChannel {
    uint64_t id = 0;
    PrincipalId owner;
    SubscriberBackpressure backpressure = SubscriberBackpressure::kDropOldest;
    // Queue slots are epoch pointers (one machine word + refcount), not
    // rendered text: a bounded queue holds deep history cheaply, and the
    // delta against `last_delivered` is rendered lazily at poll time.
    std::deque<PublishedPtr> queue;
    // The epoch most recently handed to the poller; the baseline the next
    // delivery's delta is computed against. nullptr = the next delivery is
    // a catch-up (or first) delivery and renders the full snapshot.
    PublishedPtr last_delivered;
    // Highest version ever pushed (or dropped at the cap): concurrent Ticks
    // fan out unordered, and this keeps each channel's stream monotone.
    uint64_t last_version = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    bool closed = false;
    // Threads currently parked on `cv` (guarded by sub_mu_). The publisher's
    // fan-out loop skips the notify when this is zero — with no waiter a
    // notify is pure per-channel overhead on the publish path, and the
    // counter is exact because a poller increments it under sub_mu_ before
    // the wait atomically releases the lock.
    size_t waiters = 0;
    std::condition_variable cv;  // space (publisher) and data (poller)
  };

  Kernel* kernel_;
  StatsServiceOptions options_;
  // Full path -> bound node + value renderer; ordered so dumps are
  // deterministic. Written at Install and on subscribe/unsubscribe, read by
  // every dump — hence the shared_mutex. Lock order: renders run under a
  // shared hold and may take pub_mu_ or sub_mu_, so code holding either of
  // those must never take values_mu_.
  mutable std::shared_mutex values_mu_;
  std::map<std::string, Leaf> values_;
  NodeId snapshot_node_;

  // Subscription state. sub_mu_ guards the registry and every channel's
  // mutable fields; the aggregate drop counter is atomic so it survives
  // channel teardown and renders without the lock.
  mutable std::mutex sub_mu_;
  std::map<uint64_t, std::shared_ptr<SubscriberChannel>> subscribers_;
  // The same open channels, flat, for the publisher's fan-out loop: the
  // node-based map costs a dependent cache miss per channel, which at 64
  // subscribers is visible next to the O(1) pointer push the tentpole
  // promises. Kept in lockstep with subscribers_ under sub_mu_.
  std::vector<std::shared_ptr<SubscriberChannel>> fanout_order_;
  uint64_t next_subscriber_id_ = 1;
  std::atomic<uint64_t> subscriber_dropped_total_{0};
  std::atomic<uint64_t> quota_denied_total_{0};

  // The atomically swapped epoch pointer. Semantically this is
  // std::atomic<shared_ptr>, and libstdc++ implements that as exactly this
  // shape — a per-pointer spinlock held for the refcount bump — but its
  // GCC 12 _Sp_atomic::load unlocks with a *relaxed* fetch_sub, leaving the
  // reader's plain pointer read unordered against the next writer's plain
  // write (a real data-race per the model; TSan flags it). This slot is the
  // same construction with the orders right: both sides unlock with
  // release, both lock with acquire. Readers hold the flag only for a
  // shared_ptr copy — never for a render, a wait, or an allocation.
  class EpochSlot {
   public:
    PublishedPtr load() const {
      while (lock_.test_and_set(std::memory_order_acquire)) {
      }
      PublishedPtr copy = ptr_;
      lock_.clear(std::memory_order_release);
      return copy;
    }
    void store(PublishedPtr next) {
      // The displaced epoch is released outside the critical section: its
      // destructor (snapshot + rendered text) must not run under the flag.
      PublishedPtr old;
      while (lock_.test_and_set(std::memory_order_acquire)) {
      }
      old = std::move(ptr_);
      ptr_ = std::move(next);
      lock_.clear(std::memory_order_release);
    }

   private:
    mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
    PublishedPtr ptr_;
  };

  // Publication state — the RCU split. `published_` is the atomically
  // swapped immutable epoch every reader loads without blocking on the
  // publisher. pub_mu_ is
  // WRITER-side only: it serializes concurrent Ticks and guards version_
  // and the rate ring; no read path takes it. wait_mu_/wait_cv_ exist only
  // to park watchers: a waiter re-checks the atomic pointer under wait_mu_
  // before sleeping, and Tick notifies after the swap, so wakeups are never
  // lost and the publisher's critical section never includes a render read.
  EpochSlot published_;
  mutable std::mutex pub_mu_;  // writer-side only
  uint64_t version_ = 0;       // guarded by pub_mu_
  std::deque<RateEpoch> rate_ring_;  // guarded by pub_mu_
  std::atomic<uint64_t> last_tick_ns_{0};

  mutable std::mutex wait_mu_;
  std::condition_variable wait_cv_;

  // Optional background publisher.
  bool stop_ = false;  // guarded by wait_mu_
  std::thread publisher_;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_STATS_SERVICE_H_
