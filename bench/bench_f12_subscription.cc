// Experiment F12 — subscription fan-out cost on the publish path.
//
// Tick() pushes each newly published epoch to every subscriber channel, so
// the publisher pays O(subscribers) per epoch. The tentpole claim is that a
// slow or absent consumer never wedges publication: under kDropOldest the
// per-channel work is a deque rotation and a counter bump even when every
// queue is full. The figure sweeps:
//
//   PublishFanOut/subscribers:<n>   one mediated check + Tick, n channels
//                                   under kDropOldest, none draining
//   SubscribeUnsubscribe            admission check + channel mount/unmount
//                                   round trip (the control-plane cost)
//
// Expected shape: PublishFanOut grows linearly in n with a shallow slope —
// the n:64 cell should be well under 2x the render-dominated n:0 baseline
// per epoch, because a fan-out step is tiny next to rendering the snapshot.
// items_per_second counts published epochs.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/extsys/kernel.h"
#include "src/services/stats_service.h"

namespace xsec {
namespace {

StatsServiceOptions BenchOptions() {
  StatsServiceOptions options;
  // Publication is driven by the explicit Tick below; a huge epoch interval
  // keeps the self-clocking read paths out of the measurement.
  options.epoch_interval_ns = uint64_t{3600} * 1'000'000'000;
  options.max_subscribers = 1024;
  return options;
}

void BM_PublishFanOut(benchmark::State& state) {
  Kernel kernel;
  StatsService stats(&kernel, BenchOptions());
  if (!stats.Install().ok()) {
    state.SkipWithError("Install failed");
    return;
  }
  Subject system = kernel.SystemSubject();
  std::vector<uint64_t> ids;
  for (int64_t i = 0; i < state.range(0); ++i) {
    auto id = stats.Subscribe(system, -1, SubscriberBackpressure::kDropOldest);
    if (!id.ok()) {
      state.SkipWithError("Subscribe failed");
      return;
    }
    ids.push_back(*id);
  }
  NodeId root = kernel.name_space().root();
  for (auto _ : state) {
    // A counter has to move or Tick publishes nothing; one mediated check is
    // the cheapest way to guarantee a fresh epoch every iteration.
    benchmark::DoNotOptimize(kernel.monitor().Check(system, root, AccessMode::kList));
    benchmark::DoNotOptimize(stats.Tick());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["dropped"] =
      static_cast<double>(stats.subscriber_dropped_total());
  for (uint64_t id : ids) {
    (void)stats.Unsubscribe(system, id);
  }
}
BENCHMARK(BM_PublishFanOut)
    ->ArgName("subscribers")
    ->Arg(0)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64);

void BM_SubscribeUnsubscribe(benchmark::State& state) {
  Kernel kernel;
  StatsService stats(&kernel, BenchOptions());
  if (!stats.Install().ok()) {
    state.SkipWithError("Install failed");
    return;
  }
  Subject system = kernel.SystemSubject();
  for (auto _ : state) {
    auto id = stats.Subscribe(system, -1);
    if (!id.ok()) {
      state.SkipWithError("Subscribe failed");
      return;
    }
    (void)stats.Unsubscribe(system, *id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubscribeUnsubscribe);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
