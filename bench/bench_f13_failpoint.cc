// Experiment F13 — disarmed-failpoint overhead (MODEL.md §12).
//
// Failpoints are compiled into production paths unconditionally; the design
// only works if a disarmed site is effectively free, because the sites sit
// on the audit hot path and inside the dispatcher. This figure measures:
//
//   disarmed_macro       one XSEC_FAILPOINT hit, never armed (the common case:
//                        a function-local-static load + one relaxed atomic)
//   disarmed_fired       the expression form, same disarmed cost shape
//   armed_pass_through   armed but gated out by nth (the mutex slow path)
//   registry_lookup      FailpointRegistry::GetOrCreate by name (what the
//                        static initializer pays once per site)
//   check_with_sites     a full mediated Check on a kernel whose audit path
//                        contains the compiled-in sites, failpoints disarmed
//                        — the end-to-end overhead the +10% F1 gate bounds
//
// Expected shape: disarmed_* in the ~1 ns range, orders below a mediated
// check; armed_pass_through tens of ns (mutex); check_with_sites within
// noise of the F1 cached-check figure.

#include <benchmark/benchmark.h>

#include "src/base/failpoint.h"
#include "src/core/secure_system.h"

namespace xsec {
namespace {

Status HitDisarmed() {
  XSEC_FAILPOINT("bench.f13.disarmed");
  return OkStatus();
}

void BM_DisarmedMacro(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(HitDisarmed());
  }
}
BENCHMARK(BM_DisarmedMacro);

void BM_DisarmedFired(benchmark::State& state) {
  for (auto _ : state) {
    bool fired = XSEC_FAILPOINT_FIRED("bench.f13.fired");
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_DisarmedFired);

Status HitGated() {
  XSEC_FAILPOINT("bench.f13.gated");
  return OkStatus();
}

void BM_ArmedPassThrough(benchmark::State& state) {
  // nth far in the future: every hit takes the mutex slow path but passes.
  (void)FailpointRegistry::Instance().Arm("bench.f13.gated",
                                          "error,nth=1000000000000");
  for (auto _ : state) {
    benchmark::DoNotOptimize(HitGated());
  }
  FailpointRegistry::Instance().DisarmAll();
}
BENCHMARK(BM_ArmedPassThrough);

void BM_RegistryLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FailpointRegistry::Instance().GetOrCreate("bench.f13.lookup"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_CheckWithSites(benchmark::State& state) {
  SecureSystem sys;
  PrincipalId user = *sys.CreateUser("bench-user");
  Subject subject = sys.Login(user, sys.labels().Bottom());
  NodeId node = *sys.name_space().BindPath("/fs/bench", NodeKind::kFile,
                                           sys.system_principal());
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, user, AccessMode::kRead});
  (void)sys.name_space().SetAclRef(node, sys.kernel().acls().Create(std::move(acl)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.monitor().Check(subject, node, AccessMode::kRead));
  }
}
BENCHMARK(BM_CheckWithSites);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
