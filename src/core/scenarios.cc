#include "src/core/scenarios.h"

#include "src/base/strings.h"

namespace xsec {
namespace {

// Shared lattice for every scenario.
// Levels (ascending trust): 0 = others, 1 = organization, 2 = local.
// Categories: 0 = myself, 1 = department-1, 2 = department-2, 3 = outside.
SecurityClass Cls(TrustLevel level, std::initializer_list<size_t> cats) {
  CategorySet set(4);
  for (size_t cat : cats) {
    set.Set(cat);
  }
  return SecurityClass(level, std::move(set));
}

// Shared cast. uids: local=1 dep1=2 dep2=3 both=4 remote=5 reporter=6 audit=7.
// gids: staff=10 dep1=11 dep2=12 staff-all=13 everyone=99.
constexpr uint32_t kUidLocal = 1, kUidDep1 = 2, kUidDep2 = 3, kUidBoth = 4, kUidRemote = 5,
                   kUidReporter = 6, kUidAudit = 7;
constexpr uint32_t kGidStaff = 10, kGidDep1 = 11, kGidDep2 = 12, kGidStaffAll = 13,
                   kGidEveryone = 99;

std::vector<BaselineSubject> Cast() {
  std::vector<BaselineSubject> cast = {
      {"local-user", kUidLocal, {kGidStaff, kGidEveryone}, Origin::kLocal,
       Cls(2, {0, 1, 2, 3})},
      {"org-dep1", kUidDep1, {kGidDep1, kGidStaffAll, kGidEveryone}, Origin::kOrganization,
       Cls(1, {1})},
      {"org-dep2", kUidDep2, {kGidDep2, kGidStaffAll, kGidEveryone}, Origin::kOrganization,
       Cls(1, {2})},
      {"org-both", kUidBoth, {kGidDep1, kGidDep2, kGidStaffAll, kGidEveryone},
       Origin::kOrganization, Cls(1, {1, 2})},
      // An auditor cleared for both departments but owning nothing:
      // distinguishes class-based sharing from ownership-based sharing.
      {"org-audit", kUidAudit, {kGidDep1, kGidDep2, kGidStaffAll, kGidEveryone},
       Origin::kOrganization, Cls(1, {1, 2})},
      {"remote", kUidRemote, {kGidEveryone}, Origin::kRemote, Cls(0, {3})},
      {"reporter", kUidReporter, {kGidEveryone}, Origin::kRemote, Cls(0, {})},
  };
  // The local user is the machine owner: VINO-privileged.
  cast[0].vino_privileged = true;
  return cast;
}

BaselineAce AllowUser(uint32_t uid, AccessModeSet modes) {
  return BaselineAce{true, false, uid, modes};
}
BaselineAce AllowGroup(uint32_t gid, AccessModeSet modes) {
  return BaselineAce{true, true, gid, modes};
}
BaselineAce DenyUser(uint32_t uid, AccessModeSet modes) {
  return BaselineAce{false, false, uid, modes};
}

constexpr AccessModeSet kRW = AccessMode::kRead | AccessMode::kWrite;

// S1 — ThreadMurder (§1.2): an untrusted applet must not be able to kill
// another applet's thread; the owner must still be able to kill its own.
Scenario S1() {
  Scenario s;
  s.id = "S1";
  s.title = "ThreadMurder: cross-applet thread kill";
  s.paper_ref = "§1.2 (McGraw/Felten counterexample to the Java sandbox)";
  s.world.subjects = Cast();
  BaselineObject t1;
  t1.path = "/obj/threads/t1";
  t1.category = ObjectCategory::kThread;
  t1.owner_uid = kUidDep1;
  t1.owner_gid = kGidDep1;
  t1.unix_mode = 0600;
  t1.acl = {AllowUser(kUidDep1, AccessMode::kRead | AccessMode::kWrite | AccessMode::kDelete |
                                    AccessMode::kList)};
  t1.spin_domain = "threads";
  t1.vino_sensitive = true;
  t1.security_class = Cls(1, {1});
  s.world.objects = {t1};
  s.world.spin_links = {{"org-dep1", {"threads"}}, {"remote", {"threads"}}};
  s.probes = {
      {"remote", "/obj/threads/t1", AccessMode::kDelete, false,
       "untrusted applet kills another applet's thread"},
      {"org-dep1", "/obj/threads/t1", AccessMode::kDelete, true, "owner kills its own thread"},
  };
  return s;
}

// S2 — the sandbox's raison d'être: remote code must not read local files,
// while local code keeps working.
Scenario S2() {
  Scenario s;
  s.id = "S2";
  s.title = "Remote code reads a local file";
  s.paper_ref = "§1.2 (trusted local vs untrusted remote extensions)";
  s.world.subjects = Cast();
  BaselineObject dir;
  dir.path = "/fs/local";
  dir.category = ObjectCategory::kDirectory;
  dir.owner_uid = kUidLocal;
  dir.acl = {AllowUser(kUidLocal, AccessModeSet::All())};
  dir.security_class = Cls(2, {0});
  BaselineObject secret;
  secret.path = "/fs/local/secret";
  secret.owner_uid = kUidLocal;
  secret.owner_gid = kGidStaff;
  secret.unix_mode = 0640;
  secret.acl = {AllowUser(kUidLocal, kRW)};
  secret.security_class = Cls(2, {0});
  secret.vino_sensitive = true;
  s.world.objects = {dir, secret};
  s.world.spin_links = {{"local-user", {"fs"}}, {"remote", {"net"}}};
  s.probes = {
      {"remote", "/fs/local/secret", AccessMode::kRead, false, "read-up from untrusted code"},
      {"local-user", "/fs/local/secret", AccessMode::kRead, true, "trusted local access"},
  };
  return s;
}

// S3 — functionality floor: legitimate access must keep working, including
// public data for untrusted code (the Java sandbox is too coarse here).
Scenario S3() {
  Scenario s;
  s.id = "S3";
  s.title = "Legitimate access keeps working (incl. public files)";
  s.paper_ref = "§1.2 (sandbox blocks whole services, e.g. all file access)";
  s.world.subjects = Cast();
  BaselineObject ldir;
  ldir.path = "/fs/local";
  ldir.category = ObjectCategory::kDirectory;
  ldir.owner_uid = kUidLocal;
  ldir.acl = {AllowUser(kUidLocal, AccessModeSet::All())};
  ldir.security_class = Cls(2, {0, 1, 2, 3});
  BaselineObject tool;
  tool.path = "/fs/local/tool";
  tool.owner_uid = kUidLocal;
  tool.owner_gid = kGidStaff;
  tool.unix_mode = 0600;
  tool.acl = {AllowUser(kUidLocal, kRW)};
  tool.security_class = Cls(2, {0, 1, 2, 3});
  tool.vino_sensitive = true;
  BaselineObject pdir;
  pdir.path = "/fs/pub";
  pdir.category = ObjectCategory::kDirectory;
  pdir.owner_uid = kUidReporter;
  pdir.acl = {AllowUser(kUidReporter, AccessModeSet::All()),
              AllowGroup(kGidEveryone, AccessMode::kRead | AccessMode::kList)};
  pdir.security_class = Cls(0, {});
  BaselineObject motd;
  motd.path = "/fs/pub/motd";
  motd.owner_uid = kUidReporter;
  motd.owner_gid = kGidEveryone;
  motd.unix_mode = 0644;
  motd.acl = {AllowUser(kUidReporter, kRW), AllowGroup(kGidEveryone, AccessMode::kRead)};
  motd.security_class = Cls(0, {});
  s.world.objects = {ldir, tool, pdir, motd};
  s.world.spin_links = {{"local-user", {"fs"}}, {"remote", {"fs"}},
                        {"reporter", {"fs"}}};
  s.probes = {
      {"local-user", "/fs/local/tool", AccessMode::kRead, true, "own file read"},
      {"local-user", "/fs/local/tool", AccessMode::kWrite, true, "own file write"},
      {"remote", "/fs/pub/motd", AccessMode::kRead, true, "public file stays readable"},
      {"reporter", "/fs/pub/motd", AccessMode::kWrite, true, "author updates own public file"},
  };
  return s;
}

// Shared /fs/org directory for S4/S5/S7/S11/S12.
BaselineObject OrgDir(std::vector<BaselineAce> acl) {
  BaselineObject dir;
  dir.path = "/fs/org";
  dir.category = ObjectCategory::kDirectory;
  dir.owner_uid = kUidLocal;
  dir.owner_gid = kGidStaffAll;
  dir.unix_mode = 0750;
  dir.acl = std::move(acl);
  dir.security_class = Cls(1, {});
  return dir;
}

// S4 — §2: "applets that originate from within the organization should not
// be able to access or interfere with each other (unless some controlled
// sharing of information is desired)".
Scenario S4() {
  Scenario s;
  s.id = "S4";
  s.title = "Departments separated within one trust level";
  s.paper_ref = "§2 (categories within a level of trust)";
  s.world.subjects = Cast();
  BaselineObject dep1;
  dep1.path = "/fs/org/dep1.txt";
  dep1.owner_uid = kUidDep1;
  dep1.owner_gid = kGidDep1;
  dep1.unix_mode = 0640;
  dep1.acl = {AllowUser(kUidDep1, kRW), AllowGroup(kGidDep1, AccessMode::kRead)};
  dep1.security_class = Cls(1, {1});
  dep1.vino_sensitive = true;
  BaselineObject dep2;
  dep2.path = "/fs/org/dep2.txt";
  dep2.owner_uid = kUidDep2;
  dep2.owner_gid = kGidDep2;
  dep2.unix_mode = 0640;
  dep2.acl = {AllowUser(kUidDep2, kRW), AllowGroup(kGidDep2, AccessMode::kRead)};
  dep2.security_class = Cls(1, {2});
  dep2.vino_sensitive = true;
  s.world.objects = {OrgDir({AllowGroup(kGidDep1, AccessMode::kRead | AccessMode::kList),
                             AllowGroup(kGidDep2, AccessMode::kRead | AccessMode::kList)}),
                     dep1, dep2};
  s.world.spin_links = {{"org-dep1", {"fs"}}, {"org-dep2", {"fs"}}, {"org-both", {"fs"}}};
  s.probes = {
      {"org-dep1", "/fs/org/dep1.txt", AccessMode::kRead, true, "own department data"},
      {"org-dep1", "/fs/org/dep2.txt", AccessMode::kRead, false, "other department's data"},
      {"org-dep2", "/fs/org/dep2.txt", AccessMode::kRead, true, "own department data"},
      {"org-both", "/fs/org/dep1.txt", AccessMode::kRead, true, "dual-label subject (paper §2.2)"},
      {"org-both", "/fs/org/dep2.txt", AccessMode::kRead, true, "dual-label subject (paper §2.2)"},
  };
  return s;
}

// S5 — a joint compartment: data labeled with BOTH departments may only be
// read by subjects holding both categories. Discretionary ACLs are
// disjunctive (any matching allow grants), so no DAC-only model can express
// the conjunction — this is the mandatory lattice earning its keep.
Scenario S5() {
  Scenario s;
  s.id = "S5";
  s.title = "Joint compartment requires both categories";
  s.paper_ref = "§2.2 (category subsets ordered by inclusion)";
  s.world.subjects = Cast();
  BaselineObject joint;
  joint.path = "/fs/org/joint.txt";
  joint.owner_uid = kUidBoth;
  joint.owner_gid = kGidDep1;
  joint.unix_mode = 0640;
  joint.acl = {AllowUser(kUidBoth, kRW), AllowGroup(kGidDep1, AccessMode::kRead),
               AllowGroup(kGidDep2, AccessMode::kRead)};
  joint.security_class = Cls(1, {1, 2});
  joint.vino_sensitive = true;
  s.world.objects = {OrgDir({AllowGroup(kGidDep1, AccessMode::kRead | AccessMode::kList),
                             AllowGroup(kGidDep2, AccessMode::kRead | AccessMode::kList)}),
                     joint};
  s.world.spin_links = {{"org-dep1", {"fs"}}, {"org-dep2", {"fs"}}, {"org-both", {"fs"}}};
  s.probes = {
      {"org-both", "/fs/org/joint.txt", AccessMode::kRead, true, "holds both categories"},
      {"org-dep1", "/fs/org/joint.txt", AccessMode::kRead, false, "holds only department-1"},
      {"org-dep2", "/fs/org/joint.txt", AccessMode::kRead, false, "holds only department-2"},
      {"org-audit", "/fs/org/joint.txt", AccessMode::kRead, true,
       "class-based sharing, no ownership required"},
  };
  return s;
}

// S6 — per-file ACLs inside one directory: the AFS granularity critique.
Scenario S6() {
  Scenario s;
  s.id = "S6";
  s.title = "Different rights on two files in one directory";
  s.paper_ref = "§2 (AFS ACLs 'at too high a grain')";
  s.world.subjects = Cast();
  BaselineObject dir;
  dir.path = "/fs/shared";
  dir.category = ObjectCategory::kDirectory;
  dir.owner_uid = kUidLocal;
  dir.unix_mode = 0755;
  dir.acl = {AllowUser(kUidDep1, AccessMode::kRead | AccessMode::kList),
             AllowUser(kUidDep2, AccessMode::kRead | AccessMode::kList)};
  dir.security_class = Cls(1, {});
  BaselineObject a;
  a.path = "/fs/shared/a.txt";
  a.owner_uid = kUidDep1;
  a.unix_mode = 0600;
  a.acl = {AllowUser(kUidDep1, AccessMode::kRead)};
  a.security_class = Cls(1, {1});
  a.vino_sensitive = true;
  BaselineObject b;
  b.path = "/fs/shared/b.txt";
  b.owner_uid = kUidDep2;
  b.unix_mode = 0600;
  b.acl = {AllowUser(kUidDep2, AccessMode::kRead)};
  b.security_class = Cls(1, {2});
  b.vino_sensitive = true;
  s.world.objects = {dir, a, b};
  s.world.spin_links = {{"org-dep1", {"fs"}}, {"org-dep2", {"fs"}}};
  s.probes = {
      {"org-dep1", "/fs/shared/a.txt", AccessMode::kRead, true, "granted per-file"},
      {"org-dep1", "/fs/shared/b.txt", AccessMode::kRead, false, "not granted on this file"},
      {"org-dep2", "/fs/shared/b.txt", AccessMode::kRead, true, "granted per-file"},
  };
  return s;
}

// S7 — negative entries: the group may read, one member is carved out.
Scenario S7() {
  Scenario s;
  s.id = "S7";
  s.title = "Negative ACL entry carves a member out of a group grant";
  s.paper_ref = "§2.1 (positive and negative access for individuals and groups)";
  s.world.subjects = Cast();
  BaselineObject memo;
  memo.path = "/fs/org/staff-memo";
  memo.owner_uid = kUidLocal;
  memo.owner_gid = kGidStaffAll;
  memo.unix_mode = 0640;
  memo.acl = {AllowGroup(kGidStaffAll, AccessMode::kRead),
              DenyUser(kUidDep2, AccessMode::kRead)};
  memo.security_class = Cls(0, {});
  memo.vino_sensitive = true;
  s.world.objects = {OrgDir({AllowGroup(kGidStaffAll, AccessMode::kRead | AccessMode::kList),
                             DenyUser(kUidDep2, AccessMode::kRead)}),
                     memo};
  s.world.spin_links = {{"org-dep1", {"fs"}}, {"org-dep2", {"fs"}}};
  s.probes = {
      {"org-dep1", "/fs/org/staff-memo", AccessMode::kRead, true, "group grant applies"},
      {"org-dep2", "/fs/org/staff-memo", AccessMode::kRead, false, "negative entry overrides"},
  };
  return s;
}

// S8/S9 — the paper's two new access modes must be separable.
Scenario S8() {
  Scenario s;
  s.id = "S8";
  s.title = "Extend granted without execute";
  s.paper_ref = "§2.1 (execute and extend are distinct modes)";
  s.world.subjects = Cast();
  BaselineObject iface;
  iface.path = "/svc/vfs/types/logfs";
  iface.category = ObjectCategory::kServiceInterface;
  iface.owner_uid = kUidLocal;
  iface.unix_mode = 0600;
  iface.acl = {AllowUser(kUidDep1, AccessMode::kExtend)};
  iface.spin_domain = "vfs";
  iface.security_class = Cls(1, {1});
  s.world.objects = {iface};
  s.world.spin_links = {{"org-dep1", {"vfs"}}};
  s.probes = {
      {"org-dep1", "/svc/vfs/types/logfs", AccessMode::kExtend, true,
       "may provide the implementation"},
      {"org-dep1", "/svc/vfs/types/logfs", AccessMode::kExecute, false,
       "but may not invoke the service"},
  };
  return s;
}

Scenario S9() {
  Scenario s;
  s.id = "S9";
  s.title = "Execute granted without extend";
  s.paper_ref = "§2.1 (execute and extend are distinct modes)";
  s.world.subjects = Cast();
  BaselineObject proc;
  proc.path = "/svc/fs/read";
  proc.category = ObjectCategory::kServiceProcedure;
  proc.owner_uid = kUidLocal;
  proc.unix_mode = 0010;  // group x: Unix's best attempt
  proc.owner_gid = kGidDep1;
  proc.acl = {AllowUser(kUidDep1, AccessMode::kExecute)};
  proc.spin_domain = "fs";
  proc.security_class = Cls(0, {});
  s.world.objects = {proc};
  s.world.spin_links = {{"org-dep1", {"fs"}}};
  s.probes = {
      {"org-dep1", "/svc/fs/read", AccessMode::kExecute, true, "may call the service"},
      {"org-dep1", "/svc/fs/read", AccessMode::kExtend, false,
       "but may not hijack it with a specialization"},
  };
  return s;
}

// S10 — write-append up, no blind overwrite, no read-back: the paper's
// parenthetical about write-append in §2.2. The DAC layer deliberately
// grants read/write/append to everyone; only a mandatory rule can still
// stop the overwrite and the read-up.
Scenario S10() {
  Scenario s;
  s.id = "S10";
  s.title = "Low-trust subject may append to a high log, not overwrite or read";
  s.paper_ref = "§2.2 (write-append limits blind overwrites up)";
  s.world.subjects = Cast();
  BaselineObject syslog;
  syslog.path = "/obj/syslog";
  syslog.owner_uid = kUidLocal;
  syslog.owner_gid = kGidStaff;
  syslog.unix_mode = 0626;  // other rw: Unix's best attempt at world-append
  syslog.acl = {AllowUser(kUidLocal, AccessModeSet::All()),
                AllowGroup(kGidEveryone, AccessMode::kRead | AccessMode::kWrite |
                                             AccessMode::kWriteAppend)};
  syslog.security_class = Cls(2, {0, 1, 2, 3});
  syslog.vino_sensitive = true;
  s.world.objects = {syslog};
  s.world.spin_links = {{"reporter", {"log"}}};
  s.probes = {
      {"reporter", "/obj/syslog", AccessMode::kWriteAppend, true, "append up is legal flow"},
      {"reporter", "/obj/syslog", AccessMode::kWrite, false, "blind overwrite up is not"},
      {"reporter", "/obj/syslog", AccessMode::kRead, false, "read-up is not"},
  };
  return s;
}

// S11/S12 — "users can not circumvent the basic security of the system by
// exercising discretionary access control" (§2.2): DAC grants broadly, MAC
// still confines.
Scenario S11() {
  Scenario s;
  s.id = "S11";
  s.title = "World-readable ACL cannot leak data up the lattice";
  s.paper_ref = "§2.2 (mandatory control overrides discretionary grants)";
  s.world.subjects = Cast();
  BaselineObject data;
  data.path = "/fs/org/dep1-data";
  data.owner_uid = kUidDep1;
  data.owner_gid = kGidDep1;
  data.unix_mode = 0644;
  data.acl = {AllowUser(kUidDep1, kRW), AllowGroup(kGidEveryone, AccessMode::kRead)};
  data.security_class = Cls(1, {1});
  data.vino_sensitive = true;
  s.world.objects = {OrgDir({AllowGroup(kGidEveryone, AccessMode::kRead | AccessMode::kList)}),
                     data};
  s.world.spin_links = {{"org-dep1", {"fs"}}, {"remote", {"fs"}}, {"local-user", {"fs"}}};
  s.probes = {
      {"remote", "/fs/org/dep1-data", AccessMode::kRead, false,
       "DAC grants world read, lattice forbids read-up"},
      {"org-dep1", "/fs/org/dep1-data", AccessMode::kRead, true, "owner reads own data"},
      {"local-user", "/fs/org/dep1-data", AccessMode::kRead, true, "read-down is legal"},
      {"org-both", "/fs/org/dep1-data", AccessMode::kRead, true,
       "dominating class reads without owning"},
  };
  return s;
}

Scenario S12() {
  Scenario s;
  s.id = "S12";
  s.title = "Cross-category leak via world grant at the same level";
  s.paper_ref = "§2.2 (strict separation of control compartments)";
  s.world.subjects = Cast();
  BaselineObject secret;
  secret.path = "/fs/org/dep1-secret";
  secret.owner_uid = kUidDep1;
  secret.owner_gid = kGidDep1;
  secret.unix_mode = 0644;
  secret.acl = {AllowUser(kUidDep1, kRW), AllowGroup(kGidEveryone, AccessMode::kRead)};
  secret.security_class = Cls(1, {1});
  secret.vino_sensitive = true;
  s.world.objects = {OrgDir({AllowGroup(kGidEveryone, AccessMode::kRead | AccessMode::kList)}),
                     secret};
  s.world.spin_links = {{"org-dep1", {"fs"}}, {"org-dep2", {"fs"}}, {"org-both", {"fs"}}};
  s.probes = {
      {"org-dep2", "/fs/org/dep1-secret", AccessMode::kRead, false,
       "same level, disjoint category"},
      {"org-both", "/fs/org/dep1-secret", AccessMode::kRead, true, "superset category reads"},
  };
  return s;
}

// S13 — the "three prongs" critique: one broken component must not collapse
// the whole protection system. The Java world's verifier is broken here; a
// single central facility is unaffected by definition.
Scenario S13() {
  Scenario s;
  s.id = "S13";
  s.title = "Robustness to a single broken component";
  s.paper_ref = "§1.2 (three prongs; economy of mechanism §3)";
  s.world.subjects = Cast();
  s.world.java_verifier_ok = false;
  BaselineObject dir;
  dir.path = "/fs/local";
  dir.category = ObjectCategory::kDirectory;
  dir.owner_uid = kUidLocal;
  dir.acl = {AllowUser(kUidLocal, AccessModeSet::All())};
  dir.security_class = Cls(2, {0});
  BaselineObject secret;
  secret.path = "/fs/local/secret2";
  secret.owner_uid = kUidLocal;
  secret.owner_gid = kGidStaff;
  secret.unix_mode = 0600;
  secret.acl = {AllowUser(kUidLocal, kRW)};
  secret.security_class = Cls(2, {0});
  secret.vino_sensitive = true;
  s.world.objects = {dir, secret};
  s.world.spin_links = {{"local-user", {"fs"}}, {"remote", {"net"}}};
  s.probes = {
      {"remote", "/fs/local/secret2", AccessMode::kRead, false,
       "a broken verifier must not open the file system"},
      {"local-user", "/fs/local/secret2", AccessMode::kRead, true, "local access unaffected"},
  };
  return s;
}

}  // namespace

std::vector<Scenario> BuildScenarios() {
  return {S1(), S2(), S3(), S4(), S5(), S6(), S7(), S8(), S9(), S10(), S11(), S12(), S13()};
}

ScenarioResult RunScenario(const Scenario& scenario, const ProtectionModel& model) {
  ScenarioResult result;
  for (const Probe& probe : scenario.probes) {
    const BaselineSubject* subject = nullptr;
    for (const BaselineSubject& candidate : scenario.world.subjects) {
      if (candidate.name == probe.subject) {
        subject = &candidate;
        break;
      }
    }
    const BaselineObject* object = scenario.world.FindObject(probe.object);
    if (subject == nullptr || object == nullptr) {
      result.handled = false;
      result.failed_probe_notes.push_back(
          StrFormat("%s: bad probe (unknown subject or object)", scenario.id.c_str()));
      continue;
    }
    bool allowed = model.Allows(scenario.world, *subject, *object, probe.mode);
    if (allowed == probe.should_allow) {
      continue;
    }
    result.handled = false;
    if (probe.should_allow) {
      ++result.functionality_failures;
    } else {
      ++result.security_failures;
    }
    result.failed_probe_notes.push_back(StrFormat(
        "%s/%s: %s %s %s -> %s, expected %s (%s)", scenario.id.c_str(),
        std::string(model.name()).c_str(), probe.subject.c_str(),
        std::string(AccessModeName(probe.mode)).c_str(), probe.object.c_str(),
        allowed ? "ALLOW" : "DENY", probe.should_allow ? "ALLOW" : "DENY", probe.why.c_str()));
  }
  return result;
}

ModelSet::ModelSet() {
  all_ = {&none_, &inferno_, &java_, &spin_, &vino_, &afs_,
          &unix_, &nt_, &xsec_dac_, &xsec_full_};
}

}  // namespace xsec
