file(REMOVE_RECURSE
  "CMakeFiles/xsec_extsys_tests.dir/dispatcher_test.cc.o"
  "CMakeFiles/xsec_extsys_tests.dir/dispatcher_test.cc.o.d"
  "CMakeFiles/xsec_extsys_tests.dir/kernel_test.cc.o"
  "CMakeFiles/xsec_extsys_tests.dir/kernel_test.cc.o.d"
  "CMakeFiles/xsec_extsys_tests.dir/value_test.cc.o"
  "CMakeFiles/xsec_extsys_tests.dir/value_test.cc.o.d"
  "xsec_extsys_tests"
  "xsec_extsys_tests.pdb"
  "xsec_extsys_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_extsys_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
