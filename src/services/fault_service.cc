#include "src/services/fault_service.h"

#include <utility>

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/naming/path.h"

namespace xsec {

FaultService::FaultService(Kernel* kernel, FaultServiceOptions options)
    : kernel_(kernel), options_(std::move(options)) {}

Status FaultService::Install() {
  PrincipalId system = kernel_->system_principal();
  auto mount = kernel_->name_space().BindPath(options_.mount_path, NodeKind::kDirectory, system);
  if (!mount.ok()) {
    return mount.status();
  }
  // Fail-closed: faults are a way to break the system on purpose, so the
  // mount root carries an own ACL (overriding any permissive inherited
  // default) granting the system principal only. Deployments that want a
  // chaos-testing role widen it with ordinary AddAclEntry calls.
  Acl restricted;
  restricted.AddEntry({AclEntryType::kAllow, system,
                       AccessMode::kRead | AccessMode::kList | AccessMode::kAdministrate});
  XSEC_RETURN_IF_ERROR(
      kernel_->name_space().SetAclRef(*mount, kernel_->acls().Create(std::move(restricted))));

  auto proc = [this, system](std::string_view name, HandlerFn fn) -> Status {
    auto node =
        kernel_->RegisterProcedure(JoinPath(options_.service_path, name), system, std::move(fn));
    return node.ok() ? OkStatus() : node.status();
  };

  XSEC_RETURN_IF_ERROR(proc("arm", [this](CallContext& ctx) -> StatusOr<Value> {
    auto name = ArgString(ctx.args, 0);
    auto spec = ArgString(ctx.args, 1);
    if (!name.ok()) {
      return name.status();
    }
    if (!spec.ok()) {
      return spec.status();
    }
    auto state = Arm(*ctx.subject, *name, *spec);
    if (!state.ok()) {
      return state.status();
    }
    return Value{std::move(*state)};
  }));
  XSEC_RETURN_IF_ERROR(proc("read", [this](CallContext& ctx) -> StatusOr<Value> {
    auto name = ArgString(ctx.args, 0);
    if (!name.ok()) {
      return name.status();
    }
    auto state = ReadFault(*ctx.subject, *name);
    if (!state.ok()) {
      return state.status();
    }
    return Value{std::move(*state)};
  }));
  XSEC_RETURN_IF_ERROR(proc("list", [this](CallContext& ctx) -> StatusOr<Value> {
    auto listing = List(*ctx.subject);
    if (!listing.ok()) {
      return listing.status();
    }
    return Value{std::move(*listing)};
  }));
  return OkStatus();
}

StatusOr<NodeId> FaultService::EnsureLeaf(std::string_view name) {
  if (!IsValidComponent(name)) {
    return InvalidArgumentError(
        StrFormat("'%s' is not a valid failpoint name", std::string(name).c_str()));
  }
  std::string full = JoinPath(options_.mount_path, name);
  auto existing = kernel_->name_space().Lookup(full);
  if (existing.ok()) {
    return existing;
  }
  return kernel_->name_space().BindPath(full, NodeKind::kFile, kernel_->system_principal());
}

StatusOr<std::string> FaultService::Arm(Subject& subject, std::string_view name,
                                        std::string_view spec) {
  auto node = EnsureLeaf(name);
  if (!node.ok()) {
    return node.status();
  }
  // The real monitor path: the administrate decision — allow or deny — is
  // counted in the stats and written to the audit trail, so every arming of
  // a fault is on the record.
  Decision decision = kernel_->monitor().Check(subject, *node, AccessMode::kAdministrate);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  XSEC_RETURN_IF_ERROR(FailpointRegistry::Instance().Arm(name, spec));
  Failpoint* point = FailpointRegistry::Instance().Find(name);
  return point == nullptr ? std::string("off") : point->Describe();
}

StatusOr<std::string> FaultService::ReadFault(Subject& subject, std::string_view name) {
  auto node = EnsureLeaf(name);
  if (!node.ok()) {
    return node.status();
  }
  Decision decision = kernel_->monitor().Check(subject, *node, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  Failpoint* point = FailpointRegistry::Instance().Find(name);
  return point == nullptr ? std::string("off") : point->Describe();
}

StatusOr<std::string> FaultService::List(Subject& subject) {
  auto mount = kernel_->name_space().Lookup(options_.mount_path);
  if (!mount.ok()) {
    return mount.status();
  }
  Decision decision = kernel_->monitor().Check(subject, *mount, AccessMode::kList);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  std::string out;
  FailpointRegistry& registry = FailpointRegistry::Instance();
  for (const std::string& name : registry.Names()) {
    Failpoint* point = registry.Find(name);
    if (point == nullptr) {
      continue;
    }
    out += StrFormat("%s %s\n", name.c_str(), point->Describe().c_str());
  }
  return out;
}

}  // namespace xsec
