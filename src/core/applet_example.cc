#include "src/core/applet_example.h"

#include "src/base/strings.h"
#include "src/core/secure_system.h"

namespace xsec {

AppletMatrix RunAppletExample() {
  SecureSystem sys;
  (void)sys.labels().DefineLevels({"others", "organization", "local"});
  (void)sys.labels().DefineCategory("myself");
  (void)sys.labels().DefineCategory("department-1");
  (void)sys.labels().DefineCategory("department-2");
  (void)sys.labels().DefineCategory("outside");

  struct Actor {
    std::string name;
    SecurityClass cls;
  };
  std::vector<Actor> actors = {
      {"user", *sys.labels().MakeClass(
                   "local", {"myself", "department-1", "department-2", "outside"})},
      {"applet-dep1", *sys.labels().MakeClass("organization", {"department-1"})},
      {"applet-dep2", *sys.labels().MakeClass("organization", {"department-2"})},
      {"applet-both",
       *sys.labels().MakeClass("organization", {"department-1", "department-2"})},
      {"applet-outside", *sys.labels().MakeClass("others", {"outside"})},
  };

  // One file per actor, labeled at the creator's class, with a maximally
  // permissive ACL so the outcome is decided by the lattice alone.
  NameSpace& ns = sys.name_space();
  (void)ns.BindPath("/fs/applets", NodeKind::kDirectory, sys.system_principal());
  {
    Acl open_dir;
    open_dir.AddEntry(AclEntry{AclEntryType::kAllow, sys.everyone(),
                               AccessMode::kList | AccessMode::kRead});
    (void)ns.SetAclRef(*ns.Lookup("/fs/applets"), sys.kernel().acls().Create(std::move(open_dir)));
  }

  AppletMatrix matrix;
  std::vector<Subject> subjects;
  for (const Actor& actor : actors) {
    PrincipalId user = *sys.CreateUser(actor.name);
    subjects.push_back(sys.Login(user, actor.cls));
    matrix.subjects.push_back(actor.name);
    matrix.subject_classes.push_back(sys.labels().ClassToString(actor.cls));

    std::string path = StrFormat("/fs/applets/%s-file", actor.name.c_str());
    NodeId file = *sys.fs().CreateFileAsSystem(path, {1, 2, 3});
    (void)ns.SetLabelRef(file, sys.labels().StoreLabel(actor.cls));
    Acl open_acl;
    open_acl.AddEntry(AclEntry{AclEntryType::kAllow, sys.everyone(),
                               AccessMode::kRead | AccessMode::kWrite |
                                   AccessMode::kWriteAppend | AccessMode::kList});
    (void)ns.SetAclRef(file, sys.kernel().acls().Create(std::move(open_acl)));
    matrix.files.push_back(actor.name + "-file");
    matrix.file_classes.push_back(sys.labels().ClassToString(actor.cls));
  }

  for (size_t i = 0; i < actors.size(); ++i) {
    std::vector<bool> read_row, append_row, exp_read_row, exp_append_row;
    for (size_t j = 0; j < actors.size(); ++j) {
      std::string path = StrFormat("/fs/applets/%s-file", actors[j].name.c_str());
      bool read =
          sys.monitor().CheckPath(subjects[i], path, AccessMode::kRead).allowed;
      bool append =
          sys.monitor().CheckPath(subjects[i], path, AccessMode::kWriteAppend).allowed;
      bool exp_read = actors[i].cls.Dominates(actors[j].cls);
      bool exp_append = actors[j].cls.Dominates(actors[i].cls);
      read_row.push_back(read);
      append_row.push_back(append);
      exp_read_row.push_back(exp_read);
      exp_append_row.push_back(exp_append);
      if (read != exp_read) {
        ++matrix.mismatches;
      }
      if (append != exp_append) {
        ++matrix.mismatches;
      }
    }
    matrix.read_allowed.push_back(std::move(read_row));
    matrix.append_allowed.push_back(std::move(append_row));
    matrix.expected_read.push_back(std::move(exp_read_row));
    matrix.expected_append.push_back(std::move(exp_append_row));
  }
  return matrix;
}

std::string RenderAppletMatrix(const AppletMatrix& matrix) {
  std::string out;
  out += StrFormat("%-16s", "subject \\ file");
  for (const std::string& file : matrix.files) {
    out += StrFormat(" %-20s", file.c_str());
  }
  out += "\n";
  for (size_t i = 0; i < matrix.subjects.size(); ++i) {
    out += StrFormat("%-16s", matrix.subjects[i].c_str());
    for (size_t j = 0; j < matrix.files.size(); ++j) {
      std::string cell;
      cell += matrix.read_allowed[i][j] ? 'R' : '.';
      cell += matrix.append_allowed[i][j] ? 'A' : '.';
      out += StrFormat(" %-20s", cell.c_str());
    }
    out += "\n";
  }
  return out;
}

}  // namespace xsec
