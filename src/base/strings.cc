#include "src/base/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace xsec {

std::vector<std::string> StrSplit(std::string_view text, char delim, bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    std::string_view piece =
        pos == std::string_view::npos ? text.substr(start) : text.substr(start, pos - start);
    if (!piece.empty() || !skip_empty) {
      out.emplace_back(piece);
    }
    if (pos == std::string_view::npos) {
      break;
    }
    start = pos + 1;
  }
  if (skip_empty && out.empty()) {
    return out;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatFixed(double value, int precision) {
  if (precision < 0) {
    precision = 0;
  }
  if (precision > 9) {
    precision = 9;
  }
  if (std::isnan(value)) {
    return "nan";
  }
  if (std::isinf(value)) {
    return value < 0 ? "-inf" : "inf";
  }
  bool negative = value < 0;
  double v = negative ? -value : value;
  uint64_t scale = 1;
  for (int i = 0; i < precision; ++i) {
    scale *= 10;
  }
  // Fixed-point needs the scaled value to fit 64 bits; beyond that the
  // fraction is noise anyway, and "%.0f" emits no radix character.
  if (v >= 9.0e18 / static_cast<double>(scale)) {
    return StrFormat("%.0f", value);
  }
  uint64_t integral = static_cast<uint64_t>(v);
  uint64_t frac = static_cast<uint64_t>((v - static_cast<double>(integral)) *
                                            static_cast<double>(scale) +
                                        0.5);
  if (frac >= scale) {  // the fraction rounded up into the next integer
    ++integral;
    frac = 0;
  }
  std::string out = negative ? "-" : "";
  out += std::to_string(integral);
  if (precision > 0) {
    std::string digits = std::to_string(frac);
    out += '.';
    out.append(static_cast<size_t>(precision) - digits.size(), '0');
    out += digits;
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace xsec
