# Empty dependencies file for xsec_shell.
# This may be replaced when dependencies are built.
