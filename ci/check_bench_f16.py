#!/usr/bin/env python3
"""Gate for the F16 sharded-stamp-domain figures.

Reads a fresh BENCH_f16.json and enforces the sharding mechanism's claims
with counters, not machine-dependent timings:

1. Cross-shard isolation: BM_CrossShardMutationIsolation mutates one
   subtree every check and probes another — its cross_shard_stale counter
   must be EXACTLY 0 (a mutation in shard A never evicts shard B's cached
   decisions) while other_shard_hits > 0 proves the probe actually hit.

2. Same-shard control: BM_SameShardMutationControl runs the same loop with
   mutation and probe in one subtree — same_shard_stale must be > 0, or the
   isolation above would be vacuous (stamps not invalidating anything).

3. Million-principal interning: BM_MillionPrincipalIntern must report
   interned_names == 1,000,000 (full dedup across shard-local pools) and
   spend at most --max-intern-ns per Intern call (cpu_time over 2M calls:
   one miss pass + one hit pass). The default ceiling is deliberately slack
   — it catches an accidental O(n) rescan, not micro-regressions.

4. ACL interning: BM_AclInternSharing must report intern_hits > 0 and
   intern_unique < intern_hits (identical entry lists collapse to a handful
   of shared lists, not one list per object).

No committed baseline: like F14/F15 this is an absolute claim about the
mechanism, not a regression bound.

Usage: check_bench_f16.py <fresh.json> [--max-intern-ns 5000]
"""

import argparse
import json
import statistics
import sys

ISOLATION = "BM_CrossShardMutationIsolation"
CONTROL = "BM_SameShardMutationControl"
INTERN = "BM_MillionPrincipalIntern"
ACL = "BM_AclInternSharing"

INTERN_NAMES_EXPECTED = 1_000_000
INTERN_CALLS_PER_ITERATION = 2 * INTERN_NAMES_EXPECTED


def entries(data, name):
    for bench in data.get("benchmarks", []):
        if (bench.get("name", "") == name
                and bench.get("run_type", "iteration") == "iteration"
                and "error_occurred" not in bench):
            yield bench


def counter(data, path, name, key):
    for bench in entries(data, name):
        if key in bench:
            return float(bench[key])
    raise KeyError(f"{path}: no {name} entry carrying counter '{key}'")


def median_cpu_time_ns(data, path, name):
    values = []
    for bench in entries(data, name):
        if "cpu_time" not in bench:
            continue
        t = float(bench["cpu_time"])
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            raise ValueError(f"{path}: {name} has unknown time_unit '{unit}'")
        values.append(t * scale)
    if not values:
        raise KeyError(f"{path}: no successful benchmark named {name}")
    return statistics.median(values)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("--max-intern-ns", type=float, default=5000.0,
                        help="ceiling on cpu ns per Intern call for the "
                             "million-principal load (default 5000)")
    args = parser.parse_args()

    try:
        with open(args.fresh) as f:
            data = json.load(f)
        if not data.get("benchmarks"):
            raise ValueError(f"{args.fresh}: no benchmark entries — "
                             "did bench_f16_shard run?")
        cross_stale = counter(data, args.fresh, ISOLATION, "cross_shard_stale")
        cross_hits = counter(data, args.fresh, ISOLATION, "other_shard_hits")
        same_stale = counter(data, args.fresh, CONTROL, "same_shard_stale")
        interned = counter(data, args.fresh, INTERN, "interned_names")
        intern_cpu_ns = median_cpu_time_ns(data, args.fresh, INTERN)
        acl_hits = counter(data, args.fresh, ACL, "intern_hits")
        acl_unique = counter(data, args.fresh, ACL, "intern_unique")
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as err:
        print(f"check_bench_f16: {err}", file=sys.stderr)
        return 1

    failed = False

    print(f"cross-shard isolation: stale={cross_stale:.0f} hits={cross_hits:.0f}")
    if cross_stale != 0:
        print("check_bench_f16: FAIL — a mutation in one shard evicted "
              f"another shard's cached decisions ({cross_stale:.0f} stale hits; "
              "the invalidation storm is back)", file=sys.stderr)
        failed = True
    if cross_hits <= 0:
        print("check_bench_f16: FAIL — the cross-shard probe never hit the "
              "cache, so the isolation claim is vacuous", file=sys.stderr)
        failed = True

    print(f"same-shard control: stale={same_stale:.0f}")
    if same_stale <= 0:
        print("check_bench_f16: FAIL — same-shard mutations invalidated "
              "nothing; shard stamps are not actually consulted",
              file=sys.stderr)
        failed = True

    per_intern_ns = intern_cpu_ns / INTERN_CALLS_PER_ITERATION
    print(f"million-principal intern: names={interned:.0f} "
          f"({per_intern_ns:.0f}ns per call)")
    if interned != INTERN_NAMES_EXPECTED:
        print(f"check_bench_f16: FAIL — expected {INTERN_NAMES_EXPECTED} "
              f"distinct interned names, got {interned:.0f} (dedup or "
              "shard routing broke)", file=sys.stderr)
        failed = True
    if per_intern_ns > args.max_intern_ns:
        print(f"check_bench_f16: FAIL — {per_intern_ns:.0f}ns per Intern "
              f"call exceeds the {args.max_intern_ns:.0f}ns budget",
              file=sys.stderr)
        failed = True

    print(f"acl interning: hits={acl_hits:.0f} unique={acl_unique:.0f}")
    if acl_hits <= 0 or acl_unique >= acl_hits:
        print("check_bench_f16: FAIL — identical ACLs are not being "
              "deduplicated into shared entry lists", file=sys.stderr)
        failed = True

    if failed:
        return 1
    print("check_bench_f16: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
