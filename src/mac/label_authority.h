// The label authority: the system-wide definitions of trust levels and
// categories, plus storage for the labels attached to name-space nodes.
//
// The paper's §2.2 example defines three levels ("others" < "organization" <
// "local") and four categories ("myself", "department-1", "department-2",
// "outside"); examples/applet_orgs.cpp reproduces it verbatim.
//
// Thread safety: all methods may be called concurrently; mutators take the
// authority's lock exclusively and bump label_epoch_ before releasing it.
// Stored labels are immutable SecurityClass objects held by shared_ptr:
// ReplaceLabel swaps in a fresh object, so LabelHandle() hands the check path
// shared ownership of a consistent label with no copy on the hot path. The
// reference-returning accessors (GetLabel, ClearanceOf, level_names, ...)
// are for single-threaded setup, tests, and serialization.

#ifndef XSEC_SRC_MAC_LABEL_AUTHORITY_H_
#define XSEC_SRC_MAC_LABEL_AUTHORITY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/shard.h"
#include "src/base/status.h"
#include "src/mac/security_class.h"

namespace xsec {

// Precomputed lattice dominance over an interned set of security classes
// (points in the levels × category-subsets lattice): classes_[i].Dominates(
// classes_[j]) flattened into per-row bit vectors, so a dominance test on the
// compiled check path is one word load and one shift instead of a level
// compare plus per-word subset inclusion. Built by
// LabelAuthority::CompileDominance; immutable once built (shared across
// checking threads without locks). Classes are deduplicated by lattice
// equality — two equal classes whose category bitsets differ only in
// capacity intern to the same id, so id equality and mutual dominance and
// SecurityClass::operator== all agree (the compiled/interpreted equivalence
// the differential fuzzer asserts).
class DominanceMatrix {
 public:
  // Builds the matrix over `classes` after deduplication. The caller's order
  // is preserved for the first occurrence of each distinct class.
  explicit DominanceMatrix(std::vector<SecurityClass> classes);

  size_t size() const { return classes_.size(); }
  const std::vector<SecurityClass>& classes() const { return classes_; }

  // Interned id of `cls`, or -1 when the class is not in the matrix.
  int32_t IdOf(const SecurityClass& cls) const;

  // classes()[i].Dominates(classes()[j]), as one bit probe.
  bool Dominates(uint32_t i, uint32_t j) const {
    return (bits_[i * words_per_row_ + j / 64] >> (j % 64)) & 1;
  }

 private:
  std::vector<SecurityClass> classes_;
  // Hash -> interned ids with that hash (collisions resolved by equality).
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_hash_;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> bits_;  // row-major; row i = "i dominates j" bit vector
};

class LabelAuthority {
 public:
  LabelAuthority();

  // Defines the linearly ordered levels, ascending trust. May be called once;
  // before it is called a single implicit level 0 exists.
  Status DefineLevels(const std::vector<std::string>& ascending_names);

  // Defines one category; returns its id (bit index).
  StatusOr<size_t> DefineCategory(std::string_view name);

  StatusOr<TrustLevel> LevelByName(std::string_view name) const;
  StatusOr<size_t> CategoryByName(std::string_view name) const;
  size_t level_count() const;
  size_t category_count() const;

  // Enumeration for policy serialization (ascending / id order). Not safe
  // against concurrent DefineLevels/DefineCategory.
  const std::vector<std::string>& level_names() const { return level_names_; }
  const std::vector<std::string>& category_names() const { return category_names_; }
  // True once DefineLevels has replaced the implicit single level.
  bool levels_defined() const;

  // Builds a class from names: MakeClass("organization", {"department-1"}).
  StatusOr<SecurityClass> MakeClass(std::string_view level_name,
                                    const std::vector<std::string>& category_names) const;

  // Lattice extrema under the current definitions.
  SecurityClass Bottom() const;
  SecurityClass Top() const;

  // "organization:{department-1,department-2}".
  std::string ClassToString(const SecurityClass& cls) const;

  // -- Label storage for name-space nodes -----------------------------------
  // Nodes reference labels by opaque ref (Node::label_ref).
  using LabelRef = uint32_t;
  LabelRef StoreLabel(const SecurityClass& cls);
  const SecurityClass* GetLabel(LabelRef ref) const;
  // Shared ownership of the stored label; stays valid across a concurrent
  // ReplaceLabel. Null on a bad ref. This is the check path's accessor.
  std::shared_ptr<const SecurityClass> LabelHandle(LabelRef ref) const;
  Status ReplaceLabel(LabelRef ref, const SecurityClass& cls);

  // Shard tagging mirrors AclStore (docs/MODEL.md §15): a stored label
  // starts kUnknownShard; the monitor narrows it to the referencing node's
  // shard, and attachment from a second shard escalates to kAllShards.
  // ReplaceLabel on a concretely tagged slot bumps only that shard's epoch.
  // Level/category definitions and clearances are system-wide MAC state, so
  // they bump every shard.
  void AttachShard(LabelRef ref, ShardId shard);
  ShardId ShardOf(LabelRef ref) const;

  // Bumped on every label mutation; decision-cache validity. Published with
  // release ordering after the mutation it stamps.
  uint64_t label_epoch() const { return label_epoch_.load(std::memory_order_acquire); }

  // Per-shard label epoch (see AttachShard).
  uint64_t shard_epoch(ShardId shard) const {
    return shard_epoch_[shard % kMonitorShardCount].load(std::memory_order_acquire);
  }

  // Compiles lattice dominance over every class this authority knows about —
  // all stored labels, all clearances, ⊥ and ⊤ — plus `extra_classes`, closed
  // under Join up to `max_classes` total (floating subjects carry joins of
  // labels they observed, so the join closure keeps them on the compiled fast
  // path). Returns null when the distinct-class count exceeds `max_classes`
  // before the closure step: the caller falls back to interpreted dominance.
  // The class set is gathered under one shared-lock acquisition, so the
  // result is consistent with a single label_epoch() observation.
  std::shared_ptr<const DominanceMatrix> CompileDominance(
      size_t max_classes, const std::vector<SecurityClass>& extra_classes = {}) const;

  // -- Per-principal clearances ------------------------------------------------
  // The paper has threads "function at the same security class as the
  // associated principal"; the clearance is that per-principal bound. A
  // principal with a clearance may only obtain subjects at classes the
  // clearance dominates (SecureSystem::LoginChecked enforces this). No
  // clearance = unrestricted. Keyed by principal id; the label authority
  // owns all class assignments, so the binding lives here.
  void SetClearance(uint32_t principal_id, SecurityClass clearance);
  void ClearClearance(uint32_t principal_id);
  // Null if no clearance is set for this principal. The pointee may be
  // replaced by a concurrent SetClearance; use only at login/setup time.
  const SecurityClass* ClearanceOf(uint32_t principal_id) const;
  // Enumeration for policy serialization. Not safe against concurrent
  // clearance mutation.
  const std::unordered_map<uint32_t, SecurityClass>& clearances() const { return clearances_; }

 private:
  // Unlocked internals; callers hold mu_.
  StatusOr<TrustLevel> LevelByNameLocked(std::string_view name) const;
  StatusOr<size_t> CategoryByNameLocked(std::string_view name) const;
  void BumpShardEpoch(ShardId shard);

  mutable std::shared_mutex mu_;
  std::vector<std::string> level_names_;
  std::unordered_map<std::string, TrustLevel> level_by_name_;
  std::vector<std::string> category_names_;
  std::unordered_map<std::string, size_t> category_by_name_;
  // Deque of immutable labels: addresses of the shared_ptr slots are stable
  // and the pointed-to classes are never mutated in place.
  std::deque<std::shared_ptr<const SecurityClass>> labels_;
  std::deque<ShardId> label_shards_;  // parallel to labels_; under mu_
  std::unordered_map<uint32_t, SecurityClass> clearances_;
  std::atomic<uint64_t> label_epoch_{0};
  std::array<std::atomic<uint64_t>, kMonitorShardCount> shard_epoch_{};
};

}  // namespace xsec

#endif  // XSEC_SRC_MAC_LABEL_AUTHORITY_H_
