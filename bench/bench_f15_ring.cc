// Experiment F15 — shared-ring batched mediation vs per-call checks
// (DESIGN.md "Mediation transport", MODEL.md §14).
//
// The transport's claim is amortization: a batch of N decisions pays ONE
// cache-stamp read, ONE striped stats flush, and ONE audit stamping section
// where N per-call checks pay N of each (plus per-call latency sampling).
//
//   check_per_call         ReferenceMonitor::Check in a loop — the baseline
//                          every mediated operation pays today
//   check_batched/N        one CheckBatch of N requests per iteration; the
//                          gate (ci/check_bench_f15.py) divides cpu_time by
//                          N and requires per-item <= per-call at N >= 8
//   ring_round_trip        submit + wait through the full transport: the
//                          cv handoff dominates on one core, so this is
//                          informational (latency, not throughput)
//   ring_stuck_shard       2 shards, shard 0's worker wedged via its stall
//                          failpoint: the gate requires rejected > 0 (the
//                          stall back-pressures as kResourceExhausted, it
//                          never blocks) and healthy_completed > 0 (the
//                          other shard keeps serving).

#include <benchmark/benchmark.h>

#include <vector>

#include "src/base/failpoint.h"
#include "src/core/secure_system.h"
#include "src/monitor/mediation_ring.h"

namespace xsec {
namespace {

// Default monitor configuration on purpose: stats, cache, audit policy all
// as shipped — the figure is the transport's effect on the real check path.
struct Fixture {
  Fixture() {
    user = *sys.CreateUser("ring-user");
    node = *sys.name_space().BindPath("/data/ring/target", NodeKind::kFile, user);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user, AccessMode::kRead | AccessMode::kWrite});
    (void)sys.name_space().SetAclRef(node, sys.kernel().acls().Create(std::move(acl)));
    subject = sys.Login(user, sys.labels().Bottom());
  }

  SecureSystem sys;
  PrincipalId user;
  NodeId node;
  Subject subject;
};

void BM_CheckPerCall(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    Decision d = f.sys.monitor().Check(f.subject, f.node, AccessMode::kRead);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckPerCall);

void BM_CheckBatched(benchmark::State& state) {
  Fixture f;
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<ReferenceMonitor::BatchCheckRequest> requests(
      n, ReferenceMonitor::BatchCheckRequest{f.subject, f.node,
                                             AccessModeSet(AccessMode::kRead)});
  std::vector<Decision> out(n);
  for (auto _ : state) {
    f.sys.monitor().CheckBatch(requests.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CheckBatched)->Arg(8)->Arg(32)->Arg(128);

void BM_RingRoundTrip(benchmark::State& state) {
  Fixture f;
  MediationRing ring(&f.sys.monitor());
  auto client = ring.NewClient();
  for (auto _ : state) {
    auto ticket = ring.SubmitCheck(*client, f.subject, f.node, AccessMode::kRead);
    if (!ticket.ok()) {
      state.SkipWithError("submission rejected");
      return;
    }
    auto completion = ring.Wait(*client, *ticket);
    benchmark::DoNotOptimize(completion);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingRoundTrip);

void BM_RingStuckShardIsolation(benchmark::State& state) {
  Fixture f;
  MediationRingOptions options;
  options.shards = 2;
  options.ring_capacity = 8;
  options.completion_capacity = 16;
  // Wedge shard 0's worker: every batch sleeps with its credits held, the
  // realistic shape of a consumer stuck mid-batch.
  if (!FailpointRegistry::Instance().Arm("ring.worker.0.batch", "sleep=2").ok()) {
    state.SkipWithError("failed to arm the shard-0 stall failpoint");
    return;
  }
  {
    MediationRing ring(&f.sys.monitor(), options);
    auto stuck = ring.NewClient();    // shard 0 (round-robin from 0)
    auto healthy = ring.NewClient();  // shard 1
    uint64_t rejected = 0;
    uint64_t healthy_completed = 0;
    for (auto _ : state) {
      // Submissions to the wedged shard must fail fast, never block; the
      // stuck client never drains, so its completion credits run out too.
      if (!ring.SubmitCheck(*stuck, f.subject, f.node, AccessMode::kRead).ok()) {
        ++rejected;
      }
      auto ticket = ring.SubmitCheck(*healthy, f.subject, f.node, AccessMode::kRead);
      if (ticket.ok() && ring.Wait(*healthy, *ticket).ok()) {
        ++healthy_completed;
      }
    }
    // Unwedge before teardown so the client/ring destructors drain fast.
    FailpointRegistry::Instance().DisarmAll();
    state.counters["rejected"] = static_cast<double>(rejected);
    state.counters["healthy_completed"] = static_cast<double>(healthy_completed);
  }
}
BENCHMARK(BM_RingStuckShardIsolation)->Iterations(1000);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
