# Empty compiler generated dependencies file for xsec_principal.
# This may be replaced when dependencies are built.
