#include "src/monitor/audit.h"

#include "src/base/strings.h"

namespace xsec {

std::string_view DenyReasonName(DenyReason reason) {
  switch (reason) {
    case DenyReason::kNone:
      return "none";
    case DenyReason::kNotFound:
      return "not-found";
    case DenyReason::kTraversal:
      return "traversal";
    case DenyReason::kDacExplicitDeny:
      return "dac-explicit-deny";
    case DenyReason::kDacNoGrant:
      return "dac-no-grant";
    case DenyReason::kMacFlow:
      return "mac-flow";
    case DenyReason::kNotAuthorized:
      return "not-authorized";
  }
  return "unknown";
}

std::string AuditRecord::ToString() const {
  return StrFormat("#%llu p%u/t%llu %s %s -> %s%s%s",
                   static_cast<unsigned long long>(sequence), principal.value,
                   static_cast<unsigned long long>(thread_id), path.c_str(),
                   modes.ToString().c_str(), allowed ? "ALLOW" : "DENY",
                   allowed ? "" : StrFormat(" (%s)", std::string(DenyReasonName(reason)).c_str())
                                      .c_str(),
                   detail.empty() ? "" : StrFormat(" [%s]", detail.c_str()).c_str());
}

void AuditLog::Record(AuditRecord record) {
  ++total_checks_;
  if (!record.allowed) {
    ++total_denials_;
  }
  bool retain = policy_ == AuditPolicy::kAll ||
                (policy_ == AuditPolicy::kDenialsOnly && !record.allowed);
  if (!retain) {
    return;
  }
  record.sequence = next_sequence_++;
  if (sink_) {
    sink_(record);
  }
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
}

std::vector<AuditRecord> AuditLog::Query(
    const std::function<bool(const AuditRecord&)>& pred) const {
  std::vector<AuditRecord> out;
  for (const AuditRecord& r : records_) {
    if (pred(r)) {
      out.push_back(r);
    }
  }
  return out;
}

void AuditLog::Clear() {
  records_.clear();
  next_sequence_ = 0;
  total_checks_ = 0;
  total_denials_ = 0;
  dropped_ = 0;
}

}  // namespace xsec
