// The single, universal, hierarchical name space (paper §2.3).
//
// Every protected thing in the system — services, interfaces, objects,
// procedures/methods, directories, files — is a node in one tree. Leaves are
// procedures and files; non-leaves are directories, services, interfaces and
// objects. The reference monitor attaches protection state (an ACL reference
// and a MAC label reference) to every node, which is what lets one central
// facility enforce all protection: "this similarity in structure allows for
// the use of a single, universal name space … and thus enables a central name
// server to enforce all protection."
//
// This class is only the tree; it stores the security references as opaque
// handles and never interprets them. Interpretation is the reference
// monitor's job (src/monitor/), keeping the mechanism in exactly one place.
//
/// Thread safety: all public methods may be called concurrently. Mutators
// take the tree lock exclusively; readers share it. Methods that return
// values (ids, paths, SecuritySnapshot) are safe under concurrent mutation.
// Get() returns a pointer whose *address* is stable for the life of the
// NameSpace (nodes are never destroyed), but whose fields may change under a
// concurrent mutator; callers that dereference it across operations must
// either hold external synchronization or tolerate torn metadata — the
// monitor's check path uses SnapshotSecurity() instead.

#ifndef XSEC_SRC_NAMING_NAMESPACE_H_
#define XSEC_SRC_NAMING_NAMESPACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/inline_vector.h"
#include "src/base/shard.h"
#include "src/base/status.h"
#include "src/naming/path.h"
#include "src/principal/principal.h"

namespace xsec {

enum class NodeKind : uint8_t {
  kDirectory = 0,  // pure grouping (also: Java package, SPIN domain)
  kService,        // a loadable system service
  kInterface,      // a group of procedures; the unit extensions extend
  kObject,         // an instance (e.g. a thread, an mbuf pool)
  kProcedure,      // leaf: a callable method/procedure
  kFile,           // leaf: file contents live in the memfs service
};

std::string_view NodeKindName(NodeKind kind);

// True for kinds that may have children.
bool KindAllowsChildren(NodeKind kind);

struct NodeId {
  uint32_t value = kInvalid;

  static constexpr uint32_t kInvalid = 0xffffffff;

  bool valid() const { return value != kInvalid; }

  friend bool operator==(NodeId a, NodeId b) { return a.value == b.value; }
  friend bool operator!=(NodeId a, NodeId b) { return a.value != b.value; }
  friend bool operator<(NodeId a, NodeId b) { return a.value < b.value; }
};

// Opaque references into the security layers. kNoRef means "not set":
// an unset ACL falls back to the nearest ancestor's ACL; an unset label
// falls back to the nearest labeled ancestor (the monitor implements both).
inline constexpr uint32_t kNoRef = 0xffffffff;

struct Node {
  NodeId id;
  NodeId parent;
  NodeKind kind = NodeKind::kDirectory;
  std::string name;          // component name; "" for the root
  bool alive = true;         // false once unbound (ids are never reused)
  uint64_t generation = 0;   // bumped on any structural or metadata change

  // Monitor shard (validity domain). Assigned at Bind and immutable after:
  // top-level containers hash by name, top-level leaves by owner (flat-
  // namespace fallback), deeper nodes inherit their parent's. The root is
  // kAllShards: mutating its metadata invalidates every shard, since every
  // node can inherit its ACL/label.
  ShardId shard = kAggregateShard;

  PrincipalId owner;         // creating principal; administrate fallback
  uint32_t acl_ref = kNoRef;
  uint32_t label_ref = kNoRef;

  // Children sorted by name for deterministic listing.
  std::map<std::string, NodeId, std::less<>> children;
};

// Ancestor chains deeper than this spill to the heap; 12 levels covers every
// path the services and benches create, so mediated lookups stay
// allocation-free (the F1 cached-check budget counts on it).
inline constexpr size_t kAncestorInlineDepth = 12;
using AncestorBuffer = InlineVector<NodeId, kAncestorInlineDepth>;

class NameSpace {
 public:
  NameSpace();

  NodeId root() const { return NodeId{0}; }

  // Creates a child of `parent`. Fails if the parent is a leaf kind, is dead,
  // or already has a child with that name.
  StatusOr<NodeId> Bind(NodeId parent, std::string_view name, NodeKind kind, PrincipalId owner);

  // Creates every missing intermediate directory, then the final node with
  // `kind`. Existing intermediates are reused regardless of their kind as
  // long as they allow children.
  StatusOr<NodeId> BindPath(std::string_view path, NodeKind kind, PrincipalId owner);

  // Removes a node. Fails on the root or on a node with live children.
  Status Unbind(NodeId node);

  // Pure name resolution; no access checks (the monitor layers those on).
  StatusOr<NodeId> Lookup(std::string_view path) const;

  // Resolution that also reports the ancestor chain (root first, excluding
  // the target). The monitor checks traversal rights on each ancestor. The
  // buffer is inline up to kAncestorInlineDepth, so typical lookups do not
  // allocate.
  StatusOr<NodeId> LookupWithAncestors(std::string_view path,
                                       AncestorBuffer* ancestors) const;

  // Single-step child lookup.
  StatusOr<NodeId> Child(NodeId parent, std::string_view name) const;

  // Children of a node, sorted by name.
  StatusOr<std::vector<NodeId>> List(NodeId node) const;

  const Node* Get(NodeId id) const;

  // Everything the reference monitor needs to decide an access, copied out
  // under one shared-lock acquisition so the ancestor walk is atomic with
  // respect to concurrent tree mutation. The effective refs are the first
  // non-kNoRef acl_ref / label_ref on the path node → root (ACL/label
  // inheritance); the own refs are the node's own fields.
  struct SecuritySnapshot {
    PrincipalId owner;
    uint32_t own_acl_ref = kNoRef;
    uint32_t own_label_ref = kNoRef;
    uint32_t effective_acl_ref = kNoRef;
    uint32_t effective_label_ref = kNoRef;
    // Validity domain of any decision derived from this snapshot. Concrete
    // for ordinary nodes; kAllShards for the root.
    ShardId shard = kAggregateShard;
  };
  // False iff the node does not exist (or is dead).
  bool SnapshotSecurity(NodeId id, SecuritySnapshot* out) const;

  // Reconstructs the absolute path of a live node.
  std::string PathOf(NodeId id) const;

  // Security-metadata mutators (called by the monitor; bump generations).
  Status SetAclRef(NodeId id, uint32_t acl_ref);
  Status SetLabelRef(NodeId id, uint32_t label_ref);
  Status SetOwner(NodeId id, PrincipalId owner);

  size_t node_count() const;

  // Bumped on every mutation anywhere in the tree; decision-cache validity.
  // Published with release ordering *after* the mutation is complete, so a
  // reader that observes a given generation and then reads the tree sees at
  // least that mutation (see docs/MODEL.md, "Concurrency model").
  uint64_t global_generation() const { return global_generation_.load(std::memory_order_acquire); }

  // Per-shard generation: bumped only by mutations whose validity domain is
  // (or includes) that shard. Same release discipline as global_generation.
  // A root-metadata mutation bumps every shard; a Bind/Unbind or metadata
  // change elsewhere bumps only the affected node's shard. The global
  // generation is still bumped by *every* mutation (aggregate domain).
  uint64_t shard_generation(ShardId shard) const {
    return shard_generation_[shard % kMonitorShardCount].load(std::memory_order_acquire);
  }

  // Monitor shard of a node id, readable without taking the tree lock (the
  // assignment is immutable once the id is published). Unknown / not-yet-
  // published ids — including NotFound targets — report kAggregateShard, the
  // domain whose stamps every mutation bumps. The root reports kAllShards.
  ShardId ShardOf(NodeId id) const;

 private:
  // Unlocked internals; callers hold mu_ (shared for const, exclusive for
  // mutation).
  const Node* GetLocked(NodeId id) const;
  Node* GetMutableLocked(NodeId id);
  StatusOr<NodeId> ChildLocked(NodeId parent, std::string_view name) const;
  StatusOr<NodeId> BindLocked(NodeId parent, std::string_view name, NodeKind kind,
                              PrincipalId owner);
  std::string PathOfLocked(NodeId id) const;
  void Touch(Node& node);
  void BumpShard(ShardId shard);
  void PublishShardLocked(uint32_t index, ShardId shard);

  mutable std::shared_mutex mu_;
  // Deque, not vector: node addresses stay stable across Bind, so Get()'s
  // returned pointers never dangle.
  std::deque<Node> nodes_;
  std::atomic<uint64_t> global_generation_{0};
  std::array<std::atomic<uint64_t>, kMonitorShardCount> shard_generation_{};

  // Lock-free id→shard map for the cached-check hot path: fixed-size chunks
  // published with release stores. Writers append under mu_; readers never
  // take a lock. Ids beyond the published count (or beyond capacity, ~16M
  // nodes) fall back to the aggregate domain, which stays sound because the
  // aggregate stamps are bumped by every mutation.
  static constexpr size_t kShardChunkBits = 12;
  static constexpr size_t kShardChunkSize = size_t{1} << kShardChunkBits;
  static constexpr size_t kShardMaxChunks = 4096;
  struct ShardChunk {
    std::array<std::atomic<uint32_t>, kShardChunkSize> shard;
  };
  std::array<std::atomic<ShardChunk*>, kShardMaxChunks> shard_chunks_{};
  std::atomic<size_t> shard_ids_published_{0};
  std::vector<std::unique_ptr<ShardChunk>> shard_chunk_owner_;  // under mu_
};

}  // namespace xsec

#endif  // XSEC_SRC_NAMING_NAMESPACE_H_
