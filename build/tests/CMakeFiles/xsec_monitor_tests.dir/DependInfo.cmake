
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/audit_test.cc" "tests/CMakeFiles/xsec_monitor_tests.dir/audit_test.cc.o" "gcc" "tests/CMakeFiles/xsec_monitor_tests.dir/audit_test.cc.o.d"
  "/root/repo/tests/decision_cache_test.cc" "tests/CMakeFiles/xsec_monitor_tests.dir/decision_cache_test.cc.o" "gcc" "tests/CMakeFiles/xsec_monitor_tests.dir/decision_cache_test.cc.o.d"
  "/root/repo/tests/reference_monitor_test.cc" "tests/CMakeFiles/xsec_monitor_tests.dir/reference_monitor_test.cc.o" "gcc" "tests/CMakeFiles/xsec_monitor_tests.dir/reference_monitor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xsec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/xsec_services.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/xsec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/xsec_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/codeload/CMakeFiles/xsec_codeload.dir/DependInfo.cmake"
  "/root/repo/build/src/extsys/CMakeFiles/xsec_extsys.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/xsec_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/xsec_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/xsec_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/dac/CMakeFiles/xsec_dac.dir/DependInfo.cmake"
  "/root/repo/build/src/principal/CMakeFiles/xsec_principal.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xsec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
