#include "src/codeload/code_loader.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

class CodeLoaderTest : public ::testing::Test {
 protected:
  CodeLoaderTest() : kernel_(MonitorOptions{.check_traversal = false}) {
    dev_ = *kernel_.principals().CreateUser("dev");
    (void)kernel_.labels().DefineLevels({"others", "organization", "local"});
    local_ = SecurityClass(2, Cats({0, 1}));
    org_ = SecurityClass(1, Cats({0}));
    remote_ = SecurityClass(0, Cats({}));
    (void)*kernel_.RegisterService("/svc/s", kernel_.system_principal());
    proc_ = *kernel_.RegisterProcedure("/svc/s/p", kernel_.system_principal(),
                                       [](CallContext&) -> StatusOr<Value> {
                                         return Value{int64_t{7}};
                                       });
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, dev_, AccessMode::kExecute | AccessMode::kList});
    (void)kernel_.name_space().SetAclRef(proc_, kernel_.acls().Create(std::move(acl)));
  }

  static CategorySet Cats(std::initializer_list<size_t> bits) {
    CategorySet cats(2);
    for (size_t b : bits) {
      cats.Set(b);
    }
    return cats;
  }

  ExtensionManifest Manifest(Origin origin, std::string name = "ext") {
    ExtensionManifest manifest;
    manifest.name = std::move(name);
    manifest.origin = origin;
    return manifest;
  }

  OriginPolicy StandardPolicy() { return OriginPolicy::Standard(local_, org_, remote_); }

  Kernel kernel_;
  PrincipalId dev_;
  SecurityClass local_, org_, remote_;
  NodeId proc_;
};

TEST_F(CodeLoaderTest, ChecksumIsStructureSensitive) {
  ExtensionManifest manifest = Manifest(Origin::kLocal);
  manifest.imports = {"/svc/s/p"};
  uint64_t base = ComputeManifestChecksum(manifest);
  EXPECT_EQ(base, ComputeManifestChecksum(manifest));

  ExtensionManifest renamed = manifest;
  renamed.name = "other";
  EXPECT_NE(base, ComputeManifestChecksum(renamed));

  ExtensionManifest more_imports = manifest;
  more_imports.imports.push_back("/svc/s/q");
  EXPECT_NE(base, ComputeManifestChecksum(more_imports));

  ExtensionManifest other_origin = manifest;
  other_origin.origin = Origin::kRemote;
  EXPECT_NE(base, ComputeManifestChecksum(other_origin));

  ExtensionManifest pinned = manifest;
  pinned.static_class = org_;
  EXPECT_NE(base, ComputeManifestChecksum(pinned));
}

TEST_F(CodeLoaderTest, TamperedImageRejected) {
  CodeLoader loader(&kernel_, StandardPolicy());
  CodeImage image = PackageExtension(Manifest(Origin::kLocal));
  image.manifest.imports.push_back("/svc/s/p");  // tamper after packaging
  Subject subject = kernel_.CreateSubject(dev_, local_);
  auto result = loader.Load(image, subject);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(loader.rejected_tampered(), 1u);
  EXPECT_EQ(loader.loads(), 0u);
}

TEST_F(CodeLoaderTest, ForbiddenOriginRejected) {
  OriginPolicy policy = StandardPolicy();
  policy.Forbid(Origin::kRemote);
  CodeLoader loader(&kernel_, std::move(policy));
  Subject subject = kernel_.CreateSubject(dev_, local_);
  auto result = loader.Load(PackageExtension(Manifest(Origin::kRemote)), subject);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(loader.rejected_forbidden_origin(), 1u);
}

TEST_F(CodeLoaderTest, RemoteCodeIsPinnedToTheFloor) {
  // A remote manifest requesting the local class is clamped: the origin
  // ceiling wins (the paper's "always run at the least level of trust").
  CodeLoader loader(&kernel_, StandardPolicy());
  ExtensionManifest manifest = Manifest(Origin::kRemote);
  manifest.static_class = local_;  // greedy request
  Subject subject = kernel_.CreateSubject(dev_, local_);
  auto id = loader.Load(PackageExtension(manifest), subject);
  ASSERT_TRUE(id.ok()) << id.status();
  const LinkedExtension* ext = kernel_.GetExtension(*id);
  EXPECT_TRUE(ext->handler_class == remote_.Meet(local_));
  EXPECT_EQ(ext->handler_class.level(), 0);
}

TEST_F(CodeLoaderTest, LoaderClearanceAlsoCaps) {
  // Even local-origin code loaded by an organization-class subject runs at
  // most at the loader's class.
  CodeLoader loader(&kernel_, StandardPolicy());
  Subject org_loader = kernel_.CreateSubject(dev_, org_);
  auto id = loader.Load(PackageExtension(Manifest(Origin::kLocal)), org_loader);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(kernel_.GetExtension(*id)->handler_class == local_.Meet(org_));
}

TEST_F(CodeLoaderTest, PinnedClassGovernsLinkChecks) {
  // The remote floor cannot execute a procedure labeled organization-high,
  // so a remote extension importing it fails to link even when the loader
  // itself is fully trusted.
  (void)kernel_.name_space().SetLabelRef(proc_, kernel_.labels().StoreLabel(org_));
  CodeLoader loader(&kernel_, StandardPolicy());
  ExtensionManifest manifest = Manifest(Origin::kRemote);
  manifest.imports = {"/svc/s/p"};
  Subject subject = kernel_.CreateSubject(dev_, local_);
  auto result = loader.Load(PackageExtension(manifest), subject);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);

  // The same image from an organization origin links fine.
  ExtensionManifest org_manifest = manifest;
  org_manifest.origin = Origin::kOrganization;
  EXPECT_TRUE(loader.Load(PackageExtension(org_manifest), subject).ok());
  EXPECT_EQ(loader.loads(), 1u);
}

TEST_F(CodeLoaderTest, StandardPolicyCoversAllOrigins) {
  OriginPolicy policy = StandardPolicy();
  EXPECT_TRUE(policy.CeilingFor(Origin::kLocal).ok());
  EXPECT_TRUE(policy.CeilingFor(Origin::kOrganization).ok());
  EXPECT_TRUE(policy.CeilingFor(Origin::kRemote).ok());
  EXPECT_TRUE(*policy.CeilingFor(Origin::kLocal) == local_);
}

}  // namespace
}  // namespace xsec
