#include "src/services/vfs.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

// A toy file-system implementation an extension exports: path -> bytes,
// kept in the extension's own memory.
HandlerFn MakeToyFs(std::shared_ptr<std::map<std::string, std::vector<uint8_t>>> store,
                    std::string tag = "") {
  return [store, tag](CallContext& ctx) -> StatusOr<Value> {
    auto op = ArgString(ctx.args, 0);
    auto path = ArgString(ctx.args, 1);
    if (!op.ok()) {
      return op.status();
    }
    if (!path.ok()) {
      return path.status();
    }
    if (*op == "read") {
      auto it = store->find(*path);
      if (it == store->end()) {
        return NotFoundError("no such file in toyfs");
      }
      return Value{it->second};
    }
    if (*op == "write") {
      auto data = ArgBytes(ctx.args, 2);
      if (!data.ok()) {
        return data.status();
      }
      (*store)[*path] = *data;
      return Value{true};
    }
    if (*op == "list") {
      std::string names = tag;
      for (const auto& [name, contents] : *store) {
        if (!names.empty()) {
          names += "\n";
        }
        names += name;
      }
      return Value{names};
    }
    return InvalidArgumentError("unknown vfs op");
  };
}

class VfsTest : public ::testing::Test {
 protected:
  VfsTest() {
    (void)sys_.labels().DefineLevels({"low", "high"});
    dev_user_ = *sys_.CreateUser("dev");
    user_user_ = *sys_.CreateUser("user");
    dev_ = sys_.Login(dev_user_, sys_.labels().Bottom());
    user_ = sys_.Login(user_user_, sys_.labels().Bottom());

    NodeId iface = *sys_.vfs().CreateFsType("toyfs", sys_.system_principal());
    iface_ = iface;
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, dev_user_, AccessModeSet(AccessMode::kExtend)});
    acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                  AccessMode::kExecute | AccessMode::kList});
    (void)sys_.name_space().SetAclRef(iface_, sys_.kernel().acls().Create(std::move(acl)));
  }

  StatusOr<ExtensionId> LoadToyFs(Subject& loader,
                                  std::optional<SecurityClass> static_class = {},
                                  std::string name = "toyfs-impl", std::string tag = "") {
    auto store = std::make_shared<std::map<std::string, std::vector<uint8_t>>>();
    ExtensionManifest manifest;
    manifest.name = std::move(name);
    manifest.static_class = static_class;
    manifest.exports.push_back(
        {sys_.vfs().TypeInterfacePath("toyfs"), MakeToyFs(store, std::move(tag))});
    return sys_.LoadExtension(manifest, loader);
  }

  SecureSystem sys_;
  PrincipalId dev_user_, user_user_;
  Subject dev_, user_;
  NodeId iface_;
};

TEST_F(VfsTest, ExtensionProvidesNewFileSystem) {
  // The paper's §1.1 example end-to-end: the extension specializes the
  // general interface; users keep using /svc/vfs/*.
  ASSERT_TRUE(LoadToyFs(dev_).ok());
  ASSERT_TRUE(sys_.vfs().Write(user_, "toyfs", "/a", Bytes("hello")).ok());
  auto data = sys_.vfs().Read(user_, "toyfs", "/a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("hello"));
  auto names = sys_.vfs().ListDir(user_, "toyfs", "/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, "/a");
}

TEST_F(VfsTest, UnknownTypeIsNotFound) {
  EXPECT_EQ(sys_.vfs().Read(user_, "nope", "/a").status().code(), StatusCode::kNotFound);
}

TEST_F(VfsTest, TypeWithoutImplementationIsNotFound) {
  EXPECT_EQ(sys_.vfs().Read(user_, "toyfs", "/a").status().code(), StatusCode::kNotFound);
}

TEST_F(VfsTest, ExtendRequiresGrant) {
  // `user` holds execute but not extend on the interface.
  EXPECT_EQ(LoadToyFs(user_).status().code(), StatusCode::kPermissionDenied);
}

TEST_F(VfsTest, MissingFileErrorPropagates) {
  ASSERT_TRUE(LoadToyFs(dev_).ok());
  EXPECT_EQ(sys_.vfs().Read(user_, "toyfs", "/missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(VfsTest, ClassSelectedImplementation) {
  SecurityClass high = *sys_.labels().MakeClass("high", {});
  ASSERT_TRUE(LoadToyFs(dev_, sys_.labels().Bottom(), "toyfs-low", "low-impl").ok());
  ASSERT_TRUE(LoadToyFs(dev_, high, "toyfs-high", "high-impl").ok());

  Subject low_caller = sys_.Login(user_user_, sys_.labels().Bottom());
  Subject high_caller = sys_.Login(user_user_, high);
  auto low_list = sys_.vfs().ListDir(low_caller, "toyfs", "/");
  ASSERT_TRUE(low_list.ok());
  EXPECT_EQ(*low_list, "low-impl");
  auto high_list = sys_.vfs().ListDir(high_caller, "toyfs", "/");
  ASSERT_TRUE(high_list.ok());
  EXPECT_EQ(*high_list, "high-impl");
}

TEST_F(VfsTest, UnloadingImplementationRemovesType) {
  auto id = LoadToyFs(dev_);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sys_.vfs().Write(user_, "toyfs", "/a", Bytes("x")).ok());
  ASSERT_TRUE(sys_.UnloadExtension(dev_, *id).ok());
  EXPECT_EQ(sys_.vfs().Read(user_, "toyfs", "/a").status().code(), StatusCode::kNotFound);
}

TEST_F(VfsTest, ProcedureInterface) {
  ASSERT_TRUE(LoadToyFs(dev_).ok());
  ASSERT_TRUE(sys_.Invoke(user_, "/svc/vfs/write",
                          {Value{std::string("toyfs")}, Value{std::string("/f")},
                           Value{Bytes("data")}})
                  .ok());
  auto read = sys_.Invoke(user_, "/svc/vfs/read",
                          {Value{std::string("toyfs")}, Value{std::string("/f")}});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::get<std::vector<uint8_t>>(*read), Bytes("data"));
  auto listed = sys_.Invoke(user_, "/svc/vfs/list",
                            {Value{std::string("toyfs")}, Value{std::string("/")}});
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(std::get<std::string>(*listed), "/f");
}

}  // namespace
}  // namespace xsec
