#include "src/baselines/nt_model.h"

namespace xsec {
namespace {

AccessMode Collapse(AccessMode mode) {
  // NT has no separate extend right; specializing an interface looks like
  // executing it.
  return mode == AccessMode::kExtend ? AccessMode::kExecute : mode;
}

bool AceMatches(const BaselineAce& ace, const BaselineSubject& subject) {
  if (ace.is_group) {
    return subject.gids.count(ace.id) != 0;
  }
  return subject.uid == ace.id;
}

}  // namespace

bool NtModel::Allows(const BaselineWorld& world, const BaselineSubject& subject,
                     const BaselineObject& object, AccessMode mode) const {
  (void)world;
  // Owners implicitly hold WRITE_DAC (administrate) in NT.
  AccessMode effective = Collapse(mode);
  if (effective == AccessMode::kAdministrate && subject.uid == object.owner_uid) {
    return true;
  }
  // Ordered evaluation, first match wins. NT tooling keeps DACLs in
  // canonical order (denies before allows), so the model canonicalizes
  // rather than trusting the input order.
  for (const BaselineAce& ace : object.acl) {
    if (ace.allow || !AceMatches(ace, subject) || !ace.modes.Contains(effective)) {
      continue;
    }
    return false;
  }
  for (const BaselineAce& ace : object.acl) {
    if (!ace.allow || !AceMatches(ace, subject) || !ace.modes.Contains(effective)) {
      continue;
    }
    return true;
  }
  return false;
}

}  // namespace xsec
