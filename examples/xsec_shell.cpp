// xsec_shell: an interactive command interpreter over a SecureSystem.
//
// A small operator tool: create principals, log in at a security class,
// manipulate files, threads and the log, edit ACLs and labels, and inspect
// the audit trail — every command runs as the currently logged-in subject
// and is mediated by the reference monitor, so denials are the interesting
// output.
//
// Usage:
//   ./build/examples/xsec_shell            # runs the built-in demo script
//   ./build/examples/xsec_shell -          # reads commands from stdin
//
// Commands (one per line, # comments):
//   levels <l1> <l2> ...      category <name>
//   user <name>               group <name>         member <group> <member>
//   login <user> <level> [<cat> ...]
//   mkdir <path>              create <path>        write <path> <text...>
//   append <path> <text...>   read <path>          ls <path>       rm <path>
//   grant <path> allow|deny <principal> <modes>    label <path> <level> [<cat>...]
//   spawn <name>              kill <id>            threads
//   log <text...>             readlog
//   audit                     policy               help

#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/core/secure_system.h"
#include "src/policy/policy_io.h"

namespace {

using namespace xsec;  // NOLINT: example brevity

constexpr char kDemoScript[] = R"(# demo: two departments on one system
levels others organization local
category department-1
category department-2
user alice
user bob
user charlie
login alice organization department-1
create /fs/alice/plan
write /fs/alice/plan attack at dawn
read /fs/alice/plan
grant /fs/alice allow bob read|list          # a sloppy world-ish grant...
spawn worker
threads
login bob organization department-2
read /fs/alice/plan                          # ...that MAC still confines
why /fs/alice/plan read                      # the monitor explains itself
kill 1                                       # ThreadMurder attempt
threads
log bob was here                             # write-down into the base log: denied
login charlie others
log charlie was here                         # appending at one's own level works
login alice organization department-1
read /fs/alice/plan
readlog                                      # append-only log: no read grant
audit
)";

class Shell {
 public:
  Shell() {
    // The shell's operator owns a sandbox under /fs; users are created on
    // demand. Everyone may append to the system log.
    Acl log_acl;
    log_acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                      AccessModeSet(AccessMode::kWriteAppend)});
    (void)sys_.name_space().SetAclRef(sys_.log().log_node(),
                                      sys_.kernel().acls().Create(std::move(log_acl)));
    // /fs is writable by everyone so `mkdir` works; subdirectories then
    // carry their own policy.
    auto fs = sys_.name_space().Lookup("/fs");
    Acl fs_acl;
    fs_acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                     AccessMode::kList | AccessMode::kWrite});
    (void)sys_.name_space().SetAclRef(*fs, sys_.kernel().acls().Create(std::move(fs_acl)));
  }

  void RunLine(const std::string& raw) {
    std::string line = raw.substr(0, raw.find('#'));
    std::istringstream in(line);
    std::vector<std::string> tokens;
    for (std::string token; in >> token;) {
      tokens.push_back(token);
    }
    if (tokens.empty()) {
      return;
    }
    std::printf("xsec> %s\n", line.c_str());
    Dispatch(tokens);
  }

 private:
  StatusOr<PrincipalId> Principal(const std::string& name) {
    return sys_.principals().FindByName(name);
  }

  std::string Rest(const std::vector<std::string>& tokens, size_t from) {
    std::string out;
    for (size_t i = from; i < tokens.size(); ++i) {
      if (!out.empty()) {
        out += " ";
      }
      out += tokens[i];
    }
    return out;
  }

  void Report(const Status& status) {
    std::printf("  %s\n", status.ok() ? "ok" : status.ToString().c_str());
  }

  void Dispatch(const std::vector<std::string>& tokens) {
    const std::string& cmd = tokens[0];
    if (cmd == "help") {
      std::printf("  see the header comment of examples/xsec_shell.cpp\n");
    } else if (cmd == "levels") {
      Report(sys_.labels().DefineLevels({tokens.begin() + 1, tokens.end()}));
    } else if (cmd == "category" && tokens.size() == 2) {
      auto id = sys_.labels().DefineCategory(tokens[1]);
      Report(id.ok() ? OkStatus() : id.status());
    } else if (cmd == "user" && tokens.size() == 2) {
      auto id = sys_.CreateUser(tokens[1]);
      Report(id.ok() ? OkStatus() : id.status());
    } else if (cmd == "group" && tokens.size() == 2) {
      auto id = sys_.CreateGroup(tokens[1]);
      Report(id.ok() ? OkStatus() : id.status());
    } else if (cmd == "member" && tokens.size() == 3) {
      auto group = Principal(tokens[1]);
      auto member = Principal(tokens[2]);
      if (!group.ok() || !member.ok()) {
        std::printf("  unknown principal\n");
        return;
      }
      Report(sys_.principals().AddMember(*group, *member));
    } else if (cmd == "login" && tokens.size() >= 3) {
      auto user = Principal(tokens[1]);
      auto cls = sys_.labels().MakeClass(tokens[2], {tokens.begin() + 3, tokens.end()});
      if (!user.ok() || !cls.ok()) {
        std::printf("  bad user or class\n");
        return;
      }
      subject_ = sys_.Login(*user, *cls);
      std::printf("  logged in as %s at %s\n", tokens[1].c_str(),
                  sys_.labels().ClassToString(*cls).c_str());
      // Login provisioning (as multilevel-secure systems do): make sure the
      // user has a home directory labeled at the login class.
      std::string home = "/fs/" + tokens[1];
      if (!sys_.name_space().Lookup(home).ok()) {
        auto dir = sys_.name_space().BindPath(home, NodeKind::kDirectory, *user);
        if (dir.ok()) {
          (void)sys_.name_space().SetLabelRef(*dir, sys_.labels().StoreLabel(*cls));
          Acl acl;
          acl.AddEntry({AclEntryType::kAllow, *user, AccessModeSet::All()});
          (void)sys_.name_space().SetAclRef(*dir, sys_.kernel().acls().Create(std::move(acl)));
          std::printf("  provisioned %s at %s\n", home.c_str(),
                      sys_.labels().ClassToString(*cls).c_str());
        }
      }
    } else if (!subject_.principal.valid()) {
      std::printf("  log in first ('login <user> <level> [cats...]')\n");
    } else if (cmd == "mkdir" && tokens.size() == 2) {
      auto node = sys_.fs().MkDir(subject_, tokens[1]);
      Report(node.ok() ? OkStatus() : node.status());
    } else if (cmd == "create" && tokens.size() == 2) {
      auto node = sys_.fs().Create(subject_, tokens[1]);
      Report(node.ok() ? OkStatus() : node.status());
    } else if ((cmd == "write" || cmd == "append") && tokens.size() >= 3) {
      std::string text = Rest(tokens, 2);
      std::vector<uint8_t> bytes(text.begin(), text.end());
      Report(cmd == "write" ? sys_.fs().Write(subject_, tokens[1], std::move(bytes))
                            : sys_.fs().Append(subject_, tokens[1], bytes));
    } else if (cmd == "read" && tokens.size() == 2) {
      auto data = sys_.fs().Read(subject_, tokens[1]);
      if (data.ok()) {
        std::printf("  \"%s\"\n", std::string(data->begin(), data->end()).c_str());
      } else {
        Report(data.status());
      }
    } else if (cmd == "ls" && tokens.size() == 2) {
      auto names = sys_.fs().ListDir(subject_, tokens[1]);
      if (names.ok()) {
        for (const std::string& name : *names) {
          std::printf("  %s\n", name.c_str());
        }
      } else {
        Report(names.status());
      }
    } else if (cmd == "rm" && tokens.size() == 2) {
      Report(sys_.fs().Remove(subject_, tokens[1]));
    } else if (cmd == "grant" && tokens.size() == 5) {
      auto node = sys_.name_space().Lookup(tokens[1]);
      auto who = Principal(tokens[3]);
      auto modes = AccessModeSet::Parse(tokens[4]);
      if (!node.ok() || !who.ok() || !modes.ok() ||
          (tokens[2] != "allow" && tokens[2] != "deny")) {
        std::printf("  usage: grant <path> allow|deny <principal> <modes>\n");
        return;
      }
      Report(sys_.monitor().AddAclEntry(
          subject_, *node,
          AclEntry{tokens[2] == "allow" ? AclEntryType::kAllow : AclEntryType::kDeny, *who,
                   *modes}));
    } else if (cmd == "label" && tokens.size() >= 3) {
      auto node = sys_.name_space().Lookup(tokens[1]);
      auto cls = sys_.labels().MakeClass(tokens[2], {tokens.begin() + 3, tokens.end()});
      if (!node.ok() || !cls.ok()) {
        std::printf("  bad path or class\n");
        return;
      }
      Report(sys_.monitor().SetNodeLabel(subject_, *node, *cls));
    } else if (cmd == "spawn" && tokens.size() == 2) {
      auto id = sys_.threads().Spawn(subject_, tokens[1]);
      if (id.ok()) {
        std::printf("  thread %lld\n", static_cast<long long>(*id));
      } else {
        Report(id.status());
      }
    } else if (cmd == "kill" && tokens.size() == 2) {
      Report(sys_.threads().Kill(subject_, std::stoll(tokens[1])));
    } else if (cmd == "threads") {
      auto ids = sys_.threads().List(subject_);
      if (ids.ok()) {
        std::printf("  visible threads:");
        for (int64_t id : *ids) {
          std::printf(" %lld", static_cast<long long>(id));
        }
        std::printf("\n");
      } else {
        Report(ids.status());
      }
    } else if (cmd == "log" && tokens.size() >= 2) {
      Report(sys_.log().AppendEntry(subject_, Rest(tokens, 1)));
    } else if (cmd == "readlog") {
      auto entries = sys_.log().ReadEntries(subject_);
      if (entries.ok()) {
        for (const std::string& entry : *entries) {
          std::printf("  %s\n", entry.c_str());
        }
      } else {
        Report(entries.status());
      }
    } else if (cmd == "why" && tokens.size() == 3) {
      auto node = sys_.name_space().Lookup(tokens[1]);
      auto modes = AccessModeSet::Parse(tokens[2]);
      if (!node.ok() || !modes.ok()) {
        std::printf("  usage: why <path> <modes>\n");
        return;
      }
      std::printf("%s", sys_.monitor().Explain(subject_, *node, *modes).c_str());
    } else if (cmd == "audit") {
      for (const AuditRecord& record : sys_.monitor().audit().records()) {
        std::printf("  %s\n", record.ToString().c_str());
      }
    } else if (cmd == "policy") {
      auto policy = SerializePolicy(sys_.kernel());
      if (policy.ok()) {
        std::printf("%s", policy->c_str());
      } else {
        std::printf("  policy not serializable: %s\n", policy.status().ToString().c_str());
      }
    } else {
      std::printf("  unknown command (try 'help')\n");
    }
  }

  SecureSystem sys_;
  Subject subject_{};
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1 && std::string(argv[1]) == "-") {
    for (std::string line; std::getline(std::cin, line);) {
      shell.RunLine(line);
    }
    return 0;
  }
  std::istringstream demo(kDemoScript);
  for (std::string line; std::getline(demo, line);) {
    shell.RunLine(line);
  }
  return 0;
}
