// The paper's §2.2 worked example, executed end-to-end on the real system.
//
// "a user could use three linearly ordered labels (say local, organization
// and others in descending order) … and a set of labels (say myself,
// department-1, department-2 and outside) representing different categories.
// The user's applets would use a security class consisting of the local
// label and the entire second set of labels and thus have access to all
// files … Two applets from within the organization using the department-1
// and department-2 labels respectively thus have access to some files … but
// can not access each other's files. However, a third applet … that uses
// both … labels can access the data of both."
//
// RunAppletExample builds a SecureSystem with exactly these labels, five
// applet subjects, and one file per applet labeled at its creator's class
// with a *maximally permissive* ACL (so the matrix is decided purely by the
// mandatory lattice, as in the paper's example). It probes read and
// write-append for every subject × file pair and compares against the
// lattice-derived expectation. Experiment T2 prints the matrix; a test pins
// mismatches == 0 and the paper's specific claims.

#ifndef XSEC_SRC_CORE_APPLET_EXAMPLE_H_
#define XSEC_SRC_CORE_APPLET_EXAMPLE_H_

#include <string>
#include <vector>

namespace xsec {

struct AppletMatrix {
  std::vector<std::string> subjects;             // row labels
  std::vector<std::string> files;                // column labels
  std::vector<std::string> subject_classes;      // rendered classes
  std::vector<std::string> file_classes;
  std::vector<std::vector<bool>> read_allowed;   // [subject][file], measured
  std::vector<std::vector<bool>> append_allowed;
  std::vector<std::vector<bool>> expected_read;  // lattice-derived
  std::vector<std::vector<bool>> expected_append;
  int mismatches = 0;
};

AppletMatrix RunAppletExample();

// Renders the matrix as the T2 table ('R'=read, 'A'=append, '.'=denied).
std::string RenderAppletMatrix(const AppletMatrix& matrix);

}  // namespace xsec

#endif  // XSEC_SRC_CORE_APPLET_EXAMPLE_H_
