// Multi-sink sharded audit fan-out (AuditLog::AddSink/StartFanOut): lanes
// drain in parallel, each lane's stitcher hands records to its sink in exact
// global sequence order, backpressure and injected enqueue faults drop
// per-lane leaving gaps but never reorderings, and the memory-ring sink stays
// bounded. Rides in the --faults sweep (ci/run_checks.sh targets AuditFanOut).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/failpoint.h"
#include "src/monitor/audit.h"

namespace xsec {
namespace {

AuditRecord MakeRecord(bool allowed, DenyReason reason = DenyReason::kNone) {
  AuditRecord r;
  r.principal = PrincipalId{1};
  r.thread_id = 7;
  r.node = NodeId{3};
  r.path = "/svc/fs/read";
  r.modes = AccessMode::kExecute;
  r.allowed = allowed;
  r.reason = reason;
  return r;
}

// Requires strictly increasing sequences (the stitched-order proof at the
// observer's end) and returns them for gap analysis.
std::vector<uint64_t> SequencesInOrder(const std::vector<AuditRecord>& records) {
  std::vector<uint64_t> seqs;
  seqs.reserve(records.size());
  for (const AuditRecord& record : records) {
    if (!seqs.empty()) {
      EXPECT_GT(record.sequence, seqs.back())
          << "sink observed sequences out of order";
    }
    seqs.push_back(record.sequence);
  }
  return seqs;
}

TEST(AuditFanOutTest, EverySinkSeesEveryRecordInExactSequenceOrder) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  auto ring_a = std::make_shared<AuditMemoryRing>(4096);
  auto ring_b = std::make_shared<AuditMemoryRing>(4096);
  log.AddSink("a", MakeMemoryRingSink(ring_a));
  log.AddSink("b", MakeMemoryRingSink(ring_b));
  AuditFanOutOptions options;
  options.shards = 4;
  log.StartFanOut(options);
  EXPECT_EQ(log.fanout_sinks(), 2u);

  constexpr int kRecords = 500;
  for (int i = 0; i < kRecords; ++i) {
    log.Record(MakeRecord(i % 3 != 0, i % 3 == 0 ? DenyReason::kDacNoGrant
                                                 : DenyReason::kNone));
  }
  log.StopFanOut();  // flush + join every lane

  for (const auto& ring : {ring_a, ring_b}) {
    std::vector<uint64_t> seqs = SequencesInOrder(ring->records());
    ASSERT_EQ(seqs.size(), static_cast<size_t>(kRecords));
    // No drops configured and capacity ample: the stream is gapless 0..N-1.
    EXPECT_EQ(seqs.front(), 0u);
    EXPECT_EQ(seqs.back(), static_cast<uint64_t>(kRecords - 1));
  }
  EXPECT_EQ(log.fanout_delivered(), 2u * kRecords);
  EXPECT_EQ(log.fanout_dropped(), 0u);
  EXPECT_EQ(log.fanout_stitch_violations(), 0u);
}

TEST(AuditFanOutTest, RecordBatchStitchesContiguouslyAcrossShards) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  auto ring = std::make_shared<AuditMemoryRing>(4096);
  log.AddSink("batch", MakeMemoryRingSink(ring));
  AuditFanOutOptions options;
  options.shards = 3;  // batches of 10 wrap the shard count unevenly
  log.StartFanOut(options);
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<AuditRecord> records;
    for (int i = 0; i < 10; ++i) {
      records.push_back(MakeRecord(false, DenyReason::kMacFlow));
    }
    log.RecordBatch(std::move(records));
  }
  log.StopFanOut();
  std::vector<uint64_t> seqs = SequencesInOrder(ring->records());
  ASSERT_EQ(seqs.size(), 200u);
  EXPECT_EQ(seqs.front(), 0u);
  EXPECT_EQ(seqs.back(), 199u);
  EXPECT_EQ(log.fanout_stitch_violations(), 0u);
}

TEST(AuditFanOutTest, ConcurrentRecordersKeepEveryLaneInOrder) {
  AuditLog log(/*capacity=*/8192);
  log.set_policy(AuditPolicy::kAll);
  auto ring_a = std::make_shared<AuditMemoryRing>(8192);
  auto ring_b = std::make_shared<AuditMemoryRing>(8192);
  log.AddSink("a", MakeMemoryRingSink(ring_a));
  log.AddSink("b", MakeMemoryRingSink(ring_b));
  log.StartFanOut();

  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&log] {
      for (int i = 0; i < 300; ++i) {
        log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
      }
    });
  }
  for (auto& recorder : recorders) {
    recorder.join();
  }
  log.StopFanOut();
  for (const auto& ring : {ring_a, ring_b}) {
    std::vector<uint64_t> seqs = SequencesInOrder(ring->records());
    ASSERT_EQ(seqs.size(), 1200u);
  }
  EXPECT_EQ(log.fanout_stitch_violations(), 0u);
}

TEST(AuditFanOutTest, ASlowLaneDropsOnlyItselfAndStaysOrdered) {
  AuditLog log(/*capacity=*/8192);
  log.set_policy(AuditPolicy::kAll);
  auto fast = std::make_shared<AuditMemoryRing>(8192);
  auto slow = std::make_shared<AuditMemoryRing>(8192);
  log.AddSink("fast", MakeMemoryRingSink(fast));
  log.AddSink("slow", [slow](const AuditRecord& record) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    slow->Write(record);
  });
  AuditFanOutOptions options;
  options.shards = 2;
  // Headroom the fast lane never exhausts at the throttled record cadence,
  // small enough that the 1ms/record slow lane overflows well before the
  // stream ends.
  options.shard_queue_capacity = 64;
  log.StartFanOut(options);

  constexpr int kRecords = 400;
  for (int i = 0; i < kRecords; ++i) {
    log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  log.StopFanOut();

  std::vector<AuditSinkLaneStats> lanes = log.FanOutStats();
  ASSERT_EQ(lanes.size(), 2u);
  const AuditSinkLaneStats& fast_lane = lanes[0].name == "fast" ? lanes[0] : lanes[1];
  const AuditSinkLaneStats& slow_lane = lanes[0].name == "slow" ? lanes[0] : lanes[1];
  // The fast lane never saturated: it delivered the full stream while the
  // slow lane shed — one wedged sink cannot starve the rest.
  EXPECT_EQ(fast_lane.delivered, static_cast<uint64_t>(kRecords));
  EXPECT_EQ(fast_lane.dropped, 0u);
  EXPECT_GT(slow_lane.dropped, 0u);
  EXPECT_EQ(slow_lane.delivered + slow_lane.dropped, static_cast<uint64_t>(kRecords));
  // Drops punch gaps in the slow lane's stream, never reorderings.
  std::vector<uint64_t> seqs = SequencesInOrder(slow->records());
  EXPECT_EQ(seqs.size(), slow_lane.delivered);
  EXPECT_EQ(log.fanout_stitch_violations(), 0u);
}

TEST(AuditFanOutTest, EnqueueFailpointDropsLeaveGapsWithOrderIntact) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  auto ring = std::make_shared<AuditMemoryRing>(4096);
  log.AddSink("faulty", MakeMemoryRingSink(ring));
  log.StartFanOut();
  // Hits 50..69 fail to enqueue: a 20-record hole mid-stream.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("audit.fanout.enqueue", "error,nth=50,times=20")
                  .ok());
  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  }
  FailpointRegistry::Instance().DisarmAll();
  log.StopFanOut();

  std::vector<uint64_t> seqs = SequencesInOrder(ring->records());
  EXPECT_EQ(log.fanout_dropped(), 20u);
  EXPECT_EQ(seqs.size() + log.fanout_dropped(), static_cast<size_t>(kRecords));
  // Injected enqueue failures never corrupt the retained ring itself.
  EXPECT_EQ(log.records().size(), static_cast<size_t>(kRecords));
  EXPECT_EQ(log.fanout_stitch_violations(), 0u);
}

TEST(AuditFanOutTest, SinksCanBeAddedAndRemovedWhileRunning) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  auto early = std::make_shared<AuditMemoryRing>(4096);
  uint64_t early_id = log.AddSink("early", MakeMemoryRingSink(early));
  log.StartFanOut();
  for (int i = 0; i < 50; ++i) {
    log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  }
  // A lane added while running starts draining at once — from here on, not
  // retroactively.
  auto late = std::make_shared<AuditMemoryRing>(4096);
  log.AddSink("late", MakeMemoryRingSink(late));
  for (int i = 0; i < 50; ++i) {
    log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  }
  // RemoveSink flushes the lane before unregistering it.
  ASSERT_TRUE(log.RemoveSink(early_id));
  EXPECT_EQ(early->total(), 100u);
  EXPECT_EQ(log.fanout_sinks(), 1u);
  for (int i = 0; i < 25; ++i) {
    log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  }
  log.StopFanOut();
  EXPECT_EQ(early->total(), 100u) << "a removed sink must see nothing further";
  EXPECT_EQ(late->total(), 75u);
  SequencesInOrder(late->records());
  EXPECT_FALSE(log.RemoveSink(early_id)) << "double remove";
  EXPECT_EQ(log.fanout_stitch_violations(), 0u);
}

TEST(AuditFanOutTest, NdjsonAndMemoryLanesObserveTheSameStream) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  auto ring = std::make_shared<AuditMemoryRing>(4096);
  auto lines = std::make_shared<std::ostringstream>();
  log.AddSink("memory", MakeMemoryRingSink(ring));
  // The NDJSON lane shares the idiom of set_sink's MakeNdjsonSink: one JSON
  // object per line, written only from this lane's drainer thread.
  log.AddSink("ndjson", [lines](const AuditRecord& record) {
    *lines << record.ToJson() << "\n";
  });
  log.StartFanOut();
  for (int i = 0; i < 64; ++i) {
    log.Record(MakeRecord(i % 2 == 0, i % 2 == 0 ? DenyReason::kNone
                                                 : DenyReason::kMacFlow));
  }
  log.StopFanOut();
  size_t line_count = 0;
  std::string text = lines->str();
  for (char c : text) {
    line_count += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(line_count, 64u);
  EXPECT_EQ(ring->total(), 64u);
  EXPECT_NE(text.find("\"seq\":"), std::string::npos);
}

TEST(AuditFanOutTest, MemoryRingStaysBoundedOldestFirst) {
  AuditMemoryRing ring(8);
  for (int i = 0; i < 100; ++i) {
    AuditRecord record = MakeRecord(false, DenyReason::kDacNoGrant);
    record.sequence = static_cast<uint64_t>(i);
    ring.Write(record);
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.total(), 100u);
  std::vector<AuditRecord> kept = ring.records();
  ASSERT_EQ(kept.size(), 8u);
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].sequence, 92u + i);  // the newest 8, oldest first
  }
}

TEST(AuditFanOutTest, FlushWaitsOutEveryLane) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  auto slow = std::make_shared<AuditMemoryRing>(4096);
  log.AddSink("slow", [slow](const AuditRecord& record) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    slow->Write(record);
  });
  AuditFanOutOptions options;
  options.shard_queue_capacity = 4096;  // nothing drops; Flush must wait
  log.StartFanOut(options);
  for (int i = 0; i < 100; ++i) {
    log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  }
  log.Flush();
  EXPECT_EQ(slow->total(), 100u);  // every record landed before Flush returned
  log.StopFanOut();
}

}  // namespace
}  // namespace xsec
