// Policy serialization: dump and restore the complete protection state of a
// running kernel as a line-oriented text policy.
//
// A deployable security system needs its policy to outlive the process; this
// module captures everything the reference monitor consults — trust levels,
// categories, principals, group membership, the security officer, name-space
// nodes with owners, labels, and per-node ACLs — and reapplies it to a fresh
// kernel. Code (procedure handlers, extension images) is deliberately NOT
// part of a policy: services re-register their handlers at boot and the
// loader re-attaches policy to the same names, which is exactly the
// single-name-space design of §2.3 paying off.
//
// Format (one directive per line, '#' comments, whitespace separated):
//
//   xsec-policy v1
//   levels <low> <mid> <high>          # ascending trust, at most once
//   category <name>                    # in id order
//   user <name>
//   group <name>
//   member <group> <user-or-group>
//   clearance <user> <level> [<cat>...]
//   officer <name>
//   node <path> <kind> <owner>         # pre-order, so parents precede
//   label <path> <level> [<cat>...]
//   acl <path> allow|deny <principal> <modes>   # modes: "read|execute" form
//   acl <path> none                    # explicit empty own ACL (deny-all
//                                      # override of any inherited ACL)
//
// Loading is idempotent with respect to pre-existing entities: principals
// and nodes that already exist (the built-in "system" user, service nodes
// registered at boot) are reused and their policy overwritten — except that
// a pre-existing node whose kind differs from the `node` directive is an
// INVALID_ARGUMENT error, not a silent reuse.
//
// Tokenization constraints: the format is whitespace-separated with '#'
// comments, so names and path components must not contain whitespace or
// '#'. PrincipalRegistry and NameSpace reject such names at creation, which
// keeps every representable kernel serializable on this axis.

#ifndef XSEC_SRC_POLICY_POLICY_IO_H_
#define XSEC_SRC_POLICY_POLICY_IO_H_

#include <string>
#include <string_view>

#include "src/extsys/kernel.h"

namespace xsec {

// Renders the kernel's full protection state. Returns FAILED_PRECONDITION
// (never a best-effort placeholder) if the kernel holds state the format
// cannot name — a label or clearance using a level/category index with no
// defined name, or a node/ACL referencing a principal id that is not in the
// registry. A success result always loads back via LoadPolicy.
StatusOr<std::string> SerializePolicy(Kernel& kernel);

// Applies a policy to a kernel (trusted, administrative operation). Returns
// INVALID_ARGUMENT with a line number on any malformed directive; earlier
// directives remain applied (load into a scratch kernel to validate first).
Status LoadPolicy(std::string_view text, Kernel* kernel);

// -- Crash-consistent policy files (MODEL.md §12) -----------------------------

// Writes the serialized policy to `path` so that a crash (or injected fault)
// at ANY point leaves a loadable policy behind:
//
//   1. serialize + append a `# xsec-checksum <fnv1a-64>` trailer line;
//   2. write to `<path>.tmp` and fsync it (a torn temp file never has a
//      valid trailer, so the loader rejects it);
//   3. rename the previous `<path>` (if any) to `<path>.bak`;
//   4. atomically rename the temp file into place.
//
// Failpoints: `policy.io.open` fails the temp-file open; `policy.io.write`
// kills the write mid-stream, leaving a torn temp file and `path`
// untouched; `policy.io.commit` simulates a crash between the two renames
// (`path` missing, `.bak` intact).
Status SavePolicyFile(Kernel& kernel, const std::string& path);

// Loads the policy saved at `path` by SavePolicyFile, verifying the
// checksum trailer; a missing or torn `path` falls back to `<path>.bak`.
// `loaded_from`, when non-null, receives the file actually applied. Returns
// NOT_FOUND when neither file holds an intact policy. (Hand-written policy
// files without a trailer belong to LoadPolicy, not this loader: no
// checksum, no crash-consistency claim.)
Status LoadPolicyFile(const std::string& path, Kernel* kernel,
                      std::string* loaded_from = nullptr);

}  // namespace xsec

#endif  // XSEC_SRC_POLICY_POLICY_IO_H_
