file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_audit.dir/bench_f7_audit.cc.o"
  "CMakeFiles/bench_f7_audit.dir/bench_f7_audit.cc.o.d"
  "bench_f7_audit"
  "bench_f7_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
