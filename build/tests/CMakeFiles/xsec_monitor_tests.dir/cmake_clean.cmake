file(REMOVE_RECURSE
  "CMakeFiles/xsec_monitor_tests.dir/audit_test.cc.o"
  "CMakeFiles/xsec_monitor_tests.dir/audit_test.cc.o.d"
  "CMakeFiles/xsec_monitor_tests.dir/decision_cache_test.cc.o"
  "CMakeFiles/xsec_monitor_tests.dir/decision_cache_test.cc.o.d"
  "CMakeFiles/xsec_monitor_tests.dir/reference_monitor_test.cc.o"
  "CMakeFiles/xsec_monitor_tests.dir/reference_monitor_test.cc.o.d"
  "xsec_monitor_tests"
  "xsec_monitor_tests.pdb"
  "xsec_monitor_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_monitor_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
