#include "src/core/secure_system.h"

#include <cassert>

#include "src/base/strings.h"
#include "src/baselines/xsec_model.h"
#include "src/core/flow_sim.h"

namespace xsec {

SecureSystem::SecureSystem(MonitorOptions options) : kernel_(options) {
  fs_ = std::make_unique<MemFs>(&kernel_);
  mbufs_ = std::make_unique<MbufPool>(&kernel_);
  threads_ = std::make_unique<ThreadService>(&kernel_);
  log_ = std::make_unique<LogService>(&kernel_);
  vfs_ = std::make_unique<VfsService>(&kernel_);
  net_ = std::make_unique<NetStack>(&kernel_);
  stats_ = std::make_unique<StatsService>(&kernel_);
  faults_ = std::make_unique<FaultService>(&kernel_);
  Status status = InstallDefaults();
  assert(status.ok() && "SecureSystem boot failed");
  (void)status;
}

Status SecureSystem::InstallDefaults() {
  everyone_ = *kernel_.principals().CreateGroup("everyone");

  XSEC_RETURN_IF_ERROR(fs_->Install());
  XSEC_RETURN_IF_ERROR(mbufs_->Install());
  XSEC_RETURN_IF_ERROR(threads_->Install());
  XSEC_RETURN_IF_ERROR(log_->Install());
  XSEC_RETURN_IF_ERROR(vfs_->Install());
  XSEC_RETURN_IF_ERROR(net_->Install());
  XSEC_RETURN_IF_ERROR(stats_->Install());
  XSEC_RETURN_IF_ERROR(faults_->Install());

  // A long-running compute procedure: runs the T3 information-flow
  // simulation under the full xsec model. It exists as a service both as a
  // workload generator and as the reference cooperative-cancellation
  // consumer: the op loop polls the call's deadline/cancel once per
  // FlowSimConfig::poll_every_ops, so CallOptions::deadline_ns bounds the
  // handler's in-call latency to one poll interval past the deadline.
  //   args = [num_ops (int, default 10000), seed (int, default 42)]
  //   returns "ops=N allowed=A denied=D violations=V over=O"
  auto sim = kernel_.RegisterProcedure(
      "/svc/sim/flow", kernel_.system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        FlowSimConfig config;
        if (!ctx.args.empty()) {
          auto ops = ArgInt(ctx.args, 0);
          if (!ops.ok()) {
            return ops.status();
          }
          if (*ops <= 0) {
            return InvalidArgumentError("num_ops must be positive");
          }
          config.num_ops = static_cast<uint64_t>(*ops);
        }
        if (ctx.args.size() > 1) {
          auto seed = ArgInt(ctx.args, 1);
          if (!seed.ok()) {
            return seed.status();
          }
          config.seed = static_cast<uint64_t>(*seed);
        }
        config.deadline_ns = ctx.deadline_ns;
        config.cancel = ctx.cancel;
        XsecFullModel model;
        FlowSimResult result = RunFlowSimulation(model, config);
        if (result.cancelled) {
          Status why = ctx.CheckDeadline();
          return why.ok() ? DeadlineExceededError("flow simulation cancelled mid-run") : why;
        }
        return Value{StrFormat(
            "ops=%llu allowed=%llu denied=%llu violations=%llu over=%llu",
            static_cast<unsigned long long>(result.ops),
            static_cast<unsigned long long>(result.allowed),
            static_cast<unsigned long long>(result.denied),
            static_cast<unsigned long long>(result.flow_violations),
            static_cast<unsigned long long>(result.over_restrictions))};
      });
  if (!sim.ok()) {
    return sim.status();
  }

  NameSpace& ns = kernel_.name_space();
  AclStore& acls = kernel_.acls();
  auto set_acl = [&](std::string_view path, Acl acl) -> Status {
    auto node = ns.Lookup(path);
    if (!node.ok()) {
      return node.status();
    }
    return ns.SetAclRef(*node, acls.Create(std::move(acl)));
  };

  // Defaults: the hierarchy is browsable and services are callable by
  // everyone; individual nodes restrict from there. Nothing is writable or
  // extensible by default (fail-closed for mutation).
  Acl listable;
  listable.AddEntry(
      AclEntry{AclEntryType::kAllow, everyone_, AccessMode::kList | AccessMode::kRead});
  XSEC_RETURN_IF_ERROR(set_acl("/", std::move(listable)));

  Acl callable;
  callable.AddEntry(AclEntry{AclEntryType::kAllow, everyone_,
                             AccessMode::kList | AccessMode::kExecute});
  XSEC_RETURN_IF_ERROR(set_acl("/svc", std::move(callable)));

  return OkStatus();
}

StatusOr<ExtensionSupervisor*> SecureSystem::EnableSupervision(SupervisorOptions options) {
  if (supervisor_ != nullptr) {
    return supervisor_.get();
  }
  if (!options.audit_principal.valid()) {
    options.audit_principal = kernel_.system_principal();
  }
  supervisor_ = std::make_unique<ExtensionSupervisor>(&kernel_.monitor(), options);
  // Telemetry first, then the kernel hookup: leaves exist before the first
  // supervised invocation can trip anything worth looking at.
  XSEC_RETURN_IF_ERROR(stats_->MountHealth(supervisor_.get()));
  health_ = std::make_unique<HealthService>(&kernel_, supervisor_.get());
  XSEC_RETURN_IF_ERROR(health_->Install());
  kernel_.set_supervisor(supervisor_.get());
  return supervisor_.get();
}

StatusOr<PrincipalId> SecureSystem::CreateUser(std::string_view name) {
  auto user = kernel_.principals().CreateUser(name);
  if (!user.ok()) {
    return user;
  }
  XSEC_RETURN_IF_ERROR(kernel_.principals().AddMember(everyone_, *user));
  return user;
}

StatusOr<PrincipalId> SecureSystem::CreateGroup(std::string_view name) {
  return kernel_.principals().CreateGroup(name);
}

Subject SecureSystem::Login(PrincipalId principal, const SecurityClass& security_class) {
  return kernel_.CreateSubject(principal, security_class);
}

StatusOr<Subject> SecureSystem::LoginChecked(std::string_view name,
                                             std::string_view credential,
                                             const SecurityClass& security_class) {
  auto user = kernel_.principals().Authenticate(name, credential);
  if (!user.ok()) {
    return user.status();
  }
  const SecurityClass* clearance = kernel_.labels().ClearanceOf(user->value);
  if (clearance != nullptr && !clearance->Dominates(security_class)) {
    return PermissionDeniedError(
        StrFormat("requested class %s exceeds the clearance of '%s'",
                  kernel_.labels().ClassToString(security_class).c_str(),
                  std::string(name).c_str()));
  }
  return kernel_.CreateSubject(*user, security_class);
}

Status SecureSystem::SetClearance(PrincipalId user, const SecurityClass& clearance) {
  if (kernel_.principals().Get(user) == nullptr) {
    return NotFoundError("no such principal");
  }
  kernel_.labels().SetClearance(user.value, clearance);
  return OkStatus();
}

}  // namespace xsec
