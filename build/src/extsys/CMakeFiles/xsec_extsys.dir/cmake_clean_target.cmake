file(REMOVE_RECURSE
  "libxsec_extsys.a"
)
