// Fault sweeps for the mediation-ring transport and the data paths behind
// it: the per-REQUEST fail-closed guarantee inside a batch (MODEL.md §12 +
// §14), failpoint injection at the ring's admission gate, and the
// memfs/vfs/NDJSON failure sites the transport's callers traverse.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/failpoint.h"
#include "src/core/secure_system.h"
#include "src/monitor/mediation_ring.h"

namespace xsec {
namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

AuditRecord DenialRecord() {
  AuditRecord r;
  r.principal = PrincipalId{1};
  r.node = NodeId{3};
  r.path = "/fs/secret";
  r.modes = AccessMode::kRead;
  r.allowed = false;
  r.reason = DenyReason::kDacNoGrant;
  return r;
}

// Trips on the very first failed write attempt; half-opens fast so tests
// can heal it with one short sleep.
ResilientSinkOptions HairTriggerSink() {
  ResilientSinkOptions options;
  options.max_attempts = 1;
  options.backoff_initial_ns = 1'000;
  options.backoff_max_ns = 4'000;
  options.trip_after = 1;
  options.reopen_after_ns = 2'000'000;  // 2 ms
  return options;
}

// -- The ring's fail-closed and injection behaviour ---------------------------

class RingFaultTest : public ::testing::Test {
 protected:
  RingFaultTest() {
    MonitorOptions options;
    options.audit_required = true;  // policy stays kDenialsOnly (the default)
    sys_ = std::make_unique<SecureSystem>(options);
    alice_ = *sys_->CreateUser("alice");
    bob_ = *sys_->CreateUser("bob");
    alice_s_ = sys_->Login(alice_, sys_->labels().Bottom());
    bob_s_ = sys_->Login(bob_, sys_->labels().Bottom());
    NodeId dir = *sys_->name_space().BindPath("/fs/ring", NodeKind::kDirectory,
                                              sys_->system_principal());
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, alice_, AccessMode::kRead | AccessMode::kWrite});
    (void)sys_->name_space().SetAclRef(dir, sys_->kernel().acls().Create(std::move(acl)));
    f1_ = *sys_->name_space().BindPath("/fs/ring/a", NodeKind::kFile,
                                       sys_->system_principal());
    f2_ = *sys_->name_space().BindPath("/fs/ring/b", NodeKind::kFile,
                                       sys_->system_principal());
    f3_ = *sys_->name_space().BindPath("/fs/ring/c", NodeKind::kFile,
                                       sys_->system_principal());
  }

  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  // A resilient sink whose inner write is controlled by the
  // audit.sink.write failpoint (healthy until armed).
  std::shared_ptr<ResilientSink> InstallSink() {
    auto sink = std::make_shared<ResilientSink>(
        [](const AuditRecord&) -> Status { return OkStatus(); }, HairTriggerSink());
    sys_->monitor().audit().InstallResilientSink(sink);
    return sink;
  }

  std::unique_ptr<SecureSystem> sys_;
  PrincipalId alice_, bob_;
  Subject alice_s_, bob_s_;
  NodeId f1_, f2_, f3_;
};

TEST_F(RingFaultTest, MidBatchSinkTripFailsClosedPerRequestNotPerBatch) {
  auto sink = InstallSink();
  AuditLog& audit = sys_->monitor().audit();
  ASSERT_TRUE(audit.required());
  ASSERT_FALSE(audit.SinkTripped());

  // The sink dies before the batch runs — but under the denials-only policy
  // nothing touches it until the first denial is flushed.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("audit.sink.write", "error").ok());

  ReferenceMonitor::BatchCheckRequest requests[4] = {
      {alice_s_, f1_, AccessModeSet(AccessMode::kRead)},  // allow (pre-trip)
      {bob_s_, f1_, AccessModeSet(AccessMode::kRead)},    // the tripping denial
      {alice_s_, f2_, AccessModeSet(AccessMode::kRead)},  // would-be allow
      {alice_s_, f3_, AccessModeSet(AccessMode::kRead)},  // would-be allow
  };
  Decision out[4];
  sys_->monitor().CheckBatch(requests, 4, out);

  // Request 0 decided while the circuit was still closed: it stays an
  // allow. Request 1 is a real denial — never an allow to withhold. The
  // denial's flush (before request 2's availability probe) trips the
  // circuit, so ONLY the subsequent would-be allows fail closed.
  EXPECT_TRUE(out[0].allowed);
  EXPECT_FALSE(out[1].allowed);
  EXPECT_EQ(out[1].reason, DenyReason::kDacNoGrant);
  EXPECT_FALSE(out[2].allowed);
  EXPECT_EQ(out[2].reason, DenyReason::kAuditUnavailable);
  EXPECT_FALSE(out[3].allowed);
  EXPECT_EQ(out[3].reason, DenyReason::kAuditUnavailable);
  EXPECT_TRUE(audit.SinkTripped());

  // Heal the sink, wait out the reopen window, and carry the half-open
  // probe on a retained record.
  FailpointRegistry::Instance().DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  (void)sys_->monitor().Check(bob_s_, f1_, AccessMode::kRead);  // probe carrier
  ASSERT_FALSE(audit.SinkTripped());

  // The kAuditUnavailable denials were never cached: the same tuples allow
  // immediately once the circuit recloses.
  EXPECT_TRUE(sys_->monitor().Check(alice_s_, f2_, AccessMode::kRead).allowed);
  EXPECT_TRUE(sys_->monitor().Check(alice_s_, f3_, AccessMode::kRead).allowed);
}

TEST_F(RingFaultTest, AllAllowBatchUnderDenialsOnlyNeverTouchesTheSink) {
  auto sink = InstallSink();
  // Even with the inner sink dead, an all-allow batch under the
  // denials-only policy retains nothing, flushes nothing, and cannot trip
  // the circuit — the amortized path does zero sink work.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("audit.sink.write", "error").ok());
  std::vector<ReferenceMonitor::BatchCheckRequest> requests(
      8, ReferenceMonitor::BatchCheckRequest{alice_s_, f1_, AccessModeSet(AccessMode::kRead)});
  std::vector<Decision> out(requests.size());
  sys_->monitor().CheckBatch(requests.data(), requests.size(), out.data());
  for (const Decision& decision : out) {
    EXPECT_TRUE(decision.allowed);
  }
  EXPECT_FALSE(sys_->monitor().audit().SinkTripped());
  EXPECT_EQ(sink->written() + sink->retries() + sink->gave_up(), 0u);
}

TEST_F(RingFaultTest, SubmitFailpointInjectsAdmissionErrors) {
  MediationRing ring(&sys_->monitor());
  auto client = ring.NewClient();
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("ring.submit", "error=resource-exhausted,times=2")
                  .ok());
  EXPECT_EQ(ring.SubmitCheck(*client, alice_s_, f1_, AccessMode::kRead).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ring.SubmitCheck(*client, alice_s_, f1_, AccessMode::kRead).status().code(),
            StatusCode::kResourceExhausted);
  // times=2 exhausted: admissions flow again, nothing was queued meanwhile.
  auto ticket = ring.SubmitCheck(*client, alice_s_, f1_, AccessMode::kRead);
  ASSERT_TRUE(ticket.ok());
  auto completion = ring.Wait(*client, *ticket);
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->decision.allowed);
  EXPECT_EQ(ring.submitted(), 1u);
}

TEST_F(RingFaultTest, RingDeliversFailClosedDecisions) {
  auto sink = InstallSink();
  AuditLog& audit = sys_->monitor().audit();
  // Trip the circuit through the per-call path first.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("audit.sink.write", "error").ok());
  (void)sys_->monitor().Check(bob_s_, f1_, AccessMode::kRead);
  ASSERT_TRUE(audit.SinkTripped());

  // A would-be allow submitted over the ring comes back as the same
  // fail-closed denial the per-call path produces.
  MediationRing ring(&sys_->monitor());
  auto client = ring.NewClient();
  auto ticket = ring.SubmitCheck(*client, alice_s_, f1_, AccessMode::kRead);
  ASSERT_TRUE(ticket.ok());
  auto completion = ring.Wait(*client, *ticket);
  ASSERT_TRUE(completion.ok());
  EXPECT_FALSE(completion->decision.allowed);
  EXPECT_EQ(completion->decision.reason, DenyReason::kAuditUnavailable);
}

// -- Failpoints in the I/O data paths (memfs, vfs, NDJSON export) -------------

class FailpointDataPathTest : public ::testing::Test {
 protected:
  FailpointDataPathTest() {
    alice_ = *sys_.CreateUser("alice");
    NodeId home = *sys_.name_space().BindPath("/fs/home", NodeKind::kDirectory, alice_);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, alice_, AccessModeSet::All()});
    (void)sys_.name_space().SetAclRef(home, sys_.kernel().acls().Create(std::move(acl)));
    alice_s_ = sys_.Login(alice_, sys_.labels().Bottom());
  }

  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  SecureSystem sys_;
  PrincipalId alice_;
  Subject alice_s_;
};

TEST_F(FailpointDataPathTest, MemfsInjectionsFailAfterMediationAndLeaveContentsIntact) {
  ASSERT_TRUE(sys_.fs().Create(alice_s_, "/fs/home/notes").ok());
  ASSERT_TRUE(sys_.fs().Write(alice_s_, "/fs/home/notes", Bytes("stable")).ok());

  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Arm("memfs.read", "error").ok());
  EXPECT_EQ(sys_.fs().Read(alice_s_, "/fs/home/notes").status().code(),
            StatusCode::kInternal);
  ASSERT_TRUE(registry.Arm("memfs.write", "error=resource-exhausted").ok());
  EXPECT_EQ(sys_.fs().Write(alice_s_, "/fs/home/notes", Bytes("clobber")).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(registry.Arm("memfs.append", "error=resource-exhausted").ok());
  EXPECT_EQ(sys_.fs().Append(alice_s_, "/fs/home/notes", Bytes("tail")).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(registry.Arm("memfs.list", "error").ok());
  EXPECT_EQ(sys_.fs().ListDir(alice_s_, "/fs/home").status().code(),
            StatusCode::kInternal);

  // Every injected failure fired after the mediated check and before any
  // mutation: the original contents are untouched.
  registry.DisarmAll();
  auto data = sys_.fs().Read(alice_s_, "/fs/home/notes");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("stable"));
}

TEST_F(FailpointDataPathTest, MemfsNthGatingSkipsLeadingHits) {
  ASSERT_TRUE(sys_.fs().Create(alice_s_, "/fs/home/log").ok());
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("memfs.append", "error,nth=2").ok());
  EXPECT_TRUE(sys_.fs().Append(alice_s_, "/fs/home/log", Bytes("a")).ok());
  EXPECT_EQ(sys_.fs().Append(alice_s_, "/fs/home/log", Bytes("b")).code(),
            StatusCode::kInternal);
  auto data = sys_.fs().Read(alice_s_, "/fs/home/log");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("a")) << "the failed append must not leave a torn suffix";
}

TEST_F(FailpointDataPathTest, NetstackSendInjectionFailsAfterMediationAndQueuesNothing) {
  ASSERT_TRUE(sys_.net().CreateDevice(alice_s_, "eth0").ok());
  ASSERT_TRUE(sys_.net().Send(alice_s_, "eth0", Bytes("out")).ok());
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("netstack.send", "error=resource-exhausted")
                  .ok());
  // A full tx ring: mediation allowed the send, the device I/O failed.
  EXPECT_EQ(sys_.net().Send(alice_s_, "eth0", Bytes("lost")).code(),
            StatusCode::kResourceExhausted);
  FailpointRegistry::Instance().DisarmAll();
  auto queued = sys_.net().TxQueued(alice_s_, "eth0");
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(*queued, 1) << "the failed send must queue nothing";
}

TEST_F(FailpointDataPathTest, NetstackRecvInjectionPreemptsFiltersAndProtocols) {
  ASSERT_TRUE(sys_.net().CreateDevice(alice_s_, "eth0").ok());
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("netstack.recv", "error").ok());
  EXPECT_EQ(sys_.net().Inject(alice_s_, "eth0", "upper", Bytes("pkt")).status().code(),
            StatusCode::kInternal);
  FailpointRegistry::Instance().DisarmAll();
  // Without the injection the same call fails later and differently (no such
  // protocol is registered): the failpoint fired after mediation but before
  // any filter or protocol dispatch, and nothing was delivered.
  EXPECT_EQ(sys_.net().Inject(alice_s_, "eth0", "upper", Bytes("pkt")).status().code(),
            StatusCode::kNotFound);
  auto delivered = sys_.net().Delivered(alice_s_, "eth0");
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 0);
}

TEST_F(FailpointDataPathTest, VfsForwardInjectionPreemptsDispatch) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("vfs.forward", "error=deadline-exceeded").ok());
  // Without the failpoint this is kNotFound (no such type registered); the
  // injection fires before dispatch ever looks the type up.
  EXPECT_EQ(sys_.vfs().Read(alice_s_, "toyfs", "/a").status().code(),
            StatusCode::kDeadlineExceeded);
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(sys_.vfs().Read(alice_s_, "toyfs", "/a").status().code(),
            StatusCode::kNotFound);
}

class NdjsonDiskFullTest : public ::testing::Test {
 protected:
  NdjsonDiskFullTest() {
    path_ = ::testing::TempDir() + "/xsec_diskfull_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".ndjson";
    std::remove(path_.c_str());
  }
  ~NdjsonDiskFullTest() override { std::remove(path_.c_str()); }

  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  // All lines in the file, requiring each to be newline-terminated (the
  // NDJSON whole-line invariant).
  std::vector<std::string> WholeLines() {
    std::ifstream in(path_, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < all.size()) {
      size_t end = all.find('\n', start);
      EXPECT_NE(end, std::string::npos) << "file ends in a partial line";
      if (end == std::string::npos) {
        break;
      }
      lines.push_back(all.substr(start, end - start));
      start = end + 1;
    }
    return lines;
  }

  std::string path_;
};

TEST_F(NdjsonDiskFullTest, FullDiskDropsTheLineAndKeepsTheFileWhole) {
  NdjsonFileRotator rotator(path_, NdjsonRotationPolicy{});
  ASSERT_TRUE(rotator.Open().ok());
  rotator.Write(DenialRecord());
  rotator.Write(DenialRecord());

  // One simulated ENOSPC: the record is dropped, the partial line is
  // truncated back off, and the writer keeps going.
  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("audit.ndjson.write", "error,times=1").ok());
  rotator.Write(DenialRecord());
  EXPECT_EQ(rotator.write_failures(), 1u);
  rotator.Write(DenialRecord());
  EXPECT_EQ(rotator.write_failures(), 1u);

  std::vector<std::string> lines = WholeLines();
  ASSERT_EQ(lines.size(), 3u);  // 4 writes, 1 dropped
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(NdjsonDiskFullTest, FullDiskTripsTheResilientSinkFailClosed) {
  auto rotator = std::make_shared<NdjsonFileRotator>(path_, NdjsonRotationPolicy{});
  ASSERT_TRUE(rotator->Open().ok());

  AuditLog log;
  log.set_required(true);
  ResilientSinkOptions options;
  options.max_attempts = 1;
  options.backoff_initial_ns = 1'000;
  options.trip_after = 2;
  options.reopen_after_ns = 60'000'000'000;  // stays open for this test
  auto sink = std::make_shared<ResilientSink>(MakeRotatingNdjsonFallibleSink(rotator),
                                              options);
  log.InstallResilientSink(sink);

  log.Record(DenialRecord());
  EXPECT_EQ(sink->written(), 1u);
  ASSERT_FALSE(log.SinkTripped());

  // A persistently full disk: each dropped line is a failed attempt, and
  // the second one opens the circuit — the condition `audit_required`
  // monitors to start failing closed.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("audit.ndjson.write", "error").ok());
  log.Record(DenialRecord());
  log.Record(DenialRecord());
  EXPECT_TRUE(log.SinkTripped());
  EXPECT_EQ(log.sink_state(), "open");
  EXPECT_GE(rotator->write_failures(), 2u);
  // The ring still retains what the disk lost.
  EXPECT_EQ(log.retained(), 3u);
}

}  // namespace
}  // namespace xsec
