#include "src/core/flow_sim.h"

#include <gtest/gtest.h>

#include "src/baselines/java_sandbox_model.h"
#include "src/baselines/nt_model.h"
#include "src/baselines/unix_model.h"
#include "src/baselines/xsec_model.h"

namespace xsec {
namespace {

FlowSimConfig SmallConfig(uint64_t seed = 42) {
  FlowSimConfig config;
  config.num_subjects = 8;
  config.num_objects = 32;
  config.num_ops = 4000;
  config.seed = seed;
  return config;
}

TEST(FlowSimTest, FullModelNeverViolatesFlow) {
  XsecFullModel full;
  for (uint64_t seed : {1u, 2u, 3u, 7u, 42u}) {
    FlowSimResult result = RunFlowSimulation(full, SmallConfig(seed));
    EXPECT_EQ(result.flow_violations, 0u) << "seed " << seed;
    EXPECT_EQ(result.ops, 4000u);
    // And it is exactly as permissive as the lattice allows: with DAC wide
    // open, it never over-restricts either.
    EXPECT_EQ(result.over_restrictions, 0u) << "seed " << seed;
    EXPECT_GT(result.allowed, 0u);
    EXPECT_GT(result.denied, 0u);
  }
}

TEST(FlowSimTest, DacOnlyModelLeaks) {
  XsecDacModel dac;
  FlowSimResult result = RunFlowSimulation(dac, SmallConfig());
  // DAC is wide open in the simulation: everything is allowed, so every
  // flow-illegal op leaks.
  EXPECT_GT(result.flow_violations, 0u);
  EXPECT_EQ(result.denied, 0u);
}

TEST(FlowSimTest, ClassicalModelsLeakToo) {
  UnixModel unix_model;
  NtModel nt;
  JavaSandboxModel java;
  FlowSimConfig config = SmallConfig();
  EXPECT_GT(RunFlowSimulation(unix_model, config).flow_violations, 0u);
  EXPECT_GT(RunFlowSimulation(nt, config).flow_violations, 0u);
  EXPECT_GT(RunFlowSimulation(java, config).flow_violations, 0u);
}

TEST(FlowSimTest, DeterministicForFixedSeed) {
  XsecDacModel dac;
  FlowSimResult a = RunFlowSimulation(dac, SmallConfig(9));
  FlowSimResult b = RunFlowSimulation(dac, SmallConfig(9));
  EXPECT_EQ(a.flow_violations, b.flow_violations);
  EXPECT_EQ(a.allowed, b.allowed);
}

TEST(FlowSimTest, CountsAreConsistent) {
  XsecFullModel full;
  FlowSimResult result = RunFlowSimulation(full, SmallConfig());
  EXPECT_EQ(result.allowed + result.denied, result.ops);
  EXPECT_LE(result.flow_violations, result.allowed);
  EXPECT_LE(result.over_restrictions, result.denied);
}

}  // namespace
}  // namespace xsec
