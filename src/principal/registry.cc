#include "src/principal/registry.h"

#include <algorithm>
#include <deque>

#include "src/base/strings.h"

namespace xsec {

PrincipalRegistry::PrincipalRegistry() = default;

StatusOr<PrincipalId> PrincipalRegistry::Create(std::string_view name, PrincipalKind kind) {
  if (name.empty()) {
    return InvalidArgumentError("principal name must be nonempty");
  }
  for (unsigned char c : name) {
    // Names appear in the whitespace-delimited, '#'-commented policy format
    // and in audit lines; keep them unambiguous.
    if (c <= ' ' || c == 0x7f || c == '#') {
      return InvalidArgumentError(
          "principal name must not contain whitespace, controls, or '#'");
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (by_name_.count(name) != 0) {
    return AlreadyExistsError(StrFormat("principal '%s' already exists", std::string(name).c_str()));
  }
  PrincipalId id{static_cast<uint32_t>(principals_.size())};
  Record rec;
  rec.principal = Principal{id, kind, std::string(name)};
  principals_.push_back(std::move(rec));
  // Key the index by a view into the record's own name: the record address
  // is deque-stable and the name is never mutated after creation.
  by_name_.emplace(std::string_view(principals_.back().principal.name), id.value);
  return id;
}

StatusOr<PrincipalId> PrincipalRegistry::CreateUser(std::string_view name) {
  return Create(name, PrincipalKind::kUser);
}

StatusOr<PrincipalId> PrincipalRegistry::CreateGroup(std::string_view name) {
  return Create(name, PrincipalKind::kGroup);
}

bool PrincipalRegistry::WouldCreateCycleLocked(PrincipalId group, PrincipalId member) const {
  if (member == group) {
    return true;
  }
  const Record& m = principals_[member.value];
  if (m.principal.kind != PrincipalKind::kGroup) {
    return false;
  }
  // BFS down from `member`: if `group` is reachable through members, adding
  // the edge group -> member closes a cycle.
  std::deque<PrincipalId> queue{member};
  DynamicBitset seen(principals_.size());
  seen.Set(member.value);
  while (!queue.empty()) {
    PrincipalId cur = queue.front();
    queue.pop_front();
    for (PrincipalId child : principals_[cur.value].members) {
      if (child == group) {
        return true;
      }
      if (!seen.Test(child.value)) {
        seen.Set(child.value);
        if (principals_[child.value].principal.kind == PrincipalKind::kGroup) {
          queue.push_back(child);
        }
      }
    }
  }
  return false;
}

Status PrincipalRegistry::AddMember(PrincipalId group, PrincipalId member) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (group.value >= principals_.size() || member.value >= principals_.size()) {
    return NotFoundError("no such principal");
  }
  Record& g = principals_[group.value];
  if (g.principal.kind != PrincipalKind::kGroup) {
    return InvalidArgumentError(
        StrFormat("'%s' is not a group", g.principal.name.c_str()));
  }
  if (std::find(g.members.begin(), g.members.end(), member) != g.members.end()) {
    return AlreadyExistsError("already a member");
  }
  if (WouldCreateCycleLocked(group, member)) {
    return FailedPreconditionError(
        StrFormat("adding '%s' to '%s' would create a membership cycle",
                  principals_[member.value].principal.name.c_str(), g.principal.name.c_str()));
  }
  g.members.push_back(member);
  principals_[member.value].member_of.push_back(group);
  // Mutate, then publish (release): a reader that observes the new epoch and
  // then computes a closure sees the new edge.
  membership_epoch_.fetch_add(1, std::memory_order_release);
  return OkStatus();
}

Status PrincipalRegistry::RemoveMember(PrincipalId group, PrincipalId member) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (group.value >= principals_.size() || member.value >= principals_.size()) {
    return NotFoundError("no such principal");
  }
  Record& g = principals_[group.value];
  auto it = std::find(g.members.begin(), g.members.end(), member);
  if (it == g.members.end()) {
    return NotFoundError("not a member");
  }
  g.members.erase(it);
  Record& m = principals_[member.value];
  m.member_of.erase(std::find(m.member_of.begin(), m.member_of.end(), group));
  membership_epoch_.fetch_add(1, std::memory_order_release);
  return OkStatus();
}

StatusOr<PrincipalId> PrincipalRegistry::FindByName(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return NotFoundError(StrFormat("no principal named '%s'", std::string(name).c_str()));
  }
  return PrincipalId{it->second};
}

const Principal* PrincipalRegistry::Get(PrincipalId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id.value >= principals_.size()) {
    return nullptr;
  }
  // The returned Principal's fields are immutable after creation and the
  // deque keeps its address stable, so this pointer stays readable even
  // under concurrent Create/AddMember.
  return &principals_[id.value].principal;
}

size_t PrincipalRegistry::principal_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return principals_.size();
}

std::shared_ptr<const DynamicBitset> PrincipalRegistry::Closure(PrincipalId user) const {
  uint64_t epoch = membership_epoch_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> cache_lock(closure_mu_);
  if (closure_cache_epoch_ != epoch) {
    // Old shared_ptrs stay alive in the hands of in-flight evaluations.
    closure_cache_.clear();
    closure_cache_epoch_ = epoch;
  }
  auto it = closure_cache_.find(user.value);
  if (it != closure_cache_.end()) {
    return it->second;
  }
  DynamicBitset closure;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    closure.Resize(principals_.size());
    if (user.value < principals_.size()) {
      std::deque<PrincipalId> queue{user};
      closure.Set(user.value);
      while (!queue.empty()) {
        PrincipalId cur = queue.front();
        queue.pop_front();
        for (PrincipalId parent : principals_[cur.value].member_of) {
          if (!closure.Test(parent.value)) {
            closure.Set(parent.value);
            queue.push_back(parent);
          }
        }
      }
    }
  }
  auto sp = std::make_shared<const DynamicBitset>(std::move(closure));
  closure_cache_.emplace(user.value, sp);
  return sp;
}

const DynamicBitset& PrincipalRegistry::MembershipClosure(PrincipalId user) const {
  // The closure object is co-owned by the cache entry, which lives until the
  // next membership mutation — exactly the documented lifetime.
  return *Closure(user);
}

StatusOr<std::vector<PrincipalId>> PrincipalRegistry::MembersOf(PrincipalId group) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (group.value >= principals_.size()) {
    return NotFoundError("no such principal");
  }
  const Record& g = principals_[group.value];
  if (g.principal.kind != PrincipalKind::kGroup) {
    return InvalidArgumentError("not a group");
  }
  return g.members;
}

Status PrincipalRegistry::SetCredential(PrincipalId user, std::string_view credential) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (user.value >= principals_.size()) {
    return NotFoundError("no such principal");
  }
  Record& rec = principals_[user.value];
  if (rec.principal.kind != PrincipalKind::kUser) {
    return InvalidArgumentError("credentials belong to users, not groups");
  }
  rec.credential = std::string(credential);
  return OkStatus();
}

StatusOr<PrincipalId> PrincipalRegistry::Authenticate(std::string_view name,
                                                      std::string_view credential) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return NotFoundError(StrFormat("no principal named '%s'", std::string(name).c_str()));
  }
  const Record& rec = principals_[it->second];
  if (rec.principal.kind != PrincipalKind::kUser) {
    return InvalidArgumentError("groups cannot log in");
  }
  if (rec.credential.empty() || rec.credential != credential) {
    return PermissionDeniedError("bad credential");
  }
  return PrincipalId{it->second};
}

}  // namespace xsec
