#include "src/monitor/decision_cache.h"

#include <bit>
#include <cassert>

namespace xsec {

DecisionCache::DecisionCache(size_t slot_count_pow2) {
  assert(slot_count_pow2 > 0 && std::has_single_bit(slot_count_pow2));
  slots_.resize(slot_count_pow2);
  mask_ = slot_count_pow2 - 1;
}

uint64_t DecisionCache::KeyHash(const Subject& subject, NodeId node, AccessModeSet modes) {
  uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(subject.principal.value);
  mix(node.value);
  mix(modes.bits());
  mix(subject.security_class.Hash());
  return h;
}

bool DecisionCache::Lookup(const Subject& subject, NodeId node, AccessModeSet modes,
                           const CacheStamps& current, CachedDecision* out) {
  uint64_t hash = KeyHash(subject, node, modes);
  Slot& slot = slots_[hash & mask_];
  if (!slot.occupied || slot.key_hash != hash || slot.principal != subject.principal.value ||
      slot.node != node.value || slot.modes != modes.bits() ||
      slot.class_hash != subject.security_class.Hash()) {
    ++misses_;
    return false;
  }
  if (!(slot.stamps == current)) {
    ++stale_hits_;
    slot.occupied = false;
    return false;
  }
  ++hits_;
  *out = slot.decision;
  return true;
}

void DecisionCache::Insert(const Subject& subject, NodeId node, AccessModeSet modes,
                           const CacheStamps& current, CachedDecision decision) {
  uint64_t hash = KeyHash(subject, node, modes);
  Slot& slot = slots_[hash & mask_];
  slot.occupied = true;
  slot.key_hash = hash;
  slot.principal = subject.principal.value;
  slot.node = node.value;
  slot.modes = modes.bits();
  slot.class_hash = subject.security_class.Hash();
  slot.stamps = current;
  slot.decision = decision;
}

void DecisionCache::Clear() {
  for (Slot& slot : slots_) {
    slot.occupied = false;
  }
}

}  // namespace xsec
