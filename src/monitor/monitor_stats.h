// Operational statistics for the mediation path.
//
// The paper's reference monitor is "a central facility to provide naming and
// protection services for the entire system" (§3); this module is that
// facility's own instrument panel. It extends the AuditLog's two coarse
// counters into per-DenyReason denial counters, per-access-mode check
// counters, and a fixed-bucket latency histogram sampled on the check path.
// StatsService (src/services/stats_service.h) surfaces every counter as a
// read-only node under /sys/monitor/... in the hierarchical namespace, so
// visibility of the telemetry is itself mediated by the monitor.
//
// Thread safety and hot-path cost: a shared fetch_add per counter would put
// several locked read-modify-writes (~7ns each measured) on every check —
// far more than the mediation fast path itself costs. Counters are instead
// striped: each recording thread claims a private cache-line-aligned slot
// the first time it touches an instance and then increments with plain
// relaxed load+store pairs (single writer per slot, ~0.4ns each). Threads
// beyond kSlots share one overflow slot that falls back to fetch_add, so
// totals stay exact at any thread count. Readers aggregate all slots with
// relaxed loads. Latency is *sampled* (1 in kSampleEvery checks per thread)
// so the two steady_clock reads stay off the common case.
//
// Counters are monotonically increasing and individually coherent but not
// mutually consistent: a snapshot taken under concurrent checking may
// observe a check in checks_total() whose reason counter has not landed
// yet. Once the writing threads are quiescent (joined), totals are exact.
// That is the documented trade for a lock-free allow path (docs/MODEL.md
// §11).

#ifndef XSEC_SRC_MONITOR_MONITOR_STATS_H_
#define XSEC_SRC_MONITOR_MONITOR_STATS_H_

#include <atomic>
#include <cstdint>

#include "src/dac/access_mode.h"
#include "src/monitor/audit.h"

namespace xsec {

class MonitorStats {
 public:
  // Power-of-two log2 ns buckets: bucket i holds samples with
  // latency in [2^(i-1), 2^i) ns (bucket 0 holds 0 ns). 2^31 ns ≈ 2.1 s
  // caps the histogram; anything slower lands in the last bucket.
  static constexpr size_t kLatencyBuckets = 32;
  // One check in kSampleEvery (per thread) is timed; must be a power of two.
  // Chosen so the two steady_clock reads a sample costs (~40ns each on a
  // virtualized clock) amortize to well under a nanosecond per check.
  static constexpr uint64_t kSampleEvery = 256;
  // Threads with a private slot; the rest share the overflow slot.
  static constexpr size_t kSlots = 32;

  MonitorStats();
  MonitorStats(const MonitorStats&) = delete;
  MonitorStats& operator=(const MonitorStats&) = delete;

  // -- Recording (check path; lock-free) --------------------------------------

  // Counts one decision: the reason bucket (kNone = allowed) and one count
  // per access mode present in the request. The total is derived on read —
  // every decision lands in exactly one reason bucket — so the common
  // single-mode check costs two load+store pairs, not three.
  void RecordDecision(AccessModeSet modes, DenyReason reason) {
    Slot& slot = LocalSlot();
    Bump(slot, slot.by_reason[static_cast<size_t>(reason)]);
    uint32_t bits = modes.bits();
    while (bits != 0) {
      unsigned b = static_cast<unsigned>(__builtin_ctz(bits));
      Bump(slot, slot.by_mode[b]);
      bits &= bits - 1;
    }
  }

  // True once per kSampleEvery calls on this thread; the caller then times
  // the check and reports it via RecordLatencyNs. The clock is a plain
  // thread-local integer shared by all instances: sampling needs an
  // unbiased 1-in-N trigger, not per-instance bookkeeping, so this stays a
  // single unsynchronized increment.
  bool ShouldSampleLatency() {
    thread_local uint64_t sample_clock = 0;
    return (sample_clock++ & (kSampleEvery - 1)) == 0;
  }

  void RecordLatencyNs(uint64_t ns);

  // -- Reading (any thread; aggregates over the slots) -------------------------

  uint64_t checks_total() const;
  uint64_t allowed_total() const { return by_reason(DenyReason::kNone); }
  uint64_t denied_total() const;
  uint64_t by_reason(DenyReason reason) const;
  uint64_t by_mode(AccessMode mode) const;
  uint64_t latency_samples() const;
  uint64_t latency_bucket(size_t i) const;

  // Approximate quantile (q in [0,1]) of the sampled check latency, in ns:
  // the upper bound of the histogram bucket containing the q-th sample.
  // 0 if nothing has been sampled yet.
  uint64_t LatencyQuantileNs(double q) const;

  // Zeroes every counter. For tools and tests; not synchronized against
  // concurrent recording (late increments may survive the reset).
  void Reset();

 private:
  // One writer's counters, padded to its own cache line(s). `shared` is set
  // on the overflow slot only, switching its writers to fetch_add.
  struct alignas(64) Slot {
    std::atomic<uint64_t> by_reason[kDenyReasonCount] = {};
    std::atomic<uint64_t> by_mode[kAccessModeCount] = {};
    std::atomic<uint64_t> latency_samples{0};
    std::atomic<uint64_t> latency_buckets[kLatencyBuckets] = {};
    bool shared = false;
  };

  // Single-writer slots use a plain load+store (no locked RMW); the shared
  // overflow slot needs the atomic RMW for correctness.
  static void Bump(Slot& slot, std::atomic<uint64_t>& counter) {
    if (slot.shared) {
      counter.fetch_add(1, std::memory_order_relaxed);
    } else {
      counter.store(counter.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    }
  }

  // Per-thread cache of the last-claimed slot, keyed by a process-wide
  // instance id so a recycled allocation never aliases a stale entry.
  struct SlotCache {
    uint64_t instance = ~uint64_t{0};
    Slot* slot = nullptr;
  };

  // The calling thread's slot for this instance: a private one while they
  // last, the overflow slot after. The hit path is inline — one TLS load and
  // a compare; only a thread's first touch of an instance leaves the header.
  Slot& LocalSlot() {
    thread_local SlotCache cache;
    if (cache.instance == instance_id_) {
      return *cache.slot;
    }
    return ClaimSlot(cache);
  }

  Slot& ClaimSlot(SlotCache& cache);

  template <typename Fn>
  uint64_t Sum(Fn&& per_slot) const {
    uint64_t total = 0;
    for (size_t s = 0; s < kSlots + 1; ++s) {
      total += per_slot(slots_[s]);
    }
    return total;
  }

  const uint64_t instance_id_;
  std::atomic<uint32_t> next_slot_{0};
  Slot slots_[kSlots + 1];  // +1: the shared overflow slot
};

// Nanoseconds from the steady clock, for latency sampling.
uint64_t MonotonicNowNs();

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_MONITOR_STATS_H_
