#!/usr/bin/env python3
"""Gate for the F15 shared-ring batched-mediation figures.

Reads a fresh BENCH_f15.json and enforces the transport's two claims:

1. Amortization: for every BM_CheckBatched/N entry (N >= 8), the per-item
   cost (median cpu_time / N) must not exceed the per-call baseline:

       (median cpu_time(BM_CheckBatched/N) / N)
     / median cpu_time(BM_CheckPerCall)            must be < --max-ratio

   Both sides come from the same run on the same fixture, so machine speed
   cancels. The comparison is the inline CheckBatch path against Check —
   NOT the end-to-end ring round trip, whose cv handoff dominates on the
   single-core CI machine and measures scheduling, not mediation.

2. Isolation: BM_RingStuckShardIsolation must report counters proving that
   a wedged shard back-pressures (rejected > 0: submissions failed fast
   with kResourceExhausted, nothing blocked) while the other shard kept
   serving (healthy_completed > 0).

No committed baseline: like F14, this is an absolute claim about the
mechanism, not a regression bound.

Usage: check_bench_f15.py <fresh.json> [--max-ratio 1.0]
"""

import argparse
import json
import re
import statistics
import sys

PER_CALL = "BM_CheckPerCall"
BATCHED_RE = re.compile(r"^BM_CheckBatched/(\d+)$")
STUCK = "BM_RingStuckShardIsolation"


def iteration_entries(data, name_pred):
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if (name_pred(name)
                and bench.get("run_type", "iteration") == "iteration"
                and "error_occurred" not in bench):
            yield name, bench


def median_cpu_time(data, path, name):
    values = [
        float(bench["cpu_time"])
        for _, bench in iteration_entries(data, lambda n: n == name)
        if "cpu_time" in bench
    ]
    if not values:
        raise KeyError(f"{path}: no successful benchmark named {name}")
    return statistics.median(values)


def batched_medians(data, path):
    by_n = {}
    for name, bench in iteration_entries(data, lambda n: BATCHED_RE.match(n)):
        if "cpu_time" not in bench:
            continue
        n = int(BATCHED_RE.match(name).group(1))
        by_n.setdefault(n, []).append(float(bench["cpu_time"]))
    if not by_n:
        raise KeyError(f"{path}: no successful BM_CheckBatched/N entries")
    return {n: statistics.median(values) for n, values in by_n.items()}


def stuck_counters(data, path):
    for name, bench in iteration_entries(data, lambda n: n.startswith(STUCK)):
        if "rejected" in bench and "healthy_completed" in bench:
            return float(bench["rejected"]), float(bench["healthy_completed"])
    raise KeyError(f"{path}: no {STUCK} entry carrying "
                   "rejected/healthy_completed counters")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("--max-ratio", type=float, default=1.0,
                        help="batched-per-item / per-call ceiling (default 1.0: "
                             "batching must not be slower than calling)")
    args = parser.parse_args()

    try:
        with open(args.fresh) as f:
            data = json.load(f)
        if not data.get("benchmarks"):
            raise ValueError(f"{args.fresh}: no benchmark entries — "
                             "did bench_f15_ring run?")
        per_call = median_cpu_time(data, args.fresh, PER_CALL)
        if per_call <= 0:
            raise ValueError(f"{args.fresh}: non-positive cpu_time for {PER_CALL}")
        batched = batched_medians(data, args.fresh)
        rejected, healthy = stuck_counters(data, args.fresh)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as err:
        print(f"check_bench_f15: {err}", file=sys.stderr)
        return 1

    failed = False
    for n in sorted(batched):
        per_item = batched[n] / n
        ratio = per_item / per_call
        print(f"batched/{n}: {per_item:.1f}ns per item vs per-call "
              f"{per_call:.1f}ns (ratio {ratio:.4f})")
        if n >= 8 and ratio >= args.max_ratio:
            print(f"check_bench_f15: FAIL — batch of {n} is not at least as "
                  f"fast per item as per-call checks "
                  f"(ratio {ratio:.4f} >= {args.max_ratio})", file=sys.stderr)
            failed = True

    print(f"stuck-shard isolation: rejected={rejected:.0f} "
          f"healthy_completed={healthy:.0f}")
    if rejected <= 0:
        print("check_bench_f15: FAIL — the wedged shard produced no "
              "kResourceExhausted back-pressure (did the stall failpoint arm?)",
              file=sys.stderr)
        failed = True
    if healthy <= 0:
        print("check_bench_f15: FAIL — the healthy shard made no progress "
              "while the other was wedged", file=sys.stderr)
        failed = True

    if failed:
        return 1
    print("check_bench_f15: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
