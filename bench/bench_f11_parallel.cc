// Experiment F11 — mediation throughput under concurrency.
//
// The tentpole claim of the concurrency work: Check() scales with thread
// count. Shared state is read-mostly (shared_mutex on each store, a sharded
// decision cache, lock-free audit counters), so adding checking threads
// should add throughput until memory bandwidth, not lock contention, is the
// limit. The figure sweeps:
//
//   ParallelCheck/threads:<n>           cached hot path, n checking threads
//   ParallelCheckUncached/threads:<n>   full evaluation every time
//   ParallelCheckWithWriter/threads:<n> cached, plus one in-loop ACL
//                                       mutation per 4096 iterations per
//                                       thread (stamp churn)
//
// Expected shape on a multi-core host: cached throughput grows
// near-linearly 1 -> 8 threads (>= 3x at 8); uncached scales too but from a
// much lower base; the writer variant sits between, degraded by
// re-evaluations, not by lock convoys. items_per_second is the comparable
// metric. On a single-core host every curve is necessarily flat — the run
// then only demonstrates absence of convoys (no superlinear *slowdown*).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

constexpr size_t kObjects = 1024;

struct ParallelFixture {
  explicit ParallelFixture(bool cache_enabled) {
    MonitorOptions options;
    options.cache_enabled = cache_enabled;
    options.audit_policy = AuditPolicy::kOff;
    options.cache_slots = 8192;
    monitor = std::make_unique<ReferenceMonitor>(&ns, &acls, &principals, &labels, options);
    user = *principals.CreateUser("u");
    Acl acl;
    for (uint32_t i = 0; i < 16; ++i) {
      acl.AddEntry({AclEntryType::kAllow, PrincipalId{1000 + i},
                    AccessModeSet(AccessMode::kRead)});
    }
    acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
    AclStore::AclRef shared = acls.Create(std::move(acl));
    for (size_t i = 0; i < kObjects; ++i) {
      NodeId node = *ns.BindPath("/o/n" + std::to_string(i), NodeKind::kObject, user);
      (void)ns.SetAclRef(node, shared);
      nodes.push_back(node);
    }
    subject = Subject{user, labels.Bottom(), 1};
  }

  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  std::unique_ptr<ReferenceMonitor> monitor;
  PrincipalId user;
  std::vector<NodeId> nodes;
  Subject subject;
};

// One fixture shared by all threads of a run; google-benchmark constructs
// the function-local static exactly once (thread-safe magic static) and
// every thread then hammers the same monitor.
ParallelFixture& CachedFixture() {
  static ParallelFixture f(/*cache_enabled=*/true);
  return f;
}

ParallelFixture& UncachedFixture() {
  static ParallelFixture f(/*cache_enabled=*/false);
  return f;
}

void ParallelCheck(benchmark::State& state, ParallelFixture& f) {
  // Stride by thread index so threads sweep disjoint phases of the same
  // working set — all slots get hot, shards are hit uniformly.
  size_t i = static_cast<size_t>(state.thread_index()) * 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.monitor->Check(f.subject, f.nodes[i % kObjects], AccessMode::kRead));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ParallelCheck(benchmark::State& state) { ParallelCheck(state, CachedFixture()); }
void BM_ParallelCheckUncached(benchmark::State& state) {
  ParallelCheck(state, UncachedFixture());
}

void BM_ParallelCheckWithWriter(benchmark::State& state) {
  ParallelFixture& f = CachedFixture();
  size_t i = static_cast<size_t>(state.thread_index()) * 17;
  for (auto _ : state) {
    if (state.thread_index() == 0 && i % 4096 == 0) {
      // Stamp churn: any ACL mutation invalidates every cached decision.
      (void)f.acls.AddEntry(0, {AclEntryType::kAllow, f.user,
                                AccessModeSet(AccessMode::kList)});
    }
    benchmark::DoNotOptimize(
        f.monitor->Check(f.subject, f.nodes[i % kObjects], AccessMode::kRead));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ParallelCheck)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK(BM_ParallelCheckUncached)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_ParallelCheckWithWriter)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
