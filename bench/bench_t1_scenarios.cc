// Experiment T1 — the scenario coverage matrix (DESIGN.md §5).
//
// Runs every scenario in the library against every protection model and
// prints which model handles which scenario ("handled" = every probe matches
// the required outcome: must-deny accesses denied AND must-allow accesses
// allowed). The paper's comparative claims (§1.2, §2) predict the shape:
// models strictly improve toward the right, and only the full xsec model
// (DAC with execute/extend + lattice MAC) handles every scenario.

#include <cstdio>
#include <string>

#include "src/core/scenarios.h"

int main() {
  xsec::ModelSet models;
  std::vector<xsec::Scenario> scenarios = xsec::BuildScenarios();

  std::printf("T1: scenario coverage by protection model\n");
  std::printf("(x = handled; S = security failure, F = functionality failure)\n\n");

  std::printf("%-4s %-55s", "id", "scenario");
  for (const xsec::ProtectionModel* model : models.all()) {
    std::printf(" %12s", std::string(model->name()).c_str());
  }
  std::printf("\n");

  std::vector<int> handled(models.all().size(), 0);
  for (const xsec::Scenario& scenario : scenarios) {
    std::printf("%-4s %-55s", scenario.id.c_str(), scenario.title.c_str());
    for (size_t m = 0; m < models.all().size(); ++m) {
      xsec::ScenarioResult result = xsec::RunScenario(scenario, *models.all()[m]);
      std::string cell;
      if (result.handled) {
        cell = "x";
        ++handled[m];
      } else {
        if (result.security_failures > 0) {
          cell += "S" + std::to_string(result.security_failures);
        }
        if (result.functionality_failures > 0) {
          cell += "F" + std::to_string(result.functionality_failures);
        }
      }
      std::printf(" %12s", cell.c_str());
    }
    std::printf("\n");
  }

  std::printf("%-60s", "\nhandled (of 13)");
  for (size_t m = 0; m < models.all().size(); ++m) {
    std::printf(" %12d", handled[m]);
  }
  std::printf("\n\nPaper refs:\n");
  for (const xsec::Scenario& scenario : scenarios) {
    std::printf("  %-4s %s\n", scenario.id.c_str(), scenario.paper_ref.c_str());
  }
  return 0;
}
