# Empty compiler generated dependencies file for xsec_monitor_tests.
# This may be replaced when dependencies are built.
