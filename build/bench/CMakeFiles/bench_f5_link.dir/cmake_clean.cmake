file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_link.dir/bench_f5_link.cc.o"
  "CMakeFiles/bench_f5_link.dir/bench_f5_link.cc.o.d"
  "bench_f5_link"
  "bench_f5_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
