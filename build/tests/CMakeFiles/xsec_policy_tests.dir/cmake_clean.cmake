file(REMOVE_RECURSE
  "CMakeFiles/xsec_policy_tests.dir/access_mode_test.cc.o"
  "CMakeFiles/xsec_policy_tests.dir/access_mode_test.cc.o.d"
  "CMakeFiles/xsec_policy_tests.dir/acl_test.cc.o"
  "CMakeFiles/xsec_policy_tests.dir/acl_test.cc.o.d"
  "CMakeFiles/xsec_policy_tests.dir/flow_policy_test.cc.o"
  "CMakeFiles/xsec_policy_tests.dir/flow_policy_test.cc.o.d"
  "CMakeFiles/xsec_policy_tests.dir/label_authority_test.cc.o"
  "CMakeFiles/xsec_policy_tests.dir/label_authority_test.cc.o.d"
  "CMakeFiles/xsec_policy_tests.dir/namespace_test.cc.o"
  "CMakeFiles/xsec_policy_tests.dir/namespace_test.cc.o.d"
  "CMakeFiles/xsec_policy_tests.dir/path_test.cc.o"
  "CMakeFiles/xsec_policy_tests.dir/path_test.cc.o.d"
  "CMakeFiles/xsec_policy_tests.dir/principal_test.cc.o"
  "CMakeFiles/xsec_policy_tests.dir/principal_test.cc.o.d"
  "CMakeFiles/xsec_policy_tests.dir/security_class_test.cc.o"
  "CMakeFiles/xsec_policy_tests.dir/security_class_test.cc.o.d"
  "xsec_policy_tests"
  "xsec_policy_tests.pdb"
  "xsec_policy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_policy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
