# Empty dependencies file for xsec_policy_tests.
# This may be replaced when dependencies are built.
