// A simulated network stack: SPIN's motivating extension domain.
//
// SPIN's flagship extensions were network protocol implementations pushed
// into the kernel; this service reproduces that structure under the xsec
// model:
//
//   - network devices are named objects (/obj/net/<name>) with ACLs and
//     labels like any other object — receiving or sending on a device is a
//     mediated read/write;
//   - protocol handlers are extension-point interfaces
//     (/svc/net/proto/<name>); an extension that implements, say, "rtp"
//     exports a handler onto that interface after an `extend` check, and
//     incoming packets are dispatched to the implementation selected by the
//     *receiving subject's* security class;
//   - packet filters are an interface (/svc/net/filter) dispatched in
//     broadcast mode: every eligible filter sees the packet and any of them
//     can drop it.
//
// Handler calling convention for protocol interfaces:
//   args = [device:string, payload:bytes] -> returns bytes (the processed
//   payload, appended to the device's delivery log).
// Filter convention: args = [device:string, proto:string, payload:bytes]
//   -> returns bool (false = drop).

#ifndef XSEC_SRC_SERVICES_NETSTACK_H_
#define XSEC_SRC_SERVICES_NETSTACK_H_

#include <map>
#include <string>
#include <vector>

#include "src/extsys/kernel.h"

namespace xsec {

class NetStack {
 public:
  NetStack(Kernel* kernel, std::string service_path = "/svc/net",
           std::string object_dir = "/obj/net");

  Status Install();

  // Creates the extension-point interface for a protocol (administrator
  // operation); `extend` on the returned node governs who may implement it.
  StatusOr<NodeId> CreateProtocol(std::string_view name, PrincipalId owner);
  std::string ProtocolInterfacePath(std::string_view name) const;
  // The packet-filter extension point.
  NodeId filter_interface() const { return filter_iface_; }

  // -- Mediated operations ----------------------------------------------------

  // Creates a device owned by the subject, labeled at the subject's class.
  StatusOr<NodeId> CreateDevice(Subject& subject, std::string_view name);

  // Simulates packet arrival on a device: requires write-append on the
  // device, runs every eligible filter (any false drops the packet), then
  // dispatches to the protocol implementation selected for this subject.
  // Returns true if the packet was delivered, false if filtered out.
  //
  // `call` (optional) is the invoking call's context: its deadline/cancel is
  // polled between filters and before protocol dispatch — one filter is the
  // poll interval — and forwarded to filter and protocol handlers, so a slow
  // filter chain is bounded by the caller's deadline_ns rather than running
  // to completion.
  StatusOr<bool> Inject(Subject& subject, std::string_view device, std::string_view proto,
                        std::vector<uint8_t> payload, const CallContext* call = nullptr);

  // Queues an outbound frame: requires write-append on the device.
  Status Send(Subject& subject, std::string_view device, std::vector<uint8_t> payload);

  // Delivered-packet count for a device: requires read on the device.
  StatusOr<int64_t> Delivered(Subject& subject, std::string_view device);
  // Outbound queue length: requires read.
  StatusOr<int64_t> TxQueued(Subject& subject, std::string_view device);

  uint64_t packets_filtered() const { return packets_filtered_; }

 private:
  struct Device {
    NodeId node;
    std::vector<std::vector<uint8_t>> delivered;
    std::vector<std::vector<uint8_t>> tx;
  };

  StatusOr<Device*> ResolveDevice(Subject& subject, std::string_view name,
                                  AccessModeSet modes);

  Kernel* kernel_;
  std::string service_path_;
  std::string object_dir_;
  NodeId filter_iface_;
  std::map<std::string, Device, std::less<>> devices_;
  uint64_t packets_filtered_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_NETSTACK_H_
