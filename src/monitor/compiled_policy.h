// Compiled policy decisions: the reference monitor's miss path, flattened
// into tables (ROADMAP "Policy compilation for raw check speed").
//
// A CompiledPolicy is an immutable snapshot of the entire decision function
// for one stamp vector:
//
//   - per-node: owner, effective-ACL row and interned effective-label id,
//     precomputed by one SnapshotSecurity ancestor walk per node at build
//     time instead of one walk per check;
//   - DAC: a dense (acl × principal) matrix of packed uint16 cells,
//     allowed-mask | denied-mask << 8, folding each principal's membership
//     closure through every ACL entry once at build time — evaluation is one
//     load and two ANDs, reproducing deny-overrides exactly;
//   - MAC: lattice dominance over every interned class (LabelAuthority::
//     CompileDominance) folded through FlowAllowedMask into a (class × class)
//     byte matrix of allowed-mode masks — the S ⊒ O / O ⊒ S pair collapses
//     to one byte load.
//
// Soundness contract: Evaluate() for a node may be consulted ONLY while the
// stamp vector of that node's *validity domain* (its monitor shard, or the
// aggregate domain for unknown ids) still equals the stores' current stamps
// for that domain (the monitor checks this; any policy-relevant mutation
// bumps the affected shard's stamps, and conservatively tagged mutations
// bump all of them). Within a valid stamp vector the tables are
// exhaustive over everything that existed at build time; anything that can
// appear WITHOUT a stamp bump — a principal id beyond the compiled width
// (CreateUser bumps no stamp) or a subject class that is not interned —
// makes Evaluate return false ("not covered"), never a guess, and the
// caller falls back to the interpreted path. Node ids beyond the compiled
// width are decided (kNotFound): Bind always bumps the namespace
// generation, so within a valid stamp vector such a node cannot exist.
//
// Equivalence contract: for covered inputs, Evaluate returns bit-for-bit
// the Decision (allowed, reason, AND detail string) that
// ReferenceMonitor::CheckUncached computes — tests/diff_fuzz_test.cc holds
// the two paths against each other under randomized policies, mutations,
// and fault injection.

#ifndef XSEC_SRC_MONITOR_COMPILED_POLICY_H_
#define XSEC_SRC_MONITOR_COMPILED_POLICY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/dac/acl.h"
#include "src/mac/flow_policy.h"
#include "src/mac/label_authority.h"
#include "src/monitor/decision_cache.h"
#include "src/monitor/subject.h"
#include "src/naming/namespace.h"
#include "src/principal/registry.h"

namespace xsec {

struct Decision;  // src/monitor/reference_monitor.h

// The slice of MonitorOptions a compile depends on, plus size caps. The caps
// bound build cost and memory: a store too large to flatten is a build
// failure (kResourceExhausted), which the monitor treats as "stay
// interpreted", never as an error visible to Check callers.
struct CompiledPolicyConfig {
  bool dac_enabled = true;
  bool mac_enabled = true;
  FlowPolicyOptions flow;
  // Interned-class cap for the dominance matrix (memory is O(n^2)).
  size_t max_classes = 192;
  // Cap on (acl count + 1) * principal count uint16 DAC cells (8 MiB at the
  // default).
  size_t max_dac_cells = size_t{1} << 22;
};

class CompiledPolicy {
 public:
  // Flattens the four stores into tables. `stamps` must be the stamp vector
  // the caller read BEFORE calling Build; the caller must re-read stamps
  // after Build returns and discard the result on any difference (a
  // mutation may have committed mid-build). Each store is read under its
  // own lock, so a discarded build is wasted work, never a torn table that
  // gets used. `extra_classes` are additional security classes to intern
  // (the monitor feeds back subject classes that previously missed the
  // matrix, so repeat fallbacks converge onto the fast path).
  //
  // Fails with kResourceExhausted when a cap is exceeded and with whatever
  // the "monitor.recompile" failpoint injects.
  static StatusOr<std::shared_ptr<const CompiledPolicy>> Build(
      const NameSpace& name_space, const AclStore& acls, const PrincipalRegistry& principals,
      const LabelAuthority& labels, const CompiledPolicyConfig& config,
      const ShardStampSet& stamps, const std::vector<SecurityClass>& extra_classes = {});

  // Decides `modes` for `subject` on `node` from the tables alone. Returns
  // true and fills *out when the tables cover the inputs; returns false
  // (out untouched) when they do not — subject principal beyond the
  // compiled width, or (under MAC) a subject class that is not interned.
  // `labels` is used only to format the MAC denial detail, exactly as the
  // interpreted path does.
  bool Evaluate(const Subject& subject, NodeId node, AccessModeSet modes,
                const LabelAuthority& labels, Decision* out) const;

  // The full per-shard stamp family the tables were built against. A probe
  // validates only the target node's shard entry (plus the aggregate entry
  // for unknown node ids) — see ReferenceMonitor::TryCompiledCheck.
  const ShardStampSet& stamps() const { return stamps_; }
  const CompiledPolicyConfig& config() const { return config_; }
  size_t node_count() const { return nodes_.size(); }
  size_t principal_count() const { return principal_count_; }
  size_t class_count() const { return matrix_ ? matrix_->size() : 0; }
  const std::shared_ptr<const DominanceMatrix>& dominance() const { return matrix_; }
  // Approximate table footprint, for introspection/stats.
  size_t table_bytes() const;

 private:
  CompiledPolicy() = default;

  // Per-node flattening of SnapshotSecurity. `dac_row` indexes the DAC cell
  // matrix (kNoAcl = no effective ACL anywhere up the tree); `label_id` is
  // the interned effective label (kNoLabel = not interned, forces fallback
  // under MAC).
  struct NodeEntry {
    PrincipalId owner;
    uint32_t dac_row = kNoAcl;
    int32_t label_id = kNoLabel;
    bool alive = false;
  };
  static constexpr uint32_t kNoAcl = 0xffffffff;
  static constexpr int32_t kNoLabel = -1;

  std::vector<NodeEntry> nodes_;
  // (acl_count + 1) rows × principal_count columns; row acl_count is
  // all-zero and absorbs dangling ACL refs (they evaluate like an empty
  // ACL, exactly as AclStore::Evaluate treats a bad ref). Cell = allowed
  // mode mask | denied mode mask << 8.
  std::vector<uint16_t> dac_;
  size_t principal_count_ = 0;
  std::shared_ptr<const DominanceMatrix> matrix_;
  // class_count × class_count; [subject_id * n + object_id] = allowed-mode
  // mask from FlowAllowedMask (the single source of truth shared with the
  // interpreted FlowPolicy).
  std::vector<uint8_t> mac_mask_;
  ShardStampSet stamps_;
  CompiledPolicyConfig config_;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_COMPILED_POLICY_H_
