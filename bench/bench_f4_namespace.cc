// Experiment F4 — name-space lookup cost (DESIGN.md §5).
//
// The single universal name space (§2.3) is on every mediation path, so its
// lookup cost bounds the whole system. The figure sweeps path depth and
// directory fanout; the expected shape is linear in depth (one map probe per
// component, each O(log fanout)).

#include <benchmark/benchmark.h>

#include <string>

#include "src/naming/namespace.h"

namespace xsec {
namespace {

std::string DeepPath(int depth) {
  std::string path;
  for (int i = 0; i < depth; ++i) {
    path += "/d" + std::to_string(i);
  }
  return path;
}

void BM_LookupByDepth(benchmark::State& state) {
  NameSpace ns;
  int depth = static_cast<int>(state.range(0));
  std::string path = DeepPath(depth);
  (void)ns.BindPath(path, NodeKind::kFile, PrincipalId{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.Lookup(path));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LookupByDepth)->RangeMultiplier(2)->Range(1, 32)->Complexity(benchmark::oN);

void BM_LookupByFanout(benchmark::State& state) {
  NameSpace ns;
  int fanout = static_cast<int>(state.range(0));
  for (int i = 0; i < fanout; ++i) {
    (void)ns.Bind(ns.root(), "entry" + std::to_string(i), NodeKind::kFile, PrincipalId{0});
  }
  std::string target = "/entry" + std::to_string(fanout / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.Lookup(target));
  }
}
BENCHMARK(BM_LookupByFanout)->RangeMultiplier(8)->Range(8, 32768);

void BM_LookupWithAncestors(benchmark::State& state) {
  NameSpace ns;
  std::string path = DeepPath(static_cast<int>(state.range(0)));
  (void)ns.BindPath(path, NodeKind::kFile, PrincipalId{0});
  AncestorBuffer ancestors;
  for (auto _ : state) {
    ancestors.clear();
    benchmark::DoNotOptimize(ns.LookupWithAncestors(path, &ancestors));
  }
}
BENCHMARK(BM_LookupWithAncestors)->RangeMultiplier(2)->Range(1, 32);

void BM_PathOf(benchmark::State& state) {
  NameSpace ns;
  std::string path = DeepPath(static_cast<int>(state.range(0)));
  NodeId node = *ns.BindPath(path, NodeKind::kFile, PrincipalId{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.PathOf(node));
  }
}
BENCHMARK(BM_PathOf)->RangeMultiplier(2)->Range(1, 32);

void BM_BindUnbindCycle(benchmark::State& state) {
  NameSpace ns;
  (void)ns.BindPath("/dir", NodeKind::kDirectory, PrincipalId{0});
  NodeId dir = *ns.Lookup("/dir");
  for (auto _ : state) {
    NodeId node = *ns.Bind(dir, "tmp", NodeKind::kFile, PrincipalId{0});
    (void)ns.Unbind(node);
  }
}
BENCHMARK(BM_BindUnbindCycle);

void BM_ParsePath(benchmark::State& state) {
  std::string path = DeepPath(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParsePath(path));
  }
}
BENCHMARK(BM_ParsePath)->RangeMultiplier(2)->Range(1, 32);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
