// Crash-consistent policy files (MODEL.md §12): SavePolicyFile's
// tmp+fsync+rename protocol must leave a loadable policy behind no matter
// where a crash (injected via the policy.io.* failpoints) lands, and
// LoadPolicyFile must recover the last good file — byte for byte.

#include "src/policy/policy_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/base/failpoint.h"
#include "src/core/secure_system.h"

namespace xsec {
namespace {

std::string TestPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void RemoveArtifacts(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  std::remove((path + ".tmp").c_str());
}

class PolicyCrashTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(PolicyCrashTest, SaveThenLoadRoundTrips) {
  std::string path = TestPath("policy_roundtrip.policy");
  RemoveArtifacts(path);

  SecureSystem source;
  ASSERT_TRUE(source.CreateUser("alice").ok());
  ASSERT_TRUE(source.CreateUser("bob").ok());
  ASSERT_TRUE(SavePolicyFile(source.kernel(), path).ok());

  SecureSystem restored;
  std::string loaded_from;
  ASSERT_TRUE(LoadPolicyFile(path, &restored.kernel(), &loaded_from).ok());
  EXPECT_EQ(loaded_from, path);
  auto want = SerializePolicy(source.kernel());
  auto got = SerializePolicy(restored.kernel());
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *want);
}

TEST_F(PolicyCrashTest, MidStreamWriteCrashLeavesThePreviousFileByteForByte) {
  std::string path = TestPath("policy_midstream.policy");
  RemoveArtifacts(path);

  SecureSystem sys;
  ASSERT_TRUE(sys.CreateUser("alice").ok());
  ASSERT_TRUE(SavePolicyFile(sys.kernel(), path).ok());
  std::string good_bytes = ReadBytes(path);
  ASSERT_FALSE(good_bytes.empty());

  // Grow the policy, then kill the next save mid-write: the temp file is
  // torn (no checksum trailer — it is written last), the real file is not
  // touched at all.
  ASSERT_TRUE(sys.CreateUser("late-arrival").ok());
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("policy.io.write", "error").ok());
  Status crashed = SavePolicyFile(sys.kernel(), path);
  EXPECT_EQ(crashed.code(), StatusCode::kInternal);
  EXPECT_EQ(ReadBytes(path), good_bytes);

  // And the loader recovers the previous policy from the primary path.
  FailpointRegistry::Instance().DisarmAll();
  SecureSystem restored;
  std::string loaded_from;
  ASSERT_TRUE(LoadPolicyFile(path, &restored.kernel(), &loaded_from).ok());
  EXPECT_EQ(loaded_from, path);
  auto got = SerializePolicy(restored.kernel());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->find("late-arrival"), std::string::npos);
}

TEST_F(PolicyCrashTest, CommitCrashFallsBackToTheBackup) {
  std::string path = TestPath("policy_commit.policy");
  RemoveArtifacts(path);

  SecureSystem sys;
  ASSERT_TRUE(sys.CreateUser("alice").ok());
  ASSERT_TRUE(SavePolicyFile(sys.kernel(), path).ok());
  std::string good_bytes = ReadBytes(path);

  // Crash between the two renames: the primary is already moved to .bak and
  // the temp file never lands, so the primary path is missing.
  ASSERT_TRUE(sys.CreateUser("late-arrival").ok());
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("policy.io.commit", "error").ok());
  EXPECT_FALSE(SavePolicyFile(sys.kernel(), path).ok());
  EXPECT_TRUE(ReadBytes(path).empty());
  EXPECT_EQ(ReadBytes(path + ".bak"), good_bytes);

  FailpointRegistry::Instance().DisarmAll();
  SecureSystem restored;
  std::string loaded_from;
  ASSERT_TRUE(LoadPolicyFile(path, &restored.kernel(), &loaded_from).ok());
  EXPECT_EQ(loaded_from, path + ".bak");
  auto got = SerializePolicy(restored.kernel());
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got->find("alice"), std::string::npos);
  EXPECT_EQ(got->find("late-arrival"), std::string::npos);
}

TEST_F(PolicyCrashTest, OpenFailureLeavesEverythingIntact) {
  std::string path = TestPath("policy_open.policy");
  RemoveArtifacts(path);

  SecureSystem sys;
  ASSERT_TRUE(SavePolicyFile(sys.kernel(), path).ok());
  std::string good_bytes = ReadBytes(path);

  ASSERT_TRUE(FailpointRegistry::Instance().Arm("policy.io.open", "error").ok());
  EXPECT_FALSE(SavePolicyFile(sys.kernel(), path).ok());
  EXPECT_EQ(ReadBytes(path), good_bytes);
}

TEST_F(PolicyCrashTest, TornPrimaryFallsBackToTheBackup) {
  std::string path = TestPath("policy_torn.policy");
  RemoveArtifacts(path);

  SecureSystem sys;
  ASSERT_TRUE(sys.CreateUser("alice").ok());
  ASSERT_TRUE(SavePolicyFile(sys.kernel(), path).ok());
  ASSERT_TRUE(sys.CreateUser("bob").ok());
  ASSERT_TRUE(SavePolicyFile(sys.kernel(), path).ok());  // .bak now holds v1
  std::string v1_bytes = ReadBytes(path + ".bak");
  ASSERT_FALSE(v1_bytes.empty());

  // Tear the primary in half — simulating a crash the rename protocol did
  // not get to guard (disk corruption, partial copy). The checksum trailer
  // no longer matches, so the loader must reject it and use the backup.
  std::string torn = ReadBytes(path).substr(0, ReadBytes(path).size() / 2);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << torn;
  }
  SecureSystem restored;
  std::string loaded_from;
  ASSERT_TRUE(LoadPolicyFile(path, &restored.kernel(), &loaded_from).ok());
  EXPECT_EQ(loaded_from, path + ".bak");
  auto got = SerializePolicy(restored.kernel());
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got->find("alice"), std::string::npos);
  EXPECT_EQ(got->find("user bob"), std::string::npos);
}

TEST_F(PolicyCrashTest, NoIntactFileIsNotFound) {
  std::string path = TestPath("policy_missing.policy");
  RemoveArtifacts(path);
  SecureSystem sys;
  EXPECT_EQ(LoadPolicyFile(path, &sys.kernel()).code(), StatusCode::kNotFound);
}

TEST_F(PolicyCrashTest, InjectedReadFailureIsNotFound) {
  std::string path = TestPath("policy_read.policy");
  RemoveArtifacts(path);
  SecureSystem sys;
  ASSERT_TRUE(SavePolicyFile(sys.kernel(), path).ok());
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("policy.io.read", "error").ok());
  // Both candidates fail to read; the loader reports no intact file rather
  // than propagating the transient I/O error as a parse failure.
  EXPECT_EQ(LoadPolicyFile(path, &sys.kernel()).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace xsec
