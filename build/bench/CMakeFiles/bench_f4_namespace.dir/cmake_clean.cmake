file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_namespace.dir/bench_f4_namespace.cc.o"
  "CMakeFiles/bench_f4_namespace.dir/bench_f4_namespace.cc.o.d"
  "bench_f4_namespace"
  "bench_f4_namespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_namespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
