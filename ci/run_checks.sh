#!/usr/bin/env bash
# Full verification sweep: a Release build plus two sanitized builds, the
# test suite under each, and the F1/F11 mediation figures as JSON.
#
#   ci/run_checks.sh [--quick | --faults]
#
# --quick restricts the sanitizer ctest runs to the monitor + concurrency
# tests (the multithreaded surface, including the striped MonitorStats
# counters, the mediated StatsService tree, the subscription channels, the
# cooperative-cancellation paths, the fault-injection suites, the
# mediation-ring transport, and the compiled-policy + differential-fuzz
# suites) plus the policy round-trip tests; the default runs everything
# everywhere.
#
# --faults runs only the randomized fault-injection sweep: the fault suites
# (Failpoint|FaultService|AuditResilience|PolicyCrash|RingFault|AuditFanOut)
# plus the DiffFuzz differential oracle under ASan+UBSan and TSan with a randomized
# XSEC_FAULT_SEED. The seed is printed so a failing sweep replays exactly:
# XSEC_FAULT_SEED=<seed> ci/run_checks.sh --faults.
#
# Outputs:
#   build-release/   optimized build, full ctest
#   build-tsan/      -fsanitize=thread, ctest (races fail the run)
#   build-asan/      -fsanitize=address,undefined, ctest
#   BENCH_f1.json    bench_f1_mediation results (per-call overhead; the
#                    Cached vs Cached_NoStats delta is the stats budget,
#                    gated against ci/bench_f1_baseline.json by
#                    ci/check_bench_f1.py — >10% ratio regression fails.
#                    Collected with instructions-retired perf counters when
#                    the benchmark library + kernel support them; the gate
#                    prefers that metric and falls back to median cpu_time)
#   BENCH_f11.json   bench_f11_parallel results from the release build
#   BENCH_f12.json   bench_f12_subscription results (publish fan-out cost +
#                    multi-sink audit drain; ci/check_bench_f12.py requires
#                    the publisher ~flat 1->64 subscribers, a 2-sink drain
#                    >= 1.5x one sink, and zero stitch violations)
#   BENCH_f14.json   bench_f14_compiled results (compiled vs interpreted
#                    cache-miss decisions; ci/check_bench_f14.py requires
#                    the compiled miss to be materially faster)
#   BENCH_f15.json   bench_f15_ring results (shared-ring batched mediation;
#                    ci/check_bench_f15.py requires batched per-item cost
#                    <= per-call at batch >= 8 and stuck-shard isolation)
#   BENCH_f16.json   bench_f16_shard results (sharded stamp domains;
#                    ci/check_bench_f16.py requires zero cross-shard stale
#                    evictions, a live same-shard control, the 1M-principal
#                    intern load within budget, and effective ACL interning)
#   BENCH_f17.json   bench_f17_supervisor results (supervised degradation;
#                    ci/check_bench_f17.py requires invokes beside a
#                    quarantined peer within 10% of baseline, a real audited
#                    + health-visible trip, and the mediated release round
#                    trip to restore service)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"
QUICK=0
FAULTS=0
[[ "${1:-}" == "--quick" ]] && QUICK=1
[[ "${1:-}" == "--faults" ]] && FAULTS=1

# DiffFuzz (tests/diff_fuzz_test.cc) rides in the fault sweep: it arms the
# same failpoints and must never observe a compiled/interpreted divergence.
FAULT_RE='Failpoint|FaultService|AuditResilience|PolicyCrash|DiffFuzz|RingFault|ShardClearRace|AuditFanOut|Supervisor|Quarantine|Watchdog'

# Randomized but replayable in every mode: the differential fuzzer and the
# failpoint sweeps read XSEC_FAULT_SEED from the environment and print it in
# their own output (SCOPED_TRACE), so any failure replays exactly with
# XSEC_FAULT_SEED=<seed> ci/run_checks.sh [mode].
: "${XSEC_FAULT_SEED:=$RANDOM$RANDOM}"
export XSEC_FAULT_SEED
echo "== Randomized seed: XSEC_FAULT_SEED=$XSEC_FAULT_SEED =="

run_ctest() {
  local dir="$1"
  if [[ "$QUICK" == 1 ]]; then
    (cd "$dir" && ctest --output-on-failure -j "$JOBS" \
        -R "MonitorConcurrency|DecisionCache|ReferenceMonitor|AuditLog|NdjsonRotation|MonitorStats|StatsService|StatsSnapshot|StatsWatch|Subscription|Cancellation|PolicyIo|PolicyRoundTrip|CompiledPolicy|MediationRing|Shard|${FAULT_RE}")
  else
    (cd "$dir" && ctest --output-on-failure -j "$JOBS")
  fi
}

if [[ "$FAULTS" == 1 ]]; then
  echo "== Fault-injection sweep (XSEC_FAULT_SEED=$XSEC_FAULT_SEED) =="

  echo "== AddressSanitizer + UBSan build =="
  cmake -B build-asan -S . -DXSEC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS"
  (cd build-asan && ctest --output-on-failure -j "$JOBS" -R "$FAULT_RE")

  echo "== ThreadSanitizer build =="
  cmake -B build-tsan -S . -DXSEC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS"
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" -R "$FAULT_RE")

  echo "Fault sweep passed (seed $XSEC_FAULT_SEED)."
  exit 0
fi

echo "== Release build =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
(cd build-release && ctest --output-on-failure -j "$JOBS")

echo "== ThreadSanitizer build =="
cmake -B build-tsan -S . -DXSEC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS"
run_ctest build-tsan

echo "== AddressSanitizer + UBSan build =="
cmake -B build-asan -S . -DXSEC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS"
run_ctest build-asan

echo "== F1: per-call mediation overhead =="
F1_RUN=(./build-release/bench/bench_f1_mediation
    --benchmark_out=BENCH_f1.json --benchmark_out_format=json
    --benchmark_min_time=0.25 --benchmark_repetitions=3)
# Ask for instructions-retired counters: when the library was built with
# libpfm and the kernel permits perf_event_open, every benchmark entry gains
# an INSTRUCTIONS column and the gate below uses it (deterministic, immune
# to CPU-frequency noise). Builds without the support either ignore the flag
# with a notice or reject it outright — retry plainly in that case; the gate
# then falls back to median cpu_time.
if ! "${F1_RUN[@]}" --benchmark_perf_counters=INSTRUCTIONS; then
  echo "perf counters unavailable; rerunning F1 without them"
  "${F1_RUN[@]}"
fi

echo "== F1 regression gate (stats overhead ratio vs committed baseline) =="
python3 ci/check_bench_f1.py BENCH_f1.json ci/bench_f1_baseline.json

echo "== F14: compiled vs interpreted cache-miss decisions =="
./build-release/bench/bench_f14_compiled \
    --benchmark_out=BENCH_f14.json --benchmark_out_format=json \
    --benchmark_min_time=0.25 --benchmark_repetitions=3

echo "== F14 gate (compiled miss must beat interpreted miss) =="
python3 ci/check_bench_f14.py BENCH_f14.json

echo "== F15: shared-ring batched mediation =="
./build-release/bench/bench_f15_ring \
    --benchmark_out=BENCH_f15.json --benchmark_out_format=json \
    --benchmark_min_time=0.25 --benchmark_repetitions=3

echo "== F15 gate (batched per-item <= per-call; stuck shard isolates) =="
python3 ci/check_bench_f15.py BENCH_f15.json

echo "== F16: sharded stamp domains =="
./build-release/bench/bench_f16_shard \
    --benchmark_out=BENCH_f16.json --benchmark_out_format=json \
    --benchmark_min_time=0.25

echo "== F16 gate (cross-shard isolation; 1M-principal intern budget) =="
python3 ci/check_bench_f16.py BENCH_f16.json

echo "== F17: supervised degradation (quarantined peer containment) =="
./build-release/bench/bench_f17_supervisor \
    --benchmark_out=BENCH_f17.json --benchmark_out_format=json \
    --benchmark_min_time=0.25 --benchmark_repetitions=3

echo "== F17 gate (peer quarantine taxes neighbors <= 10%; trip audited + visible; release restores) =="
python3 ci/check_bench_f17.py BENCH_f17.json

echo "== F11: parallel mediation throughput =="
./build-release/bench/bench_f11_parallel \
    --benchmark_out=BENCH_f11.json --benchmark_out_format=json \
    --benchmark_min_time=0.1

echo "== F12: subscription fan-out on the publish path =="
./build-release/bench/bench_f12_subscription \
    --benchmark_out=BENCH_f12.json --benchmark_out_format=json \
    --benchmark_min_time=0.1 --benchmark_repetitions=3

echo "== F12 gate (publisher ~flat 1->64 subs; 2-sink drain >= 1.5x; stitch == 0) =="
python3 ci/check_bench_f12.py BENCH_f12.json

echo "All checks passed (XSEC_FAULT_SEED=$XSEC_FAULT_SEED). Figure data in BENCH_f1.json, BENCH_f11.json, BENCH_f12.json, BENCH_f14.json, BENCH_f15.json, BENCH_f16.json, BENCH_f17.json."
