// An in-memory file system service.
//
// Files and directories are ordinary name-space nodes (kFile / kDirectory)
// under a mount directory (default "/fs"), so they are protected by the same
// ACLs and labels as every other named object — the paper's point that "the
// protection of extensions can be easily integrated with the protection of
// other system objects, such as files" (§3). File contents live in the
// service; all operations are procedures under /svc/fs/* and every data
// access is checked by the central reference monitor, not by the service.
//
// Access-mode mapping:
//   create  -> write on the parent directory
//   mkdir   -> write on the parent directory
//   read    -> read on the file
//   write   -> write on the file (destructive overwrite)
//   append  -> write-append (or write) on the file
//   remove  -> delete on the file and write on the parent
//   list    -> list on the directory
//   stat    -> read on the file

#ifndef XSEC_SRC_SERVICES_MEMFS_H_
#define XSEC_SRC_SERVICES_MEMFS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/extsys/kernel.h"

namespace xsec {

class MemFs {
 public:
  // Registers the mount directory and the /svc/fs procedures on `kernel`.
  // The kernel must outlive this service.
  MemFs(Kernel* kernel, std::string mount_path = "/fs", std::string service_path = "/svc/fs");

  Status Install();

  const std::string& mount_path() const { return mount_path_; }
  const std::string& service_path() const { return service_path_; }

  // Direct (trusted, unmediated) accessors for tests and workload setup.
  StatusOr<NodeId> CreateFileAsSystem(std::string_view path, std::vector<uint8_t> contents);
  size_t file_count() const { return contents_.size(); }

  // -- Mediated operations (also exposed as procedures) ----------------------
  // The bulk operations (read/write/append of file contents, directory
  // scans) take an optional CallContext and poll its deadline/cancel flags
  // per bounded work unit via CooperativeBudget, so a caller-side cancel
  // interrupts a large copy instead of waiting it out. Null `call` (trusted
  // internal use) skips the polling.
  StatusOr<NodeId> Create(Subject& subject, std::string_view path);
  StatusOr<NodeId> MkDir(Subject& subject, std::string_view path);
  StatusOr<std::vector<uint8_t>> Read(Subject& subject, std::string_view path,
                                      const CallContext* call = nullptr);
  Status Write(Subject& subject, std::string_view path, std::vector<uint8_t> data,
               const CallContext* call = nullptr);
  Status Append(Subject& subject, std::string_view path, const std::vector<uint8_t>& data,
                const CallContext* call = nullptr);
  Status Remove(Subject& subject, std::string_view path);
  StatusOr<std::vector<std::string>> ListDir(Subject& subject, std::string_view path,
                                             const CallContext* call = nullptr);
  StatusOr<int64_t> Stat(Subject& subject, std::string_view path);

 private:
  // Resolves `path`, requiring it to be under the mount point and of `kind`.
  StatusOr<NodeId> ResolveChecked(Subject& subject, std::string_view path, AccessModeSet modes,
                                  NodeKind kind);

  Kernel* kernel_;
  std::string mount_path_;
  std::string service_path_;
  std::unordered_map<uint32_t, std::vector<uint8_t>> contents_;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_MEMFS_H_
