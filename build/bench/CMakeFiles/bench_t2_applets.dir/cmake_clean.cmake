file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_applets.dir/bench_t2_applets.cc.o"
  "CMakeFiles/bench_t2_applets.dir/bench_t2_applets.cc.o.d"
  "bench_t2_applets"
  "bench_t2_applets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_applets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
