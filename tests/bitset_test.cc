#include "src/base/bitset.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace xsec {
namespace {

TEST(BitsetTest, StartsEmpty) {
  DynamicBitset b;
  EXPECT_EQ(b.size_bits(), 0u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(1000));
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset b(8);
  b.Set(3);
  EXPECT_TRUE(b.Test(3));
  EXPECT_FALSE(b.Test(2));
  EXPECT_EQ(b.Count(), 1u);
  b.Clear(3);
  EXPECT_FALSE(b.Test(3));
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitsetTest, SetGrowsAutomatically) {
  DynamicBitset b;
  b.Set(130);
  EXPECT_TRUE(b.Test(130));
  EXPECT_GE(b.size_bits(), 131u);
  EXPECT_EQ(b.Count(), 1u);
}

TEST(BitsetTest, ClearPastEndIsNoop) {
  DynamicBitset b(4);
  b.Clear(100);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.size_bits(), 4u);
}

TEST(BitsetTest, SetAllRespectsLogicalSize) {
  DynamicBitset b(67);
  b.SetAll();
  EXPECT_EQ(b.Count(), 67u);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitsetTest, SubsetBasics) {
  DynamicBitset a(8), b(8);
  a.Set(1);
  b.Set(1);
  b.Set(2);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(BitsetTest, EmptySetIsSubsetOfEverything) {
  DynamicBitset empty;
  DynamicBitset b(128);
  b.Set(100);
  EXPECT_TRUE(empty.IsSubsetOf(b));
  EXPECT_TRUE(empty.IsSubsetOf(empty));
  EXPECT_FALSE(b.IsSubsetOf(empty));
}

TEST(BitsetTest, SubsetAcrossDifferentCapacities) {
  DynamicBitset small(4);
  small.Set(2);
  DynamicBitset large(256);
  large.Set(2);
  large.Set(200);
  EXPECT_TRUE(small.IsSubsetOf(large));
  EXPECT_FALSE(large.IsSubsetOf(small));
}

TEST(BitsetTest, Disjoint) {
  DynamicBitset a(64), b(64);
  a.Set(1);
  b.Set(2);
  EXPECT_TRUE(a.IsDisjointFrom(b));
  b.Set(1);
  EXPECT_FALSE(a.IsDisjointFrom(b));
}

TEST(BitsetTest, UnionIntersectionDifference) {
  DynamicBitset a(8), b(8);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  DynamicBitset u = a.Union(b);
  EXPECT_TRUE(u.Test(1) && u.Test(2) && u.Test(3));
  EXPECT_EQ(u.Count(), 3u);
  DynamicBitset i = a.Intersection(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(2));
  DynamicBitset d = a.Difference(b);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
}

TEST(BitsetTest, UnionInPlaceGrows) {
  DynamicBitset a(4);
  a.Set(0);
  DynamicBitset b(128);
  b.Set(100);
  a.UnionInPlace(b);
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(100));
}

TEST(BitsetTest, EqualityIgnoresCapacity) {
  DynamicBitset a(4), b(512);
  a.Set(2);
  b.Set(2);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(300);
  EXPECT_FALSE(a == b);
}

TEST(BitsetTest, ToIndicesAscending) {
  DynamicBitset b(200);
  b.Set(190);
  b.Set(5);
  b.Set(64);
  EXPECT_EQ(b.ToIndices(), (std::vector<size_t>{5, 64, 190}));
}

TEST(BitsetTest, ToStringRendering) {
  DynamicBitset b(8);
  EXPECT_EQ(b.ToString(), "{}");
  b.Set(1);
  b.Set(3);
  EXPECT_EQ(b.ToString(), "{1,3}");
}

// Property sweep: algebraic laws on random sets of varying widths.
class BitsetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsetPropertyTest, AlgebraicLaws) {
  Rng rng(GetParam());
  size_t width = 1 + rng.NextBelow(300);
  auto random_set = [&] {
    DynamicBitset s(width);
    for (size_t i = 0; i < width; ++i) {
      if (rng.NextBool(1, 3)) {
        s.Set(i);
      }
    }
    return s;
  };
  DynamicBitset a = random_set(), b = random_set(), c = random_set();

  // Union/intersection commute and associate.
  EXPECT_TRUE(a.Union(b) == b.Union(a));
  EXPECT_TRUE(a.Intersection(b) == b.Intersection(a));
  EXPECT_TRUE(a.Union(b).Union(c) == a.Union(b.Union(c)));
  EXPECT_TRUE(a.Intersection(b).Intersection(c) == a.Intersection(b.Intersection(c)));
  // Absorption.
  EXPECT_TRUE(a.Union(a.Intersection(b)) == a);
  EXPECT_TRUE(a.Intersection(a.Union(b)) == a);
  // Subset characterizations.
  EXPECT_EQ(a.IsSubsetOf(b), a.Union(b) == b);
  EXPECT_EQ(a.IsSubsetOf(b), a.Intersection(b) == a);
  // Difference disjoint from subtrahend.
  EXPECT_TRUE(a.Difference(b).IsDisjointFrom(b));
  // Counts are consistent (inclusion-exclusion).
  EXPECT_EQ(a.Union(b).Count() + a.Intersection(b).Count(), a.Count() + b.Count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetPropertyTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace xsec
